// Example campaign walks through the scenario-sweep engine: declare a
// Spec, expand it to see what will run, execute it on a sharded worker
// pool, and read the aggregates — the same steps cmd/fdcampaign
// automates, spelled out against the library API.
//
// The sweep reproduces the paper's central comparison as a *family* of
// runs instead of single points: authenticated chain failure discovery
// (n−1 messages) against the non-authenticated baseline ((t+1)(n−1)),
// the OM(t) agreement baseline, and the two full agreement protocols —
// FDBA (failure-free runs cost the same n−1 messages as chain FD) and
// SM(t) (O(n²) always) — each honest and under a crashed relay, over
// several system sizes and seeds. Every protocol here is a registered
// driver (internal/protocol); see examples/customdriver for how to add
// one of your own to the same grid.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/sig"
)

func main() {
	// 1. Declare the family of runs. Nothing executes here: a Spec is
	// data, and the same document could be loaded from JSON (see
	// campaign.LoadSpec / cmd/fdcampaign -spec).
	spec := campaign.Spec{
		Name: "walkthrough",
		Protocols: []string{campaign.ProtoChain, campaign.ProtoNonAuth, campaign.ProtoEIG,
			campaign.ProtoFDBA, campaign.ProtoSM},
		Sizes:       []int{4, 7, 10}, // classical t = ⌊(n−1)/3⌋ each
		Schemes:     []string{sig.SchemeEd25519},
		Adversaries: []string{campaign.AdvNone, campaign.AdvCrashRelay},
		SeedBase:    1995,
		SeedCount:   5,
	}

	// 2. Expand to the deterministic instance list. Expansion applies
	// the skip rules (eig keeps only n > 3t, unsigned protocols drop the
	// scheme axis) and fixes the order every worker count must respect.
	instances, err := campaign.Expand(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("spec %q expands to %d isolated instances; the first three:\n", spec.Name, len(instances))
	for _, inst := range instances[:3] {
		fmt.Printf("  #%d %s seed=%d\n", inst.Index, inst.GroupKey(), inst.Seed)
	}

	// 3. Execute. Four worker shards run the instances concurrently;
	// each instance derives its RNG, key material, and counters from its
	// own coordinates, so the shards share nothing and the report is
	// byte-identical to a -workers=1 run.
	report, err := campaign.Run(spec, 4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}

	// 4. Read the aggregates: per configuration, agreement and discovery
	// rates plus message/byte/round distributions over the seeds.
	fmt.Println()
	report.Table().Render(os.Stdout)

	// The headline numbers, pulled out of the report programmatically:
	// with authentication the honest chain run costs n−1 messages — and
	// the FDBA agreement extension costs exactly the same when nothing
	// fails, against the nonauth baseline's (t+1)(n−1) and SM(t)'s O(n²)
	// at the same size.
	fmt.Println()
	for _, g := range report.Groups {
		if g.Adversary != campaign.AdvNone {
			continue
		}
		switch g.Protocol {
		case campaign.ProtoChain, campaign.ProtoNonAuth, campaign.ProtoFDBA, campaign.ProtoSM:
			fmt.Printf("%-8s n=%-3d t=%d  %3.0f msgs/run (agree rate %.2f)\n",
				g.Protocol, g.N, g.T, g.Messages.Mean, g.AgreeRate)
		}
	}
}
