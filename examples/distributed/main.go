// Distributed: the same campaign, one process or a fleet — and a worker
// crashing mid-sweep changes nothing but the scheduler's stats.
//
// A coordinator listens on localhost TCP and leases instance batches to
// two workers. Worker "doomed" is wrapped with the fault-injection
// harness to crash the moment its second lease arrives — the same as
// kill -9 mid-campaign. The coordinator notices the disconnect, requeues
// the orphaned batch onto "steady" (with backoff, outside the batch's
// excluded-worker set), and completes the sweep. The payoff is printed
// last: the distributed, crash-ridden report is byte-for-byte identical
// to a clean single-process run, because the report records WHAT the
// campaign measured, never HOW it was scheduled — who ran what, the
// crash, the retry all live in the scheduler's outcome envelope.
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/campaign"
	"repro/internal/sched"
	"repro/internal/sched/faults"
	"repro/internal/sig"
	"repro/internal/transport"
)

func main() {
	spec := campaign.Spec{
		Name:        "distributed-demo",
		Protocols:   []string{campaign.ProtoChain, campaign.ProtoNonAuth},
		Sizes:       []int{4, 6},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{campaign.AdvNone, campaign.AdvCrashRelay},
		SeedBase:    42,
		SeedCount:   6,
	}
	instances, err := campaign.Expand(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d instances (2 protocols x 2 sizes x 2 adversaries x 6 seeds)\n\n", len(instances))

	// Baseline: the whole sweep in-process, one worker.
	clean, err := campaign.Run(spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	cleanJSON, err := clean.CanonicalJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-process run: %d results, %d bytes of canonical report\n", len(clean.Results), len(cleanJSON))

	// Distributed: a coordinator on localhost TCP, two workers dialing in.
	listener, err := transport.ListenConn("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()
	coord := sched.NewCoordinator(context.Background(), sched.Config{
		BatchSize:   4,
		LeaseTTL:    2 * time.Second,
		RetryBudget: 4,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MinWorkers:  2, // don't start until both workers joined
	})
	go coord.Serve(listener)

	startWorker := func(name string, stack ...faults.Behavior) {
		conn, err := transport.DialConn(listener.Addr())
		if err != nil {
			log.Fatal(err)
		}
		if len(stack) > 0 {
			conn = faults.Wrap(conn, stack...)
		}
		go sched.RunWorker(context.Background(), conn, sched.WorkerConfig{Name: name})
	}
	fmt.Printf("\ncoordinator on %s, leasing batches of 4\n", listener.Addr())
	fmt.Println(`worker "steady" joins clean`)
	fmt.Println(`worker "doomed" joins rigged to crash when its 2nd lease arrives`)
	startWorker("steady")
	startWorker("doomed", faults.CrashAtBatch(2))

	report, err := campaign.RunWith(spec, coord)
	if err != nil {
		log.Fatal(err)
	}
	out := coord.Outcome()
	fmt.Printf("\nscheduler outcome: %s\n", out.Stats)
	if out.Stats.WorkersLost > 0 {
		fmt.Println("the crash happened — and the sweep finished anyway")
	}
	if len(out.DLQ) > 0 {
		log.Fatalf("unexpected dead letters: %+v", out.DLQ)
	}

	distJSON, err := report.CanonicalJSON()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(distJSON, cleanJSON) {
		log.Fatal("reports diverged — the determinism contract is broken")
	}
	fmt.Printf("\ndistributed report == single-process report (%d bytes, byte-identical)\n", len(distJSON))
	fmt.Println("worker count, placement, crashes, and retries left no trace in the data")
}
