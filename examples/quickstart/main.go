// Quickstart: the paper's contribution in a dozen lines.
//
// Establish local authentication once (3n(n−1) messages, no trusted
// dealer, any number of Byzantine nodes), then run failure discovery for
// n−1 messages per run instead of the non-authenticated O(n·t).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	// A cluster of 8 nodes that must tolerate up to 2 Byzantine faults.
	cluster, err := core.New(model.Config{N: 8, T: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 — local authentication (paper Fig. 1). Every node generates
	// its own key pair and proves possession to every peer with a nonce
	// challenge. No trusted dealer, no prior agreement.
	kd, err := cluster.EstablishAuthentication()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local authentication established: %d messages in %d rounds\n",
		kd.Snapshot.Messages, kd.Snapshot.CommunicationRounds)

	// Step 2 — authenticated failure discovery (paper Fig. 2). The sender
	// P0 proposes a value; every correct node either accepts it or
	// discovers that a failure occurred.
	rep, err := cluster.RunFailureDiscovery([]byte("commit block #1"))
	if err != nil {
		log.Fatal(err)
	}
	value, ok := rep.AgreedValue()
	fmt.Printf("failure discovery: %d messages, agreed=%v value=%q\n",
		rep.Snapshot.Messages, ok, value)

	// Step 3 — run it as often as you like; the linear per-run cost is
	// the whole point.
	for i := 2; i <= 4; i++ {
		if _, err := cluster.RunFailureDiscovery([]byte(fmt.Sprintf("commit block #%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after %d runs: %d total messages (%d were the one-off key distribution)\n",
		cluster.Ledger().FDRuns(), cluster.Ledger().TotalMessages(), cluster.Ledger().KeyDistMessages())
}
