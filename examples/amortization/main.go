// Amortization: when does paying 3n(n−1) messages for local
// authentication beat running non-authenticated failure discovery?
//
// This example reproduces the paper's core economic argument with real
// measured runs: two identical clusters execute k failure-discovery runs,
// one having established local authentication (then n−1 messages/run),
// one using the non-authenticated O(n·t) baseline. The ledger shows the
// crossover after a handful of runs.
//
//	go run ./examples/amortization
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
)

func main() {
	const (
		n    = 16
		tol  = 5 // ⌊(n−1)/3⌋
		runs = 15
	)

	authenticated, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := authenticated.EstablishAuthentication(); err != nil {
		log.Fatal(err)
	}
	baseline, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}

	tbl := metrics.NewTable(
		fmt.Sprintf("measured message totals, n=%d t=%d", n, tol),
		"run", "local-auth total", "non-auth total", "leader")
	for k := 1; k <= runs; k++ {
		payload := []byte(fmt.Sprintf("decision %d", k))
		if _, err := authenticated.RunFailureDiscovery(payload); err != nil {
			log.Fatal(err)
		}
		if _, err := baseline.RunFailureDiscovery(payload, core.WithProtocol(core.ProtocolNonAuth)); err != nil {
			log.Fatal(err)
		}
		a, b := authenticated.Ledger().TotalMessages(), baseline.Ledger().TotalMessages()
		leader := "non-auth"
		if a <= b {
			leader = "local-auth"
		}
		tbl.AddRow(k, a, b, leader)
	}
	fmt.Print(tbl)

	f := core.AmortizationFor(n, tol, runs)
	fmt.Printf("\nformula says crossover at k* = %d runs; every run after that saves %d messages\n",
		f.CrossoverRun, (tol+1)*(n-1)-(n-1))

	// The same economics in wall-clock terms: Cluster.Reset is the
	// canonical many-runs-one-setup idiom. One cluster pays key
	// generation and the 3n(n−1)-message handshake once; every later
	// batch of runs just Resets onto a fresh seed — no re-keying, no
	// handshake, a clean ledger. Compare rebuilding from scratch per
	// batch (what a naive harness does) against Reset reuse.
	const batches, runsPerBatch = 5, 10
	rebuildStart := time.Now()
	for b := 0; b < batches; b++ {
		c, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(int64(b)), core.WithKeySeed(1))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			log.Fatal(err)
		}
		for k := 0; k < runsPerBatch; k++ {
			if _, err := c.RunFailureDiscovery([]byte("batch decision")); err != nil {
				log.Fatal(err)
			}
		}
	}
	rebuild := time.Since(rebuildStart)

	reuseStart := time.Now()
	c, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(0), core.WithKeySeed(1))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		log.Fatal(err)
	}
	for b := 0; b < batches; b++ {
		c.Reset(int64(b)) // fresh seed + clean ledger, keys and handshake kept
		for k := 0; k < runsPerBatch; k++ {
			if _, err := c.RunFailureDiscovery([]byte("batch decision")); err != nil {
				log.Fatal(err)
			}
		}
	}
	reuse := time.Since(reuseStart)

	fmt.Printf("\n%d batches × %d runs, n=%d: rebuild-per-batch %v, Cluster.Reset reuse %v (%.1fx)\n",
		batches, runsPerBatch, n, rebuild.Round(time.Millisecond), reuse.Round(time.Millisecond),
		float64(rebuild)/float64(reuse))
}
