// TCP cluster: the protocols over real sockets, with a Byzantine node.
//
// Boots a 6-node TCP mesh on localhost, establishes local authentication
// over the wire, then runs failure discovery twice: once failure-free and
// once with node 2 replaced by a silent Byzantine process. The second run
// shows discovery working over a real network exactly as in the
// simulator.
//
//	go run ./examples/tcpcluster
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"net"
	"sync"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/transport"
)

const (
	clusterN = 6
	clusterT = 2
)

func main() {
	cfg := model.Config{N: clusterN, T: clusterT}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		log.Fatal(err)
	}

	endpoints := bootMesh(cfg.N)
	defer func() {
		for _, ep := range endpoints {
			ep.Close()
		}
	}()

	// Local authentication over TCP.
	kdNodes := make([]*keydist.Node, cfg.N)
	kdProcs := make([]sim.Process, cfg.N)
	for i := 0; i < cfg.N; i++ {
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, rand.Reader)
		if err != nil {
			log.Fatal(err)
		}
		kdNodes[i] = node
		kdProcs[i] = node
	}
	counters := metrics.NewCounters()
	if _, err := transport.RunCluster(endpoints, kdProcs, keydist.RoundsTotal, counters); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key distribution over TCP: %s\n\n", counters.Snapshot())

	// Run 1: failure-free.
	outcomes := runFD(cfg, endpoints, kdNodes, nil)
	fmt.Println("run 1 (failure-free):")
	for _, o := range outcomes {
		fmt.Printf("  %s\n", o)
	}

	// Run 2: node 2 (a relay) turns Byzantine-silent.
	outcomes = runFD(cfg, endpoints, kdNodes, map[model.NodeID]sim.Process{2: sim.Silent{}})
	fmt.Println("\nrun 2 (node P2 silent):")
	for _, o := range outcomes {
		if o.Node == 2 {
			continue // the faulty node reports nothing meaningful
		}
		fmt.Printf("  %s\n", o)
	}
}

// bootMesh starts one TCPMesh per node, concurrently, on free ports.
func bootMesh(n int) []transport.Transport {
	addrs := make(map[model.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[model.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	endpoints := make([]transport.Transport, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := transport.NewTCPMesh(model.NodeID(i), addrs)
			if err != nil {
				log.Fatalf("node %d: %v", i, err)
			}
			endpoints[i] = m
		}(i)
	}
	wg.Wait()
	return endpoints
}

// runFD executes one chain failure-discovery run over the mesh, with
// optional process overrides, and returns the correct nodes' outcomes.
func runFD(cfg model.Config, endpoints []transport.Transport, kdNodes []*keydist.Node, overrides map[model.NodeID]sim.Process) []model.Outcome {
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*fd.ChainNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := overrides[id]; ok {
			procs[i] = p
			continue
		}
		var opts []fd.ChainOption
		if id == fd.Sender {
			opts = append(opts, fd.WithValue([]byte("replicate: x=42")))
		}
		node, err := fd.NewChainNode(cfg, id, kdNodes[i].Signer(), kdNodes[i].Directory(), opts...)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = node
		procs[i] = node
	}
	if _, err := transport.RunCluster(endpoints, procs, fd.ChainEngineRounds(cfg.T), nil); err != nil {
		log.Fatal(err)
	}
	var out []model.Outcome
	for _, n := range nodes {
		if n != nil {
			out = append(out, n.Outcome())
		}
	}
	return out
}
