// Example netcond walks through the network-realism layer: declare
// degraded network conditions, run the same protocol grid under the
// ideal network, a healing partition, and a node crash/restart, and
// read how the paper's guarantees degrade — or survive — in each.
//
// The paper's model assumes reliable bounded-time delivery (N1).
// Conditions relax N1 selectively: link degradation (latency, loss,
// partitions) voids the premise of the F1–F3 guarantees, so those
// verdicts are computed but marked net-excused; churn does NOT — a
// crashed-and-restarted node is a faulty process over an ideal
// network, squarely inside the model, so churn runs are scored in
// full and must still pass.
//
// Run with: go run ./examples/netcond
package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/netcond"
	"repro/internal/sig"
)

func main() {
	// 1. A condition is plain data. The compact syntax is what the CLIs
	// take; netcond.Parse turns it into the same structured Spec a JSON
	// campaign document would carry under "netcond_specs".
	cond, err := netcond.Parse("latency=uniform-0-2,loss=0.05")
	if err != nil {
		fmt.Fprintf(os.Stderr, "netcond: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("parsed %q: canonical name %s, degrades links: %v\n",
		"latency=uniform-0-2,loss=0.05", cond.CanonicalName(), cond.DegradesLinks())

	// 2. Conditions are a campaign axis like protocols or adversaries.
	// This grid runs chain failure discovery and the FDBA agreement
	// extension under three networks: ideal, an even-odd partition that
	// heals at round 3, and node 2 crashing in round 2 and restarting —
	// with its durable key state recovered — in round 4.
	spec := campaign.Spec{
		Name:        "network-realism",
		Protocols:   []string{campaign.ProtoChain, campaign.ProtoFDBA},
		Cases:       []campaign.Case{{N: 4, T: 1}},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{campaign.AdvNone},
		NetConds: []string{
			"ideal",
			"partition=even-odd@1-3",
			"churn=2@2-4",
		},
		SeedBase:  1995,
		SeedCount: 5,
	}
	report, err := campaign.Run(spec, 4)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	report.Table().Render(os.Stdout)

	// 3. Read the verdicts. Under the partition, chain's crossing
	// messages are held past the accept deadline — every run discovers
	// the failure (discovery under a broken network is the protocol
	// working), and the verdicts are net-excused because N1 is void.
	// Under churn the links stay ideal: verdicts are scored in full,
	// and restart-with-recovery keeps them clean.
	fmt.Println()
	for _, g := range report.Groups {
		label := g.NetCond
		if label == "" {
			label = "ideal"
		}
		fmt.Printf("%-6s %-22s agree %.2f  discover %.2f  conformant %d/%d\n",
			g.Protocol, label, g.AgreeRate, g.DiscoveryRate, g.Conformant, g.Instances)
	}
	excused := 0
	for _, res := range report.Results {
		if res.Conformance != nil && res.Conformance.NetExcused {
			excused++
		}
	}
	fmt.Printf("\n%d of %d verdicts net-excused (link-degrading conditions only — churn is never excused)\n",
		excused, len(report.Results))
}
