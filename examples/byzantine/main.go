// Byzantine: what the protocols do when nodes actually misbehave.
//
// Four hand-wired scenarios against an 8-node cluster tolerating t=2
// faults:
//
//  1. a relay goes silent mid-chain          → missing-message discovery
//  2. a relay swaps in a forged chain        → sub-message check discovery
//  3. the sender equivocates                 → duplicate-message discovery
//  4. the key-distribution G3 attack (mixed
//     predicates) followed by a chain run    → Theorem 4 discovery
//
// then the same machinery driven declaratively: composable adversary
// strategies (seeded coalitions, delayed delivery, behavior stacks)
// parsed from the campaign syntax and scored against the paper's
// conformance predicates.
//
// In every case the paper's weak properties hold: nodes either agree or
// somebody correct discovers a failure — never a silent split.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/adversary"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

func main() {
	runScenario("silent relay P1", func(c *core.Cluster) []core.RunOption {
		return []core.RunOption{core.WithProcess(1, sim.Silent{})}
	})

	runScenario("forging relay P1", func(c *core.Cluster) []core.RunOption {
		signer, err := c.Signer(1)
		if err != nil {
			log.Fatal(err)
		}
		return []core.RunOption{core.WithProcess(1,
			adversary.NewResignRelay(c.Config(), 1, signer, []byte("forged value")))}
	})

	runScenario("equivocating sender P0", func(c *core.Cluster) []core.RunOption {
		signer, err := c.Signer(0)
		if err != nil {
			log.Fatal(err)
		}
		return []core.RunOption{core.WithProcess(0,
			adversary.NewEquivocatingSender(c.Config(), signer, []byte("yes"), []byte("no"), 4))}
	})

	mixedPredicateScenario()
	strategyScenarios()
}

// strategyScenarios runs the declarative counterpart: each line is a
// composable strategy in the campaign's compact syntax, executed as an
// isolated campaign instance and judged by the conformance harness. The
// same 8-node, t=2 configuration; the seed drives the coalition draws.
func strategyScenarios() {
	fmt.Println("── composable strategies (campaign syntax + conformance verdicts) ──")
	for _, syntax := range []string{
		"coalition:size=2,behavior=crash,round=2",
		"coalition:size=1,behavior=delay,delay=2",
		"sender:behavior=equivocate,partition=even-odd",
		"nodes=2:behavior=drop,victims=5+6,behavior=duplicate,victims=1",
	} {
		strat, err := campaign.ParseAdversary(syntax)
		if err != nil {
			log.Fatal(err)
		}
		inst := campaign.Instance{
			Protocol: campaign.ProtoChain, N: 8, T: 2,
			Scheme: sig.SchemeEd25519, Adversary: strat.Name, Strategy: strat,
			Seed: 7, KeySeed: 7,
		}
		res := campaign.RunInstance(inst)
		if res.Err != "" {
			log.Fatalf("%s: %s", syntax, res.Err)
		}
		v := res.Conformance
		verdict := "CONFORMANT"
		if !v.Conformant() {
			verdict = "VIOLATED " + strings.Join(v.Violations, ",")
		}
		fmt.Printf("  %-55s corrupt=%v agreed=%v discovered=%v → %s\n",
			strat.Name, strat.CorruptSet(inst.N, inst.Seed), res.Agreed, res.Discovered, verdict)
	}
	fmt.Println("  every strategy lands in the paper's dichotomy: agree, or somebody correct discovers")
}

// runScenario builds a fresh authenticated cluster, injects the fault,
// and reports every node's outcome plus the F1–F3 verdicts.
func runScenario(name string, faults func(*core.Cluster) []core.RunOption) {
	fmt.Printf("── scenario: %s ──\n", name)
	cluster, err := core.New(model.Config{N: 8, T: 2}, core.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.EstablishAuthentication(); err != nil {
		log.Fatal(err)
	}
	value := []byte("the true value")
	opts := faults(cluster)
	rep, err := cluster.RunFailureDiscovery(value, opts...)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		fmt.Printf("  %s\n", o)
	}
	faulty := model.NewNodeSet()
	for _, o := range rep.Outcomes {
		_ = o
	}
	// The injected IDs are known per scenario; for the report we infer
	// nothing and just show the property verdicts against node 1/0 as
	// injected above — simplest to re-check all three with the worst case
	// assumption that the overridden node was faulty.
	switch name {
	case "silent relay P1", "forging relay P1":
		faulty.Add(1)
	case "equivocating sender P0":
		faulty.Add(0)
	}
	fmt.Printf("  F1=%v F2=%v F3=%v discoveries=%d\n\n",
		core.CheckF1(rep.Outcomes, faulty) == nil,
		core.CheckF2(rep.Outcomes, faulty) == nil,
		core.CheckF3(rep.Outcomes, faulty, fd.Sender, value) == nil,
		len(rep.Discoveries))
}

// mixedPredicateScenario shows the paper's G3 gap end-to-end: key
// distribution cannot detect a node handing different public keys to
// different peers, but the chain protocol discovers the split the moment
// the forked key is USED.
func mixedPredicateScenario() {
	fmt.Println("── scenario: mixed-predicate sender (G3 attack) ──")
	cfg := model.Config{N: 8, T: 2}
	cluster, err := core.New(cfg, core.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	mixed, err := adversary.NewMixedPredicateNode(cfg, 0, cluster.Scheme(), sim.SeededReader(99), model.NewNodeSet(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.EstablishAuthentication(core.WithKeyDistProcess(0, mixed)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  key distribution completed — the G3 split is invisible so far")

	sender := sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		chain, err := sig.NewChain([]byte("v"), mixed.SignerFor(1))
		if err != nil {
			log.Fatal(err)
		}
		return []model.Message{{To: 1, Kind: model.KindChainValue, Payload: chain.Marshal()}}
	})
	rep, err := cluster.RunFailureDiscovery(nil, core.WithProcess(0, sender))
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		fmt.Printf("  %s\n", o)
	}
	fmt.Printf("  the forked key was discovered the moment it was used (%d discoveries)\n",
		len(rep.Discoveries))
}
