// Example customdriver shows the protocol driver registry as an
// extension API: a new agreement protocol, written in THIS file, joins
// the campaign grid — declarative sweeps, composable adversaries,
// worker-sharded determinism, and F1–F3 conformance scoring — by
// registering one protocol.Driver. Nothing inside internal/campaign
// knows it exists.
//
// The toy protocol is "flood consensus": the sender broadcasts its
// value in round 1, every receiver re-broadcasts what it first accepted
// in round 2, and everyone decides the majority of what they saw
// (their own accepted value included), defaulting when nothing arrived.
// It is deliberately naive — a two-faced sender splits it — which makes
// it a nice demonstration of the conformance harness catching a
// protocol that does NOT meet the paper's predicates, right next to the
// registered drivers that do.
//
// Run with: go run ./examples/customdriver
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// floodNode is one correct participant of the toy flood protocol.
type floodNode struct {
	id       model.NodeID
	cfg      model.Config
	value    []byte // sender only
	accepted []byte
	seen     [][]byte
	decided  []byte
	finished bool
}

func (f *floodNode) Step(round int, received []model.Message) []model.Message {
	for _, m := range received {
		if m.Kind != model.KindPlainValue {
			continue
		}
		if f.accepted == nil {
			f.accepted = m.Payload
		}
		f.seen = append(f.seen, m.Payload)
	}
	switch round {
	case 1:
		if f.id != 0 {
			return nil
		}
		f.accepted = f.value
		f.seen = append(f.seen, f.value)
		return model.AppendBroadcast(nil, f.cfg.N, f.id, model.KindPlainValue, f.value)
	case 2:
		if f.accepted == nil {
			return nil
		}
		return model.AppendBroadcast(nil, f.cfg.N, f.id, model.KindPlainValue, f.accepted)
	case 3:
		f.decided = majority(f.seen)
		f.finished = true
	}
	return nil
}

func (f *floodNode) Finished() bool { return f.finished }

// majority returns the most frequent value, or a default when the view
// is empty.
func majority(seen [][]byte) []byte {
	best, bestCount := []byte("\x00default"), 0
	counts := map[string]int{}
	for _, v := range seen {
		counts[string(v)]++
		if counts[string(v)] > bestCount {
			best, bestCount = v, counts[string(v)]
		}
	}
	return best
}

// floodDriver packages the protocol for the registry. Compare with the
// built-in drivers in internal/protocol: same shape, one file.
type floodDriver struct{}

func (floodDriver) Name() string { return "flood" }

// Capabilities: unsigned (no scheme axis), nothing to cache, and no
// bespoke two-faced sender — so expansion skips equivocate mixes.
func (floodDriver) Capabilities() protocol.Capabilities {
	return protocol.Capabilities{}
}

// Verdicts: flood is unauthenticated, so the registry's canned
// below-resilience excusal is the honest reading of its failures.
func (floodDriver) Verdicts() protocol.VerdictMapper {
	return protocol.VerdictsUnauthenticatedFD
}

func (floodDriver) Prepare(protocol.Instance, *protocol.SetupCache) (protocol.Setup, error) {
	return nil, nil
}

func (floodDriver) Run(inst protocol.Instance, _ protocol.Setup) (protocol.Outcome, error) {
	cfg := inst.Config()
	faulty := inst.Faulty()
	value := []byte("value")
	procs := make([]sim.Process, inst.N)
	nodes := make([]*floodNode, inst.N)
	for i := 0; i < inst.N; i++ {
		node := &floodNode{id: model.NodeID(i), cfg: cfg, value: value}
		if faulty.Contains(model.NodeID(i)) {
			// The simplest wiring: corrupt nodes crash. A full driver would
			// compile inst.Strategy.Behaviors like the built-ins do.
			procs[i] = sim.Silent{}
			continue
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	res, err := sim.RunInstance(cfg, procs, 3, sim.WithCounters(counters))
	if err != nil {
		return protocol.Outcome{}, err
	}
	outcomes := make([]model.Outcome, 0, inst.N)
	agreed := true
	var first []byte
	for i, node := range nodes {
		if node == nil {
			continue
		}
		outcomes = append(outcomes, model.Outcome{
			Node: model.NodeID(i), Decided: node.decided != nil, Value: node.decided,
		})
		if first == nil {
			first = node.decided
		} else if !bytes.Equal(node.decided, first) {
			agreed = false
		}
	}
	return protocol.Outcome{
		Rounds:     res.Rounds,
		RoundBound: 3,
		Snapshot:   counters.Snapshot(),
		Agreed:     agreed,
		SubRuns:    []protocol.SubRun{{Sender: 0, Initial: value, Outcomes: outcomes}},
	}, nil
}

func main() {
	// One call: the protocol now exists everywhere the registry is
	// consulted — campaign specs, fdcampaign flags, conformance scoring.
	protocol.Register(floodDriver{})

	spec := campaign.Spec{
		Name:        "custom-driver-demo",
		Protocols:   []string{"flood", campaign.ProtoChain},
		Sizes:       []int{4, 7},
		Adversaries: []string{campaign.AdvNone, campaign.AdvCrashSender, campaign.AdvCrashRelay},
		SeedBase:    7,
		SeedCount:   5,
	}
	report, err := campaign.Run(spec, 2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "customdriver: %v\n", err)
		os.Exit(1)
	}
	report.Table().Render(os.Stdout)
	fmt.Println()
	fmt.Println("The flood rows were produced by the driver defined in this file;")
	fmt.Println("the chain rows by the built-in registry. Same sweep, same verdicts.")
}
