// Observability walkthrough: the obs event layer, the invariance
// contract, and the fdreport analytics on top.
//
// The repo's reports are deterministic — a campaign report is a pure
// function of its Spec, byte for byte. That is exactly why they carry
// no wall-clock timing: timing varies run to run, so it lives in a
// separate channel. This example shows that channel end to end:
//
//  1. run the same campaign with and without a recorder and verify the
//     reports are byte-identical (observation is a pure reader),
//  2. look at the per-instance spans the recorder captured — the
//     wall-time, verdict, and setup-cache outcome the report omits,
//  3. write a JSONL trace file and aggregate it the way
//     `fdreport trace` does,
//  4. attach the engine tracer to a single cluster run for per-round
//     spans.
//
//	go run ./examples/observability
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sig"
)

func main() {
	spec := campaign.Spec{
		Name:        "observability-demo",
		Protocols:   []string{"chain", "fdba"},
		Sizes:       []int{4},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{campaign.AdvNone, campaign.AdvCrashRelay},
		SeedBase:    1995,
		SeedCount:   5,
	}

	// 1. The invariance: tracing on vs off, same report bytes.
	plain, err := campaign.Run(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(sink)
	observed, err := campaign.Run(spec, 2, campaign.WithObserver(rec))
	if err != nil {
		log.Fatal(err)
	}
	rec.Flush()
	jPlain, _ := plain.CanonicalJSON()
	jObserved, _ := observed.CanonicalJSON()
	fmt.Printf("reports byte-identical with tracing on/off: %v (%d bytes)\n\n",
		bytes.Equal(jPlain, jObserved), len(jPlain))

	// 2. What the trace knows that the report does not: wall-time per
	// instance, verdict, and whether the amortized setup cache served it.
	spans := sink.Scoped("campaign.instance")
	fmt.Printf("captured %d campaign.instance events; a few closed spans:\n", len(spans))
	shown := 0
	for _, e := range spans {
		if e.Kind != obs.KindEnd || shown == 3 {
			continue
		}
		fmt.Printf("  inst=%-2d proto=%-5s %8.3fms  %s\n",
			e.Inst, e.Proto, float64(e.Dur)/1e6, e.Attrs)
		shown++
	}

	// 3. The operator path: a JSONL trace file, aggregated by scope —
	// this is `fdcampaign -trace-out t.jsonl` + `fdreport trace t.jsonl`.
	path := filepath.Join(os.TempDir(), "observability-demo.jsonl")
	jsonl, err := obs.CreateJSONL(path)
	if err != nil {
		log.Fatal(err)
	}
	fileRec := obs.NewRecorder(jsonl)
	if _, err := campaign.Run(spec, 2, campaign.WithObserver(fileRec)); err != nil {
		log.Fatal(err)
	}
	fileRec.Close() // flushes the ring and the file buffer
	events, err := report.LoadTrace(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d events); aggregated by scope:\n", path, len(events))
	report.TraceTable(report.AggregateTrace(events)).Render(os.Stdout)
	os.Remove(path)

	// 4. Below the campaign: a single cluster lifecycle with the engine
	// tracer attached emits spans for the keydist phase, the FD run, and
	// every simulator round in between.
	clusterSink := &obs.MemorySink{}
	clusterRec := obs.NewRecorder(clusterSink)
	cluster, err := core.New(model.Config{N: 4, T: 1},
		core.WithScheme(sig.SchemeToy), core.WithObserver(clusterRec))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.EstablishAuthentication(); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.RunFailureDiscovery([]byte("observe me")); err != nil {
		log.Fatal(err)
	}
	clusterRec.Flush()
	fmt.Printf("\nsingle cluster lifecycle, by scope:\n")
	report.TraceTable(report.AggregateTrace(clusterSink.Events())).Render(os.Stdout)
}
