// Package repro's root benchmarks: one testing.B target per experiment in
// EXPERIMENTS.md. Each benchmark reports the experiment's headline metric
// (messages, entries, or crossover) via b.ReportMetric alongside wall
// time, so `go test -bench=. -benchmem` regenerates the paper's
// quantitative story.
package repro

import (
	"crypto/rand"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/ba"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/perfbench"
	"repro/internal/sig"
	"repro/internal/sim"
)

// mustCluster builds an established cluster for benchmarks.
func mustCluster(b *testing.B, n, t int, seed int64) *core.Cluster {
	b.Helper()
	c, err := core.New(model.Config{N: n, T: t}, core.WithSeed(seed))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkE1KeyDistribution measures the cost of establishing local
// authentication (paper claim: 3n(n−1) messages, 3 rounds).
func BenchmarkE1KeyDistribution(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var msgs int
			for i := 0; i < b.N; i++ {
				c, err := core.New(model.Config{N: n, T: (n - 1) / 3}, core.WithSeed(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rep, err := c.EstablishAuthentication()
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Snapshot.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(float64(keydist.ExpectedMessages(n)), "paper-3n(n-1)")
		})
	}
}

// BenchmarkE2AuthenticatedFD measures one chain-protocol run (paper
// claim: n−1 messages, the minimum).
func BenchmarkE2AuthenticatedFD(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c := mustCluster(b, n, (n-1)/3, 42)
			b.ResetTimer()
			var msgs int
			for i := 0; i < b.N; i++ {
				rep, err := c.RunFailureDiscovery([]byte("value"))
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Snapshot.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(float64(n-1), "paper-n-1")
		})
	}
}

// BenchmarkE3NonAuthFD measures one baseline run (paper claim: O(n·t)).
func BenchmarkE3NonAuthFD(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		t := (n - 1) / 3
		b.Run(fmt.Sprintf("n=%d_t=%d", n, t), func(b *testing.B) {
			c, err := core.New(model.Config{N: n, T: t}, core.WithSeed(42))
			if err != nil {
				b.Fatal(err)
			}
			var msgs int
			for i := 0; i < b.N; i++ {
				rep, err := c.RunFailureDiscovery([]byte("value"), core.WithProtocol(core.ProtocolNonAuth))
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Snapshot.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(float64(fd.NonAuthMessages(n, t)), "paper-(t+1)(n-1)")
		})
	}
}

// BenchmarkE4Amortization measures the full lifecycle — key distribution
// plus k authenticated runs — and reports the crossover run count.
func BenchmarkE4Amortization(b *testing.B) {
	const n, t, k = 16, 5, 10
	for i := 0; i < b.N; i++ {
		c := mustCluster(b, n, t, int64(i))
		for r := 0; r < k; r++ {
			if _, err := c.RunFailureDiscovery([]byte("v")); err != nil {
				b.Fatal(err)
			}
		}
	}
	a := core.AmortizationFor(n, t, k)
	b.ReportMetric(float64(a.CrossoverRun), "crossover-k*")
	b.ReportMetric(float64(a.LocalAuthTotal), "localauth-msgs")
	b.ReportMetric(float64(a.NonAuthTotal), "nonauth-msgs")
}

// BenchmarkE8Baselines contrasts OM(t), SM(t), and FD costs.
func BenchmarkE8Baselines(b *testing.B) {
	b.Run("OMt/n=10_t=3", func(b *testing.B) {
		cfg := model.Config{N: 10, T: 3}
		var total int64
		for i := 0; i < b.N; i++ {
			entries := new(atomic.Int64)
			procs := make([]sim.Process, cfg.N)
			for j := 0; j < cfg.N; j++ {
				opts := []ba.EIGOption{ba.WithEntryCounter(entries)}
				if model.NodeID(j) == ba.Sender {
					opts = append(opts, ba.WithEIGValue([]byte("v")))
				}
				node, err := ba.NewEIGNode(cfg, model.NodeID(j), opts...)
				if err != nil {
					b.Fatal(err)
				}
				procs[j] = node
			}
			eng, err := sim.New(cfg, procs)
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(ba.EIGEngineRounds(cfg.T))
			total = entries.Load()
		}
		b.ReportMetric(float64(total), "relayed-entries")
	})
	b.Run("FD/n=10_t=3", func(b *testing.B) {
		c := mustCluster(b, 10, 3, 7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.RunFailureDiscovery([]byte("v")); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(9), "messages")
	})
}

// BenchmarkE9SmallRange measures the silence-as-default saving.
func BenchmarkE9SmallRange(b *testing.B) {
	for _, v := range []byte{0, 1} {
		b.Run(fmt.Sprintf("value=%d", v), func(b *testing.B) {
			c := mustCluster(b, 16, 5, 11)
			b.ResetTimer()
			var msgs int
			for i := 0; i < b.N; i++ {
				rep, err := c.RunFailureDiscovery([]byte{v}, core.WithProtocol(core.ProtocolSmallRange))
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Snapshot.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// BenchmarkE10Sign measures per-scheme signing cost.
func BenchmarkE10Sign(b *testing.B) {
	msg := []byte("benchmark message for scheme comparison")
	for _, name := range []string{sig.SchemeEd25519, sig.SchemeECDSA, sig.SchemeHMAC} {
		b.Run(name, func(b *testing.B) {
			scheme, err := sig.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			signer, err := scheme.Generate(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := signer.Sign(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10Verify measures per-scheme verification cost.
func BenchmarkE10Verify(b *testing.B) {
	msg := []byte("benchmark message for scheme comparison")
	for _, name := range []string{sig.SchemeEd25519, sig.SchemeECDSA, sig.SchemeHMAC} {
		b.Run(name, func(b *testing.B) {
			scheme, err := sig.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			signer, err := scheme.Generate(rand.Reader)
			if err != nil {
				b.Fatal(err)
			}
			sg, err := signer.Sign(msg)
			if err != nil {
				b.Fatal(err)
			}
			pred := signer.Predicate()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !pred.Test(msg, sg) {
					b.Fatal("verify failed")
				}
			}
		})
	}
}

// BenchmarkE10ChainVerify measures full chain verification as a function
// of chain length (bytes grow linearly; verification cost with it),
// cold (memo reset each iteration) and warm (memoized re-verification).
// The bodies live in internal/perfbench, shared with `fdbench -perf`.
func BenchmarkE10ChainVerify(b *testing.B) {
	for _, hops := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("hops=%d/cold", hops), perfbench.ChainVerify(hops, true))
		b.Run(fmt.Sprintf("hops=%d/warm", hops), perfbench.ChainVerify(hops, false))
	}
}

// BenchmarkE5E6E7Properties runs the adversarial property matrices once
// per iteration — the Monte-Carlo engines behind experiments E5–E7.
func BenchmarkE5E6E7Properties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5Theorem2(1)
		experiments.E6E7Properties(1)
	}
}

// BenchmarkE11LocalAuthBA runs the G3-attack comparison (SM splits, FD
// discovers) once per iteration.
func BenchmarkE11LocalAuthBA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E11LocalAuthBA(1)
	}
}

// BenchmarkE12VectorFD measures the all-senders vector round: n rotated
// chain instances, n(n−1) messages, sharing t+1 rounds.
func BenchmarkE12VectorFD(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			tol := (n - 1) / 3
			cfg := model.Config{N: n, T: tol}
			scheme, err := sig.ByName(sig.SchemeEd25519)
			if err != nil {
				b.Fatal(err)
			}
			kd := make([]*keydist.Node, n)
			kdProcs := make([]sim.Process, n)
			for i := 0; i < n; i++ {
				node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(12, i)))
				if err != nil {
					b.Fatal(err)
				}
				kd[i] = node
				kdProcs[i] = node
			}
			eng, err := sim.New(cfg, kdProcs)
			if err != nil {
				b.Fatal(err)
			}
			eng.Run(keydist.RoundsTotal)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				procs := make([]sim.Process, n)
				for j := 0; j < n; j++ {
					node, err := fd.NewVectorNode(cfg, model.NodeID(j), kd[j].Signer(), kd[j].Directory(), []byte("p"))
					if err != nil {
						b.Fatal(err)
					}
					procs[j] = node
				}
				eng, err := sim.New(cfg, procs)
				if err != nil {
					b.Fatal(err)
				}
				eng.Run(fd.ChainEngineRounds(tol))
			}
			b.ReportMetric(float64(fd.VectorMessages(n)), "messages")
		})
	}
}

// BenchmarkChainExtend measures one chain extension (sign + derive the
// next nested encoding) at several chain lengths.
func BenchmarkChainExtend(b *testing.B) {
	for _, hops := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("hops=%d", hops), perfbench.ChainExtend(hops))
	}
}

// BenchmarkEIG runs a full failure-free OM(t) agreement at n=16 — the
// EIG hot path: path-keyed tree ingestion, relaying, and the bottom-up
// resolve.
func BenchmarkEIG(b *testing.B) {
	for _, bc := range []struct{ n, t int }{{10, 3}, {16, 3}, {16, 5}, {64, 2}, {128, 2}} {
		b.Run(fmt.Sprintf("n=%d_t=%d", bc.n, bc.t), perfbench.EIG(bc.n, bc.t))
	}
}

// BenchmarkFDRun measures authenticated failure-discovery runs with
// fresh values (no memo riding) on an established n=16 cluster.
func BenchmarkFDRun(b *testing.B) {
	b.Run("n=16_t=5", perfbench.FDRun(16, 5))
}

// BenchmarkKeydistHandshake measures the full local-authentication setup
// (n key generations + the 3n(n−1)-message handshake) that
// Cluster.Reset and the campaign setup cache amortize away.
func BenchmarkKeydistHandshake(b *testing.B) {
	b.Run("n=16_t=5", perfbench.KeydistHandshake(16, 5))
}

// BenchmarkKeydistRoundTrip measures the per-peer challenge→respond→
// verify unit on the zero-alloc codec path.
func BenchmarkKeydistRoundTrip(b *testing.B) {
	b.Run("ed25519", perfbench.HandshakeRoundTrip(sig.SchemeEd25519))
	b.Run("toy", perfbench.HandshakeRoundTrip(sig.SchemeToy))
}

// BenchmarkCampaignChainSweep measures the many-runs-one-setup workload:
// a 100-seed chain sweep at one (scheme, n, t) cell, with per-instance
// setup (cold) vs the per-worker setup cache (warm).
func BenchmarkCampaignChainSweep(b *testing.B) {
	b.Run("cold/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, false))
	b.Run("warm/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, true))
}

// BenchmarkCampaignFDBASweep is the same workload over the FDBA
// agreement extension: identical setup cell, 2t+6-round agreement runs.
func BenchmarkCampaignFDBASweep(b *testing.B) {
	b.Run("cold/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, false))
	b.Run("warm/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, true))
}

// BenchmarkSchedChainSweep is the warm chain sweep again, dispatched
// through the coordinator/worker scheduler over an in-memory pipe: the
// delta against BenchmarkCampaignChainSweep/warm is the lease/checksum/
// JSON overhead of crash tolerance when nothing crashes.
func BenchmarkSchedChainSweep(b *testing.B) {
	b.Run("n=8_t=2_seeds=100", perfbench.SchedChainSweep(8, 2, 100))
}

// BenchmarkServeSustained measures the agreement service under
// sustained concurrent load: 8 client connections across 2 tenants
// hammering one warm pool cell through an in-memory fdserve daemon.
// Reports p50-ns/p99-ns per-request latency and inst/sec throughput
// alongside wall time — the service-level numbers the BENCH trajectory
// tracks from PR 10 on.
func BenchmarkServeSustained(b *testing.B) {
	b.Run("chain/n=8_t=2_clients=8", perfbench.ServeChainSustained(8, 2, 8, 200))
}
