// Command fdsim runs one simulated cluster lifecycle — key distribution
// followed by failure-discovery runs — and prints the traffic ledger and
// per-node outcomes.
//
// Usage:
//
//	fdsim -n 8 -t 2 -runs 3
//	fdsim -n 16 -t 5 -protocol nonauth
//	fdsim -n 8 -t 2 -protocol fdba          # FD→BA agreement extension
//	fdsim -n 8 -t 2 -protocol sm            # SM(t) signed messages
//	fdsim -n 8 -t 2 -fault silent-relay     # inject a fault
//	fdsim -n 8 -t 2 -trace -                # log every delivery to stderr
//	fdsim -n 8 -t 2 -trace run.trace        # ... or to a file
//	fdsim -n 8 -t 2 -netcond "latency=fixed-1,loss=0.05"    # degraded network
//	fdsim -n 8 -t 2 -netcond "partition=even-odd@1-3"       # healing partition
//	fdsim -n 8 -t 2 -netcond "churn=2@2-4"  # P2 crashes round 2, rejoins round 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sim"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of nodes")
		t        = flag.Int("t", 2, "fault bound")
		runs     = flag.Int("runs", 1, "failure-discovery runs after key distribution")
		protocol = flag.String("protocol", "chain", "chain | nonauth | smallrange | fdba | sm")
		scheme   = flag.String("scheme", "ed25519", "signature scheme")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		value    = flag.String("value", "example-value", "sender's initial value")
		fault    = flag.String("fault", "", "inject: silent-relay | silent-sender | tamper-relay | equivocating-sender")
		trace    = flag.String("trace", "", "write a per-delivery message trace to this path ('-' = stderr)")
		netcondF = flag.String("netcond", "", "network condition (compact syntax, e.g. \"latency=fixed-1,loss=0.05\" or \"partition=even-odd@1-3,churn=2@2-4\"; empty = ideal)")
	)
	flag.Parse()
	if err := run(*n, *t, *runs, *protocol, *scheme, *seed, *value, *fault, *trace, *netcondF); err != nil {
		fmt.Fprintf(os.Stderr, "fdsim: %v\n", err)
		os.Exit(1)
	}
}

// openTracer builds the buffered delivery tracer for -trace; the
// returned WriterTracer's Close flushes (and closes the file when one
// was opened).
func openTracer(path string) (*sim.WriterTracer, error) {
	if path == "-" {
		return sim.NewWriterTracer(os.Stderr), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return sim.NewWriterTracer(f), nil
}

func run(n, t, runs int, protocol, scheme string, seed int64, value, fault, trace, netcondStr string) error {
	nc, err := netcond.Parse(netcondStr)
	if err != nil {
		return err
	}
	coreOpts := []core.Option{core.WithScheme(scheme), core.WithSeed(seed)}
	if trace != "" {
		tracer, err := openTracer(trace)
		if err != nil {
			return err
		}
		defer tracer.Close()
		coreOpts = append(coreOpts, core.WithTracer(tracer))
	}
	cluster, err := core.New(model.Config{N: n, T: t}, coreOpts...)
	if err != nil {
		return err
	}

	proto := core.ProtocolChain
	switch protocol {
	case "chain":
	case "nonauth":
		proto = core.ProtocolNonAuth
	case "smallrange":
		proto = core.ProtocolSmallRange
		value = "\x01"
	case "fdba":
		proto = core.ProtocolFDBA
	case "sm":
		proto = core.ProtocolSM
	default:
		return fmt.Errorf("unknown protocol %q", protocol)
	}

	if proto != core.ProtocolNonAuth {
		rep, err := cluster.EstablishAuthentication()
		if err != nil {
			return err
		}
		fmt.Printf("key distribution: %s\n", rep)
	}

	for i := 0; i < runs; i++ {
		opts := []core.RunOption{core.WithProtocol(proto)}
		if !nc.IsIdeal() {
			// Fresh model per run: each run replays the same scripted
			// degradation from round 1.
			if nc.DegradesLinks() {
				opts = append(opts, core.WithNetwork(netcond.NewModel(nc, n, seed)))
			}
			for _, ch := range nc.Churn {
				opts = append(opts, core.WithChurn(ch))
			}
		}
		if fault != "" {
			faultOpts, err := buildFault(cluster, fault, value)
			if err != nil {
				return err
			}
			opts = append(opts, faultOpts...)
		}
		rep, err := cluster.RunFailureDiscovery([]byte(value), opts...)
		if err != nil {
			return err
		}
		fmt.Printf("run %d: %s\n", i+1, rep)
		for _, o := range rep.Outcomes {
			fmt.Printf("  %s\n", o)
		}
	}
	fmt.Printf("ledger: total=%d messages (keydist=%d, %d runs)\n",
		cluster.Ledger().TotalMessages(), cluster.Ledger().KeyDistMessages(), cluster.Ledger().FDRuns())
	return nil
}

// buildFault wires the named adversary into the next run.
func buildFault(c *core.Cluster, name, value string) ([]core.RunOption, error) {
	switch name {
	case "silent-relay":
		return []core.RunOption{core.WithProcess(1, sim.Silent{})}, nil
	case "silent-sender":
		return []core.RunOption{core.WithProcess(0, sim.Silent{})}, nil
	case "tamper-relay":
		signer, err := c.Signer(1)
		if err != nil {
			return nil, err
		}
		return []core.RunOption{core.WithProcess(1,
			adversary.NewResignRelay(c.Config(), 1, signer, []byte("forged")))}, nil
	case "equivocating-sender":
		signer, err := c.Signer(0)
		if err != nil {
			return nil, err
		}
		return []core.RunOption{core.WithProcess(0,
			adversary.NewEquivocatingSender(c.Config(), signer, []byte(value), []byte(value+"'"), model.NodeID(c.Config().N/2)))}, nil
	default:
		return nil, fmt.Errorf("unknown fault %q", name)
	}
}
