// Command fdcampaign runs declarative scenario sweeps over the
// failure-discovery and agreement protocols: a Spec (JSON file or flags)
// names a grid over protocol × n × t × signature scheme × adversary mix
// × seed range, and the campaign engine executes the expanded instances
// on a sharded worker pool and aggregates the outcomes.
//
// The protocol vocabulary is the driver registry (internal/protocol):
// every registered driver — the five failure-discovery variants plus the
// fdba and sm agreement protocols — sweeps through the same grid,
// adversary strategies, setup-cache amortization, and conformance
// gating. -list-protocols prints the registry.
//
// Usage:
//
//	fdcampaign                             # built-in demo grid, all CPUs
//	fdcampaign -list-protocols             # registered drivers and their axes
//	fdcampaign -spec sweep.json            # load a spec document
//	fdcampaign -protocols chain,fdba,sm -sizes 4,7 -seeds 5
//	fdcampaign -workers 1 -json out.json   # reproducible machine output
//	fdcampaign -json -                     # JSON to stdout
//	fdcampaign -setupcache=false           # regenerate all key material per
//	                                       # instance (differential baseline)
//	fdcampaign -trace-out run.jsonl        # structured event trace (instance
//	                                       # spans; report bytes unchanged)
//
// Distributed mode splits the sweep across processes: a coordinator
// owns the spec and leases instance batches to workers over TCP
// (internal/sched), surviving worker crashes, stalls, and disconnects
// by requeueing with backoff and dead-lettering after a bounded retry
// budget. The report is byte-identical to a single-process run; exit
// status 3 means the sweep completed with a non-empty dead-letter
// queue (written via -dlq):
//
//	fdcampaign -coordinator :9000 -expect-workers 2 -json out.json -dlq dlq.json
//	fdcampaign -coordinator :9000 -debug-addr :9090  # live /debug/sched + pprof
//	fdcampaign -coordinator :9000 -trace-out sched.jsonl  # scheduler lifecycle trace
//	fdcampaign -worker localhost:9000                # as many as you like
//	fdcampaign -worker localhost:9000 -faults crash@2  # fault-injected worker
//
// SIGINT/SIGTERM drain gracefully: in-flight leases are parked in the
// DLQ and the partial report is still emitted.
//
// Adversaries are legacy alias names or composable strategy specs
// (selector:param,...  — see adversary.ParseStrategy). Because strategy
// specs use commas internally, multiple -adversaries entries separate on
// ";" when any strategy spec is present:
//
//	fdcampaign -adversaries none,crash-relay            # legacy list
//	fdcampaign -adversaries "none;coalition:size=2,behavior=equivocate,partition=even-odd;relay:behavior=delay,delay=2"
//
// Network conditions sweep as one more grid axis (-netcond, or the
// spec's netconds/netcond_specs fields): declarative latency, loss,
// reorder, bandwidth, scripted partitions, and honest-node
// crash/restart churn, compiled into the deterministic engines — same
// (seed, condition) always means the same report bytes. Conditions use
// commas internally, so several separate on ";":
//
//	fdcampaign -netcond "latency=uniform-0-2,loss=0.05"
//	fdcampaign -netcond "partition=even-odd@1-3;churn=2@2-4" -strict
//
// Degraded links void the paper's synchrony assumption N1, so predicate
// failures under them are recorded but excused (Verdict.NetExcused);
// churn-only conditions leave N1 intact and are scored in full. A
// per-instance watchdog (-inst-timeout) turns a livelocked instance
// into a fixed-string error instead of a hung sweep.
//
// Every completed instance is scored against the paper's conformance
// predicates (termination/agreement/validity, see campaign.Verdict); the
// table's "conform" column reports the per-group pass fraction and
// -strict exits with status 2 when any instance records an unexcused
// violation — a campaign run is a property test over its whole grid.
//
// The aggregate output is byte-identical for any -workers value AND for
// either -setupcache mode on the same spec — the determinism contracts
// the campaign tests and CI enforce. The setup cache only changes how
// fast a sweep runs: key material is a pure function of the spec's seed
// base, so a 1000-seed cell pays key generation and the authentication
// handshake once per worker instead of once per seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/sched"
	"repro/internal/sig"
)

func main() {
	var df distFlags
	flag.StringVar(&df.coordinator, "coordinator", "", "run as campaign coordinator listening on this address; instances are leased to connected -worker processes")
	flag.StringVar(&df.worker, "worker", "", "run as campaign worker serving the coordinator at this address (grid flags are ignored; the coordinator owns the spec)")
	flag.StringVar(&df.workerName, "worker-name", "", "worker name in the coordinator's attempt logs (default worker-<pid>)")
	flag.StringVar(&df.faultSpec, "faults", "", "worker-side fault injection for testing: comma-separated crash@K, stall@K, disconnect@K, corrupt@K, corrupt-all")
	flag.IntVar(&df.expect, "expect-workers", 1, "coordinator: delay dispatch until this many workers joined")
	flag.IntVar(&df.batch, "batch", 0, "coordinator: instances per lease (0 = default)")
	flag.DurationVar(&df.lease, "lease", 0, "coordinator: lease TTL before an unresponsive worker's batch is requeued (0 = default)")
	flag.IntVar(&df.retries, "retries", 0, "coordinator: attempts per batch before dead-lettering (0 = default)")
	flag.StringVar(&df.dlqPath, "dlq", "", "coordinator: write the scheduler outcome (stats + dead-letter queue) JSON to this path ('-' = stdout)")
	flag.StringVar(&df.debugAddr, "debug-addr", "", "coordinator: serve live telemetry over HTTP on this address (/debug/sched JSON snapshot, /debug/vars, /debug/pprof)")
	var (
		specPath    = flag.String("spec", "", "path to a JSON campaign spec (overrides the grid flags)")
		name        = flag.String("name", "fdcampaign", "campaign name used in reports")
		protocols   = flag.String("protocols", "chain,nonauth", "comma-separated protocol driver names (see -list-protocols)")
		listProtos  = flag.Bool("list-protocols", false, "print the registered protocol drivers and exit")
		sizes       = flag.String("sizes", "4,8,16", "comma-separated system sizes n")
		tols        = flag.String("tols", "", "comma-separated fault bounds t (empty = classical (n-1)/3 per size)")
		schemes     = flag.String("schemes", sig.SchemeEd25519, "comma-separated signature schemes")
		adversaries = flag.String("adversaries", "none,crash-relay", "adversary mixes: legacy names (none,crash-sender,crash-relay,equivocate) or strategy specs (coalition:size=2,behavior=equivocate); ';'-separated when specs are present")
		netconds    = flag.String("netcond", "", "network conditions (compact syntax, e.g. \"latency=uniform-0-2,loss=0.05\" or \"partition=even-odd@1-3\"); ';'-separated for several; empty = ideal network")
		instTimeout = flag.Duration("inst-timeout", 0, "per-instance watchdog: abandon an instance still running after this long and record it as an error (0 = off)")
		seedBase    = flag.Int64("seed-base", 19950530, "base seed of the deterministic seed range")
		seeds       = flag.Int("seeds", 10, "seeded repetitions per configuration")
		workers     = flag.Int("workers", 0, "worker shards (0 = one per CPU)")
		setupCache  = flag.Bool("setupcache", true, "reuse key material and established clusters across seeds (false = regenerate per instance; reports are byte-identical either way)")
		sharedKeys  = flag.Bool("sharedkeys", false, "share generated key material across workers via a process-global cache (each cell's keys are generated once, not once per worker; reports are byte-identical either way)")
		jsonOut     = flag.String("json", "", "write the machine-readable report to this path ('-' = stdout)")
		csv         = flag.Bool("csv", false, "render the summary table as CSV")
		strict      = flag.Bool("strict", false, "exit with status 2 when any instance violates a conformance predicate")
		traceOut    = flag.String("trace-out", "", "write a structured JSONL event trace (instance spans, scheduler lifecycle) to this path; reports stay byte-identical either way")
	)
	flag.Parse()

	if *listProtos {
		listProtocols(os.Stdout)
		return
	}

	// SIGINT/SIGTERM cancel the context: a worker stops serving, a
	// coordinator drains in-flight leases to the DLQ and still emits a
	// valid partial report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var runOpts []campaign.Option
	if !*setupCache {
		runOpts = append(runOpts, campaign.WithoutSetupCache())
	}
	protocol.SetSharedKeyWarmup(*sharedKeys)
	if *instTimeout > 0 {
		runOpts = append(runOpts, campaign.WithInstanceTimeout(*instTimeout))
	}

	// The trace is a pure reader: enabling it cannot change a report
	// byte (the campaign invariance tests pin that), so it is safe to
	// leave on for any run. Worker and local modes trace their executors'
	// instance spans; coordinator mode traces the scheduler lifecycle.
	var rec *obs.Recorder
	if *traceOut != "" {
		sink, err := obs.CreateJSONL(*traceOut)
		if err != nil {
			fatal(err)
		}
		rec = obs.NewRecorder(sink)
		runOpts = append(runOpts, campaign.WithObserver(rec))
	}
	df.observer = rec

	if df.worker != "" {
		code := runWorkerMode(ctx, df, runOpts)
		closeTrace(rec, *traceOut)
		os.Exit(code)
	}

	var (
		spec campaign.Spec
		err  error
	)
	if *specPath != "" {
		spec, err = campaign.LoadSpec(*specPath)
		if err != nil {
			fatal(err)
		}
	} else {
		spec = campaign.Spec{
			Name:        *name,
			Protocols:   splitList(*protocols),
			Sizes:       splitInts(*sizes),
			Tols:        splitInts(*tols),
			Schemes:     splitList(*schemes),
			Adversaries: campaign.SplitAdversaryList(*adversaries),
			NetConds:    campaign.SplitNetCondList(*netconds),
			SeedBase:    *seedBase,
			SeedCount:   *seeds,
		}
		if err := spec.Validate(); err != nil {
			fatal(err)
		}
	}

	instances, err := campaign.Expand(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fdcampaign: %d instances across %d protocols\n",
		len(instances), len(spec.Protocols))

	var (
		report  *campaign.Report
		outcome sched.Outcome
	)
	if df.coordinator != "" {
		report, outcome, err = runCoordinatorMode(ctx, df, spec)
	} else {
		report, err = campaign.Run(spec, *workers, runOpts...)
	}
	closeTrace(rec, *traceOut)
	if err != nil {
		fatal(err)
	}

	if *jsonOut != "" {
		data, err := report.CanonicalJSON()
		if err != nil {
			fatal(err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fdcampaign: wrote %s\n", *jsonOut)
	}
	if *jsonOut != "-" {
		if *csv {
			report.Table().RenderCSV(os.Stdout)
		} else {
			report.Table().Render(os.Stdout)
		}
	}
	deadLettered := false
	if df.coordinator != "" {
		deadLettered = emitOutcome(outcome, df.dlqPath)
	}
	if violations := report.Violations(); violations > 0 {
		fmt.Fprintf(os.Stderr, "fdcampaign: %d conformance violation(s):\n", violations)
		for _, g := range report.Groups {
			if len(g.Violations) > 0 {
				fmt.Fprintf(os.Stderr, "  %s: %s (%d/%d conformant)\n",
					g.Key, strings.Join(g.Violations, ","), g.Conformant, g.Instances-g.Errors)
			}
		}
		if *strict {
			os.Exit(2)
		}
	}
	// DLQ non-emptiness is an exit-status signal of its own: the sweep
	// COMPLETED, but not every instance executed.
	if deadLettered {
		os.Exit(3)
	}
}

// listProtocols renders the driver registry: one row per registered
// protocol with its declared scheme use, setup-cache eligibility,
// equivocation support, and (n, t) axis constraints.
func listProtocols(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-9s %-12s %-11s %s\n",
		"protocol", "schemes", "setup-cache", "equivocate", "axes")
	for _, d := range protocol.Drivers() {
		caps := d.Capabilities()
		schemes := "unsigned"
		if caps.UsesSignatures {
			schemes = "signed"
		}
		cache := "fresh"
		if caps.CacheableSetup {
			cache = "cacheable"
		}
		equivocate := "no"
		if caps.SupportsEquivocate {
			equivocate = "yes"
		}
		var axes []string
		if caps.RequiresSupermajority {
			axes = append(axes, "n>3t")
		}
		if caps.MaxN > 0 {
			axes = append(axes, fmt.Sprintf("n<=%d", caps.MaxN))
		}
		if len(axes) == 0 {
			axes = append(axes, "any t<n")
		}
		fmt.Fprintf(w, "%-12s %-9s %-12s %-11s %s\n",
			d.Name(), schemes, cache, equivocate, strings.Join(axes, ", "))
	}
}

// closeTrace flushes and closes the -trace-out recorder (no-op when
// tracing is off) and reports where the trace went.
func closeTrace(rec *obs.Recorder, path string) {
	if !rec.Enabled() {
		return
	}
	if err := rec.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "fdcampaign: trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "fdcampaign: wrote trace %s\n", path)
}

// splitList parses a comma-separated list, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// splitInts parses a comma-separated integer list.
func splitInts(s string) []int {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			fatal(fmt.Errorf("fdcampaign: bad integer %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fdcampaign: %v\n", err)
	os.Exit(1)
}
