package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sched/faults"
	"repro/internal/transport"
)

// distFlags carries the distributed-mode configuration out of main.
type distFlags struct {
	coordinator string // listen address: run the coordinator here
	worker      string // coordinator address: run a worker here
	workerName  string
	faultSpec   string // worker-side fault injection (testing/demos)
	expect      int    // MinWorkers
	batch       int
	lease       time.Duration
	retries     int
	dlqPath     string // where the scheduler outcome JSON goes ("" = stderr summary)
	debugAddr   string // coordinator live-telemetry HTTP address ("" = off)

	observer *obs.Recorder // -trace-out recorder (nil = tracing off)
}

// runWorkerMode dials the coordinator and serves leases until it sends
// shutdown, the link dies, or ctx is canceled. Returns a process exit
// code.
func runWorkerMode(ctx context.Context, df distFlags, opts []campaign.Option) int {
	conn, err := transport.DialConn(df.worker, transport.WithConnWriteTimeout(10*time.Second))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdcampaign: worker dial: %v\n", err)
		return 1
	}
	if df.faultSpec != "" {
		stack, err := parseFaults(df.faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdcampaign: %v\n", err)
			return 1
		}
		conn = faults.Wrap(conn, stack...)
	}
	name := df.workerName
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	fmt.Fprintf(os.Stderr, "fdcampaign: worker %q serving coordinator %s\n", name, df.worker)
	err = sched.RunWorker(ctx, conn, sched.WorkerConfig{Name: name, Options: opts})
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "fdcampaign: worker %q released\n", name)
		return 0
	case ctx.Err() != nil:
		fmt.Fprintf(os.Stderr, "fdcampaign: worker %q interrupted\n", name)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "fdcampaign: worker %q: %v\n", name, err)
		return 1
	}
}

// runCoordinatorMode executes the spec through the lease-based scheduler,
// accepting workers on the configured address. Canceling ctx (SIGINT /
// SIGTERM) drains in-flight leases to the DLQ and still returns the
// partial report.
func runCoordinatorMode(ctx context.Context, df distFlags, spec campaign.Spec) (*campaign.Report, sched.Outcome, error) {
	listener, err := transport.ListenConn(df.coordinator)
	if err != nil {
		return nil, sched.Outcome{}, err
	}
	defer listener.Close()
	fmt.Fprintf(os.Stderr, "fdcampaign: coordinator on %s (waiting for %d worker(s))\n",
		listener.Addr(), df.expect)
	coord := sched.NewCoordinator(ctx, sched.Config{
		BatchSize:   df.batch,
		LeaseTTL:    df.lease,
		RetryBudget: df.retries,
		MinWorkers:  df.expect,
		Observer:    df.observer,
	})
	go coord.Serve(listener)
	if df.debugAddr != "" {
		dbg := &http.Server{Addr: df.debugAddr, Handler: coord.DebugMux()}
		defer dbg.Close()
		go func() {
			fmt.Fprintf(os.Stderr, "fdcampaign: debug endpoint on http://%s/debug/sched\n", df.debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "fdcampaign: debug endpoint: %v\n", err)
			}
		}()
	}
	report, err := campaign.RunWith(spec, coord)
	if err != nil {
		return nil, sched.Outcome{}, err
	}
	return report, coord.Outcome(), nil
}

// emitOutcome writes the scheduler outcome: JSON to the -dlq path ('-' =
// stdout) plus a stderr summary. Returns whether the DLQ is non-empty.
func emitOutcome(out sched.Outcome, path string) bool {
	fmt.Fprintf(os.Stderr, "fdcampaign: scheduler: %s\n", out.Stats)
	if path != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if path == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(path, data, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "fdcampaign: wrote %s\n", path)
		}
	}
	for _, dl := range out.DLQ {
		fmt.Fprintf(os.Stderr, "fdcampaign: DLQ batch %d (%d instance(s), %s): %s\n",
			dl.Batch, len(dl.Instances), strings.Join(dl.Groups, " "), dl.Reason)
		for i, a := range dl.Attempts {
			fmt.Fprintf(os.Stderr, "  attempt %d on %s after %dms: %s\n", i+1, a.Worker, a.ElapsedMS, a.Err)
		}
	}
	return len(out.DLQ) > 0
}

// parseFaults parses the -faults spec: comma-separated entries of
// crash@K, stall@K, disconnect@K, corrupt@K, or corrupt-all.
func parseFaults(spec string) ([]faults.Behavior, error) {
	var stack []faults.Behavior
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if entry == "corrupt-all" {
			stack = append(stack, faults.CorruptAllResults())
			continue
		}
		kind, arg, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("fdcampaign: bad fault %q (want kind@K or corrupt-all)", entry)
		}
		k, err := strconv.Atoi(arg)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("fdcampaign: bad fault count in %q", entry)
		}
		switch kind {
		case "crash":
			stack = append(stack, faults.CrashAtBatch(k))
		case "stall":
			stack = append(stack, faults.StallAtBatch(k))
		case "disconnect":
			stack = append(stack, faults.DisconnectAtResult(k))
		case "corrupt":
			stack = append(stack, faults.CorruptResultAt(k))
		default:
			return nil, fmt.Errorf("fdcampaign: unknown fault kind %q", kind)
		}
	}
	if len(stack) == 0 {
		return nil, fmt.Errorf("fdcampaign: empty fault spec")
	}
	return stack, nil
}
