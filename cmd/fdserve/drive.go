package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
)

type clientFlags struct {
	connect  string
	tenant   string
	protocol string
	n, t     int
	scheme   string
	value    string
	seeds    int
	seedBase int64
	conns    int
	stats    bool
	strict   bool
}

// driveSummary is the client mode's machine-readable output.
type driveSummary struct {
	Tenant        string       `json:"tenant"`
	Requested     int          `json:"requested"`
	Served        int          `json:"served"`
	Conformant    int          `json:"conformant"`
	Errors        int          `json:"errors"`
	BusyRetries   int          `json:"busy_retries"`
	Rejected      int          `json:"rejected"`
	LatencyMS     metrics.Dist `json:"latency_ms"`
	PoolHits      int          `json:"pool_hits"`
	DurationMS    float64      `json:"duration_ms"`
	InstPerSecond float64      `json:"inst_per_second"`
}

// busyRetryCap bounds how often one request is resubmitted after busy
// rejections before the client gives up on it.
const busyRetryCap = 50

func clientMode(f clientFlags) int {
	if f.conns < 1 {
		f.conns = 1
	}
	var (
		mu      sync.Mutex
		sum     = driveSummary{Tenant: f.tenant, Requested: f.seeds}
		latency metrics.Series
		wg      sync.WaitGroup
		fail    error
	)
	start := time.Now()
	for c := 0; c < f.conns; c++ {
		cl, err := service.Dial(f.connect, f.tenant)
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func(c int, cl *service.Client) {
			defer wg.Done()
			defer cl.Close()
			// Connection c serves seeds c, c+conns, c+2·conns, ...
			for s := c; s < f.seeds; s += f.conns {
				req := service.Request{
					Index: s, Protocol: f.protocol, N: f.n, T: f.t, Scheme: f.scheme,
					Seed: f.seedBase + int64(s), KeySeed: f.seedBase,
				}
				if f.value != "" {
					req.Value = []byte(f.value)
				}
				reply, retries, err := doWithRetry(cl, req)
				mu.Lock()
				sum.BusyRetries += retries
				if err != nil {
					var rej *service.RejectError
					if errors.As(err, &rej) {
						sum.Rejected++
						fmt.Fprintf(os.Stderr, "fdserve: seed %d rejected: %v\n", req.Seed, rej)
					} else if fail == nil {
						fail = err
					}
					mu.Unlock()
					return
				}
				sum.Served++
				if reply.Result.Err != "" {
					sum.Errors++
				} else if reply.Result.Conformance.Conformant() {
					sum.Conformant++
				}
				if reply.Source == "pool-hit" {
					sum.PoolHits++
				}
				latency.Add(float64(reply.QueueNS+reply.RunNS) / 1e6)
				mu.Unlock()
			}
		}(c, cl)
	}
	wg.Wait()
	if fail != nil {
		fatal(fail)
	}
	elapsed := time.Since(start)
	sum.LatencyMS = latency.Dist()
	sum.DurationMS = float64(elapsed.Nanoseconds()) / 1e6
	if elapsed > 0 && sum.Served > 0 {
		sum.InstPerSecond = float64(sum.Served) / elapsed.Seconds()
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if f.seeds > 0 {
		enc.Encode(sum)
	}

	if f.stats {
		cl, err := service.Dial(f.connect, f.tenant)
		if err != nil {
			fatal(err)
		}
		snap, err := cl.Stats()
		cl.Close()
		if err != nil {
			fatal(err)
		}
		enc.Encode(snap)
	}

	if f.strict && (sum.Errors > 0 || sum.Rejected > 0 || sum.Conformant != sum.Served) {
		fmt.Fprintf(os.Stderr, "fdserve: strict: %d/%d conformant, %d errors, %d rejected\n",
			sum.Conformant, sum.Served, sum.Errors, sum.Rejected)
		return 2
	}
	return 0
}

// doWithRetry submits one request, resubmitting after busy rejections
// (sleeping the server's hint) up to busyRetryCap times. Draining and
// bad-request rejections are terminal — retrying cannot help.
func doWithRetry(cl *service.Client, req service.Request) (*service.Reply, int, error) {
	retries := 0
	for {
		reply, err := cl.Do(req)
		if err == nil {
			return reply, retries, nil
		}
		var rej *service.RejectError
		if !errors.As(err, &rej) || rej.Code != service.RejectBusy || retries >= busyRetryCap {
			return nil, retries, err
		}
		retries++
		wait := rej.RetryAfter
		if wait <= 0 {
			wait = 10 * time.Millisecond
		}
		time.Sleep(wait)
	}
}
