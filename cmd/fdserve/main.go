// Command fdserve is the agreement-as-a-service daemon: a long-lived
// server that multiplexes many concurrent agreement instances over
// shared framed connections, amortizing key generation and the
// authentication handshake across requests through a warm-cluster pool.
// Every other entry point in the repository is one-shot — set up, run a
// campaign or benchmark, exit; fdserve turns the same deterministic
// machinery into a service with tenancy, admission control, and
// graceful drain, while serving verdicts byte-identical to what a local
// campaign.Run would produce for the same (protocol, n, t, scheme,
// seed, keySeed) request.
//
// Server mode:
//
//	fdserve -addr :9100                         # serve agreement requests
//	fdserve -addr :9100 -shards 8 -queue 128    # executor shards, per-tenant queue bound
//	fdserve -addr :9100 -rekey-every 1000       # rotate warm-pool key epochs
//	fdserve -addr :9100 -debug-addr :9190       # live /debug/serve + pprof
//	fdserve -addr :9100 -trace-out serve.jsonl  # per-request spans (obs JSONL)
//	fdserve -addr :9100 -stats-out stats.json   # final snapshot on shutdown
//
// SIGINT/SIGTERM drain gracefully: admission stops (new submits get
// "draining" rejections), queued instances run to completion and are
// answered, and the final stats snapshot — valid even mid-stream — is
// written to -stats-out before exit.
//
// Backpressure is explicit: each tenant has a bounded FIFO per executor
// shard, and a full queue answers with a busy rejection carrying a
// retry-after hint instead of buffering without bound. Tenants are
// served round-robin, so one flooding tenant cannot starve another.
//
// Client mode drives a server (CI smoke, load tests, ad-hoc requests):
//
//	fdserve -connect localhost:9100 -tenant alpha -protocol chain -n 8 -t 2 -seeds 100
//	fdserve -connect localhost:9100 -tenant beta -protocol fdba -scheme toy -conns 4 -strict
//	fdserve -connect localhost:9100 -tenant ops -stats   # just fetch the snapshot
//
// The client retries busy rejections after the server's hint, treats
// draining/bad-request as terminal, prints a JSON summary (served
// count, conformance, latency distribution), and with -strict exits 2
// when any verdict is non-conformant or errored.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/sig"
	"repro/internal/transport"
)

func main() {
	var (
		addr       = flag.String("addr", "", "server mode: listen for agreement clients on this address")
		shards     = flag.Int("shards", 0, "server: executor shards (0 = default 4)")
		queue      = flag.Int("queue", 0, "server: per-tenant FIFO bound per shard (0 = default 64)")
		poolIdle   = flag.Int("pool-idle", 0, "server: warm setup caches parked per pool cell (0 = default 2)")
		rekeyEvery = flag.Int("rekey-every", 0, "server: rotate a pool cell's key epoch every this many served requests (0 = never)")
		retryAfter = flag.Duration("retry-after", 0, "server: backoff hint sent with busy rejections (0 = default 50ms)")
		debugAddr  = flag.String("debug-addr", "", "server: serve live telemetry over HTTP (/debug/serve snapshot, /debug/vars, /debug/pprof)")
		traceOut   = flag.String("trace-out", "", "server: write per-request spans as obs JSONL to this path")
		statsOut   = flag.String("stats-out", "", "server: write the final stats snapshot JSON here on graceful shutdown ('-' = stdout)")
		sharedKeys = flag.Bool("sharedkeys", false, "server: share generated key material across executors via the process-global signer cache (verdict bytes unchanged)")

		connect  = flag.String("connect", "", "client mode: drive the fdserve daemon at this address")
		tenant   = flag.String("tenant", "default", "client: tenant name for the connection handshake")
		protoN   = flag.String("protocol", "chain", "client: protocol driver name")
		n        = flag.Int("n", 4, "client: system size")
		t        = flag.Int("t", 1, "client: fault bound")
		scheme   = flag.String("scheme", sig.SchemeEd25519, "client: signature scheme (ignored by unsigned protocols)")
		value    = flag.String("value", "", "client: sender proposal override (empty = the protocol's canonical value)")
		seeds    = flag.Int("seeds", 1, "client: how many seeded requests to submit")
		seedBase = flag.Int64("seed-base", 1, "client: base of the seed range (KeySeed is always the base)")
		conns    = flag.Int("conns", 1, "client: concurrent connections splitting the seed range")
		stats    = flag.Bool("stats", false, "client: fetch and print the server snapshot after the requests (or alone with -seeds 0)")
		strict   = flag.Bool("strict", false, "client: exit 2 when any verdict is non-conformant or errored")
	)
	flag.Parse()

	switch {
	case *addr != "" && *connect != "":
		fatal(errors.New("-addr and -connect are mutually exclusive"))
	case *addr != "":
		os.Exit(serverMode(serverFlags{
			addr: *addr, shards: *shards, queue: *queue, poolIdle: *poolIdle,
			rekeyEvery: *rekeyEvery, retryAfter: *retryAfter,
			debugAddr: *debugAddr, traceOut: *traceOut, statsOut: *statsOut,
			sharedKeys: *sharedKeys,
		}))
	case *connect != "":
		os.Exit(clientMode(clientFlags{
			connect: *connect, tenant: *tenant, protocol: *protoN,
			n: *n, t: *t, scheme: *scheme, value: *value,
			seeds: *seeds, seedBase: *seedBase, conns: *conns,
			stats: *stats, strict: *strict,
		}))
	default:
		fatal(errors.New("pass -addr to serve or -connect to drive a server (see -h)"))
	}
}

type serverFlags struct {
	addr       string
	shards     int
	queue      int
	poolIdle   int
	rekeyEvery int
	retryAfter time.Duration
	debugAddr  string
	traceOut   string
	statsOut   string
	sharedKeys bool
}

func serverMode(f serverFlags) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	protocol.SetSharedKeyWarmup(f.sharedKeys)

	var rec *obs.Recorder
	if f.traceOut != "" {
		sink, err := obs.CreateJSONL(f.traceOut)
		if err != nil {
			fatal(err)
		}
		rec = obs.NewRecorder(sink)
	}

	srv := service.NewServer(service.Config{
		Shards: f.shards, QueueDepth: f.queue, PoolIdle: f.poolIdle,
		RekeyEvery: f.rekeyEvery, RetryAfter: f.retryAfter, Recorder: rec,
	})

	ln, err := transport.ListenConn(f.addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fdserve: serving agreement requests on %s\n", ln.Addr())

	if f.debugAddr != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "fdserve: debug telemetry on http://%s/debug/serve\n", f.debugAddr)
			if err := http.ListenAndServe(f.debugAddr, srv.DebugMux()); err != nil {
				fmt.Fprintf(os.Stderr, "fdserve: debug server: %v\n", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "fdserve: draining (queued instances run to completion)...")
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdserve: accept: %v\n", err)
		}
	}
	ln.Close()
	snap := srv.Drain()
	fmt.Fprintf(os.Stderr, "fdserve: drained: %d served, %d rejected, %d errors across %d tenants\n",
		snap.Served, snap.Rejected, snap.Errors, len(snap.Tenants))

	if rec.Enabled() {
		if err := rec.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "fdserve: trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "fdserve: wrote trace %s\n", f.traceOut)
		}
	}
	if f.statsOut != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if f.statsOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(f.statsOut, data, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "fdserve: wrote stats %s\n", f.statsOut)
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fdserve: %v\n", err)
	os.Exit(1)
}
