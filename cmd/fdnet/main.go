// Command fdnet runs the full protocol stack over REAL TCP sockets on
// localhost: one goroutine per node, each with its own TCP mesh endpoint,
// executing key distribution and then a chain failure-discovery run.
// It demonstrates that the library is transport-agnostic — the exact same
// node implementations the simulator drives run over the network.
//
// Usage:
//
//	fdnet -n 5 -t 1
//	fdnet -n 8 -t 2 -value "deploy v2.1"
//	fdnet -n 5 -t 1 -trace -                # per-delivery trace to stderr
//	fdnet -n 5 -t 1 -trace run.trace        # ... or to a file
//	fdnet -n 5 -t 1 -netcond "latency=fixed-1,loss=0.1"  # degraded FD phase
//	fdnet -n 5 -t 1 -netcond "churn=2@2-4"  # P2 crashes and rejoins with
//	                                        # its phase-1 keys recovered
package main

import (
	"context"
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/transport"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of nodes")
		t        = flag.Int("t", 1, "fault bound")
		value    = flag.String("value", "hello over tcp", "sender's initial value")
		trace    = flag.String("trace", "", "write a per-delivery message trace to this path ('-' = stderr)")
		netcondF = flag.String("netcond", "", "network condition for the FD phase (compact syntax, e.g. \"latency=fixed-1,loss=0.1\"; key distribution always runs ideal)")
		seed     = flag.Int64("seed", 1, "deterministic seed for the network-condition model")
	)
	flag.Parse()
	// SIGINT/SIGTERM close every mesh endpoint, which unblocks the node
	// goroutines (their Recv fails) so the process exits cleanly instead
	// of leaving sockets half-open.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *n, *t, *value, *trace, *netcondF, *seed); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "fdnet: interrupted, shut down cleanly")
			os.Exit(0)
		}
		fmt.Fprintf(os.Stderr, "fdnet: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, n, tol int, value, trace, netcondStr string, seed int64) error {
	cfg := model.Config{N: n, T: tol}
	if err := cfg.Validate(); err != nil {
		return err
	}
	nc, err := netcond.Parse(netcondStr)
	if err != nil {
		return err
	}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		return err
	}

	// Optional delivery trace, shared by every node's runner: the same
	// buffered WriterTracer the simulator uses, so a socket run's trace
	// compares line for line with fdsim's.
	var runOpts []transport.RunnerOption
	if trace != "" {
		w := io.Writer(os.Stderr)
		if trace != "-" {
			f, err := os.Create(trace)
			if err != nil {
				return err
			}
			w = f
		}
		tracer := sim.NewWriterTracer(w)
		defer tracer.Close()
		runOpts = append(runOpts, transport.WithRunnerTracer(tracer))
	}
	// Wire-level traffic counters, aggregated across all n meshes.
	var wire transport.ConnStats

	// Reserve one localhost port per node.
	addrs := make(map[model.NodeID]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[model.NodeID(i)] = ln.Addr().String()
		ln.Close()
	}
	fmt.Printf("cluster: n=%d t=%d\n", n, tol)
	for i := 0; i < n; i++ {
		fmt.Printf("  P%d @ %s\n", i, addrs[model.NodeID(i)])
	}

	// Bring up the mesh: every node connects concurrently.
	endpoints := make([]transport.Transport, n)
	var meshErr error
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := transport.NewTCPMesh(model.NodeID(i), addrs, transport.WithMeshStats(&wire))
			mu.Lock()
			defer mu.Unlock()
			if err != nil && meshErr == nil {
				meshErr = fmt.Errorf("node %d: %w", i, err)
				return
			}
			endpoints[i] = m
		}(i)
	}
	wg.Wait()
	if meshErr != nil {
		return meshErr
	}
	closeAll := func() {
		for _, ep := range endpoints {
			if ep != nil {
				ep.Close()
			}
		}
	}
	defer closeAll()
	// Graceful shutdown: a signal tears the meshes down, failing the
	// in-progress RunCluster instead of hanging on a dead barrier.
	watchdog := make(chan struct{})
	defer close(watchdog)
	go func() {
		select {
		case <-ctx.Done():
			closeAll()
		case <-watchdog:
		}
	}()

	// Phase 1: key distribution over TCP.
	kdNodes := make([]*keydist.Node, n)
	kdProcs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, rand.Reader)
		if err != nil {
			return err
		}
		kdNodes[i] = node
		kdProcs[i] = node
	}
	counters := metrics.NewCounters()
	if _, err := transport.RunCluster(endpoints, kdProcs, keydist.RoundsTotal, counters, runOpts...); err != nil {
		return err
	}
	fmt.Printf("\nkey distribution over TCP: %s\n", counters.Snapshot())
	for _, node := range kdNodes {
		if !node.Accepted() {
			return fmt.Errorf("%v accepted only %d/%d predicates", node.ID(), node.Directory().Len(), n)
		}
	}
	fmt.Printf("all %d nodes accepted all predicates (3n(n-1) = %d messages)\n",
		n, keydist.ExpectedMessages(n))

	// Phase 2: chain failure discovery over the same sockets. Only this
	// phase is degraded: the paper establishes authentication once on a
	// healthy network, failures (including network ones) come later.
	fdOpts := append([]transport.RunnerOption{}, runOpts...)
	if nc.DegradesLinks() {
		// One private model per node runner: each draws only from its own
		// directed self→* link streams, so the concurrent runners replay
		// exactly the fates the lockstep engine would.
		fdOpts = append(fdOpts, transport.WithRunnerNetwork(func(model.NodeID) sim.Network {
			return netcond.NewModel(nc, n, seed)
		}))
		fmt.Printf("\nnetwork condition: %s (seed %d)\n", nc.CanonicalName(), seed)
	}
	fdNodes := make([]*fd.ChainNode, n)
	fdProcs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		var opts []fd.ChainOption
		if model.NodeID(i) == fd.Sender {
			opts = append(opts, fd.WithValue([]byte(value)))
		}
		node, err := fd.NewChainNode(cfg, model.NodeID(i), kdNodes[i].Signer(), kdNodes[i].Directory(), opts...)
		if err != nil {
			return err
		}
		fdNodes[i] = node
		fdProcs[i] = node
	}
	// Churn: the scripted node crashes mid-run and restarts with its key
	// state recovered from phase 1 — restart-with-recovery over real TCP.
	for _, ch := range nc.Churn {
		id := model.NodeID(ch.Node)
		if !id.Valid(n) {
			continue
		}
		i := int(id)
		rebuild := func() (sim.Process, error) {
			var opts []fd.ChainOption
			if id == fd.Sender {
				opts = append(opts, fd.WithValue([]byte(value)))
			}
			return fd.NewChainNode(cfg, id, kdNodes[i].Signer(), kdNodes[i].Directory(), opts...)
		}
		fdProcs[i] = netcond.NewChurner(fdProcs[i], ch, rebuild, nil)
		fmt.Printf("churn: P%d crashes round %d", ch.Node, ch.Crash)
		if ch.Restart > 0 {
			fmt.Printf(", restarts round %d with recovered keys", ch.Restart)
		}
		fmt.Println()
	}
	fdCounters := metrics.NewCounters()
	if _, err := transport.RunCluster(endpoints, fdProcs, fd.ChainEngineRounds(tol), fdCounters, fdOpts...); err != nil {
		return err
	}
	fmt.Printf("\nfailure discovery over TCP: %s\n", fdCounters.Snapshot())
	for _, node := range fdNodes {
		fmt.Printf("  %s\n", node.Outcome())
	}
	fmt.Printf("wire: %s\n", wire.Snapshot())
	return nil
}
