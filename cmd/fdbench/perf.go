package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/perfbench"
	"repro/internal/report"
	"repro/internal/sig"
)

// The perf suite: the repository's headline hot-path benchmarks
// (internal/perfbench — the same closures bench_test.go runs), runnable
// from the fdbench binary (no `go test` needed) and serialized as JSON
// so the perf trajectory across PRs is machine-readable. BENCH_<pr>.json
// files accumulate at the repo root; PERF.md describes the methodology
// and `fdreport diff` gates consecutive files against a threshold.
// The schema and document types live in internal/report (the consumer),
// so the writer and the differ cannot drift apart.

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// perfSuite lists the headline hot paths: chain-signature verification
// (cold and memoized), chain extension, full EIG agreements (deep n=16
// t=3 and the wide n=64/n=128 t=2 grid points),
// authenticated failure-discovery runs with fresh values at n=16, the
// keydist handshake (the setup cost that Reset and the campaign cache
// amortize, plus its per-peer round-trip unit), 100-seed campaign
// sweeps — chain FD and the FDBA agreement extension — with cold
// (per-instance) vs warm (cached) setup, and the agreement service
// under sustained concurrent load (the serve_sustained rows, which
// also carry p50/p99 latency and instances/sec).
func perfSuite() []namedBench {
	return []namedBench{
		{"chain_verify_cold/hops=16", perfbench.ChainVerify(16, true)},
		{"chain_verify_warm/hops=16", perfbench.ChainVerify(16, false)},
		{"chain_extend/hops=16", perfbench.ChainExtend(16)},
		{"eig/n=16_t=3", perfbench.EIG(16, 3)},
		{"eig/n=64_t=2", perfbench.EIG(64, 2)},
		{"eig/n=128_t=2", perfbench.EIG(128, 2)},
		{"fd_chain_run/n=16_t=5", perfbench.FDRun(16, 5)},
		{"keydist_handshake/n=16_t=5", perfbench.KeydistHandshake(16, 5)},
		{"keydist_roundtrip/ed25519", perfbench.HandshakeRoundTrip(sig.SchemeEd25519)},
		{"campaign_chain_sweep_cold/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, false)},
		{"campaign_chain_sweep_warm/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, true)},
		{"campaign_fdba_sweep_cold/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, false)},
		{"campaign_fdba_sweep_warm/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, true)},
		{"sched_chain_sweep/n=8_t=2_seeds=100", perfbench.SchedChainSweep(8, 2, 100)},
		{"serve_sustained/chain/n=8_t=2_clients=8", perfbench.ServeChainSustained(8, 2, 8, 200)},
		{"serve_sustained/fdba/n=8_t=2_clients=8", perfbench.ServeFDBASustained(8, 2, 8, 100)},
	}
}

// gitCommit best-effort identifies the build's source revision: the
// vcs.revision baked in by `go build` when the module is built from a
// git checkout, else the GIT_COMMIT environment variable (CI builds
// from tarballs), else empty.
func gitCommit() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return os.Getenv("GIT_COMMIT")
}

// runPerfSuite executes the headline benchmarks and writes the JSON
// report to path. label names the run in the perf trajectory (usually
// the BENCH_<pr> tag); empty falls back to the BENCH_LABEL environment
// variable.
func runPerfSuite(path, label string) error {
	if label == "" {
		label = os.Getenv("BENCH_LABEL")
	}
	rep := report.PerfReport{
		Schema:     report.PerfSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GitCommit:  gitCommit(),
		Label:      label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, bm := range perfSuite() {
		fmt.Fprintf(os.Stderr, "perf: %s...\n", bm.name)
		res := testing.Benchmark(bm.fn)
		pr := report.PerfResult{
			Name:        bm.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		// Sustained-load benchmarks publish service-level metrics via
		// ReportMetric; copy them into the suite's typed columns so the
		// diff gate can track latency and throughput, not just ns/op.
		pr.P50Ns = res.Extra["p50-ns"]
		pr.P99Ns = res.Extra["p99-ns"]
		pr.OpsPerSec = res.Extra["inst/sec"]
		rep.Benchmarks = append(rep.Benchmarks, pr)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perf: wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	return nil
}
