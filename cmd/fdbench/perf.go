package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/perfbench"
	"repro/internal/sig"
)

// The perf suite: the repository's headline hot-path benchmarks
// (internal/perfbench — the same closures bench_test.go runs), runnable
// from the fdbench binary (no `go test` needed) and serialized as JSON
// so the perf trajectory across PRs is machine-readable. BENCH_<pr>.json
// files accumulate at the repo root; PERF.md describes the methodology.

// perfSchema identifies the JSON layout for downstream tooling.
const perfSchema = "fdbench-perf/v1"

// perfResult is one benchmark's headline numbers.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// perfReport is the whole emitted document.
type perfReport struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Timestamp  string       `json:"timestamp"`
	Benchmarks []perfResult `json:"benchmarks"`
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// perfSuite lists the headline hot paths: chain-signature verification
// (cold and memoized), chain extension, a full EIG agreement at n=16,
// authenticated failure-discovery runs with fresh values at n=16, the
// keydist handshake (the setup cost that Reset and the campaign cache
// amortize, plus its per-peer round-trip unit), and 100-seed campaign
// sweeps — chain FD and the FDBA agreement extension — with cold
// (per-instance) vs warm (cached) setup.
func perfSuite() []namedBench {
	return []namedBench{
		{"chain_verify_cold/hops=16", perfbench.ChainVerify(16, true)},
		{"chain_verify_warm/hops=16", perfbench.ChainVerify(16, false)},
		{"chain_extend/hops=16", perfbench.ChainExtend(16)},
		{"eig/n=16_t=3", perfbench.EIG(16, 3)},
		{"fd_chain_run/n=16_t=5", perfbench.FDRun(16, 5)},
		{"keydist_handshake/n=16_t=5", perfbench.KeydistHandshake(16, 5)},
		{"keydist_roundtrip/ed25519", perfbench.HandshakeRoundTrip(sig.SchemeEd25519)},
		{"campaign_chain_sweep_cold/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, false)},
		{"campaign_chain_sweep_warm/n=8_t=2_seeds=100", perfbench.CampaignChainSweep(8, 2, 100, true)},
		{"campaign_fdba_sweep_cold/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, false)},
		{"campaign_fdba_sweep_warm/n=8_t=2_seeds=100", perfbench.CampaignFDBASweep(8, 2, 100, true)},
		{"sched_chain_sweep/n=8_t=2_seeds=100", perfbench.SchedChainSweep(8, 2, 100)},
	}
}

// runPerfSuite executes the headline benchmarks and writes the JSON
// report to path.
func runPerfSuite(path string) error {
	report := perfReport{
		Schema:    perfSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, bm := range perfSuite() {
		fmt.Fprintf(os.Stderr, "perf: %s...\n", bm.name)
		res := testing.Benchmark(bm.fn)
		report.Benchmarks = append(report.Benchmarks, perfResult{
			Name:        bm.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "perf: wrote %s (%d benchmarks)\n", path, len(report.Benchmarks))
	return nil
}
