// Command fdbench regenerates every experiment table from the paper's
// evaluation (see EXPERIMENTS.md for the index).
//
// Usage:
//
//	fdbench                 # all experiments, report scale
//	fdbench -quick          # all experiments, reduced Monte-Carlo counts
//	fdbench -e E4           # one experiment
//	fdbench -e E10 -rsa     # include the (slow) RSA scheme in E10
//	fdbench -csv            # emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("e", "", "experiment ID (E1..E12); empty = all")
		quick   = flag.Bool("quick", false, "reduced Monte-Carlo counts")
		csv     = flag.Bool("csv", false, "emit CSV")
		withRSA = flag.Bool("rsa", false, "include RSA in E10 (slow)")
	)
	flag.Parse()

	var tables []*metrics.Table
	switch {
	case *exp == "" && *withRSA:
		tables = append(experiments.All(*quick), experiments.E10Schemes(true))
	case *exp == "":
		tables = experiments.All(*quick)
	case *exp == "E10" && *withRSA:
		tables = []*metrics.Table{experiments.E10Schemes(true), experiments.E10Bytes()}
	default:
		var err error
		tables, err = experiments.ByID(*exp, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			os.Exit(1)
		}
	}

	for i, tbl := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
	}
}
