// Command fdbench regenerates every experiment table from the paper's
// evaluation (see EXPERIMENTS.md for the index).
//
// Usage:
//
//	fdbench                 # all experiments, report scale
//	fdbench -quick          # all experiments, reduced Monte-Carlo counts
//	fdbench -e E4           # one experiment
//	fdbench -e E10 -rsa     # include the (slow) RSA scheme in E10
//	fdbench -csv            # emit CSV instead of aligned tables
//	fdbench -perf BENCH_1.json   # run only the headline hot-path
//	                             # benchmarks and write them as JSON
//	                             # (the perf trajectory; see PERF.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("e", "", "experiment ID (E1..E12); empty = all")
		quick   = flag.Bool("quick", false, "reduced Monte-Carlo counts")
		csv     = flag.Bool("csv", false, "emit CSV")
		withRSA = flag.Bool("rsa", false, "include RSA in E10 (slow)")
		perf    = flag.String("perf", "", "run the headline hot-path benchmarks and write them as JSON to this path (skips the experiment tables)")
		label   = flag.String("perf-label", "", "label stamped into the -perf report, e.g. BENCH_7 (default $BENCH_LABEL)")
	)
	flag.Parse()

	if *perf != "" {
		if err := runPerfSuite(*perf, *label); err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: perf suite: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tables []*metrics.Table
	switch {
	case *exp == "" && *withRSA:
		tables = append(experiments.All(*quick), experiments.E10Schemes(true))
	case *exp == "":
		tables = experiments.All(*quick)
	case *exp == "E10" && *withRSA:
		tables = []*metrics.Table{experiments.E10Schemes(true), experiments.E10Bytes()}
	default:
		var err error
		tables, err = experiments.ByID(*exp, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			os.Exit(1)
		}
	}

	for i, tbl := range tables {
		if i > 0 {
			fmt.Println()
		}
		if *csv {
			tbl.RenderCSV(os.Stdout)
		} else {
			tbl.Render(os.Stdout)
		}
	}
}
