package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/report"
)

func writePerf(t *testing.T, dir, name string, ns float64) string {
	t.Helper()
	rep := report.PerfReport{
		Schema: report.PerfSchema, GoVersion: "go1.24",
		Benchmarks: []report.PerfResult{{Name: "bench", NsPerOp: ns, Iterations: 10}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExitCodes pins the CLI contract CI builds on: 0 clean, 1 error,
// 2 regression.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	old := writePerf(t, dir, "old.json", 1000)
	same := writePerf(t, dir, "same.json", 1000)
	slow := writePerf(t, dir, "slow.json", 2000)

	if code := run([]string{"diff", old, same}); code != 0 {
		t.Errorf("clean diff exited %d, want 0", code)
	}
	if code := run([]string{"diff", old, slow}); code != 2 {
		t.Errorf("regressed diff exited %d, want 2", code)
	}
	if code := run([]string{"diff", "-threshold", "200", old, slow}); code != 0 {
		t.Errorf("within-threshold diff exited %d, want 0", code)
	}
	if code := run([]string{"diff", old, filepath.Join(dir, "missing.json")}); code != 1 {
		t.Errorf("missing file exited %d, want 1", code)
	}
	if code := run([]string{"bogus"}); code != 1 {
		t.Errorf("unknown subcommand exited %d, want 1", code)
	}
	if code := run(nil); code != 1 {
		t.Errorf("no args exited %d, want 1", code)
	}
}

// TestTraceSubcommand smoke-tests the JSONL aggregation path.
func TestTraceSubcommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	lines := `{"ts":1,"kind":"begin","scope":"campaign.instance","inst":0,"node":-1}
{"ts":2,"kind":"end","scope":"campaign.instance","inst":0,"node":-1,"dur":1000000}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"trace", path}); code != 0 {
		t.Errorf("trace exited %d, want 0", code)
	}
	if code := run([]string{"trace", filepath.Join(dir, "nope.jsonl")}); code != 1 {
		t.Errorf("missing trace exited %d, want 1", code)
	}
}
