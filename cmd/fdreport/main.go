// Command fdreport is the analytics companion to fdcampaign, fdbench,
// and the obs trace layer: it turns the JSON artifacts the other tools
// emit into human tables and CI verdicts.
//
// Usage:
//
//	fdreport diff [-threshold PCT] OLD NEW   # compare two artifacts
//	fdreport table REPORT.json               # render a campaign sweep table
//	fdreport table -csv REPORT.json          # ... as CSV
//	fdreport trace TRACE.jsonl               # aggregate an obs trace by scope
//
// diff autodetects the shared schema of its two inputs:
//
//   - fdcampaign/v1 reports: conformance is gated exactly (a lost
//     conformant run, a new violated predicate, or an agreement drop
//     always fails), and the per-group cost means (messages, bytes,
//     rounds) are gated against -threshold percent growth.
//   - fdbench-perf/v1 suites: ns/op and allocs/op per benchmark are
//     gated against -threshold; a benchmark missing from the new suite
//     fails too, so the gate cannot silently lose coverage.
//
// Exit status: 0 clean, 1 usage or I/O error, 2 regression detected —
// which is what lets CI use `fdreport diff` as the perf regression gate
// on the committed BENCH_<pr>.json trajectory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 1
	}
	switch args[0] {
	case "diff":
		return runDiff(args[1:])
	case "table":
		return runTable(args[1:])
	case "trace":
		return runTrace(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "fdreport: unknown subcommand %q\n", args[0])
		usage()
		return 1
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  fdreport diff [-threshold PCT] OLD NEW   compare two fdcampaign/v1 or
                                           fdbench-perf/v1 files; exit 2
                                           on regression
  fdreport table [-csv] REPORT.json        render a campaign report table
  fdreport trace TRACE.jsonl               aggregate an obs JSONL trace
`)
}

func runDiff(args []string) int {
	fs := flag.NewFlagSet("fdreport diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 10, "regression threshold in percent for cost/perf metrics")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "fdreport diff: need exactly OLD and NEW files")
		return 1
	}
	d, err := report.DiffFiles(fs.Arg(0), fs.Arg(1), *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdreport: %v\n", err)
		return 1
	}
	d.Render(os.Stdout)
	if len(d.Regressions()) > 0 {
		return 2
	}
	return 0
}

func runTable(args []string) int {
	fs := flag.NewFlagSet("fdreport table", flag.ContinueOnError)
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fdreport table: need exactly one report file")
		return 1
	}
	rep, err := report.LoadCampaign(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdreport: %v\n", err)
		return 1
	}
	tbl := rep.Table()
	if *csv {
		tbl.RenderCSV(os.Stdout)
	} else {
		tbl.Render(os.Stdout)
	}
	return 0
}

func runTrace(args []string) int {
	fs := flag.NewFlagSet("fdreport trace", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "fdreport trace: need exactly one JSONL trace file")
		return 1
	}
	events, err := report.LoadTrace(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdreport: %v\n", err)
		return 1
	}
	report.TraceTable(report.AggregateTrace(events)).Render(os.Stdout)
	return 0
}
