// Command keytool demonstrates the building blocks of local
// authentication in isolation: key generation, the challenge/response
// exchange, and chain signatures — useful for inspecting wire sizes and
// scheme behaviour.
//
// Usage:
//
//	keytool -scheme ed25519            # demo the challenge/response flow
//	keytool -scheme ecdsa-p256 -chain 5 # build and verify a 5-hop chain
//	keytool -list                       # list registered schemes
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"

	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
)

func main() {
	var (
		schemeName = flag.String("scheme", "ed25519", "signature scheme")
		chainLen   = flag.Int("chain", 3, "chain-signature hops to demo")
		list       = flag.Bool("list", false, "list registered schemes")
	)
	flag.Parse()
	if *list {
		for _, name := range sig.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := run(*schemeName, *chainLen); err != nil {
		fmt.Fprintf(os.Stderr, "keytool: %v\n", err)
		os.Exit(1)
	}
}

func run(schemeName string, chainLen int) error {
	scheme, err := sig.ByName(schemeName)
	if err != nil {
		return err
	}
	fmt.Printf("scheme: %s\n\n", scheme.Name())

	// 1. Key generation: the paper's "generate a secret key S_i and an
	// appropriate test predicate T_i".
	alice, err := scheme.Generate(rand.Reader)
	if err != nil {
		return err
	}
	bob, err := scheme.Generate(rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("P0 predicate: %s (%d bytes on the wire)\n",
		alice.Predicate().Fingerprint(), len(alice.Predicate().Bytes()))
	fmt.Printf("P1 predicate: %s (%d bytes on the wire)\n\n",
		bob.Predicate().Fingerprint(), len(bob.Predicate().Bytes()))

	// 2. Challenge/response: P0 challenges P1 (paper Fig. 1).
	ch, err := keydist.NewChallenge(0, 1, rand.Reader)
	if err != nil {
		return err
	}
	fmt.Printf("challenge {P0, P1, r}: %d bytes\n", len(ch.Marshal()))
	if !keydist.ShouldSign(ch, 1, 0) {
		return fmt.Errorf("screening rejected a well-formed challenge")
	}
	resp, err := keydist.Respond(ch, bob)
	if err != nil {
		return err
	}
	fmt.Printf("response {P0, P1, r}_S1: %d bytes\n", len(resp.Marshal()))
	if err := keydist.VerifyResponse(ch, resp, bob.Predicate()); err != nil {
		return fmt.Errorf("verify response: %w", err)
	}
	fmt.Printf("response verified: P0 accepts T_1 as belonging to P1\n\n")

	// 3. Chain signatures (paper §4): sizes grow linearly with hops.
	signers := []sig.Signer{alice, bob}
	dir := sig.MapDirectory{0: alice.Predicate(), 1: bob.Predicate()}
	for i := 2; i < chainLen; i++ {
		s, err := scheme.Generate(rand.Reader)
		if err != nil {
			return err
		}
		signers = append(signers, s)
		dir[model.NodeID(i)] = s.Predicate()
	}
	chain, err := sig.NewChain([]byte("the value"), signers[0])
	if err != nil {
		return err
	}
	fmt.Printf("chain hop 0: %4d bytes\n", len(chain.Marshal()))
	for i := 1; i < chainLen; i++ {
		chain, err = chain.Extend(model.NodeID(i-1), signers[i])
		if err != nil {
			return err
		}
		fmt.Printf("chain hop %d: %4d bytes\n", i, len(chain.Marshal()))
	}
	who, err := chain.Verify(model.NodeID(chainLen-1), dir)
	if err != nil {
		return fmt.Errorf("chain verify: %w", err)
	}
	fmt.Printf("chain verified; signers (innermost first): %v\n", who)
	return nil
}
