package fd_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// fixture holds a cluster with completed local authentication.
type fixture struct {
	cfg     model.Config
	signers []sig.Signer
	dirs    []*keydist.Directory
}

// newFixture runs the key-distribution protocol among n correct nodes and
// returns their signers and (locally authentic) directories.
func newFixture(t testing.TB, n, tol int, seed int64) *fixture {
	t.Helper()
	cfg := model.Config{N: n, T: tol}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	f := &fixture{cfg: cfg}
	procs := make([]sim.Process, n)
	nodes := make([]*keydist.Node, n)
	for i := 0; i < n; i++ {
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = node
		procs[i] = node
	}
	eng, err := sim.New(cfg, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(keydist.RoundsTotal)
	for _, node := range nodes {
		f.signers = append(f.signers, node.Signer())
		f.dirs = append(f.dirs, node.Directory())
	}
	return f
}

// chainProcs builds correct chain nodes for every slot, with the sender
// holding value.
func (f *fixture) chainProcs(t testing.TB, value []byte) ([]sim.Process, []*fd.ChainNode) {
	t.Helper()
	procs := make([]sim.Process, f.cfg.N)
	nodes := make([]*fd.ChainNode, f.cfg.N)
	for i := 0; i < f.cfg.N; i++ {
		id := model.NodeID(i)
		var opts []fd.ChainOption
		if id == fd.Sender {
			opts = append(opts, fd.WithValue(value))
		}
		n, err := fd.NewChainNode(f.cfg, id, f.signers[i], f.dirs[i], opts...)
		if err != nil {
			t.Fatalf("NewChainNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

// newTestChain signs value with the fixture's sender key, for crafting
// protocol messages in adversarial tests.
func newTestChain(f *fixture, value []byte) (*sig.Chain, error) {
	return sig.NewChain(value, f.signers[0])
}

// run executes the chain protocol and returns counters.
func runFD(t testing.TB, cfg model.Config, procs []sim.Process, rounds int) *metrics.Counters {
	t.Helper()
	counters := metrics.NewCounters()
	eng, err := sim.New(cfg, procs, sim.WithCounters(counters))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(rounds)
	return counters
}

// assertOutcomes checks that every non-faulty chain node decided value.
func assertAllDecided(t *testing.T, nodes []*fd.ChainNode, faulty model.NodeSet, value []byte) {
	t.Helper()
	for _, n := range nodes {
		if n == nil || faulty.Contains(n.Outcome().Node) {
			continue
		}
		out := n.Outcome()
		if !out.Decided {
			t.Errorf("%v did not decide: %v", out.Node, out)
			continue
		}
		if !bytes.Equal(out.Value, value) {
			t.Errorf("%v decided %q, want %q", out.Node, out.Value, value)
		}
	}
}

// discoverers returns the IDs of correct nodes that discovered a failure.
func discoverers(nodes []*fd.ChainNode, faulty model.NodeSet) []model.NodeID {
	var out []model.NodeID
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if !faulty.Contains(o.Node) && o.Discovery != nil {
			out = append(out, o.Node)
		}
	}
	return out
}

func TestChainFailureFree(t *testing.T) {
	value := []byte("commit block 42")
	cases := []struct{ n, t int }{
		{2, 0}, {4, 0}, {4, 1}, {5, 2}, {8, 2}, {8, 7}, {16, 5}, {32, 10},
	}
	for _, tc := range cases {
		f := newFixture(t, tc.n, tc.t, int64(tc.n*100+tc.t))
		procs, nodes := f.chainProcs(t, value)
		counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(tc.t))

		// Paper Fig. 2: exactly n−1 messages, the minimum.
		if got, want := counters.Messages(), fd.ChainMessages(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: messages = %d, want %d", tc.n, tc.t, got, want)
		}
		if got, want := counters.CommunicationRounds(), fd.ChainCommunicationRounds(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: rounds = %d, want %d", tc.n, tc.t, got, want)
		}
		assertAllDecided(t, nodes, model.NewNodeSet(), value)
		if ds := discoverers(nodes, model.NewNodeSet()); len(ds) != 0 {
			t.Errorf("n=%d t=%d: spurious discoveries at %v", tc.n, tc.t, ds)
		}
	}
}

func TestChainRolesAssigned(t *testing.T) {
	if got := fd.RoleOf(0, 3); got != fd.RoleSender {
		t.Errorf("RoleOf(0,3) = %v", got)
	}
	if got := fd.RoleOf(0, 0); got != fd.RoleDisseminator {
		t.Errorf("RoleOf(0,0) = %v", got)
	}
	if got := fd.RoleOf(2, 3); got != fd.RoleRelay {
		t.Errorf("RoleOf(2,3) = %v", got)
	}
	if got := fd.RoleOf(3, 3); got != fd.RoleDisseminator {
		t.Errorf("RoleOf(3,3) = %v", got)
	}
	if got := fd.RoleOf(4, 3); got != fd.RoleTail {
		t.Errorf("RoleOf(4,3) = %v", got)
	}
}

func TestChainSilentRelayDiscovered(t *testing.T) {
	// A relay that never forwards: its successor discovers a missing
	// message at the deadline; nodes after that stay silent too and the
	// discovery propagates as further missing-message discoveries.
	f := newFixture(t, 6, 2, 1)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(1)
	procs[1] = sim.Silent{}
	nodes[1] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	ds := discoverers(nodes, faulty)
	if len(ds) == 0 {
		t.Fatal("no correct node discovered the silent relay")
	}
	// F1: everyone decided or discovered.
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if !o.Decided && o.Discovery == nil {
			t.Errorf("%v neither decided nor discovered", o.Node)
		}
	}
	// P_2 (the successor) must be among the discoverers, with a
	// missing-message reason.
	var p2 *model.Discovery
	for _, n := range nodes {
		if n != nil && n.Outcome().Node == 2 {
			p2 = n.Outcome().Discovery
		}
	}
	if p2 == nil || p2.Reason != model.ReasonMissingMessage {
		t.Errorf("P2 discovery = %v, want missing-message", p2)
	}
}

func TestChainTamperedPayloadDiscovered(t *testing.T) {
	// A relay that flips a bit in the chain it forwards: the next node's
	// signature check fails.
	f := newFixture(t, 6, 2, 2)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(1)
	inner := nodes[1]
	procs[1] = adversary.Wrap(inner, adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(10)))
	nodes[1] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	ds := discoverers(nodes, faulty)
	if len(ds) == 0 {
		t.Fatal("tampered chain not discovered")
	}
}

func TestChainResignRelayDiscovered(t *testing.T) {
	// A relay that replaces the chain with a self-signed one of the right
	// LENGTH: only the sub-message signer check can catch it.
	f := newFixture(t, 6, 2, 3)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(1)
	procs[1] = adversary.NewResignRelay(f.cfg, 1, f.signers[1], []byte("forged"))
	nodes[1] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	ds := discoverers(nodes, faulty)
	if len(ds) == 0 {
		t.Fatal("resigned chain not discovered")
	}
	// The detector is P_2 and the reason is a bad chain (wrong signers).
	for _, n := range nodes {
		if n == nil || n.Outcome().Node != 2 {
			continue
		}
		d := n.Outcome().Discovery
		if d == nil {
			t.Fatal("P2 did not discover")
		}
		if d.Reason != model.ReasonBadChain && d.Reason != model.ReasonBadSignature {
			t.Errorf("P2 reason = %v, want bad-chain or bad-signature", d.Reason)
		}
	}
}

func TestChainWrongNameRelayDiscovered(t *testing.T) {
	// A relay embedding a wrong assignee name: Theorem 4's sub-message
	// assignment check fires at the next hop.
	f := newFixture(t, 6, 2, 4)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(1)
	procs[1] = adversary.NewWrongNameRelay(f.cfg, 1, f.signers[1], 4)
	nodes[1] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	if ds := discoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("wrong-name chain not discovered")
	}
}

func TestChainEquivocatingSenderDiscovered(t *testing.T) {
	// A sender that starts two chains: P_1 sees a duplicate — a view no
	// failure-free run produces — and discovers.
	f := newFixture(t, 6, 2, 5)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(0)
	procs[0] = adversary.NewEquivocatingSender(f.cfg, f.signers[0], []byte("v1"), []byte("v2"), 3)
	nodes[0] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	if ds := discoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("equivocating sender not discovered")
	}
}

func TestChainSplitDisseminatorDiscovered(t *testing.T) {
	// The disseminator withholds the chain from part of the tail: the
	// starved tail nodes discover missing messages (contrast with the
	// small-range variant, where this splits silently).
	tol := 2
	f := newFixture(t, 7, tol, 6)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(model.NodeID(tol))
	victims := model.NewNodeSet(4, 5)
	procs[tol] = adversary.Wrap(nodes[tol], adversary.DropTo(victims))
	nodes[tol] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(tol))

	ds := discoverers(nodes, faulty)
	found := make(map[model.NodeID]bool)
	for _, d := range ds {
		found[d] = true
	}
	if !found[4] || !found[5] {
		t.Errorf("starved tail nodes did not discover: %v", ds)
	}
	// Non-starved tail nodes decided the value.
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if o.Node == 6 && !o.Decided {
			t.Errorf("non-starved tail P6 did not decide: %v", o)
		}
	}
}

func TestChainColludersCannotForgeSkippedSignature(t *testing.T) {
	// P_0 and P_2 are faulty and share keys; P_1 is correct. The
	// colluders cannot produce a chain carrying a value P_1 never signed:
	// P_2 forwards a fabricated chain (P_0-signed u, padded by P_2), and
	// P_3 discovers because layer 1 is not P_1's signature.
	f := newFixture(t, 6, 2, 7)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(0, 2)
	procs[0] = sim.Silent{} // P_0 skips P_1 entirely
	nodes[0] = nil
	procs[2] = adversary.NewResignRelay(f.cfg, 2, f.signers[0], []byte("forged"))
	nodes[2] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	// P_1 discovers silence; tail nodes discover the bad chain from P_2's
	// dissemination. Either way someone correct discovers, and NO correct
	// node decides "forged".
	if ds := discoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("collusion not discovered")
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if o := n.Outcome(); o.Decided && bytes.Equal(o.Value, []byte("forged")) {
			t.Errorf("%v accepted the forged value", o.Node)
		}
	}
}

func TestChainOuterOnlyAblationMissesInteriorForgery(t *testing.T) {
	// E6 ablation: with VerifyOuterOnly, a relay that re-signs a forged
	// interior is NOT detected by its successor — demonstrating that
	// Fig. 2's "check ... the submessages" is load-bearing.
	f := newFixture(t, 6, 2, 8)
	value := []byte("v")

	build := func(mode fd.VerifyMode) ([]sim.Process, []*fd.ChainNode) {
		procs := make([]sim.Process, f.cfg.N)
		nodes := make([]*fd.ChainNode, f.cfg.N)
		for i := 0; i < f.cfg.N; i++ {
			id := model.NodeID(i)
			opts := []fd.ChainOption{fd.WithVerifyMode(mode)}
			if id == fd.Sender {
				opts = append(opts, fd.WithValue(value))
			}
			n, err := fd.NewChainNode(f.cfg, id, f.signers[i], f.dirs[i], opts...)
			if err != nil {
				t.Fatalf("NewChainNode: %v", err)
			}
			nodes[i] = n
			procs[i] = n
		}
		return procs, nodes
	}

	for _, mode := range []fd.VerifyMode{fd.VerifyFull, fd.VerifyOuterOnly} {
		procs, nodes := build(mode)
		faulty := model.NewNodeSet(1)
		procs[1] = adversary.NewResignRelay(f.cfg, 1, f.signers[1], []byte("forged"))
		nodes[1] = nil
		runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))
		ds := discoverers(nodes, faulty)
		switch mode {
		case fd.VerifyFull:
			if len(ds) == 0 {
				t.Error("full verification missed the forgery")
			}
		case fd.VerifyOuterOnly:
			// The forged chain is outer-signed by P_1 itself, so
			// outer-only verification accepts it; the forged value
			// propagates — the unsoundness made visible.
			accepted := false
			for _, n := range nodes {
				if n == nil {
					continue
				}
				if o := n.Outcome(); o.Decided && bytes.Equal(o.Value, []byte("forged")) {
					accepted = true
				}
			}
			if !accepted {
				t.Error("outer-only ablation unexpectedly caught the forgery (is the ablation wired?)")
			}
		}
	}
}

func TestChainT0DirectDissemination(t *testing.T) {
	f := newFixture(t, 5, 0, 9)
	procs, nodes := f.chainProcs(t, []byte("v"))
	counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(0))
	if got, want := counters.Messages(), 4; got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	assertAllDecided(t, nodes, model.NewNodeSet(), []byte("v"))
}

func TestChainConstructorValidation(t *testing.T) {
	f := newFixture(t, 3, 1, 10)
	if _, err := fd.NewChainNode(f.cfg, 0, f.signers[0], f.dirs[0]); err == nil {
		t.Error("sender without value accepted")
	}
	if _, err := fd.NewChainNode(f.cfg, 9, f.signers[0], f.dirs[0]); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := fd.NewChainNode(f.cfg, 1, nil, f.dirs[1]); err == nil {
		t.Error("nil signer accepted")
	}
	if _, err := fd.NewChainNode(model.Config{N: 1, T: 0}, 0, f.signers[0], f.dirs[0]); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestChainDelayedRelayDiscovered(t *testing.T) {
	// A relay that forwards the CORRECT chain one round late: the bytes
	// are authentic, but no failure-free run delivers them in that round,
	// so the successor discovers — timing is part of the view.
	f := newFixture(t, 6, 2, 11)
	procs, nodes := f.chainProcs(t, []byte("v"))
	procs[1] = adversary.WrapBehaviors(nodes[1], adversary.DelayBy(1))
	nodes[1] = nil
	// One extra engine round so the delayed message actually lands.
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2)+1)

	var p2 *model.Discovery
	for _, n := range nodes {
		if n != nil && n.Outcome().Node == 2 {
			p2 = n.Outcome().Discovery
		}
	}
	if p2 == nil {
		t.Fatal("successor did not discover the delayed chain")
	}
	if p2.Reason != model.ReasonMissingMessage && p2.Reason != model.ReasonUnexpectedMessage {
		t.Errorf("reason = %v, want missing or unexpected", p2.Reason)
	}
}

func TestChainDuplicateDisseminationDiscovered(t *testing.T) {
	// A disseminator that sends the (valid!) chain twice to the same tail
	// node: a duplicate is a view deviation even when every byte checks.
	f := newFixture(t, 6, 2, 12)
	procs, nodes := f.chainProcs(t, []byte("v"))
	faulty := model.NewNodeSet(2)
	_ = faulty
	procs[2] = adversary.Wrap(nodes[2], func(round int, out []model.Message) []model.Message {
		for _, m := range out {
			if m.To == 4 {
				return append(out, m)
			}
		}
		return out
	})
	nodes[2] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(2))

	found := false
	for _, d := range discoverers(nodes, faulty) {
		if d == 4 {
			found = true
		}
	}
	if !found {
		t.Error("duplicated dissemination not discovered by the target")
	}
	// The other tail nodes decided normally: the fault is contained.
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if o := n.Outcome(); o.Node == 5 && !o.Decided {
			t.Errorf("P5 outcome: %v", o)
		}
	}
}
