package fd

import (
	"bytes"
	"fmt"

	"repro/internal/model"
)

// NonAuthNode implements the non-authenticated Failure Discovery baseline.
//
// The paper quotes Hadzilacos & Halpern: without authentication, Failure
// Discovery for arbitrary failures needs O(n·t) messages — O(n²) when a
// constant fraction of nodes may be faulty. This baseline realizes that
// complexity class with a broadcast-plus-echo construction:
//
//	round 1: the sender P_0 broadcasts its value v to everyone;
//	round 2: the echoers P_1 … P_t each broadcast the value they received
//	         to everyone;
//	then each node checks that the sender's value arrived and that every
//	echo matches it, discovering a failure on any absence or mismatch.
//
// Messages in failure-free runs: (t+1)(n−1).
//
// Why F1–F3 hold (tested in nonauth_test.go and by experiment E7):
//   - F1: every node decides at its deadline or discovers.
//   - F2: suppose no correct node discovers. If some echoer is correct,
//     its echo reached every node, so all correct nodes hold its value.
//     If all t echoers are faulty, the sender is correct (otherwise t+1
//     faults), so every correct node received v directly.
//   - F3: a correct sender delivers v to all; a correct node seeing any
//     conflicting echo discovers rather than decides.
type NonAuthNode struct {
	id  model.NodeID
	cfg model.Config

	// value is the sender's initial value (sender only).
	value []byte
	// got is the value received from the sender, when gotValue.
	got      []byte
	gotValue bool
	// echoes collects (echoer, value) pairs received in the echo round.
	echoes map[model.NodeID][]byte

	outcome  model.Outcome
	stopped  bool
	finished bool
}

// NonAuthOption configures a NonAuthNode.
type NonAuthOption func(*NonAuthNode)

// WithNonAuthValue sets the sender's initial value.
func WithNonAuthValue(v []byte) NonAuthOption {
	return func(n *NonAuthNode) { n.value = append([]byte(nil), v...) }
}

// NewNonAuthNode builds a correct participant for one baseline run.
func NewNonAuthNode(cfg model.Config, id model.NodeID, opts ...NonAuthOption) (*NonAuthNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("fd: node id %v out of range for n=%d", id, cfg.N)
	}
	n := &NonAuthNode{
		id:     id,
		cfg:    cfg,
		echoes: make(map[model.NodeID][]byte),
	}
	n.outcome.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, fmt.Errorf("fd: sender needs WithNonAuthValue")
	}
	return n, nil
}

// IsEchoer reports whether the node rebroadcasts in round 2.
func (n *NonAuthNode) IsEchoer() bool { return n.id != Sender && int(n.id) <= n.cfg.T }

// Outcome implements Outcomer.
func (n *NonAuthNode) Outcome() model.Outcome { return n.outcome }

// Finished implements sim.Finisher.
func (n *NonAuthNode) Finished() bool { return n.finished }

// Step implements the sim Process contract.
func (n *NonAuthNode) Step(round int, received []model.Message) []model.Message {
	if n.stopped {
		return nil
	}
	n.ingest(round, received)
	if n.stopped {
		return nil
	}
	lastRound := NonAuthEngineRounds(n.cfg.T)
	switch {
	case round == 1 && n.id == Sender:
		n.decide(n.value)
		if lastRound == 2 {
			// t = 0: no echo round follows; the sender is done.
			n.finished = true
		}
		return n.broadcast(model.KindPlainValue, n.value)
	case round == 2 && n.IsEchoer():
		if !n.gotValue {
			// No failure-free run leaves an echoer without a value.
			n.discover(round, model.ReasonMissingMessage, "no value from sender by echo round")
			return nil
		}
		return n.broadcast(model.KindEcho, n.got)
	case round == lastRound:
		n.conclude(round)
	}
	return nil
}

// ingest files incoming messages, discovering on any message no
// failure-free run delivers.
func (n *NonAuthNode) ingest(round int, received []model.Message) {
	for _, m := range received {
		if n.stopped {
			return
		}
		switch {
		case m.Kind == model.KindPlainValue && m.From == Sender && round == 2 && !n.gotValue:
			n.got = append([]byte(nil), m.Payload...)
			n.gotValue = true
		case m.Kind == model.KindEcho && round == 3 && m.From != Sender && int(m.From) <= n.cfg.T:
			if _, dup := n.echoes[m.From]; dup {
				n.discover(round, model.ReasonUnexpectedMessage,
					fmt.Sprintf("duplicate echo from %v", m.From))
				return
			}
			n.echoes[m.From] = append([]byte(nil), m.Payload...)
		default:
			n.discover(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%v message from %v in round %d", m.Kind, m.From, round))
			return
		}
	}
}

// conclude runs the cross-check at the deadline: the sender's value must
// have arrived, every echoer must have echoed, and all echoes must match
// the value. Any deviation is a discovered failure; otherwise decide.
func (n *NonAuthNode) conclude(round int) {
	defer func() { n.finished = true }()
	if n.id == Sender {
		// The sender decided its own value in round 1 but still
		// cross-checks the echoes: a mismatching echo is a deviation every
		// other node may also be seeing.
		n.checkEchoes(round, n.value)
		return
	}
	if !n.gotValue {
		n.discover(round, model.ReasonMissingMessage, "no value from sender")
		return
	}
	if !n.checkEchoes(round, n.got) {
		return
	}
	n.decide(n.got)
}

// checkEchoes verifies presence and consistency of all expected echoes
// against want. It reports whether the node may proceed to decide.
func (n *NonAuthNode) checkEchoes(round int, want []byte) bool {
	for e := 1; e <= n.cfg.T; e++ {
		echoer := model.NodeID(e)
		if echoer == n.id {
			continue // a node does not echo to itself
		}
		got, ok := n.echoes[echoer]
		if !ok {
			n.discover(round, model.ReasonMissingMessage,
				fmt.Sprintf("no echo from %v", echoer))
			return false
		}
		if !bytes.Equal(got, want) {
			n.discover(round, model.ReasonValueMismatch,
				fmt.Sprintf("echo from %v is %s, value is %s", echoer, valueOf(got), valueOf(want)))
			return false
		}
	}
	return true
}

// broadcast sends payload to every other node.
func (n *NonAuthNode) broadcast(kind model.MessageKind, payload []byte) []model.Message {
	return model.AppendBroadcast(make([]model.Message, 0, n.cfg.N-1), n.cfg.N, n.id, kind, payload)
}

// decide records the decision value.
func (n *NonAuthNode) decide(v []byte) {
	n.outcome.Decided = true
	n.outcome.Value = append([]byte(nil), v...)
}

// discover records a discovered failure and stops the node.
func (n *NonAuthNode) discover(round int, reason model.FailureReason, detail string) {
	d := model.Discovery{Node: n.id, Round: round, Reason: reason, Detail: detail}
	n.outcome.Decided = false
	n.outcome.Value = nil
	n.outcome.Discovery = &d
	n.stopped = true
	n.finished = true
}
