package fd_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// vectorProcs builds correct vector nodes, each proposing "from-P<i>".
func vectorProcs(t *testing.T, f *fixture) ([]sim.Process, []*fd.VectorNode) {
	t.Helper()
	procs := make([]sim.Process, f.cfg.N)
	nodes := make([]*fd.VectorNode, f.cfg.N)
	for i := 0; i < f.cfg.N; i++ {
		n, err := fd.NewVectorNode(f.cfg, model.NodeID(i), f.signers[i], f.dirs[i],
			[]byte(fmt.Sprintf("from-P%d", i)))
		if err != nil {
			t.Fatalf("NewVectorNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

func TestVectorFailureFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{3, 0}, {4, 1}, {6, 2}, {10, 3}} {
		f := newFixture(t, tc.n, tc.t, int64(600+tc.n))
		procs, nodes := vectorProcs(t, f)
		counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(tc.t))

		// n parallel chains: n(n−1) messages, same t+1 rounds.
		if got, want := counters.Messages(), fd.VectorMessages(tc.n); got != want {
			t.Errorf("n=%d t=%d: messages = %d, want %d", tc.n, tc.t, got, want)
		}
		if got, want := counters.CommunicationRounds(), fd.ChainCommunicationRounds(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: rounds = %d, want %d", tc.n, tc.t, got, want)
		}
		// Every node decided every instance with the right value.
		for _, n := range nodes {
			for s := 0; s < tc.n; s++ {
				o := n.Outcome(model.NodeID(s))
				want := []byte(fmt.Sprintf("from-P%d", s))
				if !o.Decided || !bytes.Equal(o.Value, want) {
					t.Errorf("n=%d t=%d: instance %d at %v: %v", tc.n, tc.t, s, o.Node, o)
				}
			}
		}
	}
}

func TestVectorAgreementAcrossNodes(t *testing.T) {
	f := newFixture(t, 6, 2, 610)
	procs, nodes := vectorProcs(t, f)
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))
	// All nodes hold identical vectors.
	ref := nodes[0].Outcomes()
	for _, n := range nodes[1:] {
		got := n.Outcomes()
		for s := range ref {
			if !bytes.Equal(ref[s].Value, got[s].Value) {
				t.Errorf("instance %d: %v has %q, P0 has %q",
					s, got[s].Node, got[s].Value, ref[s].Value)
			}
		}
	}
}

func TestVectorSilentNodeOnlyItsInstanceSuffers(t *testing.T) {
	// Node 3 silent: instance 3 dies everywhere; instances routed THROUGH
	// node 3 also break (it is a relay/disseminator for neighbours); but
	// instances that never touch node 3 inside their chain prefix decide
	// normally — fault isolation per instance.
	f := newFixture(t, 6, 1, 620)
	procs, nodes := vectorProcs(t, f)
	faulty := model.NewNodeSet(3)
	procs[3] = sim.Silent{}
	nodes[3] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))

	for _, n := range nodes {
		if n == nil {
			continue
		}
		// With t=1, instance s's chain is P_s → P_{s+1} → tail. Node 3
		// participates as sender of instance 3 and disseminator of
		// instance 2. Those two instances fail; all others decide.
		for s := 0; s < f.cfg.N; s++ {
			o := n.Outcome(model.NodeID(s))
			touched := s == 3 || s == 2
			if n.Outcomes()[s].Node == 3 {
				continue
			}
			switch {
			case touched && int(o.Node) != s && o.Decided && o.Discovery == nil:
				// Dissemination comes only from node 3 for instance 2, so
				// non-chain nodes must discover; the one exception is the
				// relay of instance 2 (node 3 IS its disseminator)... any
				// decided outcome here would mean the silent node spoke.
				if s == 2 && o.Node == 2 {
					continue // sender of instance 2 decided its own value
				}
				t.Errorf("instance %d at %v decided %q despite dead route", s, o.Node, o.Value)
			case !touched && !o.Decided && int(o.Node) != s:
				t.Errorf("instance %d at %v failed (%v) though its route avoids P3", s, o.Node, o.Discovery)
			}
		}
	}
	_ = faulty
}

func TestVectorTamperedInstanceDiscovered(t *testing.T) {
	// A node that tampers ONE instance's chain while behaving correctly
	// in the others: only the tampered instance is discovered.
	f := newFixture(t, 6, 2, 630)
	procs, nodes := vectorProcs(t, f)
	inner := nodes[1]
	procs[1] = adversary.Wrap(inner, func(round int, out []model.Message) []model.Message {
		for i := range out {
			s, chain, err := fd.UnmarshalVectorPayload(out[i].Payload)
			if err != nil || s != 0 {
				continue
			}
			chain[len(chain)/2] ^= 0x01
			out[i].Payload = fd.MarshalVectorPayload(s, chain)
		}
		return out
	})
	nodes[1] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))

	for _, n := range nodes {
		if n == nil {
			continue
		}
		// Instance 0 (through relay P1) must be discovered downstream of
		// the tamper; instance 4 and 5 (node 1 in the tail) decide fine.
		if o := n.Outcome(4); !o.Decided {
			t.Errorf("instance 4 at %v: %v", o.Node, o)
		}
	}
	// The node after the tamper (P2, position 2 of instance 0) discovers.
	var p2 *fd.VectorNode
	for _, n := range nodes {
		if n != nil && n.Outcome(0).Node == 2 {
			p2 = n
		}
	}
	if p2 == nil {
		t.Fatal("P2 missing")
	}
	if o := p2.Outcome(0); o.Discovery == nil {
		t.Errorf("P2 did not discover the tampered instance: %v", o)
	}
}

func TestVectorConstructorValidation(t *testing.T) {
	f := newFixture(t, 3, 1, 640)
	if _, err := fd.NewVectorNode(f.cfg, 0, f.signers[0], f.dirs[0], nil); err == nil {
		t.Error("nil proposal accepted")
	}
	if _, err := fd.NewVectorNode(f.cfg, 7, f.signers[0], f.dirs[0], []byte("v")); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := fd.NewVectorNode(f.cfg, 0, nil, f.dirs[0], []byte("v")); err == nil {
		t.Error("nil signer accepted")
	}
}
