package fd_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// nonAuthProcs builds correct baseline nodes.
func nonAuthProcs(t *testing.T, cfg model.Config, value []byte) ([]sim.Process, []*fd.NonAuthNode) {
	t.Helper()
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*fd.NonAuthNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := model.NodeID(i)
		var opts []fd.NonAuthOption
		if id == fd.Sender {
			opts = append(opts, fd.WithNonAuthValue(value))
		}
		n, err := fd.NewNonAuthNode(cfg, id, opts...)
		if err != nil {
			t.Fatalf("NewNonAuthNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

func nonAuthDiscoverers(nodes []*fd.NonAuthNode, faulty model.NodeSet) []model.NodeID {
	var out []model.NodeID
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if !faulty.Contains(o.Node) && o.Discovery != nil {
			out = append(out, o.Node)
		}
	}
	return out
}

func TestNonAuthFailureFree(t *testing.T) {
	value := []byte("baseline value")
	cases := []struct{ n, t int }{
		{2, 0}, {4, 1}, {8, 2}, {16, 5}, {32, 10},
	}
	for _, tc := range cases {
		cfg := model.Config{N: tc.n, T: tc.t}
		procs, nodes := nonAuthProcs(t, cfg, value)
		counters := runFD(t, cfg, procs, fd.NonAuthEngineRounds(tc.t))

		// The baseline costs exactly (t+1)(n−1): the O(n·t) class the
		// paper quotes for non-authenticated failure discovery.
		if got, want := counters.Messages(), fd.NonAuthMessages(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: messages = %d, want %d", tc.n, tc.t, got, want)
		}
		for _, n := range nodes {
			o := n.Outcome()
			if !o.Decided || !bytes.Equal(o.Value, value) {
				t.Errorf("n=%d t=%d: %v outcome = %v", tc.n, tc.t, o.Node, o)
			}
		}
	}
}

func TestNonAuthEquivocatingSenderDiscovered(t *testing.T) {
	// A faulty sender splits v1/v2. Any correct echoer rebroadcasts what
	// it got, so nodes holding the other value see the mismatch.
	cfg := model.Config{N: 6, T: 2}
	procs, nodes := nonAuthProcs(t, cfg, []byte("ignored"))
	faulty := model.NewNodeSet(0)
	procs[0] = adversary.NewEquivocatingPlainSender(cfg, []byte("v1"), []byte("v2"), 3)
	nodes[0] = nil
	runFD(t, cfg, procs, fd.NonAuthEngineRounds(cfg.T))

	if ds := nonAuthDiscoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("equivocating sender not discovered")
	}
	// F2 in its contrapositive: with a discovery, no agreement claim is
	// made — but check nobody decided BOTH values without discovery.
	seen := map[string]bool{}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if o := n.Outcome(); o.Decided {
			seen[string(o.Value)] = true
		}
	}
	if len(seen) > 1 && len(nonAuthDiscoverers(nodes, faulty)) == 0 {
		t.Error("correct nodes split with no discovery: F2 violated")
	}
}

func TestNonAuthLyingEchoerDiscovered(t *testing.T) {
	// A faulty echoer forges its echo toward some victims; the victims
	// compare against the sender's value and discover.
	cfg := model.Config{N: 6, T: 2}
	procs, nodes := nonAuthProcs(t, cfg, []byte("truth"))
	faulty := model.NewNodeSet(1)
	victims := model.NewNodeSet(3, 4)
	procs[1] = adversary.NewLyingEchoer(cfg, 1, []byte("lie"), victims)
	nodes[1] = nil
	runFD(t, cfg, procs, fd.NonAuthEngineRounds(cfg.T))

	ds := nonAuthDiscoverers(nodes, faulty)
	got := make(map[model.NodeID]bool)
	for _, d := range ds {
		got[d] = true
	}
	if !got[3] || !got[4] {
		t.Errorf("victims did not discover the forged echo: %v", ds)
	}
	// Non-victims decided the true value.
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if o.Node == 5 && (!o.Decided || !bytes.Equal(o.Value, []byte("truth"))) {
			t.Errorf("non-victim P5 outcome = %v", o)
		}
	}
}

func TestNonAuthSilentSenderDiscovered(t *testing.T) {
	cfg := model.Config{N: 5, T: 1}
	procs, nodes := nonAuthProcs(t, cfg, []byte("ignored"))
	faulty := model.NewNodeSet(0)
	procs[0] = sim.Silent{}
	nodes[0] = nil
	runFD(t, cfg, procs, fd.NonAuthEngineRounds(cfg.T))

	// Every correct node discovers the missing value (F1 holds).
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if o.Discovery == nil {
			t.Errorf("%v did not discover the silent sender: %v", o.Node, o)
		}
	}
	_ = faulty
}

func TestNonAuthSilentEchoerDiscovered(t *testing.T) {
	cfg := model.Config{N: 5, T: 2}
	procs, nodes := nonAuthProcs(t, cfg, []byte("v"))
	faulty := model.NewNodeSet(2)
	procs[2] = sim.Silent{}
	nodes[2] = nil
	runFD(t, cfg, procs, fd.NonAuthEngineRounds(cfg.T))

	if ds := nonAuthDiscoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("silent echoer not discovered")
	}
}

func TestNonAuthT0SenderOnly(t *testing.T) {
	cfg := model.Config{N: 4, T: 0}
	procs, nodes := nonAuthProcs(t, cfg, []byte("v"))
	counters := runFD(t, cfg, procs, fd.NonAuthEngineRounds(0))
	if got, want := counters.Messages(), 3; got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	for _, n := range nodes {
		if o := n.Outcome(); !o.Decided {
			t.Errorf("%v did not decide: %v", o.Node, o)
		}
	}
}

func TestNonAuthDuplicateEchoDiscovered(t *testing.T) {
	cfg := model.Config{N: 5, T: 2}
	procs, nodes := nonAuthProcs(t, cfg, []byte("v"))
	faulty := model.NewNodeSet(1)
	inner := nodes[1]
	procs[1] = adversary.Wrap(inner, func(round int, out []model.Message) []model.Message {
		if round == 2 && len(out) > 0 {
			return append(out, out[0]) // duplicate one echo
		}
		return out
	})
	nodes[1] = nil
	runFD(t, cfg, procs, fd.NonAuthEngineRounds(cfg.T))

	if ds := nonAuthDiscoverers(nodes, faulty); len(ds) == 0 {
		t.Fatal("duplicate echo not discovered")
	}
}
