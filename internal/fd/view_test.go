package fd_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// The paper's §2 definition: "If a node's view of a run differs from its
// views of all failure-free runs, it discovers a failure." For the chain
// protocol with fixed keys and a deterministic signature scheme
// (Ed25519), the failure-free run is UNIQUE, so the definition becomes
// testable bit-for-bit:
//
//	soundness:    a node that discovers must have a view different from
//	              the failure-free run's;
//	completeness: a node whose view differs must discover (or be unable
//	              to distinguish — which for this protocol never happens:
//	              every view deviation is detectable).
//
// We execute the failure-free reference run, then adversarial runs with
// the SAME keys, and compare per-node views.

// runViews executes the chain protocol and returns views + nodes.
func runViews(t *testing.T, f *fixture, overrides map[model.NodeID]sim.Process, value []byte) ([]model.View, []*fd.ChainNode) {
	t.Helper()
	procs, nodes := f.chainProcs(t, value)
	for id, p := range overrides {
		procs[id] = p
		nodes[id] = nil
	}
	eng, err := sim.New(f.cfg, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	res := eng.Run(fd.ChainEngineRounds(f.cfg.T))
	return res.Views, nodes
}

// viewsEqual compares two views round-by-round, message-by-message.
func viewsEqual(a, b model.View) bool {
	if a.Len() != b.Len() {
		// Trailing empty rounds are equivalent: pad comparison.
		max := a.Len()
		if b.Len() > max {
			max = b.Len()
		}
		for r := 1; r <= max; r++ {
			if !reflect.DeepEqual(normalize(a.Received(r)), normalize(b.Received(r))) {
				return false
			}
		}
		return true
	}
	for r := 1; r <= a.Len(); r++ {
		if !reflect.DeepEqual(normalize(a.Received(r)), normalize(b.Received(r))) {
			return false
		}
	}
	return true
}

func normalize(msgs []model.Message) []model.Message {
	if len(msgs) == 0 {
		return nil
	}
	return msgs
}

func TestViewDefinitionOfDiscovery(t *testing.T) {
	f := newFixture(t, 6, 2, 500)
	value := []byte("deterministic value")

	// Reference: the unique failure-free run.
	refViews, refNodes := runViews(t, f, nil, value)
	for _, n := range refNodes {
		if n.Outcome().Discovery != nil {
			t.Fatalf("reference run had a discovery: %v", n.Outcome())
		}
	}

	// Ed25519 is deterministic, so a second failure-free run has
	// identical views — establishing that the reference is canonical.
	refViews2, _ := runViews(t, f, nil, value)
	for i := range refViews {
		if !viewsEqual(refViews[i], refViews2[i]) {
			t.Fatalf("failure-free runs not deterministic at node %d", i)
		}
	}

	// Adversarial runs: for every correct node, discovery ⟺ view deviation.
	scenarios := map[string]map[model.NodeID]sim.Process{
		"silent-relay": {1: sim.Silent{}},
		"tamper-relay": {1: adversary.Wrap(mustChainNode(t, f, 1, value),
			adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(7)))},
		"split-disseminator": {2: adversary.Wrap(mustChainNode(t, f, 2, value),
			adversary.DropTo(model.NewNodeSet(4)))},
	}
	for name, overrides := range scenarios {
		t.Run(name, func(t *testing.T) {
			views, nodes := runViews(t, f, overrides, value)
			for i, n := range nodes {
				if n == nil {
					continue // faulty slot
				}
				deviates := !viewsEqual(views[i], refViews[i])
				discovered := n.Outcome().Discovery != nil
				if deviates != discovered {
					t.Errorf("%v: view-deviation=%v but discovered=%v (outcome %v)",
						n.Outcome().Node, deviates, discovered, n.Outcome())
				}
			}
		})
	}
}

// mustChainNode builds a correct chain node on the fixture.
func mustChainNode(t *testing.T, f *fixture, id model.NodeID, value []byte) *fd.ChainNode {
	t.Helper()
	var opts []fd.ChainOption
	if id == fd.Sender {
		opts = append(opts, fd.WithValue(value))
	}
	n, err := fd.NewChainNode(f.cfg, id, f.signers[id], f.dirs[id], opts...)
	if err != nil {
		t.Fatalf("NewChainNode: %v", err)
	}
	return n
}

// TestViewDefinitionRandomized extends the ⟺ check to random single-node
// misbehaviours.
func TestViewDefinitionRandomized(t *testing.T) {
	f := newFixture(t, 6, 2, 501)
	value := []byte("v")
	refViews, _ := runViews(t, f, nil, value)

	for s := 0; s < 40; s++ {
		rng := rand.New(rand.NewSource(int64(s)))
		victim := model.NodeID(rng.Intn(f.cfg.N))
		var p sim.Process
		switch rng.Intn(3) {
		case 0:
			p = sim.Silent{}
		case 1:
			p = adversary.Wrap(mustChainNode(t, f, victim, value),
				adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(rng.Intn(64))))
		default:
			p = adversary.Wrap(mustChainNode(t, f, victim, value),
				adversary.DropTo(model.NewNodeSet(model.NodeID(rng.Intn(f.cfg.N)))))
		}
		views, nodes := runViews(t, f, map[model.NodeID]sim.Process{victim: p}, value)
		for i, n := range nodes {
			if n == nil {
				continue
			}
			deviates := !viewsEqual(views[i], refViews[i])
			discovered := n.Outcome().Discovery != nil
			if deviates != discovered {
				t.Errorf("seed %d victim %v: %v deviation=%v discovered=%v",
					s, victim, n.Outcome().Node, deviates, discovered)
			}
		}
	}
}

// TestSessionReuseManyRuns reuses one set of directories for many
// sequential runs — the paper's "arbitrarily many Failure Discovery
// protocols" after one key distribution.
func TestSessionReuseManyRuns(t *testing.T) {
	f := newFixture(t, 8, 2, 502)
	for k := 0; k < 20; k++ {
		value := []byte(fmt.Sprintf("run-%d", k))
		procs, nodes := f.chainProcs(t, value)
		counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))
		if got := counters.Messages(); got != 7 {
			t.Fatalf("run %d: %d messages", k, got)
		}
		assertAllDecided(t, nodes, model.NewNodeSet(), value)
	}
}
