package fd

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/sig"
)

// SmallRangeNode implements the paper's §5 remark that, "if the value
// range is known a priori and small compared to n, solutions with fewer
// messages are possible by assigning values to missing messages", citing
// Hadzilacos & Halpern's message-optimal protocols.
//
// This is a documented SIMPLIFIED variant for a binary value domain with a
// designated default: when the sender's value is the default, it sends
// nothing and silence means default; otherwise the protocol is exactly the
// chain protocol of Fig. 2. Failure-free runs therefore cost 0 messages
// for the default value and n−1 otherwise. All messages that do flow are
// chain-signed, so the variant inherits the local-authentication
// compatibility the paper establishes (its §5 point).
//
// LIMITATION (deliberate, measured by experiment E9): the full
// Hadzilacos–Halpern construction makes silence itself attributable; this
// simplified variant does not, so a faulty disseminator can deliver the
// non-default chain to only part of the tail and leave the rest deciding
// the default with no correct node discovering a failure. The test
// TestSmallRangeSplitAttack exhibits exactly that run, and EXPERIMENTS.md
// discusses why the citation's machinery is needed to close the gap.
type SmallRangeNode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	dir    sig.Directory
	role   Role

	// def is the default value decided on silence.
	def byte
	// value is the sender's initial value (sender only).
	value    byte
	hasValue bool

	outcome  model.Outcome
	stopped  bool
	finished bool
	gotChain bool
}

// SmallRangeOption configures a SmallRangeNode.
type SmallRangeOption func(*SmallRangeNode)

// WithBinaryValue sets the sender's initial bit.
func WithBinaryValue(v byte) SmallRangeOption {
	return func(n *SmallRangeNode) { n.value = v & 1; n.hasValue = true }
}

// WithDefault overrides the default bit (the one silence encodes). The
// default default is 0.
func WithDefault(d byte) SmallRangeOption {
	return func(n *SmallRangeNode) { n.def = d & 1 }
}

// NewSmallRangeNode builds a correct participant for one small-range run.
func NewSmallRangeNode(cfg model.Config, id model.NodeID, signer sig.Signer, dir sig.Directory, opts ...SmallRangeOption) (*SmallRangeNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("fd: node id %v out of range for n=%d", id, cfg.N)
	}
	if signer == nil || dir == nil {
		return nil, errors.New("fd: small-range node needs a signer and a directory")
	}
	n := &SmallRangeNode{
		id:     id,
		cfg:    cfg,
		signer: signer,
		dir:    dir,
		role:   RoleOf(id, cfg.T),
	}
	n.outcome.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && !n.hasValue {
		return nil, errors.New("fd: sender needs WithBinaryValue")
	}
	return n, nil
}

// SmallRangeMessages returns the failure-free message count: zero when
// the sender's value is the default, n−1 otherwise.
func SmallRangeMessages(n int, value, def byte) int {
	if value&1 == def&1 {
		return 0
	}
	return n - 1
}

// Outcome implements Outcomer.
func (n *SmallRangeNode) Outcome() model.Outcome { return n.outcome }

// Finished implements sim.Finisher.
func (n *SmallRangeNode) Finished() bool { return n.finished }

func (n *SmallRangeNode) expectRound() int {
	if n.role == RoleTail {
		return n.cfg.T + 2
	}
	return int(n.id) + 1
}

func (n *SmallRangeNode) expectFrom() model.NodeID {
	if n.role == RoleTail {
		return model.NodeID(n.cfg.T)
	}
	return n.id - 1
}

// Step implements the sim Process contract.
func (n *SmallRangeNode) Step(round int, received []model.Message) []model.Message {
	if n.stopped {
		return nil
	}
	var out []model.Message
	for _, m := range received {
		if n.stopped {
			break
		}
		if round == n.expectRound() && m.From == n.expectFrom() &&
			m.Kind == model.KindChainValue && !n.gotChain && n.id != Sender {
			n.gotChain = true
			out = append(out, n.handleChain(round, m)...)
			continue
		}
		n.discover(round, model.ReasonUnexpectedMessage,
			fmt.Sprintf("%v message from %v in round %d", m.Kind, m.From, round))
	}
	if n.stopped {
		return nil
	}
	switch {
	case round == 1 && n.id == Sender:
		n.decideBit(n.value)
		n.finished = true
		if n.value != n.def {
			out = append(out, n.startChain()...)
		}
	case round == n.expectRound() && !n.gotChain && n.id != Sender:
		// Silence at the deadline encodes the default value — this is the
		// "assign values to missing messages" device.
		n.decideBit(n.def)
		if n.role != RoleTail {
			// A relay that decided the default neither forwards nor
			// disseminates; downstream silence encodes the same default.
			n.finished = round >= ChainEngineRounds(n.cfg.T)
		} else {
			n.finished = true
		}
	}
	if round >= ChainEngineRounds(n.cfg.T) {
		n.finished = true
	}
	return out
}

func (n *SmallRangeNode) startChain() []model.Message {
	chain, err := sig.NewChain([]byte{n.value}, n.signer)
	if err != nil {
		panic(fmt.Sprintf("fd: %v signing value: %v", n.id, err))
	}
	payload := chain.Marshal()
	if n.cfg.T == 0 {
		return model.AppendBroadcast(make([]model.Message, 0, n.cfg.N-1), n.cfg.N, n.id, model.KindChainValue, payload)
	}
	return []model.Message{{To: Sender + 1, Kind: model.KindChainValue, Payload: payload}}
}

func (n *SmallRangeNode) handleChain(round int, m model.Message) []model.Message {
	chain, err := sig.UnmarshalChain(m.Payload)
	if err != nil {
		n.discover(round, model.ReasonBadFormat, fmt.Sprintf("chain from %v: %v", m.From, err))
		return nil
	}
	wantLen := int(n.id)
	if n.role == RoleTail {
		wantLen = n.cfg.T + 1
	}
	if chain.Len() != wantLen {
		n.discover(round, model.ReasonBadChain,
			fmt.Sprintf("chain from %v has %d signatures, want %d", m.From, chain.Len(), wantLen))
		return nil
	}
	signers, err := chain.Verify(m.From, n.dir)
	if err != nil {
		n.discover(round, model.ReasonBadChain, fmt.Sprintf("chain from %v: %v", m.From, err))
		return nil
	}
	for k, s := range signers {
		if s != model.NodeID(k) {
			n.discover(round, model.ReasonBadChain,
				fmt.Sprintf("layer %d assigned to %v, want %v", k, s, model.NodeID(k)))
			return nil
		}
	}
	v := chain.Value()
	if len(v) != 1 || v[0]&1 != v[0] || v[0] == n.def {
		// A chain carrying the default (or a non-bit) never occurs in a
		// failure-free run: the default flows as silence.
		n.discover(round, model.ReasonProtocol,
			fmt.Sprintf("chain from %v carries invalid small-range value %v", m.From, v))
		return nil
	}
	n.decideBit(v[0])
	switch n.role {
	case RoleRelay:
		next, err := chain.Extend(m.From, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending chain: %v", n.id, err))
		}
		n.finished = true
		return []model.Message{{To: n.id + 1, Kind: model.KindChainValue, Payload: next.Marshal()}}
	case RoleDisseminator:
		next, err := chain.Extend(m.From, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending chain: %v", n.id, err))
		}
		payload := next.Marshal()
		out := make([]model.Message, 0, n.cfg.N-1-n.cfg.T)
		for j := n.cfg.T + 1; j < n.cfg.N; j++ {
			out = append(out, model.Message{To: model.NodeID(j), Kind: model.KindChainValue, Payload: payload})
		}
		n.finished = true
		return out
	default:
		n.finished = true
		return nil
	}
}

func (n *SmallRangeNode) decideBit(v byte) {
	n.outcome.Decided = true
	n.outcome.Value = []byte{v}
}

func (n *SmallRangeNode) discover(round int, reason model.FailureReason, detail string) {
	d := model.Discovery{Node: n.id, Round: round, Reason: reason, Detail: detail}
	n.outcome.Decided = false
	n.outcome.Value = nil
	n.outcome.Discovery = &d
	n.stopped = true
	n.finished = true
}
