// Package fd implements the Failure Discovery problem of Hadzilacos and
// Halpern and the protocols the paper builds on it.
//
// Failure Discovery asks for an algorithm guaranteeing, with up to t
// faulty nodes:
//
//	F1 (weak termination): each correct node eventually either chooses a
//	    decision value or discovers a failure;
//	F2 (weak agreement):   if no correct node discovers a failure, no two
//	    correct nodes choose different decision values;
//	F3 (weak validity):    if no correct node discovers a failure and the
//	    sender is correct, no correct node chooses a value different from
//	    the sender's initial value.
//
// Three protocols live here:
//
//   - ChainNode (chain.go): the authenticated protocol of paper Fig. 2 —
//     n−1 messages, the minimum — correct under global authentication and,
//     by the paper's Theorems 2 and 4, equally correct under the local
//     authentication established by package keydist.
//   - NonAuthNode (nonauth.go): a non-authenticated baseline with
//     (t+1)(n−1) = O(n·t) messages, the complexity class the paper quotes
//     for non-authenticated solutions.
//   - SmallRangeNode (smallrange.go): the "assign values to missing
//     messages" idea the paper cites from Hadzilacos & Halpern for small
//     value ranges, as a documented simplified variant.
//
// The sender is always node P_0, as in the paper's figures.
package fd

import (
	"fmt"

	"repro/internal/model"
)

// Sender is the distinguished sender's node ID. The paper's protocols fix
// the sender as P_0; generalizing is a relabeling.
const Sender model.NodeID = 0

// Role describes a node's part in the chain protocol of Fig. 2.
type Role uint8

// Chain-protocol roles.
const (
	// RoleSender is P_0: signs its value and starts the chain.
	RoleSender Role = iota + 1
	// RoleRelay is P_i, 1 ≤ i < t: verifies, countersigns, forwards.
	RoleRelay
	// RoleDisseminator is P_t: verifies, countersigns, broadcasts to the
	// tail. When t = 0 the sender doubles as disseminator.
	RoleDisseminator
	// RoleTail is P_j, j > t: verifies the full chain and accepts.
	RoleTail
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSender:
		return "sender"
	case RoleRelay:
		return "relay"
	case RoleDisseminator:
		return "disseminator"
	case RoleTail:
		return "tail"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// RoleOf returns the chain-protocol role of node id with fault bound t.
func RoleOf(id model.NodeID, t int) Role {
	switch {
	case id == Sender && t == 0:
		// With no faults tolerated the sender disseminates directly.
		return RoleDisseminator
	case id == Sender:
		return RoleSender
	case int(id) < t:
		return RoleRelay
	case int(id) == t:
		return RoleDisseminator
	default:
		return RoleTail
	}
}

// ChainMessages returns the chain protocol's message count in failure-free
// runs: one hop per relay plus the dissemination fan-out — always n−1,
// which Baum-Waidner showed is the minimum for agreement in the faultless
// case.
func ChainMessages(n, t int) int { return n - 1 }

// ChainCommunicationRounds returns the number of message-carrying rounds
// of the chain protocol: the t chain hops plus the dissemination round —
// except when t = n−1, where the chain already covers every node and no
// dissemination round exists.
func ChainCommunicationRounds(n, t int) int {
	if t == n-1 {
		return t
	}
	return t + 1
}

// ChainEngineRounds returns the number of lockstep engine rounds a chain
// run needs: each communication round plus the final message-free
// verification step at the tail.
func ChainEngineRounds(t int) int { return t + 2 }

// NonAuthMessages returns the non-authenticated baseline's message count
// in failure-free runs: the sender's broadcast plus t echo broadcasts,
// (t+1)(n−1) = O(n·t).
func NonAuthMessages(n, t int) int { return (t + 1) * (n - 1) }

// NonAuthEngineRounds returns the engine rounds for the baseline: value
// broadcast, echo broadcast, and the message-free cross-check step.
func NonAuthEngineRounds(t int) int {
	if t == 0 {
		return 2 // broadcast + accept; no echo round
	}
	return 3
}

// Outcomer is implemented by every protocol node in this package: after a
// run, each node reports whether it decided or discovered a failure.
type Outcomer interface {
	// Outcome returns the node's terminal state for the run.
	Outcome() model.Outcome
}

// valueOf formats a decision value for diagnostics.
func valueOf(v []byte) string {
	if len(v) <= 16 {
		return fmt.Sprintf("%q", v)
	}
	return fmt.Sprintf("%q… (%d bytes)", v[:16], len(v))
}
