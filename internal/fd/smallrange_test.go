package fd_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// smallRangeProcs builds correct small-range nodes on a fixture.
func smallRangeProcs(t *testing.T, f *fixture, value, def byte) ([]sim.Process, []*fd.SmallRangeNode) {
	t.Helper()
	procs := make([]sim.Process, f.cfg.N)
	nodes := make([]*fd.SmallRangeNode, f.cfg.N)
	for i := 0; i < f.cfg.N; i++ {
		id := model.NodeID(i)
		opts := []fd.SmallRangeOption{fd.WithDefault(def)}
		if id == fd.Sender {
			opts = append(opts, fd.WithBinaryValue(value))
		}
		n, err := fd.NewSmallRangeNode(f.cfg, id, f.signers[i], f.dirs[i], opts...)
		if err != nil {
			t.Fatalf("NewSmallRangeNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

func TestSmallRangeDefaultValueIsFree(t *testing.T) {
	// Sending the default value costs ZERO messages: silence encodes it.
	f := newFixture(t, 8, 2, 100)
	procs, nodes := smallRangeProcs(t, f, 0, 0)
	counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))

	if got := counters.Messages(); got != 0 {
		t.Errorf("messages = %d, want 0", got)
	}
	for _, n := range nodes {
		o := n.Outcome()
		if !o.Decided || len(o.Value) != 1 || o.Value[0] != 0 {
			t.Errorf("%v outcome = %v, want decided 0", o.Node, o)
		}
	}
}

func TestSmallRangeNonDefaultCostsChain(t *testing.T) {
	f := newFixture(t, 8, 2, 101)
	procs, nodes := smallRangeProcs(t, f, 1, 0)
	counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))

	if got, want := counters.Messages(), f.cfg.N-1; got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	for _, n := range nodes {
		o := n.Outcome()
		if !o.Decided || len(o.Value) != 1 || o.Value[0] != 1 {
			t.Errorf("%v outcome = %v, want decided 1", o.Node, o)
		}
	}
}

func TestSmallRangeInvertedDefault(t *testing.T) {
	// With default = 1, sending 1 is free and 0 costs n−1.
	f := newFixture(t, 6, 1, 102)
	procs, _ := smallRangeProcs(t, f, 1, 1)
	counters := runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))
	if got := counters.Messages(); got != 0 {
		t.Errorf("default-1 run: messages = %d, want 0", got)
	}

	procs, nodes := smallRangeProcs(t, f, 0, 1)
	counters = runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))
	if got, want := counters.Messages(), f.cfg.N-1; got != want {
		t.Errorf("non-default-0 run: messages = %d, want %d", got, want)
	}
	for _, n := range nodes {
		if o := n.Outcome(); !o.Decided || o.Value[0] != 0 {
			t.Errorf("%v outcome = %v, want decided 0", o.Node, o)
		}
	}
}

func TestSmallRangeExpectedMessagesHelper(t *testing.T) {
	if got := fd.SmallRangeMessages(8, 0, 0); got != 0 {
		t.Errorf("SmallRangeMessages(8,0,0) = %d", got)
	}
	if got := fd.SmallRangeMessages(8, 1, 0); got != 7 {
		t.Errorf("SmallRangeMessages(8,1,0) = %d", got)
	}
}

func TestSmallRangeChainCarryingDefaultDiscovered(t *testing.T) {
	// A faulty sender pushes a CHAIN carrying the default bit — a message
	// no failure-free run contains (the default flows as silence).
	f := newFixture(t, 6, 1, 103)
	procs, nodes := smallRangeProcs(t, f, 1, 0)
	sender := senderSigningBit(t, f, 0) // signs bit 0, which IS the default
	faulty := model.NewNodeSet(0)
	procs[0] = sender
	nodes[0] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(f.cfg.T))

	found := false
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if o := n.Outcome(); o.Discovery != nil && !faulty.Contains(o.Node) {
			found = true
		}
	}
	if !found {
		t.Error("chain carrying the default bit not discovered")
	}
}

// senderSigningBit returns a process that starts a chain over the given
// bit regardless of protocol rules.
func senderSigningBit(t *testing.T, f *fixture, bit byte) sim.Process {
	t.Helper()
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		chain, err := newTestChain(f, []byte{bit})
		if err != nil {
			t.Fatalf("newTestChain: %v", err)
		}
		return []model.Message{{To: 1, Kind: model.KindChainValue, Payload: chain.Marshal()}}
	})
}

func TestSmallRangeSplitAttack(t *testing.T) {
	// THE DOCUMENTED LIMITATION (experiment E9): a faulty disseminator
	// delivers the non-default chain to only part of the tail. The
	// starved tail nodes decide the default by the silence rule — and
	// NOBODY discovers a failure. This run violates F2 for the simplified
	// variant, which is exactly why the full Hadzilacos–Halpern
	// construction is more involved; the test pins the behaviour so the
	// limitation stays visible and documented.
	tol := 1
	f := newFixture(t, 6, tol, 104)
	procs, nodes := smallRangeProcs(t, f, 1, 0)
	faulty := model.NewNodeSet(model.NodeID(tol))
	victims := model.NewNodeSet(4, 5)
	procs[tol] = adversary.Wrap(nodes[tol], adversary.DropTo(victims))
	nodes[tol] = nil
	runFD(t, f.cfg, procs, fd.ChainEngineRounds(tol))

	var decided0, decided1 []model.NodeID
	discoveries := 0
	for _, n := range nodes {
		if n == nil {
			continue
		}
		o := n.Outcome()
		if faulty.Contains(o.Node) {
			continue
		}
		if o.Discovery != nil {
			discoveries++
		}
		if o.Decided {
			switch o.Value[0] {
			case 0:
				decided0 = append(decided0, o.Node)
			case 1:
				decided1 = append(decided1, o.Node)
			}
		}
	}
	if discoveries != 0 {
		t.Errorf("split attack was discovered (%d discoveries) — the documented gap closed?", discoveries)
	}
	if len(decided0) == 0 || len(decided1) == 0 {
		t.Errorf("split did not materialize: decided0=%v decided1=%v", decided0, decided1)
	}
}

func TestSmallRangeConstructorValidation(t *testing.T) {
	f := newFixture(t, 3, 1, 105)
	if _, err := fd.NewSmallRangeNode(f.cfg, 0, f.signers[0], f.dirs[0]); err == nil {
		t.Error("sender without value accepted")
	}
	if _, err := fd.NewSmallRangeNode(f.cfg, 1, nil, f.dirs[1]); err == nil {
		t.Error("nil signer accepted")
	}
}
