package fd

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/sig"
)

// Vector failure discovery: n chain-protocol instances running in the
// SAME rounds, one per sender, each with the role layout rotated so that
// instance s's chain is P_s → P_{s+1} → … → P_{s+t} → rest (indices
// mod n). Every node ends with a VECTOR of outcomes — one proposed value
// (or discovery) per peer — the failure-discovery analogue of
// interactive consistency.
//
// This is exactly the paper's amortization story exercised in parallel:
// local authentication is established once, then n simultaneous
// failure-discovery instances cost n·(n−1) messages and t+1 communication
// rounds in failure-free runs (versus n·(t+1)(n−1) for n baseline runs).
//
// Wire format: each message carries (instance, chain bytes) so the
// instances stay unambiguous while sharing rounds.

// VectorNode is a correct participant in all n instances at once.
type VectorNode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	dir    sig.Directory

	// value is this node's own proposal (it is the sender of instance id).
	value []byte

	// inst[s] is the per-instance state for sender s.
	inst []vectorInstance

	finished bool
}

// vectorInstance tracks one rotated chain instance at this node.
type vectorInstance struct {
	outcome  model.Outcome
	stopped  bool
	gotChain bool
}

// NewVectorNode builds a correct participant proposing value.
func NewVectorNode(cfg model.Config, id model.NodeID, signer sig.Signer, dir sig.Directory, value []byte) (*VectorNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("fd: node id %v out of range for n=%d", id, cfg.N)
	}
	if signer == nil || dir == nil {
		return nil, errors.New("fd: vector node needs a signer and a directory")
	}
	if value == nil {
		return nil, errors.New("fd: vector node needs a proposal value")
	}
	n := &VectorNode{
		id:     id,
		cfg:    cfg,
		signer: signer,
		dir:    dir,
		value:  append([]byte(nil), value...),
		inst:   make([]vectorInstance, cfg.N),
	}
	for s := range n.inst {
		n.inst[s].outcome.Node = id
	}
	return n, nil
}

// VectorMessages returns the failure-free message count: one chain
// protocol per sender.
func VectorMessages(n int) int { return n * (n - 1) }

// Finished implements sim.Finisher.
func (n *VectorNode) Finished() bool { return n.finished }

// Outcome returns this node's outcome for the instance whose sender is s.
func (n *VectorNode) Outcome(s model.NodeID) model.Outcome {
	if !s.Valid(n.cfg.N) {
		return model.Outcome{Node: n.id}
	}
	return n.inst[s].outcome
}

// Outcomes returns the full outcome vector indexed by sender.
func (n *VectorNode) Outcomes() []model.Outcome {
	out := make([]model.Outcome, n.cfg.N)
	for s := range n.inst {
		out[s] = n.inst[s].outcome
	}
	return out
}

// position returns this node's rotated position in instance s: 0 for the
// sender, 1..t for the chain, >t for the tail.
func (n *VectorNode) position(s model.NodeID) int {
	return (int(n.id) - int(s) + n.cfg.N) % n.cfg.N
}

// nodeAt returns the node sitting at rotated position p of instance s.
func (n *VectorNode) nodeAt(s model.NodeID, p int) model.NodeID {
	return model.NodeID((int(s) + p) % n.cfg.N)
}

// expectRound returns the engine round in which instance s's chain
// message reaches this node in failure-free runs.
func (n *VectorNode) expectRound(s model.NodeID) int {
	p := n.position(s)
	if p > n.cfg.T {
		return n.cfg.T + 2
	}
	return p + 1
}

// MarshalVectorPayload packs (instance, chain) into one exactly-sized
// payload. Exported for adversarial tests that rewrite instance traffic.
func MarshalVectorPayload(s model.NodeID, chain []byte) []byte {
	out := make([]byte, 0, sig.IntFieldSize+sig.BytesFieldSize(len(chain)))
	out = sig.AppendInt(out, int(s))
	return sig.AppendBytes(out, chain)
}

// marshalVectorChain packs (instance, chain) straight from the chain's
// cached state: one allocation, no intermediate Marshal copy.
func marshalVectorChain(s model.NodeID, chain *sig.Chain) []byte {
	msize := chain.MarshalSize()
	out := make([]byte, 0, sig.IntFieldSize+sig.BytesFieldSize(msize))
	out = sig.AppendInt(out, int(s))
	out = sig.AppendUint32(out, uint32(msize))
	return chain.MarshalTo(out)
}

// UnmarshalVectorPayload unpacks a vector payload; the returned chain is
// a fresh copy safe to mutate.
func UnmarshalVectorPayload(data []byte) (model.NodeID, []byte, error) {
	d := sig.NewDecoder(data)
	s := model.NodeID(d.Int())
	chain := append([]byte(nil), d.Bytes()...)
	if err := d.Finish(); err != nil {
		return model.NoNode, nil, err
	}
	return s, chain, nil
}

// Step implements the sim Process contract.
func (n *VectorNode) Step(round int, received []model.Message) []model.Message {
	var out []model.Message
	for _, m := range received {
		if m.Kind != model.KindChainValue {
			n.discoverAll(round, model.ReasonUnexpectedMessage,
				fmt.Sprintf("%v message from %v", m.Kind, m.From))
			continue
		}
		s, chainBytes, err := UnmarshalVectorPayload(m.Payload)
		if err != nil || !s.Valid(n.cfg.N) {
			n.discoverAll(round, model.ReasonBadFormat,
				fmt.Sprintf("unparsable vector payload from %v", m.From))
			continue
		}
		out = append(out, n.handleInstance(round, s, m.From, chainBytes)...)
	}
	// Round 1: start our own instance.
	if round == 1 {
		out = append(out, n.startOwnInstance()...)
	}
	// Deadline checks: any instance whose chain is overdue.
	for s := 0; s < n.cfg.N; s++ {
		sid := model.NodeID(s)
		inst := &n.inst[s]
		if inst.stopped || inst.gotChain || sid == n.id {
			continue
		}
		if round == n.expectRound(sid) {
			n.discoverInstance(sid, round, model.ReasonMissingMessage,
				fmt.Sprintf("no chain for instance %v by round %d", sid, round))
		}
	}
	if round >= ChainEngineRounds(n.cfg.T) {
		n.finished = true
	}
	return out
}

// startOwnInstance signs and launches this node's proposal.
func (n *VectorNode) startOwnInstance() []model.Message {
	chain, err := sig.NewChain(n.value, n.signer)
	if err != nil {
		panic(fmt.Sprintf("fd: %v signing vector value: %v", n.id, err))
	}
	inst := &n.inst[n.id]
	inst.outcome.Decided = true
	inst.outcome.Value = append([]byte(nil), n.value...)
	payload := marshalVectorChain(n.id, chain)
	if n.cfg.T == 0 {
		return model.AppendBroadcast(make([]model.Message, 0, n.cfg.N-1), n.cfg.N, n.id, model.KindChainValue, payload)
	}
	return []model.Message{{To: n.nodeAt(n.id, 1), Kind: model.KindChainValue, Payload: payload}}
}

// handleInstance processes instance s's chain message arriving from
// `from`, applying the same checks as the single-instance protocol with
// rotated expected signers.
func (n *VectorNode) handleInstance(round int, s, from model.NodeID, chainBytes []byte) []model.Message {
	inst := &n.inst[s]
	if inst.stopped {
		return nil
	}
	p := n.position(s)
	if p == 0 {
		// We are the sender of this instance; nobody sends us its chain.
		n.discoverInstance(s, round, model.ReasonUnexpectedMessage,
			fmt.Sprintf("chain for our own instance from %v", from))
		return nil
	}
	wantFrom := n.nodeAt(s, p-1)
	if p > n.cfg.T {
		wantFrom = n.nodeAt(s, n.cfg.T)
	}
	if inst.gotChain || round != n.expectRound(s) || from != wantFrom {
		n.discoverInstance(s, round, model.ReasonUnexpectedMessage,
			fmt.Sprintf("instance %v chain from %v in round %d", s, from, round))
		return nil
	}
	inst.gotChain = true

	chain, err := sig.UnmarshalChain(chainBytes)
	if err != nil {
		n.discoverInstance(s, round, model.ReasonBadFormat, err.Error())
		return nil
	}
	wantLen := p
	if p > n.cfg.T {
		wantLen = n.cfg.T + 1
	}
	if chain.Len() != wantLen {
		n.discoverInstance(s, round, model.ReasonBadChain,
			fmt.Sprintf("instance %v chain has %d signatures, want %d", s, chain.Len(), wantLen))
		return nil
	}
	signers, err := chain.Verify(from, n.dir)
	if err != nil {
		n.discoverInstance(s, round, model.ReasonBadChain, err.Error())
		return nil
	}
	for k, got := range signers {
		if got != n.nodeAt(s, k) {
			n.discoverInstance(s, round, model.ReasonBadChain,
				fmt.Sprintf("instance %v layer %d assigned to %v, want %v", s, k, got, n.nodeAt(s, k)))
			return nil
		}
	}

	inst.outcome.Decided = true
	inst.outcome.Value = append([]byte(nil), chain.Value()...)

	switch {
	case p < n.cfg.T:
		next, err := chain.Extend(from, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending vector chain: %v", n.id, err))
		}
		return []model.Message{{
			To:      n.nodeAt(s, p+1),
			Kind:    model.KindChainValue,
			Payload: marshalVectorChain(s, next),
		}}
	case p == n.cfg.T:
		next, err := chain.Extend(from, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending vector chain: %v", n.id, err))
		}
		payload := marshalVectorChain(s, next)
		out := make([]model.Message, 0, n.cfg.N-1-n.cfg.T)
		for q := n.cfg.T + 1; q < n.cfg.N; q++ {
			out = append(out, model.Message{
				To:      n.nodeAt(s, q),
				Kind:    model.KindChainValue,
				Payload: payload,
			})
		}
		return out
	default:
		return nil
	}
}

// discoverInstance marks instance s as failed at this node.
func (n *VectorNode) discoverInstance(s model.NodeID, round int, reason model.FailureReason, detail string) {
	inst := &n.inst[s]
	if inst.stopped {
		return
	}
	d := model.Discovery{Node: n.id, Round: round, Reason: reason, Detail: detail}
	inst.outcome.Decided = false
	inst.outcome.Value = nil
	inst.outcome.Discovery = &d
	inst.stopped = true
}

// discoverAll marks every still-open instance failed: used for messages
// that cannot be attributed to any instance (no failure-free run of ANY
// instance contains them).
func (n *VectorNode) discoverAll(round int, reason model.FailureReason, detail string) {
	for s := 0; s < n.cfg.N; s++ {
		if model.NodeID(s) == n.id {
			continue // our own proposal stands regardless
		}
		n.discoverInstance(model.NodeID(s), round, reason, detail)
	}
}
