package fd

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/sig"
)

// ChainNode implements the authenticated Failure Discovery protocol of
// paper Fig. 2, verbatim:
//
//	Protocol for P_0:
//	  send value {v}_{S_0} to P_1
//	Protocol for P_i, 1 ≤ i < t:
//	  receive m = {S_{i-1}, …, {S_0, {v}_{S_0}} …}_{S_{i-1}} from P_{i-1}
//	  check the signatures of the message and the submessages
//	  if negative then discover failure and stop
//	  else accept v and send {S_{i-1}, m}_{S_i} to P_{i+1}
//	Protocol for P_t:
//	  receive, check; if negative discover failure and stop
//	  else accept v and send {S_{t-1}, m}_{S_t} to P_{t+1} … P_n
//	Protocol for P_{t+1} … P_n:
//	  receive, check; if negative discover failure, else accept v
//
// The run uses the minimal n−1 messages. Every message is chain-signed
// with assignee names, so by Theorem 4 all correct nodes assign every
// sub-message to the same node or some correct node discovers a failure —
// which is exactly what makes the protocol sound under mere local
// authentication (paper §4.1).
//
// Verification strictness is configurable for the E6 ablation: the
// default VerifyFull checks every layer as the paper requires; the
// deliberately unsound VerifyOuterOnly checks just the outermost signature
// and demonstrably misses interior tampering.
type ChainNode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	dir    sig.Directory
	role   Role

	// value is the initial value (sender only).
	value []byte
	// verify selects the verification strictness (ablation hook).
	verify VerifyMode

	outcome  model.Outcome
	stopped  bool
	finished bool
	// gotChain marks that the expected chain message arrived on schedule.
	gotChain bool
	// evidence is the strongest chain this node can present for its
	// accepted value: the sender's initial chain, a relay's or the
	// disseminator's extended chain, or the tail's received full chain.
	// The FD→BA extension floods it during fallback.
	evidence *sig.Chain
}

// VerifyMode selects how much of a received chain a node checks.
type VerifyMode uint8

const (
	// VerifyFull checks the signatures of the message and all
	// sub-messages, as Fig. 2 demands. This is the only sound mode.
	VerifyFull VerifyMode = iota
	// VerifyOuterOnly checks only the outermost signature. It exists for
	// the E6 ablation, which shows which attacks full verification is
	// load-bearing against. Never use it outside that experiment.
	VerifyOuterOnly
)

// ChainOption configures a ChainNode.
type ChainOption func(*ChainNode)

// WithValue sets the sender's initial value. Only meaningful for P_0.
func WithValue(v []byte) ChainOption {
	return func(n *ChainNode) { n.value = append([]byte(nil), v...) }
}

// WithVerifyMode overrides the verification strictness (E6 ablation).
func WithVerifyMode(m VerifyMode) ChainOption {
	return func(n *ChainNode) { n.verify = m }
}

// NewChainNode builds a correct participant for one chain-protocol run.
// The signer and directory normally come from a completed key-distribution
// run (local authentication); a shared MapDirectory models global
// authentication instead.
func NewChainNode(cfg model.Config, id model.NodeID, signer sig.Signer, dir sig.Directory, opts ...ChainOption) (*ChainNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("fd: node id %v out of range for n=%d", id, cfg.N)
	}
	if signer == nil || dir == nil {
		return nil, errors.New("fd: chain node needs a signer and a directory")
	}
	n := &ChainNode{
		id:     id,
		cfg:    cfg,
		signer: signer,
		dir:    dir,
		role:   RoleOf(id, cfg.T),
	}
	n.outcome.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, errors.New("fd: sender needs WithValue")
	}
	return n, nil
}

// Role returns the node's protocol role.
func (n *ChainNode) Role() Role { return n.role }

// Outcome implements Outcomer.
func (n *ChainNode) Outcome() model.Outcome { return n.outcome }

// Finished implements sim.Finisher.
func (n *ChainNode) Finished() bool { return n.finished }

// expectRound returns the engine round in which this node's chain message
// arrives in failure-free runs: P_i receives in round i+1 (the sender's
// message is sent in round 1, delivered at the round-2 step), and the tail
// receives the disseminated chain in round t+2.
func (n *ChainNode) expectRound() int {
	if n.role == RoleTail {
		return n.cfg.T + 2
	}
	return int(n.id) + 1
}

// expectFrom returns the sender this node's chain message must come from.
func (n *ChainNode) expectFrom() model.NodeID {
	if n.role == RoleTail {
		return model.NodeID(n.cfg.T)
	}
	return n.id - 1
}

// Step implements the sim Process contract.
func (n *ChainNode) Step(round int, received []model.Message) []model.Message {
	if n.stopped {
		// "discover failure and stop": a stopped node ignores the rest of
		// the run.
		return nil
	}
	// Any message outside the node's single expected (round, sender, kind)
	// slot deviates from every failure-free run.
	var out []model.Message
	for _, m := range received {
		if n.stopped {
			break
		}
		if round == n.expectRound() && m.From == n.expectFrom() &&
			m.Kind == model.KindChainValue && !n.gotChain {
			n.gotChain = true
			out = append(out, n.handleChain(round, m)...)
			continue
		}
		n.discover(round, model.ReasonUnexpectedMessage,
			fmt.Sprintf("%v message from %v in round %d", m.Kind, m.From, round))
	}
	if n.stopped {
		return nil
	}
	switch {
	case round == 1 && n.id == Sender:
		out = append(out, n.startChain()...)
		n.finished = true
	case round == n.expectRound() && !n.gotChain && n.id != Sender:
		// Deadline passed with no chain message: no failure-free run is
		// silent here, so the absence itself is a discovered failure.
		n.discover(round, model.ReasonMissingMessage,
			fmt.Sprintf("no chain message from %v by round %d", n.expectFrom(), round))
	}
	if round >= ChainEngineRounds(n.cfg.T) {
		n.finished = true
	}
	return out
}

// startChain is P_0's single action: sign the value and send it to P_1,
// or — when t = 0 — disseminate it to everyone directly.
func (n *ChainNode) startChain() []model.Message {
	chain, err := sig.NewChain(n.value, n.signer)
	if err != nil {
		panic(fmt.Sprintf("fd: %v signing value: %v", n.id, err))
	}
	n.evidence = chain
	n.decide(n.value)
	payload := chain.Marshal()
	if n.cfg.T == 0 {
		return model.AppendBroadcast(make([]model.Message, 0, n.cfg.N-1), n.cfg.N, n.id, model.KindChainValue, payload)
	}
	return []model.Message{{To: Sender + 1, Kind: model.KindChainValue, Payload: payload}}
}

// handleChain performs the "check the signatures of the message and the
// submessages" step and the role-specific continuation.
func (n *ChainNode) handleChain(round int, m model.Message) []model.Message {
	chain, err := sig.UnmarshalChain(m.Payload)
	if err != nil {
		n.discover(round, model.ReasonBadFormat, fmt.Sprintf("chain from %v: %v", m.From, err))
		return nil
	}
	// In a failure-free run P_i's chain has exactly i signatures
	// (S_0 … S_{i-1}); the tail's has t+1.
	wantLen := int(n.id)
	if n.role == RoleTail {
		wantLen = n.cfg.T + 1
	}
	if chain.Len() != wantLen {
		n.discover(round, model.ReasonBadChain,
			fmt.Sprintf("chain from %v has %d signatures, want %d", m.From, chain.Len(), wantLen))
		return nil
	}
	if err := n.verifyChain(chain, m.From); err != nil {
		reason := model.ReasonBadChain
		switch {
		case errors.Is(err, sig.ErrChainUnknownSigner):
			reason = model.ReasonUnknownKey
		case errors.Is(err, sig.ErrChainBadSignature):
			reason = model.ReasonBadSignature
		}
		n.discover(round, reason, fmt.Sprintf("chain from %v: %v", m.From, err))
		return nil
	}
	n.decide(chain.Value())
	switch n.role {
	case RoleRelay:
		next, err := chain.Extend(m.From, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending chain: %v", n.id, err))
		}
		n.evidence = next
		n.finished = true
		return []model.Message{{To: n.id + 1, Kind: model.KindChainValue, Payload: next.Marshal()}}
	case RoleDisseminator:
		next, err := chain.Extend(m.From, n.signer)
		if err != nil {
			panic(fmt.Sprintf("fd: %v extending chain: %v", n.id, err))
		}
		n.evidence = next
		payload := next.Marshal()
		out := make([]model.Message, 0, n.cfg.N-1-n.cfg.T)
		for j := n.cfg.T + 1; j < n.cfg.N; j++ {
			out = append(out, model.Message{To: model.NodeID(j), Kind: model.KindChainValue, Payload: payload})
		}
		n.finished = true
		return out
	default: // RoleTail
		n.evidence = chain
		n.finished = true
		return nil
	}
}

// EvidenceChain returns the strongest chain this node can present for its
// accepted value: its signer sequence is the consecutive prefix
// P_0 … P_{k-1}. It is nil when the node accepted nothing.
func (n *ChainNode) EvidenceChain() *sig.Chain { return n.evidence }

// verifyChain checks the chain per the node's verification mode and, on
// success, that the signer sequence is exactly P_0 … P_{len-1} — the only
// sequence a failure-free run of Fig. 2 produces.
func (n *ChainNode) verifyChain(chain *sig.Chain, from model.NodeID) error {
	switch n.verify {
	case VerifyOuterOnly:
		// Ablation mode: reconstructs what a protocol that skips
		// sub-message checks would accept. Verify against a one-layer
		// check by re-verifying only the outermost signature: we do this
		// by checking the full chain and masking interior failures, which
		// would be circular — instead check just the outer layer directly.
		return verifyOuterOnly(chain, from, n.dir)
	default:
		signers, err := chain.Verify(from, n.dir)
		if err != nil {
			return err
		}
		for k, s := range signers {
			if s != model.NodeID(k) {
				return fmt.Errorf("%w: layer %d assigned to %v, want %v",
					sig.ErrChainBadSignature, k, s, model.NodeID(k))
			}
		}
		return nil
	}
}

// verifyOuterOnly checks only the outermost signature layer of a chain.
// Unsound by design; see VerifyOuterOnly.
func verifyOuterOnly(chain *sig.Chain, from model.NodeID, dir sig.Directory) error {
	pred, ok := dir.PredicateOf(from)
	if !ok {
		return fmt.Errorf("%w: outer layer assigned to %v", sig.ErrChainUnknownSigner, from)
	}
	if !chain.OuterVerify(pred) {
		return fmt.Errorf("%w: outer layer assigned to %v", sig.ErrChainBadSignature, from)
	}
	return nil
}

// decide records the node's decision value ("accept v").
func (n *ChainNode) decide(v []byte) {
	n.outcome.Decided = true
	n.outcome.Value = append([]byte(nil), v...)
}

// discover records a discovered failure and stops the node, per Fig. 2's
// "discover failure and stop". Discovery overrides any earlier decision:
// the node's view has left every failure-free run.
func (n *ChainNode) discover(round int, reason model.FailureReason, detail string) {
	d := model.Discovery{Node: n.id, Round: round, Reason: reason, Detail: detail}
	n.outcome.Decided = false
	n.outcome.Value = nil
	n.outcome.Discovery = &d
	n.stopped = true
	n.finished = true
}
