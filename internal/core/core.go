// Package core is the library's front door: it packages the paper's
// contribution — local authentication plus message-efficient Failure
// Discovery — behind a Cluster type a downstream user programs against.
//
// Lifecycle:
//
//	cluster, _ := core.New(model.Config{N: 16, T: 5})
//	_, _ = cluster.EstablishAuthentication()       // Fig. 1, once: 3n(n−1) msgs
//	rep, _ := cluster.RunFailureDiscovery(value)   // Fig. 2, per run: n−1 msgs
//
// Every run is metered, so the amortization story of the paper's abstract
// ("the effort of establishing local authentication once results in a
// substantial reduction of messages in subsequent failure-discovery
// protocols") is directly observable via Cluster.Ledger.
//
// Fault injection: any node can be replaced by an arbitrary process for
// any phase with the WithProcess run option (or WithKeyDistProcess for the
// authentication phase), which is how the experiments wire in package
// adversary's behaviours.
package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/ba"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/obs"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Protocol selects which failure-discovery protocol a run uses.
type Protocol uint8

// Protocols runnable through Cluster.RunFailureDiscovery.
const (
	// ProtocolChain is the authenticated chain protocol of paper Fig. 2
	// (n−1 messages). The default.
	ProtocolChain Protocol = iota
	// ProtocolNonAuth is the non-authenticated baseline ((t+1)(n−1)
	// messages). It ignores the cluster's keys entirely.
	ProtocolNonAuth
	// ProtocolSmallRange is the binary silence-as-default variant.
	ProtocolSmallRange
	// ProtocolFDBA is the Failure-Discovery-to-Byzantine-Agreement
	// extension (paper §4, Hadzilacos & Halpern): chain FD, then a signed
	// fallback flood only when a failure was discovered. Unlike the FD
	// protocols its correct nodes always decide; a phase-1 discovery rides
	// along in the outcome.
	ProtocolFDBA
	// ProtocolSM is the signed-messages Byzantine-agreement algorithm
	// SM(t) of Lamport, Shostak & Pease: O(n²) messages, tolerates any
	// t < n under authentication.
	ProtocolSM
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolChain:
		return "chain"
	case ProtocolNonAuth:
		return "nonauth"
	case ProtocolSmallRange:
		return "smallrange"
	case ProtocolFDBA:
		return "fdba"
	case ProtocolSM:
		return "sm"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// EngineRounds returns the lockstep engine rounds a full run of the
// protocol needs at fault bound t. This is the round bound
// RunFailureDiscovery enforces and conformance checks runs against.
// Every protocol is enumerated: a new Protocol value without a case
// here panics instead of silently running under the chain bound and
// truncating its schedule.
func EngineRounds(p Protocol, t int) int {
	switch p {
	case ProtocolChain, ProtocolSmallRange:
		return fd.ChainEngineRounds(t)
	case ProtocolNonAuth:
		return fd.NonAuthEngineRounds(t)
	case ProtocolFDBA:
		return ba.FDBAEngineRounds(t)
	case ProtocolSM:
		return ba.SMEngineRounds(t)
	default:
		panic(fmt.Sprintf("core: EngineRounds has no case for %v", p))
	}
}

// Cluster owns n logical nodes, their keys and directories, and a message
// ledger spanning all protocol phases.
//
// Entropy is split into two independent domains so key material and run
// randomness can be reseeded separately: keyEntropy feeds key generation
// only, runEntropy feeds everything per-run (handshake nonces). The split
// is what makes Reset/Rekey and the campaign setup cache sound: a cluster
// whose keys derive from key seed k behaves byte-identically in every
// post-establishment run to a fresh cluster built with the same k,
// regardless of which run seeds drew the nonces along the way.
type Cluster struct {
	cfg    model.Config
	scheme sig.Scheme
	// keyEntropy returns node i's key-generation entropy; defaults to
	// crypto/rand, overridden by WithSeed/WithKeySeed for reproducible,
	// cacheable key material.
	keyEntropy func(node int) io.Reader
	// runEntropy returns node i's per-run entropy (handshake nonces);
	// defaults to crypto/rand, overridden by WithSeed and Reset.
	runEntropy func(node int) io.Reader
	// runDeterministic marks a WithSeed cluster; only such clusters
	// reseed run entropy on Reset/Rekey (clusters without WithSeed keep
	// drawing nonces from crypto/rand, even when their keys are pinned).
	runDeterministic bool
	// keyPinned marks that WithKeySeed (or Rekey) set the key domain
	// explicitly, so WithSeed must not override it whatever order the
	// options came in.
	keyPinned bool

	// pregenSigners, when set, supplies each node's already-generated key
	// pair to EstablishAuthentication instead of generating from
	// keyEntropy (WithPregeneratedSigners). Cleared by Rekey: a new key
	// epoch must regenerate from its own seed.
	pregenSigners []sig.Signer

	nodes []*keydist.Node
	// established marks that EstablishAuthentication completed.
	established bool

	ledger *Ledger

	// rec receives structured phase spans and per-round engine events
	// when set (WithObserver); nil — the default — is the disabled
	// recorder and costs one nil check per phase. Tracing is a pure
	// reader: it never changes a report.
	rec *obs.Recorder
	// tracer additionally observes every delivered message in both
	// phases (WithTracer), e.g. a sim.WriterTracer behind a -trace flag.
	tracer sim.Tracer
}

// Option configures a Cluster.
type Option func(*Cluster) error

// WithScheme selects the signature scheme by registry name (default
// ed25519).
func WithScheme(name string) Option {
	return func(c *Cluster) error {
		s, err := sig.ByName(name)
		if err != nil {
			return err
		}
		c.scheme = s
		return nil
	}
}

// WithSeed makes all key generation and nonces deterministic from the
// given seed, for reproducible experiments. Key material draws from the
// seed's key domain (sim.KeyMaterialSeed) and per-run randomness from its
// run domain (sim.NodeSeed), so the two can later be reseeded
// independently via Reset and Rekey. Production clusters should not set
// it.
func WithSeed(seed int64) Option {
	return func(c *Cluster) error {
		c.runDeterministic = true
		if !c.keyPinned {
			c.keyEntropy = keyEntropyFor(seed)
		}
		c.runEntropy = runEntropyFor(seed)
		return nil
	}
}

// WithKeySeed pins the cluster's key material to its own seed,
// independent of the run seed: two clusters sharing a key seed generate
// identical keys even when WithSeed differs. This is the amortization
// hook — the campaign engine gives every instance of a (scheme, n, t)
// cell the same key seed, so one established cluster can be Reset and
// reused for the whole seed sweep while staying byte-identical to
// per-instance fresh setup. WithKeySeed wins over WithSeed's key domain
// in either order.
func WithKeySeed(keySeed int64) Option {
	return func(c *Cluster) error {
		c.keyPinned = true
		c.keyEntropy = keyEntropyFor(keySeed)
		return nil
	}
}

// WithPregeneratedSigners hands the cluster one already-generated signer
// per node; EstablishAuthentication adopts signers[i] for node i instead
// of generating from the key-entropy stream. The caller owns the
// equivalence claim: byte-identity with a generating cluster holds
// exactly when the signers were drawn from the same key-material streams
// (the shared key-material warmup's contract). Rekey discards them — a
// new key epoch regenerates from its own seed.
func WithPregeneratedSigners(signers []sig.Signer) Option {
	return func(c *Cluster) error {
		if len(signers) != c.cfg.N {
			return fmt.Errorf("core: %d pregenerated signers for n=%d", len(signers), c.cfg.N)
		}
		c.pregenSigners = signers
		return nil
	}
}

// WithObserver attaches a structured-event recorder: the cluster emits
// "core.keydist" and "core.fdrun" spans around its phases and per-round
// "sim.round" spans from the engines underneath. A nil recorder is the
// disabled default; observation never changes protocol behaviour or
// report contents.
func WithObserver(rec *obs.Recorder) Option {
	return func(c *Cluster) error {
		c.rec = rec
		return nil
	}
}

// WithTracer attaches a message tracer (e.g. sim.WriterTracer) to every
// engine the cluster runs, across both phases. It composes with
// WithObserver via sim.MultiTracer.
func WithTracer(t sim.Tracer) Option {
	return func(c *Cluster) error {
		c.tracer = t
		return nil
	}
}

// keyEntropyFor returns the per-node key-generation streams of a key seed.
func keyEntropyFor(keySeed int64) func(node int) io.Reader {
	return func(node int) io.Reader {
		return sim.SeededReader(sim.KeyMaterialSeed(keySeed, node))
	}
}

// runEntropyFor returns the per-node run-entropy streams of a run seed.
func runEntropyFor(seed int64) func(node int) io.Reader {
	return func(node int) io.Reader {
		return sim.SeededReader(sim.NodeSeed(seed, node))
	}
}

// New creates a cluster of n correct nodes with fault bound t.
func New(cfg model.Config, opts ...Option) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:        cfg,
		keyEntropy: func(int) io.Reader { return rand.Reader },
		runEntropy: func(int) io.Reader { return rand.Reader },
		ledger:     NewLedger(),
	}
	defaultScheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		return nil, err
	}
	c.scheme = defaultScheme
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() model.Config { return c.cfg }

// Scheme returns the signature scheme in use.
func (c *Cluster) Scheme() sig.Scheme { return c.scheme }

// Ledger returns the cumulative message ledger.
func (c *Cluster) Ledger() *Ledger { return c.ledger }

// Established reports whether local authentication has been set up.
func (c *Cluster) Established() bool { return c.established }

// engineTracer combines the cluster's message tracer and, when an
// observer is attached, a fresh per-run obs.EngineTracer. nil when the
// run needs no tracing at all — the engine then skips the tracer seam
// entirely.
func (c *Cluster) engineTracer(proto string) sim.Tracer {
	var et sim.Tracer
	if c.rec.Enabled() {
		et = obs.NewEngineTracer(c.rec, -1, proto)
	}
	switch {
	case c.tracer == nil:
		return et // may be nil: no tracing
	case et == nil:
		return c.tracer
	default:
		return sim.MultiTracer(c.tracer, et)
	}
}

// newEngine builds the run engine, attaching the tracer and network
// seams only when live — the disabled path must not pay even the
// options-slice allocation (one per instance adds up across a sweep).
func (c *Cluster) newEngine(proto string, procs []sim.Process, counters *metrics.Counters, net sim.Network) (*sim.Engine, error) {
	t := c.engineTracer(proto)
	switch {
	case t == nil && net == nil:
		return sim.New(c.cfg, procs, sim.WithCounters(counters))
	case net == nil:
		return sim.New(c.cfg, procs, sim.WithCounters(counters), sim.WithTracer(t))
	case t == nil:
		return sim.New(c.cfg, procs, sim.WithCounters(counters), sim.WithNetwork(net))
	default:
		return sim.New(c.cfg, procs, sim.WithCounters(counters), sim.WithTracer(t), sim.WithNetwork(net))
	}
}

// netEmitter adapts the cluster's observer into a netcond.Emitter for
// partition/heal/churn/delivery-delay points; nil when no observer is
// attached, so the disabled path costs one nil check.
func (c *Cluster) netEmitter() netcond.Emitter {
	if !c.rec.Enabled() {
		return nil
	}
	rec := c.rec
	return func(scope string, round, node int, attrs string) {
		rec.Emit(obs.Event{Kind: obs.KindPoint, Scope: scope, Inst: -1, Round: round, Node: node, Attrs: attrs})
	}
}

// Reset re-arms the cluster for a new deterministic run sequence under
// seed without paying setup again: the ledger is cleared and the
// run-entropy streams are reseeded, while key material, directories, and
// the established flag all survive. This is the canonical
// many-runs-one-setup idiom — the paper's amortization argument made
// operational: pay EstablishAuthentication once, then Reset between run
// batches instead of rebuilding the cluster.
//
// A Reset cluster is byte-equivalent to a fresh one only when its key
// material is pinned independently of the run seed (WithKeySeed); the
// campaign setup cache relies on exactly that. Clusters not created with
// WithSeed keep drawing run entropy from crypto/rand — for them Reset
// only clears the ledger, even when their keys are pinned. Runs that
// need fresh keys use Rekey instead.
//
// The ledger is cleared in place: handles returned by Ledger() earlier
// stay valid and observe the new run sequence.
func (c *Cluster) Reset(seed int64) {
	c.ledger.Reset()
	if c.runDeterministic {
		c.runEntropy = runEntropyFor(seed)
	}
}

// Rekey is the explicit re-keying path: it discards the cluster's key
// material, established state, and ledger (a new key epoch starts its
// accounting from zero), and pins key generation to the given key seed —
// exactly as constructing with WithKeySeed would, on any cluster — so
// the next EstablishAuthentication regenerates everything. Use it when
// runs must not share keys with earlier ones; Reset deliberately never
// does this.
//
// On a WithSeed cluster the run entropy is reseeded onto the key seed
// too, so the new epoch's handshake draws fresh nonces instead of
// replaying the previous epoch's (the two seed domains stay
// independent); follow with Reset to choose a different run seed.
// Clusters without WithSeed keep drawing nonces from crypto/rand, before
// and after Rekey.
func (c *Cluster) Rekey(keySeed int64) {
	c.nodes = nil
	c.established = false
	c.pregenSigners = nil
	c.ledger.Reset()
	if c.runDeterministic {
		c.runEntropy = runEntropyFor(keySeed)
	}
	c.keyPinned = true
	c.keyEntropy = keyEntropyFor(keySeed)
}

// Directory returns node id's accepted predicate directory. Only valid
// after EstablishAuthentication.
func (c *Cluster) Directory(id model.NodeID) (*keydist.Directory, error) {
	if !c.established {
		return nil, errors.New("core: authentication not yet established")
	}
	if !id.Valid(c.cfg.N) {
		return nil, fmt.Errorf("core: node id %v out of range", id)
	}
	return c.nodes[id].Directory(), nil
}

// Signer returns node id's secret-key handle. Only valid after
// EstablishAuthentication.
func (c *Cluster) Signer(id model.NodeID) (sig.Signer, error) {
	if !c.established {
		return nil, errors.New("core: authentication not yet established")
	}
	if !id.Valid(c.cfg.N) {
		return nil, fmt.Errorf("core: node id %v out of range", id)
	}
	return c.nodes[id].Signer(), nil
}

// KeyDistOption configures the authentication phase.
type KeyDistOption func(*keyDistRun)

type keyDistRun struct {
	overrides map[model.NodeID]sim.Process
}

// WithKeyDistProcess replaces node id's key-distribution process with an
// arbitrary (typically adversarial) one. The replaced node has no keys
// afterwards; later runs must also override it.
func WithKeyDistProcess(id model.NodeID, p sim.Process) KeyDistOption {
	return func(r *keyDistRun) { r.overrides[id] = p }
}

// EstablishAuthentication runs the paper's Fig. 1 key-distribution
// protocol across the cluster and retains each correct node's signer and
// directory. It returns the phase report; the traffic is also added to
// the cluster ledger under PhaseKeyDist.
func (c *Cluster) EstablishAuthentication(opts ...KeyDistOption) (Report, error) {
	span := c.rec.Begin(obs.Event{Scope: "core.keydist", Inst: -1, Node: -1, Proto: "keydist"})
	run := keyDistRun{overrides: make(map[model.NodeID]sim.Process)}
	for _, opt := range opts {
		opt(&run)
	}
	procs := make([]sim.Process, c.cfg.N)
	nodes := make([]*keydist.Node, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := run.overrides[id]; ok {
			procs[i] = p
			continue
		}
		var n *keydist.Node
		var err error
		if c.pregenSigners != nil {
			n, err = keydist.NewNode(c.cfg, id, c.scheme, c.runEntropy(i), keydist.WithSigner(c.pregenSigners[i]))
		} else {
			n, err = keydist.NewNode(c.cfg, id, c.scheme, c.runEntropy(i), keydist.WithKeyRand(c.keyEntropy(i)))
		}
		if err != nil {
			return Report{}, fmt.Errorf("core: build keydist node %v: %w", id, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	counters := metrics.NewCounters()
	engine, err := c.newEngine("keydist", procs, counters, nil)
	if err != nil {
		return Report{}, err
	}
	res := engine.Run(keydist.RoundsTotal)
	c.nodes = nodes
	c.established = true

	rep := Report{
		Phase:    PhaseKeyDist,
		Rounds:   res.Rounds,
		Snapshot: counters.Snapshot(),
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		for _, d := range n.Discoveries() {
			rep.Discoveries = append(rep.Discoveries, d)
		}
	}
	c.ledger.Add(rep)
	if c.rec.Enabled() {
		span.End(obs.Attrs("rounds", rep.Rounds, "msgs", rep.Snapshot.Messages,
			"bytes", rep.Snapshot.Bytes, "discoveries", len(rep.Discoveries)))
	}
	return rep, nil
}

// RunOption configures one failure-discovery run.
type RunOption func(*fdRun)

type fdRun struct {
	protocol  Protocol
	overrides map[model.NodeID]sim.Process
	wrappers  map[model.NodeID]func(sim.Process) sim.Process
	defBit    byte
	network   sim.Network
	churn     map[model.NodeID]netcond.ChurnSpec
}

// WithProtocol selects the protocol (default ProtocolChain).
func WithProtocol(p Protocol) RunOption {
	return func(r *fdRun) { r.protocol = p }
}

// WithProcess replaces node id's process for this run with an arbitrary
// (typically adversarial) one.
func WithProcess(id model.NodeID, p sim.Process) RunOption {
	return func(r *fdRun) { r.overrides[id] = p }
}

// WithWrappedProcess builds node id's protocol process as usual (honoring
// a WithProcess override first) and runs wrap(process) in its place: the
// composition hook for adversary.Wrap-style outbox filters over an
// otherwise correct node. The wrapped node is treated as faulty — its
// outcome is not collected, exactly as for WithProcess overrides.
func WithWrappedProcess(id model.NodeID, wrap func(sim.Process) sim.Process) RunOption {
	return func(r *fdRun) { r.wrappers[id] = wrap }
}

// WithNetwork layers a network-condition model (typically a
// *netcond.Model) under this run's engine: message delivery follows the
// model's fates instead of the ideal next-round schedule. The
// authentication phase is never degraded — the paper's setup assumes an
// intact network, and the campaign's setup cache shares established
// clusters across conditions. When an observer is attached and the
// network supports it, partition/heal/drop/delay events are emitted.
func WithNetwork(net sim.Network) RunOption {
	return func(r *fdRun) { r.network = net }
}

// WithChurn schedules an honest node's crash-and-restart for this run:
// the node is down from spec.Crash and — if spec.Restart is set —
// rejoins at that round rebuilt from its durable state (signer,
// directory, key material), with all volatile protocol state lost.
// This is restart-with-recovery on top of the cluster's Reset/Rekey
// machinery: recovery re-runs node construction against the already
// established authentication setup, so the rejoined node authenticates
// exactly as before the crash. A churned node is treated as faulty for
// outcome collection (the model has no honest-but-silent nodes); later
// WithChurn calls for the same node replace earlier ones.
func WithChurn(spec netcond.ChurnSpec) RunOption {
	return func(r *fdRun) {
		if r.churn == nil {
			r.churn = make(map[model.NodeID]netcond.ChurnSpec)
		}
		r.churn[model.NodeID(spec.Node)] = spec
	}
}

// WithSmallRangeDefault sets the silence-encoded bit for
// ProtocolSmallRange runs.
func WithSmallRangeDefault(d byte) RunOption {
	return func(r *fdRun) { r.defBit = d & 1 }
}

// RunFailureDiscovery executes one failure-discovery run with P_0 as the
// sender of value. The authenticated protocols require
// EstablishAuthentication to have run first; the non-authenticated
// baseline does not.
func (c *Cluster) RunFailureDiscovery(value []byte, opts ...RunOption) (Report, error) {
	run := fdRun{
		overrides: make(map[model.NodeID]sim.Process),
		wrappers:  make(map[model.NodeID]func(sim.Process) sim.Process),
	}
	for _, opt := range opts {
		opt(&run)
	}
	if run.protocol != ProtocolNonAuth && !c.established {
		return Report{}, errors.New("core: establish authentication before running an authenticated protocol")
	}
	span := c.rec.Begin(obs.Event{Scope: "core.fdrun", Inst: -1, Node: -1,
		Proto: run.protocol.String()})

	emitter := c.netEmitter()
	if run.network != nil && emitter != nil {
		if o, ok := run.network.(interface{ SetEmitter(netcond.Emitter) }); ok {
			o.SetEmitter(emitter)
		}
	}

	procs := make([]sim.Process, c.cfg.N)
	outcomers := make([]fd.Outcomer, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := run.overrides[id]; ok {
			if wrap, ok := run.wrappers[id]; ok {
				p = wrap(p)
			}
			procs[i] = p
			continue
		}
		p, out, err := c.buildNode(run.protocol, run.defBit, value, id)
		if err != nil {
			return Report{}, fmt.Errorf("core: build %v node %v: %w", run.protocol, id, err)
		}
		outcomers[i] = out
		if wrap, ok := run.wrappers[id]; ok {
			p = wrap(p)
			outcomers[i] = nil // wrapped nodes are faulty: no outcome obligation
		}
		if ch, ok := run.churn[id]; ok {
			proto, defBit := run.protocol, run.defBit
			rebuild := func() (sim.Process, error) {
				np, _, err := c.buildNode(proto, defBit, value, id)
				return np, err
			}
			p = netcond.NewChurner(p, ch, rebuild, emitter)
			outcomers[i] = nil // churned nodes are faulty: no outcome obligation
		}
		procs[i] = p
	}

	counters := metrics.NewCounters()
	engine, err := c.newEngine(run.protocol.String(), procs, counters, run.network)
	if err != nil {
		return Report{}, err
	}
	res := engine.Run(EngineRounds(run.protocol, c.cfg.T))

	rep := Report{
		Phase:    PhaseFD,
		Protocol: run.protocol,
		Rounds:   res.Rounds,
		Snapshot: counters.Snapshot(),
	}
	for _, o := range outcomers {
		if o == nil {
			continue
		}
		out := o.Outcome()
		rep.Outcomes = append(rep.Outcomes, out)
		if out.Discovery != nil {
			rep.Discoveries = append(rep.Discoveries, *out.Discovery)
		}
	}
	c.ledger.Add(rep)
	if c.rec.Enabled() {
		span.End(obs.Attrs("rounds", rep.Rounds, "msgs", rep.Snapshot.Messages,
			"bytes", rep.Snapshot.Bytes, "discoveries", len(rep.Discoveries)))
	}
	return rep, nil
}

// buildNode constructs node id's protocol process from the cluster's
// durable state (signer, directory, key material). It is pure with
// respect to volatile protocol state, so calling it again mid-run is
// exactly restart-with-recovery: the netcond churn wrapper uses it as
// the rebuild hook when a crashed node rejoins. A method rather than a
// per-run closure so the ideal path stays allocation-flat.
func (c *Cluster) buildNode(proto Protocol, defBit byte, value []byte, id model.NodeID) (sim.Process, fd.Outcomer, error) {
	i := int(id)
	switch proto {
	case ProtocolChain:
		var nodeOpts []fd.ChainOption
		if id == fd.Sender {
			nodeOpts = append(nodeOpts, fd.WithValue(value))
		}
		n, err := fd.NewChainNode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), nodeOpts...)
		if err != nil {
			return nil, nil, err
		}
		return n, n, nil
	case ProtocolNonAuth:
		var nodeOpts []fd.NonAuthOption
		if id == fd.Sender {
			nodeOpts = append(nodeOpts, fd.WithNonAuthValue(value))
		}
		n, err := fd.NewNonAuthNode(c.cfg, id, nodeOpts...)
		if err != nil {
			return nil, nil, err
		}
		return n, n, nil
	case ProtocolSmallRange:
		nodeOpts := []fd.SmallRangeOption{fd.WithDefault(defBit)}
		if id == fd.Sender {
			if len(value) != 1 {
				return nil, nil, fmt.Errorf("core: small-range values are single bits, got %d bytes", len(value))
			}
			nodeOpts = append(nodeOpts, fd.WithBinaryValue(value[0]))
		}
		n, err := fd.NewSmallRangeNode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), nodeOpts...)
		if err != nil {
			return nil, nil, err
		}
		return n, n, nil
	case ProtocolFDBA:
		n, err := ba.NewFDBANode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), value)
		if err != nil {
			return nil, nil, err
		}
		return n, n, nil
	case ProtocolSM:
		var nodeOpts []ba.SMOption
		if id == fd.Sender {
			nodeOpts = append(nodeOpts, ba.WithSMValue(value))
		}
		n, err := ba.NewSMNode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), nodeOpts...)
		if err != nil {
			return nil, nil, err
		}
		return n, n, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown protocol %v", proto)
	}
}
