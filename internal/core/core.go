// Package core is the library's front door: it packages the paper's
// contribution — local authentication plus message-efficient Failure
// Discovery — behind a Cluster type a downstream user programs against.
//
// Lifecycle:
//
//	cluster, _ := core.New(model.Config{N: 16, T: 5})
//	_, _ = cluster.EstablishAuthentication()       // Fig. 1, once: 3n(n−1) msgs
//	rep, _ := cluster.RunFailureDiscovery(value)   // Fig. 2, per run: n−1 msgs
//
// Every run is metered, so the amortization story of the paper's abstract
// ("the effort of establishing local authentication once results in a
// substantial reduction of messages in subsequent failure-discovery
// protocols") is directly observable via Cluster.Ledger.
//
// Fault injection: any node can be replaced by an arbitrary process for
// any phase with the WithProcess run option (or WithKeyDistProcess for the
// authentication phase), which is how the experiments wire in package
// adversary's behaviours.
package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Protocol selects which failure-discovery protocol a run uses.
type Protocol uint8

// Protocols runnable through Cluster.RunFailureDiscovery.
const (
	// ProtocolChain is the authenticated chain protocol of paper Fig. 2
	// (n−1 messages). The default.
	ProtocolChain Protocol = iota
	// ProtocolNonAuth is the non-authenticated baseline ((t+1)(n−1)
	// messages). It ignores the cluster's keys entirely.
	ProtocolNonAuth
	// ProtocolSmallRange is the binary silence-as-default variant.
	ProtocolSmallRange
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolChain:
		return "chain"
	case ProtocolNonAuth:
		return "nonauth"
	case ProtocolSmallRange:
		return "smallrange"
	default:
		return fmt.Sprintf("protocol(%d)", uint8(p))
	}
}

// Cluster owns n logical nodes, their keys and directories, and a message
// ledger spanning all protocol phases.
type Cluster struct {
	cfg    model.Config
	scheme sig.Scheme
	// entropy returns the entropy source for node i; defaults to
	// crypto/rand, overridden by WithSeed for reproducible runs.
	entropy func(node int) io.Reader

	nodes []*keydist.Node
	// established marks that EstablishAuthentication completed.
	established bool

	ledger *Ledger
}

// Option configures a Cluster.
type Option func(*Cluster) error

// WithScheme selects the signature scheme by registry name (default
// ed25519).
func WithScheme(name string) Option {
	return func(c *Cluster) error {
		s, err := sig.ByName(name)
		if err != nil {
			return err
		}
		c.scheme = s
		return nil
	}
}

// WithSeed makes all key generation and nonces deterministic from the
// given seed, for reproducible experiments. Production clusters should
// not set it.
func WithSeed(seed int64) Option {
	return func(c *Cluster) error {
		c.entropy = func(node int) io.Reader {
			return sim.SeededReader(sim.NodeSeed(seed, node))
		}
		return nil
	}
}

// New creates a cluster of n correct nodes with fault bound t.
func New(cfg model.Config, opts ...Option) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		entropy: func(int) io.Reader { return rand.Reader },
		ledger:  NewLedger(),
	}
	defaultScheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		return nil, err
	}
	c.scheme = defaultScheme
	for _, opt := range opts {
		if err := opt(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() model.Config { return c.cfg }

// Scheme returns the signature scheme in use.
func (c *Cluster) Scheme() sig.Scheme { return c.scheme }

// Ledger returns the cumulative message ledger.
func (c *Cluster) Ledger() *Ledger { return c.ledger }

// Established reports whether local authentication has been set up.
func (c *Cluster) Established() bool { return c.established }

// Directory returns node id's accepted predicate directory. Only valid
// after EstablishAuthentication.
func (c *Cluster) Directory(id model.NodeID) (*keydist.Directory, error) {
	if !c.established {
		return nil, errors.New("core: authentication not yet established")
	}
	if !id.Valid(c.cfg.N) {
		return nil, fmt.Errorf("core: node id %v out of range", id)
	}
	return c.nodes[id].Directory(), nil
}

// Signer returns node id's secret-key handle. Only valid after
// EstablishAuthentication.
func (c *Cluster) Signer(id model.NodeID) (sig.Signer, error) {
	if !c.established {
		return nil, errors.New("core: authentication not yet established")
	}
	if !id.Valid(c.cfg.N) {
		return nil, fmt.Errorf("core: node id %v out of range", id)
	}
	return c.nodes[id].Signer(), nil
}

// KeyDistOption configures the authentication phase.
type KeyDistOption func(*keyDistRun)

type keyDistRun struct {
	overrides map[model.NodeID]sim.Process
}

// WithKeyDistProcess replaces node id's key-distribution process with an
// arbitrary (typically adversarial) one. The replaced node has no keys
// afterwards; later runs must also override it.
func WithKeyDistProcess(id model.NodeID, p sim.Process) KeyDistOption {
	return func(r *keyDistRun) { r.overrides[id] = p }
}

// EstablishAuthentication runs the paper's Fig. 1 key-distribution
// protocol across the cluster and retains each correct node's signer and
// directory. It returns the phase report; the traffic is also added to
// the cluster ledger under PhaseKeyDist.
func (c *Cluster) EstablishAuthentication(opts ...KeyDistOption) (Report, error) {
	run := keyDistRun{overrides: make(map[model.NodeID]sim.Process)}
	for _, opt := range opts {
		opt(&run)
	}
	procs := make([]sim.Process, c.cfg.N)
	nodes := make([]*keydist.Node, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := run.overrides[id]; ok {
			procs[i] = p
			continue
		}
		n, err := keydist.NewNode(c.cfg, id, c.scheme, c.entropy(i))
		if err != nil {
			return Report{}, fmt.Errorf("core: build keydist node %v: %w", id, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	counters := metrics.NewCounters()
	engine, err := sim.New(c.cfg, procs, sim.WithCounters(counters))
	if err != nil {
		return Report{}, err
	}
	res := engine.Run(keydist.RoundsTotal)
	c.nodes = nodes
	c.established = true

	rep := Report{
		Phase:    PhaseKeyDist,
		Rounds:   res.Rounds,
		Snapshot: counters.Snapshot(),
	}
	for _, n := range nodes {
		if n == nil {
			continue
		}
		for _, d := range n.Discoveries() {
			rep.Discoveries = append(rep.Discoveries, d)
		}
	}
	c.ledger.Add(rep)
	return rep, nil
}

// RunOption configures one failure-discovery run.
type RunOption func(*fdRun)

type fdRun struct {
	protocol  Protocol
	overrides map[model.NodeID]sim.Process
	defBit    byte
}

// WithProtocol selects the protocol (default ProtocolChain).
func WithProtocol(p Protocol) RunOption {
	return func(r *fdRun) { r.protocol = p }
}

// WithProcess replaces node id's process for this run with an arbitrary
// (typically adversarial) one.
func WithProcess(id model.NodeID, p sim.Process) RunOption {
	return func(r *fdRun) { r.overrides[id] = p }
}

// WithSmallRangeDefault sets the silence-encoded bit for
// ProtocolSmallRange runs.
func WithSmallRangeDefault(d byte) RunOption {
	return func(r *fdRun) { r.defBit = d & 1 }
}

// RunFailureDiscovery executes one failure-discovery run with P_0 as the
// sender of value. The authenticated protocols require
// EstablishAuthentication to have run first; the non-authenticated
// baseline does not.
func (c *Cluster) RunFailureDiscovery(value []byte, opts ...RunOption) (Report, error) {
	run := fdRun{overrides: make(map[model.NodeID]sim.Process)}
	for _, opt := range opts {
		opt(&run)
	}
	if run.protocol != ProtocolNonAuth && !c.established {
		return Report{}, errors.New("core: establish authentication before running an authenticated protocol")
	}

	procs := make([]sim.Process, c.cfg.N)
	outcomers := make([]fd.Outcomer, c.cfg.N)
	for i := 0; i < c.cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := run.overrides[id]; ok {
			procs[i] = p
			continue
		}
		var (
			p   sim.Process
			err error
		)
		switch run.protocol {
		case ProtocolChain:
			var nodeOpts []fd.ChainOption
			if id == fd.Sender {
				nodeOpts = append(nodeOpts, fd.WithValue(value))
			}
			var n *fd.ChainNode
			n, err = fd.NewChainNode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), nodeOpts...)
			if err == nil {
				outcomers[i] = n
				p = n
			}
		case ProtocolNonAuth:
			var nodeOpts []fd.NonAuthOption
			if id == fd.Sender {
				nodeOpts = append(nodeOpts, fd.WithNonAuthValue(value))
			}
			var n *fd.NonAuthNode
			n, err = fd.NewNonAuthNode(c.cfg, id, nodeOpts...)
			if err == nil {
				outcomers[i] = n
				p = n
			}
		case ProtocolSmallRange:
			nodeOpts := []fd.SmallRangeOption{fd.WithDefault(run.defBit)}
			if id == fd.Sender {
				if len(value) != 1 {
					return Report{}, fmt.Errorf("core: small-range values are single bits, got %d bytes", len(value))
				}
				nodeOpts = append(nodeOpts, fd.WithBinaryValue(value[0]))
			}
			var n *fd.SmallRangeNode
			n, err = fd.NewSmallRangeNode(c.cfg, id, c.nodes[i].Signer(), c.nodes[i].Directory(), nodeOpts...)
			if err == nil {
				outcomers[i] = n
				p = n
			}
		default:
			return Report{}, fmt.Errorf("core: unknown protocol %v", run.protocol)
		}
		if err != nil {
			return Report{}, fmt.Errorf("core: build %v node %v: %w", run.protocol, id, err)
		}
		procs[i] = p
	}

	counters := metrics.NewCounters()
	engine, err := sim.New(c.cfg, procs, sim.WithCounters(counters))
	if err != nil {
		return Report{}, err
	}
	maxRounds := fd.ChainEngineRounds(c.cfg.T)
	if run.protocol == ProtocolNonAuth {
		maxRounds = fd.NonAuthEngineRounds(c.cfg.T)
	}
	res := engine.Run(maxRounds)

	rep := Report{
		Phase:    PhaseFD,
		Protocol: run.protocol,
		Rounds:   res.Rounds,
		Snapshot: counters.Snapshot(),
	}
	for _, o := range outcomers {
		if o == nil {
			continue
		}
		out := o.Outcome()
		rep.Outcomes = append(rep.Outcomes, out)
		if out.Discovery != nil {
			rep.Discoveries = append(rep.Discoveries, *out.Discovery)
		}
	}
	c.ledger.Add(rep)
	return rep, nil
}
