package core

import (
	"bytes"
	"fmt"

	"repro/internal/model"
)

// Property checkers for the paper's F1–F3 (Failure Discovery) conditions.
// Tests and the experiment harness assert THESE, the paper's theorems,
// rather than implementation details: an outcome set that passes all
// three is a witness that the protocol run met its specification.
//
// The checkers take the set of faulty node IDs so they can restrict the
// conditions to correct nodes, exactly as the definitions do.

// PropertyViolation describes a failed F-condition for diagnostics.
type PropertyViolation struct {
	// Property names the violated condition ("F1", "F2", "F3").
	Property string
	// Detail explains the violation.
	Detail string
}

// Error implements error.
func (v *PropertyViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Property, v.Detail)
}

// CheckF1 verifies weak termination: every correct node either chose a
// decision value or discovered a failure.
func CheckF1(outcomes []model.Outcome, faulty model.NodeSet) error {
	for _, o := range outcomes {
		if faulty.Contains(o.Node) {
			continue
		}
		if !o.Decided && o.Discovery == nil {
			return &PropertyViolation{
				Property: "F1",
				Detail:   fmt.Sprintf("%v neither decided nor discovered", o.Node),
			}
		}
	}
	return nil
}

// CheckF2 verifies weak agreement: if no correct node discovered a
// failure, no two correct nodes chose different decision values.
func CheckF2(outcomes []model.Outcome, faulty model.NodeSet) error {
	if anyCorrectDiscovered(outcomes, faulty) {
		return nil // condition vacuous: a failure was discovered
	}
	var first *model.Outcome
	for i := range outcomes {
		o := outcomes[i]
		if faulty.Contains(o.Node) || !o.Decided {
			continue
		}
		if first == nil {
			first = &outcomes[i]
			continue
		}
		if !bytes.Equal(o.Value, first.Value) {
			return &PropertyViolation{
				Property: "F2",
				Detail: fmt.Sprintf("%v chose %q but %v chose %q with no discovery",
					first.Node, first.Value, o.Node, o.Value),
			}
		}
	}
	return nil
}

// CheckF3 verifies weak validity: if no correct node discovered a failure
// and the sender is correct, no correct node chose a value different from
// the sender's initial value.
func CheckF3(outcomes []model.Outcome, faulty model.NodeSet, sender model.NodeID, initial []byte) error {
	if faulty.Contains(sender) || anyCorrectDiscovered(outcomes, faulty) {
		return nil // condition vacuous
	}
	for _, o := range outcomes {
		if faulty.Contains(o.Node) || !o.Decided {
			continue
		}
		if !bytes.Equal(o.Value, initial) {
			return &PropertyViolation{
				Property: "F3",
				Detail: fmt.Sprintf("%v chose %q, sender's initial value was %q",
					o.Node, o.Value, initial),
			}
		}
	}
	return nil
}

// CheckAll runs F1, F2 and F3 and returns the first violation.
func CheckAll(outcomes []model.Outcome, faulty model.NodeSet, sender model.NodeID, initial []byte) error {
	if err := CheckF1(outcomes, faulty); err != nil {
		return err
	}
	if err := CheckF2(outcomes, faulty); err != nil {
		return err
	}
	return CheckF3(outcomes, faulty, sender, initial)
}

func anyCorrectDiscovered(outcomes []model.Outcome, faulty model.NodeSet) bool {
	for _, o := range outcomes {
		if !faulty.Contains(o.Node) && o.Discovery != nil {
			return true
		}
	}
	return false
}
