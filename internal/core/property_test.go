package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
)

// Randomized property tests: the paper's F1–F3 are invariants over ALL
// Byzantine behaviours, so we sample the behaviour space — random fault
// placement, random behaviour per faulty node, including fully random
// "chaos" processes that spray arbitrary bytes — and assert the
// properties on every run. Failures print the scenario seed for exact
// reproduction.

// chaosProcess sends random bytes with random kinds to random nodes at
// random rounds: the bluntest Byzantine node. It doubles as a fuzzer for
// every decoder on the receive path (none may panic).
func chaosProcess(rng *rand.Rand, cfg model.Config) sim.Process {
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		var out []model.Message
		for i := 0; i < rng.Intn(4); i++ {
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			out = append(out, model.Message{
				To:      model.NodeID(rng.Intn(cfg.N)),
				Kind:    model.MessageKind(rng.Intn(14)),
				Payload: payload,
			})
		}
		return out
	})
}

// randomBehaviour picks one faulty behaviour for node id.
func randomBehaviour(rng *rand.Rand, c *core.Cluster, id model.NodeID, correct func() sim.Process) sim.Process {
	cfg := c.Config()
	switch rng.Intn(7) {
	case 0:
		return sim.Silent{}
	case 1:
		return chaosProcess(rng, cfg)
	case 2:
		return adversary.Wrap(correct(), adversary.DropAll(1+rng.Intn(4)))
	case 3:
		victims := model.NewNodeSet()
		for v := 0; v < cfg.N; v++ {
			if rng.Intn(2) == 0 {
				victims.Add(model.NodeID(v))
			}
		}
		return adversary.Wrap(correct(), adversary.DropTo(victims))
	case 4:
		return adversary.Wrap(correct(),
			adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(rng.Intn(32))))
	case 5:
		signer, err := c.Signer(id)
		if err != nil {
			return sim.Silent{}
		}
		return adversary.NewResignRelay(cfg, id, signer, []byte("forged"))
	default:
		return adversary.Wrap(correct(), adversary.DuplicateTo(model.NodeID(rng.Intn(cfg.N))))
	}
}

func TestPropertyF1F2F3RandomizedChain(t *testing.T) {
	const scenarios = 150
	for s := 0; s < scenarios; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(s)))
			n := 4 + rng.Intn(6)         // 4..9
			tol := 1 + rng.Intn((n+1)/2) // 1..⌈n/2⌉
			if tol >= n {
				tol = n - 1
			}
			c, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(int64(s)))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if _, err := c.EstablishAuthentication(); err != nil {
				t.Fatalf("EstablishAuthentication: %v", err)
			}

			// Random fault placement: up to tol faulty nodes.
			faulty := model.NewNodeSet()
			for len(faulty) < rng.Intn(tol+1) {
				faulty.Add(model.NodeID(rng.Intn(n)))
			}
			value := []byte(fmt.Sprintf("value-%d", s))
			var opts []core.RunOption
			for _, id := range faulty.Sorted() {
				id := id
				correct := func() sim.Process {
					signer, err := c.Signer(id)
					if err != nil {
						t.Fatalf("Signer: %v", err)
					}
					dir, err := c.Directory(id)
					if err != nil {
						t.Fatalf("Directory: %v", err)
					}
					var nodeOpts []fd.ChainOption
					if id == fd.Sender {
						nodeOpts = append(nodeOpts, fd.WithValue(value))
					}
					node, err := fd.NewChainNode(c.Config(), id, signer, dir, nodeOpts...)
					if err != nil {
						t.Fatalf("NewChainNode: %v", err)
					}
					return node
				}
				opts = append(opts, core.WithProcess(id, randomBehaviour(rng, c, id, correct)))
			}

			rep, err := c.RunFailureDiscovery(value, opts...)
			if err != nil {
				t.Fatalf("RunFailureDiscovery: %v", err)
			}
			if err := core.CheckF1(rep.Outcomes, faulty); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
			if err := core.CheckF2(rep.Outcomes, faulty); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
			if err := core.CheckF3(rep.Outcomes, faulty, fd.Sender, value); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
		})
	}
}

func TestPropertyF1F2F3RandomizedNonAuth(t *testing.T) {
	const scenarios = 150
	for s := 0; s < scenarios; s++ {
		s := s
		t.Run(fmt.Sprintf("seed=%d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			n := 4 + rng.Intn(6)
			tol := 1 + rng.Intn(n/2)
			c, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(int64(s)))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			faulty := model.NewNodeSet()
			for len(faulty) < rng.Intn(tol+1) {
				faulty.Add(model.NodeID(rng.Intn(n)))
			}
			value := []byte(fmt.Sprintf("value-%d", s))
			var opts []core.RunOption
			for _, id := range faulty.Sorted() {
				var p sim.Process
				switch rng.Intn(4) {
				case 0:
					p = sim.Silent{}
				case 1:
					p = chaosProcess(rng, c.Config())
				case 2:
					p = adversary.NewLyingEchoer(c.Config(), id, []byte("lie"), randomSubset(rng, n))
				default:
					p = adversary.NewEquivocatingPlainSender(c.Config(), []byte("a"), []byte("b"),
						model.NodeID(rng.Intn(n)))
				}
				opts = append(opts, core.WithProcess(id, p))
			}
			opts = append(opts, core.WithProtocol(core.ProtocolNonAuth))
			rep, err := c.RunFailureDiscovery(value, opts...)
			if err != nil {
				t.Fatalf("RunFailureDiscovery: %v", err)
			}
			if err := core.CheckF1(rep.Outcomes, faulty); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
			if err := core.CheckF2(rep.Outcomes, faulty); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
			if err := core.CheckF3(rep.Outcomes, faulty, fd.Sender, value); err != nil {
				t.Errorf("faulty=%v: %v", faulty, err)
			}
		})
	}
}

func randomSubset(rng *rand.Rand, n int) model.NodeSet {
	s := model.NewNodeSet()
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(model.NodeID(i))
		}
	}
	return s
}

// TestPropertyKeyDistChaos fuzzes the key-distribution path: chaos nodes
// spraying random bytes must never panic a correct node nor poison its
// directory with unverified predicates.
func TestPropertyKeyDistChaos(t *testing.T) {
	const scenarios = 100
	for s := 0; s < scenarios; s++ {
		rng := rand.New(rand.NewSource(int64(2000 + s)))
		n := 3 + rng.Intn(5)
		cfg := model.Config{N: n, T: n - 1}
		c, err := core.New(cfg, core.WithSeed(int64(s)))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		faulty := model.NewNodeSet()
		for len(faulty) < 1+rng.Intn(n-1) {
			faulty.Add(model.NodeID(rng.Intn(n)))
		}
		var opts []core.KeyDistOption
		for _, id := range faulty.Sorted() {
			opts = append(opts, core.WithKeyDistProcess(id, chaosProcess(rng, cfg)))
		}
		rep, err := c.EstablishAuthentication(opts...)
		if err != nil {
			t.Fatalf("EstablishAuthentication: %v", err)
		}
		_ = rep
		// Correct nodes must have accepted each other (G2) regardless of
		// the chaos — unless n-|faulty| < 2, where there is nothing to check.
		for i := 0; i < n; i++ {
			if faulty.Contains(model.NodeID(i)) {
				continue
			}
			dir, err := c.Directory(model.NodeID(i))
			if err != nil {
				t.Fatalf("Directory: %v", err)
			}
			for j := 0; j < n; j++ {
				if faulty.Contains(model.NodeID(j)) {
					continue
				}
				if _, ok := dir.PredicateOf(model.NodeID(j)); !ok {
					t.Errorf("seed %d: %v lost %v's key to chaos", s, model.NodeID(i), model.NodeID(j))
				}
			}
		}
	}
}
