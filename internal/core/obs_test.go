package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestClusterObserverSpans checks the cluster's instrumentation end to
// end: phase spans for both lifecycle steps, per-round engine spans
// underneath them, and composition with a message tracer — all without
// changing what the reports say.
func TestClusterObserverSpans(t *testing.T) {
	cfg := model.Config{N: 4, T: 1}

	bare, err := New(cfg, WithSeed(7))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := bare.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	bareRep, err := bare.RunFailureDiscovery([]byte("v"))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}

	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(sink)
	var traceBuf bytes.Buffer
	tracer := sim.NewWriterTracer(&traceBuf)
	c, err := New(cfg, WithSeed(7), WithObserver(rec), WithTracer(tracer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	rep, err := c.RunFailureDiscovery([]byte("v"))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	// Observation is a pure reader: the observed run reports exactly what
	// the bare run did.
	if rep.Rounds != bareRep.Rounds || rep.Snapshot.Messages != bareRep.Snapshot.Messages ||
		rep.Snapshot.Bytes != bareRep.Snapshot.Bytes {
		t.Errorf("observed report %v differs from bare report %v", rep, bareRep)
	}

	for _, scope := range []string{"core.keydist", "core.fdrun"} {
		evs := sink.Scoped(scope)
		if len(evs) != 2 {
			t.Fatalf("scope %s has %d events, want begin+end", scope, len(evs))
		}
		end := evs[1]
		if end.Kind != obs.KindEnd || end.Dur <= 0 {
			t.Errorf("scope %s end event malformed: %+v", scope, end)
		}
		if !strings.Contains(end.Attrs, "msgs=") {
			t.Errorf("scope %s end attrs %q missing traffic", scope, end.Attrs)
		}
	}
	if got := sink.Scoped("core.fdrun")[0].Proto; got != "chain" {
		t.Errorf("fdrun span proto = %q, want chain", got)
	}

	// Engine rounds surfaced through the same recorder: one begin/end
	// pair per executed round across both phases.
	rounds := sink.Scoped("sim.round")
	if len(rounds) == 0 || len(rounds)%2 != 0 {
		t.Fatalf("sim.round events = %d, want a positive even count", len(rounds))
	}

	// The message tracer composed alongside: every delivered message got
	// a line.
	if !strings.Contains(traceBuf.String(), "P0 -> P1") {
		t.Errorf("message tracer saw no deliveries:\n%.200s", traceBuf.String())
	}
}
