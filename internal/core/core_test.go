package core_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

func newCluster(t *testing.T, n, tol int, seed int64) *core.Cluster {
	t.Helper()
	c, err := core.New(model.Config{N: n, T: tol}, core.WithSeed(seed))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return c
}

func TestClusterLifecycle(t *testing.T) {
	c := newCluster(t, 8, 2, 1)
	if c.Established() {
		t.Fatal("cluster claims establishment before key distribution")
	}
	rep, err := c.EstablishAuthentication()
	if err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	if got, want := rep.Snapshot.Messages, keydist.ExpectedMessages(8); got != want {
		t.Errorf("keydist messages = %d, want %d", got, want)
	}
	if len(rep.Discoveries) != 0 {
		t.Errorf("failure-free keydist produced discoveries: %v", rep.Discoveries)
	}
	if !c.Established() {
		t.Fatal("cluster not established after key distribution")
	}

	value := []byte("ledger entry 1")
	fdRep, err := c.RunFailureDiscovery(value)
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if got, want := fdRep.Snapshot.Messages, 7; got != want {
		t.Errorf("fd messages = %d, want %d", got, want)
	}
	agreed, ok := fdRep.AgreedValue()
	if !ok || !bytes.Equal(agreed, value) {
		t.Errorf("AgreedValue = %q/%v, want %q", agreed, ok, value)
	}
	if fdRep.FailureDiscovered() {
		t.Error("failure discovered in failure-free run")
	}
}

func TestClusterRequiresEstablishmentForAuthProtocols(t *testing.T) {
	c := newCluster(t, 4, 1, 2)
	if _, err := c.RunFailureDiscovery([]byte("v")); err == nil {
		t.Error("chain run allowed before establishment")
	}
	// The non-authenticated baseline needs no keys.
	if _, err := c.RunFailureDiscovery([]byte("v"), core.WithProtocol(core.ProtocolNonAuth)); err != nil {
		t.Errorf("non-auth run refused: %v", err)
	}
}

func TestClusterLedgerAccumulates(t *testing.T) {
	c := newCluster(t, 8, 2, 3)
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	const k = 5
	for i := 0; i < k; i++ {
		if _, err := c.RunFailureDiscovery([]byte{byte(i)}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	l := c.Ledger()
	if got := l.FDRuns(); got != k {
		t.Errorf("FDRuns = %d, want %d", got, k)
	}
	wantTotal := keydist.ExpectedMessages(8) + k*7
	if got := l.TotalMessages(); got != wantTotal {
		t.Errorf("TotalMessages = %d, want %d", got, wantTotal)
	}
	if got := l.KeyDistMessages(); got != keydist.ExpectedMessages(8) {
		t.Errorf("KeyDistMessages = %d", got)
	}
	if got := len(l.Reports()); got != k+1 {
		t.Errorf("Reports = %d, want %d", got, k+1)
	}
}

func TestClusterNonAuthMatchesFormula(t *testing.T) {
	c := newCluster(t, 16, 5, 4)
	rep, err := c.RunFailureDiscovery([]byte("v"), core.WithProtocol(core.ProtocolNonAuth))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if got, want := rep.Snapshot.Messages, fd.NonAuthMessages(16, 5); got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	if _, ok := rep.AgreedValue(); !ok {
		t.Error("no agreement in failure-free baseline run")
	}
}

func TestClusterSmallRange(t *testing.T) {
	c := newCluster(t, 8, 2, 5)
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	rep, err := c.RunFailureDiscovery([]byte{0}, core.WithProtocol(core.ProtocolSmallRange))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if rep.Snapshot.Messages != 0 {
		t.Errorf("default-bit run cost %d messages, want 0", rep.Snapshot.Messages)
	}
	rep, err = c.RunFailureDiscovery([]byte{1}, core.WithProtocol(core.ProtocolSmallRange))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if rep.Snapshot.Messages != 7 {
		t.Errorf("non-default run cost %d messages, want 7", rep.Snapshot.Messages)
	}
	if _, err := c.RunFailureDiscovery([]byte("too long"), core.WithProtocol(core.ProtocolSmallRange)); err == nil {
		t.Error("multi-byte small-range value accepted")
	}
}

func TestClusterFaultInjection(t *testing.T) {
	c := newCluster(t, 6, 2, 6)
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	rep, err := c.RunFailureDiscovery([]byte("v"), core.WithProcess(1, sim.Silent{}))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if !rep.FailureDiscovered() {
		t.Error("silent relay not discovered through the cluster API")
	}
	faulty := model.NewNodeSet(1)
	if err := core.CheckF1(rep.Outcomes, faulty); err != nil {
		t.Errorf("F1: %v", err)
	}
	if err := core.CheckF2(rep.Outcomes, faulty); err != nil {
		t.Errorf("F2: %v", err)
	}
	if err := core.CheckF3(rep.Outcomes, faulty, fd.Sender, []byte("v")); err != nil {
		t.Errorf("F3: %v", err)
	}
}

func TestClusterKeyDistFaultInjection(t *testing.T) {
	c := newCluster(t, 5, 1, 7)
	rep, err := c.EstablishAuthentication(core.WithKeyDistProcess(4, sim.Silent{}))
	if err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	_ = rep
	dir, err := c.Directory(0)
	if err != nil {
		t.Fatalf("Directory: %v", err)
	}
	if _, ok := dir.PredicateOf(4); ok {
		t.Error("silent node has an accepted predicate")
	}
	// FD must still work if the silent node is overridden in the run too
	// (it has no keys, so it cannot be a correct chain node).
	rep2, err := c.RunFailureDiscovery([]byte("v"), core.WithProcess(4, sim.Silent{}))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	// Node 4 is a tail node; the rest decide, node 4 (faulty) is absent.
	agreed := 0
	for _, o := range rep2.Outcomes {
		if o.Decided && bytes.Equal(o.Value, []byte("v")) {
			agreed++
		}
	}
	if agreed != 4 {
		t.Errorf("%d correct nodes decided, want 4", agreed)
	}
}

func TestAmortizationFormula(t *testing.T) {
	a := core.AmortizationFor(16, 5, 10)
	if a.LocalAuthTotal != keydist.ExpectedMessages(16)+10*15 {
		t.Errorf("LocalAuthTotal = %d", a.LocalAuthTotal)
	}
	if a.NonAuthTotal != 10*6*15 {
		t.Errorf("NonAuthTotal = %d", a.NonAuthTotal)
	}
	// Crossover: 3·16·15 = 720 over a per-run saving of 5·15 = 75 → 10.
	if a.CrossoverRun != 10 {
		t.Errorf("CrossoverRun = %d, want 10", a.CrossoverRun)
	}
	// At the crossover the totals actually cross.
	at := core.AmortizationFor(16, 5, a.CrossoverRun)
	if at.LocalAuthTotal > at.NonAuthTotal {
		t.Errorf("no crossover at k=%d: %d > %d", a.CrossoverRun, at.LocalAuthTotal, at.NonAuthTotal)
	}
	before := core.AmortizationFor(16, 5, a.CrossoverRun-1)
	if before.LocalAuthTotal <= before.NonAuthTotal {
		t.Errorf("crossover too late: already cheaper at k=%d", a.CrossoverRun-1)
	}
}

func TestAmortizationMeasuredMatchesFormula(t *testing.T) {
	// The analytic crossover must match MEASURED traffic: run k real FD
	// runs on a real cluster and compare ledgers.
	n, tol, k := 8, 2, 13
	cLocal := newCluster(t, n, tol, 8)
	if _, err := cLocal.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	cBase := newCluster(t, n, tol, 9)
	for i := 0; i < k; i++ {
		if _, err := cLocal.RunFailureDiscovery([]byte("v")); err != nil {
			t.Fatalf("local run: %v", err)
		}
		if _, err := cBase.RunFailureDiscovery([]byte("v"), core.WithProtocol(core.ProtocolNonAuth)); err != nil {
			t.Fatalf("baseline run: %v", err)
		}
	}
	a := core.AmortizationFor(n, tol, k)
	if got := cLocal.Ledger().TotalMessages(); got != a.LocalAuthTotal {
		t.Errorf("measured local total = %d, formula %d", got, a.LocalAuthTotal)
	}
	if got := cBase.Ledger().TotalMessages(); got != a.NonAuthTotal {
		t.Errorf("measured baseline total = %d, formula %d", got, a.NonAuthTotal)
	}
	if cLocal.Ledger().TotalMessages() >= cBase.Ledger().TotalMessages() {
		t.Error("local authentication did not win at k=13 for n=8,t=2")
	}
}

func TestClusterWithAdversaryMixedPredicates(t *testing.T) {
	// End-to-end through the public API: mixed-predicate keydist attacker
	// at node 0, then a chain run — tail nodes discover (Theorem 4).
	n, tol := 4, 1
	cfg := model.Config{N: n, T: tol}
	c := newCluster(t, n, tol, 10)
	scheme := c.Scheme()
	mixed, err := adversary.NewMixedPredicateNode(cfg, 0, scheme, sim.SeededReader(123), model.NewNodeSet(1))
	if err != nil {
		t.Fatalf("NewMixedPredicateNode: %v", err)
	}
	if _, err := c.EstablishAuthentication(core.WithKeyDistProcess(0, mixed)); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	sender := sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		chain, err := newChainFor(mixed, 1, []byte("v"))
		if err != nil {
			t.Errorf("chain: %v", err)
			return nil
		}
		return []model.Message{{To: 1, Kind: model.KindChainValue, Payload: chain}}
	})
	rep, err := c.RunFailureDiscovery(nil, core.WithProcess(0, sender))
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	if !rep.FailureDiscovered() {
		t.Error("mixed-predicate use not discovered via cluster API")
	}
}

func newChainFor(mixed *adversary.MixedPredicateNode, to model.NodeID, v []byte) ([]byte, error) {
	c, err := sig.NewChain(v, mixed.SignerFor(to))
	if err != nil {
		return nil, err
	}
	return c.Marshal(), nil
}
