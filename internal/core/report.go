package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
)

// Phase identifies which protocol phase a report describes.
type Phase uint8

// Phases.
const (
	// PhaseKeyDist is the local-authentication establishment (Fig. 1).
	PhaseKeyDist Phase = iota + 1
	// PhaseFD is one failure-discovery run.
	PhaseFD
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseKeyDist:
		return "keydist"
	case PhaseFD:
		return "fd"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Report summarizes one protocol phase execution.
type Report struct {
	// Phase identifies the protocol phase.
	Phase Phase
	// Protocol is the FD protocol used (PhaseFD only).
	Protocol Protocol
	// Rounds is the number of lockstep rounds executed.
	Rounds int
	// Snapshot holds the traffic statistics.
	Snapshot metrics.Snapshot
	// Outcomes holds the terminal state of every correct node (PhaseFD).
	Outcomes []model.Outcome
	// Discoveries lists every failure discovered by a correct node.
	Discoveries []model.Discovery
}

// Decided returns the outcomes that chose a value.
func (r Report) Decided() []model.Outcome {
	var out []model.Outcome
	for _, o := range r.Outcomes {
		if o.Decided {
			out = append(out, o)
		}
	}
	return out
}

// FailureDiscovered reports whether any correct node discovered a failure.
func (r Report) FailureDiscovered() bool { return len(r.Discoveries) > 0 }

// AgreedValue returns the common decision value if every correct node
// decided and all values agree. ok is false otherwise.
func (r Report) AgreedValue() (value []byte, ok bool) {
	if len(r.Outcomes) == 0 {
		return nil, false
	}
	for i, o := range r.Outcomes {
		if !o.Decided {
			return nil, false
		}
		if i > 0 && string(o.Value) != string(r.Outcomes[0].Value) {
			return nil, false
		}
	}
	return r.Outcomes[0].Value, true
}

// String summarizes the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%v", r.Phase)
	if r.Phase == PhaseFD {
		fmt.Fprintf(&b, "/%v", r.Protocol)
	}
	fmt.Fprintf(&b, "] %s", r.Snapshot)
	if len(r.Discoveries) > 0 {
		fmt.Fprintf(&b, " discoveries=%d", len(r.Discoveries))
	}
	return b.String()
}

// Ledger accumulates per-phase traffic across a cluster's lifetime and
// answers the paper's amortization question: after how many
// failure-discovery runs has the one-off key-distribution cost paid for
// itself against the non-authenticated baseline?
type Ledger struct {
	mu      sync.Mutex
	reports []Report
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Reset clears the ledger in place, so handles previously returned by
// Cluster.Ledger stay valid across Cluster.Reset/Rekey.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = nil
}

// Add appends a phase report.
func (l *Ledger) Add(r Report) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = append(l.reports, r)
}

// Reports returns a copy of all phase reports in order.
func (l *Ledger) Reports() []Report {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Report, len(l.reports))
	copy(out, l.reports)
	return out
}

// TotalMessages returns the messages recorded across all phases.
func (l *Ledger) TotalMessages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, r := range l.reports {
		total += r.Snapshot.Messages
	}
	return total
}

// KeyDistMessages returns the messages spent on authentication phases.
func (l *Ledger) KeyDistMessages() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0
	for _, r := range l.reports {
		if r.Phase == PhaseKeyDist {
			total += r.Snapshot.Messages
		}
	}
	return total
}

// FDRuns returns the number of failure-discovery runs recorded.
func (l *Ledger) FDRuns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	runs := 0
	for _, r := range l.reports {
		if r.Phase == PhaseFD {
			runs++
		}
	}
	return runs
}

// Amortization is the measured cost comparison after k runs.
type Amortization struct {
	// N, T are the system parameters.
	N, T int
	// Runs is the number of FD runs compared.
	Runs int
	// LocalAuthTotal is keydist cost plus Runs× authenticated-run cost.
	LocalAuthTotal int
	// NonAuthTotal is Runs× baseline-run cost.
	NonAuthTotal int
	// CrossoverRun is the smallest k at which LocalAuthTotal ≤
	// NonAuthTotal, computed from the per-run costs; 0 if never.
	CrossoverRun int
}

// AmortizationFor computes the paper's headline comparison analytically
// from the protocol cost formulas for a system of n nodes and fault bound
// t, over k failure-discovery runs.
func AmortizationFor(n, t, k int) Amortization {
	a := Amortization{
		N:              n,
		T:              t,
		Runs:           k,
		LocalAuthTotal: keydist.ExpectedMessages(n) + k*fd.ChainMessages(n, t),
		NonAuthTotal:   k * fd.NonAuthMessages(n, t),
	}
	perRunSaving := fd.NonAuthMessages(n, t) - fd.ChainMessages(n, t)
	if perRunSaving > 0 {
		// Smallest k with keydist + k(n−1) ≤ k(t+1)(n−1).
		a.CrossoverRun = (keydist.ExpectedMessages(n) + perRunSaving - 1) / perRunSaving
	}
	return a
}
