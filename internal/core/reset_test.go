package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sig"
)

// runTraffic runs one authenticated chain round and returns the protocol
// report, normalized for comparison (snapshot + outcomes carry every
// wire-visible quantity).
func runTraffic(t *testing.T, c *core.Cluster, value []byte) core.Report {
	t.Helper()
	rep, err := c.RunFailureDiscovery(value)
	if err != nil {
		t.Fatalf("RunFailureDiscovery: %v", err)
	}
	return rep
}

// TestClusterResetReusesSetup is the core amortization contract: a
// cluster with key material pinned by WithKeySeed, established once and
// Reset onto a new seed, must produce failure-discovery runs identical
// to a fresh cluster built at that seed with the same key seed — without
// re-running key generation or the handshake.
func TestClusterResetReusesSetup(t *testing.T) {
	for _, scheme := range []string{sig.SchemeToy, sig.SchemeEd25519} {
		t.Run(scheme, func(t *testing.T) {
			cfg := model.Config{N: 6, T: 1}
			const keySeed = 77
			reused, err := core.New(cfg, core.WithSeed(1), core.WithKeySeed(keySeed), core.WithScheme(scheme))
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			if _, err := reused.EstablishAuthentication(); err != nil {
				t.Fatalf("EstablishAuthentication: %v", err)
			}
			runTraffic(t, reused, []byte("warm-up"))

			reused.Reset(2)
			if !reused.Established() {
				t.Fatal("Reset dropped establishment; it must only clear the ledger and reseed run entropy")
			}
			if got := reused.Ledger().FDRuns(); got != 0 {
				t.Fatalf("Reset left %d FD runs in the ledger", got)
			}
			gotRep := runTraffic(t, reused, []byte("measured"))

			fresh, err := core.New(cfg, core.WithSeed(2), core.WithKeySeed(keySeed), core.WithScheme(scheme))
			if err != nil {
				t.Fatalf("core.New: %v", err)
			}
			if _, err := fresh.EstablishAuthentication(); err != nil {
				t.Fatalf("EstablishAuthentication: %v", err)
			}
			wantRep := runTraffic(t, fresh, []byte("measured"))

			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Errorf("reset-reused run differs from fresh run:\n got %+v\nwant %+v", gotRep, wantRep)
			}
			// Key material really is shared: directories agree node by node.
			for i := 0; i < cfg.N; i++ {
				dr, _ := reused.Directory(0)
				df, _ := fresh.Directory(0)
				if !dr.AgreesWith(df, model.NodeID(i)) {
					t.Fatalf("node %d predicate differs between reused and fresh cluster", i)
				}
			}
		})
	}
}

// TestLedgerHandleSurvivesReset pins the in-place ledger clear: a
// Ledger handle taken before Reset must observe the runs after it — the
// package doc's "amortization is directly observable via Cluster.Ledger"
// pattern.
func TestLedgerHandleSurvivesReset(t *testing.T) {
	c, err := core.New(model.Config{N: 4, T: 1}, core.WithSeed(1), core.WithKeySeed(1))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	led := c.Ledger()
	c.Reset(2)
	if led.FDRuns() != 0 || led.KeyDistMessages() != 0 {
		t.Fatal("Reset did not clear the ledger in place")
	}
	runTraffic(t, c, []byte("after reset"))
	if led.FDRuns() != 1 {
		t.Errorf("pre-Reset ledger handle saw %d FD runs, want 1", led.FDRuns())
	}
}

// TestRekeyOnProductionCluster pins that Rekey pins the key seed on ANY
// cluster (matching WithKeySeed), not just WithSeed ones, and starts a
// clean ledger for the new key epoch.
func TestRekeyOnProductionCluster(t *testing.T) {
	fingerprintAfterRekey := func() string {
		c, err := core.New(model.Config{N: 3, T: 1}) // crypto/rand cluster
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			t.Fatalf("EstablishAuthentication: %v", err)
		}
		led := c.Ledger()
		c.Rekey(42)
		if led.KeyDistMessages() != 0 {
			t.Fatal("Rekey did not clear the old epoch's ledger")
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			t.Fatalf("re-establish: %v", err)
		}
		d, _ := c.Directory(0)
		p, _ := d.PredicateOf(1)
		return p.Fingerprint()
	}
	if fingerprintAfterRekey() != fingerprintAfterRekey() {
		t.Error("Rekey(42) on a production cluster did not pin key material to the key seed")
	}
}

// TestClusterRekeyRegeneratesKeys checks the explicit re-keying path:
// after Rekey the cluster demands re-establishment and the new key
// material differs from the old.
func TestClusterRekeyRegeneratesKeys(t *testing.T) {
	c, err := core.New(model.Config{N: 4, T: 1}, core.WithSeed(5), core.WithKeySeed(100))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	d, _ := c.Directory(0)
	before, _ := d.PredicateOf(1)

	c.Rekey(101)
	if c.Established() {
		t.Fatal("Rekey left the cluster established")
	}
	if _, err := c.RunFailureDiscovery([]byte("v")); err == nil {
		t.Fatal("authenticated run succeeded after Rekey without re-establishment")
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("re-establish after Rekey: %v", err)
	}
	d2, _ := c.Directory(0)
	after, _ := d2.PredicateOf(1)
	if before.Fingerprint() == after.Fingerprint() {
		t.Error("Rekey(101) regenerated identical key material")
	}

	// Rekey back to the original key seed: keys must round-trip.
	c.Rekey(100)
	if _, err := c.EstablishAuthentication(); err != nil {
		t.Fatalf("re-establish: %v", err)
	}
	d3, _ := c.Directory(0)
	again, _ := d3.PredicateOf(1)
	if before.Fingerprint() != again.Fingerprint() {
		t.Error("key material is not a pure function of the key seed")
	}
}

// TestWithKeySeedIndependentOfRunSeed pins the entropy-domain split: two
// clusters differing only in run seed share keys when the key seed
// matches, and differ when it does not.
func TestWithKeySeedIndependentOfRunSeed(t *testing.T) {
	pred := func(runSeed, keySeed int64) string {
		c, err := core.New(model.Config{N: 3, T: 1}, core.WithSeed(runSeed), core.WithKeySeed(keySeed))
		if err != nil {
			t.Fatalf("core.New: %v", err)
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			t.Fatalf("EstablishAuthentication: %v", err)
		}
		d, err := c.Directory(0)
		if err != nil {
			t.Fatalf("Directory: %v", err)
		}
		p, ok := d.PredicateOf(1)
		if !ok {
			t.Fatal("node 1 predicate missing")
		}
		return p.Fingerprint()
	}
	if pred(1, 42) != pred(2, 42) {
		t.Error("run seed leaked into key material")
	}
	if pred(1, 42) == pred(1, 43) {
		t.Error("key seed does not drive key material")
	}

	// Option order must not matter: WithKeySeed pins the key domain even
	// when WithSeed comes after it.
	reversed, err := core.New(model.Config{N: 3, T: 1}, core.WithKeySeed(42), core.WithSeed(1))
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	if _, err := reversed.EstablishAuthentication(); err != nil {
		t.Fatalf("EstablishAuthentication: %v", err)
	}
	d, _ := reversed.Directory(0)
	p, _ := d.PredicateOf(1)
	if p.Fingerprint() != pred(1, 42) {
		t.Error("WithSeed after WithKeySeed overrode the pinned key domain")
	}
}
