// Package ba implements the Byzantine Agreement substrate the paper builds
// on and compares against:
//
//   - OM(t), the non-authenticated oral-messages algorithm of Lamport,
//     Shostak & Pease [4], via exponential information gathering (EIG).
//     Requires n > 3t and uses exponentially many relayed entries.
//   - SM(t), the signed-messages algorithm of the same paper: tolerates any
//     t < n under authentication, with O(n²) messages.
//   - FDBA, the Failure-Discovery-to-Byzantine-Agreement extension the
//     paper attributes to Hadzilacos & Halpern: run the linear
//     failure-discovery protocol; only when someone discovers a failure,
//     fall back to a signed-message flood. Failure-free runs cost the same
//     n−1 messages as failure discovery.
//
// Byzantine Agreement requires, with up to t faulty nodes:
//
//	BA1 (agreement):  all correct nodes decide the same value;
//	BA2 (validity):   if the sender is correct, they decide its value.
//
// Under global authentication all three meet their guarantees. Under the
// paper's *local* authentication, failure discovery remains correct
// (paper §4), but full agreement does not in general — the paper's §6
// leaves BA under local authentication as an open question, and experiment
// E11 exhibits the concrete G3 attack that separates the two settings.
package ba

import (
	"bytes"
	"fmt"

	"repro/internal/model"
)

// Sender is the distinguished sender's node ID, fixed to P_0 as in the
// paper's protocols.
const Sender model.NodeID = 0

// DefaultValue is the fallback decision value when agreement evidence is
// absent or contradictory, playing the role of Lamport's RETREAT default.
var DefaultValue = []byte("\x00default")

// Decision is a node's terminal state in a Byzantine Agreement run.
type Decision struct {
	// Node is the deciding node.
	Node model.NodeID
	// Value is the decided value (possibly DefaultValue).
	Value []byte
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if bytes.Equal(d.Value, DefaultValue) {
		return fmt.Sprintf("%v decided DEFAULT", d.Node)
	}
	return fmt.Sprintf("%v decided %q", d.Node, d.Value)
}

// Decider is implemented by every agreement node in this package.
type Decider interface {
	// Decision returns the node's decision after the run completes.
	Decision() Decision
}
