package ba

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sig"
)

// SM(t) — the signed-messages algorithm of Lamport, Shostak & Pease —
// tolerates any number t < n of faults given authentication, at O(n²)
// messages even in failure-free runs. The paper's pitch is precisely that
// Failure Discovery needs only O(n) messages per run once (local)
// authentication exists; experiment E8 measures the gap, and experiment
// E11 runs SM(t) under *local* authentication to exhibit the G3 attack
// that the paper's §6 leaves open.
//
// Algorithm (correct node):
//
//	round 1: the sender signs its value and broadcasts {v}_{S_0};
//	round r: on receiving a value v with a valid chain of r−1 distinct
//	         signatures starting with the sender, and v not yet in V:
//	         add v to V and, if r−1 ≤ t, relay the chain extended with our
//	         own signature to every node not already among the signers;
//	after round t+1: decide the unique element of V, or the default when
//	         V is empty or has several elements.
//
// The signature chains reuse package sig's chain messages, so assignee
// names ride along exactly as in the failure-discovery protocol.
type SMNode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	dir    sig.Directory

	// value is the sender's initial value (sender only).
	value []byte
	// values is the extracted set V, keyed by value bytes.
	values map[string]bool

	decision Decision
	finished bool
}

// SMOption configures an SMNode.
type SMOption func(*SMNode)

// WithSMValue sets the sender's initial value.
func WithSMValue(v []byte) SMOption {
	return func(n *SMNode) { n.value = append([]byte(nil), v...) }
}

// NewSMNode builds a correct SM(t) participant. The directory determines
// the authentication regime: a shared MapDirectory models global
// authentication, per-node keydist directories model local authentication.
func NewSMNode(cfg model.Config, id model.NodeID, signer sig.Signer, dir sig.Directory, opts ...SMOption) (*SMNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("ba: node id %v out of range for n=%d", id, cfg.N)
	}
	if signer == nil || dir == nil {
		return nil, fmt.Errorf("ba: SM node needs a signer and a directory")
	}
	n := &SMNode{
		id:     id,
		cfg:    cfg,
		signer: signer,
		dir:    dir,
		values: make(map[string]bool),
	}
	n.decision.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, fmt.Errorf("ba: sender needs WithSMValue")
	}
	return n, nil
}

// Decision implements Decider.
func (n *SMNode) Decision() Decision { return n.decision }

// Outcome implements fd.Outcomer, letting SM(t) runs flow through
// core.Cluster and the protocol driver registry. SM has no discovery
// concept: the outcome is the decision alone.
func (n *SMNode) Outcome() model.Outcome {
	return model.Outcome{Node: n.id, Decided: n.finished, Value: n.decision.Value}
}

// Finished implements sim.Finisher.
func (n *SMNode) Finished() bool { return n.finished }

// SMEngineRounds returns the lockstep rounds an SM(t) run needs: t+1
// communication rounds plus the decision step.
func SMEngineRounds(t int) int { return t + 2 }

// SMMessagesFailureFree returns SM(t)'s failure-free message count: the
// sender's broadcast plus one relay per receiver when t ≥ 1.
func SMMessagesFailureFree(n, t int) int {
	if t == 0 {
		return n - 1
	}
	return (n - 1) + (n-1)*(n-2)
}

// Step implements the sim Process contract.
func (n *SMNode) Step(round int, received []model.Message) []model.Message {
	t := n.cfg.T
	var out []model.Message
	for _, m := range received {
		if m.Kind != model.KindSigned {
			continue // not a protocol message; SM ignores it
		}
		out = append(out, n.handle(round, m)...)
	}
	switch {
	case round == 1 && n.id == Sender:
		n.values[string(n.value)] = true
		chain, err := sig.NewChain(n.value, n.signer)
		if err != nil {
			panic(fmt.Sprintf("ba: %v signing value: %v", n.id, err))
		}
		out = model.AppendBroadcast(out, n.cfg.N, n.id, model.KindSigned, chain.Marshal())
	case round == SMEngineRounds(t):
		n.decide()
		n.finished = true
	}
	return out
}

// handle processes one signed message per the SM acceptance rule.
func (n *SMNode) handle(round int, m model.Message) []model.Message {
	t := n.cfg.T
	chain, err := sig.UnmarshalChain(m.Payload)
	if err != nil {
		return nil // malformed: SM silently ignores (no discovery here)
	}
	// A chain with k signatures was sent in round k, so it must arrive in
	// round k+1. Late chains are ignored; this is what defeats
	// last-moment value injection.
	k := chain.Len()
	if k != round-1 || k < 1 || k > t+1 {
		return nil
	}
	signers, err := chain.Verify(m.From, n.dir)
	if err != nil {
		return nil // unverifiable under OUR directory: ignore
	}
	// Signers must be distinct, start at the sender, and not include us
	// (we never relay to ourselves).
	if signers[0] != Sender {
		return nil
	}
	seen := make(map[model.NodeID]bool, len(signers))
	for _, s := range signers {
		if !s.Valid(n.cfg.N) || seen[s] || s == n.id {
			return nil
		}
		seen[s] = true
	}
	v := string(chain.Value())
	if n.values[v] {
		return nil // not a new value: no relay
	}
	n.values[v] = true
	if k > t {
		return nil // full chain; everyone correct already has it
	}
	ext, err := chain.Extend(m.From, n.signer)
	if err != nil {
		panic(fmt.Sprintf("ba: %v extending chain: %v", n.id, err))
	}
	payload := ext.Marshal()
	out := make([]model.Message, 0, n.cfg.N-1-len(seen))
	for q := 0; q < n.cfg.N; q++ {
		to := model.NodeID(q)
		if to == n.id || seen[to] {
			continue
		}
		out = append(out, model.Message{To: to, Kind: model.KindSigned, Payload: payload})
	}
	return out
}

// decide applies choice(V): the unique value, or the default.
func (n *SMNode) decide() {
	if len(n.values) == 1 {
		for v := range n.values {
			n.decision.Value = []byte(v)
			return
		}
	}
	n.decision.Value = DefaultValue
}

// ValueSet returns the node's extracted set V in sorted order, for
// experiment assertions.
func (n *SMNode) ValueSet() []string {
	out := make([]string, 0, len(n.values))
	for v := range n.values {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
