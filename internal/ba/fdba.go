package ba

import (
	"bytes"
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
)

// FDBA — the Failure-Discovery-to-Byzantine-Agreement extension.
//
// The paper (§4) highlights Hadzilacos & Halpern's result that a Failure
// Discovery protocol "can be extended under certain conditions to a
// protocol for Byzantine Agreement" whose failure-free runs cost the same
// number of messages as the underlying FD protocol. This file realizes
// the construction concretely:
//
//	phase 1 (rounds 1 … t+2):   the chain FD protocol of paper Fig. 2 —
//	                            n−1 messages when nothing goes wrong;
//	round t+3 (FAULT):          every node that discovered a failure
//	                            broadcasts a signed FAULT announcement;
//	round t+4 (ECHO):           every node that received a valid FAULT
//	                            rebroadcasts it, so "some correct node saw
//	                            a fault signal" becomes "every correct node
//	                            saw one" — within these two rounds;
//	rounds t+5 … 2t+5 (FLOOD):  fallback participants flood their FD
//	                            evidence chains SM(t)-style: each hop adds
//	                            a signature, a message with h hop
//	                            signatures is accepted only in hop-round h,
//	                            and new evidence is re-relayed. The classic
//	                            SM argument gives all correct fallback
//	                            participants the same evidence set;
//	round 2t+6 (decide):        fallback nodes decide by *strongest
//	                            evidence* — the valid chain with the
//	                            longest consecutive signer prefix
//	                            P_0 … P_{k-1}; a tie between different
//	                            values decides the default. Nodes never
//	                            drawn into the fallback keep their FD
//	                            decision.
//
// Why strongest-evidence aligns mixed decisions: signatures by correct
// nodes only ever exist on prefixes of the single value v the clean part
// of the run carried, so any conflicting evidence is signed exclusively by
// a consecutive run of faulty nodes starting at P_0 — strictly shorter
// than the evidence any correct fallback participant already holds.
// Soundness of the whole construction assumes global authentication (or
// the G1/G2 properties for all relevant signers); under mere local
// authentication the G3 gap lets colluders split the evidence-set
// agreement, which is exactly the open problem the paper's §6 states.
// Experiment E11 demonstrates both sides.
type FDBANode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	dir    sig.Directory

	// fdNode runs phase 1.
	fdNode *fd.ChainNode

	// inFallback marks that the node joined the fallback flood.
	inFallback bool
	// seenEvidence dedupes flooded evidence by marshaled bytes.
	seenEvidence map[string]bool
	// best tracks the strongest evidence: longest consecutive-prefix chain.
	bestStrength int
	bestValue    []byte
	// conflict marks two strongest chains with different values.
	conflict bool

	decision Decision
	finished bool
}

// FDBAEngineRounds returns the lockstep rounds a full FDBA run needs.
func FDBAEngineRounds(t int) int { return 2*t + 6 }

// faultTag domain-separates FAULT announcements from all other statements.
const faultTag = "fdba/fault/v1"

// NewFDBANode builds a correct FDBA participant. value is required for the
// sender (P_0) only.
func NewFDBANode(cfg model.Config, id model.NodeID, signer sig.Signer, dir sig.Directory, value []byte) (*FDBANode, error) {
	var opts []fd.ChainOption
	if id == Sender {
		opts = append(opts, fd.WithValue(value))
	}
	fdNode, err := fd.NewChainNode(cfg, id, signer, dir, opts...)
	if err != nil {
		return nil, err
	}
	n := &FDBANode{
		id:           id,
		cfg:          cfg,
		signer:       signer,
		dir:          dir,
		fdNode:       fdNode,
		seenEvidence: make(map[string]bool),
	}
	n.decision.Node = id
	return n, nil
}

// Decision implements Decider.
func (n *FDBANode) Decision() Decision { return n.decision }

// Outcome implements fd.Outcomer, letting FDBA runs flow through
// core.Cluster and the protocol driver registry. The decision maps onto
// Decided/Value; a phase-1 failure discovery rides along so ledger and
// campaign reports can count how often the fallback was triggered. Note
// that unlike a pure FD outcome, a discovery here coexists with a
// decision — the fallback's whole job is to decide anyway.
func (n *FDBANode) Outcome() model.Outcome {
	out := model.Outcome{Node: n.id, Decided: n.finished, Value: n.decision.Value}
	if fdOut := n.fdNode.Outcome(); fdOut.Discovery != nil {
		out.Discovery = fdOut.Discovery
	}
	return out
}

// Finished implements sim.Finisher.
func (n *FDBANode) Finished() bool { return n.finished }

// InFallback reports whether the node was drawn into the fallback phase,
// for experiment assertions about failure-free cost.
func (n *FDBANode) InFallback() bool { return n.inFallback }

// Step implements the sim Process contract.
func (n *FDBANode) Step(round int, received []model.Message) []model.Message {
	t := n.cfg.T
	fdRounds := fd.ChainEngineRounds(t) // t+2
	faultRound := fdRounds + 1          // t+3
	echoRound := fdRounds + 2           // t+4
	decideRound := FDBAEngineRounds(t)  // 2t+6

	switch {
	case round <= fdRounds:
		return n.fdNode.Step(round, received)

	case round == faultRound:
		// Announce a phase-1 discovery, if any.
		if out := n.fdNode.Outcome(); out.Discovery != nil {
			n.inFallback = true
			return n.broadcastFault(nil, model.NoNode)
		}
		return nil

	case round == echoRound:
		// Echo any valid FAULT heard in the fault round; either way the
		// hearer itself joins the fallback.
		if f, announcer := n.firstValidFault(received, 1); f != nil {
			n.inFallback = true
			return n.broadcastFault(f, announcer)
		}
		return nil

	case round == echoRound+1:
		// Join on echoed faults, then open the flood with our evidence.
		if f, _ := n.firstValidFault(received, 2); !n.inFallback && f != nil {
			n.inFallback = true
		}
		if !n.inFallback {
			return nil
		}
		return n.presentEvidence()

	case round > echoRound+1 && round < decideRound:
		if !n.inFallback {
			return nil
		}
		hop := round - (echoRound + 1) // evidence with h hop sigs arrives at hop-round h
		return n.ingestFlood(hop, received)

	case round == decideRound:
		n.ingestFlood(round-(echoRound+1), received)
		n.decide()
		n.finished = true
	}
	return nil
}

// broadcastFault sends a FAULT announcement. When echoing, inner is the
// fault chain being echoed and announcer the node its signature was
// assigned to; we extend it with our own signature so echoes are
// attributable. An original announcement is a fresh one-layer chain over
// the FAULT tag.
func (n *FDBANode) broadcastFault(inner *sig.Chain, announcer model.NodeID) []model.Message {
	var (
		chain *sig.Chain
		err   error
		kind  model.MessageKind
	)
	if inner == nil {
		chain, err = sig.NewChain([]byte(faultTag), n.signer)
		kind = model.KindFault
	} else {
		// The echoed chain's outer layer is assigned to its original
		// announcer, whose identity the echoer pins by name.
		chain, err = inner.Extend(announcer, n.signer)
		kind = model.KindFaultEcho
	}
	if err != nil {
		panic(fmt.Sprintf("ba: %v signing fault: %v", n.id, err))
	}
	payload := chain.Marshal()
	out := make([]model.Message, 0, n.cfg.N-1)
	for _, to := range n.cfg.Nodes() {
		if to != n.id {
			out = append(out, model.Message{To: to, Kind: kind, Payload: payload})
		}
	}
	return out
}

// firstValidFault scans received for a fault message with the expected
// number of layers whose signatures verify under our directory, with the
// outer layer assigned to the immediate sender. It returns the parsed
// chain and the announcer (the innermost signer), or nil.
func (n *FDBANode) firstValidFault(received []model.Message, layers int) (*sig.Chain, model.NodeID) {
	wantKind := model.KindFault
	if layers == 2 {
		wantKind = model.KindFaultEcho
	}
	for _, m := range received {
		if m.Kind != wantKind {
			continue
		}
		chain, err := sig.UnmarshalChain(m.Payload)
		if err != nil || chain.Len() != layers {
			continue
		}
		if !bytes.Equal(chain.Value(), []byte(faultTag)) {
			continue
		}
		signers, err := chain.Verify(m.From, n.dir)
		if err != nil {
			continue
		}
		return chain, signers[0]
	}
	return nil, model.NoNode
}

// presentEvidence opens the flood: broadcast our FD evidence wrapped in a
// one-hop flood chain. Nodes with no evidence (they discovered before
// accepting) stay silent — absence of evidence is itself information the
// strongest-evidence rule handles.
func (n *FDBANode) presentEvidence() []model.Message {
	ev := n.fdNode.EvidenceChain()
	if ev == nil {
		return nil
	}
	evBytes := ev.Marshal()
	n.noteEvidence(evBytes)
	hop, err := sig.NewChain(evBytes, n.signer)
	if err != nil {
		panic(fmt.Sprintf("ba: %v signing evidence: %v", n.id, err))
	}
	return n.floodTo(hop, nil)
}

// ingestFlood processes flood messages for hop-round hop and returns any
// re-relays. The round's structurally plausible chains are collected
// first and verified as one batch — sig.VerifyChains checks distinct
// chains concurrently and dedups layers against the verified memo — then
// the surviving chains fold into the flood state in arrival order, so the
// result is byte-identical to verifying one message at a time. (The
// serial loop also verified every plausible chain before any state it
// could affect, so batching reorders no observable effect.)
func (n *FDBANode) ingestFlood(hop int, received []model.Message) []model.Message {
	var (
		chains  []*sig.Chain
		senders []model.NodeID
	)
	for _, m := range received {
		if m.Kind != model.KindFallback {
			continue
		}
		hopChain, err := sig.UnmarshalChain(m.Payload)
		if err != nil || hopChain.Len() != hop {
			continue
		}
		chains = append(chains, hopChain)
		senders = append(senders, m.From)
	}
	if len(chains) == 0 {
		return nil
	}
	errs := sig.VerifyChains(chains, senders, n.dir)
	var out []model.Message
	for i, hopChain := range chains {
		if errs[i] != nil {
			continue
		}
		hopSigners := hopChain.Signers(senders[i])
		if !distinctValid(hopSigners, n.cfg.N) || containsID(hopSigners, n.id) {
			continue
		}
		evBytes := hopChain.Value()
		if n.seenEvidence[string(evBytes)] {
			continue
		}
		if !n.noteEvidence(evBytes) {
			continue // invalid evidence: ignore, do not relay
		}
		if hop <= n.cfg.T {
			ext, err := hopChain.Extend(senders[i], n.signer)
			if err != nil {
				panic(fmt.Sprintf("ba: %v extending flood: %v", n.id, err))
			}
			payload := ext.Marshal()
			for _, to := range n.cfg.Nodes() {
				if to == n.id || containsID(hopSigners, to) {
					continue
				}
				out = append(out, model.Message{To: to, Kind: model.KindFallback, Payload: payload})
			}
		}
	}
	return out
}

// noteEvidence validates an evidence chain under our directory and folds
// it into the strongest-evidence state. It reports whether the evidence
// was valid.
func (n *FDBANode) noteEvidence(evBytes []byte) bool {
	n.seenEvidence[string(evBytes)] = true
	ev, err := sig.UnmarshalChain(evBytes)
	if err != nil {
		return false
	}
	k := ev.Len()
	if k < 1 || k > n.cfg.T+1 {
		return false
	}
	// Valid FD evidence is signed by the consecutive prefix P_0 … P_{k-1};
	// the outer layer is therefore P_{k-1}'s.
	signers, err := ev.Verify(model.NodeID(k-1), n.dir)
	if err != nil {
		return false
	}
	for i, s := range signers {
		if s != model.NodeID(i) {
			return false
		}
	}
	switch {
	case k > n.bestStrength:
		n.bestStrength = k
		n.bestValue = append([]byte(nil), ev.Value()...)
		n.conflict = false
	case k == n.bestStrength && !bytes.Equal(ev.Value(), n.bestValue):
		n.conflict = true
	}
	return true
}

// floodTo broadcasts a flood chain to every node not among exclude.
func (n *FDBANode) floodTo(hop *sig.Chain, exclude []model.NodeID) []model.Message {
	payload := hop.Marshal()
	out := make([]model.Message, 0, n.cfg.N-1)
	for _, to := range n.cfg.Nodes() {
		if to == n.id || containsID(exclude, to) {
			continue
		}
		out = append(out, model.Message{To: to, Kind: model.KindFallback, Payload: payload})
	}
	return out
}

// decide fixes the node's final value: fallback nodes use the
// strongest-evidence rule, others keep their FD decision.
func (n *FDBANode) decide() {
	if !n.inFallback {
		if out := n.fdNode.Outcome(); out.Decided {
			n.decision.Value = append([]byte(nil), out.Value...)
			return
		}
		// Unreachable for a correct node: a discovery joins the fallback.
		n.decision.Value = DefaultValue
		return
	}
	if n.bestStrength == 0 || n.conflict {
		n.decision.Value = DefaultValue
		return
	}
	n.decision.Value = n.bestValue
}

// distinctValid reports whether ids are pairwise distinct and in range.
func distinctValid(ids []model.NodeID, n int) bool {
	seen := make(map[model.NodeID]bool, len(ids))
	for _, id := range ids {
		if !id.Valid(n) || seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

func containsID(ids []model.NodeID, id model.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
