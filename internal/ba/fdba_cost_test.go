package ba_test

import (
	"testing"

	"repro/internal/ba"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Cost-shape tests for the FD→BA extension: the whole point of the
// construction is WHERE the messages go.

func TestFDBAWorstCaseCostBounded(t *testing.T) {
	// With a failure, the fallback flood costs O(n²) per flood round —
	// the price is only paid when something actually went wrong. Verify
	// the worst-case message count stays within the analytic bound:
	//   FD phase ≤ n−1
	//   FAULT + echo ≤ 2·d·(n−1) for d discoverers/echoers ≤ 2n(n−1)
	//   flood ≤ (t+1)·n·(n−1) (each node relays each new evidence once)
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 71)
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("v"))
	faulty := model.NewNodeSet(1)
	procs[1] = sim.Silent{}
	nodes[1] = nil
	counters := runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	n, tol := cfg.N, cfg.T
	bound := (n - 1) + 2*n*(n-1) + (tol+1)*n*(n-1)
	if got := counters.Messages(); got > bound {
		t.Errorf("worst-case messages = %d exceeds bound %d", got, bound)
	}
	// And it must be strictly more than the failure-free cost — the
	// fallback is not free.
	if got := counters.Messages(); got <= n-1 {
		t.Errorf("faulty run cost %d, expected fallback traffic beyond %d", got, n-1)
	}
	fdbaAgreement(t, nodes, faulty)
}

func TestFDBAFaultRoundTrafficOnlyOnDiscovery(t *testing.T) {
	// Failure-free: zero KindFault / KindFaultEcho / KindFallback traffic.
	cfg := model.Config{N: 5, T: 1}
	signers, dir := globalAuth(t, 5, 73)
	procs, _ := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("v"))
	counters := runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))
	for _, kind := range []model.MessageKind{model.KindFault, model.KindFaultEcho, model.KindFallback} {
		if got := counters.MessagesOfKind(kind); got != 0 {
			t.Errorf("failure-free run carried %d %v messages", got, kind)
		}
	}
}

func TestFDBADecisionsStableAcrossSeeds(t *testing.T) {
	// Same fault pattern, different keys: the decided value must be the
	// same (it depends on the protocol, not the key material).
	for seed := int64(0); seed < 5; seed++ {
		cfg := model.Config{N: 6, T: 2}
		signers, dir := globalAuth(t, 6, 100+seed)
		procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("v"))
		faulty := model.NewNodeSet(2)
		procs[2] = sim.Silent{}
		nodes[2] = nil
		runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))
		got := fdbaAgreement(t, nodes, faulty)
		if string(got) != "v" {
			t.Errorf("seed %d: agreed %q, want %q", seed, got, "v")
		}
	}
}

func TestFDBARelayChainRoles(t *testing.T) {
	// Spot-check evidence strengths: after a clean run every node's FD
	// evidence is the consecutive prefix chain its role dictates.
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 79)

	procs := make([]sim.Process, cfg.N)
	nodes := make([]*fd.ChainNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var opts []fd.ChainOption
		if model.NodeID(i) == fd.Sender {
			opts = append(opts, fd.WithValue([]byte("v")))
		}
		n, err := fd.NewChainNode(cfg, model.NodeID(i), signers[i], dir, opts...)
		if err != nil {
			t.Fatalf("NewChainNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	runBA(t, cfg, procs, fd.ChainEngineRounds(cfg.T))

	wantLen := map[model.NodeID]int{
		0: 1, // sender: {v}_{S_0}
		1: 2, // relay: + own signature
		2: 3, // disseminator: + own signature
		3: 3, // tail: the received full chain
		4: 3,
		5: 3,
	}
	for id, want := range wantLen {
		ev := nodes[id].EvidenceChain()
		if ev == nil {
			t.Errorf("%v has no evidence", id)
			continue
		}
		if ev.Len() != want {
			t.Errorf("%v evidence length = %d, want %d", id, ev.Len(), want)
		}
	}
}
