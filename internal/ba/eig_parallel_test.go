package ba

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// Differential tests for the parallel EIG paths. The serial loops
// (ingestSerial, resolveTree) are the oracles: at every worker count the
// parallel paths must produce byte-identical tree state, fresh-entry
// order, relay payloads, and decisions.

// TestRankIndexMatchesEnumeration pins the slot layout: rankOf must map
// the paths of each level onto 0..count-1 in exactly resolveTree's
// generation order (enumPaths walks children by ascending node ID among
// non-excluded IDs — the same order the old recursion used).
func TestRankIndexMatchesEnumeration(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}, {16, 3}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		for _, resolver := range []model.NodeID{1, model.NodeID(tc.n - 1)} {
			node, err := NewEIGNode(cfg, resolver)
			if err != nil {
				t.Fatalf("NewEIGNode(n=%d t=%d): %v", tc.n, tc.t, err)
			}
			for l := 1; l <= tc.t+1; l++ {
				paths := enumPaths(cfg, resolver, l)
				if len(paths) != node.levels[l-1].count {
					t.Fatalf("n=%d t=%d level %d: %d slots, enumeration has %d paths",
						tc.n, tc.t, l-1, node.levels[l-1].count, len(paths))
				}
				for want, p := range paths {
					if got := node.rankOf(p); got != want {
						t.Fatalf("n=%d t=%d resolver %v: rankOf(%v) = %d, enumeration position %d",
							tc.n, tc.t, resolver, p, got, want)
					}
				}
			}
		}
	}
}

// TestResolveTreeParallelMatchesSerial fills randomized partial trees
// (the state faulty relays leave behind) and requires the chunked
// per-level resolution to agree byte-for-byte with the serial sweep at
// every worker count, including workers far beyond the level sizes.
func TestResolveTreeParallelMatchesSerial(t *testing.T) {
	values := [][]byte{[]byte("v"), []byte("w"), DefaultValue}
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}, {16, 3}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		rng := rand.New(rand.NewSource(int64(17*tc.n + tc.t)))
		for trial := 0; trial < 10; trial++ {
			resolver := model.NodeID(1 + rng.Intn(tc.n-1))
			node, err := NewEIGNode(cfg, resolver)
			if err != nil {
				t.Fatalf("NewEIGNode: %v", err)
			}
			for l := 1; l <= tc.t+1; l++ {
				for _, p := range enumPaths(cfg, resolver, l) {
					if rng.Float64() < 0.7 {
						node.storePath(p, values[rng.Intn(len(values))])
					}
				}
			}
			want := node.resolveTree()
			for _, workers := range []int{2, 3, 8, 64} {
				got := node.resolveTreeParallel(workers)
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d t=%d trial %d workers %d: parallel resolve = %q, serial = %q",
						tc.n, tc.t, trial, workers, got, want)
				}
			}
		}
	}
}

// synthRound builds one engine-shaped inbox for `resolver` at the given
// round: every other eligible node reports all its length-(round-1)
// paths, one oral message per sender, sorted by sender — exactly what
// the lockstep engine delivers. Values are unique per path so any
// ordering or slotting mistake changes bytes somewhere.
func synthRound(cfg model.Config, resolver model.NodeID, round int) []model.Message {
	bySender := make(map[model.NodeID][]OralEntry)
	for i, p := range enumPaths(cfg, resolver, round-1) {
		last := p[len(p)-1]
		bySender[last] = append(bySender[last], OralEntry{
			Path:  p,
			Value: []byte(fmt.Sprintf("v-%d", i)),
		})
	}
	var msgs []model.Message
	for q := 0; q < cfg.N; q++ {
		qid := model.NodeID(q)
		entries, ok := bySender[qid]
		if !ok {
			continue
		}
		msgs = append(msgs, model.Message{
			From:    qid,
			To:      resolver,
			Round:   round,
			Kind:    model.KindOral,
			Payload: MarshalOralEntries(entries),
		})
	}
	return msgs
}

// stepOnce builds a fresh lieutenant, feeds it the inbox at the given
// parallelism, and returns its relay broadcasts plus the resulting tree
// levels.
func stepOnce(t *testing.T, cfg model.Config, resolver model.NodeID, round int,
	inbox []model.Message, workers int) ([]model.Message, []eigLevel) {
	t.Helper()
	SetEIGParallelism(workers)
	node, err := NewEIGNode(cfg, resolver)
	if err != nil {
		t.Fatalf("NewEIGNode: %v", err)
	}
	out := node.Step(round, inbox)
	// Deep-copy the returned messages: Step reuses its buffers.
	cp := make([]model.Message, len(out))
	for i, m := range out {
		cp[i] = m
		cp[i].Payload = append([]byte(nil), m.Payload...)
	}
	return cp, node.levels
}

// TestEIGIngestParallelMatchesSerialBytes feeds one node a synthetic
// large round — big enough to cross eigParallelIngestBytes so the
// sender-group fan-out actually engages — and requires the relay
// broadcasts and the full tree state to be byte-identical to the serial
// ingest loop at every worker count.
func TestEIGIngestParallelMatchesSerialBytes(t *testing.T) {
	defer SetEIGParallelism(0)
	cfg := model.Config{N: 16, T: 4}
	resolver := model.NodeID(15)
	round := 5 // paths of length 4: 14·13·12 = 2184 entries, ~118 KiB
	inbox := synthRound(cfg, resolver, round)
	total := 0
	for _, m := range inbox {
		total += len(m.Payload)
	}
	if total < eigParallelIngestBytes {
		t.Fatalf("synthetic round only %d bytes; below the %d parallel-ingest threshold the test is vacuous",
			total, eigParallelIngestBytes)
	}

	wantOut, wantLevels := stepOnce(t, cfg, resolver, round, inbox, 1)
	if len(wantOut) != cfg.N-1 {
		t.Fatalf("serial relay produced %d messages, want %d", len(wantOut), cfg.N-1)
	}
	for _, workers := range []int{2, 4, 8} {
		gotOut, gotLevels := stepOnce(t, cfg, resolver, round, inbox, workers)
		if len(gotOut) != len(wantOut) {
			t.Fatalf("workers=%d: %d relay messages, serial produced %d", workers, len(gotOut), len(wantOut))
		}
		for i := range wantOut {
			if gotOut[i].From != wantOut[i].From || gotOut[i].To != wantOut[i].To ||
				gotOut[i].Kind != wantOut[i].Kind || !bytes.Equal(gotOut[i].Payload, wantOut[i].Payload) {
				t.Fatalf("workers=%d: relay message %d differs from serial", workers, i)
			}
		}
		for d := range wantLevels {
			for i := 0; i < wantLevels[d].count; i++ {
				if gotLevels[d].occ[i] != wantLevels[d].occ[i] ||
					!bytes.Equal(gotLevels[d].val[i], wantLevels[d].val[i]) {
					t.Fatalf("workers=%d: tree slot (level %d, rank %d) differs from serial", workers, d, i)
				}
			}
		}
	}
}

// TestEIGIngestParallelInterleavedFallsBack pins the safety bail-out: an
// inbox that interleaves senders (impossible from the engine, possible
// from direct Step calls) must take the serial loop, not reorder
// entries. The outcome must still match the serial loop exactly.
func TestEIGIngestParallelInterleavedFallsBack(t *testing.T) {
	defer SetEIGParallelism(0)
	cfg := model.Config{N: 16, T: 4}
	resolver := model.NodeID(15)
	round := 5
	inbox := synthRound(cfg, resolver, round)
	// Split sender 1's message in two and move the second half to the
	// end: sender 1 now reappears after its span closed.
	first, err := unmarshalOralEntries(inbox[0].Payload)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	half := len(first) / 2
	inbox[0].Payload = MarshalOralEntries(first[:half])
	tail := model.Message{From: inbox[0].From, To: resolver, Round: round,
		Kind: model.KindOral, Payload: MarshalOralEntries(first[half:])}
	interleaved := append(append([]model.Message(nil), inbox...), tail)

	node, err := NewEIGNode(cfg, resolver)
	if err != nil {
		t.Fatalf("NewEIGNode: %v", err)
	}
	if _, ok := node.ingestParallel(round, interleaved, 4); ok {
		t.Fatal("ingestParallel accepted an interleaved inbox; must fall back to serial")
	}

	wantOut, wantLevels := stepOnce(t, cfg, resolver, round, interleaved, 1)
	gotOut, gotLevels := stepOnce(t, cfg, resolver, round, interleaved, 4)
	if len(gotOut) != len(wantOut) {
		t.Fatalf("interleaved: %d relay messages, serial produced %d", len(gotOut), len(wantOut))
	}
	for i := range wantOut {
		if !bytes.Equal(gotOut[i].Payload, wantOut[i].Payload) {
			t.Fatalf("interleaved: relay message %d differs from serial", i)
		}
	}
	for d := range wantLevels {
		for i := 0; i < wantLevels[d].count; i++ {
			if gotLevels[d].occ[i] != wantLevels[d].occ[i] ||
				!bytes.Equal(gotLevels[d].val[i], wantLevels[d].val[i]) {
				t.Fatalf("interleaved: tree slot (level %d, rank %d) differs", d, i)
			}
		}
	}
}

// TestEIGIngestFinalMatchesIngestSerial pins the streaming final-round
// ingest against the []OralEntry-building reference loop: identical tree
// state, at every worker count, including under duplicate and invalid
// entries and a malformed payload (which must store nothing, atomically).
func TestEIGIngestFinalMatchesIngestSerial(t *testing.T) {
	defer SetEIGParallelism(0)
	cfg := model.Config{N: 16, T: 3}
	resolver := model.NodeID(15)
	round := EIGEngineRounds(cfg.T) // leaf round: paths of length t+1
	inbox := synthRound(cfg, resolver, round)
	// Adversarial noise: sender 1 re-reports its first entries with
	// different values (duplicates must lose to the first report) and
	// appends an entry with a lying last hop (must be dropped).
	first, err := unmarshalOralEntries(inbox[0].Payload)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	dup := make([]OralEntry, 0, len(first)+2)
	dup = append(dup, first...)
	dup = append(dup, OralEntry{Path: first[0].Path, Value: []byte("liar")})
	badPath := append(append([]model.NodeID(nil), first[0].Path[:len(first[0].Path)-1]...), model.NodeID(2))
	dup = append(dup, OralEntry{Path: badPath, Value: []byte("wrong-hop")})
	inbox[0].Payload = MarshalOralEntries(dup)
	// And one malformed payload: truncated mid-entry. Both ingests must
	// drop the whole message.
	truncated := inbox[1].Payload[:len(inbox[1].Payload)-3]
	inbox[1].Payload = truncated

	SetEIGParallelism(1)
	ref, err := NewEIGNode(cfg, resolver)
	if err != nil {
		t.Fatalf("NewEIGNode: %v", err)
	}
	ref.ingestSerial(round, inbox, nil)

	for _, workers := range []int{1, 2, 4} {
		SetEIGParallelism(workers)
		node, err := NewEIGNode(cfg, resolver)
		if err != nil {
			t.Fatalf("NewEIGNode: %v", err)
		}
		node.ingestFinal(round, inbox)
		for d := range ref.levels {
			for i := 0; i < ref.levels[d].count; i++ {
				if node.levels[d].occ[i] != ref.levels[d].occ[i] ||
					!bytes.Equal(node.levels[d].val[i], ref.levels[d].val[i]) {
					t.Fatalf("workers=%d: tree slot (level %d, rank %d) differs from ingestSerial",
						workers, d, i)
				}
			}
		}
	}
}

// runEIGCluster runs a failure-free OM(t) cluster to completion and
// returns every node's decision plus the total relayed-entry count.
func runEIGCluster(t *testing.T, cfg model.Config, value []byte) ([][]byte, int64) {
	t.Helper()
	var entries atomic.Int64
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*EIGNode, cfg.N)
	for i := range procs {
		opts := []EIGOption{WithEntryCounter(&entries)}
		if model.NodeID(i) == Sender {
			opts = append(opts, WithEIGValue(value))
		}
		n, err := NewEIGNode(cfg, model.NodeID(i), opts...)
		if err != nil {
			t.Fatalf("NewEIGNode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	eng, err := sim.New(cfg, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(EIGEngineRounds(cfg.T))
	out := make([][]byte, cfg.N)
	for i, n := range nodes {
		out[i] = n.Decision().Value
	}
	return out, entries.Load()
}

// TestEIGParallelEndToEndMatchesSerial runs a full n=16 t=3 cluster —
// large enough that both the parallel ingest (last round ≈ 100 KiB per
// inbox) and the parallel resolution (2184 leaves ≥ eigParallelResolveMin)
// actually engage — and requires decisions and entry counts to match the
// fully serial run exactly at every parallelism setting. Under -race
// this doubles as the data-race exercise for the concurrent Step paths.
func TestEIGParallelEndToEndMatchesSerial(t *testing.T) {
	defer SetEIGParallelism(0)
	cfg := model.Config{N: 16, T: 3}
	value := []byte("parallel-differential")

	SetEIGParallelism(1)
	wantDec, wantEntries := runEIGCluster(t, cfg, value)
	if want := int64(EIGEntries(cfg.N, cfg.T)); wantEntries != want {
		t.Fatalf("serial run relayed %d entries, classical count is %d", wantEntries, want)
	}
	for i, d := range wantDec {
		if !bytes.Equal(d, value) {
			t.Fatalf("serial run: node %d decided %q, want %q", i, d, value)
		}
	}

	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0) + 3} {
		SetEIGParallelism(workers)
		gotDec, gotEntries := runEIGCluster(t, cfg, value)
		if gotEntries != wantEntries {
			t.Fatalf("workers=%d: relayed %d entries, serial relayed %d", workers, gotEntries, wantEntries)
		}
		for i := range wantDec {
			if !bytes.Equal(gotDec[i], wantDec[i]) {
				t.Fatalf("workers=%d: node %d decided %q, serial decided %q",
					workers, i, gotDec[i], wantDec[i])
			}
		}
	}
}
