package ba

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/sig"
)

// OM(t) — the oral-messages algorithm of Lamport, Shostak & Pease —
// implemented as exponential information gathering (EIG).
//
// Oral messages have no signatures: a relay can lie arbitrarily about what
// it heard, which is why the algorithm needs n > 3t and exponentially many
// relayed values. The paper cites this as the canonical non-authenticated
// agreement protocol; experiment E8 contrasts its cost explosion with the
// linear authenticated failure-discovery protocol.
//
// EIG formulation: every node maintains a tree of values indexed by
// *paths* — sequences of distinct node IDs starting at the sender. In
// round 1 the sender broadcasts its value (path "0"). In round r, each
// node relays every path of length r−1 that does not already contain the
// node, with itself appended. After round t+1, each node resolves the tree
// bottom-up: a leaf resolves to its stored value (or the default if
// absent); an inner node resolves to the strict majority of its children
// (default if none).
//
// The number of relayed path entries is n·(n−1)·(n−2)⋯ — O(n^t) — while
// the number of physical messages per round is at most n(n−1) (entries are
// batched per destination, as a real implementation would). EIGNode counts
// both so E8 can report the classical exponential quantity alongside wire
// messages.

// EIGNode is a correct OM(t) participant.
type EIGNode struct {
	id  model.NodeID
	cfg model.Config

	// value is the sender's initial value (sender only).
	value []byte
	// tree maps path keys to reported values. Paths are encoded as the
	// canonical key of their node sequence.
	tree map[string][]byte
	// entries counts the path entries this node has relayed (the classical
	// OM(t) cost metric).
	entries *atomic.Int64

	decision Decision
	finished bool
}

// EIGOption configures an EIGNode.
type EIGOption func(*EIGNode)

// WithEIGValue sets the sender's initial value.
func WithEIGValue(v []byte) EIGOption {
	return func(n *EIGNode) { n.value = append([]byte(nil), v...) }
}

// WithEntryCounter shares an entry counter across the cluster, so a run
// can report total relayed entries.
func WithEntryCounter(c *atomic.Int64) EIGOption {
	return func(n *EIGNode) { n.entries = c }
}

// NewEIGNode builds a correct OM(t) participant. OM requires n > 3t; the
// constructor enforces it because the algorithm's guarantees are void
// otherwise.
func NewEIGNode(cfg model.Config, id model.NodeID, opts ...EIGOption) (*EIGNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 3*cfg.T {
		return nil, fmt.Errorf("ba: OM(t) requires n > 3t, got n=%d t=%d", cfg.N, cfg.T)
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("ba: node id %v out of range for n=%d", id, cfg.N)
	}
	n := &EIGNode{
		id:      id,
		cfg:     cfg,
		tree:    make(map[string][]byte),
		entries: new(atomic.Int64),
	}
	n.decision.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, fmt.Errorf("ba: sender needs WithEIGValue")
	}
	return n, nil
}

// Decision implements Decider.
func (n *EIGNode) Decision() Decision { return n.decision }

// Finished implements sim.Finisher.
func (n *EIGNode) Finished() bool { return n.finished }

// EIGEngineRounds returns the lockstep rounds an OM(t) run needs: t+1
// communication rounds plus the resolution step.
func EIGEngineRounds(t int) int { return t + 2 }

// EIGEntries returns the classical OM(t) relayed-entry count for a
// failure-free run: sum over rounds r=1..t+1 of n·(n−1)⋯ falling
// factorial terms. Round 1 contributes n−1 entries (the sender's
// broadcast); round r>1 contributes (n−1)(n−2)⋯(n−r+1)·(n−r)… — computed
// exactly by simulating the path counts.
func EIGEntries(n, t int) int {
	// paths[r] = number of distinct paths of length r (starting at the
	// sender, distinct nodes). Each such path is relayed to n-1
	// destinations... counted as entries delivered.
	total := 0
	paths := 1 // the sender's root path of length 1 ("0")
	// Round 1: sender sends the root value to n-1 nodes.
	total += n - 1
	for r := 2; r <= t+1; r++ {
		// Each node not on a path of length r-1 extends it and broadcasts
		// to n-1 destinations. Number of length-r paths: paths * (n-(r-1)).
		paths *= n - (r - 1)
		total += paths * (n - 1)
	}
	return total
}

// pathKey canonically encodes a path for map indexing.
func pathKey(path []model.NodeID) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = fmt.Sprintf("%d", int(p))
	}
	return strings.Join(parts, ".")
}

// OralEntry is one (path, value) report on the wire. Exported so
// adversarial tests can fabricate lies.
type OralEntry struct {
	Path  []model.NodeID
	Value []byte
}

// MarshalOralEntries batches path entries into one payload.
func MarshalOralEntries(entries []OralEntry) []byte {
	e := sig.NewEncoder().Int(len(entries))
	for _, en := range entries {
		e.Int(len(en.Path))
		for _, p := range en.Path {
			e.Int(int(p))
		}
		e.Bytes(en.Value)
	}
	return e.Encoding()
}

// unmarshalOralEntries decodes a batched payload.
func unmarshalOralEntries(data []byte) ([]OralEntry, error) {
	d := sig.NewDecoder(data)
	count := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count < 0 || count > 1<<22 {
		return nil, fmt.Errorf("ba: implausible entry count %d", count)
	}
	out := make([]OralEntry, 0, count)
	for i := 0; i < count; i++ {
		plen := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if plen < 1 || plen > 1<<10 {
			return nil, fmt.Errorf("ba: implausible path length %d", plen)
		}
		path := make([]model.NodeID, plen)
		for j := range path {
			path[j] = model.NodeID(d.Int())
		}
		val := append([]byte(nil), d.Bytes()...)
		out = append(out, OralEntry{Path: path, Value: val})
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return out, nil
}

// Step implements the sim Process contract.
func (n *EIGNode) Step(round int, received []model.Message) []model.Message {
	t := n.cfg.T
	// Ingest reports from the previous round. Oral messages carry no
	// signatures: a node can only sanity-check structure, not content —
	// that weakness is the whole point of OM(t)'s redundancy.
	var fresh []OralEntry
	for _, m := range received {
		if m.Kind != model.KindOral {
			continue // not a protocol message; OM ignores it
		}
		entries, err := unmarshalOralEntries(m.Payload)
		if err != nil {
			continue // malformed: ignore, the majority vote absorbs it
		}
		for _, en := range entries {
			if !n.validPath(en.Path, round-1, m.From) {
				continue
			}
			key := pathKey(en.Path)
			if _, dup := n.tree[key]; dup {
				continue // first report wins; duplicates are faulty noise
			}
			n.tree[key] = en.Value
			fresh = append(fresh, en)
		}
	}

	switch {
	case round == 1 && n.id == Sender:
		n.tree[pathKey([]model.NodeID{Sender})] = n.value
		if t == 0 {
			n.finished = true
		}
		root := OralEntry{Path: []model.NodeID{Sender}, Value: n.value}
		n.entries.Add(int64(n.cfg.N - 1))
		return n.broadcast([]OralEntry{root})
	case round >= 2 && round <= t+1:
		// Relay every fresh path that does not contain us, extended by us.
		var relay []OralEntry
		for _, en := range fresh {
			if containsNode(en.Path, n.id) {
				continue
			}
			ext := append(append([]model.NodeID(nil), en.Path...), n.id)
			key := pathKey(ext)
			n.tree[key] = en.Value
			relay = append(relay, OralEntry{Path: ext, Value: en.Value})
		}
		if len(relay) == 0 {
			return nil
		}
		n.entries.Add(int64(len(relay) * (n.cfg.N - 1)))
		return n.broadcast(relay)
	case round == EIGEngineRounds(t):
		n.resolve()
		n.finished = true
	}
	return nil
}

// validPath checks that a reported path is structurally possible for this
// round: correct length, starts at the sender, distinct nodes, and its
// last element is the immediate sender (a node can only report paths it
// itself extended). These checks need no cryptography — they are the only
// defense oral messages afford.
func (n *EIGNode) validPath(path []model.NodeID, sentRound int, from model.NodeID) bool {
	if len(path) != sentRound {
		return false
	}
	if path[0] != Sender {
		return false
	}
	if path[len(path)-1] != from {
		return false
	}
	seen := make(map[model.NodeID]bool, len(path))
	for _, p := range path {
		if !p.Valid(n.cfg.N) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return !containsNode(path, n.id)
}

// broadcast sends the batched entries to every other node.
func (n *EIGNode) broadcast(entries []OralEntry) []model.Message {
	payload := MarshalOralEntries(entries)
	out := make([]model.Message, 0, n.cfg.N-1)
	for _, to := range n.cfg.Nodes() {
		if to != n.id {
			out = append(out, model.Message{To: to, Kind: model.KindOral, Payload: payload})
		}
	}
	return out
}

// resolve computes the node's decision by the classical EIG bottom-up
// majority rule. The sender is special: as in Lamport's formulation, the
// commander uses its own value (validity is then immediate), and the
// lieutenants resolve their trees (every path through the tree excludes
// the resolver itself, so the sender could not resolve the root anyway).
func (n *EIGNode) resolve() {
	if n.id == Sender && n.value != nil {
		n.decision.Value = append([]byte(nil), n.value...)
		return
	}
	root := []model.NodeID{Sender}
	n.decision.Value = n.resolvePath(root)
}

// resolvePath resolves one tree vertex: leaves (length t+1) take their
// stored value; inner vertices take the strict majority of their children.
func (n *EIGNode) resolvePath(path []model.NodeID) []byte {
	stored, ok := n.tree[pathKey(path)]
	if len(path) == n.cfg.T+1 {
		if !ok {
			return DefaultValue
		}
		return stored
	}
	// Children: extensions by every node not already on the path (and not
	// the resolver itself — the resolver's own extension is its stored
	// value, which we include as a child too for the standard rule).
	var votes [][]byte
	for _, q := range n.cfg.Nodes() {
		if containsNode(path, q) {
			continue
		}
		if q == n.id {
			// Our own child vertex holds what we received for `path`.
			if ok {
				votes = append(votes, stored)
			} else {
				votes = append(votes, DefaultValue)
			}
			continue
		}
		votes = append(votes, n.resolvePath(append(append([]model.NodeID(nil), path...), q)))
	}
	return majority(votes)
}

// majority returns the strict-majority value of votes, or DefaultValue if
// none exists.
func majority(votes [][]byte) []byte {
	counts := make(map[string]int, len(votes))
	for _, v := range votes {
		counts[string(v)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if 2*counts[k] > len(votes) {
			return []byte(k)
		}
	}
	return DefaultValue
}

func containsNode(path []model.NodeID, id model.NodeID) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}
