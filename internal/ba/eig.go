package ba

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/sig"
)

// OM(t) — the oral-messages algorithm of Lamport, Shostak & Pease —
// implemented as exponential information gathering (EIG).
//
// Oral messages have no signatures: a relay can lie arbitrarily about what
// it heard, which is why the algorithm needs n > 3t and exponentially many
// relayed values. The paper cites this as the canonical non-authenticated
// agreement protocol; experiment E8 contrasts its cost explosion with the
// linear authenticated failure-discovery protocol.
//
// EIG formulation: every node maintains a tree of values indexed by
// *paths* — sequences of distinct node IDs starting at the sender. In
// round 1 the sender broadcasts its value (path "0"). In round r, each
// node relays every path of length r−1 that does not already contain the
// node, with itself appended. After round t+1, each node resolves the tree
// bottom-up: a leaf resolves to its stored value (or the default if
// absent); an inner node resolves to the strict majority of its children
// (default if none).
//
// The number of relayed path entries is n·(n−1)·(n−2)⋯ — O(n^t) — while
// the number of physical messages per round is at most n(n−1) (entries are
// batched per destination, as a real implementation would). EIGNode counts
// both so E8 can report the classical exponential quantity alongside wire
// messages.
//
// Because the tree is exponential, the representation is deliberately
// lean: paths are indexed by byte-packed keys (one byte per node ID —
// maxEIGNodes bounds n accordingly), the resolve step is an iterative
// bottom-up sweep over level-ordered key arenas instead of a recursion
// that re-derives every path, and the per-round relay and message slices
// are reused across rounds.

// maxEIGNodes bounds the system size so a node ID always packs into one
// key byte. OM(t) is O(n^t); anywhere near this bound it is unrunnable
// anyway, so the bound costs nothing real.
const maxEIGNodes = 256

// EIGNode is a correct OM(t) participant.
type EIGNode struct {
	id  model.NodeID
	cfg model.Config

	// value is the sender's initial value (sender only).
	value []byte
	// tree maps byte-packed path keys to reported values.
	tree map[string][]byte
	// entries counts the path entries this node has relayed (the classical
	// OM(t) cost metric).
	entries *atomic.Int64

	// Per-round scratch, reused across Step calls to keep the relay loop
	// allocation-flat: packed-key buffer, ingested-entry and relay-entry
	// slices, the arena backing extended paths, and the outgoing message
	// slice (the engine consumes returned messages before the next round,
	// so the backing array can be recycled).
	keyBuf   []byte
	freshBuf []OralEntry
	relayBuf []OralEntry
	extArena []model.NodeID
	msgBuf   []model.Message

	decision Decision
	finished bool
}

// EIGOption configures an EIGNode.
type EIGOption func(*EIGNode)

// WithEIGValue sets the sender's initial value.
func WithEIGValue(v []byte) EIGOption {
	return func(n *EIGNode) { n.value = append([]byte(nil), v...) }
}

// WithEntryCounter shares an entry counter across the cluster, so a run
// can report total relayed entries.
func WithEntryCounter(c *atomic.Int64) EIGOption {
	return func(n *EIGNode) { n.entries = c }
}

// NewEIGNode builds a correct OM(t) participant. OM requires n > 3t; the
// constructor enforces it because the algorithm's guarantees are void
// otherwise.
func NewEIGNode(cfg model.Config, id model.NodeID, opts ...EIGOption) (*EIGNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 3*cfg.T {
		return nil, fmt.Errorf("ba: OM(t) requires n > 3t, got n=%d t=%d", cfg.N, cfg.T)
	}
	if cfg.N > maxEIGNodes {
		return nil, fmt.Errorf("ba: OM(t) supports at most %d nodes, got n=%d", maxEIGNodes, cfg.N)
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("ba: node id %v out of range for n=%d", id, cfg.N)
	}
	n := &EIGNode{
		id:      id,
		cfg:     cfg,
		tree:    make(map[string][]byte),
		entries: new(atomic.Int64),
	}
	n.decision.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, fmt.Errorf("ba: sender needs WithEIGValue")
	}
	return n, nil
}

// Decision implements Decider.
func (n *EIGNode) Decision() Decision { return n.decision }

// Finished implements sim.Finisher.
func (n *EIGNode) Finished() bool { return n.finished }

// EIGEngineRounds returns the lockstep rounds an OM(t) run needs: t+1
// communication rounds plus the resolution step.
func EIGEngineRounds(t int) int { return t + 2 }

// EIGEntries returns the classical OM(t) relayed-entry count for a
// failure-free run: sum over rounds r=1..t+1 of n·(n−1)⋯ falling
// factorial terms. Round 1 contributes n−1 entries (the sender's
// broadcast); round r>1 contributes (n−1)(n−2)⋯(n−r+1)·(n−r)… — computed
// exactly by simulating the path counts.
func EIGEntries(n, t int) int {
	// paths[r] = number of distinct paths of length r (starting at the
	// sender, distinct nodes). Each such path is relayed to n-1
	// destinations... counted as entries delivered.
	total := 0
	paths := 1 // the sender's root path of length 1 ("0")
	// Round 1: sender sends the root value to n-1 nodes.
	total += n - 1
	for r := 2; r <= t+1; r++ {
		// Each node not on a path of length r-1 extends it and broadcasts
		// to n-1 destinations. Number of length-r paths: paths * (n-(r-1)).
		paths *= n - (r - 1)
		total += paths * (n - 1)
	}
	return total
}

// pathKey canonically encodes a path for map indexing: one byte per node
// ID, injective because NewEIGNode bounds n at maxEIGNodes.
func pathKey(path []model.NodeID) string {
	return string(appendPathKey(nil, path))
}

// appendPathKey appends the packed key of path to dst. Hot paths call it
// with a reused buffer and look the result up via the zero-copy
// map[string(buf)] form.
func appendPathKey(dst []byte, path []model.NodeID) []byte {
	for _, p := range path {
		dst = append(dst, byte(p))
	}
	return dst
}

// OralEntry is one (path, value) report on the wire. Exported so
// adversarial tests can fabricate lies.
type OralEntry struct {
	Path  []model.NodeID
	Value []byte
}

// MarshalOralEntries batches path entries into one exactly-sized payload.
func MarshalOralEntries(entries []OralEntry) []byte {
	size := sig.IntFieldSize
	for _, en := range entries {
		size += sig.IntFieldSize*(1+len(en.Path)) + sig.BytesFieldSize(len(en.Value))
	}
	out := make([]byte, 0, size)
	out = sig.AppendInt(out, len(entries))
	for _, en := range entries {
		out = sig.AppendInt(out, len(en.Path))
		for _, p := range en.Path {
			out = sig.AppendInt(out, int(p))
		}
		out = sig.AppendBytes(out, en.Value)
	}
	return out
}

// unmarshalOralEntries decodes a batched payload in two passes: the
// first validates the structure and sizes the backing arenas, the second
// fills them. Every entry's path (and value) is a subslice of one shared
// buffer, so decoding k entries costs at most four allocations (decoder,
// entry slice, path arena, value arena) instead of 2k+1 — the per-entry
// churn was a ROADMAP hot spot, and OM(t) decodes O(n^t) entries per run.
func unmarshalOralEntries(data []byte) ([]OralEntry, error) {
	d := sig.NewDecoder(data)
	count := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count < 0 || count > 1<<22 {
		return nil, fmt.Errorf("ba: implausible entry count %d", count)
	}
	totalPath, totalVal := 0, 0
	for i := 0; i < count; i++ {
		plen := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if plen < 1 || plen > 1<<10 {
			return nil, fmt.Errorf("ba: implausible path length %d", plen)
		}
		for j := 0; j < plen; j++ {
			d.Int()
		}
		totalVal += len(d.Bytes())
		totalPath += plen
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	out := make([]OralEntry, count)
	pathArena := make([]model.NodeID, totalPath)
	valArena := make([]byte, 0, totalVal)
	d.Reset(data)
	d.Int() // count, validated above
	for i := range out {
		plen := d.Int()
		path := pathArena[:plen:plen]
		pathArena = pathArena[plen:]
		for j := range path {
			path[j] = model.NodeID(d.Int())
		}
		valStart := len(valArena)
		valArena = append(valArena, d.Bytes()...)
		out[i] = OralEntry{Path: path, Value: valArena[valStart:len(valArena):len(valArena)]}
	}
	return out, nil
}

// Step implements the sim Process contract.
func (n *EIGNode) Step(round int, received []model.Message) []model.Message {
	t := n.cfg.T
	// Ingest reports from the previous round. Oral messages carry no
	// signatures: a node can only sanity-check structure, not content —
	// that weakness is the whole point of OM(t)'s redundancy.
	fresh := n.freshBuf[:0]
	for _, m := range received {
		if m.Kind != model.KindOral {
			continue // not a protocol message; OM ignores it
		}
		entries, err := unmarshalOralEntries(m.Payload)
		if err != nil {
			continue // malformed: ignore, the majority vote absorbs it
		}
		for _, en := range entries {
			if !n.validPath(en.Path, round-1, m.From) {
				continue
			}
			n.keyBuf = appendPathKey(n.keyBuf[:0], en.Path)
			if _, dup := n.tree[string(n.keyBuf)]; dup {
				continue // first report wins; duplicates are faulty noise
			}
			n.tree[string(n.keyBuf)] = en.Value
			fresh = append(fresh, en)
		}
	}
	n.freshBuf = fresh

	switch {
	case round == 1 && n.id == Sender:
		n.tree[pathKey([]model.NodeID{Sender})] = n.value
		if t == 0 {
			n.finished = true
		}
		root := OralEntry{Path: []model.NodeID{Sender}, Value: n.value}
		n.entries.Add(int64(n.cfg.N - 1))
		return n.broadcast([]OralEntry{root})
	case round >= 2 && round <= t+1:
		// Relay every fresh path that does not contain us, extended by us.
		// All extensions this round have length `round`; they live in one
		// arena sized up front so the entry slices never move.
		if cap(n.extArena) < len(fresh)*round {
			n.extArena = make([]model.NodeID, len(fresh)*round)
		}
		arena := n.extArena[:0]
		relay := n.relayBuf[:0]
		for _, en := range fresh {
			if containsNode(en.Path, n.id) {
				continue
			}
			start := len(arena)
			arena = append(arena, en.Path...)
			arena = append(arena, n.id)
			ext := arena[start:len(arena):len(arena)]
			n.keyBuf = appendPathKey(n.keyBuf[:0], ext)
			n.tree[string(n.keyBuf)] = en.Value
			relay = append(relay, OralEntry{Path: ext, Value: en.Value})
		}
		n.relayBuf = relay
		if len(relay) == 0 {
			return nil
		}
		n.entries.Add(int64(len(relay) * (n.cfg.N - 1)))
		return n.broadcast(relay)
	case round == EIGEngineRounds(t):
		n.resolve()
		n.finished = true
	}
	return nil
}

// validPath checks that a reported path is structurally possible for this
// round: correct length, starts at the sender, distinct nodes, and its
// last element is the immediate sender (a node can only report paths it
// itself extended). These checks need no cryptography — they are the only
// defense oral messages afford.
func (n *EIGNode) validPath(path []model.NodeID, sentRound int, from model.NodeID) bool {
	if len(path) != sentRound {
		return false
	}
	if path[0] != Sender {
		return false
	}
	if path[len(path)-1] != from {
		return false
	}
	// Paths are at most t+1 long, so the quadratic distinctness scan beats
	// a set allocation.
	for i, p := range path {
		if !p.Valid(n.cfg.N) || p == n.id {
			return false
		}
		for j := 0; j < i; j++ {
			if path[j] == p {
				return false
			}
		}
	}
	return true
}

// broadcast sends the batched entries to every other node. The returned
// slice is reused next round; the engine consumes it before then.
func (n *EIGNode) broadcast(entries []OralEntry) []model.Message {
	payload := MarshalOralEntries(entries)
	if cap(n.msgBuf) < n.cfg.N-1 {
		n.msgBuf = make([]model.Message, 0, n.cfg.N-1)
	}
	out := model.AppendBroadcast(n.msgBuf[:0], n.cfg.N, n.id, model.KindOral, payload)
	n.msgBuf = out
	return out
}

// resolve computes the node's decision by the classical EIG bottom-up
// majority rule. The sender is special: as in Lamport's formulation, the
// commander uses its own value (validity is then immediate), and the
// lieutenants resolve their trees (every path through the tree excludes
// the resolver itself, so the sender could not resolve the root anyway).
func (n *EIGNode) resolve() {
	if n.id == Sender && n.value != nil {
		n.decision.Value = append([]byte(nil), n.value...)
		return
	}
	n.decision.Value = append([]byte(nil), n.resolveTree()...)
}

// resolveTree runs the bottom-up majority resolution iteratively over a
// level-ordered tree of packed path keys. Level d holds every depth-d
// vertex (path length d+1, distinct nodes, sender-rooted, excluding the
// resolver) in generation order; every vertex of level d has exactly
// n-d-2 children, laid out contiguously in level d+1, so parent→child
// indexing is pure arithmetic and the recursion of the classical
// formulation disappears along with its per-vertex allocations.
func (n *EIGNode) resolveTree() []byte {
	t, size := n.cfg.T, n.cfg.N
	levelKeys := make([][]byte, t+1)
	counts := make([]int, t+1)
	levelKeys[0] = []byte{byte(Sender)}
	counts[0] = 1
	for d := 0; d < t; d++ {
		klen := d + 1
		perVertex := size - klen - 1
		next := make([]byte, 0, counts[d]*perVertex*(klen+1))
		for i := 0; i < counts[d]; i++ {
			key := levelKeys[d][i*klen : (i+1)*klen]
			for q := 0; q < size; q++ {
				if q == int(n.id) || bytes.IndexByte(key, byte(q)) >= 0 {
					continue
				}
				next = append(next, key...)
				next = append(next, byte(q))
			}
		}
		levelKeys[d+1] = next
		counts[d+1] = counts[d] * perVertex
	}
	// Leaves: the stored value or the default.
	klen := t + 1
	vals := make([][]byte, counts[t])
	for i := range vals {
		if v, ok := n.tree[string(levelKeys[t][i*klen:(i+1)*klen])]; ok {
			vals[i] = v
		} else {
			vals[i] = DefaultValue
		}
	}
	// Inner levels: each vertex's votes are its own stored value for the
	// path (what it received directly) plus its children's resolutions.
	votes := make([][]byte, 0, size)
	for d := t - 1; d >= 0; d-- {
		klen = d + 1
		perVertex := size - klen - 1
		up := make([][]byte, counts[d])
		for i := 0; i < counts[d]; i++ {
			votes = votes[:0]
			if stored, ok := n.tree[string(levelKeys[d][i*klen:(i+1)*klen])]; ok {
				votes = append(votes, stored)
			} else {
				votes = append(votes, DefaultValue)
			}
			votes = append(votes, vals[i*perVertex:(i+1)*perVertex]...)
			up[i] = majority(votes)
		}
		vals = up
	}
	return vals[0]
}

// majority returns the strict-majority value of votes, or DefaultValue if
// none exists. Boyer–Moore candidate selection plus one confirmation pass:
// no counting map, no allocation, and the same result as exhaustive
// counting (a strict majority is unique when it exists).
func majority(votes [][]byte) []byte {
	var cand []byte
	count := 0
	for _, v := range votes {
		switch {
		case count == 0:
			cand, count = v, 1
		case bytes.Equal(cand, v):
			count++
		default:
			count--
		}
	}
	if count > 0 {
		total := 0
		for _, v := range votes {
			if bytes.Equal(cand, v) {
				total++
			}
		}
		if 2*total > len(votes) {
			return cand
		}
	}
	return DefaultValue
}

func containsNode(path []model.NodeID, id model.NodeID) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}
