package ba

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/sig"
)

// OM(t) — the oral-messages algorithm of Lamport, Shostak & Pease —
// implemented as exponential information gathering (EIG).
//
// Oral messages have no signatures: a relay can lie arbitrarily about what
// it heard, which is why the algorithm needs n > 3t and exponentially many
// relayed values. The paper cites this as the canonical non-authenticated
// agreement protocol; experiment E8 contrasts its cost explosion with the
// linear authenticated failure-discovery protocol.
//
// EIG formulation: every node maintains a tree of values indexed by
// *paths* — sequences of distinct node IDs starting at the sender. In
// round 1 the sender broadcasts its value (path "0"). In round r, each
// node relays every path of length r−1 that does not already contain the
// node, with itself appended. After round t+1, each node resolves the tree
// bottom-up: a leaf resolves to its stored value (or the default if
// absent); an inner node resolves to the strict majority of its children
// (default if none).
//
// The number of relayed path entries is n·(n−1)·(n−2)⋯ — O(n^t) — while
// the number of physical messages per round is at most n(n−1) (entries are
// batched per destination, as a real implementation would). EIGNode counts
// both so E8 can report the classical exponential quantity alongside wire
// messages.
//
// Because the tree is exponential, the representation is deliberately
// lean: the tree is stored as rank-indexed per-level slot arrays — a
// path maps to (level, rank) by pure arithmetic (rankOf), so ingest is
// an array write instead of a map insert and resolution never touches a
// hash table — and the per-round relay and message slices are reused
// across rounds. Within a round the slot layout makes the heavy phases
// parallel: entries from different senders can never address the same
// slot (a valid path ends with its sender), so ingest fans sender groups
// across goroutines with lock-free disjoint writes, and the bottom-up
// resolution is embarrassingly parallel within each level. Both engage
// only past size thresholds and are byte-identical to the serial paths
// at any worker count (SetEIGParallelism, differential-tested).

// maxEIGNodes bounds the system size so a node ID always packs into one
// key byte. OM(t) is O(n^t); anywhere near this bound it is unrunnable
// anyway, so the bound costs nothing real.
const maxEIGNodes = 256

// EIGNode is a correct OM(t) participant.
type EIGNode struct {
	id  model.NodeID
	cfg model.Config

	// value is the sender's initial value (sender only).
	value []byte
	// levels[d] holds every depth-d tree vertex (path length d+1) in
	// resolveTree's enumeration order, addressed by rankOf.
	levels []eigLevel
	// entries counts the path entries this node has relayed (the classical
	// OM(t) cost metric).
	entries *atomic.Int64

	// Per-round scratch, reused across Step calls to keep the relay loop
	// allocation-flat: ingested-entry and relay-entry slices, the arena
	// backing extended paths, the path buffer of the final-round streaming
	// ingest, and the outgoing message slice (the engine consumes returned
	// messages before the next round, so the backing array can be
	// recycled).
	freshBuf    []OralEntry
	relayBuf    []OralEntry
	extArena    []model.NodeID
	pathScratch []model.NodeID
	msgBuf      []model.Message

	decision Decision
	finished bool
}

// EIGOption configures an EIGNode.
type EIGOption func(*EIGNode)

// WithEIGValue sets the sender's initial value.
func WithEIGValue(v []byte) EIGOption {
	return func(n *EIGNode) { n.value = append([]byte(nil), v...) }
}

// WithEntryCounter shares an entry counter across the cluster, so a run
// can report total relayed entries.
func WithEntryCounter(c *atomic.Int64) EIGOption {
	return func(n *EIGNode) { n.entries = c }
}

// NewEIGNode builds a correct OM(t) participant. OM requires n > 3t; the
// constructor enforces it because the algorithm's guarantees are void
// otherwise.
func NewEIGNode(cfg model.Config, id model.NodeID, opts ...EIGOption) (*EIGNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 3*cfg.T {
		return nil, fmt.Errorf("ba: OM(t) requires n > 3t, got n=%d t=%d", cfg.N, cfg.T)
	}
	if cfg.N > maxEIGNodes {
		return nil, fmt.Errorf("ba: OM(t) supports at most %d nodes, got n=%d", maxEIGNodes, cfg.N)
	}
	if !id.Valid(cfg.N) {
		return nil, fmt.Errorf("ba: node id %v out of range for n=%d", id, cfg.N)
	}
	n := &EIGNode{
		id:      id,
		cfg:     cfg,
		levels:  makeEIGLevels(cfg),
		entries: new(atomic.Int64),
	}
	n.decision.Node = id
	for _, opt := range opts {
		opt(n)
	}
	if id == Sender && n.value == nil {
		return nil, fmt.Errorf("ba: sender needs WithEIGValue")
	}
	return n, nil
}

// Decision implements Decider.
func (n *EIGNode) Decision() Decision { return n.decision }

// Finished implements sim.Finisher.
func (n *EIGNode) Finished() bool { return n.finished }

// EIGEngineRounds returns the lockstep rounds an OM(t) run needs: t+1
// communication rounds plus the resolution step.
func EIGEngineRounds(t int) int { return t + 2 }

// EIGEntries returns the classical OM(t) relayed-entry count for a
// failure-free run: sum over rounds r=1..t+1 of n·(n−1)⋯ falling
// factorial terms. Round 1 contributes n−1 entries (the sender's
// broadcast); round r>1 contributes (n−1)(n−2)⋯(n−r+1)·(n−r)… — computed
// exactly by simulating the path counts.
func EIGEntries(n, t int) int {
	// paths[r] = number of distinct paths of length r (starting at the
	// sender, distinct nodes). Each such path is relayed to n-1
	// destinations... counted as entries delivered.
	total := 0
	paths := 1 // the sender's root path of length 1 ("0")
	// Round 1: sender sends the root value to n-1 nodes.
	total += n - 1
	for r := 2; r <= t+1; r++ {
		// Each node not on a path of length r-1 extends it and broadcasts
		// to n-1 destinations. Number of length-r paths: paths * (n-(r-1)).
		paths *= n - (r - 1)
		total += paths * (n - 1)
	}
	return total
}

// eigLevel is one depth level of the EIG tree: every possible vertex has
// a pre-assigned slot, addressed by rankOf. occ marks filled slots ([]bool
// rather than a bitset so concurrent ingest goroutines writing disjoint
// slots touch disjoint bytes).
type eigLevel struct {
	count int
	occ   []bool
	val   [][]byte
}

// makeEIGLevels sizes the slot arrays: level d holds every length-(d+1)
// sender-rooted path of distinct nodes excluding the resolver, so
// count(0)=1 and count(d+1) = count(d) * (n-d-2).
func makeEIGLevels(cfg model.Config) []eigLevel {
	levels := make([]eigLevel, cfg.T+1)
	count := 1
	for d := 0; d <= cfg.T; d++ {
		if d > 0 {
			count *= cfg.N - d - 1
		}
		levels[d] = eigLevel{count: count, occ: make([]bool, count), val: make([][]byte, count)}
	}
	return levels
}

// rankOf maps a tree path to its slot index within level len(path)-1.
// The rank is the path's mixed-radix position in resolveTree's
// enumeration order: the children of the vertex at (level d, rank i)
// occupy slots [i*(n-d-2), (i+1)*(n-d-2)) of level d+1, ordered by
// ascending node ID among the IDs not excluded (the path prefix and the
// resolver). Precondition: the path is valid in validPath's sense —
// sender-rooted, distinct, no element equal to the resolver — otherwise
// the arithmetic may alias a valid path's slot.
func (n *EIGNode) rankOf(path []model.NodeID) int {
	r := int(n.id)
	size := n.cfg.N
	rank := 0
	for i := 1; i < len(path); i++ {
		q := int(path[i])
		below := 0
		rIn := false
		for j := 0; j < i; j++ {
			pj := int(path[j])
			if pj < q {
				below++
			}
			if pj == r {
				rIn = true
			}
		}
		if !rIn && r < q {
			below++
		}
		rank = rank*(size-i-1) + q - below
	}
	return rank
}

// storePath inserts a reported value at its path's slot, first report
// wins. It reports whether the slot was fresh. Concurrent calls are safe
// when no two goroutines can hold the same path (the per-sender ingest
// partition guarantees it: a valid path ends with its sender).
func (n *EIGNode) storePath(path []model.NodeID, v []byte) bool {
	d := len(path) - 1
	if d < 0 || d >= len(n.levels) {
		return false
	}
	lv := &n.levels[d]
	idx := n.rankOf(path)
	if idx < 0 || idx >= lv.count || lv.occ[idx] {
		return false
	}
	lv.occ[idx] = true
	lv.val[idx] = v
	return true
}

// loadPath returns the value stored at path, if any.
func (n *EIGNode) loadPath(path []model.NodeID) ([]byte, bool) {
	d := len(path) - 1
	if d < 0 || d >= len(n.levels) {
		return nil, false
	}
	lv := &n.levels[d]
	idx := n.rankOf(path)
	if idx < 0 || idx >= lv.count || !lv.occ[idx] {
		return nil, false
	}
	return lv.val[idx], true
}

// pathKey canonically encodes a path as a byte-packed string: one byte
// per node ID, injective because NewEIGNode bounds n at maxEIGNodes.
// The tree itself is rank-indexed and no longer keyed by strings; the
// packed key remains for diagnostics and the key-structure tests.
func pathKey(path []model.NodeID) string {
	return string(appendPathKey(nil, path))
}

// appendPathKey appends the packed key of path to dst. Hot paths call it
// with a reused buffer and look the result up via the zero-copy
// map[string(buf)] form.
func appendPathKey(dst []byte, path []model.NodeID) []byte {
	for _, p := range path {
		dst = append(dst, byte(p))
	}
	return dst
}

// OralEntry is one (path, value) report on the wire. Exported so
// adversarial tests can fabricate lies.
type OralEntry struct {
	Path  []model.NodeID
	Value []byte
}

// MarshalOralEntries batches path entries into one exactly-sized payload.
func MarshalOralEntries(entries []OralEntry) []byte {
	size := sig.IntFieldSize
	for _, en := range entries {
		size += sig.IntFieldSize*(1+len(en.Path)) + sig.BytesFieldSize(len(en.Value))
	}
	out := make([]byte, 0, size)
	out = sig.AppendInt(out, len(entries))
	for _, en := range entries {
		out = sig.AppendInt(out, len(en.Path))
		for _, p := range en.Path {
			out = sig.AppendInt(out, int(p))
		}
		out = sig.AppendBytes(out, en.Value)
	}
	return out
}

// unmarshalOralEntries decodes a batched payload in two passes: the
// first validates the structure and sizes the backing arenas, the second
// fills them. Every entry's path (and value) is a subslice of one shared
// buffer, so decoding k entries costs at most four allocations (decoder,
// entry slice, path arena, value arena) instead of 2k+1 — the per-entry
// churn was a ROADMAP hot spot, and OM(t) decodes O(n^t) entries per run.
func unmarshalOralEntries(data []byte) ([]OralEntry, error) {
	d := sig.NewDecoder(data)
	count := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if count < 0 || count > 1<<22 {
		return nil, fmt.Errorf("ba: implausible entry count %d", count)
	}
	totalPath, totalVal := 0, 0
	for i := 0; i < count; i++ {
		plen := d.Int()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if plen < 1 || plen > 1<<10 {
			return nil, fmt.Errorf("ba: implausible path length %d", plen)
		}
		for j := 0; j < plen; j++ {
			d.Int()
		}
		totalVal += len(d.Bytes())
		totalPath += plen
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	out := make([]OralEntry, count)
	pathArena := make([]model.NodeID, totalPath)
	valArena := make([]byte, 0, totalVal)
	d.Reset(data)
	d.Int() // count, validated above
	for i := range out {
		plen := d.Int()
		path := pathArena[:plen:plen]
		pathArena = pathArena[plen:]
		for j := range path {
			path[j] = model.NodeID(d.Int())
		}
		valStart := len(valArena)
		valArena = append(valArena, d.Bytes()...)
		out[i] = OralEntry{Path: path, Value: valArena[valStart:len(valArena):len(valArena)]}
	}
	return out, nil
}

// eigWorkers holds the configured EIG parallelism; 0 means GOMAXPROCS.
var eigWorkers atomic.Int32

// SetEIGParallelism bounds the goroutines EIG ingest and resolution fan
// out across. n <= 0 restores the default, GOMAXPROCS; n == 1 keeps both
// phases fully serial. Decisions (and therefore reports) are
// byte-identical at any setting; the knob trades wall-clock for cores.
func SetEIGParallelism(n int) {
	if n < 0 {
		n = 0
	}
	eigWorkers.Store(int32(n))
}

// EIGParallelism returns the effective EIG worker bound.
func EIGParallelism() int {
	if w := int(eigWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Parallelism engages only past these sizes: below them the goroutine
// fan-out costs more than the work. Small instances (the campaign grids'
// n<=10 cells, whose workers are already busy in parallel) stay serial.
const (
	// eigParallelIngestBytes is the minimum total oral payload volume in
	// a round before sender groups ingest concurrently.
	eigParallelIngestBytes = 32 << 10
	// eigParallelResolveMin is the minimum leaf count before per-level
	// parallel resolution engages.
	eigParallelResolveMin = 2048
)

// Step implements the sim Process contract.
func (n *EIGNode) Step(round int, received []model.Message) []model.Message {
	t := n.cfg.T
	if round == EIGEngineRounds(t) {
		// Final round: ingest straight into the tree and resolve. Entries
		// arriving now are never relayed again, so building []OralEntry
		// batches (and their path/value arenas) for them — the single
		// largest allocation of a whole run — would be pure garbage; the
		// streaming ingest copies only the values that land in fresh slots.
		n.ingestFinal(round, received)
		n.resolve()
		n.finished = true
		return nil
	}
	// Ingest reports from the previous round. Oral messages carry no
	// signatures: a node can only sanity-check structure, not content —
	// that weakness is the whole point of OM(t)'s redundancy. Large
	// rounds ingest sender groups in parallel (disjoint slots — see
	// ingestParallel); the fallback and small rounds take the serial
	// loop. Both produce identical tree state and fresh order.
	fresh := n.freshBuf[:0]
	if workers := EIGParallelism(); workers > 1 {
		var ok bool
		if fresh, ok = n.ingestParallel(round, received, workers); !ok {
			fresh = n.ingestSerial(round, received, n.freshBuf[:0])
		}
	} else {
		fresh = n.ingestSerial(round, received, fresh)
	}
	n.freshBuf = fresh

	switch {
	case round == 1 && n.id == Sender:
		n.storePath([]model.NodeID{Sender}, n.value)
		if t == 0 {
			n.finished = true
		}
		root := OralEntry{Path: []model.NodeID{Sender}, Value: n.value}
		n.entries.Add(int64(n.cfg.N - 1))
		return n.broadcast([]OralEntry{root})
	case round >= 2 && round <= t+1:
		// Relay every fresh path that does not contain us, extended by us.
		// All extensions this round have length `round`; they live in one
		// arena sized up front so the entry slices never move. The
		// extensions are NOT stored in the tree: every path through our
		// own tree excludes us (validPath), so resolution never reads
		// them — storing them was dead weight.
		if cap(n.extArena) < len(fresh)*round {
			n.extArena = make([]model.NodeID, len(fresh)*round)
		}
		arena := n.extArena[:0]
		relay := n.relayBuf[:0]
		for _, en := range fresh {
			if containsNode(en.Path, n.id) {
				continue
			}
			start := len(arena)
			arena = append(arena, en.Path...)
			arena = append(arena, n.id)
			ext := arena[start:len(arena):len(arena)]
			relay = append(relay, OralEntry{Path: ext, Value: en.Value})
		}
		n.relayBuf = relay
		if len(relay) == 0 {
			return nil
		}
		n.entries.Add(int64(len(relay) * (n.cfg.N - 1)))
		return n.broadcast(relay)
	}
	return nil
}

// ingestSerial is the reference ingest loop: decode, validate, store,
// collect fresh entries, in arrival order.
func (n *EIGNode) ingestSerial(round int, received []model.Message, fresh []OralEntry) []OralEntry {
	for _, m := range received {
		if m.Kind != model.KindOral {
			continue // not a protocol message; OM ignores it
		}
		entries, err := unmarshalOralEntries(m.Payload)
		if err != nil {
			continue // malformed: ignore, the majority vote absorbs it
		}
		for _, en := range entries {
			if !n.validPath(en.Path, round-1, m.From) {
				continue
			}
			if !n.storePath(en.Path, en.Value) {
				continue // first report wins; duplicates are faulty noise
			}
			fresh = append(fresh, en)
		}
	}
	return fresh
}

// ingestParallel groups the round's oral messages by sender and ingests
// the groups concurrently. This is lock-free by construction: a valid
// path's last element is its immediate sender (validPath), so entries
// from different senders can never address the same tree slot, and
// first-report-wins dedup within one sender stays serial inside its
// group. Fresh entries are concatenated in group order — identical to
// the serial loop's arrival order because the engine's inboxes are
// sorted by sender. Returns ok=false (caller takes the serial loop) when
// the round's volume is below eigParallelIngestBytes, when fewer than
// two senders contributed, or when the inbox interleaves senders (never
// the case for engine-fed inboxes; direct Step calls in tests may).
func (n *EIGNode) ingestParallel(round int, received []model.Message, workers int) ([]OralEntry, bool) {
	totalBytes, oralMsgs := 0, 0
	for _, m := range received {
		if m.Kind == model.KindOral {
			totalBytes += len(m.Payload)
			oralMsgs++
		}
	}
	if totalBytes < eigParallelIngestBytes || oralMsgs < 2 {
		return nil, false
	}
	groups, ok := oralGroups(received, n.cfg.N)
	if !ok || len(groups) < 2 {
		return nil, false
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	results := make([][]OralEntry, len(groups))
	var next atomic.Int32
	var wg sync.WaitGroup
	work := func() {
		for {
			g := int(next.Add(1)) - 1
			if g >= len(groups) {
				return
			}
			var out []OralEntry
			for _, m := range received[groups[g][0]:groups[g][1]] {
				if m.Kind != model.KindOral {
					continue
				}
				entries, err := unmarshalOralEntries(m.Payload)
				if err != nil {
					continue
				}
				for _, en := range entries {
					if !n.validPath(en.Path, round-1, m.From) {
						continue
					}
					if !n.storePath(en.Path, en.Value) {
						continue
					}
					out = append(out, en)
				}
			}
			results[g] = out
		}
	}
	wg.Add(workers - 1)
	for w := 0; w < workers-1; w++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	fresh := n.freshBuf[:0]
	for _, r := range results {
		fresh = append(fresh, r...)
	}
	return fresh, true
}

// oralGroups partitions received into contiguous same-sender spans of
// oral messages — the unit of lock-free parallel ingest (entries from
// different senders can never address the same tree slot). ok=false when
// a sender reappears after its span closed (an interleaved inbox — never
// the case for engine-fed inboxes, possible for direct Step calls) or a
// sender ID is out of range; callers must then take the serial loop
// rather than reorder anything.
func oralGroups(received []model.Message, size int) ([][2]int, bool) {
	var groups [][2]int
	var closed [maxEIGNodes]bool
	curFrom := model.NoNode
	for i, m := range received {
		if m.Kind != model.KindOral {
			continue
		}
		if !m.From.Valid(size) {
			return nil, false
		}
		if curFrom != model.NoNode && m.From == curFrom {
			groups[len(groups)-1][1] = i + 1
			continue
		}
		if closed[m.From] {
			return nil, false
		}
		if curFrom != model.NoNode {
			closed[curFrom] = true
		}
		groups = append(groups, [2]int{i, i + 1})
		curFrom = m.From
	}
	return groups, true
}

// ingestFinal ingests the resolve round's inbox with the streaming
// decoder: every entry goes straight into its tree slot, nothing is
// collected for relay. Large inboxes fan sender groups across workers
// exactly like ingestParallel; the tree state is byte-identical to the
// []OralEntry-building ingest (differential-tested) because the decode,
// validation, and first-report-wins order within each sender is
// unchanged and slots across senders are disjoint.
func (n *EIGNode) ingestFinal(round int, received []model.Message) {
	if workers := EIGParallelism(); workers > 1 {
		totalBytes, oralMsgs := 0, 0
		for _, m := range received {
			if m.Kind == model.KindOral {
				totalBytes += len(m.Payload)
				oralMsgs++
			}
		}
		if totalBytes >= eigParallelIngestBytes && oralMsgs >= 2 {
			if groups, ok := oralGroups(received, n.cfg.N); ok && len(groups) >= 2 {
				if workers > len(groups) {
					workers = len(groups)
				}
				var next atomic.Int32
				var wg sync.WaitGroup
				work := func() {
					var pathBuf []model.NodeID
					for {
						g := int(next.Add(1)) - 1
						if g >= len(groups) {
							return
						}
						for _, m := range received[groups[g][0]:groups[g][1]] {
							if m.Kind != model.KindOral {
								continue
							}
							pathBuf = n.storeOralEntries(m.Payload, round, m.From, pathBuf)
						}
					}
				}
				wg.Add(workers - 1)
				for w := 0; w < workers-1; w++ {
					go func() {
						defer wg.Done()
						work()
					}()
				}
				work()
				wg.Wait()
				return
			}
		}
	}
	for _, m := range received {
		if m.Kind != model.KindOral {
			continue
		}
		n.pathScratch = n.storeOralEntries(m.Payload, round, m.From, n.pathScratch)
	}
}

// storeOralEntries decodes one oral payload directly into the tree. The
// first pass validates the full structure (a malformed payload stores
// nothing, exactly like the unmarshalOralEntries path); the second pass
// streams entries through a reused path buffer and copies only the
// values that actually land in a fresh slot into one arena. pathBuf is
// caller-owned scratch, returned (possibly grown) for reuse.
func (n *EIGNode) storeOralEntries(data []byte, round int, from model.NodeID, pathBuf []model.NodeID) []model.NodeID {
	d := sig.NewDecoder(data)
	count := d.Int()
	if d.Err() != nil || count < 0 || count > 1<<22 {
		return pathBuf
	}
	totalVal := 0
	for i := 0; i < count; i++ {
		plen := d.Int()
		if d.Err() != nil || plen < 1 || plen > 1<<10 {
			return pathBuf
		}
		for j := 0; j < plen; j++ {
			d.Int()
		}
		totalVal += len(d.Bytes())
	}
	if d.Finish() != nil {
		return pathBuf
	}
	// Sized to hold every value, so stored subslices never move when later
	// values append behind them.
	valArena := make([]byte, 0, totalVal)
	d.Reset(data)
	d.Int() // count, validated above
	for i := 0; i < count; i++ {
		plen := d.Int()
		if cap(pathBuf) < plen {
			pathBuf = make([]model.NodeID, plen)
		}
		path := pathBuf[:plen]
		for j := range path {
			path[j] = model.NodeID(d.Int())
		}
		v := d.Bytes()
		if !n.validPath(path, round-1, from) {
			continue
		}
		start := len(valArena)
		valArena = append(valArena, v...)
		if !n.storePath(path, valArena[start:len(valArena):len(valArena)]) {
			valArena = valArena[:start] // duplicate: reclaim the copy
		}
	}
	return pathBuf
}

// validPath checks that a reported path is structurally possible for this
// round: correct length, starts at the sender, distinct nodes, and its
// last element is the immediate sender (a node can only report paths it
// itself extended). These checks need no cryptography — they are the only
// defense oral messages afford.
func (n *EIGNode) validPath(path []model.NodeID, sentRound int, from model.NodeID) bool {
	if len(path) != sentRound {
		return false
	}
	if path[0] != Sender {
		return false
	}
	if path[len(path)-1] != from {
		return false
	}
	// Paths are at most t+1 long, so the quadratic distinctness scan beats
	// a set allocation.
	for i, p := range path {
		if !p.Valid(n.cfg.N) || p == n.id {
			return false
		}
		for j := 0; j < i; j++ {
			if path[j] == p {
				return false
			}
		}
	}
	return true
}

// broadcast sends the batched entries to every other node. The returned
// slice is reused next round; the engine consumes it before then.
func (n *EIGNode) broadcast(entries []OralEntry) []model.Message {
	payload := MarshalOralEntries(entries)
	if cap(n.msgBuf) < n.cfg.N-1 {
		n.msgBuf = make([]model.Message, 0, n.cfg.N-1)
	}
	out := model.AppendBroadcast(n.msgBuf[:0], n.cfg.N, n.id, model.KindOral, payload)
	n.msgBuf = out
	return out
}

// resolve computes the node's decision by the classical EIG bottom-up
// majority rule. The sender is special: as in Lamport's formulation, the
// commander uses its own value (validity is then immediate), and the
// lieutenants resolve their trees (every path through the tree excludes
// the resolver itself, so the sender could not resolve the root anyway).
func (n *EIGNode) resolve() {
	if n.id == Sender && n.value != nil {
		n.decision.Value = append([]byte(nil), n.value...)
		return
	}
	workers := EIGParallelism()
	if workers > 1 && n.levels[len(n.levels)-1].count >= eigParallelResolveMin {
		n.decision.Value = append([]byte(nil), n.resolveTreeParallel(workers)...)
		return
	}
	n.decision.Value = append([]byte(nil), n.resolveTree()...)
}

// resolveTree runs the bottom-up majority resolution iteratively over
// the rank-indexed levels. The slots of level d are already in
// generation order and every vertex of level d has exactly n-d-2
// children, laid out contiguously in level d+1, so parent→child indexing
// is pure arithmetic — no keys, no hashing, no recursion. This serial
// sweep is the differential oracle for resolveTreeParallel.
func (n *EIGNode) resolveTree() []byte {
	t, size := n.cfg.T, n.cfg.N
	// Leaves: the stored value or the default.
	leaf := &n.levels[t]
	vals := make([][]byte, leaf.count)
	for i := range vals {
		if leaf.occ[i] {
			vals[i] = leaf.val[i]
		} else {
			vals[i] = DefaultValue
		}
	}
	// Inner levels: each vertex's votes are its own stored value for the
	// path (what it received directly) plus its children's resolutions.
	votes := make([][]byte, 0, size)
	for d := t - 1; d >= 0; d-- {
		lv := &n.levels[d]
		perVertex := size - d - 2
		up := make([][]byte, lv.count)
		for i := 0; i < lv.count; i++ {
			votes = votes[:0]
			if lv.occ[i] {
				votes = append(votes, lv.val[i])
			} else {
				votes = append(votes, DefaultValue)
			}
			votes = append(votes, vals[i*perVertex:(i+1)*perVertex]...)
			up[i] = majority(votes)
		}
		vals = up
	}
	return vals[0]
}

// resolveTreeParallel is resolveTree with each level's vertex range
// chunked across workers. Within a level every vertex resolution reads
// only the frozen level below and writes only its own up-slot, so the
// level is embarrassingly parallel; the per-level barrier preserves the
// bottom-up order. Vertex results are pure functions of the tree, so the
// output is byte-identical to resolveTree at any worker count — pinned
// by the differential test.
func (n *EIGNode) resolveTreeParallel(workers int) []byte {
	t, size := n.cfg.T, n.cfg.N
	leaf := &n.levels[t]
	vals := make([][]byte, leaf.count)
	parallelRange(workers, leaf.count, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if leaf.occ[i] {
				vals[i] = leaf.val[i]
			} else {
				vals[i] = DefaultValue
			}
		}
	})
	for d := t - 1; d >= 0; d-- {
		lv := &n.levels[d]
		perVertex := size - d - 2
		up := make([][]byte, lv.count)
		children := vals
		parallelRange(workers, lv.count, func(lo, hi int) {
			votes := make([][]byte, 0, size)
			for i := lo; i < hi; i++ {
				votes = votes[:0]
				if lv.occ[i] {
					votes = append(votes, lv.val[i])
				} else {
					votes = append(votes, DefaultValue)
				}
				votes = append(votes, children[i*perVertex:(i+1)*perVertex]...)
				up[i] = majority(votes)
			}
		})
		vals = up
	}
	return vals[0]
}

// parallelRange splits [0, count) into one contiguous chunk per worker
// and runs fn on each concurrently (one chunk inline), returning when
// all complete.
func parallelRange(workers, count int, fn func(lo, hi int)) {
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		fn(0, count)
		return
	}
	chunk := (count + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := chunk; lo < count; lo += chunk {
		hi := lo + chunk
		if hi > count {
			hi = count
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}

// majority returns the strict-majority value of votes, or DefaultValue if
// none exists. Boyer–Moore candidate selection plus one confirmation pass:
// no counting map, no allocation, and the same result as exhaustive
// counting (a strict majority is unique when it exists).
func majority(votes [][]byte) []byte {
	var cand []byte
	count := 0
	for _, v := range votes {
		switch {
		case count == 0:
			cand, count = v, 1
		case bytes.Equal(cand, v):
			count++
		default:
			count--
		}
	}
	if count > 0 {
		total := 0
		for _, v := range votes {
			if bytes.Equal(cand, v) {
				total++
			}
		}
		if 2*total > len(votes) {
			return cand
		}
	}
	return DefaultValue
}

func containsNode(path []model.NodeID, id model.NodeID) bool {
	for _, p := range path {
		if p == id {
			return true
		}
	}
	return false
}
