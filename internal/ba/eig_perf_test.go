package ba

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/model"
)

// Differential tests for the EIG fast paths. The slowXxx functions are
// the pre-optimization reference implementations, kept verbatim as
// oracles: byte-packed keys must distinguish exactly the paths the old
// string keys distinguished, and the iterative bottom-up resolve must
// decide exactly what the old recursion decided.

// slowPathKey is the original dotted-decimal path key. Oracle only.
func slowPathKey(path []model.NodeID) string {
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = fmt.Sprintf("%d", int(p))
	}
	return strings.Join(parts, ".")
}

// slowMajority is the original counting-map majority. Oracle only.
func slowMajority(votes [][]byte) []byte {
	counts := make(map[string]int, len(votes))
	for _, v := range votes {
		counts[string(v)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if 2*counts[k] > len(votes) {
			return []byte(k)
		}
	}
	return DefaultValue
}

// slowResolvePath is the original recursive bottom-up resolution. Oracle
// only.
func slowResolvePath(n *EIGNode, path []model.NodeID) []byte {
	stored, ok := n.loadPath(path)
	if len(path) == n.cfg.T+1 {
		if !ok {
			return DefaultValue
		}
		return stored
	}
	var votes [][]byte
	for q := 0; q < n.cfg.N; q++ {
		qid := model.NodeID(q)
		if containsNode(path, qid) {
			continue
		}
		if qid == n.id {
			if ok {
				votes = append(votes, stored)
			} else {
				votes = append(votes, DefaultValue)
			}
			continue
		}
		votes = append(votes, slowResolvePath(n, model.CloneAppend(path, qid)))
	}
	return slowMajority(votes)
}

// enumPaths appends every sender-rooted path of the given length with
// distinct nodes, none equal to skip.
func enumPaths(cfg model.Config, skip model.NodeID, length int) [][]model.NodeID {
	var out [][]model.NodeID
	var walk func(path []model.NodeID)
	walk = func(path []model.NodeID) {
		if len(path) == length {
			out = append(out, model.CloneAppend(path))
			return
		}
		for q := 0; q < cfg.N; q++ {
			qid := model.NodeID(q)
			if qid == skip || containsNode(path, qid) {
				continue
			}
			walk(append(path, qid))
		}
	}
	walk([]model.NodeID{Sender})
	return out
}

func TestPathKeyMatchesSlowOracle(t *testing.T) {
	// The packed key must distinguish exactly the paths the old string
	// key distinguished: equal keys iff equal oracle keys, over every
	// path of length <= 3 drawn from 6 nodes.
	var paths [][]model.NodeID
	cfg := model.Config{N: 6, T: 2}
	for l := 1; l <= 3; l++ {
		paths = append(paths, enumPaths(cfg, model.NodeID(5), l)...)
	}
	keys := make([]string, len(paths))
	slow := make([]string, len(paths))
	for i, p := range paths {
		keys[i] = pathKey(p)
		slow[i] = slowPathKey(p)
		if got := appendPathKey(nil, p); string(got) != keys[i] {
			t.Fatalf("appendPathKey diverges from pathKey for %v", p)
		}
	}
	for i := range paths {
		for j := range paths {
			if (keys[i] == keys[j]) != (slow[i] == slow[j]) {
				t.Fatalf("key collision structure differs for %v vs %v", paths[i], paths[j])
			}
		}
	}
}

func TestMajorityMatchesSlowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universe := [][]byte{[]byte("a"), []byte("b"), []byte("c"), DefaultValue}
	for trial := 0; trial < 500; trial++ {
		votes := make([][]byte, 1+rng.Intn(9))
		for i := range votes {
			votes[i] = universe[rng.Intn(len(universe))]
		}
		got, want := majority(votes), slowMajority(votes)
		if !bytes.Equal(got, want) {
			t.Fatalf("majority(%q) = %q, oracle says %q", votes, got, want)
		}
	}
}

// TestResolveTreeMatchesRecursiveOracle fills EIG trees with randomized
// (partially missing, partially conflicting) reports — the state a run
// with faulty relays leaves behind — and checks the iterative resolve
// decides exactly what the recursive oracle decides.
func TestResolveTreeMatchesRecursiveOracle(t *testing.T) {
	values := [][]byte{[]byte("v"), []byte("w"), DefaultValue}
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		rng := rand.New(rand.NewSource(int64(100*tc.n + tc.t)))
		for trial := 0; trial < 25; trial++ {
			resolver := model.NodeID(1 + rng.Intn(tc.n-1)) // any lieutenant
			node, err := NewEIGNode(cfg, resolver)
			if err != nil {
				t.Fatalf("NewEIGNode: %v", err)
			}
			for l := 1; l <= tc.t+1; l++ {
				for _, p := range enumPaths(cfg, resolver, l) {
					if rng.Float64() < 0.75 {
						if !node.storePath(p, values[rng.Intn(len(values))]) {
							t.Fatalf("storePath rejected fresh valid path %v", p)
						}
					}
				}
			}
			got := node.resolveTree()
			want := slowResolvePath(node, []model.NodeID{Sender})
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d t=%d trial %d: resolveTree = %q, oracle = %q",
					tc.n, tc.t, trial, got, want)
			}
		}
	}
}

// TestPathKeyAllocs pins the zero-allocation property of the packed-key
// builder with a reused buffer (the form every hot loop uses).
func TestPathKeyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	path := []model.NodeID{0, 3, 1, 2}
	buf := make([]byte, 0, 16)
	tree := map[string][]byte{pathKey(path): []byte("v")}
	var hit bool
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendPathKey(buf[:0], path)
		_, hit = tree[string(buf)]
	})
	if !hit {
		t.Fatal("lookup missed")
	}
	if allocs != 0 {
		t.Errorf("packed-key build+lookup allocates %.1f times per op, want 0", allocs)
	}
}

// makeOralPayload builds a marshaled batch of k entries with paths of
// the given length, shaped like a mid-run relay batch.
func makeOralPayload(k, plen int) []byte {
	entries := make([]OralEntry, k)
	for i := range entries {
		path := make([]model.NodeID, plen)
		for j := range path {
			path[j] = model.NodeID((i + j) % 16)
		}
		entries[i] = OralEntry{Path: path, Value: []byte(fmt.Sprintf("value-%d", i))}
	}
	return MarshalOralEntries(entries)
}

func TestUnmarshalOralEntriesRoundTrip(t *testing.T) {
	in := []OralEntry{
		{Path: []model.NodeID{0}, Value: []byte("root")},
		{Path: []model.NodeID{0, 3}, Value: []byte{}},
		{Path: []model.NodeID{0, 3, 7}, Value: []byte("deep")},
	}
	got, err := unmarshalOralEntries(MarshalOralEntries(in))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d entries, want %d", len(got), len(in))
	}
	for i := range in {
		if !reflect.DeepEqual(got[i].Path, in[i].Path) {
			t.Errorf("entry %d path = %v, want %v", i, got[i].Path, in[i].Path)
		}
		if !bytes.Equal(got[i].Value, in[i].Value) {
			t.Errorf("entry %d value = %q, want %q", i, got[i].Value, in[i].Value)
		}
	}
	// The arena-backed subslices must be capacity-clipped: appending to
	// one entry's path or value must not clobber its neighbor.
	got[0].Path = append(got[0].Path, 99)
	got[0].Value = append(got[0].Value, 'X')
	if got[1].Path[0] != 0 || !bytes.Equal(got[2].Value, []byte("deep")) {
		t.Error("appending to one entry corrupted a neighbor: arena slices not capacity-clipped")
	}
}

// TestUnmarshalOralEntriesAllocs pins the arena decode: a k-entry batch
// costs a constant number of allocations (entry slice, path arena, value
// arena), not O(k) — the per-entry path allocation was a ROADMAP hot spot.
func TestUnmarshalOralEntriesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	for _, k := range []int{1, 16, 256} {
		payload := makeOralPayload(k, 4)
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := unmarshalOralEntries(payload); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
		})
		if allocs > 4 {
			t.Errorf("k=%d: unmarshalOralEntries allocates %.1f times per op, want <= 4", k, allocs)
		}
	}
}

// TestEIGMaxNodesEnforced pins the constructor bound that keeps the
// one-byte-per-node key packing injective.
func TestEIGMaxNodesEnforced(t *testing.T) {
	if _, err := NewEIGNode(model.Config{N: 300, T: 1}, 0, WithEIGValue([]byte("v"))); err == nil {
		t.Error("NewEIGNode accepted n=300; packed path keys need n <= 256")
	}
}
