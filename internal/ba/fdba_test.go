package ba_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// fdbaProcs builds correct FDBA nodes.
func fdbaProcs(t *testing.T, cfg model.Config, signers []sig.Signer, dirFor func(int) sig.Directory, value []byte) ([]sim.Process, []*ba.FDBANode) {
	t.Helper()
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.FDBANode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		n, err := ba.NewFDBANode(cfg, model.NodeID(i), signers[i], dirFor(i), value)
		if err != nil {
			t.Fatalf("NewFDBANode(%d): %v", i, err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

func TestFDBAFailureFreeCostsSameAsFD(t *testing.T) {
	// The headline of the Hadzilacos–Halpern extension: failure-free runs
	// cost exactly the FD protocol's n−1 messages — no fallback traffic.
	for _, tc := range []struct{ n, t int }{{4, 1}, {6, 2}, {10, 3}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		signers, dir := globalAuth(t, tc.n, int64(20+tc.n))
		value := []byte("v")
		procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, value)
		counters := runBA(t, cfg, procs, ba.FDBAEngineRounds(tc.t))

		if got, want := counters.Messages(), fd.ChainMessages(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: messages = %d, want %d (failure-free must equal FD)", tc.n, tc.t, got, want)
		}
		for _, n := range nodes {
			if n.InFallback() {
				t.Errorf("n=%d t=%d: %v entered fallback in a failure-free run", tc.n, tc.t, n.Decision().Node)
			}
			if d := n.Decision(); !bytes.Equal(d.Value, value) {
				t.Errorf("n=%d t=%d: %v decided %q", tc.n, tc.t, d.Node, d.Value)
			}
		}
	}
}

// fdbaAgreement asserts all correct nodes decided the same value and
// returns it.
func fdbaAgreement(t *testing.T, nodes []*ba.FDBANode, faulty model.NodeSet) []byte {
	t.Helper()
	var first []byte
	var have bool
	for _, n := range nodes {
		if n == nil || faulty.Contains(n.Decision().Node) {
			continue
		}
		d := n.Decision()
		if !have {
			first, have = d.Value, true
			continue
		}
		if !bytes.Equal(d.Value, first) {
			t.Errorf("BA agreement violated: %v decided %q, earlier nodes %q", d.Node, d.Value, first)
		}
	}
	return first
}

func TestFDBASilentRelayFallsBackAndAgrees(t *testing.T) {
	// A silent relay kills the chain. FD alone would leave some nodes
	// decided (the early relays) and some discovering; the BA extension
	// must drive EVERYONE to one value.
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 31)
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("v"))
	faulty := model.NewNodeSet(2)
	procs[2] = sim.Silent{}
	nodes[2] = nil
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	got := fdbaAgreement(t, nodes, faulty)
	// P_1 accepted and presented a 2-strength chain for "v"; conflicting
	// evidence cannot exist, so the agreed value is "v".
	if !bytes.Equal(got, []byte("v")) {
		t.Errorf("agreed value = %q, want %q", got, "v")
	}
	// At least the starved successors entered fallback.
	inFallback := 0
	for _, n := range nodes {
		if n != nil && n.InFallback() {
			inFallback++
		}
	}
	if inFallback == 0 {
		t.Error("nobody entered fallback despite a dead chain")
	}
}

func TestFDBASilentSenderAgreesOnDefault(t *testing.T) {
	// A completely silent sender: nobody ever holds evidence; everyone
	// discovers, falls back, and agrees on the default.
	cfg := model.Config{N: 5, T: 1}
	signers, dir := globalAuth(t, 5, 37)
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("ignored"))
	faulty := model.NewNodeSet(0)
	procs[0] = sim.Silent{}
	nodes[0] = nil
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	got := fdbaAgreement(t, nodes, faulty)
	if !bytes.Equal(got, ba.DefaultValue) {
		t.Errorf("agreed value = %q, want default", got)
	}
}

func TestFDBATamperingRelayAgreesOnSenderValue(t *testing.T) {
	// A relay that corrupts the chain: successor discovers, fallback
	// spreads P_1's intact evidence, everyone lands on the true value.
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 41)
	value := []byte("v")
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, value)
	faulty := model.NewNodeSet(2)
	inner := nodes[2]
	procs[2] = adversary.Wrap(inner, adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(12)))
	nodes[2] = nil
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	got := fdbaAgreement(t, nodes, faulty)
	if !bytes.Equal(got, value) {
		t.Errorf("agreed value = %q, want %q", got, value)
	}
}

func TestFDBAFabricatedFaultTriggersConsistentFallback(t *testing.T) {
	// A faulty node announces FAULT (to a subset!) even though the FD run
	// was clean. The echo round pulls every correct node into the
	// fallback, and strongest-evidence lands them all on the FD value —
	// the mixed-decision hazard the construction must survive.
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 43)
	value := []byte("v")
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, value)
	faulty := model.NewNodeSet(5)
	// Node 5 behaves correctly in the FD phase (it is a tail node:
	// receives, verifies) but then fabricates a FAULT to nodes 1 and 3.
	inner := nodes[5]
	faultChain := func() []byte {
		c, err := sig.NewChain([]byte("fdba/fault/v1"), signers[5])
		if err != nil {
			t.Fatalf("NewChain: %v", err)
		}
		return c.Marshal()
	}()
	procs[5] = adversary.Wrap(inner, adversary.InjectAt(fd.ChainEngineRounds(cfg.T)+1,
		model.Message{To: 1, Kind: model.KindFault, Payload: faultChain},
		model.Message{To: 3, Kind: model.KindFault, Payload: faultChain},
	))
	nodes[5] = nil
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	got := fdbaAgreement(t, nodes, faulty)
	if !bytes.Equal(got, value) {
		t.Errorf("agreed value = %q, want %q (fabricated fault must not change the value)", got, value)
	}
}

func TestFDBALocalAuthCleanRun(t *testing.T) {
	// Under local authentication with everyone correct, the extension
	// behaves exactly as under global authentication.
	cfg := model.Config{N: 5, T: 1}
	signers, dirs := localAuth(t, cfg, 47, nil)
	value := []byte("v")
	procs, nodes := fdbaProcs(t, cfg, signers, func(i int) sig.Directory { return dirs[i] }, value)
	counters := runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	if got, want := counters.Messages(), fd.ChainMessages(cfg.N, cfg.T); got != want {
		t.Errorf("messages = %d, want %d", got, want)
	}
	fdbaAgreement(t, nodes, model.NewNodeSet())
}

func TestFDBAEquivocatingSenderDefaultsOrAgrees(t *testing.T) {
	// Sender signs two values; P_1 discovers the duplicate and announces.
	// Fallback evidence: P_1 holds NO accepted chain (it discovered before
	// accepting), the faulty sender may present either 1-chain. All
	// correct nodes see the same evidence set and tie-break identically.
	cfg := model.Config{N: 6, T: 2}
	signers, dir := globalAuth(t, 6, 53)
	procs, nodes := fdbaProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("ignored"))
	faulty := model.NewNodeSet(0)
	procs[0] = adversary.NewEquivocatingSender(cfg, signers[0], []byte("a"), []byte("b"), 3)
	nodes[0] = nil
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	fdbaAgreement(t, nodes, faulty)
}
