package ba_test

import (
	"bytes"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Experiment E11 — the paper's §6 open problem, made concrete.
//
// Setup: the sender is faulty and ran the MIXED-PREDICATE attack during
// key distribution (predicate A accepted by P_1, predicate B by everyone
// else): a G3 violation that local authentication provably cannot prevent
// and key distribution cannot detect.
//
// Payoff of the comparison:
//   - SM(t) Byzantine Agreement under local authentication BREAKS: P_1
//     extracts {v}, the others extract {u}, nobody notices, agreement is
//     violated silently. This is why the paper only claims Failure
//     Discovery — not BA — for local authentication, and why §6 calls BA
//     under local authentication an open question.
//   - The chain FD protocol under the SAME attack DISCOVERS the failure
//     (Theorem 4): the first node whose directory disagrees with the
//     chain's signature rejects it and discovers.

// e11Fixture runs key distribution with a mixed-predicate faulty sender.
func e11Fixture(t *testing.T, n, tol int, seed int64) (signers []sig.Signer, dirs []sig.Directory, mixed *adversary.MixedPredicateNode) {
	t.Helper()
	cfg := model.Config{N: n, T: tol}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	groupA := model.NewNodeSet(1) // P_1 gets predicate A, the rest B
	mixed, err = adversary.NewMixedPredicateNode(cfg, 0, scheme, sim.SeededReader(seed), groupA)
	if err != nil {
		t.Fatalf("NewMixedPredicateNode: %v", err)
	}
	signers, dirs = localAuth(t, cfg, seed, map[model.NodeID]sim.Process{0: mixed})
	return signers, dirs, mixed
}

// e11SenderRun drives one agreement run where the faulty sender signs v
// with key A toward P_1 and u with key B toward the others, using the
// given message kind.
func e11Sender(mixed *adversary.MixedPredicateNode, cfg model.Config, kind model.MessageKind, v, u []byte, direct bool) sim.Process {
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		chainFor := func(to model.NodeID, value []byte) []byte {
			c, err := sig.NewChain(value, mixed.SignerFor(to))
			if err != nil {
				panic(err)
			}
			return c.Marshal()
		}
		if !direct {
			// Chain FD: the sender only talks to P_1.
			return []model.Message{{To: 1, Kind: kind, Payload: chainFor(1, v)}}
		}
		var out []model.Message
		for _, to := range cfg.Nodes() {
			if to == 0 {
				continue
			}
			value := u
			if to == 1 {
				value = v
			}
			out = append(out, model.Message{To: to, Kind: kind, Payload: chainFor(to, value)})
		}
		return out
	})
}

func TestE11SMUnderLocalAuthSplitsSilently(t *testing.T) {
	cfg := model.Config{N: 4, T: 1}
	signers, dirs, mixed := e11Fixture(t, 4, 1, 61)

	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.SMNode, cfg.N)
	for i := 1; i < cfg.N; i++ {
		n, err := ba.NewSMNode(cfg, model.NodeID(i), signers[i], dirs[i])
		if err != nil {
			t.Fatalf("NewSMNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	procs[0] = e11Sender(mixed, cfg, model.KindSigned, []byte("v"), []byte("u"), true)
	runBA(t, cfg, procs, ba.SMEngineRounds(cfg.T))

	d1 := nodes[1].Decision()
	d2 := nodes[2].Decision()
	d3 := nodes[3].Decision()
	// The split: P_1 on v, P_2/P_3 on u — BA agreement violated with no
	// node any the wiser. (If this ever starts agreeing, the G3 gap has
	// been closed and the paper's open problem solved — worth a look!)
	if bytes.Equal(d1.Value, d2.Value) {
		t.Fatalf("expected split, got agreement on %q — E11 attack no longer demonstrates the gap", d1.Value)
	}
	if !bytes.Equal(d1.Value, []byte("v")) {
		t.Errorf("P1 decided %q, want %q", d1.Value, "v")
	}
	if !bytes.Equal(d2.Value, []byte("u")) || !bytes.Equal(d3.Value, []byte("u")) {
		t.Errorf("P2/P3 decided %q/%q, want %q", d2.Value, d3.Value, "u")
	}
}

func TestE11ChainFDUnderLocalAuthDiscovers(t *testing.T) {
	// Same key-distribution attack, same equivocation pattern — but the
	// chain FD protocol: P_1 (disseminator at t=1) accepts and forwards;
	// P_2 and P_3 verify the extended chain, find the innermost signature
	// unverifiable under THEIR predicate for P_0, and DISCOVER (Theorem 4).
	cfg := model.Config{N: 4, T: 1}
	signers, dirs, mixed := e11Fixture(t, 4, 1, 67)

	procs := make([]sim.Process, cfg.N)
	nodes := make([]*fd.ChainNode, cfg.N)
	for i := 1; i < cfg.N; i++ {
		n, err := fd.NewChainNode(cfg, model.NodeID(i), signers[i], dirs[i])
		if err != nil {
			t.Fatalf("NewChainNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	procs[0] = e11Sender(mixed, cfg, model.KindChainValue, []byte("v"), []byte("u"), false)
	runBA(t, cfg, procs, fd.ChainEngineRounds(cfg.T))

	// P_1 accepted v (its predicate matches).
	if o := nodes[1].Outcome(); !o.Decided || !bytes.Equal(o.Value, []byte("v")) {
		t.Errorf("P1 outcome = %v, want decided v", o)
	}
	// P_2 and P_3 discovered — the dichotomy of Theorem 4.
	for _, id := range []int{2, 3} {
		o := nodes[id].Outcome()
		if o.Discovery == nil {
			t.Errorf("P%d did not discover the mixed-predicate chain: %v", id, o)
			continue
		}
		if o.Discovery.Reason != model.ReasonBadSignature && o.Discovery.Reason != model.ReasonBadChain {
			t.Errorf("P%d reason = %v, want bad-signature/bad-chain", id, o.Discovery.Reason)
		}
	}
	// F2 is intact: a correct node discovered, so the weak-agreement
	// clause is not violated even though P_1 decided.
}

func TestE11FDBAUnderLocalAuthCanSplit(t *testing.T) {
	// The full BA extension under local authentication with the mixed
	// predicate sender. The FD phase discovers at P_2/P_3, the fallback
	// floods evidence — but evidence VERIFICATION diverges between the
	// predicate groups, so the final decisions may split (P_1 keeps v,
	// others default). We assert only what is guaranteed: the run
	// completes, and IF decisions split, the split follows the predicate
	// groups — documenting, not fixing, the open problem.
	cfg := model.Config{N: 4, T: 1}
	signers, dirs, mixed := e11Fixture(t, 4, 1, 71)

	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.FDBANode, cfg.N)
	for i := 1; i < cfg.N; i++ {
		n, err := ba.NewFDBANode(cfg, model.NodeID(i), signers[i], dirs[i], nil)
		if err != nil {
			t.Fatalf("NewFDBANode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	procs[0] = e11Sender(mixed, cfg, model.KindChainValue, []byte("v"), []byte("u"), false)
	runBA(t, cfg, procs, ba.FDBAEngineRounds(cfg.T))

	d1 := nodes[1].Decision()
	d2 := nodes[2].Decision()
	d3 := nodes[3].Decision()
	// Within the same predicate group decisions must agree.
	if !bytes.Equal(d2.Value, d3.Value) {
		t.Errorf("same-group nodes split: P2=%q P3=%q", d2.Value, d3.Value)
	}
	t.Logf("E11 FDBA decisions: P1=%q P2=%q P3=%q (split across groups = the open problem)",
		d1.Value, d2.Value, d3.Value)
}
