package ba_test

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/ba"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// globalAuth builds n signers with a single shared directory: the
// global-authentication regime the classical algorithms assume.
func globalAuth(t testing.TB, n int, seed int64) ([]sig.Signer, sig.MapDirectory) {
	t.Helper()
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	dir := make(sig.MapDirectory, n)
	signers := make([]sig.Signer, n)
	for i := 0; i < n; i++ {
		s, err := scheme.Generate(sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		signers[i] = s
		dir[model.NodeID(i)] = s.Predicate()
	}
	return signers, dir
}

// localAuth runs key distribution and returns per-node directories.
func localAuth(t testing.TB, cfg model.Config, seed int64, overrides map[model.NodeID]sim.Process) ([]sig.Signer, []sig.Directory) {
	t.Helper()
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*keydist.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := overrides[id]; ok {
			procs[i] = p
			continue
		}
		n, err := keydist.NewNode(cfg, id, scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	eng, err := sim.New(cfg, procs)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(keydist.RoundsTotal)
	signers := make([]sig.Signer, cfg.N)
	dirs := make([]sig.Directory, cfg.N)
	for i, n := range nodes {
		if n == nil {
			continue
		}
		signers[i] = n.Signer()
		dirs[i] = n.Directory()
	}
	return signers, dirs
}

func runBA(t testing.TB, cfg model.Config, procs []sim.Process, rounds int) *metrics.Counters {
	t.Helper()
	counters := metrics.NewCounters()
	eng, err := sim.New(cfg, procs, sim.WithCounters(counters))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	eng.Run(rounds)
	return counters
}

// --- OM(t) / EIG ---

func TestEIGFailureFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		value := []byte("attack at dawn")
		entries := new(atomic.Int64)
		procs := make([]sim.Process, cfg.N)
		nodes := make([]*ba.EIGNode, cfg.N)
		for i := 0; i < cfg.N; i++ {
			var opts []ba.EIGOption
			if model.NodeID(i) == ba.Sender {
				opts = append(opts, ba.WithEIGValue(value))
			}
			opts = append(opts, ba.WithEntryCounter(entries))
			n, err := ba.NewEIGNode(cfg, model.NodeID(i), opts...)
			if err != nil {
				t.Fatalf("NewEIGNode: %v", err)
			}
			nodes[i] = n
			procs[i] = n
		}
		runBA(t, cfg, procs, ba.EIGEngineRounds(tc.t))
		for _, n := range nodes {
			d := n.Decision()
			if !bytes.Equal(d.Value, value) {
				t.Errorf("n=%d t=%d: %v decided %q, want %q", tc.n, tc.t, d.Node, d.Value, value)
			}
		}
		// The classical exponential entry count is matched exactly.
		if got, want := entries.Load(), int64(ba.EIGEntries(tc.n, tc.t)); got != want {
			t.Errorf("n=%d t=%d: entries = %d, want %d", tc.n, tc.t, got, want)
		}
	}
}

func TestEIGFaultyRelayAgreement(t *testing.T) {
	// One lying relay (t=1, n=4): correct nodes still agree on the
	// sender's value — the OM(1) guarantee.
	cfg := model.Config{N: 4, T: 1}
	value := []byte("v")
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.EIGNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var opts []ba.EIGOption
		if model.NodeID(i) == ba.Sender {
			opts = append(opts, ba.WithEIGValue(value))
		}
		n, err := ba.NewEIGNode(cfg, model.NodeID(i), opts...)
		if err != nil {
			t.Fatalf("NewEIGNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	// Node 2 relays garbage values for every path.
	procs[2] = sim.ProcessFunc(func(round int, received []model.Message) []model.Message {
		if round != 2 {
			return nil
		}
		var out []model.Message
		for _, to := range cfg.Nodes() {
			if to == 2 {
				continue
			}
			// Fabricate a lie about the sender's root path.
			out = append(out, model.Message{To: to, Kind: model.KindOral,
				Payload: lieEntry(t, []model.NodeID{0, 2}, []byte("lie"))})
		}
		return out
	})
	nodes[2] = nil
	runBA(t, cfg, procs, ba.EIGEngineRounds(cfg.T))

	for _, n := range nodes {
		if n == nil {
			continue
		}
		d := n.Decision()
		if !bytes.Equal(d.Value, value) {
			t.Errorf("%v decided %q, want %q (OM(1) validity)", d.Node, d.Value, value)
		}
	}
}

func TestEIGFaultySenderAgreement(t *testing.T) {
	// A two-faced sender (t=1, n=4): correct nodes must AGREE (on
	// whatever value), the heart of the Byzantine generals result.
	cfg := model.Config{N: 4, T: 1}
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.EIGNode, cfg.N)
	for i := 1; i < cfg.N; i++ {
		n, err := ba.NewEIGNode(cfg, model.NodeID(i))
		if err != nil {
			t.Fatalf("NewEIGNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	procs[0] = sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		return []model.Message{
			{To: 1, Kind: model.KindOral, Payload: lieEntry(t, []model.NodeID{0}, []byte("a"))},
			{To: 2, Kind: model.KindOral, Payload: lieEntry(t, []model.NodeID{0}, []byte("b"))},
			{To: 3, Kind: model.KindOral, Payload: lieEntry(t, []model.NodeID{0}, []byte("a"))},
		}
	})
	runBA(t, cfg, procs, ba.EIGEngineRounds(cfg.T))

	var first []byte
	for _, n := range nodes {
		if n == nil {
			continue
		}
		d := n.Decision()
		if first == nil {
			first = d.Value
			continue
		}
		if !bytes.Equal(d.Value, first) {
			t.Errorf("agreement violated: %q vs %q", first, d.Value)
		}
	}
}

func TestEIGRequiresN3T(t *testing.T) {
	if _, err := ba.NewEIGNode(model.Config{N: 3, T: 1}, 0, ba.WithEIGValue([]byte("v"))); err == nil {
		t.Error("n=3,t=1 accepted; OM requires n > 3t")
	}
}

func TestEIGEntriesFormula(t *testing.T) {
	// Spot-check the falling-factorial formula.
	if got := ba.EIGEntries(4, 1); got != 3+3*3 {
		t.Errorf("EIGEntries(4,1) = %d, want 12", got)
	}
	if got := ba.EIGEntries(7, 2); got != 6+6*6+6*5*6 {
		t.Errorf("EIGEntries(7,2) = %d, want %d", got, 6+36+180)
	}
}

// lieEntry builds a single-entry oral payload for the given path/value.
func lieEntry(t testing.TB, path []model.NodeID, value []byte) []byte {
	t.Helper()
	return ba.MarshalOralEntries([]ba.OralEntry{{Path: path, Value: value}})
}

// --- SM(t) ---

func smProcs(t *testing.T, cfg model.Config, signers []sig.Signer, dirFor func(int) sig.Directory, value []byte) ([]sim.Process, []*ba.SMNode) {
	t.Helper()
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*ba.SMNode, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var opts []ba.SMOption
		if model.NodeID(i) == ba.Sender {
			opts = append(opts, ba.WithSMValue(value))
		}
		n, err := ba.NewSMNode(cfg, model.NodeID(i), signers[i], dirFor(i), opts...)
		if err != nil {
			t.Fatalf("NewSMNode: %v", err)
		}
		nodes[i] = n
		procs[i] = n
	}
	return procs, nodes
}

func TestSMFailureFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {5, 3}, {8, 2}} {
		cfg := model.Config{N: tc.n, T: tc.t}
		signers, dir := globalAuth(t, tc.n, int64(tc.n))
		value := []byte("signed value")
		procs, nodes := smProcs(t, cfg, signers, func(int) sig.Directory { return dir }, value)
		counters := runBA(t, cfg, procs, ba.SMEngineRounds(tc.t))

		for _, n := range nodes {
			if d := n.Decision(); !bytes.Equal(d.Value, value) {
				t.Errorf("n=%d t=%d: %v decided %q", tc.n, tc.t, d.Node, d.Value)
			}
		}
		if got, want := counters.Messages(), ba.SMMessagesFailureFree(tc.n, tc.t); got != want {
			t.Errorf("n=%d t=%d: messages = %d, want %d (O(n²) failure-free)", tc.n, tc.t, got, want)
		}
	}
}

func TestSMEquivocatingSenderGlobalAuth(t *testing.T) {
	// A sender signing two values: with t=2 ≥ faults, all correct nodes
	// end with V={a,b} and decide the default — agreement preserved.
	cfg := model.Config{N: 5, T: 2}
	signers, dir := globalAuth(t, 5, 9)
	procs, nodes := smProcs(t, cfg, signers, func(int) sig.Directory { return dir }, []byte("ignored"))
	procs[0] = equivocatingSMSender(t, cfg, signers[0], []byte("a"), []byte("b"))
	nodes[0] = nil
	runBA(t, cfg, procs, ba.SMEngineRounds(cfg.T))

	for _, n := range nodes {
		if n == nil {
			continue
		}
		d := n.Decision()
		if !bytes.Equal(d.Value, ba.DefaultValue) {
			t.Errorf("%v decided %q, want default", d.Node, d.Value)
		}
		vs := n.ValueSet()
		if len(vs) != 2 {
			t.Errorf("%v extracted %v, want both values", d.Node, vs)
		}
	}
}

// equivocatingSMSender splits v1 to half, v2 to the other half.
func equivocatingSMSender(t testing.TB, cfg model.Config, signer sig.Signer, v1, v2 []byte) sim.Process {
	t.Helper()
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		c1, err := sig.NewChain(v1, signer)
		if err != nil {
			t.Fatalf("NewChain: %v", err)
		}
		c2, err := sig.NewChain(v2, signer)
		if err != nil {
			t.Fatalf("NewChain: %v", err)
		}
		var out []model.Message
		for _, to := range cfg.Nodes() {
			if to == 0 {
				continue
			}
			p := c1.Marshal()
			if int(to) > cfg.N/2 {
				p = c2.Marshal()
			}
			out = append(out, model.Message{To: to, Kind: model.KindSigned, Payload: p})
		}
		return out
	})
}

func TestSMLocalAuthCleanRun(t *testing.T) {
	// With everyone correct, local authentication behaves exactly like
	// global authentication for SM(t) — G2 at work.
	cfg := model.Config{N: 5, T: 1}
	signers, dirs := localAuth(t, cfg, 11, nil)
	value := []byte("v")
	procs, nodes := smProcs(t, cfg, signers, func(i int) sig.Directory { return dirs[i] }, value)
	runBA(t, cfg, procs, ba.SMEngineRounds(cfg.T))
	for _, n := range nodes {
		if d := n.Decision(); !bytes.Equal(d.Value, value) {
			t.Errorf("%v decided %q", d.Node, d.Value)
		}
	}
}
