package transport

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestConnStatsCountTCPTraffic(t *testing.T) {
	var serverStats, clientStats ConnStats
	l, err := ListenConn("127.0.0.1:0", WithConnStats(&serverStats))
	if err != nil {
		t.Fatalf("ListenConn: %v", err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := DialConn(l.Addr(), WithConnStats(&clientStats))
	if err != nil {
		t.Fatalf("DialConn: %v", err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	for i := 0; i < 3; i++ {
		if err := client.Send([]byte("ping!")); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if _, err := server.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
	}
	if err := server.Send([]byte("pong")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}

	cs, ss := clientStats.Snapshot(), serverStats.Snapshot()
	if cs.FramesSent != 3 || cs.BytesSent != 15 {
		t.Errorf("client sent %d frames / %d bytes, want 3/15", cs.FramesSent, cs.BytesSent)
	}
	if cs.FramesRecv != 1 || cs.BytesRecv != 4 {
		t.Errorf("client recv %d frames / %d bytes, want 1/4", cs.FramesRecv, cs.BytesRecv)
	}
	if ss.FramesRecv != 3 || ss.BytesRecv != 15 || ss.FramesSent != 1 {
		t.Errorf("server stats %v", ss)
	}
	if cs.Redials != 0 {
		t.Errorf("clean dial recorded %d redials", cs.Redials)
	}
	if cs.String() == "" {
		t.Error("snapshot String is empty")
	}
}

func TestDialConnCountsRedials(t *testing.T) {
	probe, err := ListenConn("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenConn: %v", err)
	}
	addr := probe.Addr()
	probe.Close()

	var stats ConnStats
	done := make(chan error, 1)
	go func() {
		c, err := DialConn(addr, WithConnDialWindow(5*time.Second), WithConnStats(&stats))
		if c != nil {
			c.Close()
		}
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	l, err := ListenConn(addr)
	if err != nil {
		t.Fatalf("ListenConn (relisten): %v", err)
	}
	defer l.Close()
	if err := <-done; err != nil {
		t.Fatalf("DialConn: %v", err)
	}
	if got := stats.Redials.Load(); got == 0 {
		t.Error("dial against a missing listener recorded zero redials")
	}
}

func TestCountConnWrapsAnyConn(t *testing.T) {
	a, b := Pipe()
	var stats ConnStats
	counted := CountConn(a, &stats)
	if err := counted.Send([]byte("abc")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := b.Send([]byte("defgh")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := counted.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	s := stats.Snapshot()
	if s.FramesSent != 1 || s.BytesSent != 3 || s.FramesRecv != 1 || s.BytesRecv != 5 {
		t.Errorf("counted pipe stats %v", s)
	}
	if CountConn(b, nil) != b {
		t.Error("CountConn(nil stats) should return the conn unwrapped")
	}
	counted.Close()
}

// TestRunnerTracerSeesDeliveries drives a two-node cluster over the
// memory mesh with a shared tracer: every delivered protocol message
// must reach it, mirroring sim.WithTracer's contract.
func TestRunnerTracerSeesDeliveries(t *testing.T) {
	const rounds = 3
	mesh := NewMemoryMesh(2)
	endpoints := []Transport{mesh.Endpoint(0), mesh.Endpoint(1)}
	sender := sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		return []model.Message{{To: 1, Kind: model.KindEcho, Payload: []byte{byte(round)}}}
	})
	procs := []sim.Process{sender, sim.Silent{}}
	tracer := &sim.RecordingTracer{}
	if _, err := RunCluster(endpoints, procs, rounds, nil, WithRunnerTracer(tracer)); err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	msgs := tracer.Messages()
	// Round r sends are delivered at step r+1, so the last round's send
	// is still in flight when the cluster stops — rounds−1 deliveries.
	if len(msgs) != rounds-1 {
		t.Fatalf("tracer saw %d deliveries, want %d", len(msgs), rounds-1)
	}
	for _, m := range msgs {
		if m.From != 0 || m.To != 1 || m.Kind != model.KindEcho {
			t.Errorf("unexpected traced message %+v", m)
		}
	}
}
