package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/sig"
)

// TCPMesh is a Transport over real TCP sockets. Each node listens on its
// own address; the mesh is completed by having every node dial all peers
// with a LOWER node ID (so each unordered pair gets exactly one
// connection), exchanging a hello frame that names the dialer.
//
// Framing: 4-byte big-endian length prefix per frame, capped at
// maxFrameSize to stop a hostile peer from forcing huge allocations.
type TCPMesh struct {
	self  model.NodeID
	n     int
	cfg   meshConfig
	conns map[model.NodeID]net.Conn

	mu     sync.Mutex
	sendMu []sync.Mutex

	inbox   chan envelope
	closed  chan struct{}
	once    sync.Once
	readers sync.WaitGroup

	failMu  sync.Mutex
	failErr error
}

// meshConfig carries the mesh tunables; the zero value preserves the
// historical behavior (no I/O deadlines, 10 s dial window).
type meshConfig struct {
	ioTimeout  time.Duration
	dialWindow time.Duration
	stats      *ConnStats
}

func (c meshConfig) withDefaults() meshConfig {
	if c.dialWindow == 0 {
		c.dialWindow = dialRetryWindow
	}
	return c
}

// MeshOption configures NewTCPMesh.
type MeshOption func(*meshConfig)

// WithMeshIOTimeout bounds every read and write on the mesh's
// connections. Without it a single dead peer blocks its reader (and the
// lockstep barrier behind it) forever; with it the silence is detected,
// the mesh shuts down, and Recv returns an error naming the peer — the
// runner fails fast instead of hanging. Pick a deadline comfortably
// above the slowest expected round.
func WithMeshIOTimeout(d time.Duration) MeshOption {
	return func(c *meshConfig) { c.ioTimeout = d }
}

// WithMeshDialWindow bounds how long boot-time dials keep retrying
// (default 10 s).
func WithMeshDialWindow(d time.Duration) MeshOption {
	return func(c *meshConfig) { c.dialWindow = d }
}

// WithMeshStats counts the mesh's wire traffic (frames, bytes, dial
// retries) into s. Observation only — framing and failure behavior are
// unchanged.
func WithMeshStats(s *ConnStats) MeshOption {
	return func(c *meshConfig) { c.stats = s }
}

// maxFrameSize bounds one frame (16 MiB), matching the codec's field cap.
const maxFrameSize = 16 << 20

// tcpInboxBuffer bounds buffered inbound frames.
const tcpInboxBuffer = 4096

// NewTCPMesh constructs the mesh for node self. addrs maps every node ID
// (including self) to its listen address. The call blocks until the full
// mesh is connected, so all nodes must be started concurrently.
func NewTCPMesh(self model.NodeID, addrs map[model.NodeID]string, opts ...MeshOption) (*TCPMesh, error) {
	n := len(addrs)
	if !self.Valid(n) {
		return nil, fmt.Errorf("transport: self %v out of range for %d nodes", self, n)
	}
	var cfg meshConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	m := &TCPMesh{
		self:   self,
		n:      n,
		cfg:    cfg.withDefaults(),
		conns:  make(map[model.NodeID]net.Conn, n-1),
		sendMu: make([]sync.Mutex, n),
		inbox:  make(chan envelope, tcpInboxBuffer),
		closed: make(chan struct{}),
	}

	ln, err := net.Listen("tcp", addrs[self])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[self], err)
	}
	defer ln.Close() // the mesh is fixed-size; once complete, stop accepting

	// Accept connections from higher-ID peers (they dial us)...
	expectAccept := n - 1 - int(self)
	acceptErr := make(chan error, 1)
	go func() {
		for i := 0; i < expectAccept; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			peer, err := readHello(conn)
			if err != nil || !peer.Valid(n) || peer <= self {
				conn.Close()
				acceptErr <- fmt.Errorf("transport: bad hello: %v (peer %v)", err, peer)
				return
			}
			m.mu.Lock()
			m.conns[peer] = conn
			m.mu.Unlock()
		}
		acceptErr <- nil
	}()

	// ...and dial all lower-ID peers. Dials retry with capped backoff:
	// when a whole cluster boots concurrently, a peer's listener may come
	// up a moment after our first attempt.
	for p := model.NodeID(0); p < self; p++ {
		conn, retries, err := dialBackoff(addrs[p], m.cfg.dialWindow)
		if m.cfg.stats != nil {
			m.cfg.stats.Redials.Add(int64(retries))
		}
		if err != nil {
			return nil, fmt.Errorf("transport: dial %v at %s: %w", p, addrs[p], err)
		}
		if err := writeHello(conn, self); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: hello to %v: %w", p, err)
		}
		m.mu.Lock()
		m.conns[p] = conn
		m.mu.Unlock()
	}
	if err := <-acceptErr; err != nil {
		return nil, err
	}

	// Start one reader per connection.
	m.mu.Lock()
	for peer, conn := range m.conns {
		m.readers.Add(1)
		go m.readLoop(peer, conn)
	}
	m.mu.Unlock()
	return m, nil
}

// dialRetryWindow bounds how long a boot-time dial keeps retrying.
const dialRetryWindow = 10 * time.Second

var _ Transport = (*TCPMesh)(nil)

// Self implements Transport.
func (m *TCPMesh) Self() model.NodeID { return m.self }

// Peers implements Transport.
func (m *TCPMesh) Peers() []model.NodeID {
	out := make([]model.NodeID, 0, m.n-1)
	for i := 0; i < m.n; i++ {
		if model.NodeID(i) != m.self {
			out = append(out, model.NodeID(i))
		}
	}
	return out
}

// Send implements Transport.
func (m *TCPMesh) Send(to model.NodeID, frame []byte) error {
	m.mu.Lock()
	conn, ok := m.conns[to]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no connection to %v", to)
	}
	m.sendMu[to].Lock()
	defer m.sendMu[to].Unlock()
	if m.cfg.ioTimeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(m.cfg.ioTimeout)); err != nil {
			return err
		}
	}
	if err := writeFrame(conn, frame); err != nil {
		return err
	}
	if s := m.cfg.stats; s != nil {
		s.FramesSent.Add(1)
		s.BytesSent.Add(int64(len(frame)))
	}
	return nil
}

// Recv implements Transport.
func (m *TCPMesh) Recv() (model.NodeID, []byte, error) {
	select {
	case env := <-m.inbox:
		return env.from, env.frame, nil
	case <-m.closed:
		if err := m.failure(); err != nil {
			return model.NoNode, nil, err
		}
		return model.NoNode, nil, ErrClosed
	}
}

// fail records the first peer failure and tears the mesh down so every
// blocked Recv unblocks with the failure instead of hanging on a barrier
// a dead peer will never complete. A deliberate Close is not a failure.
func (m *TCPMesh) fail(peer model.NodeID, err error) {
	select {
	case <-m.closed:
		return // already shutting down
	default:
	}
	m.failMu.Lock()
	if m.failErr == nil {
		m.failErr = fmt.Errorf("transport: peer %v failed: %w", peer, err)
	}
	m.failMu.Unlock()
	m.shutdown()
}

// failure returns the recorded peer failure, if any.
func (m *TCPMesh) failure() error {
	m.failMu.Lock()
	defer m.failMu.Unlock()
	return m.failErr
}

// shutdown closes the mesh without waiting for the readers (Close waits;
// fail is called FROM a reader and must not).
func (m *TCPMesh) shutdown() {
	m.once.Do(func() {
		close(m.closed)
		m.mu.Lock()
		for _, c := range m.conns {
			c.Close()
		}
		m.mu.Unlock()
	})
}

// Close implements Transport.
func (m *TCPMesh) Close() error {
	m.shutdown()
	m.readers.Wait()
	return nil
}

// readLoop pumps frames from one connection into the shared inbox. With
// an I/O deadline configured, a peer that stays silent past it is
// reported through fail, which shuts the whole mesh down — the lockstep
// barrier cannot make progress without every peer anyway.
func (m *TCPMesh) readLoop(peer model.NodeID, conn net.Conn) {
	defer m.readers.Done()
	for {
		if m.cfg.ioTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(m.cfg.ioTimeout)); err != nil {
				m.fail(peer, err)
				return
			}
		}
		frame, err := readFrame(conn)
		if err != nil {
			if m.cfg.ioTimeout > 0 {
				m.fail(peer, err)
			}
			return // without a deadline: closed or corrupted; barrier times out
		}
		if s := m.cfg.stats; s != nil {
			s.FramesRecv.Add(1)
			s.BytesRecv.Add(int64(len(frame)))
		}
		select {
		case m.inbox <- envelope{from: peer, frame: frame}:
		case <-m.closed:
			return
		}
	}
}

// writeFrame writes a length-prefixed frame.
func writeFrame(w io.Writer, frame []byte) error {
	if len(frame) > maxFrameSize {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// readFrame reads a length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", size)
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}

// writeHello identifies the dialer to the acceptor.
func writeHello(conn net.Conn, self model.NodeID) error {
	return writeFrame(conn, sig.NewEncoder().String("hello/v1").Int(int(self)).Encoding())
}

// readHello parses the dialer's identity.
func readHello(conn net.Conn) (model.NodeID, error) {
	frame, err := readFrame(conn)
	if err != nil {
		return model.NoNode, err
	}
	d := sig.NewDecoder(frame)
	if tag := d.String(); tag != "hello/v1" {
		return model.NoNode, fmt.Errorf("transport: bad hello tag %q", tag)
	}
	id := model.NodeID(d.Int())
	if err := d.Finish(); err != nil {
		return model.NoNode, err
	}
	return id, nil
}
