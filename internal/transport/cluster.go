package transport

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// RunCluster drives one process per transport endpoint, each in its own
// goroutine, for maxRounds lockstep rounds, and returns the views indexed
// by node ID. It is the multi-node counterpart of sim.Engine.Run for real
// transports; cmd/fdnet and the integration tests use it.
func RunCluster(endpoints []Transport, procs []sim.Process, maxRounds int, counters *metrics.Counters, opts ...RunnerOption) ([]model.View, error) {
	if len(endpoints) != len(procs) {
		return nil, fmt.Errorf("transport: %d endpoints for %d processes", len(endpoints), len(procs))
	}
	views := make([]model.View, len(procs))
	errs := make([]error, len(procs))
	var wg sync.WaitGroup
	for i := range procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := NewRunner(endpoints[i], procs[i], counters, opts...)
			v, err := r.Run(maxRounds)
			views[i] = v
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return views, fmt.Errorf("transport: node %d: %w", i, err)
		}
	}
	return views, nil
}
