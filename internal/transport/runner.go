package transport

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Runner drives one sim.Process over a Transport, recovering lockstep
// rounds with a DONE-marker barrier. Every node of a cluster runs its own
// Runner (its own goroutine or its own OS process); together they execute
// exactly the runs the simulator executes, message for message.
type Runner struct {
	tr       Transport
	proc     sim.Process
	counters *metrics.Counters
	tracer   sim.Tracer
	netPick  func(model.NodeID) sim.Network
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithRunnerTracer attaches a message tracer observing every message
// the runner delivers to its process — the same seam, with the same
// delivery order, as sim.WithTracer, so a socket run's trace is
// comparable line for line with a simulator run's. The tracer must be
// safe for concurrent use when runners share it (RunCluster does).
func WithRunnerTracer(t sim.Tracer) RunnerOption {
	return func(r *Runner) { r.tracer = t }
}

// WithRunnerNetwork attaches a sender-side network model: every message
// the runner emits is offered to pick(self).Fate exactly as the lockstep
// engine offers it (after From/Round stamping, before counting), so a
// socket run under degradation stays message-for-message identical to
// the simulator run with the same model. pick is called once per runner
// with the node's own ID and must return a model private to that node —
// only the self→* link streams are ever drawn from, which is what keeps
// concurrent runners equal to the one-model lockstep engine. Delayed
// messages are restamped with their effective send round and shipped
// immediately; the receiver's round+1 buffering then delivers them late,
// matching the engine's delivery queue. DONE barriers are never
// degraded: the paper's synchrony bound is modeled inside the round
// structure, not by breaking the round structure itself.
func WithRunnerNetwork(pick func(self model.NodeID) sim.Network) RunnerOption {
	return func(r *Runner) { r.netPick = pick }
}

// NewRunner wraps a process for execution over tr. counters may be nil.
func NewRunner(tr Transport, proc sim.Process, counters *metrics.Counters, opts ...RunnerOption) *Runner {
	r := &Runner{tr: tr, proc: proc, counters: counters}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Run executes maxRounds lockstep rounds and returns the node's view.
// It must be called concurrently on every node of the cluster; the barrier
// deadlocks (until transport close) if a peer never participates, so
// callers should close the transport on timeout — in the paper's model N1
// rules lost messages out, and the demos inherit that assumption.
func (r *Runner) Run(maxRounds int) (model.View, error) {
	self := r.tr.Self()
	view := model.View{Node: self}
	peers := r.tr.Peers()
	var net sim.Network
	if r.netPick != nil {
		net = r.netPick(self)
	}

	// pending[round] buffers messages that arrive before we reach their
	// round (a faster peer may race ahead by one barrier).
	pendingMsgs := make(map[int][]model.Message)
	pendingDone := make(map[int]map[model.NodeID]bool)
	markDone := func(round int, from model.NodeID) {
		if pendingDone[round] == nil {
			pendingDone[round] = make(map[model.NodeID]bool)
		}
		pendingDone[round][from] = true
	}

	for round := 1; round <= maxRounds; round++ {
		inbox := pendingMsgs[round]
		delete(pendingMsgs, round)
		sim.SortMessages(inbox)
		view.Append(inbox)
		if r.tracer != nil {
			for _, m := range inbox {
				r.tracer.Delivered(m)
			}
		}

		out := r.proc.Step(round, inbox)
		for _, m := range out {
			if !m.To.Valid(len(peers)+1) || m.To == self {
				continue
			}
			m.From = self
			m.Round = round
			if net != nil {
				switch d := net.Fate(m, round); {
				case d < 0:
					// Lost on the wire: counted as sent (the sender did the
					// work), never shipped — exactly the engine's drop path.
					if r.counters != nil {
						r.counters.Record(m)
					}
					continue
				case d > 0:
					// Delayed d rounds: restamp as if sent later and ship
					// now; the receiver buffers it for round m.Round+1.
					m.Round = round + d
				}
			}
			if r.counters != nil {
				r.counters.Record(m)
			}
			if err := r.tr.Send(m.To, encodeFrame(frameMessage, m.Round, m.Kind, m.Payload)); err != nil {
				return view, fmt.Errorf("transport: send round %d: %w", round, err)
			}
		}
		// Announce completion of this round to every peer. The marker is
		// identical for all of them, so encode it once, not per peer.
		done := encodeFrame(frameDone, round, 0, nil)
		for _, p := range peers {
			if err := r.tr.Send(p, done); err != nil {
				return view, fmt.Errorf("transport: done round %d: %w", round, err)
			}
		}
		// Collect DONE(round) from all peers; buffer any round+1 traffic
		// that overtakes the barrier.
		for len(pendingDone[round]) < len(peers) {
			from, frame, err := r.tr.Recv()
			if err != nil {
				return view, fmt.Errorf("transport: recv round %d: %w", round, err)
			}
			ftype, frnd, kind, payload, err := decodeFrame(frame)
			if err != nil {
				// A malformed frame is a faulty peer; note it as traffic
				// for the process to judge (it cannot be attributed to a
				// protocol round, so it is dropped here — the protocol's
				// deadline logic treats the silence correctly).
				continue
			}
			switch ftype {
			case frameDone:
				markDone(frnd, from)
			case frameMessage:
				// Messages sent in round r are delivered at step r+1, as
				// in the simulator.
				pendingMsgs[frnd+1] = append(pendingMsgs[frnd+1], model.Message{
					From:    from,
					To:      self,
					Round:   frnd,
					Kind:    kind,
					Payload: payload,
				})
			}
		}
		delete(pendingDone, round)
	}
	return view, nil
}
