package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestPipeRoundTripAndClose(t *testing.T) {
	a, b := Pipe()
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	// Closing EITHER end abruptly kills the link, dropping anything
	// buffered — the simulated-crash semantics the scheduler tests need.
	if err := a.Send([]byte("in flight")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	b.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close = %v, want ErrClosed", err)
	}
	if err := a.Send([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after peer close = %v, want ErrClosed", err)
	}
}

func TestPipeAcceptor(t *testing.T) {
	acc := NewPipeAcceptor()
	done := make(chan Conn, 1)
	go func() {
		c, err := acc.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
		}
		done <- c
	}()
	client, err := acc.Dial()
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	server := <-done
	if err := client.Send([]byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got, err := server.Recv(); err != nil || string(got) != "ping" {
		t.Fatalf("Recv = %q, %v", got, err)
	}
	acc.Close()
	if _, err := acc.Accept(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Accept after close = %v, want ErrClosed", err)
	}
}

func TestTCPConnRoundTripWithDeadlines(t *testing.T) {
	l, err := ListenConn("127.0.0.1:0", WithConnReadTimeout(2*time.Second), WithConnWriteTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("ListenConn: %v", err)
	}
	defer l.Close()
	accepted := make(chan Conn, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	client, err := DialConn(l.Addr(), WithConnReadTimeout(2*time.Second))
	if err != nil {
		t.Fatalf("DialConn: %v", err)
	}
	server := <-accepted
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	if err := client.Send(payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if got, err := server.Recv(); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Recv len=%d err=%v", len(got), err)
	}
	// A silent peer trips the read deadline instead of hanging forever.
	short, err := DialConn(l.Addr(), WithConnReadTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatalf("DialConn: %v", err)
	}
	<-accepted // drain the acceptor's second conn
	start := time.Now()
	if _, err := short.Recv(); err == nil {
		t.Fatal("Recv from silent peer returned nil error, want timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("read deadline took %v to fire", time.Since(start))
	}
	client.Close()
	server.Close()
	short.Close()
}

func TestDialConnRetriesUntilListenerAppears(t *testing.T) {
	// Reserve an address, close it, dial it BEFORE the listener is back:
	// the capped-backoff dial window must bridge the gap.
	probe, err := ListenConn("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenConn: %v", err)
	}
	addr := probe.Addr()
	probe.Close()

	type dialed struct {
		conn Conn
		err  error
	}
	ch := make(chan dialed, 1)
	go func() {
		c, err := DialConn(addr, WithConnDialWindow(5*time.Second))
		ch <- dialed{c, err}
	}()
	time.Sleep(100 * time.Millisecond)
	l, err := ListenConn(addr)
	if err != nil {
		t.Fatalf("ListenConn (relisten): %v", err)
	}
	defer l.Close()
	go l.Accept()
	d := <-ch
	if d.err != nil {
		t.Fatalf("DialConn with retry window: %v", d.err)
	}
	d.conn.Close()
}
