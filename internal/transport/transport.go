// Package transport runs the lockstep protocols over real byte transports
// — an in-memory mesh for tests and a TCP mesh (stdlib net) for actual
// sockets — demonstrating that nothing in the library depends on the
// simulator.
//
// The model's synchronous rounds are recovered over an asynchronous
// transport with a standard synchronizer: each node sends its round-r
// protocol messages followed by a round-r DONE marker to every peer, and
// advances to round r+1 only after collecting DONE(r) from all peers.
// Reliable in-order delivery (TCP / channels) plus the barrier gives
// exactly the delivery guarantee N1 demands; the identity of the immediate
// sender (N2) is the connection's identity.
//
// Trust note: the TCP mesh authenticates peers by a plaintext hello frame,
// which is fine for the single-trust-domain demos in cmd/fdnet and the
// tests. A hostile-network deployment would pin peer identity with mTLS;
// that is orthogonal to the paper's protocols, which only need N2 as an
// oracle for the OUTERMOST hop — everything else rides on the signatures.
package transport

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/sig"
)

// Transport delivers raw frames between nodes. Implementations must allow
// concurrent Send and Recv.
type Transport interface {
	// Self returns the local node ID.
	Self() model.NodeID
	// Peers returns the IDs of all reachable peers.
	Peers() []model.NodeID
	// Send transmits one frame to a peer.
	Send(to model.NodeID, frame []byte) error
	// Recv blocks for the next frame and its sender. It returns an error
	// when the transport closes.
	Recv() (from model.NodeID, frame []byte, err error)
	// Close releases the transport's resources.
	Close() error
}

// ErrClosed is returned by Recv after Close.
var ErrClosed = errors.New("transport: closed")

// Frame types multiplexed on the wire.
const (
	frameMessage = 1 // a protocol message
	frameDone    = 2 // round-completion marker
)

// encodeFrame packs a protocol message or DONE marker in one
// exactly-sized allocation.
func encodeFrame(ftype int, round int, kind model.MessageKind, payload []byte) []byte {
	out := make([]byte, 0, 3*sig.IntFieldSize+sig.BytesFieldSize(len(payload)))
	out = sig.AppendInt(out, ftype)
	out = sig.AppendInt(out, round)
	out = sig.AppendInt(out, int(kind))
	return sig.AppendBytes(out, payload)
}

// decodeFrame unpacks a frame.
func decodeFrame(frame []byte) (ftype, round int, kind model.MessageKind, payload []byte, err error) {
	d := sig.NewDecoder(frame)
	ftype = d.Int()
	round = d.Int()
	kind = model.MessageKind(d.Int())
	payload = d.Bytes()
	if ferr := d.Finish(); ferr != nil {
		return 0, 0, 0, nil, fmt.Errorf("transport: bad frame: %w", ferr)
	}
	return ftype, round, kind, payload, nil
}
