package transport_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/transport"
)

// buildEndpoints returns one Transport per node for the given mesh kind.
func buildEndpoints(t *testing.T, kind string, n int) []transport.Transport {
	t.Helper()
	switch kind {
	case "memory":
		mesh := transport.NewMemoryMesh(n)
		out := make([]transport.Transport, n)
		for i := 0; i < n; i++ {
			out[i] = mesh.Endpoint(model.NodeID(i))
		}
		return out
	case "tcp":
		addrs := make(map[model.NodeID]string, n)
		for i := 0; i < n; i++ {
			addrs[model.NodeID(i)] = freeAddr(t)
		}
		out := make([]transport.Transport, n)
		done := make(chan struct{})
		errCh := make(chan error, n)
		for i := 0; i < n; i++ {
			go func(i int) {
				m, err := transport.NewTCPMesh(model.NodeID(i), addrs)
				if err != nil {
					errCh <- fmt.Errorf("node %d: %w", i, err)
					return
				}
				out[i] = m
				errCh <- nil
			}(i)
		}
		go func() { defer close(done) }()
		for i := 0; i < n; i++ {
			if err := <-errCh; err != nil {
				t.Fatalf("mesh: %v", err)
			}
		}
		return out
	default:
		t.Fatalf("unknown mesh kind %q", kind)
		return nil
	}
}

// freeAddr reserves a localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestFullLifecycleOverTransports runs key distribution AND a chain FD
// run over each transport, asserting the exact message counts and
// decisions the simulator produces — the protocols are transport-agnostic.
func TestFullLifecycleOverTransports(t *testing.T) {
	for _, kind := range []string{"memory", "tcp"} {
		t.Run(kind, func(t *testing.T) {
			n, tol := 5, 1
			cfg := model.Config{N: n, T: tol}
			scheme, err := sig.ByName(sig.SchemeEd25519)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}

			// Phase 1: key distribution.
			endpoints := buildEndpoints(t, kind, n)
			defer func() {
				for _, ep := range endpoints {
					ep.Close()
				}
			}()
			kdNodes := make([]*keydist.Node, n)
			kdProcs := make([]sim.Process, n)
			for i := 0; i < n; i++ {
				node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(77, i)))
				if err != nil {
					t.Fatalf("NewNode: %v", err)
				}
				kdNodes[i] = node
				kdProcs[i] = node
			}
			counters := metrics.NewCounters()
			if _, err := transport.RunCluster(endpoints, kdProcs, keydist.RoundsTotal, counters); err != nil {
				t.Fatalf("RunCluster(keydist): %v", err)
			}
			if got, want := counters.Messages(), keydist.ExpectedMessages(n); got != want {
				t.Errorf("keydist messages = %d, want %d", got, want)
			}
			for _, node := range kdNodes {
				if !node.Accepted() {
					t.Fatalf("%v accepted %d/%d predicates over %s", node.ID(), node.Directory().Len(), n, kind)
				}
			}

			// Phase 2: chain failure discovery over the SAME mesh.
			value := []byte("over the wire")
			fdNodes := make([]*fd.ChainNode, n)
			fdProcs := make([]sim.Process, n)
			for i := 0; i < n; i++ {
				var opts []fd.ChainOption
				if model.NodeID(i) == fd.Sender {
					opts = append(opts, fd.WithValue(value))
				}
				node, err := fd.NewChainNode(cfg, model.NodeID(i), kdNodes[i].Signer(), kdNodes[i].Directory(), opts...)
				if err != nil {
					t.Fatalf("NewChainNode: %v", err)
				}
				fdNodes[i] = node
				fdProcs[i] = node
			}
			fdCounters := metrics.NewCounters()
			if _, err := transport.RunCluster(endpoints, fdProcs, fd.ChainEngineRounds(tol), fdCounters); err != nil {
				t.Fatalf("RunCluster(fd): %v", err)
			}
			if got, want := fdCounters.Messages(), n-1; got != want {
				t.Errorf("fd messages = %d, want %d", got, want)
			}
			for _, node := range fdNodes {
				o := node.Outcome()
				if !o.Decided || !bytes.Equal(o.Value, value) {
					t.Errorf("%v outcome over %s: %v", o.Node, kind, o)
				}
			}
		})
	}
}

func TestMemoryMeshBasics(t *testing.T) {
	mesh := transport.NewMemoryMesh(3)
	a := mesh.Endpoint(0)
	b := mesh.Endpoint(1)
	if a.Self() != 0 {
		t.Errorf("Self = %v", a.Self())
	}
	if got := a.Peers(); len(got) != 2 {
		t.Errorf("Peers = %v", got)
	}
	if err := a.Send(1, []byte("ping")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	from, frame, err := b.Recv()
	if err != nil || from != 0 || string(frame) != "ping" {
		t.Errorf("Recv = %v %q %v", from, frame, err)
	}
	if err := a.Send(0, []byte("self")); err == nil {
		t.Error("send-to-self accepted")
	}
	if err := a.Send(9, []byte("oob")); err == nil {
		t.Error("out-of-range destination accepted")
	}
	b.Close()
	if _, _, err := b.Recv(); err == nil {
		t.Error("Recv after Close succeeded")
	}
}

func TestTCPMeshCloseUnblocksRecv(t *testing.T) {
	endpoints := buildEndpoints(t, "tcp", 2)
	done := make(chan error, 1)
	go func() {
		_, _, err := endpoints[0].Recv()
		done <- err
	}()
	endpoints[0].Close()
	if err := <-done; err == nil {
		t.Error("Recv not unblocked by Close")
	}
	endpoints[1].Close()
}
