package transport

import (
	"fmt"
	"sync"

	"repro/internal/model"
)

// MemoryMesh is an in-process Transport: every node gets a buffered
// channel; Send posts to the destination's channel. It is the reference
// Transport implementation used by tests, with the same semantics the TCP
// mesh provides over sockets.
type MemoryMesh struct {
	n      int
	boxes  []chan envelope
	closed []chan struct{}
	once   []sync.Once
}

type envelope struct {
	from  model.NodeID
	frame []byte
}

// memoryBuffer bounds each node's inbox; generous enough for every
// protocol in the repository at the demo scales.
const memoryBuffer = 4096

// NewMemoryMesh creates a fully connected in-memory mesh of n nodes.
func NewMemoryMesh(n int) *MemoryMesh {
	m := &MemoryMesh{
		n:      n,
		boxes:  make([]chan envelope, n),
		closed: make([]chan struct{}, n),
		once:   make([]sync.Once, n),
	}
	for i := range m.boxes {
		m.boxes[i] = make(chan envelope, memoryBuffer)
		m.closed[i] = make(chan struct{})
	}
	return m
}

// Endpoint returns node id's Transport view of the mesh.
func (m *MemoryMesh) Endpoint(id model.NodeID) Transport {
	return &memoryEndpoint{mesh: m, self: id}
}

type memoryEndpoint struct {
	mesh *MemoryMesh
	self model.NodeID
}

var _ Transport = (*memoryEndpoint)(nil)

func (e *memoryEndpoint) Self() model.NodeID { return e.self }

func (e *memoryEndpoint) Peers() []model.NodeID {
	out := make([]model.NodeID, 0, e.mesh.n-1)
	for i := 0; i < e.mesh.n; i++ {
		if model.NodeID(i) != e.self {
			out = append(out, model.NodeID(i))
		}
	}
	return out
}

func (e *memoryEndpoint) Send(to model.NodeID, frame []byte) error {
	if !to.Valid(e.mesh.n) || to == e.self {
		return fmt.Errorf("transport: invalid destination %v", to)
	}
	cp := append([]byte(nil), frame...)
	select {
	case e.mesh.boxes[to] <- envelope{from: e.self, frame: cp}:
		return nil
	case <-e.mesh.closed[to]:
		return ErrClosed
	}
}

func (e *memoryEndpoint) Recv() (model.NodeID, []byte, error) {
	select {
	case env := <-e.mesh.boxes[e.self]:
		return env.from, env.frame, nil
	case <-e.mesh.closed[e.self]:
		return model.NoNode, nil, ErrClosed
	}
}

func (e *memoryEndpoint) Close() error {
	e.mesh.once[e.self].Do(func() { close(e.mesh.closed[e.self]) })
	return nil
}
