package transport_test

import (
	"bytes"
	"testing"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
	"repro/internal/transport"
)

// byzantineEndpointProc drives raw garbage frames and spoof attempts
// through a real transport while correct peers run the chain protocol:
// the runner and decoders must neither panic nor mis-deliver.
func TestRunnerSurvivesGarbageFrames(t *testing.T) {
	n, tol := 5, 1
	cfg := model.Config{N: n, T: tol}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	mesh := transport.NewMemoryMesh(n)

	// Correct nodes 0,2,3,4 run key distribution + FD; node 1 is a raw
	// byzantine endpoint that sends garbage frames directly.
	kdNodes := make([]*keydist.Node, n)
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(int64(i)))
		if err != nil {
			t.Fatalf("NewNode: %v", err)
		}
		kdNodes[i] = node
	}

	// The garbage node: floods junk, then plays DONE markers correctly so
	// the barrier still advances. It uses the Runner with a process that
	// emits junk payloads of a VALID frame shape plus raw junk frames via
	// the endpoint directly.
	garbage := sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		var out []model.Message
		for to := 0; to < n; to++ {
			if to == 1 {
				continue
			}
			out = append(out, model.Message{
				To:      model.NodeID(to),
				Kind:    model.MessageKind(37),
				Payload: bytes.Repeat([]byte{0xAB}, 33),
			})
		}
		return out
	})

	procs := make([]sim.Process, n)
	endpoints := make([]transport.Transport, n)
	for i := 0; i < n; i++ {
		endpoints[i] = mesh.Endpoint(model.NodeID(i))
		if i == 1 {
			procs[i] = garbage
		} else {
			procs[i] = kdNodes[i]
		}
	}
	if _, err := transport.RunCluster(endpoints, procs, keydist.RoundsTotal, nil); err != nil {
		t.Fatalf("RunCluster(keydist): %v", err)
	}
	for i, node := range kdNodes {
		if node == nil {
			continue
		}
		// Correct nodes accepted each other despite the junk.
		for j := 0; j < n; j++ {
			if j == 1 || j == i {
				continue
			}
			if _, ok := node.Directory().PredicateOf(model.NodeID(j)); !ok {
				t.Errorf("%v lost %v's key to garbage traffic", node.ID(), model.NodeID(j))
			}
		}
		if _, ok := node.Directory().PredicateOf(1); ok {
			t.Errorf("%v accepted the garbage node", node.ID())
		}
	}

	// FD run over the same mesh with node 1 still spraying junk: the
	// chain routes P0→P1→… so with P1 byzantine the chain dies — but
	// every correct node must terminate with decide-or-discover.
	fdNodes := make([]*fd.ChainNode, n)
	for i := 0; i < n; i++ {
		if i == 1 {
			procs[i] = garbage
			continue
		}
		var opts []fd.ChainOption
		if model.NodeID(i) == fd.Sender {
			opts = append(opts, fd.WithValue([]byte("v")))
		}
		node, err := fd.NewChainNode(cfg, model.NodeID(i), kdNodes[i].Signer(), kdNodes[i].Directory(), opts...)
		if err != nil {
			t.Fatalf("NewChainNode: %v", err)
		}
		fdNodes[i] = node
		procs[i] = node
	}
	if _, err := transport.RunCluster(endpoints, procs, fd.ChainEngineRounds(tol), nil); err != nil {
		t.Fatalf("RunCluster(fd): %v", err)
	}
	for _, node := range fdNodes {
		if node == nil {
			continue
		}
		o := node.Outcome()
		if !o.Decided && o.Discovery == nil {
			t.Errorf("%v neither decided nor discovered (F1 over transport)", o.Node)
		}
	}
}

func TestRunnerViewMatchesSimulator(t *testing.T) {
	// The same deterministic processes produce the same outcomes under
	// the simulator and over the memory transport.
	n, tol := 4, 1
	cfg := model.Config{N: n, T: tol}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}

	build := func() ([]sim.Process, []*fd.ChainNode, []*keydist.Node) {
		kd := make([]*keydist.Node, n)
		for i := 0; i < n; i++ {
			node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(9, i)))
			if err != nil {
				t.Fatalf("NewNode: %v", err)
			}
			kd[i] = node
		}
		procs := make([]sim.Process, n)
		for i := range kd {
			procs[i] = kd[i]
		}
		return procs, nil, kd
	}

	// Simulator path.
	procsA, _, kdA := build()
	engine, err := sim.New(cfg, procsA)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	engine.Run(keydist.RoundsTotal)

	// Transport path.
	procsB, _, kdB := build()
	mesh := transport.NewMemoryMesh(n)
	endpoints := make([]transport.Transport, n)
	for i := range endpoints {
		endpoints[i] = mesh.Endpoint(model.NodeID(i))
	}
	if _, err := transport.RunCluster(endpoints, procsB, keydist.RoundsTotal, nil); err != nil {
		t.Fatalf("RunCluster: %v", err)
	}

	// Identical directories (same seeds → same keys → same fingerprints).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pa, oka := kdA[i].Directory().PredicateOf(model.NodeID(j))
			pb, okb := kdB[i].Directory().PredicateOf(model.NodeID(j))
			if oka != okb {
				t.Fatalf("presence mismatch at (%d,%d)", i, j)
			}
			if oka && pa.Fingerprint() != pb.Fingerprint() {
				t.Errorf("fingerprint mismatch at (%d,%d)", i, j)
			}
		}
	}
}
