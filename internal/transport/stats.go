package transport

import (
	"fmt"
	"sync/atomic"
)

// ConnStats counts one link's wire traffic: frames and payload bytes in
// each direction, plus dial retries. All fields are atomics, so a conn
// being used concurrently (heartbeat goroutine + main loop) updates
// them without locks and any goroutine may Snapshot mid-flight. Attach
// to a TCP conn with WithConnStats or wrap any Conn with CountConn;
// several conns may share one ConnStats to aggregate a whole process's
// traffic.
type ConnStats struct {
	FramesSent atomic.Int64
	FramesRecv atomic.Int64
	BytesSent  atomic.Int64
	BytesRecv  atomic.Int64
	// Redials counts failed dial attempts that were retried (a dial that
	// succeeds first try contributes zero).
	Redials atomic.Int64
}

// Snapshot returns a point-in-time copy of the counters.
func (s *ConnStats) Snapshot() ConnStatsSnapshot {
	return ConnStatsSnapshot{
		FramesSent: s.FramesSent.Load(),
		FramesRecv: s.FramesRecv.Load(),
		BytesSent:  s.BytesSent.Load(),
		BytesRecv:  s.BytesRecv.Load(),
		Redials:    s.Redials.Load(),
	}
}

// ConnStatsSnapshot is a plain-data copy of a ConnStats.
type ConnStatsSnapshot struct {
	FramesSent int64 `json:"frames_sent"`
	FramesRecv int64 `json:"frames_recv"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecv  int64 `json:"bytes_recv"`
	Redials    int64 `json:"redials"`
}

// String renders the snapshot on one line.
func (s ConnStatsSnapshot) String() string {
	return fmt.Sprintf("sent=%d/%dB recv=%d/%dB redials=%d",
		s.FramesSent, s.BytesSent, s.FramesRecv, s.BytesRecv, s.Redials)
}

// WithConnStats attaches a counter set to the conn: every successful
// Send/Recv bumps frames and payload bytes, and DialConn adds its
// retried dial attempts. Counting is observation only — framing and
// error behavior are unchanged.
func WithConnStats(s *ConnStats) ConnOption {
	return func(c *connConfig) { c.stats = s }
}

// CountConn wraps any Conn so its traffic lands in s. It is the
// counting path for conns that are not built through the ConnOption
// plumbing (in-memory pipes, fault-injection wrappers).
func CountConn(c Conn, s *ConnStats) Conn {
	if s == nil {
		return c
	}
	return &countConn{Conn: c, stats: s}
}

type countConn struct {
	Conn
	stats *ConnStats
}

func (c *countConn) Send(frame []byte) error {
	err := c.Conn.Send(frame)
	if err == nil {
		c.stats.FramesSent.Add(1)
		c.stats.BytesSent.Add(int64(len(frame)))
	}
	return err
}

func (c *countConn) Recv() ([]byte, error) {
	frame, err := c.Conn.Recv()
	if err == nil {
		c.stats.FramesRecv.Add(1)
		c.stats.BytesRecv.Add(int64(len(frame)))
	}
	return frame, err
}
