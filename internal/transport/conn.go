package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Point-to-point framed connections. The mesh types (MemoryMesh, TCPMesh)
// model the all-to-all topology the agreement protocols need; the
// campaign scheduler (internal/sched) instead needs plain client/server
// links — a coordinator accepting many workers — so this file provides
// the minimal framed-connection vocabulary: an in-memory Pipe for tests
// and a TCP implementation with configurable I/O deadlines and
// capped-backoff connect retry, reusing the mesh's length-prefixed
// framing (writeFrame/readFrame) so both families speak the same wire
// format.

// Conn is one bidirectional framed link. Send and Recv must be safe for
// concurrent use (a worker heartbeats while its main loop sends results).
type Conn interface {
	// Send transmits one frame.
	Send(frame []byte) error
	// Recv blocks for the next frame; it returns an error when the link
	// closes or (when configured) an I/O deadline expires.
	Recv() ([]byte, error)
	// Close tears the link down; pending and future Recv calls fail.
	Close() error
}

// Acceptor produces inbound Conns; *TCPConnListener implements it, and
// tests substitute in-memory acceptors built on Pipe.
type Acceptor interface {
	Accept() (Conn, error)
}

// connBuffer bounds each pipe direction's buffered frames.
const connBuffer = 256

// Pipe returns two connected in-memory Conns. Closing either end tears
// down both directions abruptly — buffered frames are dropped, exactly
// like a TCP reset — which is what the fault-injection harness wants
// from a simulated crash.
func Pipe() (Conn, Conn) {
	ab := make(chan []byte, connBuffer)
	ba := make(chan []byte, connBuffer)
	done := make(chan struct{})
	once := new(sync.Once)
	a := &pipeConn{out: ab, in: ba, done: done, once: once}
	b := &pipeConn{out: ba, in: ab, done: done, once: once}
	return a, b
}

type pipeConn struct {
	out, in chan []byte
	done    chan struct{}
	once    *sync.Once
}

func (p *pipeConn) Send(frame []byte) error {
	// Check done first: a closed pipe must refuse traffic even while the
	// buffers still have room (select otherwise picks arms at random).
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	cp := append([]byte(nil), frame...)
	select {
	case p.out <- cp:
		return nil
	case <-p.done:
		return ErrClosed
	}
}

func (p *pipeConn) Recv() ([]byte, error) {
	select {
	case <-p.done:
		return nil, ErrClosed
	default:
	}
	select {
	case frame := <-p.in:
		return frame, nil
	case <-p.done:
		return nil, ErrClosed
	}
}

func (p *pipeConn) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// PipeAcceptor is an in-memory Acceptor: Dial produces the client end of
// a fresh Pipe and queues the server end for Accept. It lets scheduler
// tests exercise the full accept path without sockets.
type PipeAcceptor struct {
	pending chan Conn
	done    chan struct{}
	once    sync.Once
}

// NewPipeAcceptor returns an empty in-memory acceptor.
func NewPipeAcceptor() *PipeAcceptor {
	return &PipeAcceptor{pending: make(chan Conn, 16), done: make(chan struct{})}
}

// Dial connects a new client to the acceptor and returns the client end.
func (a *PipeAcceptor) Dial() (Conn, error) {
	client, server := Pipe()
	select {
	case a.pending <- server:
		return client, nil
	case <-a.done:
		client.Close()
		return nil, ErrClosed
	}
}

// Accept implements Acceptor.
func (a *PipeAcceptor) Accept() (Conn, error) {
	select {
	case conn := <-a.pending:
		return conn, nil
	case <-a.done:
		return nil, ErrClosed
	}
}

// Close stops the acceptor; blocked Dial and Accept calls fail.
func (a *PipeAcceptor) Close() error {
	a.once.Do(func() { close(a.done) })
	return nil
}

// connConfig carries the tunable Conn behaviors; the zero value is the
// historical behavior (no deadlines, 10 s dial window).
type connConfig struct {
	readTimeout  time.Duration
	writeTimeout time.Duration
	dialWindow   time.Duration
	stats        *ConnStats
}

func (c connConfig) withDefaults() connConfig {
	if c.dialWindow == 0 {
		c.dialWindow = dialRetryWindow
	}
	return c
}

// ConnOption configures DialConn, ListenConn, and NewTCPConn.
type ConnOption func(*connConfig)

// WithConnReadTimeout bounds each Recv: a peer that goes silent for d
// fails the read instead of blocking forever. Leave unset for links
// whose idle periods are legitimate (a worker waiting for its next
// lease) and rely on application-level deadlines instead.
func WithConnReadTimeout(d time.Duration) ConnOption {
	return func(c *connConfig) { c.readTimeout = d }
}

// WithConnWriteTimeout bounds each Send: a peer that stops draining its
// socket fails the write after d instead of blocking the sender forever.
func WithConnWriteTimeout(d time.Duration) ConnOption {
	return func(c *connConfig) { c.writeTimeout = d }
}

// WithConnDialWindow bounds how long DialConn keeps retrying a refused
// connection (default 10 s).
func WithConnDialWindow(d time.Duration) ConnOption {
	return func(c *connConfig) { c.dialWindow = d }
}

// DialConn connects to a listening peer, retrying refused connections
// with capped exponential backoff for the configured window — a worker
// started moments before its coordinator must converge, not die.
func DialConn(addr string, opts ...ConnOption) (Conn, error) {
	var cfg connConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	raw, retries, err := dialBackoff(addr, cfg.dialWindow)
	if cfg.stats != nil {
		cfg.stats.Redials.Add(int64(retries))
	}
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPConn(raw, opts...), nil
}

// NewTCPConn wraps an established net.Conn as a framed Conn.
func NewTCPConn(raw net.Conn, opts ...ConnOption) Conn {
	var cfg connConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return &tcpConn{raw: raw, cfg: cfg}
}

type tcpConn struct {
	raw    net.Conn
	cfg    connConfig
	sendMu sync.Mutex
}

func (c *tcpConn) Send(frame []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.cfg.writeTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.cfg.writeTimeout)); err != nil {
			return err
		}
	}
	if err := writeFrame(c.raw, frame); err != nil {
		return err
	}
	if s := c.cfg.stats; s != nil {
		s.FramesSent.Add(1)
		s.BytesSent.Add(int64(len(frame)))
	}
	return nil
}

func (c *tcpConn) Recv() ([]byte, error) {
	if c.cfg.readTimeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.cfg.readTimeout)); err != nil {
			return nil, err
		}
	}
	frame, err := readFrame(c.raw)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	if s := c.cfg.stats; s != nil {
		s.FramesRecv.Add(1)
		s.BytesRecv.Add(int64(len(frame)))
	}
	return frame, nil
}

func (c *tcpConn) Close() error { return c.raw.Close() }

// TCPConnListener accepts framed Conns on a TCP address.
type TCPConnListener struct {
	ln   net.Listener
	opts []ConnOption
}

// ListenConn starts a TCP listener whose accepted Conns carry the given
// options.
func ListenConn(addr string, opts ...ConnOption) (*TCPConnListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &TCPConnListener{ln: ln, opts: opts}, nil
}

// Accept implements Acceptor.
func (l *TCPConnListener) Accept() (Conn, error) {
	raw, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return NewTCPConn(raw, l.opts...), nil
}

// Addr returns the bound address (useful with ":0").
func (l *TCPConnListener) Addr() string { return l.ln.Addr().String() }

// Close stops accepting; established Conns are unaffected.
func (l *TCPConnListener) Close() error { return l.ln.Close() }

// dialBackoff dials addr with capped exponential backoff: 10 ms doubling
// to 640 ms between attempts, for up to window. retries counts the
// failed attempts (0 when the first dial connects).
func dialBackoff(addr string, window time.Duration) (conn net.Conn, retries int, err error) {
	const (
		backoffStart = 10 * time.Millisecond
		backoffCap   = 640 * time.Millisecond
	)
	deadline := time.Now().Add(window)
	delay := backoffStart
	for {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			return conn, retries, nil
		}
		retries++
		if time.Now().After(deadline) {
			return nil, retries, err
		}
		time.Sleep(delay)
		if delay < backoffCap {
			delay *= 2
		}
	}
}
