package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNodeIDString(t *testing.T) {
	if got := NodeID(3).String(); got != "P3" {
		t.Errorf("String = %q", got)
	}
	if got := NoNode.String(); got != "P(none)" {
		t.Errorf("NoNode.String = %q", got)
	}
}

func TestNodeIDValid(t *testing.T) {
	cases := []struct {
		id   NodeID
		n    int
		want bool
	}{
		{0, 4, true}, {3, 4, true}, {4, 4, false}, {-1, 4, false}, {NoNode, 100, false},
	}
	for _, c := range cases {
		if got := c.id.Valid(c.n); got != c.want {
			t.Errorf("(%v).Valid(%d) = %v, want %v", c.id, c.n, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	valid := []Config{{N: 2, T: 0}, {N: 4, T: 3}, {N: 100, T: 0}}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	invalid := []Config{{N: 0, T: 0}, {N: 1, T: 0}, {N: 4, T: -1}, {N: 4, T: 4}, {N: 4, T: 9}}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", c)
		}
	}
}

func TestConfigNodes(t *testing.T) {
	nodes := Config{N: 3, T: 0}.Nodes()
	if len(nodes) != 3 || nodes[0] != 0 || nodes[2] != 2 {
		t.Errorf("Nodes = %v", nodes)
	}
}

func TestViewAppendAndReceive(t *testing.T) {
	v := View{Node: 1}
	v.Append([]Message{{From: 0, To: 1, Kind: KindPlainValue}})
	v.Append(nil)
	v.Append([]Message{{From: 2, To: 1}, {From: 3, To: 1}})
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := len(v.Received(1)); got != 1 {
		t.Errorf("round 1: %d messages", got)
	}
	if got := len(v.Received(2)); got != 0 {
		t.Errorf("round 2: %d messages", got)
	}
	if got := len(v.Received(3)); got != 2 {
		t.Errorf("round 3: %d messages", got)
	}
	if v.Received(0) != nil || v.Received(4) != nil {
		t.Error("out-of-range round returned non-nil")
	}
}

func TestViewAppendCopies(t *testing.T) {
	src := []Message{{From: 0, Payload: []byte("x")}}
	v := View{}
	v.Append(src)
	src[0].From = 9
	if v.Received(1)[0].From != 0 {
		t.Error("Append aliased the caller's slice")
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(3, 1)
	if !s.Contains(1) || !s.Contains(3) || s.Contains(2) {
		t.Errorf("membership wrong: %v", s)
	}
	s.Add(2)
	got := s.Sorted()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Sorted = %v", got)
	}
	if s.String() != "{P1,P2,P3}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestMessageKindStrings(t *testing.T) {
	kinds := []MessageKind{
		KindInvalid, KindTestPredicate, KindChallenge, KindChallengeResponse,
		KindChainValue, KindPlainValue, KindEcho, KindOral, KindSigned,
		KindFault, KindFaultEcho, KindFallback,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(MessageKind(200).String(), "kind(") {
		t.Error("unknown kind has no fallback rendering")
	}
}

func TestFailureReasonStrings(t *testing.T) {
	reasons := []FailureReason{
		ReasonNone, ReasonBadSignature, ReasonBadChain, ReasonWrongSender,
		ReasonMissingMessage, ReasonUnexpectedMessage, ReasonValueMismatch,
		ReasonBadFormat, ReasonUnknownKey, ReasonProtocol,
	}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("reason %d has bad/duplicate string %q", r, s)
		}
		seen[s] = true
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Node: 2, Decided: true, Value: []byte("v")}
	if !strings.Contains(o.String(), "decided") {
		t.Errorf("decided outcome string: %q", o)
	}
	d := Discovery{Node: 2, Round: 3, Reason: ReasonBadChain, Detail: "x"}
	o = Outcome{Node: 2, Discovery: &d}
	if !strings.Contains(o.String(), "discovered") {
		t.Errorf("discovery outcome string: %q", o)
	}
	o = Outcome{Node: 2}
	if !strings.Contains(o.String(), "undecided") {
		t.Errorf("undecided outcome string: %q", o)
	}
}

func TestNodeSetSortedQuick(t *testing.T) {
	f := func(ids []int8) bool {
		s := NewNodeSet()
		for _, id := range ids {
			s.Add(NodeID(id))
		}
		sorted := s.Sorted()
		for i := 1; i < len(sorted); i++ {
			if sorted[i-1] >= sorted[i] {
				return false
			}
		}
		return len(sorted) == len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneAppend(t *testing.T) {
	base := []NodeID{0, 1, 2}
	got := CloneAppend(base, 3)
	if len(got) != 4 || got[3] != 3 {
		t.Fatalf("CloneAppend = %v, want [0 1 2 3]", got)
	}
	if cap(got) != 4 {
		t.Errorf("CloneAppend cap = %d, want exactly 4", cap(got))
	}
	got[0] = 9
	if base[0] != 0 {
		t.Error("CloneAppend result aliases its base")
	}
	if c := CloneAppend(nil); c == nil || len(c) != 0 {
		t.Errorf("CloneAppend(nil) = %v, want empty non-nil copy semantics", c)
	}
	if c := CloneAppend(base); len(c) != 3 || &c[0] == &base[0] {
		t.Error("CloneAppend without extras must still copy")
	}
}
