// Package model defines the shared vocabulary of the failure-discovery
// system: node identities, wire messages, per-round views, and
// failure-discovery records.
//
// The types here mirror the model of computation in Borcherding (ICDCS 1995)
// §2: a fully connected network of n nodes communicating in synchronous
// rounds, where a node's view is the sequence of message sets it has
// received, and a failure is "discovered" when that view is inconsistent
// with every failure-free run of the protocol.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node (processor) in the system. IDs are dense
// integers in [0, n) so they can double as slice indices in the simulator
// and as the fixed positions P_0..P_{n-1} that the paper's protocols
// assume.
type NodeID int

// NoNode is the sentinel for "no node"; it is never a valid participant.
const NoNode NodeID = -1

// String renders the node in the paper's P_i notation.
func (id NodeID) String() string {
	if id == NoNode {
		return "P(none)"
	}
	return fmt.Sprintf("P%d", int(id))
}

// Valid reports whether the ID denotes a participant in a system of n nodes.
func (id NodeID) Valid(n int) bool { return id >= 0 && int(id) < n }

// Message is a wire envelope exchanged between two nodes in one round.
//
// Property N2 of the model (a receiver can identify the immediate sender)
// is represented by From being trustworthy: the simulator and the TCP
// transport both stamp From themselves, so a faulty node cannot spoof it.
type Message struct {
	// From is the immediate sender. Trustworthy per N2.
	From NodeID
	// To is the destination node.
	To NodeID
	// Round is the round in which the message is delivered (stamped by the
	// network, not the sender).
	Round int
	// Kind is a protocol-defined message discriminator.
	Kind MessageKind
	// Payload is the protocol-defined body, already canonically encoded.
	Payload []byte
}

// MessageKind discriminates the protocol message types used across the
// repository. Kinds are globally unique so traces from composed protocols
// (key distribution followed by failure discovery) remain unambiguous.
type MessageKind uint8

// Message kinds. Enums start at one so the zero value is detectably unset.
const (
	// KindInvalid is the zero value; no valid message uses it.
	KindInvalid MessageKind = iota
	// KindTestPredicate carries a node's public key (test predicate T_i)
	// during key distribution (paper Fig. 1, step 1).
	KindTestPredicate
	// KindChallenge carries the plaintext nonce challenge {P_i, P_j, r}
	// (paper Fig. 1, step 2).
	KindChallenge
	// KindChallengeResponse carries the signed challenge {P_j, P_i, r}_{S_i}
	// (paper Fig. 1, step 3).
	KindChallengeResponse
	// KindChainValue carries a chain-signed value for the authenticated
	// failure-discovery protocol (paper Fig. 2).
	KindChainValue
	// KindPlainValue carries an unsigned value for the non-authenticated
	// baseline protocol.
	KindPlainValue
	// KindEcho carries an unsigned echo of the sender's current value in
	// the non-authenticated baseline protocol.
	KindEcho
	// KindOral carries an oral-message relay for OM(t).
	KindOral
	// KindSigned carries a signed-message relay for SM(t).
	KindSigned
	// KindFault announces a discovered failure in the FD→BA extension.
	KindFault
	// KindFaultEcho relays a fault announcement in the FD→BA extension.
	KindFaultEcho
	// KindFallback carries fallback-phase evidence in the FD→BA extension.
	KindFallback
)

var messageKindNames = map[MessageKind]string{
	KindInvalid:           "invalid",
	KindTestPredicate:     "test-predicate",
	KindChallenge:         "challenge",
	KindChallengeResponse: "challenge-response",
	KindChainValue:        "chain-value",
	KindPlainValue:        "plain-value",
	KindEcho:              "echo",
	KindOral:              "oral",
	KindSigned:            "signed",
	KindFault:             "fault",
	KindFaultEcho:         "fault-echo",
	KindFallback:          "fallback",
}

// String implements fmt.Stringer.
func (k MessageKind) String() string {
	if s, ok := messageKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// View is a node's view of a run: for each round, the set of messages the
// node received in that round (paper §2). Views determine behaviour: a
// node's next action depends solely on its current view.
type View struct {
	// Node is the owner of the view.
	Node NodeID
	// Rounds holds one entry per completed round; Rounds[i] is the set of
	// messages received in round i+1 (rounds are 1-based in the paper's
	// prose; index 0 is round 1).
	Rounds [][]Message
}

// Append records the messages received in the next round.
func (v *View) Append(msgs []Message) {
	cp := make([]Message, len(msgs))
	copy(cp, msgs)
	v.Rounds = append(v.Rounds, cp)
}

// Len returns the number of completed rounds in the view.
func (v *View) Len() int { return len(v.Rounds) }

// Received returns the messages received in the given 1-based round, or nil
// if the round has not completed.
func (v *View) Received(round int) []Message {
	if round < 1 || round > len(v.Rounds) {
		return nil
	}
	return v.Rounds[round-1]
}

// FailureReason classifies why a node discovered a failure. The paper only
// requires noticing that a failure exists (not identifying the culprit);
// the reason is diagnostic metadata for tests and traces.
type FailureReason uint8

// Failure reasons.
const (
	// ReasonNone is the zero value; no failure.
	ReasonNone FailureReason = iota
	// ReasonBadSignature: a signature failed its test predicate.
	ReasonBadSignature
	// ReasonBadChain: a chain signature's structure or sub-message
	// assignment check failed (paper Theorem 4).
	ReasonBadChain
	// ReasonWrongSender: the outermost signature is not assignable to the
	// immediate sender (violates the N2 cross-check).
	ReasonWrongSender
	// ReasonMissingMessage: an expected message did not arrive in its round.
	ReasonMissingMessage
	// ReasonUnexpectedMessage: a message arrived that no failure-free run
	// delivers (wrong kind, wrong round, duplicate, or unknown sender).
	ReasonUnexpectedMessage
	// ReasonValueMismatch: two messages in the view carry inconsistent
	// values (non-authenticated echo check).
	ReasonValueMismatch
	// ReasonBadFormat: a payload failed to decode.
	ReasonBadFormat
	// ReasonUnknownKey: a signed message names a node whose test predicate
	// was never accepted during key distribution.
	ReasonUnknownKey
	// ReasonProtocol: any other deviation from the protocol's failure-free
	// message pattern.
	ReasonProtocol
)

var failureReasonNames = map[FailureReason]string{
	ReasonNone:              "none",
	ReasonBadSignature:      "bad-signature",
	ReasonBadChain:          "bad-chain",
	ReasonWrongSender:       "wrong-sender",
	ReasonMissingMessage:    "missing-message",
	ReasonUnexpectedMessage: "unexpected-message",
	ReasonValueMismatch:     "value-mismatch",
	ReasonBadFormat:         "bad-format",
	ReasonUnknownKey:        "unknown-key",
	ReasonProtocol:          "protocol-deviation",
}

// String implements fmt.Stringer.
func (r FailureReason) String() string {
	if s, ok := failureReasonNames[r]; ok {
		return s
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Discovery records that a node discovered a failure: in which round, why,
// and (when attributable) which message triggered it.
type Discovery struct {
	// Node is the discovering node.
	Node NodeID
	// Round is the round in which the view first deviated from all
	// failure-free runs.
	Round int
	// Reason classifies the deviation.
	Reason FailureReason
	// Detail is a human-readable explanation for traces and tests.
	Detail string
}

// String implements fmt.Stringer.
func (d Discovery) String() string {
	return fmt.Sprintf("%v discovered failure in round %d: %v (%s)",
		d.Node, d.Round, d.Reason, d.Detail)
}

// Outcome is the terminal state of one node after a failure-discovery run:
// either it chose a decision value, or it discovered a failure (weak
// termination, property F1, guarantees one of the two eventually holds).
type Outcome struct {
	// Node is the deciding node.
	Node NodeID
	// Decided reports whether the node chose a value.
	Decided bool
	// Value is the decision value when Decided.
	Value []byte
	// Discovery is set when the node discovered a failure instead.
	Discovery *Discovery
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch {
	case o.Decided:
		return fmt.Sprintf("%v decided %q", o.Node, o.Value)
	case o.Discovery != nil:
		return o.Discovery.String()
	default:
		return fmt.Sprintf("%v undecided", o.Node)
	}
}

// NodeSet is an ordered set of node IDs, used to describe fault placements
// and dissemination targets deterministically.
type NodeSet map[NodeID]bool

// NewNodeSet builds a set from the given IDs.
func NewNodeSet(ids ...NodeID) NodeSet {
	s := make(NodeSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Contains reports membership.
func (s NodeSet) Contains(id NodeID) bool { return s[id] }

// Add inserts id into the set.
func (s NodeSet) Add(id NodeID) { s[id] = true }

// Sorted returns the members in ascending order.
func (s NodeSet) Sorted() []NodeID {
	out := make([]NodeID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set in {P0,P3,...} form.
func (s NodeSet) String() string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// CloneAppend returns a fresh slice holding base followed by extra. The
// result never aliases base, and it is allocated with exactly the needed
// capacity in one shot — use it instead of the
// append(append([]NodeID(nil), base...), extra...) idiom, which allocates
// twice when the first append's capacity is exact and invites aliasing
// bugs when it is not.
func CloneAppend(base []NodeID, extra ...NodeID) []NodeID {
	out := make([]NodeID, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// AppendBroadcast appends one message of the given kind and payload
// addressed to every node except self, and returns the extended slice.
// The payload slice is shared across all n-1 messages. This is the
// protocols' broadcast idiom; it appends so callers can presize or reuse
// dst and avoids the per-call slice that Config.Nodes would allocate.
func AppendBroadcast(dst []Message, n int, self NodeID, kind MessageKind, payload []byte) []Message {
	for q := 0; q < n; q++ {
		if to := NodeID(q); to != self {
			dst = append(dst, Message{To: to, Kind: kind, Payload: payload})
		}
	}
	return dst
}

// Config captures the global parameters of a run: the system size and the
// fault tolerance target. It validates the basic sanity constraints shared
// by every protocol in the repository.
type Config struct {
	// N is the number of nodes.
	N int
	// T is the maximum number of faulty nodes the protocols must tolerate.
	T int
}

// Validate checks the structural constraints: at least two nodes, a
// non-negative fault bound, and t < n (with n−1 relays P_1..P_t plus the
// sender P_0, the chain protocol needs t+1 distinct nodes besides the tail).
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("model: need at least 2 nodes, got n=%d", c.N)
	}
	if c.T < 0 {
		return fmt.Errorf("model: fault bound must be non-negative, got t=%d", c.T)
	}
	if c.T >= c.N {
		return fmt.Errorf("model: fault bound t=%d must be < n=%d", c.T, c.N)
	}
	return nil
}

// Nodes returns all node IDs 0..n-1 in order.
func (c Config) Nodes() []NodeID {
	out := make([]NodeID, c.N)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}
