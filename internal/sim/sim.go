// Package sim implements the paper's model of computation (§2) as a
// deterministic lockstep simulator: a fully connected network of n nodes
// communicating in synchronous rounds, with reliable bounded-time delivery
// (N1) and trustworthy immediate-sender identification (N2).
//
// The engine stamps the From and Round fields of every message itself, so
// no process — faulty or not — can spoof its identity, exactly as N2
// demands. Faulty nodes are ordinary Process implementations that deviate
// from the protocol; they control only their own messages (Byzantine
// behaviour), never the network.
//
// Determinism: processes are stepped in node-ID order and inboxes are
// sorted by sender, so a run is a pure function of (processes, seeds).
// Every experiment in EXPERIMENTS.md is therefore exactly reproducible.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/model"
)

// Process is one node's protocol logic. The engine calls Step once per
// round; received holds the messages sent to this node in the previous
// round (empty in round 1), which makes a node's behaviour a function of
// its view, as the model requires.
type Process interface {
	// Step runs one round and returns the messages to send this round.
	// The engine stamps From and Round on each returned message; a process
	// only sets To, Kind, and Payload. Callers must consume the returned
	// slice before the next Step call: processes may reuse its backing
	// array across rounds (the engine and the transport runner both copy
	// or send the messages immediately). Symmetrically, the engine may
	// reuse received's backing array after Step returns, so a process must
	// not retain the slice itself across rounds; the Payload bytes are
	// never modified and are safe to alias.
	Step(round int, received []model.Message) []model.Message
}

// Finisher is an optional interface: processes that know they have reached
// a terminal state report it so the engine can stop as soon as every
// process is done and no messages are in flight.
type Finisher interface {
	// Finished reports whether the process has reached a terminal state
	// (decided, discovered a failure, or completed its protocol role).
	Finished() bool
}

// ProcessFunc adapts a function to the Process interface.
type ProcessFunc func(round int, received []model.Message) []model.Message

// Step implements Process.
func (f ProcessFunc) Step(round int, received []model.Message) []model.Message {
	return f(round, received)
}

// Silent is a Process that never sends anything: the simplest faulty node
// (crashed from the start), also useful to fill non-participating slots.
type Silent struct{}

// Step implements Process.
func (Silent) Step(int, []model.Message) []model.Message { return nil }

// Finished implements Finisher.
func (Silent) Finished() bool { return true }

// Drop is the Network fate meaning the message is lost in transit.
const Drop = -1

// Network decides the delivery fate of each message as it enters the
// network. Fate is called once per message, in deterministic program
// order (sender ID, then the sender's send order), with the message
// already stamped with From and the sending round. It returns:
//
//	0     ideal delivery (next round), the synchronous-model default
//	d > 0 delivery delayed by d extra rounds (arrives in round+1+d)
//	Drop  the message is lost and never delivered
//
// A nil Network is the ideal network of the paper's model (§2, N1).
// Implementations may keep per-link state (seeded RNG streams,
// bandwidth windows); the engine never calls Fate concurrently.
// internal/netcond compiles declarative condition specs into this
// interface; internal/transport applies the same fates sender-side so
// socket runs degrade identically.
type Network interface {
	Fate(m model.Message, round int) int
}

// Result is the outcome of a simulator run.
type Result struct {
	// Rounds is the number of engine steps executed.
	Rounds int
	// Counters holds the traffic statistics for the run.
	Counters *metrics.Counters
	// Views holds each node's view of the run, indexed by node ID.
	Views []model.View
}

// Engine drives a set of processes in lockstep rounds.
type Engine struct {
	cfg    model.Config
	procs  []Process
	views  []model.View
	count  *metrics.Counters
	tracer Tracer
	// rounds is tracer when it also implements RoundTracer, resolved
	// once at option time so Run pays no per-round type assertions.
	rounds RoundTracer
	// net, when non-nil, decides per-message delivery fates; nil is the
	// ideal synchronous network and keeps Run on its original path.
	net Network
}

// Option configures an Engine.
type Option func(*Engine)

// WithTracer attaches a trace sink that observes every delivered
// message — and, when t also implements RoundTracer, every round
// boundary.
func WithTracer(t Tracer) Option {
	return func(e *Engine) {
		e.tracer = t
		e.rounds, _ = t.(RoundTracer)
	}
}

// WithNetwork layers a network-condition model under the engine: every
// send consults net.Fate and is delivered next round, delayed, or
// dropped accordingly. Delayed messages are restamped with the round
// they are effectively sent in (round+d), wait in a virtual-clock
// delivery queue, and join the destination inbox in round+1+d, where
// the usual deterministic sort orders them; a delay that would land
// past maxRounds is never delivered, exactly like a real deadline
// miss. WithNetwork(nil) is a no-op: the ideal path stays
// byte-identical and allocation-flat.
func WithNetwork(n Network) Option {
	return func(e *Engine) { e.net = n }
}

// WithCounters uses an external counter set, letting callers accumulate
// traffic across several protocol phases (e.g. key distribution followed
// by many failure-discovery runs) into one budget.
func WithCounters(c *metrics.Counters) Option {
	return func(e *Engine) { e.count = c }
}

// New creates an engine for the given configuration. procs must contain
// exactly cfg.N processes, indexed by node ID.
func New(cfg model.Config, procs []Process, opts ...Option) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(procs) != cfg.N {
		return nil, fmt.Errorf("sim: got %d processes for n=%d", len(procs), cfg.N)
	}
	for i, p := range procs {
		if p == nil {
			return nil, fmt.Errorf("sim: process %d is nil", i)
		}
	}
	e := &Engine{
		cfg:   cfg,
		procs: procs,
		views: make([]model.View, cfg.N),
		count: metrics.NewCounters(),
	}
	for i := range e.views {
		e.views[i].Node = model.NodeID(i)
	}
	for _, opt := range opts {
		opt(e)
	}
	return e, nil
}

// Run executes up to maxRounds rounds and returns the result. It stops
// early when no messages are in flight and every process that implements
// Finisher reports done (processes without Finisher are assumed done when
// silent). maxRounds bounds the run because property N1 bounds delivery
// time: a protocol's deadline is a round number, and "nothing arrived by
// the deadline" is itself observable, which is what lets silence be
// discovered as a failure.
func (e *Engine) Run(maxRounds int) *Result {
	if maxRounds < 1 {
		maxRounds = 1
	}
	// Per-node inboxes, double-buffered: inFlight holds this round's
	// deliveries, next collects the sends. Both keep their backing arrays
	// across rounds (truncate, don't reallocate), which is what keeps a
	// long run allocation-flat; delivery order is unchanged (appends happen
	// in the same order the map version produced, and every inbox is sorted
	// before delivery anyway), so seeded runs are byte-identical.
	inFlight := make([][]model.Message, e.cfg.N)
	next := make([][]model.Message, e.cfg.N)
	// delayed is the virtual-clock delivery queue, keyed by delivery
	// round; it exists only under a network-condition model, so the
	// ideal path allocates nothing extra.
	var delayed map[int][]model.Message
	pending := 0
	if e.net != nil {
		delayed = make(map[int][]model.Message)
	}
	rounds := 0
	for round := 1; round <= maxRounds; round++ {
		rounds = round
		if e.rounds != nil {
			e.rounds.RoundStart(round)
		}
		for i := range next {
			next[i] = next[i][:0]
		}
		if pending > 0 {
			if late := delayed[round]; len(late) > 0 {
				// Late arrivals join this round's inboxes before the
				// deterministic sort, so their position never depends on
				// when they were queued.
				for _, m := range late {
					inFlight[m.To] = append(inFlight[m.To], m)
				}
				pending -= len(late)
				delete(delayed, round)
			}
		}
		sentAny := false
		sent := 0
		for i, p := range e.procs {
			id := model.NodeID(i)
			inbox := inFlight[i]
			SortMessages(inbox)
			e.views[i].Append(inbox)
			for _, m := range inbox {
				if e.tracer != nil {
					e.tracer.Delivered(m)
				}
			}
			out := p.Step(round, inbox)
			for _, m := range out {
				if !m.To.Valid(e.cfg.N) || m.To == id {
					// Sends to invalid destinations or to self are dropped:
					// the network has no such links. A correct protocol
					// never does this; a faulty one gains nothing.
					continue
				}
				m.From = id
				m.Round = round
				if e.net != nil {
					switch d := e.net.Fate(m, round); {
					case d < 0:
						// Lost in transit: the send happened (and is
						// counted), the delivery never does.
						e.count.Record(m)
						sent++
						continue
					case d > 0:
						// Restamped as if sent d rounds later — the same
						// stamp the transport runner puts on the wire, so
						// receiver views match the socket path exactly.
						m.Round = round + d
						e.count.Record(m)
						sentAny = true
						sent++
						delayed[round+1+d] = append(delayed[round+1+d], m)
						pending++
						continue
					}
				}
				e.count.Record(m)
				sentAny = true
				sent++
				next[m.To] = append(next[m.To], m)
			}
		}
		if e.rounds != nil {
			e.rounds.RoundEnd(round, sent)
		}
		inFlight, next = next, inFlight
		if !sentAny && pending == 0 && e.allFinished() {
			break
		}
	}
	return &Result{Rounds: rounds, Counters: e.count, Views: e.views}
}

// RunInstance is the one-shot entry point for an isolated simulation
// instance: it builds an engine over procs and runs it for maxRounds.
// Nothing in the engine or its result is shared with any other instance
// (callers supply per-instance processes, counters, and entropy), so
// independent RunInstance calls may execute concurrently — the campaign
// engine's worker shards rely on exactly that.
func RunInstance(cfg model.Config, procs []Process, maxRounds int, opts ...Option) (*Result, error) {
	e, err := New(cfg, procs, opts...)
	if err != nil {
		return nil, err
	}
	return e.Run(maxRounds), nil
}

// allFinished reports whether every Finisher process is done. Processes
// that do not implement Finisher do not block early exit: with no traffic
// in flight they can never act again anyway.
func (e *Engine) allFinished() bool {
	for _, p := range e.procs {
		if f, ok := p.(Finisher); ok && !f.Finished() {
			return false
		}
	}
	return true
}

// SortMessages orders messages deterministically by sender, then kind,
// then payload, so runs are reproducible regardless of arrival order. The
// engine applies it to every inbox; the transport runner does the same so
// socket runs match simulator runs exactly.
func SortMessages(msgs []model.Message) {
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].From != msgs[j].From {
			return msgs[i].From < msgs[j].From
		}
		if msgs[i].Kind != msgs[j].Kind {
			return msgs[i].Kind < msgs[j].Kind
		}
		return string(msgs[i].Payload) < string(msgs[j].Payload)
	})
}
