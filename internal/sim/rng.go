package sim

import (
	"encoding/binary"
	"io"
	"math/rand"
)

// Deterministic randomness for reproducible experiments.
//
// Protocol code that needs entropy (key generation, challenge nonces)
// takes an io.Reader. Production paths pass crypto/rand.Reader; the
// experiment harness passes per-node seeded readers from this file so
// every run in EXPERIMENTS.md is exactly reproducible from its seed.

// SeededReader returns an io.Reader producing a deterministic byte stream
// from the given seed. It is NOT cryptographically secure; it exists so
// simulated runs are reproducible.
func SeededReader(seed int64) io.Reader {
	return &rngReader{rng: rand.New(rand.NewSource(seed))}
}

// keyDomain separates the key-material seed domain from the run-entropy
// domain.
const keyDomain uint64 = 0x6B65792D646F6D61 // "key-doma"

// KeyMaterialSeed derives the per-node key-generation seed. It is a
// stream domain distinct from NodeSeed's run-entropy domain: key material
// derived from a key seed is identical no matter which run seed the rest
// of the instance uses, which is what lets clusters cache and reuse keys
// across reseeded runs (core.Cluster.Reset, the campaign setup cache)
// while remaining byte-equivalent to a fresh instance.
//
// The domain tag is folded in AFTER a full mixing round, not XORed onto
// the input: NodeSeed(keySeed^tag, node) would make the run seed
// keySeed^tag reproduce every node's key stream wholesale, whereas no
// single run seed can reproduce mix(NodeSeed(k, node)^tag) across nodes
// (the tag lands on a value that already depends on node nonlinearly).
func KeyMaterialSeed(keySeed int64, node int) int64 {
	return mix64(uint64(NodeSeed(keySeed, node)) ^ keyDomain)
}

// coalitionDomain separates the corrupt-set selection domain from the
// run-entropy and key-material domains.
const coalitionDomain uint64 = 0x636F616C6974696F // "coalitio"

// CoalitionSeed derives the corrupt-set selection seed for a run seed: a
// stream domain distinct from both run entropy (NodeSeed) and key
// material (KeyMaterialSeed), so which nodes an adversary coalition
// corrupts can never correlate with handshake nonces or keys drawn from
// the same instance seed. Like KeyMaterialSeed, the domain tag is folded
// in after a full mixing round.
func CoalitionSeed(runSeed int64) int64 {
	return mix64(uint64(mix64(uint64(runSeed))) ^ coalitionDomain)
}

// linkDomain separates the per-link network-condition domain from the
// run-entropy, key-material, and coalition domains.
const linkDomain uint64 = 0x6C696E6B2D646F6D // "link-dom"

// NetLinkSeed derives the seed for the directed link from→to under a run
// seed: a stream domain distinct from run entropy, key material, and
// coalition selection, so network fates (loss, latency draws) can never
// correlate with protocol nonces or corrupt-set choices drawn from the
// same instance seed. Links are directed — from→to and to→from get
// independent streams — and only the sender ever draws from a link's
// stream, which is what keeps fates identical between the lockstep
// engine and the concurrent transport runners. Like KeyMaterialSeed,
// the domain tag is folded in after a full mixing round.
func NetLinkSeed(runSeed int64, from, to int) int64 {
	return mix64(uint64(NodeSeed(NodeSeed(runSeed, from), to)) ^ linkDomain)
}

// NodeSeed derives a distinct per-node seed from a run seed, so nodes get
// independent deterministic streams.
func NodeSeed(runSeed int64, node int) int64 {
	// SplitMix64-style mixing keeps nearby inputs uncorrelated.
	return mix64(uint64(runSeed) + uint64(node)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15)
}

// mix64 is the SplitMix64 finalizer shared by the seed-derivation
// functions.
func mix64(z uint64) int64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

type rngReader struct {
	rng *rand.Rand
}

// Read fills p with pseudo-random bytes; it never fails.
func (r *rngReader) Read(p []byte) (int, error) {
	var buf [8]byte
	for i := 0; i < len(p); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], r.rng.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}
