package sim

import (
	"encoding/binary"
	"io"
	"math/rand"
)

// Deterministic randomness for reproducible experiments.
//
// Protocol code that needs entropy (key generation, challenge nonces)
// takes an io.Reader. Production paths pass crypto/rand.Reader; the
// experiment harness passes per-node seeded readers from this file so
// every run in EXPERIMENTS.md is exactly reproducible from its seed.

// SeededReader returns an io.Reader producing a deterministic byte stream
// from the given seed. It is NOT cryptographically secure; it exists so
// simulated runs are reproducible.
func SeededReader(seed int64) io.Reader {
	return &rngReader{rng: rand.New(rand.NewSource(seed))}
}

// NodeSeed derives a distinct per-node seed from a run seed, so nodes get
// independent deterministic streams.
func NodeSeed(runSeed int64, node int) int64 {
	// SplitMix64-style mixing keeps nearby inputs uncorrelated.
	z := uint64(runSeed) + uint64(node)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

type rngReader struct {
	rng *rand.Rand
}

// Read fills p with pseudo-random bytes; it never fails.
func (r *rngReader) Read(p []byte) (int, error) {
	var buf [8]byte
	for i := 0; i < len(p); i += 8 {
		binary.LittleEndian.PutUint64(buf[:], r.rng.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}
