package sim

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// fateFunc adapts a function to the Network interface for tests.
type fateFunc func(model.Message, int) int

func (f fateFunc) Fate(m model.Message, round int) int { return f(m, round) }

// onceProc sends a single message in round 1 and then goes quiet,
// reporting finished; the receiver records everything.
type onceProc struct {
	peer model.NodeID
	sent bool
}

func (p *onceProc) Step(round int, _ []model.Message) []model.Message {
	if p.sent {
		return nil
	}
	p.sent = true
	return []model.Message{{To: p.peer, Kind: model.KindPlainValue, Payload: []byte{1}}}
}

func (p *onceProc) Finished() bool { return p.sent }

// sinkProc records each round's inbox and is always finished.
type sinkProc struct {
	received map[int][]model.Message
}

func (p *sinkProc) Step(round int, received []model.Message) []model.Message {
	if p.received == nil {
		p.received = make(map[int][]model.Message)
	}
	p.received[round] = append([]model.Message(nil), received...)
	return nil
}

func (p *sinkProc) Finished() bool { return true }

func TestNetworkDelayShiftsDeliveryRound(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	src := &onceProc{peer: 1}
	dst := &sinkProc{}
	delayTwo := fateFunc(func(model.Message, int) int { return 2 })
	eng, err := New(cfg, []Process{src, dst}, WithNetwork(delayTwo))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(6)
	// Sent in round 1, delayed 2 extra rounds: delivery in round 4, with
	// the restamped effective send round 3 (= 1+d), as the transport
	// runner would stamp it on the wire.
	for r := 1; r <= 3; r++ {
		if len(dst.received[r]) != 0 {
			t.Errorf("round %d inbox = %v, want empty", r, dst.received[r])
		}
	}
	got := dst.received[4]
	if len(got) != 1 || got[0].From != 0 || got[0].Round != 3 {
		t.Fatalf("round-4 inbox = %+v, want one message From=0 Round=3", got)
	}
	// The run must not exit before the pending delivery lands.
	if res.Rounds != 4 {
		t.Errorf("Rounds = %d, want 4 (early exit must wait for the delivery queue)", res.Rounds)
	}
	if res.Counters.Snapshot().Messages != 1 {
		t.Errorf("messages = %d, want 1", res.Counters.Snapshot().Messages)
	}
}

func TestNetworkDropLosesMessageButCountsIt(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	src := &onceProc{peer: 1}
	dst := &sinkProc{}
	eng, err := New(cfg, []Process{src, dst}, WithNetwork(fateFunc(func(model.Message, int) int { return Drop })))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(6)
	for r, msgs := range dst.received {
		if len(msgs) != 0 {
			t.Errorf("round %d delivered %v despite total loss", r, msgs)
		}
	}
	// The send happened and is counted; a dropped message puts nothing
	// in flight, so the run exits the moment everyone is finished.
	if res.Counters.Snapshot().Messages != 1 {
		t.Errorf("messages = %d, want 1 (drops count as sent)", res.Counters.Snapshot().Messages)
	}
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Rounds)
	}
}

func TestNetworkDelayPastMaxRoundsNeverDelivers(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	src := &onceProc{peer: 1}
	dst := &sinkProc{}
	eng, err := New(cfg, []Process{src, dst}, WithNetwork(fateFunc(func(model.Message, int) int { return 100 })))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(4)
	for r, msgs := range dst.received {
		if len(msgs) != 0 {
			t.Errorf("round %d delivered %v, want nothing (delivery past maxRounds)", r, msgs)
		}
	}
	// The pending message holds the engine to the full bound — a missed
	// deadline, exactly N1's observable silence.
	if res.Rounds != 4 {
		t.Errorf("Rounds = %d, want the full 4", res.Rounds)
	}
}

func TestNetworkIdealFatesMatchNilNetwork(t *testing.T) {
	// A network that answers 0 for everything must leave the run
	// byte-identical to no network at all — views, rounds, counters.
	run := func(opts ...Option) *Result {
		cfg := model.Config{N: 3, T: 0}
		procs := []Process{
			&echoProc{id: 0, peer: 1},
			&echoProc{id: 1, peer: 2},
			&echoProc{id: 2, peer: 0},
		}
		eng, err := New(cfg, procs, opts...)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run(5)
	}
	ideal := run(WithNetwork(fateFunc(func(model.Message, int) int { return 0 })))
	bare := run()
	if ideal.Rounds != bare.Rounds {
		t.Errorf("Rounds: ideal-net %d, nil-net %d", ideal.Rounds, bare.Rounds)
	}
	if !reflect.DeepEqual(ideal.Views, bare.Views) {
		t.Errorf("views diverge under an all-zero-fate network")
	}
	if !reflect.DeepEqual(ideal.Counters.Snapshot(), bare.Counters.Snapshot()) {
		t.Errorf("counters diverge: %v vs %v", ideal.Counters.Snapshot(), bare.Counters.Snapshot())
	}
}

func TestNetLinkSeedDirectedAndSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from == to {
				continue
			}
			s := NetLinkSeed(7, from, to)
			if seen[s] {
				t.Errorf("link seed collision at (%d,%d)", from, to)
			}
			seen[s] = true
		}
	}
	if NetLinkSeed(7, 1, 2) == NetLinkSeed(7, 2, 1) {
		t.Error("link seeds are not directed")
	}
	if NetLinkSeed(7, 1, 2) == NetLinkSeed(8, 1, 2) {
		t.Error("link seeds ignore the run seed")
	}
	// Link streams must not collide with the node-seed domain that feeds
	// key material and handshake nonces.
	if NetLinkSeed(7, 1, 2) == NodeSeed(NodeSeed(7, 1), 2) {
		t.Error("link domain not separated from node-seed domain")
	}
}
