package sim

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/model"
)

// roundRecorder records the round-boundary callbacks in call order.
type roundRecorder struct {
	RecordingTracer
	calls []string
}

func (r *roundRecorder) RoundStart(round int) {
	r.calls = append(r.calls, fmt.Sprintf("start %d", round))
}

func (r *roundRecorder) RoundEnd(round, sent int) {
	r.calls = append(r.calls, fmt.Sprintf("end %d sent=%d", round, sent))
}

func TestRoundTracerSeesEveryRoundBoundary(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	a := &echoProc{id: 0, peer: 1}
	tracer := &roundRecorder{}
	eng, err := New(cfg, []Process{a, Silent{}}, WithTracer(tracer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Run(3)
	want := []string{
		"start 1", "end 1 sent=1",
		"start 2", "end 2 sent=1",
		"start 3", "end 3 sent=1",
	}
	if got := strings.Join(tracer.calls, ", "); got != strings.Join(want, ", ") {
		t.Errorf("round calls = %s\nwant %s", got, strings.Join(want, ", "))
	}
	// The embedded plain Tracer still works through the same seam.
	if got := len(tracer.Messages()); got != 2 {
		t.Errorf("traced %d deliveries, want 2", got)
	}
}

func TestPlainTracerGetsNoRoundCallbacks(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	a := &echoProc{id: 0, peer: 1}
	tracer := &RecordingTracer{} // does not implement RoundTracer
	eng, err := New(cfg, []Process{a, Silent{}}, WithTracer(tracer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Run(2) // must not panic on the nil rounds field
	if got := len(tracer.Messages()); got != 1 {
		t.Errorf("traced %d deliveries, want 1", got)
	}
}

func TestWriterTracerBuffersUntilFlush(t *testing.T) {
	var buf bytes.Buffer
	tracer := NewWriterTracer(&buf)
	tracer.Delivered(model.Message{From: 0, To: 1, Round: 1, Kind: model.KindEcho, Payload: []byte("ab")})
	if buf.Len() != 0 {
		t.Fatalf("line reached the writer before Flush: %q", buf.String())
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "P0 -> P1") {
		t.Fatalf("flushed trace = %q", buf.String())
	}
}

// closeCounter counts Close calls through an io.WriteCloser.
type closeCounter struct {
	bytes.Buffer
	closed int
}

func (c *closeCounter) Close() error { c.closed++; return nil }

func TestWriterTracerCloseFlushesAndClosesCloser(t *testing.T) {
	w := &closeCounter{}
	tracer := NewWriterTracer(w)
	tracer.Delivered(model.Message{From: 1, To: 0, Round: 2, Kind: model.KindEcho})
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if w.closed != 1 {
		t.Errorf("underlying closer closed %d times, want 1", w.closed)
	}
	if !strings.Contains(w.String(), "P1 -> P0") {
		t.Errorf("Close did not flush: %q", w.String())
	}
}

func TestMultiTracerFansOutAndSkipsNil(t *testing.T) {
	rec := &RecordingTracer{}
	rounds := &roundRecorder{}
	mt := MultiTracer(rec, nil, rounds)
	mt.Delivered(model.Message{From: 0, To: 1, Round: 1, Kind: model.KindEcho})
	mt.RoundStart(1)
	mt.RoundEnd(1, 3)
	if got := len(rec.Messages()); got != 1 {
		t.Errorf("plain member saw %d deliveries, want 1", got)
	}
	if got := len(rounds.Messages()); got != 1 {
		t.Errorf("round member saw %d deliveries, want 1", got)
	}
	if got := strings.Join(rounds.calls, ","); got != "start 1,end 1 sent=3" {
		t.Errorf("round member calls = %q", got)
	}
}
