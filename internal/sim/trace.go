package sim

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"repro/internal/model"
)

// Tracer observes message deliveries. Implementations must be safe for
// concurrent use (the TCP transport shares them across goroutines).
type Tracer interface {
	// Delivered is called once per delivered message.
	Delivered(m model.Message)
}

// RoundTracer is the extended tracer seam: a Tracer that also wants
// round boundaries implements it and the engine calls RoundStart before
// delivering a round's inboxes and RoundEnd after every process
// stepped. The observability layer's obs.EngineTracer rides this seam
// to emit per-round spans; plain Tracers keep working unchanged.
//
// RoundEnd's sent count is the number of messages the round put in
// flight (post fan-out, invalid destinations dropped) — with
// RoundStart/Delivered it gives a tracer the full per-round traffic
// picture without the engine exporting its internals.
type RoundTracer interface {
	Tracer
	// RoundStart is called before round's inboxes are delivered.
	RoundStart(round int)
	// RoundEnd is called after every process stepped in round; sent is
	// the number of messages the round enqueued for the next one.
	RoundEnd(round, sent int)
}

// WriterTracer logs one line per delivered message, for debugging runs.
// Output is buffered: lines reach w one buffer flush at a time, not one
// syscall per message, so tracing a large run does not serialize on the
// kernel. Callers that need the trace on disk before the process exits
// must call Flush or Close — the Close contract: it flushes the buffer
// and closes w when w is an io.Closer (a trace file), so
// `defer tracer.Close()` is the whole lifecycle.
type WriterTracer struct {
	mu sync.Mutex
	bw *bufio.Writer
	c  io.Closer
}

// NewWriterTracer returns a Tracer that writes buffered lines to w.
func NewWriterTracer(w io.Writer) *WriterTracer {
	t := &WriterTracer{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

var _ Tracer = (*WriterTracer)(nil)

// Delivered implements Tracer.
func (t *WriterTracer) Delivered(m model.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.bw, "r%-3d %v -> %v  %v (%d bytes)\n",
		m.Round, m.From, m.To, m.Kind, len(m.Payload))
}

// Flush pushes all buffered lines to the underlying writer.
func (t *WriterTracer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bw.Flush()
}

// Close flushes the buffer and closes the underlying writer when it is
// an io.Closer. The tracer must not be used afterwards.
func (t *WriterTracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.bw.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RecordingTracer retains every delivered message, for assertions in tests.
type RecordingTracer struct {
	mu   sync.Mutex
	msgs []model.Message
}

var _ Tracer = (*RecordingTracer)(nil)

// Delivered implements Tracer.
func (t *RecordingTracer) Delivered(m model.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.msgs = append(t.msgs, m)
}

// Messages returns a copy of all recorded messages in delivery order.
func (t *RecordingTracer) Messages() []model.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]model.Message, len(t.msgs))
	copy(out, t.msgs)
	return out
}

// MultiTracer fans deliveries out to several tracers, forwarding round
// boundaries to the members that implement RoundTracer. It lets a run
// carry a human trace (WriterTracer) and a structured one
// (obs.EngineTracer) at once. nil members are skipped, so callers can
// pass optional tracers unconditionally; a MultiTracer of zero live
// members still works (and traces nothing).
func MultiTracer(tracers ...Tracer) RoundTracer {
	mt := multiTracer{}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		mt.all = append(mt.all, t)
		if rt, ok := t.(RoundTracer); ok {
			mt.rounds = append(mt.rounds, rt)
		}
	}
	return mt
}

type multiTracer struct {
	all    []Tracer
	rounds []RoundTracer
}

// Delivered implements Tracer.
func (m multiTracer) Delivered(msg model.Message) {
	for _, t := range m.all {
		t.Delivered(msg)
	}
}

// RoundStart implements RoundTracer.
func (m multiTracer) RoundStart(round int) {
	for _, t := range m.rounds {
		t.RoundStart(round)
	}
}

// RoundEnd implements RoundTracer.
func (m multiTracer) RoundEnd(round, sent int) {
	for _, t := range m.rounds {
		t.RoundEnd(round, sent)
	}
}
