package sim

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/model"
)

// Tracer observes message deliveries. Implementations must be safe for
// concurrent use (the TCP transport shares them across goroutines).
type Tracer interface {
	// Delivered is called once per delivered message.
	Delivered(m model.Message)
}

// WriterTracer logs one line per delivered message, for debugging runs.
type WriterTracer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewWriterTracer returns a Tracer that writes to w.
func NewWriterTracer(w io.Writer) *WriterTracer { return &WriterTracer{w: w} }

var _ Tracer = (*WriterTracer)(nil)

// Delivered implements Tracer.
func (t *WriterTracer) Delivered(m model.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "r%-3d %v -> %v  %v (%d bytes)\n",
		m.Round, m.From, m.To, m.Kind, len(m.Payload))
}

// RecordingTracer retains every delivered message, for assertions in tests.
type RecordingTracer struct {
	mu   sync.Mutex
	msgs []model.Message
}

var _ Tracer = (*RecordingTracer)(nil)

// Delivered implements Tracer.
func (t *RecordingTracer) Delivered(m model.Message) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.msgs = append(t.msgs, m)
}

// Messages returns a copy of all recorded messages in delivery order.
func (t *RecordingTracer) Messages() []model.Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]model.Message, len(t.msgs))
	copy(out, t.msgs)
	return out
}
