package sim

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/model"
)

// echoProc sends its round number to a fixed peer each round, recording
// what it receives.
type echoProc struct {
	id       model.NodeID
	peer     model.NodeID
	received map[int][]model.Message
	rounds   int
}

func (p *echoProc) Step(round int, received []model.Message) []model.Message {
	if p.received == nil {
		p.received = make(map[int][]model.Message)
	}
	// The engine reuses received's backing array across rounds (see the
	// Process contract), so retaining it requires a copy.
	p.received[round] = append([]model.Message(nil), received...)
	p.rounds = round
	return []model.Message{{To: p.peer, Kind: model.KindPlainValue, Payload: []byte{byte(round)}}}
}

func TestEngineLockstepDelivery(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	a := &echoProc{id: 0, peer: 1}
	b := &echoProc{id: 1, peer: 0}
	eng, err := New(cfg, []Process{a, b})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(3)
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", res.Rounds)
	}
	// Round 1 inboxes are empty; round r ≥ 2 carries round r−1's sends.
	if len(a.received[1]) != 0 {
		t.Errorf("round-1 inbox not empty: %v", a.received[1])
	}
	for r := 2; r <= 3; r++ {
		msgs := a.received[r]
		if len(msgs) != 1 {
			t.Fatalf("round %d: got %d messages, want 1", r, len(msgs))
		}
		m := msgs[0]
		if m.From != 1 || m.Round != r-1 || m.Payload[0] != byte(r-1) {
			t.Errorf("round %d message = %+v", r, m)
		}
	}
}

func TestEngineStampsFromAndRound(t *testing.T) {
	// A process trying to spoof From must be corrected by the engine (N2).
	cfg := model.Config{N: 3, T: 0}
	spoofer := ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		return []model.Message{{From: 2, To: 1, Kind: model.KindPlainValue, Round: 99}}
	})
	var got []model.Message
	receiver := ProcessFunc(func(_ int, received []model.Message) []model.Message {
		got = append(got, received...)
		return nil
	})
	eng, err := New(cfg, []Process{spoofer, receiver, Silent{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Run(2)
	if len(got) != 1 {
		t.Fatalf("received %d messages, want 1", len(got))
	}
	if got[0].From != 0 {
		t.Errorf("From = %v; engine failed to stamp the true sender", got[0].From)
	}
	if got[0].Round != 1 {
		t.Errorf("Round = %d, want 1", got[0].Round)
	}
}

func TestEngineDropsInvalidDestinations(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	bad := ProcessFunc(func(round int, _ []model.Message) []model.Message {
		return []model.Message{
			{To: 5, Kind: model.KindPlainValue},  // out of range
			{To: -1, Kind: model.KindPlainValue}, // invalid
			{To: 0, Kind: model.KindPlainValue},  // self
		}
	})
	eng, err := New(cfg, []Process{bad, Silent{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(2)
	if got := res.Counters.Messages(); got != 0 {
		t.Errorf("recorded %d messages, want 0", got)
	}
}

func TestEngineEarlyExit(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	eng, err := New(cfg, []Process{Silent{}, Silent{}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(100)
	if res.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 (early exit)", res.Rounds)
	}
}

func TestEngineViewsRecorded(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	a := &echoProc{id: 0, peer: 1}
	b := &echoProc{id: 1, peer: 0}
	eng, err := New(cfg, []Process{a, b})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run(2)
	if len(res.Views) != 2 {
		t.Fatalf("got %d views", len(res.Views))
	}
	v := res.Views[0]
	if v.Len() != 2 {
		t.Fatalf("view rounds = %d, want 2", v.Len())
	}
	if len(v.Received(1)) != 0 || len(v.Received(2)) != 1 {
		t.Errorf("view contents wrong: r1=%d r2=%d", len(v.Received(1)), len(v.Received(2)))
	}
	if v.Received(0) != nil || v.Received(3) != nil {
		t.Error("out-of-range rounds should return nil")
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(model.Config{N: 1, T: 0}, []Process{Silent{}}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(model.Config{N: 2, T: 0}, []Process{Silent{}}); err == nil {
		t.Error("process count mismatch accepted")
	}
	if _, err := New(model.Config{N: 2, T: 0}, []Process{Silent{}, nil}); err == nil {
		t.Error("nil process accepted")
	}
	if _, err := New(model.Config{N: 2, T: 2}, []Process{Silent{}, Silent{}}); err == nil {
		t.Error("t >= n accepted")
	}
}

func TestInboxDeterministicOrder(t *testing.T) {
	// Two senders to one receiver: inbox order must be by sender ID
	// regardless of send order.
	cfg := model.Config{N: 3, T: 0}
	mk := func(id model.NodeID) Process {
		return ProcessFunc(func(round int, _ []model.Message) []model.Message {
			if round != 1 {
				return nil
			}
			return []model.Message{{To: 2, Kind: model.KindPlainValue, Payload: []byte{byte(id)}}}
		})
	}
	var order []model.NodeID
	recv := ProcessFunc(func(_ int, received []model.Message) []model.Message {
		for _, m := range received {
			order = append(order, m.From)
		}
		return nil
	})
	eng, err := New(cfg, []Process{mk(0), mk(1), recv})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Run(2)
	if !reflect.DeepEqual(order, []model.NodeID{0, 1}) {
		t.Errorf("delivery order = %v, want [0 1]", order)
	}
}

// chatterProc sends seeded-pseudo-random traffic each round, exercising
// the engine's inbox reuse with irregular fan-out.
type chatterProc struct {
	id  model.NodeID
	n   int
	rng io.Reader
}

func (p *chatterProc) Step(round int, received []model.Message) []model.Message {
	if round > 4 {
		return nil
	}
	var b [2]byte
	var out []model.Message
	for q := 0; q < p.n; q++ {
		if model.NodeID(q) == p.id {
			continue
		}
		p.rng.Read(b[:])
		if b[0]%3 == 0 {
			continue // skip some destinations so inbox sizes vary
		}
		out = append(out, model.Message{To: model.NodeID(q), Kind: model.KindPlainValue, Payload: []byte{b[1]}})
	}
	return out
}

func TestEngineRunDeterministicAcrossRuns(t *testing.T) {
	// Two identically-seeded runs must produce byte-identical views and
	// counters; the inbox buffers reused across rounds must not leak state
	// between rounds or runs.
	run := func() *Result {
		cfg := model.Config{N: 5, T: 1}
		procs := make([]Process, cfg.N)
		for i := range procs {
			procs[i] = &chatterProc{id: model.NodeID(i), n: cfg.N, rng: SeededReader(NodeSeed(99, i))}
		}
		res, err := RunInstance(cfg, procs, 6)
		if err != nil {
			t.Fatalf("RunInstance: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a.Counters.Snapshot(), b.Counters.Snapshot()) {
		t.Errorf("counter snapshots differ:\n%v\n%v", a.Counters.Snapshot(), b.Counters.Snapshot())
	}
	if !reflect.DeepEqual(a.Views, b.Views) {
		t.Error("views differ between identically-seeded runs")
	}
}

func TestSeededReaderDeterministic(t *testing.T) {
	r1 := SeededReader(7)
	r2 := SeededReader(7)
	b1 := make([]byte, 64)
	b2 := make([]byte, 64)
	if _, err := r1.Read(b1); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if _, err := r2.Read(b2); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Error("same seed produced different streams")
	}
	r3 := SeededReader(8)
	b3 := make([]byte, 64)
	if _, err := r3.Read(b3); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if reflect.DeepEqual(b1, b3) {
		t.Error("different seeds produced identical streams")
	}
}

func TestNodeSeedSpread(t *testing.T) {
	seen := make(map[int64]bool)
	for run := int64(0); run < 10; run++ {
		for node := 0; node < 10; node++ {
			s := NodeSeed(run, node)
			if seen[s] {
				t.Fatalf("NodeSeed collision at run=%d node=%d", run, node)
			}
			seen[s] = true
		}
	}
}

func TestRecordingTracer(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	a := &echoProc{id: 0, peer: 1}
	tracer := &RecordingTracer{}
	eng, err := New(cfg, []Process{a, Silent{}}, WithTracer(tracer))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eng.Run(3)
	// a sends every round; messages delivered in rounds 2 and 3.
	if got := len(tracer.Messages()); got != 2 {
		t.Errorf("traced %d messages, want 2", got)
	}
}

// TestKeyMaterialSeedDomainSeparation pins the entropy-domain split. The
// tag is folded in after a mixing round precisely so that no run seed
// reproduces the key streams: the naive construction NodeSeed(k^tag, n)
// would hand the whole key domain to run seed k^tag.
func TestKeyMaterialSeedDomainSeparation(t *testing.T) {
	const tag = 0x6B65792D646F6D61
	for _, k := range []int64{0, 1, -5, 19950530} {
		for node := 0; node < 8; node++ {
			if KeyMaterialSeed(k, node) == NodeSeed(k^tag, node) {
				t.Fatalf("key stream reproducible by run seed k^tag (k=%d node=%d)", k, node)
			}
			if KeyMaterialSeed(k, node) == NodeSeed(k, node) {
				t.Fatalf("key and run domains collide at (k=%d node=%d)", k, node)
			}
		}
	}
	if KeyMaterialSeed(7, 3) != KeyMaterialSeed(7, 3) {
		t.Fatal("KeyMaterialSeed is not deterministic")
	}
}
