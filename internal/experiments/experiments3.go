package experiments

import (
	"crypto/rand"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
)

// E10Schemes compares real signature schemes: sign/verify microcosts and
// the wall-clock time of a full key-distribution + FD-run cycle. The
// paper names DSA and RSA as suitable schemes; this table shows what the
// choice costs on modern primitives.
//
// RSA is skipped unless includeRSA is set: 2048-bit key generation takes
// seconds per node and dominates everything else (which is itself a
// finding — the paper's RSA suggestion makes key distribution expensive
// in wall-clock terms, not message terms).
func E10Schemes(includeRSA bool) *metrics.Table {
	tbl := metrics.NewTable(
		"E10 — Signature scheme cost (paper §2 cites DSA/RSA as example schemes)",
		"scheme", "sign µs", "verify µs", "sig bytes", "pred bytes", "keydist+1 FD run (n=8) ms")
	names := []string{sig.SchemeEd25519, sig.SchemeECDSA, sig.SchemeHMAC}
	if includeRSA {
		names = append(names, sig.SchemeRSA)
	}
	msg := []byte("benchmark message for scheme comparison")
	for _, name := range names {
		scheme, err := sig.ByName(name)
		if err != nil {
			panic(err)
		}
		signer, err := scheme.Generate(rand.Reader)
		if err != nil {
			panic(err)
		}
		const reps = 200
		start := time.Now()
		var sg []byte
		for i := 0; i < reps; i++ {
			sg, err = signer.Sign(msg)
			if err != nil {
				panic(err)
			}
		}
		signUS := float64(time.Since(start).Microseconds()) / reps
		pred := signer.Predicate()
		start = time.Now()
		for i := 0; i < reps; i++ {
			if !pred.Test(msg, sg) {
				panic("verify failed")
			}
		}
		verifyUS := float64(time.Since(start).Microseconds()) / reps

		start = time.Now()
		c, err := core.New(model.Config{N: 8, T: 2}, core.WithScheme(name))
		if err != nil {
			panic(err)
		}
		if _, err := c.EstablishAuthentication(); err != nil {
			panic(err)
		}
		if _, err := c.RunFailureDiscovery([]byte("v")); err != nil {
			panic(err)
		}
		cycleMS := float64(time.Since(start).Microseconds()) / 1000

		tbl.AddRow(name, signUS, verifyUS, len(sg), len(pred.Bytes()), cycleMS)
	}
	return tbl
}

// All runs every experiment at report scale and returns the tables in
// index order. quick trims the Monte-Carlo counts for fast test runs.
func All(quick bool) []*metrics.Table {
	runs := 100
	sizes := DefaultSizes
	if quick {
		runs = 5
		sizes = []int{4, 8, 16}
	}
	return []*metrics.Table{
		E1KeyDistribution(sizes),
		E2AuthenticatedFD(sizes),
		E3NonAuthFD(sizes),
		E4Amortization([]int{16, 32, 64}, []int{1, 5, 10, 20, 50}),
		E4Measured(8, 2, 15),
		E5Theorem2(runs),
		E6E7Properties(runs),
		E8Baselines(),
		RoundsTable(),
		E9SmallRange(),
		E10Schemes(false),
		E10Bytes(),
		E11LocalAuthBA(runs),
		E12VectorFD(sizes),
		E13AdversaryGrid(runs / 20),
	}
}

// ByID returns the tables for one experiment ID ("E1".."E13"), matching
// the index in EXPERIMENTS.md.
func ByID(id string, quick bool) ([]*metrics.Table, error) {
	runs := 200
	sizes := DefaultSizes
	if quick {
		runs = 10
		sizes = []int{4, 8, 16}
	}
	switch id {
	case "E1":
		return []*metrics.Table{E1KeyDistribution(sizes)}, nil
	case "E2":
		return []*metrics.Table{E2AuthenticatedFD(sizes)}, nil
	case "E3":
		return []*metrics.Table{E3NonAuthFD(sizes)}, nil
	case "E4":
		return []*metrics.Table{E4Amortization([]int{16, 32, 64}, []int{1, 5, 10, 20, 50}), E4Measured(8, 2, 15)}, nil
	case "E5":
		return []*metrics.Table{E5Theorem2(runs)}, nil
	case "E6", "E7":
		return []*metrics.Table{E6E7Properties(runs)}, nil
	case "E8":
		return []*metrics.Table{E8Baselines(), RoundsTable()}, nil
	case "E9":
		return []*metrics.Table{E9SmallRange()}, nil
	case "E10":
		return []*metrics.Table{E10Schemes(false), E10Bytes()}, nil
	case "E11":
		return []*metrics.Table{E11LocalAuthBA(runs)}, nil
	case "E12":
		return []*metrics.Table{E12VectorFD(sizes)}, nil
	case "E13":
		return []*metrics.Table{E13AdversaryGrid(runs / 20)}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
