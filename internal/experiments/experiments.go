// Package experiments regenerates every quantitative claim of the paper
// (and the beyond-paper probes) as tables. Each ExN function is one
// experiment from the index in DESIGN.md / EXPERIMENTS.md; cmd/fdbench
// renders them, the root bench_test.go wraps them in testing.B, and the
// tests in this package pin the expected shapes.
package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Seed is the deterministic base seed for all experiments, so every table
// in EXPERIMENTS.md reproduces bit-for-bit.
const Seed int64 = 19950530 // ICDCS 1995 vintage

// DefaultSizes is the n-sweep used by the message-count experiments.
var DefaultSizes = []int{4, 8, 16, 32, 64, 128}

// tolFor is the default fault bound: the classical t = ⌊(n−1)/3⌋, the
// "constant portion of the nodes" regime in which the paper's O(n·t)
// becomes O(n²).
func tolFor(n int) int { return (n - 1) / 3 }

// mustCluster builds an established cluster or panics (experiments are
// deterministic; failure is a programming error).
func mustCluster(n, t int, seed int64) *core.Cluster {
	c, err := core.New(model.Config{N: n, T: t}, core.WithSeed(seed))
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	if _, err := c.EstablishAuthentication(); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return c
}

// E1KeyDistribution measures the key-distribution protocol against the
// paper's 3n(n−1) messages / 3 communication rounds.
func E1KeyDistribution(sizes []int) *metrics.Table {
	tbl := metrics.NewTable(
		"E1 — Key distribution cost (paper §3.1: 3n(n−1) messages, 3 rounds)",
		"n", "messages", "paper 3n(n-1)", "match", "comm rounds", "bytes")
	for _, n := range sizes {
		c, err := core.New(model.Config{N: n, T: tolFor(n)}, core.WithSeed(Seed+int64(n)))
		if err != nil {
			panic(err)
		}
		rep, err := c.EstablishAuthentication()
		if err != nil {
			panic(err)
		}
		want := keydist.ExpectedMessages(n)
		tbl.AddRow(n, rep.Snapshot.Messages, want,
			rep.Snapshot.Messages == want,
			rep.Snapshot.CommunicationRounds, rep.Snapshot.Bytes)
	}
	return tbl
}

// E2AuthenticatedFD measures the chain protocol (paper Fig. 2) against the
// minimal n−1 messages. It is one of the two tables ported onto the
// campaign engine: the n-sweep is a declarative Spec, and the rows come
// from the campaign's per-group aggregates (one seeded instance per
// group, so the means are the exact run values).
func E2AuthenticatedFD(sizes []int) *metrics.Table {
	tbl := metrics.NewTable(
		"E2 — Authenticated failure discovery (paper Fig. 2: n−1 messages)",
		"n", "t", "messages", "paper n-1", "match", "comm rounds", "bytes")
	rep, err := campaign.Run(campaign.Spec{
		Name:      "e2-authenticated-fd",
		Protocols: []string{campaign.ProtoChain},
		Sizes:     sizes, // classical t = ⌊(n−1)/3⌋ per size
		SeedBase:  Seed,
		SeedCount: 1,
	}, 0)
	if err != nil {
		panic(fmt.Sprintf("experiments: e2 campaign: %v", err))
	}
	for _, g := range mustCleanGroups(rep) {
		msgs := int(g.Messages.Mean)
		tbl.AddRow(g.N, g.T, msgs, g.N-1, msgs == g.N-1,
			int(g.CommRounds.Mean), int(g.Bytes.Mean))
	}
	return tbl
}

// E3NonAuthFD measures the non-authenticated baseline against (t+1)(n−1),
// ported onto the campaign engine with an explicit (n, t) case list.
func E3NonAuthFD(sizes []int) *metrics.Table {
	tbl := metrics.NewTable(
		"E3 — Non-authenticated baseline (paper: O(n·t) messages)",
		"n", "t", "messages", "(t+1)(n-1)", "match", "ratio vs authenticated")
	var cases []campaign.Case
	seen := make(map[campaign.Case]bool)
	for _, n := range sizes {
		for _, t := range []int{1, n / 8, tolFor(n)} {
			c := campaign.Case{N: n, T: t}
			if t < 1 || t >= n || seen[c] {
				continue
			}
			seen[c] = true
			cases = append(cases, c)
		}
	}
	rep, err := campaign.Run(campaign.Spec{
		Name:      "e3-nonauth-fd",
		Protocols: []string{campaign.ProtoNonAuth},
		Cases:     cases,
		SeedBase:  Seed,
		SeedCount: 1,
	}, 0)
	if err != nil {
		panic(fmt.Sprintf("experiments: e3 campaign: %v", err))
	}
	for _, g := range mustCleanGroups(rep) {
		msgs := int(g.Messages.Mean)
		want := fd.NonAuthMessages(g.N, g.T)
		tbl.AddRow(g.N, g.T, msgs, want, msgs == want,
			float64(msgs)/float64(g.N-1))
	}
	return tbl
}

// mustCleanGroups returns the report's groups after asserting no
// instance errored (experiments are deterministic; an error is a
// programming mistake, not a measurement).
func mustCleanGroups(rep *campaign.Report) []campaign.GroupSummary {
	for _, g := range rep.Groups {
		if g.Errors > 0 {
			panic(fmt.Sprintf("experiments: campaign group %s had %d errors", g.Key, g.Errors))
		}
	}
	return rep.Groups
}

// E4Amortization reproduces the paper's headline: one 3n(n−1) key
// distribution plus k×(n−1) authenticated runs, versus k×(t+1)(n−1)
// non-authenticated runs, with the measured crossover.
func E4Amortization(sizes []int, ks []int) *metrics.Table {
	tbl := metrics.NewTable(
		"E4 — Amortization (paper abstract: keydist once, then O(n) per run beats O(n·t))",
		"n", "t", "runs k", "local-auth total", "non-auth total", "local wins", "crossover k*")
	for _, n := range sizes {
		t := tolFor(n)
		if t < 1 {
			continue
		}
		for _, k := range ks {
			a := core.AmortizationFor(n, t, k)
			tbl.AddRow(n, t, k, a.LocalAuthTotal, a.NonAuthTotal,
				a.LocalAuthTotal <= a.NonAuthTotal, a.CrossoverRun)
		}
	}
	return tbl
}

// E4Measured validates the E4 formulas with real measured runs at one
// configuration (slow at large n, so a single point).
func E4Measured(n, t, k int) *metrics.Table {
	tbl := metrics.NewTable(
		fmt.Sprintf("E4b — Amortization, measured (n=%d t=%d)", n, t),
		"runs k", "local-auth measured", "non-auth measured", "formula local", "formula non-auth")
	local := mustCluster(n, t, Seed+41)
	base, err := core.New(model.Config{N: n, T: t}, core.WithSeed(Seed+42))
	if err != nil {
		panic(err)
	}
	for run := 1; run <= k; run++ {
		if _, err := local.RunFailureDiscovery([]byte("v")); err != nil {
			panic(err)
		}
		if _, err := base.RunFailureDiscovery([]byte("v"), core.WithProtocol(core.ProtocolNonAuth)); err != nil {
			panic(err)
		}
		a := core.AmortizationFor(n, t, run)
		tbl.AddRow(run, local.Ledger().TotalMessages(), base.Ledger().TotalMessages(),
			a.LocalAuthTotal, a.NonAuthTotal)
	}
	return tbl
}

// E5Theorem2 exercises the key-distribution guarantees G1/G2 under every
// key-distribution adversary, over `runs` seeded repetitions each.
func E5Theorem2(runs int) *metrics.Table {
	tbl := metrics.NewTable(
		"E5 — Theorem 2: G1 and G2 hold under local authentication",
		"attack", "runs", "G1 violations", "G2 violations")
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		panic(err)
	}
	n := 6
	cfg := model.Config{N: n, T: 2}

	type attack struct {
		name  string
		build func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process
	}
	attacks := []attack{
		{"foreign-claim", func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{
				5: adversary.NewForeignClaimNode(cfg, 5, nodes[1].Signer().Predicate()),
			}
		}},
		{"challenge-relay", func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{
				5: adversary.NewChallengeRelayNode(cfg, 5, 1, nodes[1].Signer().Predicate()),
			}
		}},
		{"mixed-predicate", func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process {
			m, err := adversary.NewMixedPredicateNode(cfg, 5, scheme, sim.SeededReader(seed), model.NewNodeSet(0, 1))
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{5: m}
		}},
		{"shared-key", func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process {
			g, err := adversary.NewSharedKeyGroup(cfg, scheme, sim.SeededReader(seed), 4, 5)
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{4: g[0], 5: g[1]}
		}},
		{"silent", func(seed int64, nodes []*keydist.Node) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{5: sim.Silent{}}
		}},
	}

	for _, atk := range attacks {
		g1viol, g2viol := 0, 0
		for r := 0; r < runs; r++ {
			seed := Seed + int64(r*100)
			nodes := make([]*keydist.Node, n)
			procs := make([]sim.Process, n)
			for i := 0; i < n; i++ {
				node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
				if err != nil {
					panic(err)
				}
				nodes[i] = node
				procs[i] = node
			}
			faulty := model.NewNodeSet()
			for id, p := range atk.build(seed+7, nodes) {
				procs[id] = p
				faulty.Add(id)
				nodes[id] = nil
			}
			eng, err := sim.New(cfg, procs)
			if err != nil {
				panic(err)
			}
			eng.Run(keydist.RoundsTotal)

			// G1: no correct node may hold a CORRECT node's predicate for a
			// faulty node's identity... more precisely: a predicate accepted
			// for node X must be one X could sign for. Here: a faulty node
			// must never be accepted with a correct node's predicate.
			for _, node := range nodes {
				if node == nil {
					continue
				}
				for fid := range faulty {
					p, ok := node.Directory().PredicateOf(fid)
					if !ok {
						continue
					}
					for _, victim := range nodes {
						if victim == nil {
							continue
						}
						if p.Fingerprint() == victim.Signer().Predicate().Fingerprint() {
							g1viol++
						}
					}
				}
			}
			// G2: every correct node's predicate accepted by every correct
			// node, and identically.
			for _, a := range nodes {
				if a == nil {
					continue
				}
				for _, b := range nodes {
					if b == nil {
						continue
					}
					p, ok := a.Directory().PredicateOf(b.ID())
					if !ok || p.Fingerprint() != b.Signer().Predicate().Fingerprint() {
						g2viol++
					}
				}
			}
		}
		tbl.AddRow(atk.name, runs, g1viol, g2viol)
	}
	return tbl
}
