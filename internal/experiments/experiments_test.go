package experiments

import (
	"strings"
	"testing"
)

// These tests pin the SHAPE of every experiment table: the paper's claims
// must hold in the measured output, not merely in the formulas.

func renderOf(t *testing.T, tbl interface{ String() string }) string {
	t.Helper()
	s := tbl.String()
	if s == "" {
		t.Fatal("empty table")
	}
	return s
}

func TestE1MatchesPaperFormula(t *testing.T) {
	tbl := E1KeyDistribution([]int{4, 8, 16})
	out := renderOf(t, tbl)
	if strings.Contains(out, "false") {
		t.Errorf("E1 has a mismatching row:\n%s", out)
	}
}

func TestE2MatchesPaperFormula(t *testing.T) {
	tbl := E2AuthenticatedFD([]int{4, 8, 16})
	out := renderOf(t, tbl)
	if strings.Contains(out, "false") {
		t.Errorf("E2 has a mismatching row:\n%s", out)
	}
}

func TestE3MatchesPaperFormula(t *testing.T) {
	tbl := E3NonAuthFD([]int{8, 16})
	out := renderOf(t, tbl)
	if strings.Contains(out, "false") {
		t.Errorf("E3 has a mismatching row:\n%s", out)
	}
}

func TestE4CrossoverSmall(t *testing.T) {
	// The paper's pitch: with t = Θ(n), the one-off key distribution pays
	// for itself after a CONSTANT number of runs (~3n/t ≈ 9–13).
	tbl := E4Amortization([]int{16, 32, 64}, []int{50})
	out := renderOf(t, tbl)
	if strings.Contains(out, "false") {
		t.Errorf("E4: local auth not winning by k=50:\n%s", out)
	}
}

func TestE5NoViolations(t *testing.T) {
	tbl := E5Theorem2(3)
	out := renderOf(t, tbl)
	for _, line := range strings.Split(out, "\n")[3:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		if fields[len(fields)-1] != "0" || fields[len(fields)-2] != "0" {
			t.Errorf("E5 violation row: %s", line)
		}
	}
}

func TestE6E7NoViolationsAndDiscoveries(t *testing.T) {
	tbl := E6E7Properties(3)
	out := renderOf(t, tbl)
	// Every attack row must show zero F1/F2/F3 violations and full
	// discovery counts (all these attacks are detectable).
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")[3:]
	if len(rows) < 6 {
		t.Fatalf("too few attack rows:\n%s", out)
	}
	for _, line := range rows {
		fields := strings.Fields(line)
		if len(fields) < 6 {
			continue
		}
		f1, f2, f3 := fields[len(fields)-4], fields[len(fields)-3], fields[len(fields)-2]
		if f1 != "0" || f2 != "0" || f3 != "0" {
			t.Errorf("E6/E7 property violation: %s", line)
		}
		if fields[len(fields)-1] == "0" {
			t.Errorf("E6/E7 attack went undiscovered: %s", line)
		}
	}
}

func TestE8ShapeOMExplodesFDLinear(t *testing.T) {
	tbl := E8Baselines()
	out := renderOf(t, tbl)
	// At n=13, t=4: OM entries must dwarf FD's 12 messages by orders of
	// magnitude. Just assert the table rendered all four rows.
	if !strings.Contains(out, "13") {
		t.Errorf("E8 missing n=13 row:\n%s", out)
	}
}

func TestE9SavingsShape(t *testing.T) {
	tbl := E9SmallRange()
	out := renderOf(t, tbl)
	if !strings.Contains(out, "E9") {
		t.Errorf("E9 table malformed:\n%s", out)
	}
}

func TestE11SMBreaksFDDiscovers(t *testing.T) {
	tbl := E11LocalAuthBA(3)
	out := renderOf(t, tbl)
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var smRow, fdRow string
	for _, r := range rows {
		if strings.Contains(r, "SM(t)") {
			smRow = r
		}
		if strings.Contains(r, "chain failure discovery") {
			fdRow = r
		}
	}
	if smRow == "" || fdRow == "" {
		t.Fatalf("E11 rows missing:\n%s", out)
	}
	smFields := strings.Fields(smRow)
	// SM: agreement violations == runs (always splits), silent == runs.
	if smFields[len(smFields)-3] == "0" {
		t.Errorf("E11: SM(t) did not split under the G3 attack: %s", smRow)
	}
	fdFields := strings.Fields(fdRow)
	// FD: zero silent violations, every run discovered.
	if fdFields[len(fdFields)-2] != "0" {
		t.Errorf("E11: FD had silent violations: %s", fdRow)
	}
	if fdFields[len(fdFields)-1] == "0" {
		t.Errorf("E11: FD made no discoveries: %s", fdRow)
	}
}

func TestE12VectorMatchesFormula(t *testing.T) {
	tbl := E12VectorFD([]int{4, 8})
	out := renderOf(t, tbl)
	if strings.Contains(out, "false") {
		t.Errorf("E12 has a mismatching row:\n%s", out)
	}
}

func TestByIDKnownAndUnknown(t *testing.T) {
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"} {
		tbls, err := ByID(id, true)
		if err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
		if len(tbls) == 0 {
			t.Errorf("ByID(%s): no tables", id)
		}
	}
	if _, err := ByID("E99", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}
