package experiments

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// E12VectorFD — beyond-paper composition: all n nodes propose at once
// through n rotated chain instances sharing the same rounds (the
// failure-discovery analogue of interactive consistency). The point is
// the amortization argument at full tilt: ONE key distribution, then a
// whole vector round costs n(n−1) messages in t+1 rounds, versus
// n·(t+1)(n−1) for n baseline runs.
func E12VectorFD(sizes []int) *metrics.Table {
	tbl := metrics.NewTable(
		"E12 — Vector failure discovery (n simultaneous senders, beyond-paper)",
		"n", "t", "messages", "n(n-1)", "match", "rounds", "baseline n runs")
	for _, n := range sizes {
		t := tolFor(n)
		cfg := model.Config{N: n, T: t}
		scheme, err := sig.ByName(sig.SchemeEd25519)
		if err != nil {
			panic(err)
		}

		// Key distribution (local authentication) once.
		kdProcs := make([]sim.Process, n)
		kdNodes := make([]*keydist.Node, n)
		for i := 0; i < n; i++ {
			node, err := keydist.NewNode(cfg, model.NodeID(i), scheme, sim.SeededReader(sim.NodeSeed(Seed+12, i)))
			if err != nil {
				panic(err)
			}
			kdNodes[i] = node
			kdProcs[i] = node
		}
		eng, err := sim.New(cfg, kdProcs)
		if err != nil {
			panic(err)
		}
		eng.Run(keydist.RoundsTotal)

		// One vector round: everyone proposes.
		procs := make([]sim.Process, n)
		for i := 0; i < n; i++ {
			node, err := fd.NewVectorNode(cfg, model.NodeID(i), kdNodes[i].Signer(), kdNodes[i].Directory(),
				[]byte(fmt.Sprintf("proposal-%d", i)))
			if err != nil {
				panic(err)
			}
			procs[i] = node
		}
		counters := metrics.NewCounters()
		eng, err = sim.New(cfg, procs, sim.WithCounters(counters))
		if err != nil {
			panic(err)
		}
		eng.Run(fd.ChainEngineRounds(t))

		want := fd.VectorMessages(n)
		tbl.AddRow(n, t, counters.Messages(), want,
			counters.Messages() == want,
			counters.CommunicationRounds(),
			n*fd.NonAuthMessages(n, t))
	}
	return tbl
}
