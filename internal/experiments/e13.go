package experiments

import (
	"strings"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/sig"
)

// E13AdversaryGrid — the adversary-strategy conformance sweep: every
// registered protocol driver against the composable behavior families
// (crash, targeted drop, bounded delay, duplicate flood, payload
// tampering, partitioned equivocation, seeded coalitions), each
// completed run scored against the paper's predicates
// (campaign.Verdict). The table is the paper's F1–F3 claims as a
// measured grid: the authenticated protocols stay conformant under
// every mix, the full agreement protocols (fdba, sm) additionally hold
// agreement under their strict reading — discoveries never excuse a
// split decision — while the expected-failure rows (the simplified
// small-range variant under suppression) disagree exactly where the
// theory says they may.
func E13AdversaryGrid(seeds int) *metrics.Table {
	if seeds < 1 {
		seeds = 1
	}
	spec := campaign.Spec{
		Name:      "E13",
		Protocols: protocol.Names(),
		Sizes:     []int{7},
		Schemes:   []string{sig.SchemeToy},
		Adversaries: []string{
			campaign.AdvNone,
			campaign.AdvCrashSender,
			campaign.AdvEquivocate,
			"coalition:size=2,behavior=crash,round=2",
			"coalition:size=1,behavior=delay,delay=2",
			"coalition:size=2,behavior=equivocate,partition=even-odd",
			"relay:behavior=drop,victims=2+3",
			"nodes=1:behavior=duplicate,victims=0,behavior=tamper",
		},
		SeedBase:  19950530,
		SeedCount: seeds,
	}
	rep, err := campaign.Run(spec, 0)
	if err != nil {
		panic(err)
	}
	tbl := metrics.NewTable(
		"E13 — Adversary-strategy conformance grid (F1–F3 as a measured property test)",
		"protocol", "n", "t", "adversary", "runs", "agree", "discover", "conform", "violations")
	for _, g := range mustCleanGroups(rep) {
		violations := "-"
		if len(g.Violations) > 0 {
			violations = strings.Join(g.Violations, " ")
		}
		tbl.AddRow(g.Protocol, g.N, g.T, g.Adversary, g.Instances,
			g.AgreeRate, g.DiscoveryRate,
			float64(g.Conformant)/float64(g.Instances), violations)
	}
	return tbl
}
