package experiments

import (
	"bytes"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// fdAttack describes one adversarial failure-discovery scenario for
// E6/E7: which processes to replace and which property question to ask.
type fdAttack struct {
	name  string
	n, t  int
	value []byte
	// build returns the overrides, given the established cluster.
	build func(c *core.Cluster, seed int64) map[model.NodeID]sim.Process
}

// fdAttacks is the E6/E7 scenario matrix.
func fdAttacks() []fdAttack {
	mk := func(name string, n, t int, value []byte,
		build func(c *core.Cluster, seed int64) map[model.NodeID]sim.Process) fdAttack {
		return fdAttack{name: name, n: n, t: t, value: value, build: build}
	}
	chainNodeFor := func(c *core.Cluster, id model.NodeID) *fd.ChainNode {
		signer, err := c.Signer(id)
		if err != nil {
			panic(err)
		}
		dir, err := c.Directory(id)
		if err != nil {
			panic(err)
		}
		node, err := fd.NewChainNode(c.Config(), id, signer, dir)
		if err != nil {
			panic(err)
		}
		return node
	}
	return []fdAttack{
		mk("silent-relay", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{1: sim.Silent{}}
		}),
		mk("silent-sender", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{0: sim.Silent{}}
		}),
		mk("tamper-relay", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{1: adversary.Wrap(chainNodeFor(c, 1),
				adversary.TamperPayload(model.KindChainValue, adversary.FlipByte(9)))}
		}),
		mk("resign-relay", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			signer, err := c.Signer(1)
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{1: adversary.NewResignRelay(c.Config(), 1, signer, []byte("forged"))}
		}),
		mk("wrong-name-relay", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			signer, err := c.Signer(1)
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{1: adversary.NewWrongNameRelay(c.Config(), 1, signer, 4)}
		}),
		mk("equivocating-sender", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			signer, err := c.Signer(0)
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{0: adversary.NewEquivocatingSender(c.Config(), signer, []byte("a"), []byte("b"), 3)}
		}),
		mk("split-disseminator", 7, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			return map[model.NodeID]sim.Process{2: adversary.Wrap(chainNodeFor(c, 2),
				adversary.DropTo(model.NewNodeSet(4, 5)))}
		}),
		mk("colluding-pair", 6, 2, []byte("v"), func(c *core.Cluster, _ int64) map[model.NodeID]sim.Process {
			signer0, err := c.Signer(0)
			if err != nil {
				panic(err)
			}
			return map[model.NodeID]sim.Process{
				0: sim.Silent{},
				2: adversary.NewResignRelay(c.Config(), 2, signer0, []byte("forged")),
			}
		}),
	}
}

// E6E7Properties runs the adversarial matrix and checks F1–F3 plus the
// Theorem 4 dichotomy (consistent assignment or discovery) on every run.
func E6E7Properties(runs int) *metrics.Table {
	tbl := metrics.NewTable(
		"E6/E7 — Theorem 4 and F1–F3 under chain-protocol attacks (local authentication)",
		"attack", "runs", "F1 viol", "F2 viol", "F3 viol", "runs w/ discovery")
	for _, atk := range fdAttacks() {
		var f1, f2, f3, disc int
		for r := 0; r < runs; r++ {
			seed := Seed + int64(1000+r)
			c := mustCluster(atk.n, atk.t, seed)
			faulty := model.NewNodeSet()
			var opts []core.RunOption
			for id, p := range atk.build(c, seed) {
				opts = append(opts, core.WithProcess(id, p))
				faulty.Add(id)
			}
			rep, err := c.RunFailureDiscovery(atk.value, opts...)
			if err != nil {
				panic(err)
			}
			if core.CheckF1(rep.Outcomes, faulty) != nil {
				f1++
			}
			if core.CheckF2(rep.Outcomes, faulty) != nil {
				f2++
			}
			if core.CheckF3(rep.Outcomes, faulty, fd.Sender, atk.value) != nil {
				f3++
			}
			if rep.FailureDiscovered() {
				disc++
			}
		}
		tbl.AddRow(atk.name, runs, f1, f2, f3, disc)
	}
	return tbl
}

// E8Baselines contrasts the agreement substrate costs: OM(t)'s exponential
// relayed entries, SM(t)'s quadratic messages, and FD's linear messages.
func E8Baselines() *metrics.Table {
	tbl := metrics.NewTable(
		"E8 — Protocol cost context ([4] OM/SM vs failure discovery)",
		"n", "t", "OM(t) entries", "SM(t) messages", "FDBA failure-free msgs", "FD messages")
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {10, 3}, {13, 4}} {
		cfg := model.Config{N: tc.n, T: tc.t}

		// OM(t): measure relayed entries.
		entries := new(atomic.Int64)
		procs := make([]sim.Process, tc.n)
		for i := 0; i < tc.n; i++ {
			opts := []ba.EIGOption{ba.WithEntryCounter(entries)}
			if model.NodeID(i) == ba.Sender {
				opts = append(opts, ba.WithEIGValue([]byte("v")))
			}
			n, err := ba.NewEIGNode(cfg, model.NodeID(i), opts...)
			if err != nil {
				panic(err)
			}
			procs[i] = n
		}
		eng, err := sim.New(cfg, procs)
		if err != nil {
			panic(err)
		}
		eng.Run(ba.EIGEngineRounds(tc.t))

		// SM(t) and FDBA: measured over global auth.
		smMsgs := runSMMeasured(tc.n, tc.t)
		fdbaMsgs := runFDBAMeasured(tc.n, tc.t)

		tbl.AddRow(tc.n, tc.t, entries.Load(), smMsgs, fdbaMsgs, tc.n-1)
	}
	return tbl
}

// runSMMeasured runs a failure-free SM(t) and returns its message count.
func runSMMeasured(n, t int) int {
	cfg := model.Config{N: n, T: t}
	signers, dir := globalSigners(n, Seed+int64(n))
	procs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		var opts []ba.SMOption
		if model.NodeID(i) == ba.Sender {
			opts = append(opts, ba.WithSMValue([]byte("v")))
		}
		node, err := ba.NewSMNode(cfg, model.NodeID(i), signers[i], dir, opts...)
		if err != nil {
			panic(err)
		}
		procs[i] = node
	}
	counters := metrics.NewCounters()
	eng, err := sim.New(cfg, procs, sim.WithCounters(counters))
	if err != nil {
		panic(err)
	}
	eng.Run(ba.SMEngineRounds(t))
	return counters.Messages()
}

// runFDBAMeasured runs a failure-free FDBA and returns its message count.
func runFDBAMeasured(n, t int) int {
	cfg := model.Config{N: n, T: t}
	signers, dir := globalSigners(n, Seed+int64(2*n))
	procs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		node, err := ba.NewFDBANode(cfg, model.NodeID(i), signers[i], dir, []byte("v"))
		if err != nil {
			panic(err)
		}
		procs[i] = node
	}
	counters := metrics.NewCounters()
	eng, err := sim.New(cfg, procs, sim.WithCounters(counters))
	if err != nil {
		panic(err)
	}
	eng.Run(ba.FDBAEngineRounds(t))
	return counters.Messages()
}

// globalSigners builds a shared-directory signer set.
func globalSigners(n int, seed int64) ([]sig.Signer, sig.MapDirectory) {
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		panic(err)
	}
	dir := make(sig.MapDirectory, n)
	signers := make([]sig.Signer, n)
	for i := 0; i < n; i++ {
		s, err := scheme.Generate(sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			panic(err)
		}
		signers[i] = s
		dir[model.NodeID(i)] = s.Predicate()
	}
	return signers, dir
}

// E9SmallRange measures the small-range variant's savings and documents
// its split-attack gap.
func E9SmallRange() *metrics.Table {
	tbl := metrics.NewTable(
		"E9 — Small value range variant (paper §5: values for missing messages)",
		"n", "t", "value", "messages", "chain-protocol messages", "saving")
	for _, n := range []int{8, 16, 32} {
		t := tolFor(n)
		for _, v := range []byte{0, 1} {
			c := mustCluster(n, t, Seed+int64(9*n)+int64(v))
			rep, err := c.RunFailureDiscovery([]byte{v}, core.WithProtocol(core.ProtocolSmallRange))
			if err != nil {
				panic(err)
			}
			saving := (n - 1) - rep.Snapshot.Messages
			tbl.AddRow(n, t, v, rep.Snapshot.Messages, n-1, saving)
		}
	}
	return tbl
}

// E10Bytes measures bytes on the wire per protocol and the linear growth
// of chain signatures with chain position.
func E10Bytes() *metrics.Table {
	tbl := metrics.NewTable(
		"E10b — Bytes on the wire (chain signatures grow linearly in hops)",
		"n", "t", "protocol", "messages", "total bytes", "bytes/message")
	for _, n := range []int{8, 16, 32} {
		t := tolFor(n)
		c := mustCluster(n, t, Seed+int64(10*n))
		chainRep, err := c.RunFailureDiscovery([]byte("value"))
		if err != nil {
			panic(err)
		}
		naRep, err := c.RunFailureDiscovery([]byte("value"), core.WithProtocol(core.ProtocolNonAuth))
		if err != nil {
			panic(err)
		}
		kd := c.Ledger().Reports()[0]
		for _, row := range []struct {
			name string
			rep  core.Report
		}{{"keydist", kd}, {"chain-fd", chainRep}, {"nonauth-fd", naRep}} {
			msgs := row.rep.Snapshot.Messages
			bytesTotal := row.rep.Snapshot.Bytes
			per := 0.0
			if msgs > 0 {
				per = float64(bytesTotal) / float64(msgs)
			}
			tbl.AddRow(n, t, row.name, msgs, bytesTotal, per)
		}
	}
	return tbl
}

// E11LocalAuthBA reproduces the paper's §6 open problem: the mixed-
// predicate G3 attack splits SM(t) agreement silently, while the chain FD
// protocol discovers the same attack.
func E11LocalAuthBA(runs int) *metrics.Table {
	tbl := metrics.NewTable(
		"E11 — BA vs FD under local authentication with a G3 (mixed-predicate) attacker",
		"protocol", "runs", "agreement violations", "silent violations", "runs w/ discovery")
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		panic(err)
	}
	cfg := model.Config{N: 4, T: 1}

	var smViol, smSilent, smDisc int
	var fdViol, fdSilent, fdDisc int
	for r := 0; r < runs; r++ {
		seed := Seed + int64(1100+r)
		mixed, err := adversary.NewMixedPredicateNode(cfg, 0, scheme, sim.SeededReader(seed), model.NewNodeSet(1))
		if err != nil {
			panic(err)
		}
		signers, dirs := localAuthWith(cfg, seed, map[model.NodeID]sim.Process{0: mixed})

		// SM(t) run with the equivocating mixed-key sender.
		smNodes := make([]*ba.SMNode, cfg.N)
		procs := make([]sim.Process, cfg.N)
		for i := 1; i < cfg.N; i++ {
			node, err := ba.NewSMNode(cfg, model.NodeID(i), signers[i], dirs[i])
			if err != nil {
				panic(err)
			}
			smNodes[i] = node
			procs[i] = node
		}
		procs[0] = mixedSMSender(mixed, cfg, []byte("v"), []byte("u"))
		eng, err := sim.New(cfg, procs)
		if err != nil {
			panic(err)
		}
		eng.Run(ba.SMEngineRounds(cfg.T))
		if !bytes.Equal(smNodes[1].Decision().Value, smNodes[2].Decision().Value) {
			smViol++
			smSilent++ // SM has no discovery notion at all
		}

		// Chain FD run with the same attack shape.
		fdNodes := make([]*fd.ChainNode, cfg.N)
		procs = make([]sim.Process, cfg.N)
		for i := 1; i < cfg.N; i++ {
			node, err := fd.NewChainNode(cfg, model.NodeID(i), signers[i], dirs[i])
			if err != nil {
				panic(err)
			}
			fdNodes[i] = node
			procs[i] = node
		}
		procs[0] = mixedChainSender(mixed, []byte("v"))
		eng, err = sim.New(cfg, procs)
		if err != nil {
			panic(err)
		}
		eng.Run(fd.ChainEngineRounds(cfg.T))

		discovered := false
		var outcomes []model.Outcome
		for i := 1; i < cfg.N; i++ {
			o := fdNodes[i].Outcome()
			outcomes = append(outcomes, o)
			if o.Discovery != nil {
				discovered = true
			}
		}
		if discovered {
			fdDisc++
		}
		if core.CheckF2(outcomes, model.NewNodeSet(0)) != nil {
			fdViol++
			if !discovered {
				fdSilent++
			}
		}
	}
	tbl.AddRow("SM(t) byzantine agreement", runs, smViol, smSilent, smDisc)
	tbl.AddRow("chain failure discovery", runs, fdViol, fdSilent, fdDisc)
	return tbl
}

// mixedSMSender equivocates with the mixed keys over KindSigned.
func mixedSMSender(mixed *adversary.MixedPredicateNode, cfg model.Config, v, u []byte) sim.Process {
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		var out []model.Message
		for _, to := range cfg.Nodes() {
			if to == 0 {
				continue
			}
			value := u
			if to == 1 {
				value = v
			}
			c, err := sig.NewChain(value, mixed.SignerFor(to))
			if err != nil {
				panic(err)
			}
			out = append(out, model.Message{To: to, Kind: model.KindSigned, Payload: c.Marshal()})
		}
		return out
	})
}

// mixedChainSender starts the FD chain signed with P_1's key variant.
func mixedChainSender(mixed *adversary.MixedPredicateNode, v []byte) sim.Process {
	return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round != 1 {
			return nil
		}
		c, err := sig.NewChain(v, mixed.SignerFor(1))
		if err != nil {
			panic(err)
		}
		return []model.Message{{To: 1, Kind: model.KindChainValue, Payload: c.Marshal()}}
	})
}

// localAuthWith runs key distribution with overrides and returns signers
// and directories (nil entries for overridden slots).
func localAuthWith(cfg model.Config, seed int64, overrides map[model.NodeID]sim.Process) ([]sig.Signer, []sig.Directory) {
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		panic(err)
	}
	procs := make([]sim.Process, cfg.N)
	nodes := make([]*keydist.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := model.NodeID(i)
		if p, ok := overrides[id]; ok {
			procs[i] = p
			continue
		}
		n, err := keydist.NewNode(cfg, id, scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			panic(err)
		}
		nodes[i] = n
		procs[i] = n
	}
	eng, err := sim.New(cfg, procs)
	if err != nil {
		panic(err)
	}
	eng.Run(keydist.RoundsTotal)
	signers := make([]sig.Signer, cfg.N)
	dirs := make([]sig.Directory, cfg.N)
	for i, n := range nodes {
		if n == nil {
			continue
		}
		signers[i] = n.Signer()
		dirs[i] = n.Directory()
	}
	return signers, dirs
}

// RoundsTable summarizes round counts per protocol (part of E8's context).
func RoundsTable() *metrics.Table {
	tbl := metrics.NewTable(
		"E8b — Communication rounds per protocol",
		"protocol", "rounds (as function of t)", "t=1", "t=3", "t=5")
	row := func(name, formula string, f func(t int) int) {
		tbl.AddRow(name, formula, f(1), f(3), f(5))
	}
	row("key distribution", "3", func(int) int { return keydist.CommunicationRounds })
	row("chain FD", "t+1", func(t int) int { return fd.ChainCommunicationRounds(100, t) })
	row("non-auth FD", "2", func(t int) int {
		if t == 0 {
			return 1
		}
		return 2
	})
	row("OM(t)", "t+1", func(t int) int { return t + 1 })
	row("SM(t)", "t+1", func(t int) int { return t + 1 })
	row("FDBA failure-free", "t+1", func(t int) int { return fd.ChainCommunicationRounds(100, t) })
	row("FDBA worst case", "2t+5", func(t int) int { return 2*t + 5 })
	return tbl
}
