// Package faults injects worker failures into scheduler links for the
// robustness tests: crash at the k-th batch, stall past the lease
// deadline, disconnect mid-result, corrupt result payloads. A Behavior
// filters the frames crossing a transport.Conn — the same composable
// behavior-stack idiom internal/adversary uses for protocol-level
// faults, applied one layer down to the campaign control plane. Wrap a
// worker's conn before handing it to sched.RunWorker and the worker
// code itself stays untouched; the coordinator must survive whatever
// the stack does.
package faults

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sched"
	"repro/internal/transport"
)

// ErrInjected marks failures manufactured by this package, so tests can
// distinguish injected faults from real bugs.
var ErrInjected = errors.New("faults: injected failure")

// Behavior filters the frames crossing a wrapped conn. Inbound sees
// coordinator→worker frames (as Recv returns them), Outbound sees
// worker→coordinator frames (as Send submits them). Returning a nil
// frame silently drops it; returning an error kills the connection —
// the worker process "crashes". Behaviors run under the wrapper's lock,
// so counters need no atomics.
type Behavior interface {
	Inbound(frame []byte) ([]byte, error)
	Outbound(frame []byte) ([]byte, error)
}

// Wrap stacks behaviors over conn, applied in order on both directions.
func Wrap(conn transport.Conn, behaviors ...Behavior) transport.Conn {
	return &faultConn{inner: conn, stack: behaviors}
}

type faultConn struct {
	inner transport.Conn
	mu    sync.Mutex
	stack []Behavior
}

func (c *faultConn) Send(frame []byte) error {
	c.mu.Lock()
	f := frame
	for _, b := range c.stack {
		var err error
		if f, err = b.Outbound(f); err != nil {
			c.mu.Unlock()
			c.inner.Close()
			return err
		}
		if f == nil {
			c.mu.Unlock()
			return nil
		}
	}
	c.mu.Unlock()
	return c.inner.Send(f)
}

func (c *faultConn) Recv() ([]byte, error) {
	for {
		frame, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		c.mu.Lock()
		f := frame
		for _, b := range c.stack {
			if f, err = b.Inbound(f); err != nil {
				c.mu.Unlock()
				c.inner.Close()
				return nil, err
			}
			if f == nil {
				break
			}
		}
		c.mu.Unlock()
		if f != nil {
			return f, nil
		}
	}
}

func (c *faultConn) Close() error { return c.inner.Close() }

// passthrough is the do-nothing base behaviors embed for the direction
// they leave alone.
type passthrough struct{}

func (passthrough) Inbound(f []byte) ([]byte, error)  { return f, nil }
func (passthrough) Outbound(f []byte) ([]byte, error) { return f, nil }

// CrashAtBatch kills the connection when the k-th lease (1-based)
// arrives: the worker "crashes" holding an unexecuted batch, and the
// coordinator sees an abrupt disconnect.
func CrashAtBatch(k int) Behavior { return &crashAtBatch{k: k} }

type crashAtBatch struct {
	passthrough
	k, seen int
}

func (c *crashAtBatch) Inbound(f []byte) ([]byte, error) {
	if sched.FrameKind(f) == sched.KindLease {
		c.seen++
		if c.seen >= c.k {
			return nil, fmt.Errorf("%w: crash at batch %d", ErrInjected, c.seen)
		}
	}
	return f, nil
}

// StallAtBatch turns the worker into a zombie from the k-th lease on:
// the lease is delivered, but every outbound frame — heartbeats and
// results alike — is silently dropped. The connection stays open, so
// only lease expiry can unstick the coordinator.
func StallAtBatch(k int) Behavior { return &stallAtBatch{k: k} }

type stallAtBatch struct {
	passthrough
	k, seen  int
	stalling bool
}

func (s *stallAtBatch) Inbound(f []byte) ([]byte, error) {
	if sched.FrameKind(f) == sched.KindLease {
		s.seen++
		if s.seen >= s.k {
			s.stalling = true
		}
	}
	return f, nil
}

func (s *stallAtBatch) Outbound(f []byte) ([]byte, error) {
	if s.stalling {
		return nil, nil
	}
	return f, nil
}

// DisconnectAtResult kills the connection in place of sending the k-th
// result (1-based): the worker did the work, then died before reporting
// it — the batch must be re-run elsewhere.
func DisconnectAtResult(k int) Behavior { return &disconnectAtResult{k: k} }

type disconnectAtResult struct {
	passthrough
	k, seen int
}

func (d *disconnectAtResult) Outbound(f []byte) ([]byte, error) {
	if sched.FrameKind(f) == sched.KindResult {
		d.seen++
		if d.seen >= d.k {
			return nil, fmt.Errorf("%w: disconnect at result %d", ErrInjected, d.seen)
		}
	}
	return f, nil
}

// CorruptResultAt flips a byte in the k-th result frame (1-based),
// leaving later results clean: the checksum must catch it and the
// coordinator must requeue rather than aggregate garbage.
func CorruptResultAt(k int) Behavior { return &corruptResult{k: k} }

// CorruptAllResults flips a byte in EVERY result frame: the worker can
// never deliver a valid result, so its batches must retry elsewhere —
// or exhaust the budget and dead-letter.
func CorruptAllResults() Behavior { return &corruptResult{all: true} }

type corruptResult struct {
	passthrough
	k, seen int
	all     bool
}

func (c *corruptResult) Outbound(f []byte) ([]byte, error) {
	if sched.FrameKind(f) != sched.KindResult {
		return f, nil
	}
	c.seen++
	if !c.all && c.seen != c.k {
		return f, nil
	}
	mangled := make([]byte, len(f))
	copy(mangled, f)
	mangled[len(mangled)-1] ^= 0xFF
	return mangled, nil
}
