package sched_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sched/faults"
	"repro/internal/transport"
)

// TestCoordinatorTelemetryAndDebugSnapshot runs a clean two-worker
// campaign with an observer attached and checks the full telemetry
// surface: join points, balanced lease spans, the final snapshot, and
// the debug HTTP endpoints.
func TestCoordinatorTelemetryAndDebugSnapshot(t *testing.T) {
	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(sink)
	cfg := sched.Config{
		BatchSize: 4,
		LeaseTTL:  5 * time.Second,
		Observer:  rec,
	}
	spec := schedSpec()
	ctx := context.Background()
	coord := sched.NewCoordinator(ctx, cfg)
	fleet := []workerSpec{{name: "w1"}, {name: "w2"}}
	rep, outcome := runDistributedWith(t, ctx, spec, coord, fleet)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(outcome.DLQ) != 0 {
		t.Fatalf("clean run dead-lettered: %+v", outcome.DLQ)
	}

	if got := len(sink.Scoped("sched.worker.join")); got != 2 {
		t.Errorf("join points = %d, want 2", got)
	}
	leases := sink.Scoped("sched.lease")
	begins, ends := 0, 0
	for _, e := range leases {
		switch e.Kind {
		case obs.KindBegin:
			begins++
		case obs.KindEnd:
			ends++
			if !strings.Contains(e.Attrs, "outcome=ok") {
				t.Errorf("clean run lease ended %q", e.Attrs)
			}
			if e.Dur <= 0 {
				t.Errorf("lease span without duration: %+v", e)
			}
		}
	}
	if begins == 0 || begins != ends {
		t.Errorf("lease spans unbalanced: %d begins, %d ends", begins, ends)
	}
	if begins != outcome.Stats.LeasesIssued {
		t.Errorf("lease spans = %d, stats say %d leases issued", begins, outcome.Stats.LeasesIssued)
	}
	if got := len(sink.Scoped("sched.done")); got != 1 {
		t.Errorf("sched.done points = %d, want 1", got)
	}

	snap := coord.Debug()
	if snap.Schema != sched.DebugSchema {
		t.Fatalf("snapshot schema = %q", snap.Schema)
	}
	if snap.Instances != rep.Instances {
		t.Errorf("snapshot instances = %d, report says %d", snap.Instances, rep.Instances)
	}
	if snap.Batches.Done == 0 || snap.Batches.Pending+snap.Batches.Inflight+snap.Batches.Dead != 0 {
		t.Errorf("final snapshot queue not drained: %+v", snap.Batches)
	}
	if snap.Stats != outcome.Stats {
		t.Errorf("snapshot stats %v != outcome stats %v", snap.Stats, outcome.Stats)
	}
	if len(snap.Workers) != 2 {
		t.Errorf("snapshot lists %d workers, want 2", len(snap.Workers))
	}
	// Every lease, result, and heartbeat crossed the counted worker
	// conns, so the aggregate wire stats must be non-zero (and redials
	// zero: pipes never dial).
	if snap.Conn.FramesSent == 0 || snap.Conn.FramesRecv == 0 ||
		snap.Conn.BytesSent == 0 || snap.Conn.BytesRecv == 0 {
		t.Errorf("snapshot conn stats empty: %+v", snap.Conn)
	}
	if snap.Conn.Redials != 0 {
		t.Errorf("pipe transport recorded %d redials", snap.Conn.Redials)
	}

	// The HTTP surface serves the same snapshot plus stdlib expvar/pprof.
	ts := httptest.NewServer(coord.DebugMux())
	defer ts.Close()
	var served sched.DebugSnapshot
	body := httpGet(t, ts.URL+"/debug/sched")
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/debug/sched: %v\n%s", err, body)
	}
	if served.Schema != sched.DebugSchema || served.Batches.Done != snap.Batches.Done {
		t.Errorf("/debug/sched served %+v, want %+v", served, snap)
	}
	if body := httpGet(t, ts.URL+"/debug/vars"); !strings.Contains(string(body), "memstats") {
		t.Error("/debug/vars missing expvar memstats")
	}
	httpGet(t, ts.URL+"/debug/pprof/cmdline")
}

// TestDrainTelemetryRecordsDeadLetters starves the coordinator of
// workers with a short grace so the whole sweep dead-letters, and
// checks the DLQ telemetry matches the outcome.
func TestDrainTelemetryRecordsDeadLetters(t *testing.T) {
	sink := &obs.MemorySink{}
	cfg := sched.Config{
		BatchSize:     4,
		NoWorkerGrace: 30 * time.Millisecond,
		Observer:      obs.NewRecorder(sink),
	}
	coord := sched.NewCoordinator(context.Background(), cfg)
	rep, err := campaign.RunWith(schedSpec(), coord)
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if err := cfg.Observer.Flush(); err != nil {
		t.Fatal(err)
	}
	outcome := coord.Outcome()
	if len(outcome.DLQ) == 0 {
		t.Fatal("starved run produced no dead letters")
	}
	dlqPoints := sink.Scoped("sched.dlq")
	if len(dlqPoints) != len(outcome.DLQ) {
		t.Errorf("%d sched.dlq points for %d DLQ entries", len(dlqPoints), len(outcome.DLQ))
	}
	snap := coord.Debug()
	if snap.Batches.Dead != len(outcome.DLQ) {
		t.Errorf("snapshot says %d dead batches, DLQ has %d", snap.Batches.Dead, len(outcome.DLQ))
	}
	if snap.Stats.DeadLettered != rep.Instances {
		t.Errorf("snapshot dead-lettered %d of %d instances", snap.Stats.DeadLettered, rep.Instances)
	}
}

// runDistributedWith is runDistributed over a caller-built coordinator
// (so tests can poke Debug and DebugMux afterwards).
func runDistributedWith(t *testing.T, ctx context.Context, spec campaign.Spec, coord *sched.Coordinator, fleet []workerSpec) (*campaign.Report, sched.Outcome) {
	t.Helper()
	for _, w := range fleet {
		server, client := transport.Pipe()
		go coord.Attach(server)
		conn := client
		if len(w.stack) > 0 {
			conn = faults.Wrap(client, w.stack...)
		}
		go sched.RunWorker(ctx, conn, sched.WorkerConfig{Name: w.name})
	}
	rep, err := campaign.RunWith(spec, coord)
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	return rep, coord.Outcome()
}

// httpGet fetches url and returns the body, failing the test on any
// error or non-200 status.
func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return body
}
