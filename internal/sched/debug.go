package sched

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
)

// DebugSchema identifies the live scheduler snapshot JSON layout.
const DebugSchema = "fdsched-debug/v1"

// WorkerDebug is one worker's row in the live snapshot.
type WorkerDebug struct {
	Name string `json:"name"`
	Gone bool   `json:"gone"`
	Busy bool   `json:"busy"`
	// Lease and Batch identify the lease the worker holds (Busy only).
	Lease int `json:"lease,omitempty"`
	Batch int `json:"batch,omitempty"`
	// HeartbeatAgeMS is how long ago the worker's last heartbeat arrived;
	// -1 until the first one. A live worker whose age approaches the
	// lease TTL is about to be revoked.
	HeartbeatAgeMS int64 `json:"heartbeat_age_ms"`
}

// BatchDebug tallies the task queue by state.
type BatchDebug struct {
	Pending  int `json:"pending"`
	Inflight int `json:"inflight"`
	Done     int `json:"done"`
	Dead     int `json:"dead"`
}

// DebugSnapshot is the coordinator's live view: queue depth, control-
// plane counters, and per-worker status. It is advisory telemetry
// (wall-clock, placement) — exactly the data the deterministic report
// excludes — published lock-free by the run loop on every state change.
type DebugSnapshot struct {
	Schema    string                `json:"schema"`
	UpdatedAt time.Time             `json:"updated_at"`
	Instances int                   `json:"instances"`
	Batches   BatchDebug            `json:"batches"`
	Stats     metrics.SchedCounters `json:"stats"`
	// Conn aggregates wire traffic over every adopted worker connection
	// — frames, payload bytes, and dial retries — so flaky links show up
	// live (a climbing redial count is a degraded network, not a bug in
	// the lease protocol).
	Conn    transport.ConnStatsSnapshot `json:"conn"`
	Workers []WorkerDebug               `json:"workers,omitempty"`
}

// Debug returns the latest published snapshot (zero-valued before
// Execute starts). Safe to call from any goroutine at any time.
func (c *Coordinator) Debug() DebugSnapshot {
	if s := c.snap.Load(); s != nil {
		return *s
	}
	return DebugSnapshot{Schema: DebugSchema}
}

// publish rebuilds and stores the snapshot; called only from the run
// loop, so it reads loop state without locks and readers see a fresh
// immutable copy.
func (r *runLoop) publish(now time.Time) {
	if r.snap == nil {
		return
	}
	s := &DebugSnapshot{
		Schema:    DebugSchema,
		UpdatedAt: now,
		Instances: len(r.instances),
		Stats:     r.outcome.Stats,
		Conn:      r.connStats.Snapshot(),
	}
	for _, t := range r.tasks {
		switch t.state {
		case taskPending:
			s.Batches.Pending++
		case taskInflight:
			s.Batches.Inflight++
		case taskDone:
			s.Batches.Done++
		case taskDead:
			s.Batches.Dead++
		}
	}
	for _, w := range r.workers {
		wd := WorkerDebug{Name: w.name, Gone: w.gone, Busy: w.busy != nil, HeartbeatAgeMS: -1}
		if w.busy != nil {
			wd.Lease = w.busy.id
			wd.Batch = w.busy.task.id
		}
		if !w.lastBeat.IsZero() {
			wd.HeartbeatAgeMS = now.Sub(w.lastBeat).Milliseconds()
		}
		s.Workers = append(s.Workers, wd)
	}
	r.snap.Store(s)
}

// DebugMux returns the coordinator's debug HTTP surface:
//
//	/debug/sched  — the live DebugSnapshot as JSON
//	/debug/vars   — stdlib expvar (cmdline, memstats)
//	/debug/pprof/ — stdlib pprof profiles
//
// cmd/fdcampaign serves it behind -debug-addr while a distributed
// campaign runs; everything on it is advisory telemetry, so exposing it
// can never perturb the campaign's results.
func (c *Coordinator) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/sched", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Debug())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
