package sched

import (
	"strings"
	"testing"
	"time"
)

func TestWireRoundTrips(t *testing.T) {
	name, err := decodeHello(encodeHello("w1"))
	if err != nil || name != "w1" {
		t.Fatalf("hello round-trip = %q, %v", name, err)
	}
	payload := []byte(`[{"index":0}]`)
	lease, err := decodeLease(encodeLease(7, 2, 1500, payload))
	if err != nil {
		t.Fatalf("lease round-trip: %v", err)
	}
	if lease.ID != 7 || lease.Attempt != 2 || lease.Deadline != 1500 || string(lease.Payload) != string(payload) {
		t.Fatalf("lease round-trip mangled: %+v", lease)
	}
	res, err := decodeResult(encodeResult(7, payload))
	if err != nil || res.ID != 7 || string(res.Payload) != string(payload) {
		t.Fatalf("result round-trip = %+v, %v", res, err)
	}
	id, msg, err := decodeNack(encodeNack(9, "boom"))
	if err != nil || id != 9 || msg != "boom" {
		t.Fatalf("nack round-trip = %d, %q, %v", id, msg, err)
	}
	if id, err := decodeHeartbeat(encodeHeartbeat(4)); err != nil || id != 4 {
		t.Fatalf("heartbeat round-trip = %d, %v", id, err)
	}
	for kind, frame := range map[int][]byte{
		KindHello:     encodeHello("x"),
		KindLease:     encodeLease(1, 1, 1, payload),
		KindResult:    encodeResult(1, payload),
		KindNack:      encodeNack(1, ""),
		KindHeartbeat: encodeHeartbeat(1),
		KindShutdown:  encodeShutdown("done"),
	} {
		if got := FrameKind(frame); got != kind {
			t.Errorf("FrameKind = %d, want %d", got, kind)
		}
	}
}

func TestWireChecksumCatchesCorruption(t *testing.T) {
	payload := []byte(`[{"index":0,"agreed":true}]`)
	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"lease", encodeLease(3, 1, 1000, payload)},
		{"result", encodeResult(3, payload)},
	} {
		frame := append([]byte(nil), tc.frame...)
		frame[len(frame)-1] ^= 0xFF
		var err error
		if tc.name == "lease" {
			var m leaseMsg
			m, err = decodeLease(frame)
			// The ID must survive corruption so the worker can NACK
			// precisely.
			if m.ID != 3 {
				t.Errorf("%s: corrupt frame lost ID: %d", tc.name, m.ID)
			}
		} else {
			_, err = decodeResult(frame)
		}
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("%s: corrupted payload decoded without checksum error: %v", tc.name, err)
		}
	}
	// A hello from a different protocol is refused by tag.
	if _, err := decodeHello(encodeLease(1, 1, 1, payload)); err == nil {
		t.Error("decodeHello accepted a lease frame")
	}
}

func TestBackoffDelayDeterministicAndCapped(t *testing.T) {
	cfg := Config{BackoffBase: 50 * time.Millisecond, BackoffMax: 2 * time.Second}.withDefaults()
	if a, b := cfg.backoffDelay(3, 2), cfg.backoffDelay(3, 2); a != b {
		t.Fatalf("backoff not deterministic: %v vs %v", a, b)
	}
	if a, b := cfg.backoffDelay(3, 1), cfg.backoffDelay(4, 1); a == b {
		t.Fatalf("jitter did not separate batches: both %v", a)
	}
	for attempt := 1; attempt <= 20; attempt++ {
		d := cfg.backoffDelay(0, attempt)
		if d < cfg.BackoffBase || d > cfg.BackoffMax+cfg.BackoffMax/4 {
			t.Fatalf("attempt %d: delay %v outside [base, max+max/4]", attempt, d)
		}
	}
	// The exponential portion grows until the cap.
	if cfg.backoffDelay(0, 1) >= cfg.BackoffMax {
		t.Fatal("first retry already at cap")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.BatchSize < 1 || c.LeaseTTL <= 0 || c.RetryBudget < 1 ||
		c.BackoffBase <= 0 || c.BackoffMax <= 0 || c.MinWorkers < 1 || c.NoWorkerGrace <= 0 {
		t.Fatalf("zero Config did not default every field: %+v", c)
	}
}
