package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/transport"
)

// WorkerConfig tunes one worker loop.
type WorkerConfig struct {
	// Name identifies the worker in the coordinator's attempt logs and
	// exclusion sets (default "worker"; the coordinator de-duplicates).
	Name string
	// Heartbeat is the deadline-extension interval while executing a
	// lease. Zero derives it from each lease's deadline (a third, floored
	// at 5ms), which keeps long batches alive without tuning.
	Heartbeat time.Duration
	// Options configure the worker's campaign.Executor (setup cache etc.).
	Options []campaign.Option
}

// RunWorker speaks the worker side of the scheduler protocol on conn
// until the coordinator sends shutdown, the connection dies, or ctx is
// canceled. Each lease's instances run on a private campaign.Executor, so
// a worker process amortizes setup across every batch it is handed —
// without ever being able to affect the report's bytes (results are a
// pure function of the instances).
func RunWorker(ctx context.Context, conn transport.Conn, cfg WorkerConfig) error {
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if err := conn.Send(encodeHello(cfg.Name)); err != nil {
		conn.Close()
		return fmt.Errorf("sched: worker hello: %w", err)
	}
	// ctx cancellation surfaces as a conn error on the blocked Recv.
	watchdog := make(chan struct{})
	defer close(watchdog)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-watchdog:
		}
	}()

	exec := campaign.NewExecutor(cfg.Options...)
	for {
		frame, err := conn.Recv()
		if err != nil {
			conn.Close()
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("sched: worker link lost: %w", err)
		}
		switch FrameKind(frame) {
		case KindLease:
			lease, err := decodeLease(frame)
			if err != nil {
				// The ID decodes before the checksum check, so even a
				// corrupt lease usually NACKs precisely.
				conn.Send(encodeNack(lease.ID, err.Error()))
				continue
			}
			var instances []campaign.Instance
			if err := json.Unmarshal(lease.Payload, &instances); err != nil {
				conn.Send(encodeNack(lease.ID, "undecodable batch payload: "+err.Error()))
				continue
			}
			if err := runLease(conn, exec, cfg, lease, instances); err != nil {
				conn.Close()
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
		case KindShutdown:
			conn.Close()
			return nil
		default:
			// Unknown traffic is ignored, not fatal: a newer coordinator
			// may speak frames this worker predates.
		}
	}
}

// runLease executes one leased batch under a heartbeat, then reports the
// results. Errors mean the link is unusable.
func runLease(conn transport.Conn, exec *campaign.Executor, cfg WorkerConfig, lease leaseMsg, instances []campaign.Instance) error {
	interval := cfg.Heartbeat
	if interval <= 0 {
		interval = time.Duration(lease.Deadline) * time.Millisecond / 3
		if interval < 5*time.Millisecond {
			interval = 5 * time.Millisecond
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if conn.Send(encodeHeartbeat(lease.ID)) != nil {
					return
				}
			case <-stop:
				return
			}
		}
	}()

	results := make([]campaign.Result, len(instances))
	for i, inst := range instances {
		results[i] = exec.Run(inst)
	}
	payload, err := json.Marshal(results)
	if err != nil {
		// Results are plain data; unreachable. NACK so the coordinator
		// requeues instead of waiting out the lease.
		if nerr := conn.Send(encodeNack(lease.ID, "unmarshalable results: "+err.Error())); nerr != nil {
			return fmt.Errorf("sched: worker nack: %w", nerr)
		}
		return nil
	}
	if err := conn.Send(encodeResult(lease.ID, payload)); err != nil {
		return fmt.Errorf("sched: worker result send: %w", err)
	}
	return nil
}
