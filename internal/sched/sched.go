// Package sched is the fault-tolerant coordinator/worker campaign
// scheduler: the distributed counterpart of campaign.Local. A
// Coordinator expands nothing itself — it implements campaign.Scheduler,
// so campaign.RunWith hands it the deterministically expanded instance
// list — and leases contiguous instance batches to workers over
// transport.Conn links (in-memory pipes in tests, TCP across processes).
//
// The paper's subject is agreement despite faulty participants; this
// package applies the same discipline to the campaign infrastructure
// itself. Leases carry deadlines extended by heartbeats; the coordinator
// detects expiry, disconnect, NACK, and corrupt results, requeues the
// batch with exponential backoff onto workers outside the batch's
// excluded-worker set, and after a bounded retry budget parks the batch
// in a dead-letter queue recording every attempt's worker, error, and
// timing — the sweep COMPLETES and reports the DLQ rather than hanging
// or aborting.
//
// Determinism contract: the aggregate fdcampaign/v1 report is
// byte-identical regardless of worker count, placement, or retry
// history. The scheduler can guarantee this because instance execution
// is a pure function of the instance (campaign.Executor), results land
// in their instance's slot no matter which attempt produced them, and
// everything the scheduler DOES decide — who ran what, when, after how
// many retries — is recorded only in the Outcome envelope next to the
// report, never inside it. sched/faults plus the invariance tests prove
// the contract under injected crash, stall, disconnect, and
// corrupt-result schedules.
package sched

import (
	"hash/fnv"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// Config tunes the coordinator. The zero value is usable: every field
// falls back to the default documented on it.
type Config struct {
	// BatchSize is the number of instances per lease (default 8).
	// Batches are contiguous index ranges, so a batch is identified by
	// its [Lo, Hi) slice of the expansion order.
	BatchSize int
	// LeaseTTL is how long a worker may hold a lease without a heartbeat
	// before the coordinator revokes and requeues it (default 30s).
	LeaseTTL time.Duration
	// RetryBudget bounds the attempts per batch, the first included
	// (default 4). A batch failing RetryBudget times is dead-lettered.
	RetryBudget int
	// BackoffBase and BackoffMax shape the requeue delay: the k-th retry
	// waits min(BackoffBase·2^(k−1), BackoffMax) plus deterministic
	// jitter (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MinWorkers delays the first dispatch until this many workers have
	// joined (default 1), so a fixed fleet's fault schedule is
	// reproducible instead of racing the joins.
	MinWorkers int
	// NoWorkerGrace bounds how long the coordinator waits with work
	// pending and ZERO connected workers before dead-lettering the rest
	// of the sweep (default 30s) — the no-hang guarantee even when the
	// whole fleet dies.
	NoWorkerGrace time.Duration
	// Observer receives coordinator lifecycle telemetry when set: worker
	// joins and losses, lease spans (issue to result/failure), expiries,
	// requeues, dead-letters, and per-worker heartbeat gaps. Telemetry is
	// a pure reader — it never influences scheduling, the report, or the
	// Outcome. nil (the default) records nothing.
	Observer *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.BatchSize < 1 {
		c.BatchSize = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.RetryBudget < 1 {
		c.RetryBudget = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.MinWorkers < 1 {
		c.MinWorkers = 1
	}
	if c.NoWorkerGrace <= 0 {
		c.NoWorkerGrace = 30 * time.Second
	}
	return c
}

// backoffDelay computes the requeue delay before attempt number attempt
// (1-based count of attempts already failed): capped exponential backoff
// plus deterministic jitter derived from (batch, attempt), so retries of
// different batches spread out without a global RNG — and tests can
// predict the schedule exactly.
func (c Config) backoffDelay(batch, attempt int) time.Duration {
	delay := c.BackoffBase << (attempt - 1)
	if delay > c.BackoffMax || delay <= 0 {
		delay = c.BackoffMax
	}
	if quarter := delay / 4; quarter > 0 {
		h := fnv.New64a()
		var buf [16]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(batch >> (8 * i))
			buf[8+i] = byte(attempt >> (8 * i))
		}
		h.Write(buf[:])
		delay += time.Duration(h.Sum64() % uint64(quarter))
	}
	return delay
}

// Attempt is one entry of a batch's attempt log: which worker held the
// lease, how it failed, and when.
type Attempt struct {
	Worker    string    `json:"worker"`
	Err       string    `json:"err"`
	Start     time.Time `json:"start"`
	ElapsedMS int64     `json:"elapsed_ms"`
}

// Dead-letter reasons.
const (
	// ReasonBudget marks a batch that failed on every attempt the retry
	// budget allowed.
	ReasonBudget = "retry budget exhausted"
	// ReasonNoWorkers marks a batch parked because no worker was
	// connected for NoWorkerGrace.
	ReasonNoWorkers = "no workers available"
	// ReasonCanceled marks a batch drained during graceful shutdown.
	ReasonCanceled = "coordinator canceled"
)

// Result.Err values for instances the scheduler could not execute. They
// are fixed strings — never interpolated with workers, counts, or
// timings — so the partial report stays deterministic; the variable
// detail lives in the DeadLetter record.
const (
	// ErrDeadLettered marks instances parked after exhausting retries.
	ErrDeadLettered = "sched: dead-lettered (see DLQ for attempt log)"
	// ErrCanceled marks instances drained by a graceful shutdown.
	ErrCanceled = "sched: canceled before completion"
)

// DeadLetter is one parked batch: the instances it carried, why it was
// parked, and the full attempt log.
type DeadLetter struct {
	// Batch is the batch's ordinal in the partition order.
	Batch int `json:"batch"`
	// Instances are the expansion indices the batch carried.
	Instances []int `json:"instances"`
	// Groups are the distinct group keys of those instances, for
	// operators reading the DLQ without the spec at hand.
	Groups []string `json:"groups,omitempty"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// Attempts is the complete attempt log, in order.
	Attempts []Attempt `json:"attempts,omitempty"`
}

// OutcomeSchema identifies the scheduler outcome JSON layout.
const OutcomeSchema = "fdsched/v1"

// Outcome is the scheduler's execution record: control-plane counters
// and the dead-letter queue. It rides NEXT TO the campaign report (the
// report itself stays a pure function of the Spec).
type Outcome struct {
	Schema string                `json:"schema"`
	Stats  metrics.SchedCounters `json:"stats"`
	DLQ    []DeadLetter          `json:"dlq,omitempty"`
}
