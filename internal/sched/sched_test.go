package sched_test

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sched"
	"repro/internal/sched/faults"
	"repro/internal/sig"
	"repro/internal/transport"
)

// schedSpec is the sweep the scheduler tests run: two protocols, two
// adversaries, a dozen seeds — 48 instances, small enough for fault
// schedules with sub-second lease TTLs, large enough that batches
// actually migrate between workers.
func schedSpec() campaign.Spec {
	return campaign.Spec{
		Name:        "sched-sweep",
		Protocols:   []string{campaign.ProtoChain, campaign.ProtoNonAuth},
		Sizes:       []int{4},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{campaign.AdvNone, campaign.AdvCrashRelay},
		SeedBase:    11,
		SeedCount:   12,
	}
}

// workerSpec describes one test-fleet worker: its name and the fault
// behaviors stacked onto its link.
type workerSpec struct {
	name  string
	stack []faults.Behavior
}

// runDistributed executes spec through a coordinator with the given
// fleet over in-memory pipes and returns the report plus the scheduler
// outcome.
func runDistributed(t *testing.T, ctx context.Context, spec campaign.Spec, cfg sched.Config, fleet []workerSpec) (*campaign.Report, sched.Outcome) {
	t.Helper()
	coord := sched.NewCoordinator(ctx, cfg)
	for _, w := range fleet {
		server, client := transport.Pipe()
		go coord.Attach(server)
		conn := client
		if len(w.stack) > 0 {
			conn = faults.Wrap(client, w.stack...)
		}
		go sched.RunWorker(ctx, conn, sched.WorkerConfig{Name: w.name})
	}
	rep, err := campaign.RunWith(spec, coord)
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	return rep, coord.Outcome()
}

// TestSchedulerReportInvarianceUnderFaults is the scheduler's
// determinism contract: a clean single-worker in-process run and a
// 4-worker leased run under each injected fault schedule — crash,
// stall, disconnect mid-result, corrupt result — must produce
// byte-identical canonical reports, with every instance recovered (an
// empty DLQ) and the fault demonstrably having fired.
func TestSchedulerReportInvarianceUnderFaults(t *testing.T) {
	spec := schedSpec()
	clean, err := campaign.Run(spec, 1)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want, err := clean.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}

	cfg := sched.Config{
		BatchSize:   4,
		LeaseTTL:    400 * time.Millisecond,
		RetryBudget: 5,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MinWorkers:  4,
	}
	for _, tc := range []struct {
		name  string
		fleet []workerSpec
		fired func(sched.Outcome) bool
	}{
		{
			name: "no faults",
			fleet: []workerSpec{
				{name: "w1"}, {name: "w2"}, {name: "w3"}, {name: "w4"},
			},
			fired: func(o sched.Outcome) bool { return o.Stats.BatchesCompleted == 12 },
		},
		// MinWorkers=4 gates the first dispatch wave until the whole fleet
		// joined, so every worker is guaranteed to receive its FIRST lease
		// — k=1 triggers therefore fire deterministically regardless of
		// how the later leases race.
		{
			name: "crash at batch",
			fleet: []workerSpec{
				{name: "w1", stack: []faults.Behavior{faults.CrashAtBatch(1)}},
				{name: "w2", stack: []faults.Behavior{faults.CrashAtBatch(1)}},
				{name: "w3"}, {name: "w4"},
			},
			fired: func(o sched.Outcome) bool { return o.Stats.WorkersLost >= 2 },
		},
		{
			name: "stall past deadline",
			fleet: []workerSpec{
				{name: "w1", stack: []faults.Behavior{faults.StallAtBatch(1)}},
				{name: "w2"}, {name: "w3"}, {name: "w4"},
			},
			fired: func(o sched.Outcome) bool { return o.Stats.LeasesExpired >= 1 },
		},
		{
			name: "disconnect mid-result",
			fleet: []workerSpec{
				{name: "w1", stack: []faults.Behavior{faults.DisconnectAtResult(1)}},
				{name: "w2", stack: []faults.Behavior{faults.DisconnectAtResult(1)}},
				{name: "w3"}, {name: "w4"},
			},
			fired: func(o sched.Outcome) bool { return o.Stats.WorkersLost >= 2 },
		},
		{
			name: "corrupt result",
			fleet: []workerSpec{
				{name: "w1", stack: []faults.Behavior{faults.CorruptResultAt(1)}},
				{name: "w2", stack: []faults.Behavior{faults.CorruptResultAt(1)}},
				{name: "w3"}, {name: "w4"},
			},
			fired: func(o sched.Outcome) bool { return o.Stats.CorruptResults >= 2 },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, out := runDistributed(t, context.Background(), spec, cfg, tc.fleet)
			got, err := rep.CanonicalJSON()
			if err != nil {
				t.Fatalf("CanonicalJSON: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report diverged from clean single-worker run (%d vs %d bytes); stats: %s",
					len(got), len(want), out.Stats)
			}
			if len(out.DLQ) != 0 {
				t.Fatalf("recoverable fault schedule dead-lettered %d batches: %+v", len(out.DLQ), out.DLQ)
			}
			if !tc.fired(out) {
				t.Fatalf("fault schedule left no trace in the stats — the test proved nothing: %s", out.Stats)
			}
		})
	}
}

// TestDeadLetterOnBudgetExhaustion pins the DLQ contract: a batch no
// worker can ever deliver burns its whole retry budget, lands in the
// DLQ with a complete attempt log, and the sweep still completes with a
// valid report whose parked instances carry the fixed dead-letter
// error.
func TestDeadLetterOnBudgetExhaustion(t *testing.T) {
	spec := schedSpec()
	instances, err := campaign.Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	cfg := sched.Config{
		BatchSize:   len(instances), // one batch: the whole sweep is doomed
		LeaseTTL:    2 * time.Second,
		RetryBudget: 3,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MinWorkers:  2,
	}
	fleet := []workerSpec{
		{name: "bad1", stack: []faults.Behavior{faults.CorruptAllResults()}},
		{name: "bad2", stack: []faults.Behavior{faults.CorruptAllResults()}},
	}
	rep, out := runDistributed(t, context.Background(), spec, cfg, fleet)

	if len(out.DLQ) != 1 {
		t.Fatalf("DLQ has %d entries, want 1: %+v", len(out.DLQ), out.DLQ)
	}
	dl := out.DLQ[0]
	if dl.Reason != sched.ReasonBudget {
		t.Errorf("reason = %q, want %q", dl.Reason, sched.ReasonBudget)
	}
	if len(dl.Attempts) != cfg.RetryBudget {
		t.Fatalf("attempt log has %d entries, want the full budget %d: %+v",
			len(dl.Attempts), cfg.RetryBudget, dl.Attempts)
	}
	for i, a := range dl.Attempts {
		if a.Worker == "" || a.Err == "" || a.Start.IsZero() {
			t.Errorf("attempt %d incomplete: %+v", i, a)
		}
		if !strings.Contains(a.Err, "corrupt") && !strings.Contains(a.Err, "checksum") {
			t.Errorf("attempt %d error %q does not name the corruption", i, a.Err)
		}
	}
	// Both workers must appear: the excluded-worker set forced attempt 2
	// onto the other worker, and attempt 3 only ran because the scheduler
	// relaxed the exhausted exclusion rather than deadlocking.
	workers := map[string]bool{}
	for _, a := range dl.Attempts {
		workers[a.Worker] = true
	}
	if len(workers) != 2 {
		t.Errorf("attempt log covers workers %v, want both fleet members", workers)
	}
	if out.Stats.ExclusionsRelaxed < 1 {
		t.Errorf("expected at least one relaxed exclusion, stats: %s", out.Stats)
	}
	if len(dl.Instances) != len(instances) {
		t.Errorf("DLQ records %d instances, want %d", len(dl.Instances), len(instances))
	}
	if out.Stats.DeadLettered != len(instances) {
		t.Errorf("DeadLettered = %d, want %d", out.Stats.DeadLettered, len(instances))
	}
	// The report still assembles: every result present, positional, and
	// carrying the FIXED dead-letter error string (deterministic bytes).
	if rep.Instances != len(instances) || len(rep.Results) != len(instances) {
		t.Fatalf("report incomplete: %d/%d results", len(rep.Results), rep.Instances)
	}
	for i, res := range rep.Results {
		if res.Index != i || res.Err != sched.ErrDeadLettered {
			t.Fatalf("result %d = {Index:%d Err:%q}, want dead-letter marker", i, res.Index, res.Err)
		}
	}
	if _, err := rep.CanonicalJSON(); err != nil {
		t.Fatalf("dead-lettered report does not marshal: %v", err)
	}
}

// TestExcludedWorkerRetriesElsewhere: one poisoned worker, one healthy
// one. Every batch the poisoned worker touches must retry on the
// healthy worker and the final report must match the clean run exactly.
func TestExcludedWorkerRetriesElsewhere(t *testing.T) {
	spec := schedSpec()
	clean, err := campaign.Run(spec, 1)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want, _ := clean.CanonicalJSON()
	cfg := sched.Config{
		BatchSize:   6,
		LeaseTTL:    2 * time.Second,
		RetryBudget: 4,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MinWorkers:  2,
	}
	fleet := []workerSpec{
		{name: "poisoned", stack: []faults.Behavior{faults.CorruptAllResults()}},
		{name: "healthy"},
	}
	rep, out := runDistributed(t, context.Background(), spec, cfg, fleet)
	got, _ := rep.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatalf("report diverged under a poisoned worker; stats: %s", out.Stats)
	}
	if len(out.DLQ) != 0 {
		t.Fatalf("healthy worker available, yet %d batches dead-lettered", len(out.DLQ))
	}
	if out.Stats.CorruptResults < 1 || out.Stats.Requeues < 1 {
		t.Fatalf("poisoned worker left no trace: %s", out.Stats)
	}
}

// TestGracefulDrainOnCancel: canceling the coordinator's context parks
// all unfinished batches with ReasonCanceled and Execute still returns
// a complete, marshalable partial report — the SIGINT path.
func TestGracefulDrainOnCancel(t *testing.T) {
	spec := schedSpec()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := sched.Config{
		BatchSize:  4,
		LeaseTTL:   30 * time.Second, // only cancel can end this run
		MinWorkers: 1,
	}
	// The lone worker goes zombie immediately: nothing will ever finish.
	fleet := []workerSpec{
		{name: "zombie", stack: []faults.Behavior{faults.StallAtBatch(1)}},
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	rep, out := runDistributed(t, ctx, spec, cfg, fleet)
	if len(out.DLQ) == 0 {
		t.Fatal("drain produced an empty DLQ")
	}
	for _, dl := range out.DLQ {
		if dl.Reason != sched.ReasonCanceled {
			t.Errorf("DLQ reason = %q, want %q", dl.Reason, sched.ReasonCanceled)
		}
	}
	for i, res := range rep.Results {
		if res.Err != sched.ErrCanceled {
			t.Fatalf("result %d Err = %q, want %q", i, res.Err, sched.ErrCanceled)
		}
	}
	if _, err := rep.CanonicalJSON(); err != nil {
		t.Fatalf("partial report does not marshal: %v", err)
	}
}

// TestNoWorkerGraceDeadLettersSweep: a coordinator whose fleet never
// shows up must not hang — after the grace period the whole sweep is
// parked with ReasonNoWorkers.
func TestNoWorkerGraceDeadLettersSweep(t *testing.T) {
	spec := schedSpec()
	cfg := sched.Config{
		BatchSize:     8,
		NoWorkerGrace: 100 * time.Millisecond,
	}
	coord := sched.NewCoordinator(context.Background(), cfg)
	start := time.Now()
	rep, err := campaign.RunWith(spec, coord)
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("no-worker sweep took %v; the grace period is 100ms", elapsed)
	}
	out := coord.Outcome()
	if len(out.DLQ) == 0 {
		t.Fatal("no-worker sweep produced an empty DLQ")
	}
	for _, dl := range out.DLQ {
		if dl.Reason != sched.ReasonNoWorkers {
			t.Errorf("DLQ reason = %q, want %q", dl.Reason, sched.ReasonNoWorkers)
		}
	}
	for i, res := range rep.Results {
		if res.Err != sched.ErrDeadLettered {
			t.Fatalf("result %d Err = %q, want %q", i, res.Err, sched.ErrDeadLettered)
		}
	}
}

// TestCoordinatorSingleUse: Execute is one campaign; a second call is
// refused rather than corrupting shared state.
func TestCoordinatorSingleUse(t *testing.T) {
	coord := sched.NewCoordinator(context.Background(), sched.Config{NoWorkerGrace: 50 * time.Millisecond})
	spec := campaign.Spec{
		Name:      "single-use",
		Protocols: []string{campaign.ProtoChain},
		Sizes:     []int{4},
		Schemes:   []string{sig.SchemeToy},
		SeedCount: 2,
	}
	if _, err := campaign.RunWith(spec, coord); err != nil {
		t.Fatalf("first Execute: %v", err)
	}
	if _, err := campaign.RunWith(spec, coord); err == nil {
		t.Fatal("second Execute on the same coordinator succeeded")
	}
}

// TestWorkerJoinsMidCampaign: the fleet may grow while the sweep runs;
// a late worker is adopted and the report is unchanged.
func TestWorkerJoinsMidCampaign(t *testing.T) {
	spec := schedSpec()
	clean, err := campaign.Run(spec, 1)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	want, _ := clean.CanonicalJSON()
	ctx := context.Background()
	cfg := sched.Config{
		BatchSize:   4,
		LeaseTTL:    2 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		MinWorkers:  1,
	}
	coord := sched.NewCoordinator(ctx, cfg)
	attach := func(name string) {
		server, client := transport.Pipe()
		go coord.Attach(server)
		go sched.RunWorker(ctx, client, sched.WorkerConfig{Name: name})
	}
	attach("early")
	go func() {
		time.Sleep(50 * time.Millisecond)
		attach("late")
	}()
	rep, err := campaign.RunWith(spec, coord)
	if err != nil {
		t.Fatalf("RunWith: %v", err)
	}
	got, _ := rep.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatalf("report diverged with a mid-campaign join; stats: %s", coord.Outcome().Stats)
	}
}
