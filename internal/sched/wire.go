package sched

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"repro/internal/sig"
)

// The scheduler wire protocol: six framed message kinds multiplexed over
// one transport.Conn per worker. Frames reuse the repository's canonical
// length-delimited codec (internal/sig), and the two payload-bearing
// kinds — lease and result — carry a SHA-256 checksum over the payload,
// so a corrupted frame is DETECTED and treated as a worker fault
// (requeue elsewhere) instead of silently poisoning the aggregate
// report. Determinism by construction is only as good as the integrity
// of the bytes it aggregates.

// Frame kinds. Exported so the fault-injection harness (sched/faults)
// can trigger on specific traffic without re-parsing whole messages.
const (
	// KindHello is the worker's first frame: protocol tag + worker name.
	KindHello = 1
	// KindLease carries a leased instance batch coordinator → worker.
	KindLease = 2
	// KindResult carries a completed batch's results worker → coordinator.
	KindResult = 3
	// KindNack reports a lease the worker could not execute.
	KindNack = 4
	// KindHeartbeat extends a running lease's deadline.
	KindHeartbeat = 5
	// KindShutdown tells the worker to drain and exit.
	KindShutdown = 6
)

// wireTag guards against cross-protocol connections.
const wireTag = "fdsched/v1"

// FrameKind peeks a frame's kind without decoding the rest (-1 when the
// frame is too short to carry one).
func FrameKind(frame []byte) int {
	if len(frame) < sig.IntFieldSize {
		return -1
	}
	d := sig.NewDecoder(frame)
	return d.Int()
}

func encodeHello(name string) []byte {
	out := make([]byte, 0, sig.IntFieldSize+sig.BytesFieldSize(len(wireTag))+sig.BytesFieldSize(len(name)))
	out = sig.AppendInt(out, KindHello)
	out = sig.AppendString(out, wireTag)
	return sig.AppendString(out, name)
}

func decodeHello(frame []byte) (name string, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindHello {
		return "", fmt.Errorf("sched: expected hello, got frame kind %d", kind)
	}
	if tag := d.String(); tag != wireTag {
		return "", fmt.Errorf("sched: bad protocol tag %q (want %s)", tag, wireTag)
	}
	name = d.String()
	if ferr := d.Finish(); ferr != nil {
		return "", fmt.Errorf("sched: bad hello: %w", ferr)
	}
	if name == "" {
		return "", fmt.Errorf("sched: hello with empty worker name")
	}
	return name, nil
}

// leaseMsg is a decoded lease frame.
type leaseMsg struct {
	ID       int
	Attempt  int
	Deadline int // milliseconds the worker has before the lease expires
	Payload  []byte
}

func encodeLease(id, attempt, deadlineMS int, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, 4*sig.IntFieldSize+sig.BytesFieldSize(len(sum))+sig.BytesFieldSize(len(payload)))
	out = sig.AppendInt(out, KindLease)
	out = sig.AppendInt(out, id)
	out = sig.AppendInt(out, attempt)
	out = sig.AppendInt(out, deadlineMS)
	out = sig.AppendBytes(out, sum[:])
	return sig.AppendBytes(out, payload)
}

func decodeLease(frame []byte) (leaseMsg, error) {
	d := sig.NewDecoder(frame)
	var m leaseMsg
	if kind := d.Int(); kind != KindLease {
		return m, fmt.Errorf("sched: expected lease, got frame kind %d", kind)
	}
	m.ID = d.Int()
	m.Attempt = d.Int()
	m.Deadline = d.Int()
	sum := d.Bytes()
	m.Payload = d.Bytes()
	if err := d.Finish(); err != nil {
		return m, fmt.Errorf("sched: bad lease frame: %w", err)
	}
	want := sha256.Sum256(m.Payload)
	if !bytes.Equal(sum, want[:]) {
		return m, fmt.Errorf("sched: lease %d payload checksum mismatch", m.ID)
	}
	return m, nil
}

// resultMsg is a decoded result frame.
type resultMsg struct {
	ID      int
	Payload []byte
}

func encodeResult(id int, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, 2*sig.IntFieldSize+sig.BytesFieldSize(len(sum))+sig.BytesFieldSize(len(payload)))
	out = sig.AppendInt(out, KindResult)
	out = sig.AppendInt(out, id)
	out = sig.AppendBytes(out, sum[:])
	return sig.AppendBytes(out, payload)
}

func decodeResult(frame []byte) (resultMsg, error) {
	d := sig.NewDecoder(frame)
	var m resultMsg
	if kind := d.Int(); kind != KindResult {
		return m, fmt.Errorf("sched: expected result, got frame kind %d", kind)
	}
	m.ID = d.Int()
	sum := d.Bytes()
	m.Payload = d.Bytes()
	if err := d.Finish(); err != nil {
		return m, fmt.Errorf("sched: bad result frame: %w", err)
	}
	want := sha256.Sum256(m.Payload)
	if !bytes.Equal(sum, want[:]) {
		return m, fmt.Errorf("sched: result %d payload checksum mismatch", m.ID)
	}
	return m, nil
}

func encodeNack(id int, msg string) []byte {
	out := make([]byte, 0, 2*sig.IntFieldSize+sig.BytesFieldSize(len(msg)))
	out = sig.AppendInt(out, KindNack)
	out = sig.AppendInt(out, id)
	return sig.AppendString(out, msg)
}

func decodeNack(frame []byte) (id int, msg string, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindNack {
		return 0, "", fmt.Errorf("sched: expected nack, got frame kind %d", kind)
	}
	id = d.Int()
	msg = d.String()
	if ferr := d.Finish(); ferr != nil {
		return 0, "", fmt.Errorf("sched: bad nack frame: %w", ferr)
	}
	return id, msg, nil
}

func encodeHeartbeat(id int) []byte {
	out := make([]byte, 0, 2*sig.IntFieldSize)
	out = sig.AppendInt(out, KindHeartbeat)
	return sig.AppendInt(out, id)
}

func decodeHeartbeat(frame []byte) (id int, err error) {
	d := sig.NewDecoder(frame)
	if kind := d.Int(); kind != KindHeartbeat {
		return 0, fmt.Errorf("sched: expected heartbeat, got frame kind %d", kind)
	}
	id = d.Int()
	if ferr := d.Finish(); ferr != nil {
		return 0, fmt.Errorf("sched: bad heartbeat frame: %w", ferr)
	}
	return id, nil
}

func encodeShutdown(reason string) []byte {
	out := make([]byte, 0, sig.IntFieldSize+sig.BytesFieldSize(len(reason)))
	out = sig.AppendInt(out, KindShutdown)
	return sig.AppendString(out, reason)
}
