package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Coordinator is the campaign.Scheduler that survives worker failure:
// it partitions the expanded instance list into contiguous batches,
// leases them to connected workers, and collects results — requeueing
// on expiry/disconnect/NACK/corruption and dead-lettering after the
// retry budget. One Coordinator runs one campaign (Execute is
// single-use); workers join at any time via Serve or Attach, before or
// during the run.
type Coordinator struct {
	ctx  context.Context
	cfg  Config
	join chan *link
	done chan struct{}

	mu      sync.Mutex
	started bool
	outcome Outcome

	// snap is the live scheduler view behind Debug and the /debug/sched
	// endpoint: the run loop republishes it on every state change, readers
	// load it lock-free at any time mid-run.
	snap atomic.Pointer[DebugSnapshot]

	// connStats aggregates the wire traffic of every adopted worker
	// connection (frames, bytes, redials); the debug snapshot exports it
	// so a degraded network — redialing workers, heartbeat loss — is
	// visible live on /debug/sched.
	connStats transport.ConnStats
}

// link is a handshaken worker connection awaiting adoption by the loop.
type link struct {
	name string
	conn transport.Conn
}

// NewCoordinator builds a coordinator. Canceling ctx triggers a graceful
// drain: in-flight and pending batches are parked in the DLQ with reason
// ReasonCanceled and Execute still returns a full positional result
// slice, so the caller can emit a valid partial report.
func NewCoordinator(ctx context.Context, cfg Config) *Coordinator {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Coordinator{
		ctx:  ctx,
		cfg:  cfg.withDefaults(),
		join: make(chan *link, 64),
		done: make(chan struct{}),
	}
}

// Serve accepts worker connections until the campaign completes or the
// acceptor fails. Each accepted conn handshakes on its own goroutine so
// a half-open client cannot stall the accept loop.
func (c *Coordinator) Serve(a transport.Acceptor) error {
	for {
		conn, err := a.Accept()
		if err != nil {
			select {
			case <-c.done:
				return nil
			default:
				return err
			}
		}
		go c.Attach(conn)
	}
}

// Attach performs the hello handshake on conn and registers the worker.
// Workers attaching after the campaign completed are told to shut down.
func (c *Coordinator) Attach(conn transport.Conn) error {
	conn = transport.CountConn(conn, &c.connStats)
	frame, err := conn.Recv()
	if err != nil {
		conn.Close()
		return err
	}
	name, err := decodeHello(frame)
	if err != nil {
		conn.Close()
		return err
	}
	select {
	case c.join <- &link{name: name, conn: conn}:
		return nil
	case <-c.done:
		conn.Send(encodeShutdown("campaign complete"))
		conn.Close()
		return fmt.Errorf("sched: coordinator finished before worker %q joined", name)
	}
}

// Outcome returns the scheduler's execution record (valid after Execute
// returns; zero before).
func (c *Coordinator) Outcome() Outcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcome
}

// Task states.
const (
	taskPending = iota
	taskInflight
	taskDone
	taskDead
)

// taskState is one leased batch's lifecycle record.
type taskState struct {
	id        int // batch ordinal
	lo, hi    int // instance index range [lo, hi)
	state     int
	attempts  []Attempt
	excluded  map[string]bool
	notBefore time.Time
	lease     *leaseState // set while inflight
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	name string
	conn transport.Conn
	busy *leaseState // the lease the worker holds (live or revoked)
	gone bool
	// lastBeat is when the worker's latest heartbeat arrived (zero until
	// the first one); it feeds the heartbeat-age column of the debug
	// snapshot and the gap attribute of heartbeat telemetry.
	lastBeat time.Time
}

// leaseState is one issued lease.
type leaseState struct {
	id       int
	task     *taskState
	w        *workerState
	timer    *time.Timer
	deadline time.Time
	start    time.Time
	span     obs.Span // open "sched.lease" span; zero when telemetry is off
}

// Event kinds posted to the loop.
type evKind int

const (
	evMsg evKind = iota
	evGone
	evExpiry
)

type event struct {
	kind  evKind
	w     *workerState
	frame []byte
	lease int
	err   error
}

// runLoop is the single-goroutine scheduler state; every field is owned
// by Execute's loop, so nothing here needs locking.
type runLoop struct {
	cfg       Config
	instances []campaign.Instance
	results   []campaign.Result
	tasks     []*taskState
	workers   []*workerState
	names     map[string]bool
	inflight  map[int]*leaseState
	events    chan event
	done      <-chan struct{}
	leaseSeq  int
	joined    int
	remaining int
	rr        int       // round-robin cursor over workers for fair lease spread
	noWorkers time.Time // since when zero workers are connected (zero value: workers exist)
	outcome   *Outcome
	rec       *obs.Recorder // telemetry sink (Config.Observer; nil = off)
	snap      *atomic.Pointer[DebugSnapshot]
	connStats *transport.ConnStats // shared with Attach-wrapped worker conns
}

// Execute implements campaign.Scheduler. It blocks until every batch is
// completed or dead-lettered and always returns one Result per instance;
// the error return is reserved for misuse (a second Execute call), never
// for worker faults — those are the scheduler's job to absorb.
func (c *Coordinator) Execute(_ campaign.Spec, instances []campaign.Instance) ([]campaign.Result, error) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil, fmt.Errorf("sched: coordinator already executed a campaign")
	}
	c.started = true
	c.mu.Unlock()
	defer close(c.done)

	r := &runLoop{
		cfg:       c.cfg,
		instances: instances,
		results:   make([]campaign.Result, len(instances)),
		names:     make(map[string]bool),
		inflight:  make(map[int]*leaseState),
		events:    make(chan event, 256),
		done:      c.done,
		noWorkers: time.Now(),
		outcome:   &Outcome{Schema: OutcomeSchema},
		rec:       c.cfg.Observer,
		snap:      &c.snap,
		connStats: &c.connStats,
	}
	for lo := 0; lo < len(instances); lo += c.cfg.BatchSize {
		hi := lo + c.cfg.BatchSize
		if hi > len(instances) {
			hi = len(instances)
		}
		r.tasks = append(r.tasks, &taskState{
			id: len(r.tasks), lo: lo, hi: hi, excluded: make(map[string]bool),
		})
	}
	r.remaining = len(r.tasks)
	r.publish(time.Now())

	wake := time.NewTimer(time.Hour)
	defer wake.Stop()
	for r.remaining > 0 {
		now := time.Now()
		if !r.noWorkers.IsZero() && now.Sub(r.noWorkers) >= c.cfg.NoWorkerGrace {
			r.drain(ReasonNoWorkers, ErrDeadLettered)
			break
		}
		r.dispatch(now)
		r.publish(time.Now())
		if r.remaining == 0 {
			break
		}
		if !wake.Stop() {
			select {
			case <-wake.C:
			default:
			}
		}
		wake.Reset(r.nextWake(time.Now()))
		select {
		case l := <-c.join:
			r.addWorker(l)
		case ev := <-r.events:
			r.handle(ev)
		case <-wake.C:
		case <-c.ctx.Done():
			r.drain(ReasonCanceled, ErrCanceled)
		}
	}

	// Campaign complete: release the fleet.
	for _, w := range r.workers {
		if !w.gone {
			w.conn.Send(encodeShutdown("campaign complete"))
			w.conn.Close()
		}
	}
	for _, l := range r.inflight {
		l.timer.Stop()
	}
	r.publish(time.Now())
	if r.rec.Enabled() {
		r.rec.Point("sched.done", obs.Attrs("instances", len(instances),
			"dead_lettered", r.outcome.Stats.DeadLettered))
	}
	c.mu.Lock()
	c.outcome = *r.outcome
	c.mu.Unlock()
	return r.results, nil
}

// post delivers an event unless the loop already finished.
func (r *runLoop) post(ev event) {
	select {
	case r.events <- ev:
	case <-r.done:
	}
}

// nextWake picks the loop's timer: the earliest backoff release, the
// no-worker grace deadline, or a long idle tick.
func (r *runLoop) nextWake(now time.Time) time.Duration {
	const long = time.Hour
	d := time.Duration(-1)
	for _, t := range r.tasks {
		if t.state == taskPending && t.notBefore.After(now) {
			if left := t.notBefore.Sub(now); d < 0 || left < d {
				d = left
			}
		}
	}
	if !r.noWorkers.IsZero() {
		if left := r.noWorkers.Add(r.cfg.NoWorkerGrace).Sub(now); d < 0 || left < d {
			d = left
		}
	}
	if d < 0 {
		return long
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// addWorker adopts a handshaken link: unique name, reader goroutine.
func (r *runLoop) addWorker(l *link) {
	name := l.name
	for i := 2; r.names[name]; i++ {
		name = fmt.Sprintf("%s#%d", l.name, i)
	}
	r.names[name] = true
	w := &workerState{name: name, conn: l.conn}
	r.workers = append(r.workers, w)
	r.joined++
	r.outcome.Stats.WorkersJoined++
	r.noWorkers = time.Time{}
	if r.rec.Enabled() {
		r.rec.Point("sched.worker.join", obs.Attrs("worker", name))
	}
	go func() {
		for {
			frame, err := w.conn.Recv()
			if err != nil {
				r.post(event{kind: evGone, w: w, err: err})
				return
			}
			r.post(event{kind: evMsg, w: w, frame: frame})
		}
	}()
}

// dispatch assigns every ready batch an eligible idle worker. Workers in
// a batch's excluded set are skipped while ANY connected worker remains
// outside it; when the exclusion would starve the batch (every connected
// worker has already failed it), it is relaxed rather than deadlocked —
// the retry budget still bounds the attempts.
func (r *runLoop) dispatch(now time.Time) {
	if r.joined < r.cfg.MinWorkers {
		return
	}
	for _, t := range r.tasks {
		if t.state != taskPending || t.notBefore.After(now) {
			continue
		}
		w, relaxed := r.pick(t)
		if w == nil {
			continue
		}
		if relaxed {
			r.outcome.Stats.ExclusionsRelaxed++
		}
		r.issue(t, w, now)
	}
}

// pick selects an idle worker for the task, preferring non-excluded
// workers; the boolean reports exclusion relaxation. The scan starts at
// a rotating cursor so leases spread across the fleet instead of piling
// onto whichever worker answers fastest.
func (r *runLoop) pick(t *taskState) (*workerState, bool) {
	n := len(r.workers)
	var idleExcluded *workerState
	anyEligible := false
	for i := 0; i < n; i++ {
		w := r.workers[(r.rr+i)%n]
		if w.gone {
			continue
		}
		if !t.excluded[w.name] {
			anyEligible = true
			if w.busy == nil {
				r.rr = ((r.rr+i)%n + 1) % n
				return w, false
			}
		} else if w.busy == nil && idleExcluded == nil {
			idleExcluded = w
		}
	}
	if !anyEligible && idleExcluded != nil {
		return idleExcluded, true
	}
	return nil, false
}

// issue leases the task's batch to w.
func (r *runLoop) issue(t *taskState, w *workerState, now time.Time) {
	payload, err := json.Marshal(r.instances[t.lo:t.hi])
	if err != nil {
		// Instances are plain data; this cannot happen. Park defensively
		// rather than looping forever on an unmarshalable batch.
		r.deadLetter(t, "unmarshalable batch: "+err.Error(), ErrDeadLettered)
		return
	}
	r.leaseSeq++
	id := r.leaseSeq
	frame := encodeLease(id, len(t.attempts)+1, int(r.cfg.LeaseTTL/time.Millisecond), payload)
	if err := w.conn.Send(frame); err != nil {
		r.loseWorker(w, err) // task stays pending; next dispatch retries
		return
	}
	l := &leaseState{id: id, task: t, w: w, deadline: now.Add(r.cfg.LeaseTTL), start: now}
	t.state = taskInflight
	t.lease = l
	w.busy = l
	r.inflight[id] = l
	r.outcome.Stats.LeasesIssued++
	if r.rec.Enabled() {
		l.span = r.rec.Begin(obs.Event{Scope: "sched.lease", Inst: -1, Node: -1,
			Attrs: obs.Attrs("lease", id, "batch", t.id, "worker", w.name,
				"attempt", len(t.attempts)+1, "size", t.hi-t.lo)})
	}
	l.timer = time.AfterFunc(r.cfg.LeaseTTL, func() { r.post(event{kind: evExpiry, lease: id}) })
}

// handle processes one loop event.
func (r *runLoop) handle(ev event) {
	switch ev.kind {
	case evGone:
		r.loseWorker(ev.w, ev.err)
	case evExpiry:
		l := r.inflight[ev.lease]
		if l == nil {
			return
		}
		// A heartbeat may have extended the deadline after the timer
		// fired; honor the extension instead of the stale event.
		if left := time.Until(l.deadline); left > 5*time.Millisecond {
			l.timer.Reset(left)
			return
		}
		r.outcome.Stats.LeasesExpired++
		if r.rec.Enabled() {
			r.rec.Point("sched.lease.expired", obs.Attrs("lease", l.id,
				"batch", l.task.id, "worker", l.w.name))
		}
		// The worker stays marked busy: it may still be crunching the
		// revoked lease. It becomes assignable again only when it reports
		// a (stale) terminal message or disconnects.
		r.failAttempt(l, "lease expired without result or heartbeat")
	case evMsg:
		switch FrameKind(ev.frame) {
		case KindHeartbeat:
			if id, err := decodeHeartbeat(ev.frame); err == nil {
				if l := r.inflight[id]; l != nil && l.w == ev.w {
					now := time.Now()
					l.deadline = now.Add(r.cfg.LeaseTTL)
					l.timer.Reset(r.cfg.LeaseTTL)
					r.outcome.Stats.Heartbeats++
					if r.rec.Enabled() {
						since := l.start
						if !ev.w.lastBeat.IsZero() {
							since = ev.w.lastBeat
						}
						r.rec.Point("sched.heartbeat", obs.Attrs("worker", ev.w.name,
							"lease", id, "gap_ms", now.Sub(since).Milliseconds()))
					}
					ev.w.lastBeat = now
				}
			}
		case KindResult:
			r.handleResult(ev.w, ev.frame)
		case KindNack:
			r.handleNack(ev.w, ev.frame)
		}
	}
}

// handleResult validates and stores one result frame.
func (r *runLoop) handleResult(w *workerState, frame []byte) {
	msg, err := decodeResult(frame)
	if err != nil {
		// Corrupt frame: attribute it to the worker's current lease.
		r.outcome.Stats.CorruptResults++
		if l := w.busy; l != nil {
			w.busy = nil
			if r.inflight[l.id] == l {
				r.failAttempt(l, "corrupt result frame: "+err.Error())
			}
		}
		return
	}
	l := r.inflight[msg.ID]
	if l == nil || l.w != w {
		// A revoked lease finishing late (stall recovery): the batch has
		// been reassigned; drop the result, free the zombie worker.
		r.outcome.Stats.StaleResults++
		if w.busy != nil && w.busy.id == msg.ID {
			w.busy = nil
		}
		return
	}
	w.busy = nil
	var results []campaign.Result
	if err := json.Unmarshal(msg.Payload, &results); err != nil {
		r.outcome.Stats.CorruptResults++
		r.failAttempt(l, "undecodable result payload: "+err.Error())
		return
	}
	t := l.task
	if len(results) != t.hi-t.lo {
		r.outcome.Stats.CorruptResults++
		r.failAttempt(l, fmt.Sprintf("result count mismatch: got %d for batch of %d", len(results), t.hi-t.lo))
		return
	}
	for j := range results {
		if results[j].Index != t.lo+j {
			r.outcome.Stats.CorruptResults++
			r.failAttempt(l, fmt.Sprintf("result index mismatch at offset %d: got %d want %d", j, results[j].Index, t.lo+j))
			return
		}
	}
	l.timer.Stop()
	delete(r.inflight, l.id)
	copy(r.results[t.lo:t.hi], results)
	t.state = taskDone
	t.lease = nil
	r.remaining--
	r.outcome.Stats.BatchesCompleted++
	if r.rec.Enabled() {
		l.span.End(obs.Attrs("outcome", "ok", "lease", l.id, "batch", t.id,
			"worker", l.w.name, "size", t.hi-t.lo))
	}
}

// handleNack records a worker-rejected lease.
func (r *runLoop) handleNack(w *workerState, frame []byte) {
	id, msg, err := decodeNack(frame)
	if err != nil {
		return
	}
	r.outcome.Stats.Nacks++
	target := r.inflight[id]
	if target == nil && id == 0 {
		target = w.busy // worker could not read the lease ID
	}
	if w.busy != nil && (target == w.busy || w.busy.id == id) {
		w.busy = nil
	}
	if target != nil && target.w == w && r.inflight[target.id] == target {
		r.failAttempt(target, "worker nack: "+msg)
	}
}

// loseWorker removes a dead worker, failing its in-flight lease.
func (r *runLoop) loseWorker(w *workerState, err error) {
	if w.gone {
		return
	}
	w.gone = true
	w.conn.Close()
	r.outcome.Stats.WorkersLost++
	if r.rec.Enabled() {
		r.rec.Point("sched.worker.lost", obs.Attrs("worker", w.name, "err", err))
	}
	if l := w.busy; l != nil {
		w.busy = nil
		if r.inflight[l.id] == l {
			r.failAttempt(l, fmt.Sprintf("worker disconnected: %v", err))
		}
	}
	connected := 0
	for _, other := range r.workers {
		if !other.gone {
			connected++
		}
	}
	if connected == 0 {
		r.noWorkers = time.Now()
	}
}

// failAttempt records a failed attempt against the lease's batch,
// excludes the worker, and requeues with backoff — or dead-letters when
// the budget is spent.
func (r *runLoop) failAttempt(l *leaseState, msg string) {
	l.timer.Stop()
	delete(r.inflight, l.id)
	t := l.task
	t.lease = nil
	now := time.Now()
	t.attempts = append(t.attempts, Attempt{
		Worker:    l.w.name,
		Err:       msg,
		Start:     l.start,
		ElapsedMS: now.Sub(l.start).Milliseconds(),
	})
	t.excluded[l.w.name] = true
	if r.rec.Enabled() {
		l.span.End(obs.Attrs("outcome", "fail", "lease", l.id, "batch", t.id,
			"worker", l.w.name, "err", msg))
	}
	if len(t.attempts) >= r.cfg.RetryBudget {
		r.deadLetter(t, ReasonBudget, ErrDeadLettered)
		return
	}
	t.state = taskPending
	t.notBefore = now.Add(r.cfg.backoffDelay(t.id, len(t.attempts)))
	r.outcome.Stats.Requeues++
	if r.rec.Enabled() {
		r.rec.Point("sched.requeue", obs.Attrs("batch", t.id,
			"attempts", len(t.attempts), "delay_ms", t.notBefore.Sub(now).Milliseconds()))
	}
}

// deadLetter parks the batch: fixed-string error results (the report
// stays deterministic) and a DLQ record carrying the variable detail.
func (r *runLoop) deadLetter(t *taskState, reason, resultErr string) {
	t.state = taskDead
	t.lease = nil
	r.remaining--
	indices := make([]int, 0, t.hi-t.lo)
	groupSet := make(map[string]bool)
	for i := t.lo; i < t.hi; i++ {
		inst := r.instances[i]
		r.results[i] = campaign.Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed, Err: resultErr}
		indices = append(indices, i)
		groupSet[inst.GroupKey()] = true
	}
	groups := make([]string, 0, len(groupSet))
	for g := range groupSet {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	r.outcome.Stats.DeadLettered += t.hi - t.lo
	r.outcome.DLQ = append(r.outcome.DLQ, DeadLetter{
		Batch:     t.id,
		Instances: indices,
		Groups:    groups,
		Reason:    reason,
		Attempts:  t.attempts,
	})
	if r.rec.Enabled() {
		r.rec.Point("sched.dlq", obs.Attrs("batch", t.id,
			"instances", t.hi-t.lo, "attempts", len(t.attempts), "reason", reason))
	}
}

// drain parks every unfinished batch (graceful shutdown or total worker
// loss), recording a terminal attempt for in-flight leases.
func (r *runLoop) drain(reason, resultErr string) {
	now := time.Now()
	for _, t := range r.tasks {
		switch t.state {
		case taskInflight:
			l := t.lease
			l.timer.Stop()
			delete(r.inflight, l.id)
			l.w.busy = nil
			t.attempts = append(t.attempts, Attempt{
				Worker:    l.w.name,
				Err:       "drained while in flight: " + reason,
				Start:     l.start,
				ElapsedMS: now.Sub(l.start).Milliseconds(),
			})
			if r.rec.Enabled() {
				l.span.End(obs.Attrs("outcome", "drained", "lease", l.id,
					"batch", t.id, "worker", l.w.name))
			}
			r.deadLetter(t, reason, resultErr)
		case taskPending:
			r.deadLetter(t, reason, resultErr)
		}
	}
}
