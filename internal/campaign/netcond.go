package campaign

import (
	"fmt"
	"strings"

	"repro/internal/netcond"
)

// Network-condition resolution: a Spec names its conditions either as
// compact-syntax strings in NetConds ("latency=uniform-0-2,loss=0.05",
// see netcond.Parse) or as structured netcond.Spec values in
// NetCondSpecs. Both resolve into the same ordered list, each entry
// carrying a unique deterministic name that joins the instance group
// key. The ideal network resolves to an empty name and a nil spec, so
// a campaign without conditions expands — and marshals — exactly as it
// did before the axis existed.

// NetCondIdeal is the reserved name of the ideal (no-op) condition.
const NetCondIdeal = "ideal"

// resolvedNetCond is one entry of the netcond axis. The ideal network
// is {name: "", spec: nil}: group keys and instance JSON stay untouched
// for it, which is what keeps NetConds-free campaigns byte-identical to
// pre-axis reports.
type resolvedNetCond struct {
	name string
	spec *netcond.Spec
}

// ParseNetCond resolves one NetConds entry via the compact syntax.
func ParseNetCond(s string) (netcond.Spec, error) {
	spec, err := netcond.Parse(s)
	if err != nil {
		return netcond.Spec{}, fmt.Errorf("campaign: %w", err)
	}
	return spec, nil
}

// SplitNetCondList splits a flag value into condition entries. The
// condition syntax uses commas internally, so multiple entries separate
// on ";" when one is present; otherwise a value containing "=" is a
// single condition and anything else splits on "," (a bare name list,
// e.g. "ideal").
func SplitNetCondList(s string) []string {
	sep := ","
	if strings.Contains(s, ";") {
		sep = ";"
	} else if strings.Contains(s, "=") {
		return []string{strings.TrimSpace(s)}
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// resolveNetConds returns the spec's network-condition axis in
// deterministic order — NetConds entries first, then NetCondSpecs —
// with every spec validated and named (explicit Name or
// CanonicalName). Names must be unique: they key the aggregation
// groups. An empty axis resolves to the single ideal entry.
func (s Spec) resolveNetConds() ([]resolvedNetCond, error) {
	if len(s.NetConds) == 0 && len(s.NetCondSpecs) == 0 {
		return []resolvedNetCond{{}}, nil
	}
	var specs []netcond.Spec
	for _, entry := range s.NetConds {
		spec, err := ParseNetCond(entry)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	for _, spec := range s.NetCondSpecs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		specs = append(specs, spec)
	}
	out := make([]resolvedNetCond, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		name := specs[i].CanonicalName()
		if seen[name] {
			return nil, fmt.Errorf("campaign: duplicate netcond name %q", name)
		}
		seen[name] = true
		if specs[i].IsIdeal() {
			out = append(out, resolvedNetCond{})
			continue
		}
		if specs[i].Name == "" {
			specs[i].Name = name
		}
		out = append(out, resolvedNetCond{name: name, spec: &specs[i]})
	}
	return out, nil
}

// netcondSpec resolves the instance's network condition: the structured
// Net when present (expansion always sets it for degraded instances),
// otherwise the NetCond string, so hand-built instances keep working.
// The ideal network — however it was spelled — resolves to nil.
func (inst Instance) netcondSpec() (*netcond.Spec, error) {
	if inst.Net != nil {
		return inst.Net, nil
	}
	if inst.NetCond == "" || inst.NetCond == NetCondIdeal {
		return nil, nil
	}
	spec, err := ParseNetCond(inst.NetCond)
	if err != nil {
		return nil, err
	}
	if spec.IsIdeal() {
		return nil, nil
	}
	return &spec, nil
}
