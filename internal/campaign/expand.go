package campaign

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/netcond"
	"repro/internal/protocol"
)

// Instance is one fully specified, independently runnable simulation:
// a protocol at one (n, t) under one scheme, one adversary mix, and one
// seed. Instances are self-contained — RunInstance derives all key
// material, RNG streams, and metric sinks from the fields here, sharing
// nothing with any other instance.
type Instance struct {
	// Index is the instance's position in the expansion order; the
	// runner stores results by Index so aggregation order never depends
	// on worker scheduling.
	Index int `json:"index"`
	// Protocol is a registered driver name (see internal/protocol; the
	// Proto* constants alias the built-ins).
	Protocol string `json:"protocol"`
	// N and T are the system size and fault bound.
	N int `json:"n"`
	T int `json:"t"`
	// Scheme is the signature-scheme registry name ("" for protocols
	// that use no signatures).
	Scheme string `json:"scheme,omitempty"`
	// Adversary names the fault mix; it doubles as the group-key field.
	// Expansion sets it to the resolved strategy's name.
	Adversary string `json:"adversary"`
	// Strategy is the resolved composable adversary. Hand-built instances
	// may leave it zero and set Adversary to an alias name or compact
	// strategy syntax instead; runInstance resolves either form.
	Strategy adversary.Strategy `json:"strategy"`
	// NetCond names the network condition; empty means the ideal network
	// (so pre-netcond instances and group keys are unchanged). Expansion
	// sets it to the resolved spec's name.
	NetCond string `json:"netcond,omitempty"`
	// Net is the resolved network condition (nil for ideal). Hand-built
	// instances may leave it nil and set NetCond to the compact syntax
	// instead; runInstance resolves either form.
	Net *netcond.Spec `json:"net,omitempty"`
	// Seed drives every per-run random choice inside the instance
	// (handshake nonces).
	Seed int64 `json:"seed"`
	// KeySeed pins the instance's key material independently of Seed: all
	// keys derive from (Scheme, N, KeySeed) alone, through the key-domain
	// streams of sim.KeyMaterialSeed. Expansion sets it to the spec's
	// SeedBase for every instance, so a seed sweep over one configuration
	// shares key material — the paper's pay-for-authentication-once
	// economics — and the per-worker setup cache can reuse one established
	// cluster for the whole sweep without changing a single report byte.
	KeySeed int64 `json:"key_seed"`
	// Value, when non-empty, overrides the protocol's canonical sender
	// proposal. Expansion never sets it — sweeps measure the canonical
	// workload — but the agreement service (internal/service) threads
	// caller-supplied values through here, and an empty Value keeps every
	// report byte-identical to the pre-field era.
	Value []byte `json:"value,omitempty"`
}

// GroupKey identifies the instance's aggregation group: everything but
// the seed. Instances differing only in Seed are repetitions of the same
// configuration and aggregate together.
func (i Instance) GroupKey() string {
	scheme := i.Scheme
	if scheme == "" {
		scheme = "-"
	}
	key := fmt.Sprintf("%s/n=%d/t=%d/%s/%s", i.Protocol, i.N, i.T, scheme, i.Adversary)
	if i.NetCond != "" {
		// The netcond segment joins the key only when a condition is set,
		// so ideal-network group keys are byte-identical to the pre-axis era.
		key += "/" + i.NetCond
	}
	return key
}

// capabilities resolves a protocol name's declared capabilities through
// the driver registry (the zero value for unknown names; Validate has
// already rejected those before expansion runs).
func capabilities(name string) protocol.Capabilities {
	drv, err := protocol.Lookup(name)
	if err != nil {
		return protocol.Capabilities{}
	}
	return drv.Capabilities()
}

// classicTol is the classical fault bound t = ⌊(n−1)/3⌋, floored at 1 so
// small systems still exercise a non-trivial bound.
func classicTol(n int) int {
	t := (n - 1) / 3
	if t < 1 {
		t = 1
	}
	if t >= n {
		t = n - 1
	}
	return t
}

// cases resolves the spec's (n, t) list: explicit Cases verbatim, else
// Sizes × Tols, else Sizes with the classical bound.
func (s Spec) cases() []Case {
	if len(s.Cases) > 0 {
		return s.Cases
	}
	var out []Case
	for _, n := range s.Sizes {
		if len(s.Tols) == 0 {
			out = append(out, Case{N: n, T: classicTol(n)})
			continue
		}
		for _, t := range s.Tols {
			out = append(out, Case{N: n, T: t})
		}
	}
	return out
}

// Expand resolves the spec into its deterministic instance list. The
// order is the nested iteration protocol → case → scheme → adversary →
// netcond → seed; unsupported combinations are skipped. Seeds are SeedBase,
// SeedBase+1, … per configuration, so two configurations share seed
// values but never RNG streams (every instance mixes its seed with its
// node IDs through sim.NodeSeed).
func Expand(spec Spec) ([]Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	strategies, err := spec.resolveAdversaries()
	if err != nil {
		return nil, err
	}
	netconds, err := spec.resolveNetConds()
	if err != nil {
		return nil, err
	}
	var out []Instance
	for _, name := range spec.Protocols {
		// One registry lookup per protocol; the skip rules live with the
		// drivers (Capabilities.Supports), so expansion stays a pure
		// function of the Spec and the registry with no per-protocol
		// branches here.
		caps := capabilities(name)
		schemes := spec.Schemes
		if !caps.UsesSignatures {
			schemes = []string{""}
		}
		for _, c := range spec.cases() {
			for _, scheme := range schemes {
				for _, strat := range strategies {
					if !caps.Supports(c.N, c.T, strat) {
						continue
					}
					for _, nc := range netconds {
						if !caps.SupportsNet(c.N, c.T, strat, nc.spec) {
							continue
						}
						for s := 0; s < spec.SeedCount; s++ {
							out = append(out, Instance{
								Index:     len(out),
								Protocol:  name,
								N:         c.N,
								T:         c.T,
								Scheme:    scheme,
								Adversary: strat.Name,
								Strategy:  strat,
								NetCond:   nc.name,
								Net:       nc.spec,
								Seed:      spec.SeedBase + int64(s),
								KeySeed:   spec.SeedBase,
							})
						}
					}
				}
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: spec %q expands to zero instances", spec.Name)
	}
	return out, nil
}
