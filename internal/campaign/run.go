package campaign

import (
	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/protocol"
)

// Result is the outcome of one instance. Only plain data — it marshals
// into the campaign report, and equality of two Results is equality of
// their JSON.
type Result struct {
	// Index echoes the instance's expansion position.
	Index int `json:"index"`
	// Group echoes Instance.GroupKey for self-contained reports.
	Group string `json:"group"`
	// Seed echoes the instance seed.
	Seed int64 `json:"seed"`
	// Err is set when the instance could not run; such instances carry
	// no measurements and are counted separately in the aggregate.
	Err string `json:"err,omitempty"`
	// Agreed reports whether every correct node decided and all correct
	// decisions matched (for vector: over every instance with a correct
	// sender).
	Agreed bool `json:"agreed"`
	// Discovered reports whether at least one correct node discovered a
	// failure (for fdba: whether the fallback was triggered).
	Discovered bool `json:"discovered"`
	// Rounds is the number of engine steps the protocol phase ran.
	Rounds int `json:"rounds"`
	// CommRounds is the number of rounds that carried traffic.
	CommRounds int `json:"comm_rounds"`
	// Messages and Bytes are the protocol-phase traffic totals (key
	// distribution, where a protocol needs it, is not counted — the
	// paper amortizes it across runs).
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
	// SignedMessages counts the messages whose kind carries signatures.
	SignedMessages int `json:"signed_messages"`
	// Conformance is the instance's verdict against the paper's
	// correctness predicates (see conformance.go); nil for errored
	// instances.
	Conformance *Verdict `json:"conformance,omitempty"`
}

// signedKinds are the message kinds that carry signature material.
var signedKinds = []model.MessageKind{
	model.KindChainValue,
	model.KindChallengeResponse,
	model.KindSigned,
	model.KindFault,
	model.KindFaultEcho,
	model.KindFallback,
}

// countSigned sums the signature-bearing kinds in a snapshot.
func countSigned(s metrics.Snapshot) int {
	total := 0
	for _, k := range signedKinds {
		total += s.ByKind[k]
	}
	return total
}

// RunInstance executes one instance in full isolation: key material,
// RNG streams, every process, and the metrics sink all derive from the
// instance alone, so any number of RunInstance calls may execute
// concurrently. Errors are reported in Result.Err rather than aborting —
// one misconfigured combination must not kill a thousand-instance sweep.
//
// RunInstance always performs fresh setup (keygen + handshake); the
// worker loop in Run passes a per-worker setup cache through runInstance
// instead. Both paths derive identical wire bytes, because key material
// is a pure function of (Scheme, N, KeySeed) either way — the
// cached-vs-fresh differential test pins that equivalence.
func RunInstance(inst Instance) Result { return runInstance(inst, nil) }

// RunInstanceWith executes one instance like RunInstance but consults
// the caller-owned setup cache (when the driver declares cacheable
// setup), so long-lived callers — the agreement service's warm-cluster
// pool — reuse established clusters across requests while producing the
// same Result bytes RunInstance would. The cache is single-owner: the
// caller must serialize calls sharing one cache.
func RunInstanceWith(inst Instance, cache *protocol.SetupCache) Result {
	return runInstance(inst, cache)
}

// runInstance dispatches one instance through the protocol driver
// registry, reusing cached setup when cache is non-nil and the driver
// declares cacheable setup. There is no per-protocol branching here:
// every protocol the registry knows — including drivers registered
// outside this repository — runs, aggregates, and is conformance-scored
// identically.
func runInstance(inst Instance, cache *protocol.SetupCache) Result {
	res := Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed}
	if err := runInto(inst, cache, &res); err != nil {
		res.Err = err.Error()
		res.Conformance = nil
	}
	return res
}

// runInto executes the instance and fills the result's measurement and
// conformance fields.
func runInto(inst Instance, cache *protocol.SetupCache, res *Result) error {
	drv, err := protocol.Lookup(inst.Protocol)
	if err != nil {
		return err
	}
	strat, err := inst.strategy()
	if err != nil {
		return err
	}
	net, err := inst.netcondSpec()
	if err != nil {
		return err
	}
	pinst := protocol.Instance{
		N:        inst.N,
		T:        inst.T,
		Scheme:   inst.Scheme,
		Value:    inst.Value,
		Strategy: strat,
		Net:      net,
		Seed:     inst.Seed,
		KeySeed:  inst.KeySeed,
	}
	out, err := protocol.RunInstance(drv, pinst, cache)
	if err != nil {
		return err
	}
	res.Rounds = out.Rounds
	res.CommRounds = out.Snapshot.CommunicationRounds
	res.Messages = out.Snapshot.Messages
	res.Bytes = out.Snapshot.Bytes
	res.SignedMessages = countSigned(out.Snapshot)
	res.Agreed = out.Agreed
	res.Discovered = out.Discovered
	res.Conformance = scoreOutcome(drv, pinst, out)
	return nil
}

// strategy resolves the instance's adversary: the structured Strategy
// when present (expansion always names it), otherwise the Adversary
// string — a legacy alias or compact strategy syntax — so hand-built
// instances keep working.
func (inst Instance) strategy() (adversary.Strategy, error) {
	if !inst.Strategy.IsHonest() || inst.Strategy.Name != "" {
		return inst.Strategy, nil
	}
	if inst.Adversary == "" {
		return adversary.Strategy{Name: AdvNone}, nil
	}
	return ParseAdversary(inst.Adversary)
}
