package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Result is the outcome of one instance. Only plain data — it marshals
// into the campaign report, and equality of two Results is equality of
// their JSON.
type Result struct {
	// Index echoes the instance's expansion position.
	Index int `json:"index"`
	// Group echoes Instance.GroupKey for self-contained reports.
	Group string `json:"group"`
	// Seed echoes the instance seed.
	Seed int64 `json:"seed"`
	// Err is set when the instance could not run; such instances carry
	// no measurements and are counted separately in the aggregate.
	Err string `json:"err,omitempty"`
	// Agreed reports whether every correct node decided and all correct
	// decisions matched (for vector: over every instance with a correct
	// sender).
	Agreed bool `json:"agreed"`
	// Discovered reports whether at least one correct node discovered a
	// failure.
	Discovered bool `json:"discovered"`
	// Rounds is the number of engine steps the protocol phase ran.
	Rounds int `json:"rounds"`
	// CommRounds is the number of rounds that carried traffic.
	CommRounds int `json:"comm_rounds"`
	// Messages and Bytes are the protocol-phase traffic totals (key
	// distribution, where a protocol needs it, is not counted — the
	// paper amortizes it across runs).
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
	// SignedMessages counts the messages whose kind carries signatures.
	SignedMessages int `json:"signed_messages"`
}

// signedKinds are the message kinds that carry signature material.
var signedKinds = []model.MessageKind{
	model.KindChainValue,
	model.KindChallengeResponse,
	model.KindSigned,
	model.KindFault,
	model.KindFaultEcho,
	model.KindFallback,
}

// countSigned sums the signature-bearing kinds in a snapshot.
func countSigned(s metrics.Snapshot) int {
	total := 0
	for _, k := range signedKinds {
		total += s.ByKind[k]
	}
	return total
}

// campaignValue is the sender's proposal in multi-byte-value protocols.
// It matches the value package experiments always sent, so campaign-
// ported tables (E2, E3) keep byte-for-byte continuity with the seed
// tree's wire traffic.
var campaignValue = []byte("value")

// campaignAltValue is the equivocating sender's second face.
var campaignAltValue = []byte("forged")

// RunInstance executes one instance in full isolation: key material,
// RNG streams, every process, and the metrics sink all derive from the
// instance alone, so any number of RunInstance calls may execute
// concurrently. Errors are reported in Result.Err rather than aborting —
// one misconfigured combination must not kill a thousand-instance sweep.
//
// RunInstance always performs fresh setup (keygen + handshake); the
// worker loop in Run passes a per-worker setup cache through runInstance
// instead. Both paths derive identical wire bytes, because key material
// is a pure function of (Scheme, N, KeySeed) either way — the
// cached-vs-fresh differential test pins that equivalence.
func RunInstance(inst Instance) Result { return runInstance(inst, nil) }

// runInstance dispatches one instance, reusing cached setup when cache
// is non-nil.
func runInstance(inst Instance, cache *setupCache) Result {
	res := Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed}
	var err error
	switch inst.Protocol {
	case ProtoChain, ProtoNonAuth, ProtoSmallRange:
		err = runClusterInstance(inst, &res, cache)
	case ProtoVector:
		err = runVectorInstance(inst, &res, cache)
	case ProtoEIG:
		err = runEIGInstance(inst, &res)
	default:
		err = fmt.Errorf("campaign: unknown protocol %q", inst.Protocol)
	}
	if err != nil {
		res.Err = err.Error()
	}
	return res
}

// runClusterInstance runs the core.Cluster-backed protocols (chain,
// nonauth, smallrange).
func runClusterInstance(inst Instance, res *Result, cache *setupCache) error {
	var protocol core.Protocol
	value := campaignValue
	switch inst.Protocol {
	case ProtoChain:
		protocol = core.ProtocolChain
	case ProtoNonAuth:
		protocol = core.ProtocolNonAuth
	case ProtoSmallRange:
		protocol = core.ProtocolSmallRange
		value = []byte{1}
	}
	// nonauth ignores keys entirely, so its setup is free and skips the
	// cache; the authenticated protocols reuse an established cluster when
	// their (scheme, n, t, keySeed) cell is cached, paying keygen and the
	// 3n(n−1)-message handshake once per cell instead of once per seed.
	var c *core.Cluster
	var err error
	if cache != nil && protocol != core.ProtocolNonAuth {
		c, err = cache.cluster(inst)
		if err != nil {
			return err
		}
		c.Reset(inst.Seed)
	} else {
		c, err = establishedCluster(inst, protocol != core.ProtocolNonAuth)
		if err != nil {
			return err
		}
	}
	runOpts := []core.RunOption{core.WithProtocol(protocol)}
	switch inst.Adversary {
	case AdvCrashSender:
		runOpts = append(runOpts, core.WithProcess(fd.Sender, sim.Silent{}))
	case AdvCrashRelay:
		runOpts = append(runOpts, core.WithProcess(1, sim.Silent{}))
	case AdvEquivocate:
		split := model.NodeID(inst.N / 2)
		if protocol == core.ProtocolNonAuth {
			runOpts = append(runOpts, core.WithProcess(fd.Sender,
				adversary.NewEquivocatingPlainSender(c.Config(), campaignValue, campaignAltValue, split)))
		} else {
			signer, err := c.Signer(fd.Sender)
			if err != nil {
				return err
			}
			runOpts = append(runOpts, core.WithProcess(fd.Sender,
				adversary.NewEquivocatingSender(c.Config(), signer, campaignValue, campaignAltValue, split)))
		}
	}
	rep, err := c.RunFailureDiscovery(value, runOpts...)
	if err != nil {
		return err
	}
	res.Rounds = rep.Rounds
	res.CommRounds = rep.Snapshot.CommunicationRounds
	res.Messages = rep.Snapshot.Messages
	res.Bytes = rep.Snapshot.Bytes
	res.SignedMessages = countSigned(rep.Snapshot)
	res.Discovered = len(rep.Discoveries) > 0
	res.Agreed = outcomesAgree(rep.Outcomes)
	return nil
}

// outcomesAgree reports whether every outcome decided on one identical
// value. Outcomes belong to correct nodes only (overridden processes
// report none).
func outcomesAgree(outcomes []model.Outcome) bool {
	if len(outcomes) == 0 {
		return false
	}
	var first []byte
	for i, o := range outcomes {
		if !o.Decided {
			return false
		}
		if i == 0 {
			first = o.Value
			continue
		}
		if !bytes.Equal(o.Value, first) {
			return false
		}
	}
	return true
}

// faultyNodes returns the adversary mix's fault placement.
func faultyNodes(adversary string) model.NodeSet {
	switch adversary {
	case AdvCrashSender, AdvEquivocate:
		return model.NewNodeSet(0)
	case AdvCrashRelay:
		return model.NewNodeSet(1)
	}
	return model.NewNodeSet()
}

// runVectorInstance runs the all-senders vector composition: one honest
// key distribution (the paper's once-amortized setup phase — reused from
// the worker's cache when the cell is warm), then the vector round with
// the adversary mix applied.
func runVectorInstance(inst Instance, res *Result, cache *setupCache) error {
	cfg := model.Config{N: inst.N, T: inst.T}
	var kdNodes []*keydist.Node
	var err error
	if cache != nil {
		kdNodes, err = cache.vectorMaterial(inst)
	} else {
		kdNodes, err = newVectorMaterial(inst)
	}
	if err != nil {
		return err
	}

	faulty := faultyNodes(inst.Adversary)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*fd.VectorNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		if faulty.Contains(id) {
			procs[i] = sim.Silent{}
			continue
		}
		node, err := fd.NewVectorNode(cfg, id, kdNodes[i].Signer(), kdNodes[i].Directory(),
			[]byte(fmt.Sprintf("proposal-%d", i)))
		if err != nil {
			return err
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	simRes, err := sim.RunInstance(cfg, procs, fd.ChainEngineRounds(inst.T), sim.WithCounters(counters))
	if err != nil {
		return err
	}
	snap := counters.Snapshot()
	res.Rounds = simRes.Rounds
	res.CommRounds = snap.CommunicationRounds
	res.Messages = snap.Messages
	res.Bytes = snap.Bytes
	res.SignedMessages = countSigned(snap)

	// Agreement: every instance with a correct sender must be decided
	// identically by every correct node; any discovery anywhere is
	// recorded.
	agreed := true
	for s := 0; s < inst.N; s++ {
		sid := model.NodeID(s)
		var first []byte
		haveFirst := false
		for _, node := range nodes {
			if node == nil {
				continue
			}
			out := node.Outcome(sid)
			if out.Discovery != nil {
				res.Discovered = true
			}
			if faulty.Contains(sid) {
				continue // no agreement obligation for a faulty sender
			}
			if !out.Decided {
				agreed = false
				continue
			}
			if !haveFirst {
				first, haveFirst = out.Value, true
			} else if !bytes.Equal(out.Value, first) {
				agreed = false
			}
		}
	}
	res.Agreed = agreed
	return nil
}

// equivocateOral is the adversary filter for the eig equivocate mix: in
// round 1 the faulty sender reports campaignValue to the lower half of
// the nodes and campaignAltValue to the rest.
func equivocateOral(n int) adversary.Filter {
	split := model.NodeID(n / 2)
	alt := ba.MarshalOralEntries([]ba.OralEntry{{Path: []model.NodeID{ba.Sender}, Value: campaignAltValue}})
	return func(round int, out []model.Message) []model.Message {
		if round != 1 {
			return out
		}
		for i := range out {
			if out[i].Kind == model.KindOral && out[i].To >= split {
				out[i].Payload = alt
			}
		}
		return out
	}
}

// runEIGInstance runs the OM(t) baseline.
func runEIGInstance(inst Instance, res *Result) error {
	cfg := model.Config{N: inst.N, T: inst.T}
	faulty := faultyNodes(inst.Adversary)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*ba.EIGNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		if faulty.Contains(id) && inst.Adversary != AdvEquivocate {
			procs[i] = sim.Silent{}
			continue
		}
		var opts []ba.EIGOption
		if id == ba.Sender {
			opts = append(opts, ba.WithEIGValue(campaignValue))
		}
		node, err := ba.NewEIGNode(cfg, id, opts...)
		if err != nil {
			return err
		}
		if id == ba.Sender && inst.Adversary == AdvEquivocate {
			procs[i] = adversary.Wrap(node, equivocateOral(inst.N))
			continue // the two-faced sender's own decision does not count
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	simRes, err := sim.RunInstance(cfg, procs, ba.EIGEngineRounds(inst.T), sim.WithCounters(counters))
	if err != nil {
		return err
	}
	snap := counters.Snapshot()
	res.Rounds = simRes.Rounds
	res.CommRounds = snap.CommunicationRounds
	res.Messages = snap.Messages
	res.Bytes = snap.Bytes
	res.SignedMessages = countSigned(snap)

	agreed := true
	var first []byte
	haveFirst := false
	for _, node := range nodes {
		if node == nil {
			continue
		}
		d := node.Decision()
		if d.Value == nil {
			agreed = false
			continue
		}
		if !haveFirst {
			first, haveFirst = d.Value, true
		} else if !bytes.Equal(d.Value, first) {
			agreed = false
		}
	}
	res.Agreed = agreed && haveFirst
	return nil
}
