package campaign

import (
	"bytes"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Result is the outcome of one instance. Only plain data — it marshals
// into the campaign report, and equality of two Results is equality of
// their JSON.
type Result struct {
	// Index echoes the instance's expansion position.
	Index int `json:"index"`
	// Group echoes Instance.GroupKey for self-contained reports.
	Group string `json:"group"`
	// Seed echoes the instance seed.
	Seed int64 `json:"seed"`
	// Err is set when the instance could not run; such instances carry
	// no measurements and are counted separately in the aggregate.
	Err string `json:"err,omitempty"`
	// Agreed reports whether every correct node decided and all correct
	// decisions matched (for vector: over every instance with a correct
	// sender).
	Agreed bool `json:"agreed"`
	// Discovered reports whether at least one correct node discovered a
	// failure.
	Discovered bool `json:"discovered"`
	// Rounds is the number of engine steps the protocol phase ran.
	Rounds int `json:"rounds"`
	// CommRounds is the number of rounds that carried traffic.
	CommRounds int `json:"comm_rounds"`
	// Messages and Bytes are the protocol-phase traffic totals (key
	// distribution, where a protocol needs it, is not counted — the
	// paper amortizes it across runs).
	Messages int `json:"messages"`
	Bytes    int `json:"bytes"`
	// SignedMessages counts the messages whose kind carries signatures.
	SignedMessages int `json:"signed_messages"`
	// Conformance is the instance's verdict against the paper's
	// correctness predicates (see conformance.go); nil for errored
	// instances.
	Conformance *Verdict `json:"conformance,omitempty"`
}

// signedKinds are the message kinds that carry signature material.
var signedKinds = []model.MessageKind{
	model.KindChainValue,
	model.KindChallengeResponse,
	model.KindSigned,
	model.KindFault,
	model.KindFaultEcho,
	model.KindFallback,
}

// countSigned sums the signature-bearing kinds in a snapshot.
func countSigned(s metrics.Snapshot) int {
	total := 0
	for _, k := range signedKinds {
		total += s.ByKind[k]
	}
	return total
}

// campaignValue is the sender's proposal in multi-byte-value protocols.
// It matches the value package experiments always sent, so campaign-
// ported tables (E2, E3) keep byte-for-byte continuity with the seed
// tree's wire traffic.
var campaignValue = []byte("value")

// campaignAltValue is the equivocating sender's second face.
var campaignAltValue = []byte("forged")

// RunInstance executes one instance in full isolation: key material,
// RNG streams, every process, and the metrics sink all derive from the
// instance alone, so any number of RunInstance calls may execute
// concurrently. Errors are reported in Result.Err rather than aborting —
// one misconfigured combination must not kill a thousand-instance sweep.
//
// RunInstance always performs fresh setup (keygen + handshake); the
// worker loop in Run passes a per-worker setup cache through runInstance
// instead. Both paths derive identical wire bytes, because key material
// is a pure function of (Scheme, N, KeySeed) either way — the
// cached-vs-fresh differential test pins that equivalence.
func RunInstance(inst Instance) Result { return runInstance(inst, nil) }

// runInstance dispatches one instance, reusing cached setup when cache
// is non-nil.
func runInstance(inst Instance, cache *setupCache) Result {
	res := Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed}
	var err error
	switch inst.Protocol {
	case ProtoChain, ProtoNonAuth, ProtoSmallRange:
		err = runClusterInstance(inst, &res, cache)
	case ProtoVector:
		err = runVectorInstance(inst, &res, cache)
	case ProtoEIG:
		err = runEIGInstance(inst, &res)
	default:
		err = fmt.Errorf("campaign: unknown protocol %q", inst.Protocol)
	}
	if err != nil {
		res.Err = err.Error()
		res.Conformance = nil
	}
	return res
}

// strategy resolves the instance's adversary: the structured Strategy
// when present (expansion always names it), otherwise the Adversary
// string — a legacy alias or compact strategy syntax — so hand-built
// instances keep working.
func (inst Instance) strategy() (adversary.Strategy, error) {
	if !inst.Strategy.IsHonest() || inst.Strategy.Name != "" {
		return inst.Strategy, nil
	}
	if inst.Adversary == "" {
		return adversary.Strategy{Name: AdvNone}, nil
	}
	return ParseAdversary(inst.Adversary)
}

// pureCrash reports a behavior stack equivalent to a from-the-start
// crash. Such nodes run as sim.Silent — exactly what the legacy mixes
// did, and cheaper than stepping a wrapped node whose every send is
// dropped anyway.
func pureCrash(specs []adversary.BehaviorSpec) bool {
	return len(specs) == 1 && specs[0].Name == adversary.BehaviorCrash && specs[0].Round <= 1
}

// equivocatePartition returns the partition of the stack's first
// equivocate behavior.
func equivocatePartition(strat adversary.Strategy) string {
	for _, b := range strat.Behaviors {
		if b.Name == adversary.BehaviorEquivocate {
			return b.Partition
		}
	}
	return ""
}

// withoutEquivocate filters equivocate out of a behavior stack; used when
// a bespoke two-faced process replaces the generic filter.
func withoutEquivocate(specs []adversary.BehaviorSpec) []adversary.BehaviorSpec {
	var out []adversary.BehaviorSpec
	for _, b := range specs {
		if b.Name != adversary.BehaviorEquivocate {
			out = append(out, b)
		}
	}
	return out
}

// clusterFaultOption builds the run option that corrupts node id under
// the strategy for a cluster-backed protocol. An equivocating sender gets
// the protocol's bespoke two-faced process (remaining behaviors wrap it);
// a from-the-start crash runs silent; every other stack wraps the node's
// correct process with the compiled behavior filters.
func clusterFaultOption(inst Instance, c *core.Cluster, protocol core.Protocol,
	strat adversary.Strategy, id model.NodeID) (core.RunOption, error) {
	specs := strat.Behaviors
	if id == fd.Sender && strat.HasBehavior(adversary.BehaviorEquivocate) {
		faceOne, err := adversary.PartitionFaceOne(equivocatePartition(strat), inst.N)
		if err != nil {
			return nil, err
		}
		var sender sim.Process
		if protocol == core.ProtocolNonAuth {
			sender = adversary.NewEquivocatingPlainSenderFaces(c.Config(), campaignValue, campaignAltValue, faceOne)
		} else {
			signer, err := c.Signer(fd.Sender)
			if err != nil {
				return nil, err
			}
			sender = adversary.NewEquivocatingSenderFaces(c.Config(), signer, campaignValue, campaignAltValue, faceOne)
		}
		if rest := withoutEquivocate(specs); len(rest) > 0 {
			behaviors, err := adversary.BuildBehaviors(rest, inst.N)
			if err != nil {
				return nil, err
			}
			sender = adversary.WrapBehaviors(sender, behaviors...)
		}
		return core.WithProcess(id, sender), nil
	}
	if pureCrash(specs) {
		return core.WithProcess(id, sim.Silent{}), nil
	}
	behaviors, err := adversary.BuildBehaviors(specs, inst.N)
	if err != nil {
		return nil, err
	}
	return core.WithWrappedProcess(id, func(p sim.Process) sim.Process {
		return adversary.WrapBehaviors(p, behaviors...)
	}), nil
}

// runClusterInstance runs the core.Cluster-backed protocols (chain,
// nonauth, smallrange).
func runClusterInstance(inst Instance, res *Result, cache *setupCache) error {
	var protocol core.Protocol
	value := campaignValue
	maxRounds := fd.ChainEngineRounds(inst.T)
	switch inst.Protocol {
	case ProtoChain:
		protocol = core.ProtocolChain
	case ProtoNonAuth:
		protocol = core.ProtocolNonAuth
		maxRounds = fd.NonAuthEngineRounds(inst.T)
	case ProtoSmallRange:
		protocol = core.ProtocolSmallRange
		value = []byte{1}
	}
	strat, err := inst.strategy()
	if err != nil {
		return err
	}
	faulty := strat.CorruptSet(inst.N, inst.Seed)
	// nonauth ignores keys entirely, so its setup is free and skips the
	// cache; the authenticated protocols reuse an established cluster when
	// their (scheme, n, t, keySeed) cell is cached, paying keygen and the
	// 3n(n−1)-message handshake once per cell instead of once per seed.
	var c *core.Cluster
	if cache != nil && protocol != core.ProtocolNonAuth {
		c, err = cache.cluster(inst)
		if err != nil {
			return err
		}
		c.Reset(inst.Seed)
	} else {
		c, err = establishedCluster(inst, protocol != core.ProtocolNonAuth)
		if err != nil {
			return err
		}
	}
	runOpts := []core.RunOption{core.WithProtocol(protocol)}
	for _, id := range faulty.Sorted() {
		opt, err := clusterFaultOption(inst, c, protocol, strat, id)
		if err != nil {
			return err
		}
		runOpts = append(runOpts, opt)
	}
	rep, err := c.RunFailureDiscovery(value, runOpts...)
	if err != nil {
		return err
	}
	res.Rounds = rep.Rounds
	res.CommRounds = rep.Snapshot.CommunicationRounds
	res.Messages = rep.Snapshot.Messages
	res.Bytes = rep.Snapshot.Bytes
	res.SignedMessages = countSigned(rep.Snapshot)
	res.Discovered = len(rep.Discoveries) > 0
	res.Agreed = outcomesAgree(rep.Outcomes)
	res.Conformance = evaluateOutcomes(inst, rep.Outcomes, faulty, fd.Sender, value, rep.Rounds, maxRounds)
	return nil
}

// outcomesAgree reports whether every outcome decided on one identical
// value. Outcomes belong to correct nodes only (overridden processes
// report none).
func outcomesAgree(outcomes []model.Outcome) bool {
	if len(outcomes) == 0 {
		return false
	}
	var first []byte
	for i, o := range outcomes {
		if !o.Decided {
			return false
		}
		if i == 0 {
			first = o.Value
			continue
		}
		if !bytes.Equal(o.Value, first) {
			return false
		}
	}
	return true
}

// runVectorInstance runs the all-senders vector composition: one honest
// key distribution (the paper's once-amortized setup phase — reused from
// the worker's cache when the cell is warm), then the vector round with
// the adversary strategy applied.
func runVectorInstance(inst Instance, res *Result, cache *setupCache) error {
	cfg := model.Config{N: inst.N, T: inst.T}
	var kdNodes []*keydist.Node
	var err error
	if cache != nil {
		kdNodes, err = cache.vectorMaterial(inst)
	} else {
		kdNodes, err = newVectorMaterial(inst)
	}
	if err != nil {
		return err
	}

	strat, err := inst.strategy()
	if err != nil {
		return err
	}
	faulty := strat.CorruptSet(inst.N, inst.Seed)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*fd.VectorNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		if faulty.Contains(id) && pureCrash(strat.Behaviors) {
			procs[i] = sim.Silent{}
			continue
		}
		node, err := fd.NewVectorNode(cfg, id, kdNodes[i].Signer(), kdNodes[i].Directory(),
			[]byte(fmt.Sprintf("proposal-%d", i)))
		if err != nil {
			return err
		}
		if faulty.Contains(id) {
			// A corrupt node runs the correct protocol under its behavior
			// stack; it reports no outcome (nodes[i] stays nil).
			behaviors, err := adversary.BuildBehaviors(strat.Behaviors, inst.N)
			if err != nil {
				return err
			}
			procs[i] = adversary.WrapBehaviors(node, behaviors...)
			continue
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	maxRounds := fd.ChainEngineRounds(inst.T)
	simRes, err := sim.RunInstance(cfg, procs, maxRounds, sim.WithCounters(counters))
	if err != nil {
		return err
	}
	snap := counters.Snapshot()
	res.Rounds = simRes.Rounds
	res.CommRounds = snap.CommunicationRounds
	res.Messages = snap.Messages
	res.Bytes = snap.Bytes
	res.SignedMessages = countSigned(snap)

	// Agreement: every instance with a correct sender must be decided
	// identically by every correct node; any discovery anywhere is
	// recorded. Conformance evaluates each rotated sub-instance against
	// F1–F3 and requires all of them to pass.
	agreed := true
	verdicts := make([]*Verdict, 0, inst.N)
	for s := 0; s < inst.N; s++ {
		sid := model.NodeID(s)
		outcomes := make([]model.Outcome, 0, inst.N)
		var first []byte
		haveFirst := false
		for _, node := range nodes {
			if node == nil {
				continue
			}
			out := node.Outcome(sid)
			outcomes = append(outcomes, out)
			if out.Discovery != nil {
				res.Discovered = true
			}
			if faulty.Contains(sid) {
				continue // no agreement obligation for a faulty sender
			}
			if !out.Decided {
				agreed = false
				continue
			}
			if !haveFirst {
				first, haveFirst = out.Value, true
			} else if !bytes.Equal(out.Value, first) {
				agreed = false
			}
		}
		initial := []byte(fmt.Sprintf("proposal-%d", s))
		verdicts = append(verdicts,
			evaluateOutcomes(inst, outcomes, faulty, sid, initial, simRes.Rounds, maxRounds))
	}
	res.Agreed = agreed
	res.Conformance = mergeVerdicts(inst, verdicts)
	return nil
}

// equivocateOral is the sender-side equivocation filter for eig: in
// round 1 the faulty sender reports campaignValue to faceOne and
// campaignAltValue to everyone else.
func equivocateOral(faceOne model.NodeSet) adversary.Filter {
	alt := ba.MarshalOralEntries([]ba.OralEntry{{Path: []model.NodeID{ba.Sender}, Value: campaignAltValue}})
	return func(round int, out []model.Message) []model.Message {
		if round != 1 {
			return out
		}
		for i := range out {
			if out[i].Kind == model.KindOral && !faceOne.Contains(out[i].To) {
				out[i].Payload = alt
			}
		}
		return out
	}
}

// runEIGInstance runs the OM(t) baseline.
func runEIGInstance(inst Instance, res *Result) error {
	cfg := model.Config{N: inst.N, T: inst.T}
	strat, err := inst.strategy()
	if err != nil {
		return err
	}
	faulty := strat.CorruptSet(inst.N, inst.Seed)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*ba.EIGNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		corrupt := faulty.Contains(id)
		if corrupt && pureCrash(strat.Behaviors) {
			procs[i] = sim.Silent{}
			continue
		}
		var opts []ba.EIGOption
		if id == ba.Sender {
			opts = append(opts, ba.WithEIGValue(campaignValue))
		}
		node, err := ba.NewEIGNode(cfg, id, opts...)
		if err != nil {
			return err
		}
		if corrupt {
			// A corrupt node runs OM(t) correctly under its behavior stack;
			// its own decision does not count (nodes[i] stays nil). The
			// sender's equivocation uses the oral-entry rewrite — a proper
			// second face, not a tampered payload.
			var stack []adversary.Behavior
			if id == ba.Sender && strat.HasBehavior(adversary.BehaviorEquivocate) {
				faceOne, err := adversary.PartitionFaceOne(equivocatePartition(strat), inst.N)
				if err != nil {
					return err
				}
				stack = append(stack, equivocateOral(faceOne))
				rest, err := adversary.BuildBehaviors(withoutEquivocate(strat.Behaviors), inst.N)
				if err != nil {
					return err
				}
				stack = append(stack, rest...)
			} else {
				stack, err = adversary.BuildBehaviors(strat.Behaviors, inst.N)
				if err != nil {
					return err
				}
			}
			procs[i] = adversary.WrapBehaviors(node, stack...)
			continue
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	maxRounds := ba.EIGEngineRounds(inst.T)
	simRes, err := sim.RunInstance(cfg, procs, maxRounds, sim.WithCounters(counters))
	if err != nil {
		return err
	}
	snap := counters.Snapshot()
	res.Rounds = simRes.Rounds
	res.CommRounds = snap.CommunicationRounds
	res.Messages = snap.Messages
	res.Bytes = snap.Bytes
	res.SignedMessages = countSigned(snap)

	agreed := true
	var first []byte
	haveFirst := false
	outcomes := make([]model.Outcome, 0, inst.N)
	for i, node := range nodes {
		if node == nil {
			continue
		}
		d := node.Decision()
		outcomes = append(outcomes, model.Outcome{
			Node:    model.NodeID(i),
			Decided: d.Value != nil,
			Value:   d.Value,
		})
		if d.Value == nil {
			agreed = false
			continue
		}
		if !haveFirst {
			first, haveFirst = d.Value, true
		} else if !bytes.Equal(d.Value, first) {
			agreed = false
		}
	}
	res.Agreed = agreed && haveFirst
	res.Conformance = evaluateOutcomes(inst, outcomes, faulty, ba.Sender, campaignValue, simRes.Rounds, maxRounds)
	return nil
}
