package campaign

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
	"repro/internal/protocol"
	"repro/internal/sig"
)

// mkOutcomes builds decided outcomes for nodes 1..count with the given
// values (node 0 is left to the caller's faulty set).
func decidedOutcomes(values ...string) []model.Outcome {
	out := make([]model.Outcome, len(values))
	for i, v := range values {
		out[i] = model.Outcome{Node: model.NodeID(i + 1), Decided: true, Value: []byte(v)}
	}
	return out
}

// TestVerdictPredicates drives evaluateOutcomes with synthetic outcomes:
// the predicate logic, including the expected-failure excusals, without
// running a protocol.
func TestVerdictPredicates(t *testing.T) {
	faultySender := model.NewNodeSet(0)
	honest := model.NewNodeSet()
	crashRelay := Instance{Protocol: ProtoChain, N: 4, T: 1, Adversary: AdvCrashRelay}
	for _, tc := range []struct {
		name           string
		inst           Instance
		outcomes       []model.Outcome
		faulty         model.NodeSet
		rounds, bound  int
		wantConformant bool
		wantViolations []string
		wantMay        bool
	}{
		{"all agree", crashRelay.withAdv(AdvNone), decidedOutcomes("v", "v", "v"), honest, 3, 3, true, nil, false},
		{"chain disagreement is a violation",
			crashRelay, decidedOutcomes("v", "x", "v"), model.NewNodeSet(1), 3, 3,
			false, []string{PredAgreement, PredValidity}, false},
		{"discovery makes agreement vacuous",
			crashRelay,
			append(decidedOutcomes("v", "x"),
				model.Outcome{Node: 3, Discovery: &model.Discovery{Node: 3, Round: 2}}),
			model.NewNodeSet(1), 3, 3, true, nil, false},
		{"undecided without discovery violates termination",
			crashRelay,
			append(decidedOutcomes("v", "v"), model.Outcome{Node: 3}),
			model.NewNodeSet(1), 3, 3, false, []string{PredTermination}, false},
		{"round bound overrun violates termination",
			crashRelay.withAdv(AdvNone), decidedOutcomes("v", "v", "v"), honest, 4, 3,
			false, []string{PredTermination}, false},
		{"nonauth below 3t may disagree",
			Instance{Protocol: ProtoNonAuth, N: 4, T: 2, Adversary: AdvCrashRelay},
			decidedOutcomes("v", "x", "v"), model.NewNodeSet(1), 3, 5, true, nil, true},
		{"nonauth above 3t may not",
			Instance{Protocol: ProtoNonAuth, N: 7, T: 2, Adversary: AdvCrashRelay},
			decidedOutcomes("v", "x", "v"), model.NewNodeSet(1), 3, 5,
			false, []string{PredAgreement, PredValidity}, false},
		{"honest nonauth below 3t is not excused",
			Instance{Protocol: ProtoNonAuth, N: 4, T: 2, Adversary: AdvNone},
			decidedOutcomes("v", "x", "v"), honest, 3, 5,
			false, []string{PredAgreement, PredValidity}, false},
		{"smallrange under faults may disagree",
			Instance{Protocol: ProtoSmallRange, N: 5, T: 1, Adversary: AdvCrashRelay},
			decidedOutcomes("\x00", "\x01", "\x00"), model.NewNodeSet(1), 3, 3, true, nil, true},
		{"honest smallrange is not excused",
			Instance{Protocol: ProtoSmallRange, N: 5, T: 1, Adversary: AdvNone},
			decidedOutcomes("\x00", "\x01", "\x00"), honest, 3, 3,
			false, []string{PredAgreement, PredValidity}, false},
		{"faulty sender makes validity vacuous",
			Instance{Protocol: ProtoChain, N: 4, T: 1, Adversary: AdvCrashSender},
			decidedOutcomes("x", "x", "x"), faultySender, 3, 3, true, nil, false},
	} {
		v := evaluateOutcomes(tc.inst, tc.outcomes, tc.faulty, 0, []byte("v"), tc.rounds, tc.bound)
		if v.Conformant() != tc.wantConformant {
			t.Errorf("%s: conformant = %v, want %v (verdict %+v)", tc.name, v.Conformant(), tc.wantConformant, v)
		}
		if strings.Join(v.Violations, ",") != strings.Join(tc.wantViolations, ",") {
			t.Errorf("%s: violations = %v, want %v", tc.name, v.Violations, tc.wantViolations)
		}
		if v.MayDisagree != tc.wantMay {
			t.Errorf("%s: may_disagree = %v, want %v", tc.name, v.MayDisagree, tc.wantMay)
		}
	}
}

// withAdv returns a copy of the instance under another adversary name.
func (inst Instance) withAdv(name string) Instance {
	inst.Adversary = name
	inst.Strategy = adversary.Strategy{}
	return inst
}

func TestVerdictConformantNil(t *testing.T) {
	var v *Verdict
	if v.Conformant() {
		t.Error("nil verdict reported conformant")
	}
}

// TestRunInstanceConformance runs real instances across every protocol
// and checks the verdicts the paper predicts.
func TestRunInstanceConformance(t *testing.T) {
	for _, tc := range []struct {
		name           string
		inst           Instance
		wantConformant bool
		wantAgreement  bool
		wantMay        bool
	}{
		{"chain honest",
			Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1},
			true, true, false},
		{"chain crash-relay discovers",
			Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1},
			true, true, false},
		{"chain equivocate discovers",
			Instance{Protocol: ProtoChain, N: 6, T: 2, Scheme: sig.SchemeToy, Adversary: AdvEquivocate, Seed: 1},
			true, true, false},
		{"smallrange crash-relay disagrees silently but is excused",
			Instance{Protocol: ProtoSmallRange, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1},
			true, false, true},
		{"vector crash-relay",
			Instance{Protocol: ProtoVector, N: 4, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1},
			true, true, false},
		{"eig equivocate agrees (n > 3t)",
			Instance{Protocol: ProtoEIG, N: 7, T: 2, Adversary: AdvEquivocate, Seed: 1},
			true, true, false},
		{"chain delayed relay",
			Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy,
				Adversary: "relay:behavior=delay,delay=2", Seed: 1},
			true, true, false},
		{"nonauth tampering echoer",
			Instance{Protocol: ProtoNonAuth, N: 5, T: 1,
				Adversary: "relay:behavior=tamper", Seed: 1},
			true, true, false},
	} {
		res := RunInstance(tc.inst)
		if res.Err != "" {
			t.Errorf("%s: error: %s", tc.name, res.Err)
			continue
		}
		v := res.Conformance
		if v == nil {
			t.Errorf("%s: no conformance verdict", tc.name)
			continue
		}
		if v.Conformant() != tc.wantConformant || v.Agreement != tc.wantAgreement || v.MayDisagree != tc.wantMay {
			t.Errorf("%s: verdict %+v, want conformant=%v agreement=%v may=%v",
				tc.name, v, tc.wantConformant, tc.wantAgreement, tc.wantMay)
		}
		if !v.Termination {
			t.Errorf("%s: termination failed: %+v", tc.name, v)
		}
	}
}

// TestErroredInstanceHasNoVerdict pins that failed runs carry no verdict.
func TestErroredInstanceHasNoVerdict(t *testing.T) {
	res := RunInstance(Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: "no-such-scheme", Seed: 1})
	if res.Err == "" {
		t.Fatal("bad scheme did not error")
	}
	if res.Conformance != nil {
		t.Errorf("errored instance carries a verdict: %+v", res.Conformance)
	}
}

// TestReportConformanceAggregation feeds assemble synthetic results and
// checks the group tallies and the report-level violation count.
func TestReportConformanceAggregation(t *testing.T) {
	spec := Spec{
		Name:      "agg",
		Protocols: []string{ProtoChain},
		Cases:     []Case{{N: 4, T: 1}},
		Schemes:   []string{sig.SchemeToy},
		SeedBase:  1,
		SeedCount: 3,
	}
	instances, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	results := make([]Result, len(instances))
	for i, inst := range instances {
		results[i] = Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed}
	}
	results[0].Conformance = &Verdict{Termination: true, Agreement: true, Validity: true}
	results[1].Conformance = &Verdict{Termination: true, Agreement: false, Validity: false,
		Violations: []string{PredAgreement, PredValidity}}
	results[2].Err = "boom"
	rep := assemble(spec.withDefaults(), instances, results)
	if got := rep.Violations(); got != 1 {
		t.Errorf("Violations() = %d, want 1", got)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(rep.Groups))
	}
	g := rep.Groups[0]
	if g.Conformant != 1 || g.Errors != 1 {
		t.Errorf("group conformant=%d errors=%d, want 1/1", g.Conformant, g.Errors)
	}
	if strings.Join(g.Violations, ",") != PredAgreement+","+PredValidity {
		t.Errorf("group violations = %v", g.Violations)
	}
}

// TestCampaignGridIsConformant is the harness-as-property-test claim: a
// sweep across every registered protocol driver and each behavior family
// (including a seeded coalition and delayed delivery) completes with
// zero unexcused violations — and the verdicts are present in every
// result.
func TestCampaignGridIsConformant(t *testing.T) {
	spec := Spec{
		Name:      "conformance-grid",
		Protocols: protocol.Names(),
		Sizes:     []int{4, 7},
		Schemes:   []string{sig.SchemeToy},
		Adversaries: []string{
			AdvNone,
			AdvCrashSender,
			AdvEquivocate,
			"coalition:size=1,behavior=delay,delay=2",
			"relay:behavior=drop,victims=2+3",
			"nodes=1:behavior=duplicate,victims=0,behavior=tamper",
		},
		SeedBase:  5,
		SeedCount: 3,
	}
	rep, err := Run(spec, 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.Violations(); got != 0 {
		for _, g := range rep.Groups {
			if len(g.Violations) > 0 {
				t.Errorf("group %s: violations %v (%d/%d conformant)", g.Key, g.Violations, g.Conformant, g.Instances)
			}
		}
		t.Fatalf("grid recorded %d violations", got)
	}
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Errorf("instance %d errored: %s", res.Index, res.Err)
			continue
		}
		if res.Conformance == nil {
			t.Errorf("instance %d has no verdict", res.Index)
		}
	}
}

// TestEmptySubRunsIsViolation pins the scorer's guard: a driver outcome
// carrying no conformance material must not pass the -strict gate as
// vacuously conformant.
func TestEmptySubRunsIsViolation(t *testing.T) {
	drv, err := protocol.Lookup(ProtoChain)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	v := scoreOutcome(drv, protocol.Instance{N: 4, T: 1}, protocol.Outcome{})
	if v.Conformant() {
		t.Errorf("outcome with zero sub-runs scored conformant: %+v", v)
	}
}
