package campaign

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// The amortized-setup cache. RSA/ECDSA/Ed25519 key generation plus the
// 3n(n−1)-message handshake dwarf the n−1-message protocol being
// measured, and a seed sweep regenerates both per instance even though
// key material is a pure function of (scheme, n, keySeed) — constant
// across the sweep. Each worker owns one bounded cache of established
// setups; an instance whose cell is cached skips keygen and the
// handshake entirely and just Resets the cluster onto its run seed. The
// cache is deliberately per-worker (no locks, no cross-shard coupling),
// and because keys are pinned by Instance.KeySeed, a cached run derives
// byte-identical wire traffic to a fresh one — the cached-vs-fresh
// differential test and CI step keep that true forever.

// setup kinds cached per (scheme, n, t, keySeed) cell.
const (
	// setupCluster is an established core.Cluster (chain, smallrange).
	setupCluster = uint8(iota)
	// setupVectorMaterial is the keydist node set backing vector runs.
	setupVectorMaterial
)

// setupKey identifies one cached setup cell. t rides along even though
// key material does not depend on it, so a cached cluster's Config always
// matches the instance exactly.
type setupKey struct {
	kind    uint8
	scheme  string
	n, t    int
	keySeed int64
}

// defaultSetupCacheCap bounds each worker's cache. A sweep iterates the
// grid cell by cell (seeds innermost), so even 1 entry captures the
// amortization within a cell; a few more keep multi-protocol grids that
// revisit cells warm. Bounded per PERF.md ground rules.
const defaultSetupCacheCap = 8

// setupCache is one worker's bounded setup store. Not safe for
// concurrent use — every worker owns its own.
type setupCache struct {
	cap     int
	entries map[setupKey]any
	order   []setupKey // insertion order; index 0 evicts first
}

// newSetupCache returns an empty cache bounded to cap entries
// (defaultSetupCacheCap if cap < 1).
func newSetupCache(cap int) *setupCache {
	if cap < 1 {
		cap = defaultSetupCacheCap
	}
	return &setupCache{cap: cap, entries: make(map[setupKey]any, cap)}
}

// put stores v under k, evicting the oldest entry at capacity. Storing
// an existing key replaces its value without duplicating it in the
// eviction order.
func (sc *setupCache) put(k setupKey, v any) {
	if _, ok := sc.entries[k]; ok {
		sc.entries[k] = v
		return
	}
	if len(sc.entries) >= sc.cap {
		oldest := sc.order[0]
		sc.order = sc.order[1:]
		delete(sc.entries, oldest)
	}
	sc.entries[k] = v
	sc.order = append(sc.order, k)
}

// cluster returns an established cluster for the instance's cell,
// building (and caching) it on a miss. Callers must Reset it onto the
// instance seed before running; clusters are handed out serially within
// one worker, never shared across workers.
func (sc *setupCache) cluster(inst Instance) (*core.Cluster, error) {
	k := setupKey{kind: setupCluster, scheme: inst.Scheme, n: inst.N, t: inst.T, keySeed: inst.KeySeed}
	if v, ok := sc.entries[k]; ok {
		return v.(*core.Cluster), nil
	}
	c, err := establishedCluster(inst, true)
	if err != nil {
		return nil, err
	}
	sc.put(k, c)
	return c, nil
}

// vectorMaterial returns the established keydist node set (signers and
// directories) for a vector instance's cell, building it on a miss. The
// material is handshake output and is read-only during vector runs, so
// any number of sequential runs may share it.
func (sc *setupCache) vectorMaterial(inst Instance) ([]*keydist.Node, error) {
	k := setupKey{kind: setupVectorMaterial, scheme: inst.Scheme, n: inst.N, t: inst.T, keySeed: inst.KeySeed}
	if v, ok := sc.entries[k]; ok {
		return v.([]*keydist.Node), nil
	}
	nodes, err := newVectorMaterial(inst)
	if err != nil {
		return nil, err
	}
	sc.put(k, nodes)
	return nodes, nil
}

// establishedCluster builds the instance's cluster with split entropy —
// run randomness from Seed, key material pinned to KeySeed — and, when
// establish is set, runs the authentication handshake. This is the
// single construction site shared by the fresh execution path and the
// cache-miss path, which is what makes the two structurally
// interchangeable (the differential tests then prove it byte for byte).
func establishedCluster(inst Instance, establish bool) (*core.Cluster, error) {
	opts := []core.Option{core.WithSeed(inst.Seed), core.WithKeySeed(inst.KeySeed)}
	if inst.Scheme != "" {
		opts = append(opts, core.WithScheme(inst.Scheme))
	}
	c, err := core.New(model.Config{N: inst.N, T: inst.T}, opts...)
	if err != nil {
		return nil, err
	}
	if establish {
		if _, err := c.EstablishAuthentication(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// newVectorMaterial generates a vector instance's key material and runs
// the honest key-distribution phase (the paper's once-amortized setup),
// returning the established nodes.
func newVectorMaterial(inst Instance) ([]*keydist.Node, error) {
	cfg := model.Config{N: inst.N, T: inst.T}
	scheme, err := sig.ByName(inst.Scheme)
	if err != nil {
		return nil, err
	}
	kdNodes := make([]*keydist.Node, inst.N)
	kdProcs := make([]sim.Process, inst.N)
	for i := 0; i < inst.N; i++ {
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme,
			sim.SeededReader(sim.NodeSeed(inst.Seed, i)),
			keydist.WithKeyRand(sim.SeededReader(sim.KeyMaterialSeed(inst.KeySeed, i))))
		if err != nil {
			return nil, err
		}
		kdNodes[i] = node
		kdProcs[i] = node
	}
	if _, err := sim.RunInstance(cfg, kdProcs, keydist.RoundsTotal); err != nil {
		return nil, err
	}
	for _, node := range kdNodes {
		if !node.Accepted() {
			return nil, fmt.Errorf("campaign: honest key distribution left node %v unestablished", node.ID())
		}
	}
	return kdNodes, nil
}
