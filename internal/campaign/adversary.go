package campaign

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
)

// Adversary resolution: a Spec names its fault mixes either as strings in
// Adversaries — legacy aliases ("crash-relay") or the compact strategy
// syntax ("coalition:size=2,behavior=equivocate,partition=even-odd") —
// or as structured adversary.Strategy values in AdversarySpecs. Both
// resolve into the same ordered []adversary.Strategy, each carrying a
// unique deterministic name that becomes the instance group key.

// aliasStrategy maps the legacy adversary names onto their strategy
// equivalents. The aliases are exact: they corrupt the same nodes and
// produce the same wire traffic the hard-coded mixes did.
func aliasStrategy(name string) (adversary.Strategy, bool) {
	switch name {
	case AdvNone:
		return adversary.Strategy{Name: AdvNone}, true
	case AdvCrashSender:
		return adversary.Strategy{
			Name:      AdvCrashSender,
			Nodes:     []int{0},
			Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorCrash}},
		}, true
	case AdvCrashRelay:
		return adversary.Strategy{
			Name:      AdvCrashRelay,
			Nodes:     []int{1},
			Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorCrash}},
		}, true
	case AdvEquivocate:
		return adversary.Strategy{
			Name:      AdvEquivocate,
			Nodes:     []int{0},
			Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorEquivocate, Partition: adversary.PartitionHalves}},
		}, true
	}
	return adversary.Strategy{}, false
}

// ParseAdversary resolves one Adversaries entry: a legacy alias name or
// the compact strategy syntax (adversary.ParseStrategy). The result is
// always named (explicit name= or the canonical rendering).
func ParseAdversary(s string) (adversary.Strategy, error) {
	if strat, ok := aliasStrategy(s); ok {
		return strat, nil
	}
	strat, err := adversary.ParseStrategy(s)
	if err != nil {
		return adversary.Strategy{}, fmt.Errorf("campaign: %w", err)
	}
	if strat.Name == "" {
		strat.Name = strat.CanonicalName()
	}
	return strat, nil
}

// SplitAdversaryList splits a flag value into adversary entries. The
// strategy syntax uses commas internally, so multiple entries separate on
// ";" when one is present; otherwise a value containing ":" is a single
// strategy and anything else splits on "," (the legacy alias-list form).
func SplitAdversaryList(s string) []string {
	sep := ","
	if strings.Contains(s, ";") {
		sep = ";"
	} else if strings.Contains(s, ":") {
		return []string{strings.TrimSpace(s)}
	}
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// resolveAdversaries returns the spec's adversary list in deterministic
// order — Adversaries entries first, then AdversarySpecs — with every
// strategy validated and named (explicit Name or CanonicalName). Names
// must be unique: they key the aggregation groups.
func (s Spec) resolveAdversaries() ([]adversary.Strategy, error) {
	var out []adversary.Strategy
	for _, a := range s.Adversaries {
		strat, err := ParseAdversary(a)
		if err != nil {
			return nil, err
		}
		out = append(out, strat)
	}
	for _, strat := range s.AdversarySpecs {
		if err := strat.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		out = append(out, strat)
	}
	seen := make(map[string]bool, len(out))
	for i := range out {
		if out[i].Name == "" {
			out[i].Name = out[i].CanonicalName()
		}
		if seen[out[i].Name] {
			return nil, fmt.Errorf("campaign: duplicate adversary name %q", out[i].Name)
		}
		seen[out[i].Name] = true
	}
	return out, nil
}
