package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/protocol"
	"repro/internal/sig"
)

// toySpec returns a sweep sized for tests: ≥ 100 instances across two
// protocols under the fast toy scheme. The adversaries span the legacy
// aliases, the compact strategy syntax, and the structured AdversarySpecs
// block — a seeded coalition with delayed delivery among them — so the
// differential tests cover the whole resolution surface.
func toySpec() Spec {
	return Spec{
		Name:      "test-sweep",
		Protocols: []string{ProtoChain, ProtoNonAuth},
		Sizes:     []int{4, 6},
		Schemes:   []string{sig.SchemeToy},
		Adversaries: []string{
			AdvNone,
			AdvCrashRelay,
			"coalition:size=1,behavior=delay,delay=2",
		},
		AdversarySpecs: []adversary.Strategy{
			{Nodes: []int{1}, Behaviors: []adversary.BehaviorSpec{
				{Name: adversary.BehaviorDuplicate, Victims: []int{0}},
				{Name: adversary.BehaviorTamper},
			}},
		},
		SeedBase:  7,
		SeedCount: 13,
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", toySpec(), true},
		{"no protocols", Spec{Sizes: []int{4}}, false},
		{"unknown protocol", Spec{Protocols: []string{"quantum"}, Sizes: []int{4}}, false},
		{"no sizes or cases", Spec{Protocols: []string{ProtoChain}}, false},
		{"unknown adversary", Spec{Protocols: []string{ProtoChain}, Sizes: []int{4}, Adversaries: []string{"gremlin"}}, false},
		{"unknown scheme", Spec{Protocols: []string{ProtoChain}, Sizes: []int{4}, Schemes: []string{"rot13"}}, false},
		{"tiny size", Spec{Protocols: []string{ProtoChain}, Sizes: []int{1}}, false},
		{"explicit cases", Spec{Protocols: []string{ProtoChain}, Cases: []Case{{N: 5, T: 1}}}, true},
	} {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
}

func TestParseSpecAdversarySpecsJSON(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "json-strategies",
		"protocols": ["chain"],
		"sizes": [7],
		"adversaries": ["none", "coalition:size=1,behavior=delay,delay=2"],
		"adversary_specs": [
			{"coalition": 2, "behaviors": [{"behavior": "equivocate", "partition": "even-odd"}]},
			{"name": "flood", "nodes": [1], "behaviors": [{"behavior": "duplicate", "victims": [0, 2]}]}
		],
		"seed_count": 2
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	insts, err := Expand(s)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	names := map[string]bool{}
	for _, inst := range insts {
		names[inst.Adversary] = true
	}
	for _, want := range []string{"none", "coalition-1.delay-2", "coalition-2.equivocate-even-odd", "flood"} {
		if !names[want] {
			t.Errorf("expanded adversaries %v missing %q", names, want)
		}
	}
	// Malformed structured specs fail loudly.
	if _, err := ParseSpec([]byte(`{
		"protocols": ["chain"], "sizes": [6],
		"adversary_specs": [{"coalition": 2, "behaviors": [{"behavior": "warp"}]}]
	}`)); err == nil {
		t.Error("unknown behavior in adversary_specs accepted")
	}
	// Duplicate resolved names collide.
	if _, err := ParseSpec([]byte(`{
		"protocols": ["chain"], "sizes": [6],
		"adversaries": ["crash-relay"],
		"adversary_specs": [{"name": "crash-relay", "nodes": [2], "behaviors": [{"behavior": "crash"}]}]
	}`)); err == nil {
		t.Error("duplicate adversary names accepted")
	}
}

func TestSplitAdversaryList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"none,crash-relay", []string{"none", "crash-relay"}},
		{"coalition:size=2,behavior=equivocate", []string{"coalition:size=2,behavior=equivocate"}},
		{"none;coalition:size=2,behavior=equivocate; relay:behavior=tamper",
			[]string{"none", "coalition:size=2,behavior=equivocate", "relay:behavior=tamper"}},
	} {
		if got := SplitAdversaryList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitAdversaryList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"name":"x","protocols":["chain"],"sizes":[4],"worker_count":8}`)); err == nil {
		t.Error("ParseSpec accepted an unknown field; typos must fail loudly")
	}
	s, err := ParseSpec([]byte(`{"name":"x","protocols":["chain"],"sizes":[4],"seed_count":2}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.SeedCount != 2 || s.Name != "x" {
		t.Errorf("ParseSpec = %+v", s)
	}
}

func TestExpandDeterministicAndComplete(t *testing.T) {
	spec := toySpec()
	a, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, _ := Expand(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same spec differ")
	}
	// 2 protocols × 2 sizes × 1 scheme × 4 adversaries × 13 seeds.
	if want := 2 * 2 * 4 * 13; len(a) != want {
		t.Fatalf("expanded %d instances, want %d", len(a), want)
	}
	protos := map[string]int{}
	for i, inst := range a {
		if inst.Index != i {
			t.Fatalf("instance %d has Index %d", i, inst.Index)
		}
		protos[inst.Protocol]++
	}
	if len(protos) != 2 {
		t.Errorf("protocols covered = %v, want 2", protos)
	}
	// nonauth is unsigned: its instances must not carry a scheme.
	for _, inst := range a {
		if inst.Protocol == ProtoNonAuth && inst.Scheme != "" {
			t.Fatalf("nonauth instance carries scheme %q", inst.Scheme)
		}
	}
}

func TestExpandSkipRules(t *testing.T) {
	// eig needs n > 3t: at n=4, only t=1 survives from {1, 2}.
	insts, err := Expand(Spec{
		Protocols: []string{ProtoEIG},
		Sizes:     []int{4},
		Tols:      []int{1, 2},
		SeedBase:  1,
		SeedCount: 1,
	})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(insts) != 1 || insts[0].T != 1 {
		t.Errorf("eig skip rule failed: %+v", insts)
	}
	// equivocate is unsupported for smallrange and vector.
	insts, err = Expand(Spec{
		Protocols:   []string{ProtoSmallRange, ProtoVector, ProtoChain},
		Cases:       []Case{{N: 5, T: 1}},
		Adversaries: []string{AdvEquivocate},
		SeedCount:   1,
	})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(insts) != 1 || insts[0].Protocol != ProtoChain {
		t.Errorf("equivocate skip rule failed: %+v", insts)
	}
	// An all-skipped spec errors rather than silently succeeding.
	if _, err := Expand(Spec{
		Protocols:   []string{ProtoSmallRange},
		Cases:       []Case{{N: 4, T: 1}},
		Adversaries: []string{AdvEquivocate},
		SeedCount:   1,
	}); err == nil {
		t.Error("zero-instance expansion did not error")
	}
}

func TestRunInstanceDeterministic(t *testing.T) {
	inst := Instance{Index: 3, Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 42}
	a := RunInstance(inst)
	b := RunInstance(inst)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical instances produced different results:\n%+v\n%+v", a, b)
	}
	if a.Err != "" {
		t.Fatalf("honest chain instance failed: %s", a.Err)
	}
	if !a.Agreed || a.Discovered {
		t.Errorf("honest chain run: agreed=%v discovered=%v", a.Agreed, a.Discovered)
	}
	if a.Messages != fd.ChainMessages(5, 1) {
		t.Errorf("chain messages = %d, want n-1 = %d", a.Messages, fd.ChainMessages(5, 1))
	}
}

func TestRunInstanceAdversaries(t *testing.T) {
	for _, tc := range []struct {
		name          string
		inst          Instance
		wantAgreed    bool
		wantDiscovery bool
	}{
		{"chain crash-relay",
			Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1},
			false, true},
		{"chain equivocate",
			Instance{Protocol: ProtoChain, N: 6, T: 2, Scheme: sig.SchemeToy, Adversary: AdvEquivocate, Seed: 1},
			false, true},
		{"nonauth crash-sender",
			Instance{Protocol: ProtoNonAuth, N: 5, T: 1, Adversary: AdvCrashSender, Seed: 1},
			false, true},
		{"smallrange honest",
			Instance{Protocol: ProtoSmallRange, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1},
			true, false},
		{"vector honest",
			Instance{Protocol: ProtoVector, N: 4, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1},
			true, false},
		// A crashed relay breaks every rotated instance that routes
		// through it: correct nodes discover (not decide) there, so the
		// strict all-decided agreement flag drops.
		{"vector crash-relay",
			Instance{Protocol: ProtoVector, N: 4, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1},
			false, true},
		{"eig honest",
			Instance{Protocol: ProtoEIG, N: 4, T: 1, Adversary: AdvNone, Seed: 1},
			true, false},
		{"eig equivocate agrees anyway (n > 3t)",
			Instance{Protocol: ProtoEIG, N: 7, T: 2, Adversary: AdvEquivocate, Seed: 1},
			true, false},
	} {
		res := RunInstance(tc.inst)
		if res.Err != "" {
			t.Errorf("%s: error: %s", tc.name, res.Err)
			continue
		}
		if res.Agreed != tc.wantAgreed || res.Discovered != tc.wantDiscovery {
			t.Errorf("%s: agreed=%v discovered=%v, want %v/%v",
				tc.name, res.Agreed, res.Discovered, tc.wantAgreed, tc.wantDiscovery)
		}
	}
}

func TestRunInstanceReportsErrors(t *testing.T) {
	res := RunInstance(Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: "no-such-scheme", Seed: 1})
	if res.Err == "" {
		t.Error("bad scheme did not surface in Result.Err")
	}
	res = RunInstance(Instance{Protocol: "bogus", N: 5, T: 1, Seed: 1})
	if res.Err == "" {
		t.Error("bogus protocol did not surface in Result.Err")
	}
}

// fullGridSpec widens toySpec to every registered protocol driver: the
// campaign grid the invariance contract runs over. Deriving the protocol
// list from the registry is itself part of the contract — a driver
// registered without joining the invariance grid cannot exist.
func fullGridSpec() Spec {
	s := toySpec()
	s.Name = "full-grid-sweep"
	s.Protocols = protocol.Names()
	return s
}

// TestReportWorkerCountInvariance is the campaign determinism contract:
// the canonical JSON of a several-hundred-instance sweep across the full
// seven-protocol registry grid must be byte-identical for 1 worker and 8
// workers.
func TestReportWorkerCountInvariance(t *testing.T) {
	spec := fullGridSpec()
	if len(spec.Protocols) != 7 {
		t.Fatalf("registry has %d drivers, the invariance grid expects 7: %v",
			len(spec.Protocols), spec.Protocols)
	}
	insts, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(insts) < 100 {
		t.Fatalf("differential spec has %d instances; the contract test needs >= 100", len(insts))
	}
	// Registry completeness: every registered driver must appear in the
	// expanded grid — no driver can dodge the invariance contract.
	covered := map[string]int{}
	for _, inst := range insts {
		covered[inst.Protocol]++
	}
	for _, name := range protocol.Names() {
		if covered[name] == 0 {
			t.Errorf("registered driver %q expanded to zero instances in the invariance grid", name)
		}
	}
	rep1, err := Run(spec, 1)
	if err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	rep8, err := Run(spec, 8)
	if err != nil {
		t.Fatalf("Run(workers=8): %v", err)
	}
	j1, err := rep1.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	j8, err := rep8.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("aggregate JSON differs between 1 and 8 workers; the campaign lost its determinism guarantee")
	}
	// The report must actually contain aggregates, not vacuous output:
	// 7 protocols × 2 sizes × 4 adversaries.
	if len(rep1.Groups) != 56 {
		t.Errorf("got %d groups, want 56", len(rep1.Groups))
	}
	for _, g := range rep1.Groups {
		if g.Errors != 0 {
			t.Errorf("group %s: %d errored instances", g.Key, g.Errors)
		}
		if g.Adversary == AdvNone && g.AgreeRate != 1 {
			t.Errorf("group %s: honest agree rate %v, want 1", g.Key, g.AgreeRate)
		}
		if g.Protocol == ProtoChain && g.Adversary == AdvNone && g.Messages.Mean != float64(g.N-1) {
			t.Errorf("group %s: mean messages %v, want n-1", g.Key, g.Messages.Mean)
		}
		// The conformance section must be populated and clean: the whole
		// grid — aliases, strategy syntax, and structured specs alike —
		// is a passed property test.
		if g.Conformant != g.Instances || len(g.Violations) != 0 {
			t.Errorf("group %s: %d/%d conformant, violations %v",
				g.Key, g.Conformant, g.Instances, g.Violations)
		}
	}
	if rep1.Violations() != 0 {
		t.Errorf("report records %d violations", rep1.Violations())
	}
}

func TestReportJSONRoundTrips(t *testing.T) {
	rep, err := Run(Spec{
		Protocols: []string{ProtoChain},
		Cases:     []Case{{N: 4, T: 1}},
		Schemes:   []string{sig.SchemeToy},
		SeedBase:  3,
		SeedCount: 2,
	}, 2)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if back.Schema != ReportSchema || back.Instances != 2 || len(back.Results) != 2 {
		t.Errorf("round-trip lost data: %+v", back)
	}
	tbl := rep.Table().String()
	if !strings.Contains(tbl, "chain") {
		t.Errorf("table missing protocol column:\n%s", tbl)
	}
}

// TestReportSetupCacheInvariance is the amortization determinism
// contract: a sweep that reuses cached key material and established
// clusters must emit a report byte-identical to one that regenerates all
// setup per instance — across every cluster-backed protocol, both
// deterministic signature schemes, and every adversary mix. It runs the
// cached side at two worker counts so cache population order (which
// depends on sharding) is also shown not to matter.
func TestReportSetupCacheInvariance(t *testing.T) {
	spec := Spec{
		Name:        "setup-cache-differential",
		Protocols:   []string{ProtoChain, ProtoSmallRange, ProtoVector, ProtoFDBA, ProtoSM},
		Sizes:       []int{4, 6},
		Schemes:     []string{sig.SchemeToy, sig.SchemeEd25519},
		Adversaries: []string{AdvNone, AdvCrashRelay, AdvEquivocate},
		SeedBase:    11,
		SeedCount:   4,
	}
	fresh, err := Run(spec, 2, WithoutSetupCache())
	if err != nil {
		t.Fatalf("Run(uncached): %v", err)
	}
	jFresh, err := fresh.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	for _, workers := range []int{1, 3} {
		cached, err := Run(spec, workers)
		if err != nil {
			t.Fatalf("Run(cached, workers=%d): %v", workers, err)
		}
		jCached, err := cached.CanonicalJSON()
		if err != nil {
			t.Fatalf("CanonicalJSON: %v", err)
		}
		if !bytes.Equal(jFresh, jCached) {
			t.Fatalf("cached (workers=%d) and uncached reports differ; setup reuse changed what the campaign measured", workers)
		}
	}
	for _, g := range fresh.Groups {
		if g.Errors != 0 {
			t.Errorf("group %s: %d errored instances", g.Key, g.Errors)
		}
	}
}

// TestReportSharedKeyWarmupInvariance is the shared-key determinism
// contract: a sweep whose workers draw key material from the
// process-global signer cache (each cell generated once, shared across
// workers) must emit a report byte-identical to one where every worker
// generates its own — at several worker counts, with and without the
// per-worker setup cache, and from both cold and warm global caches.
func TestReportSharedKeyWarmupInvariance(t *testing.T) {
	spec := Spec{
		Name:        "sharedkeys-differential",
		Protocols:   []string{ProtoChain, ProtoVector, ProtoFDBA},
		Sizes:       []int{4, 6},
		Schemes:     []string{sig.SchemeToy, sig.SchemeEd25519},
		Adversaries: []string{AdvNone, AdvCrashRelay},
		SeedBase:    23,
		SeedCount:   3,
	}
	fresh, err := Run(spec, 2)
	if err != nil {
		t.Fatalf("Run(fresh): %v", err)
	}
	jFresh, err := fresh.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	protocol.SetSharedKeyWarmup(true)
	defer protocol.SetSharedKeyWarmup(false)
	protocol.ResetSharedSigners()
	for _, run := range []struct {
		name    string
		workers int
		opts    []Option
	}{
		{"cold/workers=1", 1, nil},
		{"warm/workers=3", 3, nil},
		{"warm/workers=2/nocache", 2, []Option{WithoutSetupCache()}},
	} {
		shared, err := Run(spec, run.workers, run.opts...)
		if err != nil {
			t.Fatalf("Run(shared, %s): %v", run.name, err)
		}
		jShared, err := shared.CanonicalJSON()
		if err != nil {
			t.Fatalf("CanonicalJSON: %v", err)
		}
		if !bytes.Equal(jFresh, jShared) {
			t.Fatalf("%s: shared-key report differs from fresh-key report; the global signer cache changed what the campaign measured", run.name)
		}
	}
}

// TestReportSetupCacheInvarianceUnderEviction forces the per-worker cache
// down to one entry, so every cell change evicts and rebuilds: the report
// must still match the fully cached one.
func TestReportSetupCacheInvarianceUnderEviction(t *testing.T) {
	spec := Spec{
		Name:      "eviction-differential",
		Protocols: []string{ProtoChain, ProtoVector},
		Sizes:     []int{4, 5},
		Schemes:   []string{sig.SchemeToy},
		SeedBase:  23,
		SeedCount: 3,
	}
	roomy, err := Run(spec, 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	tight, err := Run(spec, 1, WithSetupCacheCap(1))
	if err != nil {
		t.Fatalf("Run(cap=1): %v", err)
	}
	jRoomy, _ := roomy.CanonicalJSON()
	jTight, _ := tight.CanonicalJSON()
	if !bytes.Equal(jRoomy, jTight) {
		t.Fatal("cache eviction changed the report")
	}
}

// TestInstanceKeySeedPinsKeyMaterial runs the same instance under two run
// seeds and checks the traffic profile is identical (keys shared), then
// under two key seeds and checks both still succeed — the fresh-keys
// escape hatch.
func TestInstanceKeySeedPinsKeyMaterial(t *testing.T) {
	base := Instance{Protocol: ProtoChain, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1, KeySeed: 9}
	other := base
	other.Seed = 2
	a, b := RunInstance(base), RunInstance(other)
	if a.Err != "" || b.Err != "" {
		t.Fatalf("instance errors: %q / %q", a.Err, b.Err)
	}
	if a.Messages != b.Messages || a.Bytes != b.Bytes || !a.Agreed || !b.Agreed {
		t.Errorf("run seed changed the traffic profile: %+v vs %+v", a, b)
	}
	rekeyed := base
	rekeyed.KeySeed = 10
	c := RunInstance(rekeyed)
	if c.Err != "" || !c.Agreed {
		t.Errorf("rekeyed instance failed: %+v", c)
	}
}

// TestGoldenReportByteIdentical is the registry-redesign differential:
// testdata/golden_report.json was generated by the pre-registry code
// (hard-coded switch dispatch) over the five original protocols, and the
// registry-backed engine must reproduce it byte for byte. Worker count
// is arbitrary by the invariance contract; two counts are exercised so a
// regression cannot hide behind scheduling.
func TestGoldenReportByteIdentical(t *testing.T) {
	spec, err := LoadSpec("testdata/golden_spec.json")
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	want, err := os.ReadFile("testdata/golden_report.json")
	if err != nil {
		t.Fatalf("read golden report: %v", err)
	}
	for _, workers := range []int{1, 4} {
		rep, err := Run(spec, workers)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		got, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatalf("CanonicalJSON: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("registry-backed report (workers=%d) differs from the pre-registry golden report", workers)
		}
	}
}
