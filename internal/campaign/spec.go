// Package campaign is the declarative scenario-sweep engine: a Spec
// names a family of protocol runs — a grid over protocol, system size,
// fault bound, signature scheme, adversary mix, and seed range — and the
// engine expands it into a deterministic list of fully independent
// simulation instances, executes them on a sharded worker pool, and
// aggregates the outcomes into distributions (internal/metrics).
//
// The paper's evaluation is about *families* of runs: failure-discovery
// and agreement costs as n, t, the authentication scheme, and the
// adversary vary. Package experiments hand-wires single configurations;
// campaign is the scaffolding that sweeps them systematically and as
// fast as the hardware allows.
//
// Determinism contract: a campaign's aggregate output is a pure function
// of its Spec. Expansion order is fixed, every instance derives its own
// RNG, key material, and metrics sink from (Spec.SeedBase, instance
// coordinates) alone, and results are aggregated in instance order — so
// the report is byte-identical whether one worker ran the sweep or
// sixteen did.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/netcond"
	"repro/internal/protocol"
	"repro/internal/sig"
)

// Protocol names accepted in Spec.Protocols. The vocabulary is the
// protocol driver registry (internal/protocol): any registered driver —
// including ones registered outside this repository — sweeps through the
// campaign engine with no campaign changes. The constants below alias
// the built-in drivers for spec-building convenience.
const (
	// ProtoChain is the authenticated chain failure-discovery protocol
	// (paper Fig. 2, n−1 messages).
	ProtoChain = protocol.NameChain
	// ProtoNonAuth is the non-authenticated baseline ((t+1)(n−1) messages).
	ProtoNonAuth = protocol.NameNonAuth
	// ProtoSmallRange is the binary silence-as-default FD variant (§5).
	ProtoSmallRange = protocol.NameSmallRange
	// ProtoVector is the beyond-paper vector FD composition (n rotated
	// chain instances sharing rounds).
	ProtoVector = protocol.NameVector
	// ProtoEIG is the classical OM(t) Byzantine-agreement baseline.
	ProtoEIG = protocol.NameEIG
	// ProtoFDBA is the failure-discovery-to-Byzantine-agreement extension
	// (paper §4): chain FD plus a signed fallback flood on discovery.
	ProtoFDBA = protocol.NameFDBA
	// ProtoSM is the signed-messages agreement algorithm SM(t).
	ProtoSM = protocol.NameSM
)

// Legacy adversary alias names accepted in Spec.Adversaries, kept from
// the era when these four were the whole vocabulary. Each resolves to a
// composable adversary.Strategy (see aliasStrategy); arbitrary strategies
// are declared with the compact syntax or the AdversarySpecs block. All
// fault placements apply to the protocol phase only (key distribution,
// where a protocol needs it, always runs honestly — the paper's setting:
// authentication is established once, failures happen in later runs).
const (
	// AdvNone runs every node honestly.
	AdvNone = "none"
	// AdvCrashSender replaces the sender P_0 with a silent node.
	AdvCrashSender = "crash-sender"
	// AdvCrashRelay replaces the first relay P_1 with a silent node.
	AdvCrashRelay = "crash-relay"
	// AdvEquivocate makes the sender two-faced: one value to the first
	// half of the nodes, another to the rest. Supported for chain,
	// nonauth, and eig (smallrange carries one bit and vector has no
	// distinguished sender, so the mix is skipped there).
	AdvEquivocate = "equivocate"
)

// Case is one explicit (n, t) configuration.
type Case struct {
	N int `json:"n"`
	T int `json:"t"`
}

// Spec declares a scenario sweep. The expanded grid is the cross product
// Protocols × cases × Schemes × Adversaries × NetConds × seeds, where cases is
// either the explicit Cases list or Sizes × Tols (with Tols empty
// meaning the classical t = ⌊(n−1)/3⌋ per size). Combinations a protocol
// cannot express (eig needs n > 3t, equivocate needs a distinguished
// multi-valued sender, ...) are skipped during expansion — deterministically,
// so every run of the same Spec sees the same instance list.
type Spec struct {
	// Name labels the campaign in reports.
	Name string `json:"name"`
	// Protocols to sweep; see the Proto* constants.
	Protocols []string `json:"protocols"`
	// Sizes are system sizes n (ignored when Cases is set).
	Sizes []int `json:"sizes,omitempty"`
	// Tols are fault bounds t crossed with Sizes; empty means the
	// classical t = ⌊(n−1)/3⌋ for each size (ignored when Cases is set).
	Tols []int `json:"tols,omitempty"`
	// Cases gives explicit (n, t) pairs, overriding Sizes × Tols.
	Cases []Case `json:"cases,omitempty"`
	// Schemes are signature-scheme registry names; empty means ed25519.
	// Protocols that use no signatures (nonauth, eig) run once under the
	// first scheme rather than once per scheme.
	Schemes []string `json:"schemes,omitempty"`
	// Adversaries are fault mixes as strings: legacy alias names (the
	// Adv* constants) or the compact strategy syntax
	// ("coalition:size=2,behavior=equivocate,partition=even-odd", see
	// adversary.ParseStrategy). Empty means none unless AdversarySpecs is
	// set.
	Adversaries []string `json:"adversaries,omitempty"`
	// AdversarySpecs declares composable adversary strategies in
	// structured form; they sweep after the Adversaries entries.
	AdversarySpecs []adversary.Strategy `json:"adversary_specs,omitempty"`
	// NetConds are network conditions in the compact syntax
	// ("latency=uniform-0-2,loss=0.05,partition=even-odd@1-3", see
	// netcond.Parse; "ideal" is the no-op network). Empty means every
	// instance runs on the ideal network unless NetCondSpecs is set.
	NetConds []string `json:"netconds,omitempty"`
	// NetCondSpecs declares network conditions in structured form; they
	// sweep after the NetConds entries.
	NetCondSpecs []netcond.Spec `json:"netcond_specs,omitempty"`
	// SeedBase is the base of the deterministic seed range.
	SeedBase int64 `json:"seed_base"`
	// SeedCount is how many seeded repetitions each configuration runs.
	SeedCount int `json:"seed_count"`
}

// withDefaults returns the spec with empty optional fields resolved.
func (s Spec) withDefaults() Spec {
	if len(s.Schemes) == 0 {
		s.Schemes = []string{sig.SchemeEd25519}
	}
	if len(s.Adversaries) == 0 && len(s.AdversarySpecs) == 0 {
		s.Adversaries = []string{AdvNone}
	}
	if s.SeedCount == 0 {
		s.SeedCount = 1
	}
	return s
}

// Validate checks the spec's vocabulary and shape. It validates the
// sweep axes only; per-combination constraints (t < n, n > 3t for eig,
// ...) are handled by skipping during expansion.
func (s Spec) Validate() error {
	if len(s.Protocols) == 0 {
		return fmt.Errorf("campaign: spec needs at least one protocol")
	}
	for _, p := range s.Protocols {
		if _, err := protocol.Lookup(p); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	if len(s.Cases) == 0 && len(s.Sizes) == 0 {
		return fmt.Errorf("campaign: spec needs sizes or explicit cases")
	}
	for _, c := range s.Cases {
		if c.N < 2 {
			return fmt.Errorf("campaign: case n=%d is below the 2-node minimum", c.N)
		}
	}
	for _, n := range s.Sizes {
		if n < 2 {
			return fmt.Errorf("campaign: size n=%d is below the 2-node minimum", n)
		}
	}
	if _, err := s.resolveAdversaries(); err != nil {
		return err
	}
	if _, err := s.resolveNetConds(); err != nil {
		return err
	}
	for _, name := range s.Schemes {
		if _, err := sig.ByName(name); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	if s.SeedCount < 0 {
		return fmt.Errorf("campaign: seed count must be non-negative, got %d", s.SeedCount)
	}
	return nil
}

// LoadSpec reads a Spec from a JSON file. Unknown fields are rejected so
// a typo in a spec fails loudly instead of silently shrinking the sweep.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: read spec: %w", err)
	}
	return ParseSpec(data)
}

// ParseSpec decodes a JSON Spec document.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
