package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// ReportSchema identifies the report JSON layout for downstream tooling.
const ReportSchema = "fdcampaign/v1"

// GroupSummary aggregates all seeded repetitions of one configuration.
type GroupSummary struct {
	Key       string `json:"key"`
	Protocol  string `json:"protocol"`
	N         int    `json:"n"`
	T         int    `json:"t"`
	Scheme    string `json:"scheme,omitempty"`
	Adversary string `json:"adversary"`
	// NetCond names the group's network condition ("" for ideal, so
	// pre-netcond reports keep their exact bytes).
	NetCond string `json:"netcond,omitempty"`
	// Instances is the number of runs in the group; Errors of them
	// failed to run and contribute to no other field.
	Instances int `json:"instances"`
	Errors    int `json:"errors"`
	// AgreeRate and DiscoveryRate are fractions of the non-error runs.
	AgreeRate     float64 `json:"agree_rate"`
	DiscoveryRate float64 `json:"discovery_rate"`
	// Conformant counts the non-error runs whose conformance verdict has
	// no unexcused predicate failures; Violations lists the distinct
	// violated predicates observed across the group's runs (sorted).
	Conformant int      `json:"conformant"`
	Violations []string `json:"violations,omitempty"`
	// Distributions over the non-error runs.
	Rounds         metrics.Dist `json:"rounds"`
	CommRounds     metrics.Dist `json:"comm_rounds"`
	Messages       metrics.Dist `json:"messages"`
	Bytes          metrics.Dist `json:"bytes"`
	SignedMessages metrics.Dist `json:"signed_messages"`
}

// Report is a completed campaign: the spec, every per-instance result in
// expansion order, and the per-group aggregates. It deliberately records
// nothing about HOW the campaign ran (worker count, timing, host), so
// marshaling it is byte-identical for any worker count — the determinism
// contract, enforced by TestReportWorkerCountInvariance.
type Report struct {
	Schema    string         `json:"schema"`
	Name      string         `json:"name"`
	Spec      Spec           `json:"spec"`
	Instances int            `json:"instances"`
	Groups    []GroupSummary `json:"groups"`
	Results   []Result       `json:"results"`
}

// CanonicalJSON is the canonical report serialization (indented,
// trailing newline): cmd/fdcampaign emits it and the differential tests
// compare it, so there is exactly one byte representation per report.
func (r *Report) CanonicalJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Option configures one Run call.
type Option func(*runConfig)

type runConfig struct {
	setupCache  bool
	cacheCap    int
	rec         *obs.Recorder
	instTimeout time.Duration
}

// WithObserver attaches a structured-event recorder to the run: every
// executor stamps one "campaign.instance" span per instance with its
// wall-time, verdict, and setup-cache outcome. Observation is a pure
// reader — the report stays byte-identical with or without it
// (TestReportObserverInvariance) — so wall-clock timing, which the
// deterministic report deliberately omits, lives only in the trace.
// Recorders are safe to share across the local scheduler's shards.
func WithObserver(rec *obs.Recorder) Option {
	return func(c *runConfig) { c.rec = rec }
}

// WithoutSetupCache disables the per-worker amortized-setup cache,
// forcing every instance to regenerate key material and redo the
// key-distribution handshake from scratch. It exists as the differential
// baseline: a cached and an uncached run of the same spec must produce
// byte-identical reports (TestReportSetupCacheInvariance and the CI
// campaign differential enforce it), so setup reuse can never silently
// change what a campaign measures.
func WithoutSetupCache() Option {
	return func(c *runConfig) { c.setupCache = false }
}

// WithSetupCacheCap bounds each worker's setup cache to n entries
// (default protocol.DefaultSetupCacheCap). Mostly for tests that force
// eviction.
func WithSetupCacheCap(n int) Option {
	return func(c *runConfig) { c.cacheCap = n }
}

// ErrInstanceTimeout is the fixed Err string recorded for instances the
// watchdog parked. Fixed so a timed-out instance contributes the same
// report bytes no matter which worker hit the deadline.
const ErrInstanceTimeout = "campaign: instance watchdog timeout"

// WithInstanceTimeout arms a per-instance watchdog: an instance still
// running after d is abandoned and recorded as an error with
// ErrInstanceTimeout, so one livelocked combination cannot hang a whole
// sweep. Default off (zero): the watchdog measures wall time, so arming
// it trades the strict any-worker-count byte-identity guarantee for
// liveness — only results near the deadline can differ, and only by
// becoming this fixed error.
func WithInstanceTimeout(d time.Duration) Option {
	return func(c *runConfig) { c.instTimeout = d }
}

// Scheduler abstracts HOW a campaign's expanded instances execute: the
// in-process sharded pool (Local), or the fault-tolerant
// coordinator/worker scheduler (internal/sched) that leases batches to
// remote workers over a transport. The contract is positional: Execute
// returns exactly one Result per instance, slot i holding instances[i]'s
// outcome, so the engine assembles the report from the slice and any two
// schedulers that produce the same per-instance results produce
// byte-identical reports — worker count, placement, and retry history
// included.
type Scheduler interface {
	Execute(spec Spec, instances []Instance) ([]Result, error)
}

// Executor runs instances one at a time over a private amortized-setup
// cache; it is the per-worker execution unit every Scheduler builds on
// (one Executor per local shard, one per remote worker process). Not
// safe for concurrent use — give each worker its own.
type Executor struct {
	cache    *protocol.SetupCache
	cacheCap int
	rec      *obs.Recorder
	timeout  time.Duration
}

// NewExecutor builds an executor honoring the run options (setup cache
// enabled by default).
func NewExecutor(opts ...Option) *Executor {
	cfg := runConfig{setupCache: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &Executor{rec: cfg.rec, cacheCap: cfg.cacheCap, timeout: cfg.instTimeout}
	if cfg.setupCache {
		e.cache = protocol.NewSetupCache(cfg.cacheCap)
	}
	return e
}

// Run executes one instance, reusing the executor's cached setup where
// the driver allows it. With an instance timeout armed, the run is raced
// against the watchdog (see WithInstanceTimeout). The watchdog branch
// lives in its own method so the goroutine closure there cannot make
// inst escape on this, the default, path — escape analysis is
// function-wide, and the sweep benchmarks hold this path allocation-flat.
func (e *Executor) Run(inst Instance) Result {
	if e.timeout <= 0 {
		return e.run(inst, e.cache)
	}
	return e.runWatched(inst)
}

// runWatched races the instance against the armed watchdog timer.
func (e *Executor) runWatched(inst Instance) Result {
	cache := e.cache
	done := make(chan Result, 1)
	go func() { done <- e.run(inst, cache) }()
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case res := <-done:
		return res
	case <-timer.C:
		if cache != nil {
			// The parked goroutine still holds the old cache; hand the
			// next instance a fresh one so the two can never race.
			e.cache = protocol.NewSetupCache(e.cacheCap)
		}
		if e.rec.Enabled() {
			e.rec.Emit(obs.Event{Kind: obs.KindPoint, Scope: "campaign.watchdog",
				Inst: inst.Index, Proto: inst.Protocol, Node: -1,
				Attrs: obs.Attrs("group", inst.GroupKey(), "seed", inst.Seed,
					"timeout", e.timeout.String())})
		}
		return Result{Index: inst.Index, Group: inst.GroupKey(), Seed: inst.Seed,
			Err: ErrInstanceTimeout}
	}
}

// run executes one instance against an explicit cache. With an observer
// attached it brackets the run in a "campaign.instance" span carrying
// the wall-time and verdict the deterministic report cannot.
func (e *Executor) run(inst Instance, cache *protocol.SetupCache) Result {
	if !e.rec.Enabled() {
		return runInstance(inst, cache)
	}
	hitsBefore := 0
	if cache != nil {
		hitsBefore, _ = cache.Stats()
	}
	span := e.rec.Begin(obs.Event{Scope: "campaign.instance",
		Inst: inst.Index, Proto: inst.Protocol, Node: -1,
		Attrs: obs.Attrs("group", inst.GroupKey(), "seed", inst.Seed)})
	res := runInstance(inst, cache)
	verdict := "ok"
	if res.Err != "" {
		verdict = "err"
	}
	cacheState := "off"
	if cache != nil {
		if hits, _ := cache.Stats(); hits > hitsBefore {
			cacheState = "hit"
		} else {
			cacheState = "miss"
		}
	}
	span.End(obs.Attrs("verdict", verdict, "agreed", res.Agreed,
		"discovered", res.Discovered, "conformant", res.Conformance.Conformant(),
		"cache", cacheState))
	return res
}

// Local is the in-process sharded Scheduler: workers goroutines, worker
// w owning the instances with Index ≡ w (mod workers). Sharding balances
// the load (expansion order interleaves cheap and expensive
// configurations) without a shared work queue, and since every result
// lands in its instance's slot, the aggregate is identical no matter how
// the shards raced. workers < 1 means one worker per CPU.
//
// Each shard owns an Executor (bounded protocol.SetupCache), so a seed
// sweep pays key generation and the authentication handshake once per
// (scheme, n, t) cell per shard instead of once per instance. The cache
// cannot affect the report: key material is pinned by Instance.KeySeed
// whether or not it is cached.
type Local struct {
	workers int
	opts    []Option
}

// NewLocal builds the in-process scheduler.
func NewLocal(workers int, opts ...Option) *Local {
	return &Local{workers: workers, opts: opts}
}

// Execute implements Scheduler.
func (l *Local) Execute(_ Spec, instances []Instance) ([]Result, error) {
	workers := l.workers
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	results := make([]Result, len(instances))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			exec := NewExecutor(l.opts...)
			for i := shard; i < len(instances); i += workers {
				results[i] = exec.Run(instances[i])
			}
		}(w)
	}
	wg.Wait()
	return results, nil
}

// RunWith expands the spec, executes every instance through the given
// scheduler, and assembles the canonical report. This is the seam the
// distributed scheduler plugs into: the expansion and aggregation ends
// stay in one process (the coordinator), and only the execution middle
// is pluggable — which is exactly what keeps the report a pure function
// of the Spec.
func RunWith(spec Spec, sched Scheduler) (*Report, error) {
	instances, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	results, err := sched.Execute(spec, instances)
	if err != nil {
		return nil, err
	}
	if len(results) != len(instances) {
		return nil, fmt.Errorf("campaign: scheduler returned %d results for %d instances", len(results), len(instances))
	}
	return assemble(spec.withDefaults(), instances, results), nil
}

// Run executes the spec on the in-process sharded scheduler; see Local.
func Run(spec Spec, workers int, opts ...Option) (*Report, error) {
	return RunWith(spec, NewLocal(workers, opts...))
}

// groupCount accumulates one group's tallies during assembly.
type groupCount struct {
	total, errors, agreed, discovered, conformant int
	violations                                    map[string]bool
}

// assemble streams the results, in instance order, through the metrics
// aggregation layer and builds the report.
func assemble(spec Spec, instances []Instance, results []Result) *Report {
	sweep := metrics.NewSweep()
	counts := make(map[string]*groupCount)
	for _, res := range results {
		key := res.Group
		if _, ok := counts[key]; !ok {
			counts[key] = &groupCount{violations: make(map[string]bool)}
		}
		c := counts[key]
		c.total++
		if res.Err != "" {
			c.errors++
			continue
		}
		if res.Agreed {
			c.agreed++
		}
		if res.Discovered {
			c.discovered++
		}
		if res.Conformance.Conformant() {
			c.conformant++
		} else if res.Conformance != nil {
			for _, v := range res.Conformance.Violations {
				c.violations[v] = true
			}
		}
		sweep.Observe(key, "rounds", float64(res.Rounds))
		sweep.Observe(key, "comm_rounds", float64(res.CommRounds))
		sweep.Observe(key, "messages", float64(res.Messages))
		sweep.Observe(key, "bytes", float64(res.Bytes))
		sweep.Observe(key, "signed_messages", float64(res.SignedMessages))
	}

	rep := &Report{
		Schema:    ReportSchema,
		Name:      spec.Name,
		Spec:      spec,
		Instances: len(results),
		Results:   results,
	}
	// Group order: first appearance in instance order, which is the
	// expansion order — deterministic.
	seen := make(map[string]bool)
	for _, inst := range instances {
		key := inst.GroupKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		c := counts[key]
		g := GroupSummary{
			Key:            key,
			Protocol:       inst.Protocol,
			N:              inst.N,
			T:              inst.T,
			Scheme:         inst.Scheme,
			Adversary:      inst.Adversary,
			NetCond:        inst.NetCond,
			Instances:      c.total,
			Errors:         c.errors,
			Conformant:     c.conformant,
			Violations:     sortedKeys(c.violations),
			Rounds:         sweep.Dist(key, "rounds"),
			CommRounds:     sweep.Dist(key, "comm_rounds"),
			Messages:       sweep.Dist(key, "messages"),
			Bytes:          sweep.Dist(key, "bytes"),
			SignedMessages: sweep.Dist(key, "signed_messages"),
		}
		if ok := c.total - c.errors; ok > 0 {
			g.AgreeRate = float64(c.agreed) / float64(ok)
			g.DiscoveryRate = float64(c.discovered) / float64(ok)
		}
		rep.Groups = append(rep.Groups, g)
	}
	return rep
}

// sortedKeys returns a map's keys in ascending order (nil when empty, so
// the JSON field stays omitted).
func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Violations counts the instances whose conformance verdict records at
// least one unexcused predicate failure. A campaign with zero violations
// is a passed property test over its whole grid.
func (r *Report) Violations() int {
	total := 0
	for _, res := range r.Results {
		if res.Err == "" && !res.Conformance.Conformant() {
			total++
		}
	}
	return total
}

// Table renders the per-group aggregates as a human table.
func (r *Report) Table() *metrics.Table {
	title := fmt.Sprintf("Campaign %q — %d instances, %d groups", r.Name, r.Instances, len(r.Groups))
	tbl := metrics.NewTable(title,
		"protocol", "n", "t", "scheme", "adversary", "netcond", "runs", "errs",
		"agree", "discover", "conform", "msgs mean", "msgs p99", "bytes mean", "rounds mean")
	for _, g := range r.Groups {
		scheme := g.Scheme
		if scheme == "" {
			scheme = "-"
		}
		nc := g.NetCond
		if nc == "" {
			nc = "-"
		}
		conform := 0.0
		if ok := g.Instances - g.Errors; ok > 0 {
			conform = float64(g.Conformant) / float64(ok)
		}
		tbl.AddRow(g.Protocol, g.N, g.T, scheme, g.Adversary, nc, g.Instances, g.Errors,
			g.AgreeRate, g.DiscoveryRate, conform, g.Messages.Mean, g.Messages.P99,
			g.Bytes.Mean, g.Rounds.Mean)
	}
	return tbl
}
