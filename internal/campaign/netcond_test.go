package campaign

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sig"
)

func TestSplitNetCondList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"ideal", []string{"ideal"}},
		{"ideal, ideal2", []string{"ideal", "ideal2"}},
		// A single condition's internal commas survive.
		{"latency=fixed-1,loss=0.05", []string{"latency=fixed-1,loss=0.05"}},
		// ";" separates multiple conditions.
		{"latency=fixed-1,loss=0.05; churn=2@2-4", []string{"latency=fixed-1,loss=0.05", "churn=2@2-4"}},
		{"ideal;partition=even-odd@1-3;", []string{"ideal", "partition=even-odd@1-3"}},
	}
	for _, c := range cases {
		if got := SplitNetCondList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitNetCondList(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNetCondAxisExpansion checks the axis joins the grid: named entries
// suffix the group key, the ideal condition (however spelled) leaves
// keys and instances exactly as a netcond-free spec would.
func TestNetCondAxisExpansion(t *testing.T) {
	base := Spec{
		Protocols:   []string{ProtoChain},
		Cases:       []Case{{N: 4, T: 1}},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{AdvNone},
		SeedCount:   2,
	}
	plain, err := Expand(base)
	if err != nil {
		t.Fatalf("Expand(no axis): %v", err)
	}

	withIdeal := base
	withIdeal.NetConds = []string{"ideal"}
	ideal, err := Expand(withIdeal)
	if err != nil {
		t.Fatalf("Expand(ideal axis): %v", err)
	}
	if !reflect.DeepEqual(plain, ideal) {
		t.Error("an explicit ideal axis changed the expansion; pre-axis reports would shift bytes")
	}

	withCond := base
	withCond.NetConds = []string{"ideal", "latency=fixed-1"}
	mixed, err := Expand(withCond)
	if err != nil {
		t.Fatalf("Expand(mixed axis): %v", err)
	}
	if len(mixed) != 2*len(plain) {
		t.Fatalf("mixed axis expanded to %d instances, want %d", len(mixed), 2*len(plain))
	}
	var idealKeys, degradedKeys int
	for _, inst := range mixed {
		switch inst.NetCond {
		case "":
			if strings.Contains(inst.GroupKey(), "lat-fixed") {
				t.Errorf("ideal instance key %q mentions a condition", inst.GroupKey())
			}
			if inst.Net != nil {
				t.Error("ideal instance carries a structured net spec")
			}
			idealKeys++
		case "lat-fixed-1":
			if !strings.HasSuffix(inst.GroupKey(), "/lat-fixed-1") {
				t.Errorf("degraded instance key %q missing netcond suffix", inst.GroupKey())
			}
			if inst.Net == nil || inst.Net.Latency == nil {
				t.Errorf("degraded instance lost its structured spec: %+v", inst.Net)
			}
			degradedKeys++
		default:
			t.Errorf("unexpected instance netcond %q", inst.NetCond)
		}
	}
	if idealKeys != len(plain) || degradedKeys != len(plain) {
		t.Errorf("axis split %d ideal / %d degraded, want %d each", idealKeys, degradedKeys, len(plain))
	}
}

// TestExpandSkipsChurnBeyondFaultBudget: churned nodes count against t,
// so a two-node churn script cannot expand at t=1 while a single churn
// can.
func TestExpandSkipsChurnBeyondFaultBudget(t *testing.T) {
	spec := Spec{
		Protocols:   []string{ProtoChain},
		Cases:       []Case{{N: 4, T: 1}},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{AdvNone},
		NetConds:    []string{"churn=2@2-4"},
		SeedCount:   1,
	}
	if insts, err := Expand(spec); err != nil || len(insts) == 0 {
		t.Fatalf("single churn at t=1 must expand: %v (%d instances)", err, len(insts))
	}
	spec.NetConds = []string{"churn=1@2,churn=2@2"}
	if insts, err := Expand(spec); err == nil && len(insts) != 0 {
		t.Fatalf("two churned nodes at t=1 expanded to %d instances, want skip", len(insts))
	}
	// An adversary already spending the budget leaves no room for churn.
	spec.NetConds = []string{"churn=2@2-4"}
	spec.Adversaries = []string{AdvCrashRelay}
	if insts, err := Expand(spec); err == nil && len(insts) != 0 {
		t.Fatalf("churn on top of a t-sized coalition expanded to %d instances, want skip", len(insts))
	}
}

// TestHealingPartitionRegression is the committed satellite scenario: an
// even-odd partition from round 1 that heals at round 3. Crossing
// messages are held and delivered after the heal — too late for the
// chain accept rule, so chain nodes discover the missing messages
// (discovery is the protocol working as designed), while fdba's BA
// fallback still carries every node to agreement. Because the condition
// degrades links (voiding the paper's N1 premise), every verdict is
// marked NetExcused. The canonical report must be byte-identical at any
// worker count.
func TestHealingPartitionRegression(t *testing.T) {
	spec := Spec{
		Name:        "healing-partition",
		Protocols:   []string{ProtoChain, ProtoFDBA},
		Cases:       []Case{{N: 4, T: 1}},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{AdvNone},
		NetConds:    []string{"partition=even-odd@1-3"},
		SeedBase:    7,
		SeedCount:   3,
	}
	rep1, err := Run(spec, 1)
	if err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	rep4, err := Run(spec, 4)
	if err != nil {
		t.Fatalf("Run(workers=4): %v", err)
	}
	j1, err := rep1.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	j4, err := rep4.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if !bytes.Equal(j1, j4) {
		t.Fatal("healing-partition report differs between 1 and 4 workers")
	}

	if len(rep1.Groups) != 2 {
		t.Fatalf("got %d groups, want 2 (chain, fdba)", len(rep1.Groups))
	}
	for _, g := range rep1.Groups {
		if g.NetCond != "part-even-odd-r1-h3" {
			t.Errorf("group %s: netcond %q, want part-even-odd-r1-h3", g.Key, g.NetCond)
		}
		if g.Errors != 0 {
			t.Errorf("group %s: %d errors", g.Key, g.Errors)
		}
		switch g.Protocol {
		case ProtoChain:
			// Held-then-healed messages arrive after the chain accept
			// deadline: every run must discover the failure.
			if g.DiscoveryRate != 1 {
				t.Errorf("group %s: discovery rate %v, want 1 under a healing partition", g.Key, g.DiscoveryRate)
			}
		case ProtoFDBA:
			// The FD→BA fallback absorbs the disruption: agreement holds.
			if g.AgreeRate != 1 {
				t.Errorf("group %s: agree rate %v, want 1 via the BA fallback", g.Key, g.AgreeRate)
			}
		}
		if g.Conformant != g.Instances {
			t.Errorf("group %s: %d/%d conformant (link degradation must excuse)", g.Key, g.Conformant, g.Instances)
		}
	}
	for _, res := range rep1.Results {
		if res.Conformance == nil || !res.Conformance.NetExcused {
			t.Errorf("instance %s: verdict not marked NetExcused under a partition", res.Group)
		}
	}
}

// TestChurnScoredInFull is the restart-with-recovery acceptance
// scenario: node 2 crashes in round 2 and rejoins in round 4 with
// durable keys recovered. Churn alone leaves every link ideal, so the
// paper's guarantees apply unexcused — the verdicts must be fully
// scored (NetExcused false) AND pass, with worker-count byte-identity.
func TestChurnScoredInFull(t *testing.T) {
	spec := Spec{
		Name:        "churn-recovery",
		Protocols:   []string{ProtoChain, ProtoFDBA},
		Cases:       []Case{{N: 4, T: 1}},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{AdvNone},
		NetConds:    []string{"churn=2@2-4"},
		SeedBase:    7,
		SeedCount:   3,
	}
	rep1, err := Run(spec, 1)
	if err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	rep4, err := Run(spec, 4)
	if err != nil {
		t.Fatalf("Run(workers=4): %v", err)
	}
	j1, _ := rep1.CanonicalJSON()
	j4, _ := rep4.CanonicalJSON()
	if !bytes.Equal(j1, j4) {
		t.Fatal("churn report differs between 1 and 4 workers")
	}
	for _, g := range rep1.Groups {
		if g.NetCond != "churn-2-r2-r4" {
			t.Errorf("group %s: netcond %q, want churn-2-r2-r4", g.Key, g.NetCond)
		}
		if g.Errors != 0 {
			t.Errorf("group %s: %d errors", g.Key, g.Errors)
		}
		if g.Conformant != g.Instances || len(g.Violations) != 0 {
			t.Errorf("group %s: %d/%d conformant, violations %v — churn must be scored in full and pass",
				g.Key, g.Conformant, g.Instances, g.Violations)
		}
	}
	for _, res := range rep1.Results {
		if res.Conformance == nil {
			t.Fatalf("instance %s: no verdict", res.Group)
		}
		if res.Conformance.NetExcused {
			t.Errorf("instance %s: churn-only condition wrongly excused", res.Group)
		}
	}
}
