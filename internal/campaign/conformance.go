package campaign

import (
	"repro/internal/core"
	"repro/internal/model"
)

// Agreement conformance: every completed instance is evaluated against
// the paper's correctness predicates, so a campaign run doubles as a
// property test across the full protocol × scheme × adversary grid. The
// predicates are the weak failure-discovery conditions F1–F3 (paper §4)
// plus the round bound:
//
//   - termination: every correct node decided or discovered a failure,
//     within the protocol's round bound (weak termination, F1);
//   - agreement: absent any discovery, no two correct nodes decided
//     different values (weak agreement, F2);
//   - validity: absent any discovery and with a correct sender, every
//     correct decision equals the sender's value (weak validity, F3).
//
// Expected-failure semantics: the theory does not promise agreement for
// non-authenticated protocols at or below the n ≤ 3t resilience bound —
// those configurations are *allowed* to disagree, so their agreement and
// validity failures are recorded in the verdict but never counted as
// violations. Termination is never excused: weak termination is exactly
// what failure discovery buys at every authentication level.

// Predicate names recorded in Verdict.Violations.
const (
	PredTermination = "termination"
	PredAgreement   = "agreement"
	PredValidity    = "validity"
)

// Verdict is one instance's conformance evaluation.
type Verdict struct {
	// Termination, Agreement, Validity are the raw predicate results.
	Termination bool `json:"termination"`
	Agreement   bool `json:"agreement"`
	Validity    bool `json:"validity"`
	// MayDisagree marks configurations whose disagreement the theory
	// permits (non-authenticated protocols with n ≤ 3t): their agreement
	// and validity failures are expected, not violations.
	MayDisagree bool `json:"may_disagree,omitempty"`
	// Violations lists the predicates that failed and were not excused,
	// in the fixed termination/agreement/validity order.
	Violations []string `json:"violations,omitempty"`
}

// Conformant reports whether the instance met every unexcused predicate.
func (v *Verdict) Conformant() bool { return v != nil && len(v.Violations) == 0 }

// mayDisagree reports whether the theory permits correct nodes to
// disagree without discovery under a fault-injecting adversary:
//
//   - non-authenticated protocols (no signatures to pin a two-faced
//     sender down) at or below the classical n > 3t resilience bound;
//   - the simplified small-range variant under ANY fault mix — it cannot
//     attribute silence, so an adversary that suppresses the non-default
//     chain silently imposes the default on part of the tail
//     (fd.SmallRangeNode's documented limitation, exhibited by
//     TestSmallRangeSplitAttack).
//
// Honest configurations are never excused: a fault-free run that fails to
// agree is a bug regardless of protocol. The authenticated chain and
// vector protocols carry no escape at all — their weak properties hold
// for any f ≤ t, which is the paper's point.
func mayDisagree(protocol string, n, t int, honest bool) bool {
	if honest {
		return false
	}
	switch protocol {
	case ProtoNonAuth, ProtoEIG:
		return n <= 3*t
	case ProtoSmallRange:
		return true
	}
	return false
}

// honestAdversary reports whether the instance injects no faults.
func (inst Instance) honestAdversary() bool {
	strat, err := inst.strategy()
	return err == nil && strat.IsHonest()
}

// newVerdict assembles a Verdict, recording a violation for every failed
// predicate the configuration's theory does not excuse.
func newVerdict(inst Instance, termination, agreement, validity bool) *Verdict {
	v := &Verdict{
		Termination: termination,
		Agreement:   agreement,
		Validity:    validity,
		MayDisagree: mayDisagree(inst.Protocol, inst.N, inst.T, inst.honestAdversary()),
	}
	if !termination {
		v.Violations = append(v.Violations, PredTermination)
	}
	if !agreement && !v.MayDisagree {
		v.Violations = append(v.Violations, PredAgreement)
	}
	if !validity && !v.MayDisagree {
		v.Violations = append(v.Violations, PredValidity)
	}
	return v
}

// evaluateOutcomes derives the verdict for one set of per-node outcomes
// through the core property checkers. outcomes must cover the correct
// nodes only (the run paths exclude overridden and wrapped processes);
// faulty is the instance's resolved corrupt set, sender and initial the
// run's distinguished sender and its proposal, rounds/roundBound the
// engine steps used and the protocol's deadline.
func evaluateOutcomes(inst Instance, outcomes []model.Outcome, faulty model.NodeSet,
	sender model.NodeID, initial []byte, rounds, roundBound int) *Verdict {
	termination := core.CheckF1(outcomes, faulty) == nil && rounds <= roundBound
	agreement := core.CheckF2(outcomes, faulty) == nil
	validity := core.CheckF3(outcomes, faulty, sender, initial) == nil
	return newVerdict(inst, termination, agreement, validity)
}

// mergeVerdicts folds the verdicts of several sub-runs (vector's rotated
// chain instances) into one: every predicate must hold in every sub-run.
func mergeVerdicts(inst Instance, verdicts []*Verdict) *Verdict {
	termination, agreement, validity := true, true, true
	for _, v := range verdicts {
		termination = termination && v.Termination
		agreement = agreement && v.Agreement
		validity = validity && v.Validity
	}
	return newVerdict(inst, termination, agreement, validity)
}
