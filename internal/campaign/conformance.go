package campaign

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/protocol"
)

// Agreement conformance: every completed instance is evaluated against
// the paper's correctness predicates, so a campaign run doubles as a
// property test across the full protocol × scheme × adversary grid. The
// predicates are the weak failure-discovery conditions F1–F3 (paper §4)
// plus the round bound:
//
//   - termination: every correct node decided or discovered a failure,
//     within the protocol's round bound (weak termination, F1);
//   - agreement: absent any discovery, no two correct nodes decided
//     different values (weak agreement, F2);
//   - validity: absent any discovery and with a correct sender, every
//     correct decision equals the sender's value (weak validity, F3).
//
// How each protocol family reads the predicates is not decided here: the
// driver's protocol.VerdictMapper declares it. MayDisagree names the
// configurations whose disagreement the theory permits (their agreement
// and validity failures are recorded but never counted as violations —
// honest runs are never excused), and DiscoveryExempts distinguishes the
// weak-FD reading (a discovery makes F2/F3 vacuous) from the full
// agreement protocols (fdba, sm), whose fallback must align decisions
// even in runs where failures WERE discovered — for them the scorer
// strips discoveries before checking agreement and validity, making the
// check strictly stronger. Termination is never excused: weak
// termination is exactly what failure discovery buys at every
// authentication level.

// Predicate names recorded in Verdict.Violations.
const (
	PredTermination = "termination"
	PredAgreement   = "agreement"
	PredValidity    = "validity"
)

// Verdict is one instance's conformance evaluation.
type Verdict struct {
	// Termination, Agreement, Validity are the raw predicate results.
	Termination bool `json:"termination"`
	Agreement   bool `json:"agreement"`
	Validity    bool `json:"validity"`
	// MayDisagree marks configurations whose disagreement the driver's
	// verdict mapper permits (e.g. non-authenticated protocols with
	// n ≤ 3t): their agreement and validity failures are expected, not
	// violations.
	MayDisagree bool `json:"may_disagree,omitempty"`
	// NetExcused marks instances whose network condition degrades links
	// (latency, loss, reordering, bandwidth, partitions): every paper
	// guarantee — termination included — is premised on the synchronous
	// network assumption N1, so predicate failures under link degradation
	// are recorded but never counted as violations. Churn-only conditions
	// leave N1 intact (a crashed-and-restarted node is just a faulty node)
	// and are scored in full.
	NetExcused bool `json:"net_excused,omitempty"`
	// Violations lists the predicates that failed and were not excused,
	// in the fixed termination/agreement/validity order.
	Violations []string `json:"violations,omitempty"`
}

// Conformant reports whether the instance met every unexcused predicate.
func (v *Verdict) Conformant() bool { return v != nil && len(v.Violations) == 0 }

// newVerdict assembles a Verdict, recording a violation for every failed
// predicate the driver's theory does not excuse. netExcused suppresses
// all violations (the raw predicate results stay visible): no paper
// guarantee survives a broken N1.
func newVerdict(termination, agreement, validity, mayDisagree, netExcused bool) *Verdict {
	v := &Verdict{
		Termination: termination,
		Agreement:   agreement,
		Validity:    validity,
		MayDisagree: mayDisagree,
		NetExcused:  netExcused,
	}
	if netExcused {
		return v
	}
	if !termination {
		v.Violations = append(v.Violations, PredTermination)
	}
	if !agreement && !v.MayDisagree {
		v.Violations = append(v.Violations, PredAgreement)
	}
	if !validity && !v.MayDisagree {
		v.Violations = append(v.Violations, PredValidity)
	}
	return v
}

// mayDisagree resolves the excusal for one instance: honest
// configurations are never excused (a fault-free run that fails to agree
// is a bug regardless of protocol); otherwise the driver's verdict
// mapper decides.
func mayDisagree(verdicts protocol.VerdictMapper, n, t int, honest bool) bool {
	return !honest && verdicts.MayDisagree(n, t)
}

// scoreOutcome derives one instance's verdict from a driver outcome:
// every SubRun is evaluated against F1–F3 plus the round bound, and the
// predicates must hold in all of them (vector's rotated sub-instances).
func scoreOutcome(drv protocol.Driver, pinst protocol.Instance, out protocol.Outcome) *Verdict {
	verdicts := drv.Verdicts()
	// An instance is "honest" for excusal purposes only when neither the
	// strategy nor the network injects faults: churn makes nodes faulty,
	// so a churned run may legitimately hit the driver's MayDisagree
	// regime even under an honest strategy.
	honest := pinst.Strategy.IsHonest() && (pinst.Net == nil || pinst.Net.IsIdeal())
	may := mayDisagree(verdicts, pinst.N, pinst.T, honest)
	netExcused := pinst.Net != nil && pinst.Net.DegradesLinks()
	if len(out.SubRuns) == 0 {
		// No conformance material is itself a violation: a driver that
		// reports nothing to score must not silently pass the -strict
		// gate. Even a degraded network does not excuse it — the excusal
		// covers predicate failures, not missing material.
		v := newVerdict(false, false, false, may, false)
		v.NetExcused = netExcused
		return v
	}
	faulty := pinst.Faulty()
	termination, agreement, validity := true, true, true
	for _, sr := range out.SubRuns {
		t, a, v := evaluateSubRun(sr, faulty, out.Rounds, out.RoundBound, verdicts.DiscoveryExempts())
		termination = termination && t
		agreement = agreement && a
		validity = validity && v
	}
	return newVerdict(termination, agreement, validity, may, netExcused)
}

// evaluateSubRun runs the core property checkers over one sub-run's
// outcomes. outcomes must cover the correct nodes only (the drivers
// exclude overridden and wrapped processes). When discoveries do not
// exempt (full agreement protocols), F2/F3 run over outcomes with the
// discoveries stripped, so agreement and validity are checked
// unconditionally.
func evaluateSubRun(sr protocol.SubRun, faulty model.NodeSet, rounds, roundBound int,
	discoveryExempts bool) (termination, agreement, validity bool) {
	outcomes := sr.Outcomes
	termination = core.CheckF1(outcomes, faulty) == nil && rounds <= roundBound
	if !discoveryExempts {
		outcomes = withoutDiscoveries(outcomes)
	}
	agreement = core.CheckF2(outcomes, faulty) == nil
	validity = core.CheckF3(outcomes, faulty, sr.Sender, sr.Initial) == nil
	return termination, agreement, validity
}

// withoutDiscoveries returns the outcomes with Discovery cleared, leaving
// the originals untouched. A no-op (no copy) when nothing is set.
func withoutDiscoveries(outcomes []model.Outcome) []model.Outcome {
	stripped := outcomes
	copied := false
	for i, o := range outcomes {
		if o.Discovery == nil {
			continue
		}
		if !copied {
			stripped = append([]model.Outcome(nil), outcomes...)
			copied = true
		}
		stripped[i].Discovery = nil
	}
	return stripped
}

// evaluateOutcomes derives the verdict for one set of per-node outcomes,
// resolving the instance's driver for the verdict mapping. It is the
// single-sub-run entry point kept for tests and hand-built evaluations;
// campaign runs score through scoreOutcome.
func evaluateOutcomes(inst Instance, outcomes []model.Outcome, faulty model.NodeSet,
	sender model.NodeID, initial []byte, rounds, roundBound int) *Verdict {
	drv, err := protocol.Lookup(inst.Protocol)
	if err != nil {
		// Unknown protocols cannot excuse anything; score strictly.
		t := core.CheckF1(outcomes, faulty) == nil && rounds <= roundBound
		a := core.CheckF2(outcomes, faulty) == nil
		v := core.CheckF3(outcomes, faulty, sender, initial) == nil
		return newVerdict(t, a, v, false, false)
	}
	verdicts := drv.Verdicts()
	t, a, v := evaluateSubRun(protocol.SubRun{Sender: sender, Initial: initial, Outcomes: outcomes},
		faulty, rounds, roundBound, verdicts.DiscoveryExempts())
	return newVerdict(t, a, v, mayDisagree(verdicts, inst.N, inst.T, inst.honestAdversary()), false)
}

// honestAdversary reports whether the instance injects no faults.
func (inst Instance) honestAdversary() bool {
	strat, err := inst.strategy()
	return err == nil && strat.IsHonest()
}
