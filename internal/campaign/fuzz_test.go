package campaign

import (
	"encoding/json"
	"testing"

	"repro/internal/adversary"
)

// FuzzParseAdversary covers the campaign-level resolution of one
// Adversaries entry: legacy aliases and the compact strategy syntax.
// Malformed input must error, never panic; accepted strategies must be
// expandable.
func FuzzParseAdversary(f *testing.F) {
	for _, seed := range []string{
		AdvNone, AdvCrashSender, AdvCrashRelay, AdvEquivocate,
		"coalition:size=2,behavior=equivocate,partition=even-odd",
		"relay:behavior=delay,delay=2",
		"nodes=1+2:behavior=drop,victims=0",
		"gremlin", "none:extra", "coalition:size=99999999999999999999,behavior=crash",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		strat, err := ParseAdversary(input)
		if err != nil {
			return
		}
		// Accepted adversaries must expand cleanly in a spec.
		spec := Spec{
			Protocols:   []string{ProtoChain},
			Cases:       []Case{{N: 6, T: 2}},
			Adversaries: []string{input},
			SeedCount:   1,
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseAdversary accepted %q but Spec.Validate rejects it: %v", input, err)
		}
		_ = strat.CanonicalName()
	})
}

// FuzzParseNetCond covers the network-condition axis entry point used
// by -netcond: malformed compact syntax (truncated fields, overlong
// names, NaN probabilities) must error, never panic, and any accepted
// condition must survive spec validation and expansion.
func FuzzParseNetCond(f *testing.F) {
	for _, seed := range []string{
		"", "ideal", NetCondIdeal,
		"latency=fixed-1", "latency=uniform-0-2", "latency=lognormal-0.5-0.3-6",
		"loss=0.05,reorder=0.1,bandwidth=4",
		"partition=even-odd@1-3", "partition=halves@2",
		"churn=2@2-4,churn=0@1",
		"name=lab,loss=0.2",
		"latency=fixed-",        // truncated
		"latency=uniform-0-",    // truncated
		"partition=even-odd@",   // truncated
		"churn=2@",              // truncated
		"loss=NaN", "loss=+Inf", // non-finite probabilities
		"loss=1e309",                        // overflow
		"bandwidth=99999999999999999",       // overlong number
		"name=" + string(make([]byte, 200)), // overlong name
		"latency=fixed-1,latency=fixed-2",   // duplicate key
		"gremlin=1", "=", ",,,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseNetCond(input)
		if err != nil {
			return
		}
		if spec.CanonicalName() == "" {
			t.Fatalf("ParseNetCond(%q) accepted with empty canonical name", input)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseNetCond accepted %q but Validate rejects it: %v", input, err)
		}
		// Accepted conditions must be usable as a campaign axis entry.
		cs := Spec{
			Protocols: []string{ProtoChain},
			Cases:     []Case{{N: 4, T: 1}},
			NetConds:  []string{input},
			SeedCount: 1,
		}
		if err := cs.Validate(); err != nil {
			t.Fatalf("ParseNetCond accepted %q but Spec.Validate rejects it: %v", input, err)
		}
		// Expansion must not panic; a zero-instance result (every case
		// skipped, e.g. churn wider than the fault budget) is a clean error.
		_, _ = Expand(cs)
	})
}

// FuzzAdversarySpecJSON covers the structured AdversarySpecs path: any
// JSON that unmarshals into a strategy must either fail validation with
// an error or expand without panicking.
func FuzzAdversarySpecJSON(f *testing.F) {
	for _, seed := range []string{
		`{"coalition":2,"behaviors":[{"behavior":"equivocate","partition":"even-odd"}]}`,
		`{"nodes":[1],"behaviors":[{"behavior":"delay","delay":2}]}`,
		`{"nodes":[0],"behaviors":[{"behavior":"crash","round":-1}]}`,
		`{"coalition":-5}`,
		`{"behaviors":[{"behavior":"warp"}]}`,
		`{}`,
		`{"nodes":[1,1],"behaviors":[{"behavior":"crash"}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var strat adversary.Strategy
		if err := json.Unmarshal(data, &strat); err != nil {
			return
		}
		spec := Spec{
			Protocols:      []string{ProtoChain},
			Cases:          []Case{{N: 6, T: 2}},
			AdversarySpecs: []adversary.Strategy{strat},
			SeedCount:      1,
		}
		if err := spec.Validate(); err != nil {
			return // invalid strategies must be caught here, not panic later
		}
		if _, err := Expand(spec); err != nil {
			// A valid spec may still expand to zero instances (skip
			// rules); that surfaces as an error, which is fine.
			return
		}
	})
}
