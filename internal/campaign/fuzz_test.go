package campaign

import (
	"encoding/json"
	"testing"

	"repro/internal/adversary"
)

// FuzzParseAdversary covers the campaign-level resolution of one
// Adversaries entry: legacy aliases and the compact strategy syntax.
// Malformed input must error, never panic; accepted strategies must be
// expandable.
func FuzzParseAdversary(f *testing.F) {
	for _, seed := range []string{
		AdvNone, AdvCrashSender, AdvCrashRelay, AdvEquivocate,
		"coalition:size=2,behavior=equivocate,partition=even-odd",
		"relay:behavior=delay,delay=2",
		"nodes=1+2:behavior=drop,victims=0",
		"gremlin", "none:extra", "coalition:size=99999999999999999999,behavior=crash",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		strat, err := ParseAdversary(input)
		if err != nil {
			return
		}
		// Accepted adversaries must expand cleanly in a spec.
		spec := Spec{
			Protocols:   []string{ProtoChain},
			Cases:       []Case{{N: 6, T: 2}},
			Adversaries: []string{input},
			SeedCount:   1,
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseAdversary accepted %q but Spec.Validate rejects it: %v", input, err)
		}
		_ = strat.CanonicalName()
	})
}

// FuzzAdversarySpecJSON covers the structured AdversarySpecs path: any
// JSON that unmarshals into a strategy must either fail validation with
// an error or expand without panicking.
func FuzzAdversarySpecJSON(f *testing.F) {
	for _, seed := range []string{
		`{"coalition":2,"behaviors":[{"behavior":"equivocate","partition":"even-odd"}]}`,
		`{"nodes":[1],"behaviors":[{"behavior":"delay","delay":2}]}`,
		`{"nodes":[0],"behaviors":[{"behavior":"crash","round":-1}]}`,
		`{"coalition":-5}`,
		`{"behaviors":[{"behavior":"warp"}]}`,
		`{}`,
		`{"nodes":[1,1],"behaviors":[{"behavior":"crash"}]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var strat adversary.Strategy
		if err := json.Unmarshal(data, &strat); err != nil {
			return
		}
		spec := Spec{
			Protocols:      []string{ProtoChain},
			Cases:          []Case{{N: 6, T: 2}},
			AdversarySpecs: []adversary.Strategy{strat},
			SeedCount:      1,
		}
		if err := spec.Validate(); err != nil {
			return // invalid strategies must be caught here, not panic later
		}
		if _, err := Expand(spec); err != nil {
			// A valid spec may still expand to zero instances (skip
			// rules); that surfaces as an error, which is fine.
			return
		}
	})
}
