package campaign

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sig"
)

// TestReportObserverInvariance is the observability half of the campaign
// determinism contract: attaching a structured-event recorder must not
// change a single report byte. Tracing is a pure reader — wall-clock
// timing, cache outcomes, and worker placement live only in the trace,
// never in the report.
func TestReportObserverInvariance(t *testing.T) {
	spec := Spec{
		Name:        "observer-differential",
		Protocols:   []string{ProtoChain, ProtoVector, ProtoSM},
		Sizes:       []int{4, 5},
		Schemes:     []string{sig.SchemeToy},
		Adversaries: []string{AdvNone, AdvCrashRelay},
		SeedBase:    31,
		SeedCount:   3,
	}
	plain, err := Run(spec, 2)
	if err != nil {
		t.Fatalf("Run(no observer): %v", err)
	}
	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(sink)
	observed, err := Run(spec, 2, WithObserver(rec))
	if err != nil {
		t.Fatalf("Run(observer): %v", err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	jPlain, err := plain.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	jObserved, err := observed.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if !bytes.Equal(jPlain, jObserved) {
		t.Fatal("report bytes differ with an observer attached; tracing is no longer a pure reader")
	}

	// The trace must be real, not vacuous: one begin/end span pair per
	// instance, every verdict ok, and at least one setup-cache hit (the
	// seed sweep revisits each cell).
	spans := sink.Scoped("campaign.instance")
	if got, want := len(spans), 2*observed.Instances; got != want {
		t.Fatalf("trace has %d campaign.instance events, want %d (begin+end per instance)", got, want)
	}
	hits := 0
	for _, e := range spans {
		if e.Kind != obs.KindEnd {
			continue
		}
		if !strings.Contains(e.Attrs, "verdict=ok") {
			t.Errorf("instance %d end attrs %q missing verdict=ok", e.Inst, e.Attrs)
		}
		if e.Dur <= 0 {
			t.Errorf("instance %d span has non-positive duration %d", e.Inst, e.Dur)
		}
		if strings.Contains(e.Attrs, "cache=hit") {
			hits++
		}
	}
	if hits == 0 {
		t.Error("no instance recorded a setup-cache hit; cache attribution is broken or the sweep never warmed")
	}
}

// TestExecutorObserverDisabledIsDefault pins the disabled path: an
// executor without an observer runs instances through a nil recorder
// (one nil check, no events), and a nil recorder passed explicitly
// behaves the same.
func TestExecutorObserverDisabledIsDefault(t *testing.T) {
	if NewExecutor().rec.Enabled() {
		t.Fatal("default executor has an enabled recorder")
	}
	if NewExecutor(WithObserver(nil)).rec.Enabled() {
		t.Fatal("WithObserver(nil) enabled recording")
	}
}
