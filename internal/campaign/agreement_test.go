package campaign

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sig"
)

// Conformance coverage for the two full agreement protocols (fdba, sm)
// under the composable adversary grid. Their verdict mapping is the
// STRICT reading of F1–F3: a discovery never exempts a run from the
// agreement and validity predicates (the FDBA fallback's whole job is to
// align decisions after a discovery), and no (n, t) configuration is
// excused. Empirically neither protocol has an analogue of smallrange's
// silence-as-default gap under honest key distribution: the sweeps below
// pass with ZERO excusals — which is exactly why their drivers register
// protocol.VerdictsAgreement and not a MayDisagree escape. (The known
// gap for both protocols is the paper's §6 LOCAL-authentication G3
// attack, which needs a corrupt key-distribution phase; campaign runs
// always distribute keys honestly, so it cannot arise here.)

// agreementGridSpec sweeps fdba and sm across coalition, equivocate, and
// delay stacks (plus drops, duplicate floods, and tampering) — the
// behavior families of the conformance harness.
func agreementGridSpec() Spec {
	return Spec{
		Name:      "agreement-grid",
		Protocols: []string{ProtoFDBA, ProtoSM},
		Sizes:     []int{4, 7},
		Schemes:   []string{sig.SchemeToy},
		Adversaries: []string{
			AdvNone,
			AdvCrashSender,
			AdvCrashRelay,
			AdvEquivocate,
			"coalition:size=1,behavior=delay,delay=2",
			"coalition:size=2,behavior=equivocate,partition=even-odd",
			"relay:behavior=drop,victims=2+3",
			"nodes=1:behavior=duplicate,victims=0,behavior=tamper",
		},
		SeedBase:  31,
		SeedCount: 4,
	}
}

// TestAgreementProtocolConformanceGrid runs the fdba/sm adversary sweep
// and requires full conformance: every verdict present, zero unexcused
// violations, and — stronger — zero excusals at all (MayDisagree never
// set) plus an agree rate of 1 in EVERY group: full agreement protocols
// agree under any tolerated fault mix, not just absent discoveries.
func TestAgreementProtocolConformanceGrid(t *testing.T) {
	rep, err := Run(agreementGridSpec(), 4)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := rep.Violations(); got != 0 {
		for _, g := range rep.Groups {
			if len(g.Violations) > 0 {
				t.Errorf("group %s: violations %v (%d/%d conformant)",
					g.Key, g.Violations, g.Conformant, g.Instances)
			}
		}
		t.Fatalf("agreement grid recorded %d violations", got)
	}
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Errorf("instance %d errored: %s", res.Index, res.Err)
			continue
		}
		v := res.Conformance
		if v == nil {
			t.Errorf("instance %d has no verdict", res.Index)
			continue
		}
		if v.MayDisagree {
			t.Errorf("instance %d (%s) was excused; agreement protocols carry no excusals", res.Index, res.Group)
		}
		if !res.Agreed {
			t.Errorf("instance %d (%s) did not agree", res.Index, res.Group)
		}
	}
	// The grid must include the behavior families the satellite names.
	for _, fragment := range []string{"coalition-2.equivocate-even-odd", "coalition-1.delay-2", "equivocate"} {
		found := false
		for _, g := range rep.Groups {
			if strings.Contains(g.Key, fragment) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("agreement grid has no %q groups", fragment)
		}
	}
	// FDBA's fallback must actually have been exercised: crash-relay
	// kills the chain, someone discovers, and the discovery rate shows it.
	exercised := false
	for _, g := range rep.Groups {
		if g.Protocol == ProtoFDBA && g.Adversary == AdvCrashRelay && g.DiscoveryRate > 0 {
			exercised = true
		}
	}
	if !exercised {
		t.Error("no fdba crash-relay group discovered; the fallback phase went untested")
	}
}

// TestAgreementVerdictIsStrict pins the DiscoveryExempts=false reading
// end to end: for an fdba instance, a synthetic split decision WITH a
// discovery present must still be a violation (the weak-FD reading would
// have excused it), while the same outcomes under the chain protocol are
// excused as vacuous.
func TestAgreementVerdictIsStrict(t *testing.T) {
	outcomes := []model.Outcome{
		{Node: 1, Decided: true, Value: []byte("v"),
			Discovery: &model.Discovery{Node: 1, Round: 2}},
		{Node: 3, Decided: true, Value: []byte("x")},
	}
	faulty := model.NewNodeSet(2)

	fdbaInst := Instance{Protocol: ProtoFDBA, N: 4, T: 1, Adversary: AdvCrashRelay}
	v := evaluateOutcomes(fdbaInst, outcomes, faulty, 0, []byte("v"), 3, 8)
	if v.Conformant() {
		t.Errorf("fdba split decision under discovery was not a violation: %+v", v)
	}
	if v.Agreement || v.Validity {
		t.Errorf("fdba verdict did not check agreement/validity strictly: %+v", v)
	}

	chainInst := Instance{Protocol: ProtoChain, N: 4, T: 1, Adversary: AdvCrashRelay}
	v = evaluateOutcomes(chainInst, outcomes, faulty, 0, []byte("v"), 3, 3)
	if !v.Conformant() {
		t.Errorf("chain split decision under discovery must be vacuously conformant (weak F2): %+v", v)
	}
}

// TestRunInstanceAgreementProtocols spot-checks single fdba/sm instances
// across the fault families, including the bespoke equivocating senders.
func TestRunInstanceAgreementProtocols(t *testing.T) {
	for _, tc := range []struct {
		name          string
		inst          Instance
		wantDiscovery bool
	}{
		{"fdba honest",
			Instance{Protocol: ProtoFDBA, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1}, false},
		{"fdba crash-relay falls back and agrees",
			Instance{Protocol: ProtoFDBA, N: 6, T: 2, Scheme: sig.SchemeToy, Adversary: AdvCrashRelay, Seed: 1}, true},
		{"fdba equivocating sender",
			Instance{Protocol: ProtoFDBA, N: 6, T: 2, Scheme: sig.SchemeToy, Adversary: AdvEquivocate, Seed: 1}, true},
		{"sm honest",
			Instance{Protocol: ProtoSM, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvNone, Seed: 1}, false},
		{"sm crash-sender agrees on default",
			Instance{Protocol: ProtoSM, N: 5, T: 1, Scheme: sig.SchemeToy, Adversary: AdvCrashSender, Seed: 1}, false},
		{"sm equivocating sender agrees on default",
			Instance{Protocol: ProtoSM, N: 5, T: 2, Scheme: sig.SchemeToy, Adversary: AdvEquivocate, Seed: 1}, false},
	} {
		res := RunInstance(tc.inst)
		if res.Err != "" {
			t.Errorf("%s: error: %s", tc.name, res.Err)
			continue
		}
		if !res.Agreed {
			t.Errorf("%s: did not agree: %+v", tc.name, res)
		}
		if res.Discovered != tc.wantDiscovery {
			t.Errorf("%s: discovered=%v, want %v", tc.name, res.Discovered, tc.wantDiscovery)
		}
		if !res.Conformance.Conformant() {
			t.Errorf("%s: verdict %+v", tc.name, res.Conformance)
		}
		if res.Conformance.MayDisagree {
			t.Errorf("%s: agreement protocol was excused", tc.name)
		}
	}
}
