// Package protocol is the extension API every agreement protocol in the
// repository plugs into. A Driver packages one protocol's run path —
// setup preparation, fault wiring, execution, and the raw material the
// conformance predicates score — behind a uniform interface, and the
// package-level registry makes the set of drivers discoverable by name.
//
// The campaign engine (internal/campaign) is the primary consumer: it
// expands declarative sweeps over the registry and runs every instance
// through its driver, so adding a protocol to the full grid — sweeps,
// composable adversaries, setup-cache amortization, worker-sharded
// determinism, F1–F3 conformance gating — means registering one Driver
// in one file, not editing campaign internals. The registry is also the
// seam future execution backends (distributed TCP campaign workers) plug
// into.
//
// The seven built-in drivers are the paper's protocol zoo: the
// authenticated chain failure-discovery protocol (Fig. 2), the
// non-authenticated baseline, the binary small-range variant (§5), the
// beyond-paper vector composition, the OM(t) oral-messages baseline, and
// the two full agreement protocols — FDBA (the §4 failure-discovery-to-
// Byzantine-agreement extension) and SM(t) (signed messages).
package protocol

import (
	"repro/internal/adversary"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netcond"
)

// Instance is one fully specified, independently runnable protocol run:
// a system size and fault bound, a signature scheme, a resolved adversary
// strategy, and the two seed domains. Instances are self-contained —
// drivers derive all key material, RNG streams, and fault placements from
// the fields here, sharing nothing with any other instance.
type Instance struct {
	// N and T are the system size and fault bound.
	N, T int
	// Scheme is the signature-scheme registry name ("" for drivers whose
	// Capabilities report UsesSignatures == false).
	Scheme string
	// Value, when non-empty, overrides the driver's canonical sender
	// proposal — the agreement service threads caller-supplied values
	// through here. Empty keeps each driver's built-in proposal, so every
	// pre-existing campaign expansion is byte-identical. Custom values
	// compose with the honest path; the bespoke equivocating senders keep
	// their canonical two faces.
	Value []byte
	// Strategy is the resolved composable adversary (the zero value runs
	// every node honestly).
	Strategy adversary.Strategy
	// Seed drives every per-run random choice inside the instance.
	Seed int64
	// KeySeed pins the instance's key material independently of Seed; see
	// core.WithKeySeed. Two instances sharing (Scheme, N, KeySeed) share
	// keys, which is what makes cached setup byte-equivalent to fresh.
	KeySeed int64
	// Net, when non-nil, is the network condition the instance runs
	// under: link degradation compiles into a netcond.Model layered under
	// the engine, and churn entries wrap the named honest nodes with
	// scripted crash/restart. nil is the ideal network.
	Net *netcond.Spec
}

// Config returns the instance's model configuration.
func (inst Instance) Config() model.Config { return model.Config{N: inst.N, T: inst.T} }

// Faulty resolves the instance's faulty set — a pure function of the
// strategy, network condition, system size, and run seed. Churned nodes
// count as faulty: the paper's model has no honest-but-silent nodes, so
// a crash/restart node spends its downtime inside the fault budget t.
func (inst Instance) Faulty() model.NodeSet {
	set := inst.Strategy.CorruptSet(inst.N, inst.Seed)
	if inst.Net != nil {
		for _, node := range inst.Net.ChurnNodes() {
			if model.NodeID(node).Valid(inst.N) {
				set.Add(model.NodeID(node))
			}
		}
	}
	return set
}

// Capabilities declares what a driver supports, so generic consumers
// (sweep expansion, the setup cache, adversary wiring) never need
// protocol-specific branches. Every field is a declaration, not a hint:
// expansion skips combinations a driver cannot express, and the runner
// only offers a setup cache to drivers that declare eligibility.
type Capabilities struct {
	// UsesSignatures reports whether the protocol consumes a signature
	// scheme. Unsigned drivers run once per configuration with Scheme ""
	// instead of once per scheme (their runs would be identical).
	UsesSignatures bool
	// CacheableSetup reports whether Prepare may reuse per-worker cached
	// setup (established clusters, key-distribution material). Drivers
	// whose setup is free (nonauth, eig) declare false, making the skip
	// explicit rather than an implicit branch in the runner.
	CacheableSetup bool
	// SupportsEquivocate reports whether the driver can express a
	// two-faced sender: a distinguished sender with a value range wider
	// than the protocol's silence encoding. smallrange (one bit) and
	// vector (all nodes send) cannot.
	SupportsEquivocate bool
	// RequiresSupermajority restricts the (n, t) axis to n > 3t — the
	// classical resilience bound OM(t) needs even to run.
	RequiresSupermajority bool
	// MaxN bounds the system size (0 = unbounded). eig's byte-packed
	// tree keys cap it at 256.
	MaxN int
}

// Supports reports whether the (n, t, strategy) combination is
// expressible under these capabilities. The rules depend only on the
// configuration, never on a seed — a coalition's membership varies per
// seed, so coalition rules are stated over the size, not the members:
//
//   - every driver needs the model's basic sanity (2 ≤ n, 0 ≤ t < n) and
//     its declared axis bounds (RequiresSupermajority, MaxN);
//   - any adversary needs t ≥ 1 (a fault outside the bound proves
//     nothing) and a corrupt set of at most t nodes, all with valid IDs;
//   - a strategy that can corrupt a non-sender node (any coalition, or a
//     fixed set naming one) needs n ≥ 3 so P_1 is never the only other
//     node;
//   - equivocate needs SupportsEquivocate.
func (c Capabilities) Supports(n, t int, strat adversary.Strategy) bool {
	if err := (model.Config{N: n, T: t}).Validate(); err != nil {
		return false
	}
	if c.RequiresSupermajority && n <= 3*t {
		return false
	}
	if c.MaxN > 0 && n > c.MaxN {
		return false
	}
	if strat.IsHonest() {
		return true
	}
	if t < 1 {
		return false
	}
	if strat.CorruptSize() > t || strat.MaxFixedNode() >= n {
		return false
	}
	if strat.CorruptsNonSender() && n < 3 {
		return false
	}
	if strat.HasBehavior(adversary.BehaviorEquivocate) && !c.SupportsEquivocate {
		return false
	}
	return true
}

// SupportsNet reports whether the network condition is expressible on
// top of an already supported (n, t, strategy) combination. Like
// Supports, the rules are seed-independent: churned nodes are extra
// faulty nodes, so they need t ≥ 1, valid IDs, no overlap with the
// strategy's fixed corrupt set (the same node cannot be both), and the
// combined worst-case faulty count — strategy corruption plus churn —
// must stay within t (a seed-driven coalition can only shrink the
// union, never grow it). Link conditions (latency, loss, partitions)
// constrain nothing: they degrade the network, not the processes.
func (c Capabilities) SupportsNet(n, t int, strat adversary.Strategy, net *netcond.Spec) bool {
	if net == nil || len(net.Churn) == 0 {
		return true
	}
	if t < 1 {
		return false
	}
	fixed := make(map[int]bool, len(strat.Nodes))
	for _, id := range strat.Nodes {
		fixed[id] = true
	}
	churned := net.ChurnNodes()
	for _, node := range churned {
		if !model.NodeID(node).Valid(n) || fixed[node] {
			return false
		}
	}
	return strat.CorruptSize()+len(churned) <= t
}

// SubRun is the raw material one conformance evaluation consumes: the
// per-node outcomes of one logical protocol execution with one
// distinguished sender. Most drivers return a single SubRun; vector
// returns one per rotated sender, and the scorer requires every SubRun
// to meet the predicates.
type SubRun struct {
	// Sender is the distinguished sender of this sub-run.
	Sender model.NodeID
	// Initial is the sender's proposal, the reference value for validity.
	Initial []byte
	// Outcomes are the correct nodes' outcomes (drivers exclude overridden
	// and wrapped processes, exactly as the F-condition definitions do).
	Outcomes []model.Outcome
}

// Outcome is the uniform result of one driver run. It carries only what
// every protocol can report — traffic totals, the driver's own agreement
// and discovery summary, and the conformance sub-runs — so the campaign
// layer aggregates and scores any driver without knowing which one ran.
type Outcome struct {
	// Rounds is the number of engine steps the protocol phase ran.
	Rounds int
	// RoundBound is the protocol's deadline: a run exceeding it fails the
	// termination predicate even if everyone decided.
	RoundBound int
	// Snapshot is the protocol-phase traffic (setup traffic, where a
	// protocol needs it, is not counted — the paper amortizes it).
	Snapshot metrics.Snapshot
	// Agreed reports the driver's own agreement summary: every correct
	// node decided and all correct decisions matched (for vector: over
	// every sub-run with a correct sender).
	Agreed bool
	// Discovered reports whether at least one correct node discovered a
	// failure.
	Discovered bool
	// SubRuns are the conformance inputs; see SubRun.
	SubRuns []SubRun
}

// VerdictMapper maps a driver's runs onto the paper's conformance
// predicates. The weak failure-discovery conditions F1–F3 read
// differently per protocol family — what a discovery excuses and where
// the theory permits disagreement — and the mapper is where a driver
// declares its reading, so the scorer in internal/campaign stays free of
// protocol-specific branches.
type VerdictMapper interface {
	// MayDisagree reports whether the theory permits correct nodes to
	// disagree without discovery at (n, t) under a fault-injecting
	// adversary. Honest runs are never excused; the scorer handles that
	// generically.
	MayDisagree(n, t int) bool
	// DiscoveryExempts reports whether a correct node's failure discovery
	// exempts the run from the agreement and validity predicates — the
	// weak-FD reading of F2/F3. Full agreement protocols return false:
	// their fallback must align every correct decision even in runs where
	// failures were discovered, so discoveries never weaken the check.
	DiscoveryExempts() bool
}

// VerdictProfile is a value-type VerdictMapper covering the repository's
// protocol families; drivers embed one of the canned profiles below.
type VerdictProfile struct {
	disagreeAlways          bool
	disagreeBelowResilience bool
	strict                  bool
}

// MayDisagree implements VerdictMapper.
func (p VerdictProfile) MayDisagree(n, t int) bool {
	return p.disagreeAlways || (p.disagreeBelowResilience && n <= 3*t)
}

// DiscoveryExempts implements VerdictMapper.
func (p VerdictProfile) DiscoveryExempts() bool { return !p.strict }

var (
	// VerdictsAuthenticatedFD is the profile of the authenticated weak-FD
	// protocols (chain, vector): their weak properties hold for any
	// f ≤ t — no escape at all, which is the paper's point.
	VerdictsAuthenticatedFD = VerdictProfile{}
	// VerdictsUnauthenticatedFD is the profile of the non-authenticated
	// protocols (nonauth, eig): at or below the classical n ≤ 3t
	// resilience bound the theory does not promise agreement, so those
	// configurations are allowed to disagree.
	VerdictsUnauthenticatedFD = VerdictProfile{disagreeBelowResilience: true}
	// VerdictsSilenceDefault is the profile of the simplified small-range
	// variant: it cannot attribute silence, so an adversary that
	// suppresses the non-default chain silently imposes the default on
	// part of the tail under ANY fault mix (fd.SmallRangeNode's
	// documented limitation).
	VerdictsSilenceDefault = VerdictProfile{disagreeAlways: true}
	// VerdictsAgreement is the strict profile of the full agreement
	// protocols (fdba, sm): disagreement is never excused AND a discovery
	// does not exempt a run — agreement must hold even when the fallback
	// was triggered.
	VerdictsAgreement = VerdictProfile{strict: true}
)

// Setup is the opaque prepared state Prepare hands to Run: an
// established cluster, key-distribution material, or nil for drivers
// with no setup phase.
type Setup any

// Driver is the uniform run path of one agreement protocol. Drivers are
// stateless and safe for concurrent use: any per-run state lives in the
// Setup value and the processes built inside Run.
type Driver interface {
	// Name is the registry key — the protocol name campaign specs use.
	Name() string
	// Capabilities declares the driver's axes; see Capabilities.
	Capabilities() Capabilities
	// Verdicts is the driver's conformance reading; see VerdictMapper.
	Verdicts() VerdictMapper
	// Prepare resolves the instance's setup, reusing the per-worker cache
	// when non-nil (callers pass nil unless Capabilities().CacheableSetup).
	// The returned Setup must make Run byte-equivalent to a fresh build —
	// key material pinned by Instance.KeySeed is what guarantees it.
	Prepare(inst Instance, cache *SetupCache) (Setup, error)
	// Run executes the instance over the prepared setup.
	Run(inst Instance, setup Setup) (Outcome, error)
}

// RunInstance prepares and runs one instance through its driver,
// consulting the cache only when the driver declares cacheable setup —
// so a driver's declared skip (eig, nonauth) is enforced here, not by
// convention.
func RunInstance(d Driver, inst Instance, cache *SetupCache) (Outcome, error) {
	if !d.Capabilities().CacheableSetup {
		cache = nil
	}
	setup, err := d.Prepare(inst, cache)
	if err != nil {
		return Outcome{}, err
	}
	return d.Run(inst, setup)
}
