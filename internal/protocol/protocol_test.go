package protocol

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sig"
)

// TestRegistryCompleteness pins the built-in driver set: the seven
// protocol names, each resolvable, each reporting its own name.
func TestRegistryCompleteness(t *testing.T) {
	want := []string{NameChain, NameEIG, NameFDBA, NameNonAuth, NameSM, NameSmallRange, NameVector}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		drv, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if drv.Name() != name {
			t.Errorf("driver registered under %q reports Name %q", name, drv.Name())
		}
		if drv.Verdicts() == nil {
			t.Errorf("driver %q has no verdict mapper", name)
		}
	}
	if got, want := len(Drivers()), len(want); got != want {
		t.Errorf("Drivers() returned %d drivers, want %d", got, want)
	}
}

// TestLookupErrorEnumeratesRegistry: a typo'd name must tell the user
// what IS registered instead of failing opaquely.
func TestLookupErrorEnumeratesRegistry(t *testing.T) {
	_, err := Lookup("quantum")
	if err == nil {
		t.Fatal("Lookup accepted an unregistered name")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("lookup error %q does not enumerate %q", err, name)
		}
	}
}

// TestDeclaredCapabilities pins each built-in driver's declared axes —
// in particular the explicit setup-cache skips: eig has no setup at all
// and nonauth's is free, so both declare CacheableSetup false rather
// than relying on an implicit branch in the runner.
func TestDeclaredCapabilities(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Capabilities
	}{
		{NameChain, Capabilities{UsesSignatures: true, CacheableSetup: true, SupportsEquivocate: true}},
		{NameNonAuth, Capabilities{SupportsEquivocate: true}},
		{NameSmallRange, Capabilities{UsesSignatures: true, CacheableSetup: true}},
		{NameVector, Capabilities{UsesSignatures: true, CacheableSetup: true}},
		{NameEIG, Capabilities{SupportsEquivocate: true, RequiresSupermajority: true, MaxN: 256}},
		{NameFDBA, Capabilities{UsesSignatures: true, CacheableSetup: true, SupportsEquivocate: true}},
		{NameSM, Capabilities{UsesSignatures: true, CacheableSetup: true, SupportsEquivocate: true}},
	} {
		drv, err := Lookup(tc.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", tc.name, err)
		}
		if got := drv.Capabilities(); got != tc.want {
			t.Errorf("%s: Capabilities = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestUncacheableDriversNeverTouchTheCache: RunInstance must enforce a
// driver's declared skip — an eig or nonauth run offered a cache leaves
// it untouched.
func TestUncacheableDriversNeverTouchTheCache(t *testing.T) {
	for _, tc := range []struct {
		name string
		inst Instance
	}{
		{NameEIG, Instance{N: 4, T: 1, Seed: 1}},
		{NameNonAuth, Instance{N: 4, T: 1, Seed: 1}},
	} {
		drv, err := Lookup(tc.name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", tc.name, err)
		}
		if drv.Capabilities().CacheableSetup {
			t.Fatalf("%s declares cacheable setup; this test pins the opposite", tc.name)
		}
		cache := NewSetupCache(4)
		out, err := RunInstance(drv, tc.inst, cache)
		if err != nil {
			t.Fatalf("%s: RunInstance: %v", tc.name, err)
		}
		if cache.Len() != 0 {
			t.Errorf("%s: declared-uncacheable driver populated the cache (%d entries)", tc.name, cache.Len())
		}
		if !out.Agreed {
			t.Errorf("%s: honest run did not agree", tc.name)
		}
	}
}

// TestCacheableDriversShareClusterCells: the cluster-backed drivers key
// their setup by kind, not name, so a grid revisiting one
// (scheme, n, t, keySeed) cell pays a single handshake across chain,
// smallrange, fdba, and sm.
func TestCacheableDriversShareClusterCells(t *testing.T) {
	cache := NewSetupCache(4)
	inst := Instance{N: 4, T: 1, Scheme: sig.SchemeToy, Seed: 3, KeySeed: 9}
	for _, name := range []string{NameChain, NameSmallRange, NameFDBA, NameSM} {
		drv, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if _, err := RunInstance(drv, inst, cache); err != nil {
			t.Fatalf("%s: RunInstance: %v", name, err)
		}
	}
	if cache.Len() != 1 {
		t.Errorf("four cluster drivers filled %d cache cells, want 1 shared cell", cache.Len())
	}
}

// TestSetupCacheBounded pins the eviction mechanics directly.
func TestSetupCacheBounded(t *testing.T) {
	sc := NewSetupCache(2)
	mk := func(n int) SetupKey {
		return SetupKey{Kind: SetupKindCluster, Scheme: "toy", N: n, T: 1, KeySeed: 1}
	}
	sc.Put(mk(4), 4)
	sc.Put(mk(5), 5)
	sc.Put(mk(6), 6) // evicts n=4
	if sc.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap is 2", sc.Len())
	}
	if _, ok := sc.Get(mk(4)); ok {
		t.Error("oldest entry was not evicted")
	}
	for _, n := range []int{5, 6} {
		if _, ok := sc.Get(mk(n)); !ok {
			t.Errorf("entry n=%d missing after eviction", n)
		}
	}
	// Re-putting an existing key replaces in place: no duplicate in the
	// eviction order, and the NEXT eviction still removes the true oldest.
	sc.Put(mk(5), 55)
	if got, _ := sc.Get(mk(5)); got != 55 {
		t.Errorf("re-put did not replace value: %v", got)
	}
	if len(sc.order) != 2 {
		t.Fatalf("re-put duplicated the eviction order: %v", sc.order)
	}
	sc.Put(mk(7), 7) // must evict n=5 (oldest), keep n=6 and n=7
	if _, ok := sc.Get(mk(5)); ok {
		t.Error("eviction after re-put removed the wrong entry")
	}
	if _, ok := sc.Get(mk(6)); !ok {
		t.Error("live entry n=6 was evicted")
	}
}

// TestCapabilitiesSupports drives the generic expansion rules.
func TestCapabilitiesSupports(t *testing.T) {
	equivocate := adversary.Strategy{
		Nodes:     []int{0},
		Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorEquivocate}},
	}
	crashRelay := adversary.Strategy{
		Nodes:     []int{1},
		Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorCrash}},
	}
	honest := adversary.Strategy{}
	eig := Capabilities{RequiresSupermajority: true, MaxN: 256, SupportsEquivocate: true}
	plain := Capabilities{SupportsEquivocate: true}
	noEquiv := Capabilities{}
	for _, tc := range []struct {
		name  string
		caps  Capabilities
		n, t  int
		strat adversary.Strategy
		want  bool
	}{
		{"honest ok", plain, 4, 1, honest, true},
		{"invalid config", plain, 1, 0, honest, false},
		{"supermajority holds", eig, 7, 2, honest, true},
		{"supermajority violated", eig, 6, 2, honest, false},
		{"maxN exceeded", eig, 300, 1, honest, false},
		{"adversary needs t>=1", plain, 4, 0, crashRelay, false},
		{"corrupt size beyond t", plain, 6, 1, adversary.Strategy{Coalition: 2,
			Behaviors: []adversary.BehaviorSpec{{Name: adversary.BehaviorCrash}}}, false},
		{"non-sender corruption needs n>=3", plain, 2, 1, crashRelay, false},
		{"equivocate supported", plain, 5, 1, equivocate, true},
		{"equivocate unsupported", noEquiv, 5, 1, equivocate, false},
	} {
		if got := tc.caps.Supports(tc.n, tc.t, tc.strat); got != tc.want {
			t.Errorf("%s: Supports(n=%d, t=%d) = %v, want %v", tc.name, tc.n, tc.t, got, tc.want)
		}
	}
}

// TestVerdictProfiles pins the canned conformance readings.
func TestVerdictProfiles(t *testing.T) {
	if VerdictsAuthenticatedFD.MayDisagree(4, 2) || !VerdictsAuthenticatedFD.DiscoveryExempts() {
		t.Error("authenticated FD profile wrong")
	}
	if !VerdictsUnauthenticatedFD.MayDisagree(6, 2) || VerdictsUnauthenticatedFD.MayDisagree(7, 2) {
		t.Error("unauthenticated FD resilience bound wrong")
	}
	if !VerdictsSilenceDefault.MayDisagree(100, 1) {
		t.Error("silence-default profile must always excuse disagreement")
	}
	if VerdictsAgreement.MayDisagree(4, 2) || VerdictsAgreement.DiscoveryExempts() {
		t.Error("agreement profile must be strict: no excusals, discoveries never exempt")
	}
}

// TestRegisterRejectsDuplicates: double registration is a programming
// error the process must not limp past.
func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(eigDriver{})
}
