package protocol

import (
	"bytes"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sim"
)

// eigDriver runs the OM(t) oral-messages baseline. It has no setup phase
// at all — nodes hold no keys — so its Capabilities declare
// CacheableSetup false explicitly: the setup-cache skip is a published
// property of the driver, asserted by tests, not an implicit branch in
// the runner.
type eigDriver struct{}

func (eigDriver) Name() string { return NameEIG }

func (eigDriver) Capabilities() Capabilities {
	return Capabilities{
		SupportsEquivocate:    true,
		RequiresSupermajority: true, // OM(t) needs n > 3t even to run
		MaxN:                  256,  // byte-packed tree path keys
	}
}

func (eigDriver) Verdicts() VerdictMapper { return VerdictsUnauthenticatedFD }

// Prepare implements Driver: OM(t) has nothing to prepare.
func (eigDriver) Prepare(Instance, *SetupCache) (Setup, error) { return nil, nil }

// equivocateOral is the sender-side equivocation filter for eig: in
// round 1 the faulty sender reports senderValue to faceOne and
// altSenderValue to everyone else.
func equivocateOral(faceOne model.NodeSet) adversary.Filter {
	alt := ba.MarshalOralEntries([]ba.OralEntry{{Path: []model.NodeID{ba.Sender}, Value: altSenderValue}})
	return func(round int, out []model.Message) []model.Message {
		if round != 1 {
			return out
		}
		for i := range out {
			if out[i].Kind == model.KindOral && !faceOne.Contains(out[i].To) {
				out[i].Payload = alt
			}
		}
		return out
	}
}

func (eigDriver) Run(inst Instance, _ Setup) (Outcome, error) {
	cfg := inst.Config()
	value := senderValue
	if len(inst.Value) > 0 {
		value = inst.Value
	}
	strat := inst.Strategy
	corruptSet := strat.CorruptSet(inst.N, inst.Seed)
	churn := churnByNode(inst, corruptSet)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*ba.EIGNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		corrupt := corruptSet.Contains(id)
		if corrupt && pureCrash(strat.Behaviors) {
			procs[i] = sim.Silent{}
			continue
		}
		var opts []ba.EIGOption
		if id == ba.Sender {
			opts = append(opts, ba.WithEIGValue(value))
		}
		node, err := ba.NewEIGNode(cfg, id, opts...)
		if err != nil {
			return Outcome{}, err
		}
		if ch, ok := churn[id]; ok {
			// Churned honest node: scripted crash/restart; its decision
			// does not count (nodes[i] stays nil — it is faulty).
			rebuild := func() (sim.Process, error) { return ba.NewEIGNode(cfg, id, opts...) }
			procs[i] = netcond.NewChurner(node, ch, rebuild, nil)
			continue
		}
		if corrupt {
			// A corrupt node runs OM(t) correctly under its behavior stack;
			// its own decision does not count (nodes[i] stays nil). The
			// sender's equivocation uses the oral-entry rewrite — a proper
			// second face, not a tampered payload.
			var stack []adversary.Behavior
			if id == ba.Sender && strat.HasBehavior(adversary.BehaviorEquivocate) {
				faceOne, err := adversary.PartitionFaceOne(equivocatePartition(strat), inst.N)
				if err != nil {
					return Outcome{}, err
				}
				stack = append(stack, equivocateOral(faceOne))
				rest, err := adversary.BuildBehaviors(withoutEquivocate(strat.Behaviors), inst.N)
				if err != nil {
					return Outcome{}, err
				}
				stack = append(stack, rest...)
			} else {
				stack, err = adversary.BuildBehaviors(strat.Behaviors, inst.N)
				if err != nil {
					return Outcome{}, err
				}
			}
			procs[i] = adversary.WrapBehaviors(node, stack...)
			continue
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	maxRounds := ba.EIGEngineRounds(inst.T)
	simOpts := []sim.Option{sim.WithCounters(counters)}
	if net := netModel(inst); net != nil {
		simOpts = append(simOpts, sim.WithNetwork(net))
	}
	simRes, err := sim.RunInstance(cfg, procs, maxRounds, simOpts...)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Rounds:     simRes.Rounds,
		RoundBound: maxRounds,
		Snapshot:   counters.Snapshot(),
	}

	agreed := true
	var first []byte
	haveFirst := false
	outcomes := make([]model.Outcome, 0, inst.N)
	for i, node := range nodes {
		if node == nil {
			continue
		}
		d := node.Decision()
		outcomes = append(outcomes, model.Outcome{
			Node:    model.NodeID(i),
			Decided: d.Value != nil,
			Value:   d.Value,
		})
		if d.Value == nil {
			agreed = false
			continue
		}
		if !haveFirst {
			first, haveFirst = d.Value, true
		} else if !bytes.Equal(d.Value, first) {
			agreed = false
		}
	}
	out.Agreed = agreed && haveFirst
	out.SubRuns = []SubRun{{Sender: ba.Sender, Initial: value, Outcomes: outcomes}}
	return out, nil
}

func init() { Register(eigDriver{}) }
