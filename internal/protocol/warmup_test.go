package protocol

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/sig"
	"repro/internal/sim"
)

// TestSharedSignersMatchFreshGeneration pins the byte-identity premise:
// the global cache's signers derive from exactly the key-material
// streams the fresh path uses, so their public predicates are equal.
func TestSharedSignersMatchFreshGeneration(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	const n, keySeed = 5, int64(77)
	shared, err := sharedSigners(sig.SchemeEd25519, n, keySeed)
	if err != nil {
		t.Fatalf("sharedSigners: %v", err)
	}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	for i := 0; i < n; i++ {
		want, err := scheme.Generate(sim.SeededReader(sim.KeyMaterialSeed(keySeed, i)))
		if err != nil {
			t.Fatalf("Generate(%d): %v", i, err)
		}
		if !bytes.Equal(shared[i].Predicate().Bytes(), want.Predicate().Bytes()) {
			t.Fatalf("node %d: shared signer's predicate differs from fresh generation", i)
		}
	}
}

// TestSharedSignersSingleFlight pins that every caller of one cell gets
// the same signer values (sharing is the whole point) and that
// concurrent cold-cell requests resolve to one generation.
func TestSharedSignersSingleFlight(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	const goroutines = 8
	results := make([][]sig.Signer, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			s, err := sharedSigners(sig.SchemeToy, 4, 9)
			if err != nil {
				t.Errorf("sharedSigners: %v", err)
				return
			}
			results[g] = s
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d node %d: got a distinct signer instance; the cache must hand out shared values", g, i)
			}
		}
	}
}

// TestSharedSignersUnknownScheme pins that errors are returned, not
// cached: a bogus scheme fails every time, and a valid request after a
// failure still succeeds.
func TestSharedSignersUnknownScheme(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	if _, err := sharedSigners("no-such-scheme", 4, 1); err == nil {
		t.Fatal("sharedSigners accepted an unknown scheme")
	}
	if _, err := sharedSigners(sig.SchemeToy, 4, 1); err != nil {
		t.Fatalf("valid request after a failed one: %v", err)
	}
}
