package protocol

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/sig"
	"repro/internal/sim"
)

// TestSharedSignersMatchFreshGeneration pins the byte-identity premise:
// the global cache's signers derive from exactly the key-material
// streams the fresh path uses, so their public predicates are equal.
func TestSharedSignersMatchFreshGeneration(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	const n, keySeed = 5, int64(77)
	shared, err := sharedSigners(sig.SchemeEd25519, n, keySeed)
	if err != nil {
		t.Fatalf("sharedSigners: %v", err)
	}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	for i := 0; i < n; i++ {
		want, err := scheme.Generate(sim.SeededReader(sim.KeyMaterialSeed(keySeed, i)))
		if err != nil {
			t.Fatalf("Generate(%d): %v", i, err)
		}
		if !bytes.Equal(shared[i].Predicate().Bytes(), want.Predicate().Bytes()) {
			t.Fatalf("node %d: shared signer's predicate differs from fresh generation", i)
		}
	}
}

// TestSharedSignersSingleFlight pins that every caller of one cell gets
// the same signer values (sharing is the whole point) and that
// concurrent cold-cell requests resolve to one generation.
func TestSharedSignersSingleFlight(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	const goroutines = 8
	results := make([][]sig.Signer, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			s, err := sharedSigners(sig.SchemeToy, 4, 9)
			if err != nil {
				t.Errorf("sharedSigners: %v", err)
				return
			}
			results[g] = s
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d node %d: got a distinct signer instance; the cache must hand out shared values", g, i)
			}
		}
	}
}

// TestSharedSignersConcurrentMixedCells hammers several distinct
// (scheme, n, keySeed) cells from many goroutines at once — the
// agreement service's access pattern, where executor shards serve mixed
// tenant workloads against the same global cache. Every returned set
// must match fresh generation for its own cell: a single-flight slot
// must never leak one cell's signers to a neighbor's waiters.
func TestSharedSignersConcurrentMixedCells(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	type cell struct {
		scheme  string
		n       int
		keySeed int64
	}
	cells := []cell{
		{sig.SchemeToy, 4, 1}, {sig.SchemeToy, 4, 2}, {sig.SchemeToy, 7, 1},
		{sig.SchemeToy, 7, 3}, {sig.SchemeEd25519, 4, 1}, {sig.SchemeEd25519, 5, 2},
	}
	const rounds = 16
	var wg sync.WaitGroup
	for _, c := range cells {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(c cell) {
				defer wg.Done()
				got, err := sharedSigners(c.scheme, c.n, c.keySeed)
				if err != nil {
					t.Errorf("cell %+v: %v", c, err)
					return
				}
				if len(got) != c.n {
					t.Errorf("cell %+v: %d signers", c, len(got))
					return
				}
				scheme, err := sig.ByName(c.scheme)
				if err != nil {
					t.Errorf("ByName(%s): %v", c.scheme, err)
					return
				}
				for i := range got {
					want, err := scheme.Generate(sim.SeededReader(sim.KeyMaterialSeed(c.keySeed, i)))
					if err != nil {
						t.Errorf("cell %+v node %d: %v", c, i, err)
						return
					}
					if !bytes.Equal(got[i].Predicate().Bytes(), want.Predicate().Bytes()) {
						t.Errorf("cell %+v node %d: cross-cell signer leak", c, i)
						return
					}
				}
			}(c)
		}
	}
	wg.Wait()
}

// TestSharedSignersEvictionRaceProbe drives more cells than
// signerCacheCap through the cache concurrently, so FIFO eviction runs
// while other goroutines generate, hit, and re-miss evicted cells. The
// assertions are that every returned set is the right size for its
// cell and the cache never exceeds its bound; the race detector checks
// the rest (this is the -race probe the CI race step runs).
func TestSharedSignersEvictionRaceProbe(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	const cells = signerCacheCap + 8
	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for c := 0; c < cells; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				n := 3 + c%3
				got, err := sharedSigners(sig.SchemeToy, n, int64(c))
				if err != nil {
					t.Errorf("cell %d: %v", c, err)
					return
				}
				if len(got) != n {
					t.Errorf("cell %d: %d signers, want %d", c, len(got), n)
				}
			}(c)
		}
	}
	wg.Wait()
	signerCache.mu.Lock()
	entries, order := len(signerCache.entries), len(signerCache.order)
	signerCache.mu.Unlock()
	if entries > signerCacheCap || order > signerCacheCap {
		t.Fatalf("cache exceeded its bound: %d entries, %d order", entries, order)
	}
	if entries != order {
		t.Fatalf("entries (%d) and FIFO order (%d) diverged", entries, order)
	}
}

// TestSharedSignersUnknownScheme pins that errors are returned, not
// cached: a bogus scheme fails every time, and a valid request after a
// failure still succeeds.
func TestSharedSignersUnknownScheme(t *testing.T) {
	defer ResetSharedSigners()
	ResetSharedSigners()
	if _, err := sharedSigners("no-such-scheme", 4, 1); err == nil {
		t.Fatal("sharedSigners accepted an unknown scheme")
	}
	if _, err := sharedSigners(sig.SchemeToy, 4, 1); err != nil {
		t.Fatalf("valid request after a failed one: %v", err)
	}
}
