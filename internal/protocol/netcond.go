package protocol

import (
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sim"
)

// Shared netcond wiring for drivers that build their own engines (eig,
// vector); the cluster-backed drivers route the same spec through
// core.WithNetwork/WithChurn instead.

// netModel compiles the instance's link degradation into a fresh
// per-run network model, or nil for an ideal network. Each call returns
// an independent model so concurrent instances never share RNG streams.
func netModel(inst Instance) sim.Network {
	if inst.Net == nil || !inst.Net.DegradesLinks() {
		return nil
	}
	return netcond.NewModel(*inst.Net, inst.N, inst.Seed)
}

// churnByNode maps the instance's churn specs onto the nodes the
// strategy left honest — a node the adversary already corrupted has no
// correct process to crash and restart.
func churnByNode(inst Instance, corrupt model.NodeSet) map[model.NodeID]netcond.ChurnSpec {
	if inst.Net == nil || len(inst.Net.Churn) == 0 {
		return nil
	}
	out := make(map[model.NodeID]netcond.ChurnSpec, len(inst.Net.Churn))
	for _, ch := range inst.Net.Churn {
		if id := model.NodeID(ch.Node); id.Valid(inst.N) && !corrupt.Contains(id) {
			out[id] = ch
		}
	}
	return out
}
