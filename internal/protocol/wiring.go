package protocol

import (
	"bytes"

	"repro/internal/adversary"
	"repro/internal/model"
	"repro/internal/sim"
)

// Shared adversary wiring: helpers every driver uses to turn a resolved
// strategy into per-node processes. The rules here are deliberately
// protocol-agnostic; anything protocol-specific (a bespoke two-faced
// sender) is supplied by the driver itself.

// senderValue is the sender's proposal in multi-byte-value protocols. It
// matches the value package experiments always sent, so campaign-ported
// tables (E2, E3) keep byte-for-byte continuity with the seed tree's
// wire traffic.
var senderValue = []byte("value")

// altSenderValue is the equivocating sender's second face.
var altSenderValue = []byte("forged")

// pureCrash reports a behavior stack equivalent to a from-the-start
// crash. Such nodes run as sim.Silent — exactly what the legacy mixes
// did, and cheaper than stepping a wrapped node whose every send is
// dropped anyway.
func pureCrash(specs []adversary.BehaviorSpec) bool {
	return len(specs) == 1 && specs[0].Name == adversary.BehaviorCrash && specs[0].Round <= 1
}

// equivocatePartition returns the partition of the stack's first
// equivocate behavior.
func equivocatePartition(strat adversary.Strategy) string {
	for _, b := range strat.Behaviors {
		if b.Name == adversary.BehaviorEquivocate {
			return b.Partition
		}
	}
	return ""
}

// withoutEquivocate filters equivocate out of a behavior stack; used when
// a bespoke two-faced process replaces the generic filter.
func withoutEquivocate(specs []adversary.BehaviorSpec) []adversary.BehaviorSpec {
	var out []adversary.BehaviorSpec
	for _, b := range specs {
		if b.Name != adversary.BehaviorEquivocate {
			out = append(out, b)
		}
	}
	return out
}

// wrapRemaining applies the non-equivocate remainder of a behavior stack
// to a bespoke adversarial process.
func wrapRemaining(p sim.Process, specs []adversary.BehaviorSpec, n int) (sim.Process, error) {
	rest := withoutEquivocate(specs)
	if len(rest) == 0 {
		return p, nil
	}
	behaviors, err := adversary.BuildBehaviors(rest, n)
	if err != nil {
		return nil, err
	}
	return adversary.WrapBehaviors(p, behaviors...), nil
}

// outcomesAgree reports whether every outcome decided on one identical
// value. Outcomes belong to correct nodes only (overridden processes
// report none).
func outcomesAgree(outcomes []model.Outcome) bool {
	if len(outcomes) == 0 {
		return false
	}
	var first []byte
	for i, o := range outcomes {
		if !o.Decided {
			return false
		}
		if i == 0 {
			first = o.Value
			continue
		}
		if !bytes.Equal(o.Value, first) {
			return false
		}
	}
	return true
}
