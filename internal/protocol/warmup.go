package protocol

import (
	"sync"
	"sync/atomic"

	"repro/internal/sig"
	"repro/internal/sim"
)

// Shared key-material warmup. The per-worker setup cache amortizes key
// generation across the seeds of one cell — but every worker that visits
// the cell still pays its own keygen, even though key material is a pure
// function of (scheme, n, keySeed) and identical across all of them. The
// process-global signer cache here generates each cell's signers exactly
// once (single-flight: concurrent workers hitting a cold cell block on
// one leader instead of generating in parallel) and hands the same
// Signer values to every worker.
//
// Sharing Signer instances across workers is sound because every scheme
// in the registry is stateless per Sign call: ed25519 and toy compute
// over immutable key bytes, hmac builds a fresh MAC per call, and
// rsa/ecdsa sign over stdlib private keys that are safe for concurrent
// use. Byte-identity is preserved because the cache draws each node's
// key from the same sim.KeyMaterialSeed stream the fresh path uses — the
// keys are equal, so every signature and report byte is too (pinned by
// the shared-vs-fresh differential test).
//
// The warmup is off by default and enabled explicitly
// (SetSharedKeyWarmup, fdcampaign -sharedkeys): unlike the per-worker
// cache it makes runs share heap across goroutines, which is the kind of
// coupling a measurement tool should opt into, not inherit.

// sharedKeyWarmup gates the global signer cache.
var sharedKeyWarmup atomic.Bool

// SetSharedKeyWarmup enables or disables the process-global shared
// signer cache consulted by EstablishedCluster and the vector-material
// builder. Reports are byte-identical either way.
func SetSharedKeyWarmup(on bool) { sharedKeyWarmup.Store(on) }

// SharedKeyWarmup reports whether the shared signer cache is enabled.
func SharedKeyWarmup() bool { return sharedKeyWarmup.Load() }

// signerCacheCap bounds the cache. A campaign grid has one entry per
// (scheme, n, keySeed) cell — a handful — so the bound only matters to
// pathological spec sequences; FIFO eviction keeps the common cells.
const signerCacheCap = 32

type signerCacheKey struct {
	scheme  string
	n       int
	keySeed int64
}

// signerInflight is the single-flight slot for one cell being generated:
// waiters block on done and adopt the leader's outcome.
type signerInflight struct {
	done    chan struct{}
	signers []sig.Signer
	err     error
}

var signerCache struct {
	mu       sync.Mutex
	entries  map[signerCacheKey][]sig.Signer
	order    []signerCacheKey
	inflight map[signerCacheKey]*signerInflight
}

// ResetSharedSigners drops every cached signer set. Tests use it to force
// cold cells; production code never needs it (key material is immutable
// per cell).
func ResetSharedSigners() {
	signerCache.mu.Lock()
	defer signerCache.mu.Unlock()
	signerCache.entries = nil
	signerCache.order = nil
}

// instSchemeName resolves an instance's scheme for the cache key: an
// empty scheme means the core default, ed25519.
func instSchemeName(inst Instance) string {
	if inst.Scheme == "" {
		return sig.SchemeEd25519
	}
	return inst.Scheme
}

// sharedSigners returns the n signers of a (scheme, n, keySeed) cell,
// generating them on the first request. Generation runs outside the
// cache lock; concurrent requests for the same cold cell wait for the
// one generating goroutine. Errors are returned to everyone waiting but
// never cached — a later request retries.
func sharedSigners(scheme string, n int, keySeed int64) ([]sig.Signer, error) {
	key := signerCacheKey{scheme: scheme, n: n, keySeed: keySeed}
	signerCache.mu.Lock()
	if signers, ok := signerCache.entries[key]; ok {
		signerCache.mu.Unlock()
		return signers, nil
	}
	if fl, ok := signerCache.inflight[key]; ok {
		signerCache.mu.Unlock()
		<-fl.done
		return fl.signers, fl.err
	}
	fl := &signerInflight{done: make(chan struct{})}
	if signerCache.inflight == nil {
		signerCache.inflight = make(map[signerCacheKey]*signerInflight)
	}
	signerCache.inflight[key] = fl
	signerCache.mu.Unlock()

	fl.signers, fl.err = generateSigners(scheme, n, keySeed)

	signerCache.mu.Lock()
	delete(signerCache.inflight, key)
	if fl.err == nil {
		if signerCache.entries == nil {
			signerCache.entries = make(map[signerCacheKey][]sig.Signer, signerCacheCap)
		}
		if len(signerCache.entries) >= signerCacheCap {
			oldest := signerCache.order[0]
			signerCache.order = signerCache.order[1:]
			delete(signerCache.entries, oldest)
		}
		signerCache.entries[key] = fl.signers
		signerCache.order = append(signerCache.order, key)
	}
	signerCache.mu.Unlock()
	close(fl.done)
	return fl.signers, fl.err
}

// generateSigners derives a cell's signers from the same per-node
// key-material streams the fresh path uses — the equality that makes the
// shared and fresh paths byte-identical.
func generateSigners(scheme string, n int, keySeed int64) ([]sig.Signer, error) {
	s, err := sig.ByName(scheme)
	if err != nil {
		return nil, err
	}
	signers := make([]sig.Signer, n)
	for i := range signers {
		signers[i], err = s.Generate(sim.SeededReader(sim.KeyMaterialSeed(keySeed, i)))
		if err != nil {
			return nil, err
		}
	}
	return signers, nil
}
