package protocol

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// The amortized-setup cache. RSA/ECDSA/Ed25519 key generation plus the
// 3n(n−1)-message handshake dwarf the n−1-message protocol being
// measured, and a seed sweep regenerates both per instance even though
// key material is a pure function of (scheme, n, keySeed) — constant
// across the sweep. Each campaign worker owns one bounded cache of
// established setups; an instance whose cell is cached skips keygen and
// the handshake entirely and just Resets the cluster onto its run seed.
// The cache is deliberately single-owner (no locks, no cross-shard
// coupling), and because keys are pinned by Instance.KeySeed, a cached
// run derives byte-identical wire traffic to a fresh one — the
// cached-vs-fresh differential test and CI step keep that true forever.
//
// Cache cells are keyed by Kind, not by driver name: every driver whose
// setup is an established cluster (chain, smallrange, fdba, sm) shares
// the SetupKindCluster cell of its (scheme, n, t, keySeed) coordinates,
// so a multi-protocol grid pays one handshake per cell, not one per
// driver.

// Setup kinds cached per (scheme, n, t, keySeed) cell.
const (
	// SetupKindCluster is an established core.Cluster.
	SetupKindCluster = "cluster"
	// SetupKindVectorMaterial is the keydist node set backing vector runs.
	SetupKindVectorMaterial = "vector-material"
)

// SetupKey identifies one cached setup cell. T rides along even though
// key material does not depend on it, so a cached cluster's Config
// always matches the instance exactly; Established keeps clusters that
// ran the authentication handshake in separate cells from ones that did
// not, so drivers with different establish choices can never hand each
// other the wrong cluster state.
type SetupKey struct {
	Kind        string
	Scheme      string
	N, T        int
	KeySeed     int64
	Established bool
}

// DefaultSetupCacheCap bounds each cache. A sweep iterates the grid cell
// by cell (seeds innermost), so even 1 entry captures the amortization
// within a cell; a few more keep multi-protocol grids that revisit cells
// warm. Bounded per PERF.md ground rules.
const DefaultSetupCacheCap = 8

// SetupCache is one worker's bounded FIFO setup store. Not safe for
// concurrent use — every worker owns its own.
type SetupCache struct {
	cap     int
	entries map[SetupKey]any
	order   []SetupKey // insertion order; index 0 evicts first
	hits    int
	misses  int
}

// NewSetupCache returns an empty cache bounded to capacity entries
// (DefaultSetupCacheCap if capacity < 1).
func NewSetupCache(capacity int) *SetupCache {
	if capacity < 1 {
		capacity = DefaultSetupCacheCap
	}
	return &SetupCache{cap: capacity, entries: make(map[SetupKey]any, capacity)}
}

// Get returns the cached value under k, if any, counting the lookup as
// a hit or miss for the Stats amortization readout.
func (sc *SetupCache) Get(k SetupKey) (any, bool) {
	v, ok := sc.entries[k]
	if ok {
		sc.hits++
	} else {
		sc.misses++
	}
	return v, ok
}

// Put stores v under k, evicting the oldest entry at capacity. Storing
// an existing key replaces its value without duplicating it in the
// eviction order.
func (sc *SetupCache) Put(k SetupKey, v any) {
	if _, ok := sc.entries[k]; ok {
		sc.entries[k] = v
		return
	}
	if len(sc.entries) >= sc.cap {
		oldest := sc.order[0]
		sc.order = sc.order[1:]
		delete(sc.entries, oldest)
	}
	sc.entries[k] = v
	sc.order = append(sc.order, k)
}

// Len returns the number of cached cells (for tests).
func (sc *SetupCache) Len() int { return len(sc.entries) }

// Stats returns the lifetime hit/miss lookup counts — the measured form
// of the amortization the cache exists for. hits+misses is the number
// of Get calls; a warm sweep shows hits ≈ instances − cells.
func (sc *SetupCache) Stats() (hits, misses int) { return sc.hits, sc.misses }

// Rekey starts a fresh key epoch for every cached setup: each cluster
// cell is core.Rekey'd onto its own cell's KeySeed — regenerating
// identical deterministic key material, so runs served before and after
// a rekey stay byte-identical — and re-established when its cell was
// established. Non-cluster setups (vector material embeds key material
// immutably) are dropped and rebuilt on next use. The agreement
// service's warm-cluster pool calls this on its rekey interval: the
// in-memory secrets are discarded and rederived rather than living for
// the daemon's whole lifetime. Returns the number of clusters rekeyed.
func (sc *SetupCache) Rekey() (int, error) {
	order := append([]SetupKey(nil), sc.order...)
	keep := sc.order[:0]
	rekeyed := 0
	var firstErr error
	for _, k := range order {
		c, ok := sc.entries[k].(*core.Cluster)
		if !ok {
			delete(sc.entries, k)
			continue
		}
		c.Rekey(k.KeySeed)
		if k.Established {
			if _, err := c.EstablishAuthentication(); err != nil {
				// A cluster that failed to re-establish must not be handed
				// out; drop the cell so the next run rebuilds from scratch.
				delete(sc.entries, k)
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
		}
		rekeyed++
		keep = append(keep, k)
	}
	sc.order = keep
	return rekeyed, firstErr
}

// ClusterSetup returns the instance's cluster, established when
// establish is set. With a cache, the (scheme, n, t, keySeed) cell is
// reused when warm — built and cached on a miss — and the cluster is
// Reset onto the instance's run seed either way; clusters are handed out
// serially within one worker, never shared across workers. Without a
// cache the cluster is built fresh from the instance's seeds directly.
// Both paths derive identical wire bytes, because key material is a pure
// function of (Scheme, N, KeySeed) either way.
func ClusterSetup(inst Instance, cache *SetupCache, establish bool) (*core.Cluster, error) {
	if cache == nil {
		return EstablishedCluster(inst, establish)
	}
	k := SetupKey{Kind: SetupKindCluster, Scheme: inst.Scheme, N: inst.N, T: inst.T,
		KeySeed: inst.KeySeed, Established: establish}
	if v, ok := cache.Get(k); ok {
		c := v.(*core.Cluster)
		c.Reset(inst.Seed)
		return c, nil
	}
	c, err := EstablishedCluster(inst, establish)
	if err != nil {
		return nil, err
	}
	cache.Put(k, c)
	c.Reset(inst.Seed)
	return c, nil
}

// EstablishedCluster builds the instance's cluster with split entropy —
// run randomness from Seed, key material pinned to KeySeed — and, when
// establish is set, runs the authentication handshake. This is the
// single construction site shared by the fresh execution path and the
// cache-miss path, which is what makes the two structurally
// interchangeable (the differential tests then prove it byte for byte).
func EstablishedCluster(inst Instance, establish bool) (*core.Cluster, error) {
	opts := []core.Option{core.WithSeed(inst.Seed), core.WithKeySeed(inst.KeySeed)}
	if inst.Scheme != "" {
		opts = append(opts, core.WithScheme(inst.Scheme))
	}
	if SharedKeyWarmup() {
		signers, err := sharedSigners(instSchemeName(inst), inst.N, inst.KeySeed)
		if err != nil {
			return nil, err
		}
		opts = append(opts, core.WithPregeneratedSigners(signers))
	}
	c, err := core.New(inst.Config(), opts...)
	if err != nil {
		return nil, err
	}
	if establish {
		if _, err := c.EstablishAuthentication(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// VectorMaterial returns the established keydist node set (signers and
// directories) for a vector instance's cell, reusing the cache when warm
// and building on a miss. The material is handshake output and is
// read-only during vector runs, so any number of sequential runs may
// share it.
func VectorMaterial(inst Instance, cache *SetupCache) ([]*keydist.Node, error) {
	if cache == nil {
		return newVectorMaterial(inst)
	}
	k := SetupKey{Kind: SetupKindVectorMaterial, Scheme: inst.Scheme, N: inst.N, T: inst.T,
		KeySeed: inst.KeySeed, Established: true}
	if v, ok := cache.Get(k); ok {
		return v.([]*keydist.Node), nil
	}
	nodes, err := newVectorMaterial(inst)
	if err != nil {
		return nil, err
	}
	cache.Put(k, nodes)
	return nodes, nil
}

// newVectorMaterial generates a vector instance's key material and runs
// the honest key-distribution phase (the paper's once-amortized setup),
// returning the established nodes.
func newVectorMaterial(inst Instance) ([]*keydist.Node, error) {
	cfg := inst.Config()
	scheme, err := sig.ByName(inst.Scheme)
	if err != nil {
		return nil, err
	}
	var shared []sig.Signer
	if SharedKeyWarmup() {
		if shared, err = sharedSigners(instSchemeName(inst), inst.N, inst.KeySeed); err != nil {
			return nil, err
		}
	}
	kdNodes := make([]*keydist.Node, inst.N)
	kdProcs := make([]sim.Process, inst.N)
	for i := 0; i < inst.N; i++ {
		keyOpt := keydist.WithKeyRand(sim.SeededReader(sim.KeyMaterialSeed(inst.KeySeed, i)))
		if shared != nil {
			keyOpt = keydist.WithSigner(shared[i])
		}
		node, err := keydist.NewNode(cfg, model.NodeID(i), scheme,
			sim.SeededReader(sim.NodeSeed(inst.Seed, i)), keyOpt)
		if err != nil {
			return nil, err
		}
		kdNodes[i] = node
		kdProcs[i] = node
	}
	if _, err := sim.RunInstance(cfg, kdProcs, keydist.RoundsTotal); err != nil {
		return nil, err
	}
	for _, node := range kdNodes {
		if !node.Accepted() {
			return nil, fmt.Errorf("protocol: honest key distribution left node %v unestablished", node.ID())
		}
	}
	return kdNodes, nil
}
