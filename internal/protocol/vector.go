package protocol

import (
	"bytes"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/fd"
	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sim"
)

// vectorDriver runs the all-senders vector composition: one honest key
// distribution (the paper's once-amortized setup phase — reused from the
// worker's cache when the cell is warm), then the vector round with the
// adversary strategy applied. Every node is a sender of its own rotated
// chain instance, so the driver returns one conformance SubRun per
// sender and the scorer requires all of them to pass.
type vectorDriver struct{}

func (vectorDriver) Name() string { return NameVector }

func (vectorDriver) Capabilities() Capabilities {
	return Capabilities{
		UsesSignatures: true,
		CacheableSetup: true,
		// No distinguished multi-valued sender: all nodes send, so the
		// equivocate behavior is inexpressible.
	}
}

func (vectorDriver) Verdicts() VerdictMapper { return VerdictsAuthenticatedFD }

func (vectorDriver) Prepare(inst Instance, cache *SetupCache) (Setup, error) {
	return VectorMaterial(inst, cache)
}

func (vectorDriver) Run(inst Instance, setup Setup) (Outcome, error) {
	kdNodes := setup.([]*keydist.Node)
	cfg := inst.Config()
	strat := inst.Strategy
	faulty := inst.Faulty()
	corruptSet := strat.CorruptSet(inst.N, inst.Seed)
	churn := churnByNode(inst, corruptSet)
	procs := make([]sim.Process, inst.N)
	nodes := make([]*fd.VectorNode, inst.N)
	for i := 0; i < inst.N; i++ {
		id := model.NodeID(i)
		if corruptSet.Contains(id) && pureCrash(strat.Behaviors) {
			procs[i] = sim.Silent{}
			continue
		}
		buildNode := func() (*fd.VectorNode, error) {
			return fd.NewVectorNode(cfg, id, kdNodes[i].Signer(), kdNodes[i].Directory(),
				[]byte(fmt.Sprintf("proposal-%d", i)))
		}
		node, err := buildNode()
		if err != nil {
			return Outcome{}, err
		}
		if ch, ok := churn[id]; ok {
			// Churned honest node: scripted crash/restart with durable key
			// state recovered; it reports no outcome (nodes[i] stays nil).
			rebuild := func() (sim.Process, error) { return buildNode() }
			procs[i] = netcond.NewChurner(node, ch, rebuild, nil)
			continue
		}
		if corruptSet.Contains(id) {
			// A corrupt node runs the correct protocol under its behavior
			// stack; it reports no outcome (nodes[i] stays nil).
			behaviors, err := adversary.BuildBehaviors(strat.Behaviors, inst.N)
			if err != nil {
				return Outcome{}, err
			}
			procs[i] = adversary.WrapBehaviors(node, behaviors...)
			continue
		}
		nodes[i] = node
		procs[i] = node
	}
	counters := metrics.NewCounters()
	maxRounds := fd.ChainEngineRounds(inst.T)
	simOpts := []sim.Option{sim.WithCounters(counters)}
	if net := netModel(inst); net != nil {
		simOpts = append(simOpts, sim.WithNetwork(net))
	}
	simRes, err := sim.RunInstance(cfg, procs, maxRounds, simOpts...)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{
		Rounds:     simRes.Rounds,
		RoundBound: maxRounds,
		Snapshot:   counters.Snapshot(),
	}

	// Agreement: every sub-instance with a correct sender must be decided
	// identically by every correct node; any discovery anywhere is
	// recorded. Each rotated sub-instance becomes one conformance SubRun.
	agreed := true
	for s := 0; s < inst.N; s++ {
		sid := model.NodeID(s)
		outcomes := make([]model.Outcome, 0, inst.N)
		var first []byte
		haveFirst := false
		for _, node := range nodes {
			if node == nil {
				continue
			}
			o := node.Outcome(sid)
			outcomes = append(outcomes, o)
			if o.Discovery != nil {
				out.Discovered = true
			}
			if faulty.Contains(sid) {
				continue // no agreement obligation for a faulty sender
			}
			if !o.Decided {
				agreed = false
				continue
			}
			if !haveFirst {
				first, haveFirst = o.Value, true
			} else if !bytes.Equal(o.Value, first) {
				agreed = false
			}
		}
		out.SubRuns = append(out.SubRuns, SubRun{
			Sender:   sid,
			Initial:  []byte(fmt.Sprintf("proposal-%d", s)),
			Outcomes: outcomes,
		})
	}
	out.Agreed = agreed
	return out, nil
}

func init() { Register(vectorDriver{}) }
