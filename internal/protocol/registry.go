package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The driver registry. Built-in drivers register from init functions in
// this package; external drivers (examples, future subsystems) may
// Register at program start. Names are unique and stable — they key
// campaign group aggregation and appear verbatim in reports.

// Registered driver names of the built-in protocols.
const (
	NameChain      = "chain"
	NameNonAuth    = "nonauth"
	NameSmallRange = "smallrange"
	NameVector     = "vector"
	NameEIG        = "eig"
	NameFDBA       = "fdba"
	NameSM         = "sm"
)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Driver)
)

// Register adds a driver to the registry. It panics on an empty name or
// a duplicate registration: both are programming errors a process must
// not limp past.
func Register(d Driver) {
	name := d.Name()
	if name == "" {
		panic("protocol: Register with empty driver name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, ok := registry[name]; ok {
		panic(fmt.Sprintf("protocol: driver %q registered twice", name))
	}
	registry[name] = d
}

// Lookup resolves a driver by name. The error enumerates the registered
// names, so a typo in a spec or flag tells the user what IS available
// instead of failing opaquely.
func Lookup(name string) (Driver, error) {
	registryMu.RLock()
	d, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return d, nil
}

// Names returns the registered driver names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Drivers returns the registered drivers in Names order.
func Drivers() []Driver {
	names := Names()
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Driver, 0, len(names))
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}
