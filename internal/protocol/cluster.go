package protocol

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/netcond"
	"repro/internal/sim"
)

// The cluster driver family: every protocol that runs through
// core.Cluster.RunFailureDiscovery — the chain FD protocol, the
// non-authenticated baseline, the binary small-range variant, and the
// two full agreement protocols FDBA and SM(t) — shares this one Driver
// implementation, parameterized by the core protocol selector, the
// sender's proposal, its capabilities, its verdict profile, and (where
// supported) a bespoke two-faced sender constructor. Adding another
// cluster-backed protocol is one registration below plus its
// core.Protocol case.

// equivocatorFunc builds a protocol's bespoke two-faced sender showing
// senderValue to faceOne and altSenderValue to everyone else.
type equivocatorFunc func(c *core.Cluster, inst Instance, faceOne model.NodeSet) (sim.Process, error)

type clusterDriver struct {
	name        string
	proto       core.Protocol
	value       []byte
	caps        Capabilities
	verdicts    VerdictMapper
	equivocator equivocatorFunc
}

func (d *clusterDriver) Name() string               { return d.name }
func (d *clusterDriver) Capabilities() Capabilities { return d.caps }
func (d *clusterDriver) Verdicts() VerdictMapper    { return d.verdicts }

// Prepare implements Driver. nonauth ignores keys entirely, so its setup
// is free, skips establishment, and declares CacheableSetup false; the
// authenticated protocols reuse an established cluster when their
// (scheme, n, t, keySeed) cell is cached, paying keygen and the
// 3n(n−1)-message handshake once per cell instead of once per seed.
func (d *clusterDriver) Prepare(inst Instance, cache *SetupCache) (Setup, error) {
	return ClusterSetup(inst, cache, d.proto != core.ProtocolNonAuth)
}

// Run implements Driver.
func (d *clusterDriver) Run(inst Instance, setup Setup) (Outcome, error) {
	c := setup.(*core.Cluster)
	value := d.value
	if len(inst.Value) > 0 {
		value = inst.Value
	}
	corrupt := inst.Strategy.CorruptSet(inst.N, inst.Seed)
	runOpts := []core.RunOption{core.WithProtocol(d.proto)}
	for _, id := range corrupt.Sorted() {
		opt, err := d.faultOption(inst, c, id)
		if err != nil {
			return Outcome{}, err
		}
		runOpts = append(runOpts, opt)
	}
	if net := inst.Net; net != nil {
		// Churn wraps only nodes the strategy left honest: a node the
		// adversary already corrupted has no correct process to crash
		// and restart (and Faulty() counts it once either way).
		for _, ch := range net.Churn {
			if id := model.NodeID(ch.Node); id.Valid(inst.N) && !corrupt.Contains(id) {
				runOpts = append(runOpts, core.WithChurn(ch))
			}
		}
		if net.DegradesLinks() {
			runOpts = append(runOpts, core.WithNetwork(netcond.NewModel(*net, inst.N, inst.Seed)))
		}
	}
	rep, err := c.RunFailureDiscovery(value, runOpts...)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Rounds:     rep.Rounds,
		RoundBound: core.EngineRounds(d.proto, inst.T),
		Snapshot:   rep.Snapshot,
		Agreed:     outcomesAgree(rep.Outcomes),
		Discovered: len(rep.Discoveries) > 0,
		SubRuns:    []SubRun{{Sender: fd.Sender, Initial: value, Outcomes: rep.Outcomes}},
	}, nil
}

// faultOption builds the run option that corrupts node id under the
// instance's strategy. An equivocating sender gets the protocol's
// bespoke two-faced process (remaining behaviors wrap it); a
// from-the-start crash runs silent; every other stack wraps the node's
// correct process with the compiled behavior filters.
func (d *clusterDriver) faultOption(inst Instance, c *core.Cluster, id model.NodeID) (core.RunOption, error) {
	strat := inst.Strategy
	if id == fd.Sender && strat.HasBehavior(adversary.BehaviorEquivocate) && d.equivocator != nil {
		faceOne, err := adversary.PartitionFaceOne(equivocatePartition(strat), inst.N)
		if err != nil {
			return nil, err
		}
		sender, err := d.equivocator(c, inst, faceOne)
		if err != nil {
			return nil, err
		}
		sender, err = wrapRemaining(sender, strat.Behaviors, inst.N)
		if err != nil {
			return nil, err
		}
		return core.WithProcess(id, sender), nil
	}
	if pureCrash(strat.Behaviors) {
		return core.WithProcess(id, sim.Silent{}), nil
	}
	behaviors, err := adversary.BuildBehaviors(strat.Behaviors, inst.N)
	if err != nil {
		return nil, err
	}
	return core.WithWrappedProcess(id, func(p sim.Process) sim.Process {
		return adversary.WrapBehaviors(p, behaviors...)
	}), nil
}

// chainEquivocator is the two-faced sender of the chain-signed
// protocols (chain, and fdba's chain phase 1): both signed chains pass
// through P_1, whose duplicate check discovers the deviation. The FDBA
// case then plays no fallback part — a faulty node owes the protocol
// nothing, and the correct nodes' fallback must align without it.
func chainEquivocator(c *core.Cluster, inst Instance, faceOne model.NodeSet) (sim.Process, error) {
	signer, err := c.Signer(fd.Sender)
	if err != nil {
		return nil, err
	}
	return adversary.NewEquivocatingSenderFaces(c.Config(), signer, senderValue, altSenderValue, faceOne), nil
}

// plainEquivocator is the unsigned two-faced sender of the
// non-authenticated baseline.
func plainEquivocator(c *core.Cluster, _ Instance, faceOne model.NodeSet) (sim.Process, error) {
	return adversary.NewEquivocatingPlainSenderFaces(c.Config(), senderValue, altSenderValue, faceOne), nil
}

// signedEquivocator is the two-faced SM(t) sender: one signed value per
// face, broadcast in round 1.
func signedEquivocator(c *core.Cluster, _ Instance, faceOne model.NodeSet) (sim.Process, error) {
	signer, err := c.Signer(fd.Sender)
	if err != nil {
		return nil, err
	}
	return adversary.NewEquivocatingSignedSenderFaces(c.Config(), signer, senderValue, altSenderValue, faceOne), nil
}

func init() {
	Register(&clusterDriver{
		name:  NameChain,
		proto: core.ProtocolChain,
		value: senderValue,
		caps: Capabilities{
			UsesSignatures:     true,
			CacheableSetup:     true,
			SupportsEquivocate: true,
		},
		verdicts:    VerdictsAuthenticatedFD,
		equivocator: chainEquivocator,
	})
	Register(&clusterDriver{
		name:  NameNonAuth,
		proto: core.ProtocolNonAuth,
		value: senderValue,
		caps: Capabilities{
			SupportsEquivocate: true,
		},
		verdicts:    VerdictsUnauthenticatedFD,
		equivocator: plainEquivocator,
	})
	Register(&clusterDriver{
		name:  NameSmallRange,
		proto: core.ProtocolSmallRange,
		value: []byte{1},
		caps: Capabilities{
			UsesSignatures: true,
			CacheableSetup: true,
		},
		verdicts: VerdictsSilenceDefault,
	})
	Register(&clusterDriver{
		name:  NameFDBA,
		proto: core.ProtocolFDBA,
		value: senderValue,
		caps: Capabilities{
			UsesSignatures:     true,
			CacheableSetup:     true,
			SupportsEquivocate: true,
		},
		verdicts:    VerdictsAgreement,
		equivocator: chainEquivocator,
	})
	Register(&clusterDriver{
		name:  NameSM,
		proto: core.ProtocolSM,
		value: senderValue,
		caps: Capabilities{
			UsesSignatures:     true,
			CacheableSetup:     true,
			SupportsEquivocate: true,
		},
		verdicts:    VerdictsAgreement,
		equivocator: signedEquivocator,
	})
}
