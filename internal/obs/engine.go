package obs

import (
	"time"

	"repro/internal/model"
)

// EngineTracer adapts a Recorder onto the simulator's extended Tracer
// seam (sim.Tracer + sim.RoundTracer): it emits one "sim.round"
// begin/end span per engine round, stamped with the instance and
// protocol it was built for and the round's delivered/sent counts.
// Per-message Delivered callbacks only bump a counter — a trace scales
// with rounds, not with traffic (use sim.WriterTracer when every
// message matters).
//
// One EngineTracer observes one engine run; it is not safe for
// concurrent use across engines (build one per run, they are two words
// plus a timestamp).
type EngineTracer struct {
	rec       *Recorder
	inst      int
	proto     string
	round     int
	start     time.Time
	delivered int
}

// NewEngineTracer builds a tracer for one engine run of instance inst
// (-1 outside campaigns) running proto. Callers guard with
// rec.Enabled(): a tracer over a nil recorder records nothing but still
// pays the interface dispatch.
func NewEngineTracer(rec *Recorder, inst int, proto string) *EngineTracer {
	return &EngineTracer{rec: rec, inst: inst, proto: proto}
}

// Delivered implements sim.Tracer.
func (t *EngineTracer) Delivered(model.Message) { t.delivered++ }

// RoundStart implements sim.RoundTracer.
func (t *EngineTracer) RoundStart(round int) {
	t.round = round
	t.start = time.Now()
	t.delivered = 0
	t.rec.Emit(Event{Kind: KindBegin, Scope: "sim.round",
		Inst: t.inst, Proto: t.proto, Round: round, Node: -1})
}

// RoundEnd implements sim.RoundTracer.
func (t *EngineTracer) RoundEnd(round, sent int) {
	t.rec.Emit(Event{Kind: KindEnd, Scope: "sim.round",
		Inst: t.inst, Proto: t.proto, Round: round, Node: -1,
		Dur:   int64(time.Since(t.start)),
		Attrs: Attrs("delivered", t.delivered, "sent", sent)})
}
