package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsDisabledAndSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	// Every entry point must no-op, not panic.
	r.Emit(Event{Kind: KindPoint, Scope: "x"})
	r.Point("x", "k=v")
	sp := r.Begin(Event{Scope: "span"})
	sp.End("done=1")
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush on nil recorder: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close on nil recorder: %v", err)
	}
	if NewRecorder(nil) != nil {
		t.Fatal("NewRecorder(nil sink) should be the disabled recorder")
	}
}

func TestRecorderBuffersAndFlushes(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink, WithRingSize(4))
	for i := 0; i < 3; i++ {
		r.Point("p", "")
	}
	if got := len(sink.Events()); got != 0 {
		t.Fatalf("sink saw %d events before the ring filled", got)
	}
	r.Point("p", "") // fourth event fills the ring
	if got := len(sink.Events()); got != 4 {
		t.Fatalf("sink saw %d events after ring fill, want 4", got)
	}
	r.Point("tail", "")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Events()); got != 5 {
		t.Fatalf("Close did not flush the tail: %d events", got)
	}
}

func TestSpanDurationsAndScopes(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink)
	sp := r.Begin(Event{Scope: "work", Inst: 7, Proto: "chain", Node: -1, Attrs: "phase=a"})
	time.Sleep(2 * time.Millisecond)
	sp.End("outcome=ok")
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := sink.Scoped("work")
	if len(evs) != 2 {
		t.Fatalf("got %d events, want begin+end", len(evs))
	}
	begin, end := evs[0], evs[1]
	if begin.Kind != KindBegin || end.Kind != KindEnd {
		t.Fatalf("kinds = %s,%s", begin.Kind, end.Kind)
	}
	if begin.Attrs != "phase=a" || end.Attrs != "outcome=ok" {
		t.Fatalf("attrs = %q,%q", begin.Attrs, end.Attrs)
	}
	if end.Inst != 7 || end.Proto != "chain" {
		t.Fatalf("end lost its identity: %+v", end)
	}
	if end.Dur < int64(time.Millisecond) {
		t.Fatalf("span duration %dns implausibly small", end.Dur)
	}
	if end.TS < begin.TS {
		t.Fatalf("timestamps not monotonic: begin=%d end=%d", begin.TS, end.TS)
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	sink := &MemorySink{}
	r := NewRecorder(sink, WithRingSize(8))
	var wg sync.WaitGroup
	const goroutines, each = 8, 200
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Point("concurrent", "")
			}
		}()
	}
	wg.Wait()
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Events()); got != goroutines*each {
		t.Fatalf("recorded %d events, want %d", got, goroutines*each)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	r := NewRecorder(sink)
	r.Point("a", "k=1")
	sp := r.Begin(Event{Scope: "b", Inst: 3, Node: 2})
	sp.End("")
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("JSONL has %d lines, want 3:\n%s", lines, buf.String())
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("round-tripped %d events, want 3", len(events))
	}
	if events[0].Scope != "a" || events[0].Attrs != "k=1" || events[0].Inst != -1 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].Inst != 3 || events[1].Node != 2 {
		t.Fatalf("event 1 lost scoping: %+v", events[1])
	}
}

func TestAttrs(t *testing.T) {
	if got := Attrs("a", 1, "b", "x"); got != "a=1 b=x" {
		t.Fatalf("Attrs = %q", got)
	}
	if got := Attrs(); got != "" {
		t.Fatalf("empty Attrs = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("odd Attrs did not panic")
		}
	}()
	Attrs("only-key")
}
