// Package obs is the repository's structured observability layer: a
// low-overhead event/tracing model threaded through the simulator, the
// cluster front door, the campaign engine, and the distributed
// scheduler. Every layer that matters emits Events — span-style
// begin/end pairs for phases and instances, points for discrete
// occurrences — into a per-worker Recorder that buffers them in a ring
// and flushes batches to a pluggable Sink (JSONL file for operators,
// in-memory for tests).
//
// The design constraint, inherited from the campaign determinism
// contract, is that observability must be a pure READER: enabling
// tracing may never change a report byte (pinned by
// TestReportObserverInvariance in internal/campaign), and the disabled
// path must be near-free. Both fall out of the same shape: a nil
// *Recorder is valid everywhere, every method nil-checks the receiver,
// and instrumentation sites guard attribute building behind
// Recorder.Enabled() — so the default (no recorder) costs one nil
// compare per site.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event kinds. Spans are a begin/end pair sharing a scope; points are
// single occurrences; counts carry a cumulative value in Dur.
const (
	KindBegin = "begin"
	KindEnd   = "end"
	KindPoint = "point"
)

// Event is one trace record. Plain data: it marshals one-per-line into
// the JSONL trace files cmd/fdreport consumes. Inst and Node are -1
// when the event is not scoped to a campaign instance or a node.
type Event struct {
	// TS is monotonic nanoseconds since the recorder's epoch — never
	// wall-clock, so traces order correctly across clock steps and two
	// runs of the same workload produce comparable timelines.
	TS int64 `json:"ts"`
	// Kind is KindBegin, KindEnd, or KindPoint.
	Kind string `json:"kind"`
	// Scope is the dotted event name, e.g. "campaign.instance",
	// "sim.round", "sched.lease", "core.keydist".
	Scope string `json:"scope"`
	// Inst is the campaign instance index (-1 outside campaigns).
	Inst int `json:"inst"`
	// Proto is the protocol driver name ("" when not protocol-scoped).
	Proto string `json:"proto,omitempty"`
	// Round is the engine round (0 when not round-scoped).
	Round int `json:"round,omitempty"`
	// Node is the node ID (-1 when not node-scoped).
	Node int `json:"node"`
	// Dur is, for KindEnd events, the span's duration in nanoseconds.
	Dur int64 `json:"dur,omitempty"`
	// Attrs carries free-form "k=v k=v" detail. Built only when a
	// recorder is enabled — sites guard the formatting, not just the
	// emit.
	Attrs string `json:"attrs,omitempty"`
}

// DefaultRingSize is the per-recorder event buffer: events accumulate
// here and reach the sink one batch per fill (or per Flush), not one
// write per event — the WriterTracer syscall-per-message mistake is
// structurally impossible.
const DefaultRingSize = 512

// Recorder buffers events for one worker and flushes them to its sink
// in batches. The mutex is uncontended in the intended one-recorder-
// per-worker layout (lock-cheap, not lock-free); sharing one recorder
// across goroutines is still safe, just contended. A nil *Recorder is
// the disabled tracer: every method no-ops, Enabled reports false.
type Recorder struct {
	mu    sync.Mutex
	sink  Sink
	ring  []Event
	epoch time.Time
}

// RecorderOption configures NewRecorder.
type RecorderOption func(*Recorder)

// WithRingSize overrides the event buffer capacity (minimum 1).
func WithRingSize(n int) RecorderOption {
	return func(r *Recorder) {
		if n < 1 {
			n = 1
		}
		r.ring = make([]Event, 0, n)
	}
}

// NewRecorder builds a recorder draining into sink. A nil sink yields a
// nil (disabled) recorder, so callers can write
// NewRecorder(maybeNilSink) without branching.
func NewRecorder(sink Sink, opts ...RecorderOption) *Recorder {
	if sink == nil {
		return nil
	}
	r := &Recorder{
		sink:  sink,
		ring:  make([]Event, 0, DefaultRingSize),
		epoch: time.Now(),
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Enabled reports whether events are being recorded. Instrumentation
// sites use it to skip attribute building entirely on the disabled
// path.
func (r *Recorder) Enabled() bool { return r != nil }

// now returns the monotonic offset since the epoch.
func (r *Recorder) now() int64 { return int64(time.Since(r.epoch)) }

// Emit records one event, stamping TS. Inst and Node default to -1
// when the caller left them zero-valued AND unscoped semantics are
// wanted — callers that mean node 0 must say so, so Emit does NOT
// rewrite zeros; use the Point/Begin helpers for the common cases.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.TS = r.now()
	r.ring = append(r.ring, e)
	if len(r.ring) == cap(r.ring) {
		r.flushLocked()
	}
	r.mu.Unlock()
}

// Point records a KindPoint event with no instance/node scope.
func (r *Recorder) Point(scope, attrs string) {
	if r == nil {
		return
	}
	r.Emit(Event{Kind: KindPoint, Scope: scope, Inst: -1, Node: -1, Attrs: attrs})
}

// Span is an open begin/end pair. The zero Span (from a nil recorder)
// is valid: End no-ops.
type Span struct {
	rec   *Recorder
	start time.Time
	ev    Event // the begin event, reused as the end template
}

// Begin records a KindBegin event and returns the Span whose End will
// record the matching KindEnd with the measured duration. The event's
// Kind and TS fields are stamped; everything else is the caller's.
func (r *Recorder) Begin(e Event) Span {
	if r == nil {
		return Span{}
	}
	e.Kind = KindBegin
	r.Emit(e)
	return Span{rec: r, start: time.Now(), ev: e}
}

// End closes the span, recording a KindEnd event with Dur set to the
// elapsed time and Attrs replaced by attrs when non-empty (the begin
// attrs are kept otherwise).
func (s Span) End(attrs string) {
	if s.rec == nil {
		return
	}
	e := s.ev
	e.Kind = KindEnd
	e.Dur = int64(time.Since(s.start))
	if attrs != "" {
		e.Attrs = attrs
	}
	s.rec.Emit(e)
}

// Flush drains the ring into the sink.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

// flushLocked writes and resets the ring; the caller holds r.mu.
func (r *Recorder) flushLocked() error {
	if len(r.ring) == 0 {
		return nil
	}
	err := r.sink.Write(r.ring)
	r.ring = r.ring[:0]
	return err
}

// Close flushes the ring and closes the sink. The recorder must not be
// used afterwards.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ferr := r.flushLocked()
	cerr := r.sink.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// Attrs formats a "k=v k=v" attribute string. It is a convenience for
// instrumentation sites; always guard calls behind Recorder.Enabled()
// so the disabled path never pays the formatting.
func Attrs(pairs ...any) string {
	if len(pairs)%2 != 0 {
		panic("obs: Attrs needs key/value pairs")
	}
	out := ""
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v=%v", pairs[i], pairs[i+1])
	}
	return out
}
