package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// Sink receives event batches from recorders. Implementations must be
// safe for concurrent use: several per-worker recorders may share one
// sink (the campaign's local shards all draining into one JSONL file).
type Sink interface {
	// Write persists one batch. The slice is only valid for the call.
	Write(events []Event) error
	// Close flushes and releases the sink.
	Close() error
}

// MemorySink retains every event, for assertions in tests.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Write implements Sink.
func (s *MemorySink) Write(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, events...)
	return nil
}

// Close implements Sink.
func (s *MemorySink) Close() error { return nil }

// Events returns a copy of everything recorded so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Scoped returns the recorded events with the given scope, in order.
func (s *MemorySink) Scoped(scope string) []Event {
	var out []Event
	for _, e := range s.Events() {
		if e.Scope == scope {
			out = append(out, e)
		}
	}
	return out
}

// JSONLSink writes one JSON object per line through a buffered writer,
// so a trace costs one syscall per buffer, not per event.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer // closed by Close when non-nil (file-backed sinks)
	enc *json.Encoder
}

// NewJSONLSink wraps w. If w is an io.Closer it is closed by Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// CreateJSONL creates (truncating) a JSONL trace file at path.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLSink(f), nil
}

// Write implements Sink.
func (s *JSONLSink) Write(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range events {
		if err := s.enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Sink: it flushes the buffer and closes the
// underlying writer when it is a Closer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.bw.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ReadJSONL parses a JSONL trace stream back into events — the read
// side of JSONLSink, used by fdreport's trace summaries and the tests.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ReadJSONLFile reads a JSONL trace file from disk.
func ReadJSONLFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
