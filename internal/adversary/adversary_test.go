package adversary

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// constProc sends a fixed outbox each round.
func constProc(out []model.Message) sim.Process {
	return sim.ProcessFunc(func(int, []model.Message) []model.Message {
		cp := make([]model.Message, len(out))
		copy(cp, out)
		return cp
	})
}

func TestDropAll(t *testing.T) {
	p := Wrap(constProc([]model.Message{{To: 1}}), DropAll(2))
	if got := p.Step(1, nil); len(got) != 1 {
		t.Errorf("round 1 dropped: %v", got)
	}
	if got := p.Step(2, nil); len(got) != 0 {
		t.Errorf("round 2 not dropped: %v", got)
	}
	if got := p.Step(5, nil); len(got) != 0 {
		t.Errorf("round 5 not dropped: %v", got)
	}
}

func TestDropToAndOnlyTo(t *testing.T) {
	out := []model.Message{{To: 1}, {To: 2}, {To: 3}}
	p := Wrap(constProc(out), DropTo(model.NewNodeSet(2)))
	got := p.Step(1, nil)
	if len(got) != 2 || got[0].To != 1 || got[1].To != 3 {
		t.Errorf("DropTo result: %v", got)
	}
	p = Wrap(constProc(out), OnlyTo(model.NewNodeSet(2)))
	got = p.Step(1, nil)
	if len(got) != 1 || got[0].To != 2 {
		t.Errorf("OnlyTo result: %v", got)
	}
}

func TestTamperPayloadCopies(t *testing.T) {
	orig := []byte{0x10, 0x20}
	out := []model.Message{{To: 1, Kind: model.KindChainValue, Payload: orig}}
	p := Wrap(constProc(out), TamperPayload(model.KindChainValue, FlipByte(0)))
	got := p.Step(1, nil)
	if got[0].Payload[0] != 0x11 {
		t.Errorf("payload not flipped: %x", got[0].Payload)
	}
	if orig[0] != 0x10 {
		t.Error("original buffer mutated")
	}
	// Non-matching kinds untouched.
	out2 := []model.Message{{To: 1, Kind: model.KindEcho, Payload: []byte{9}}}
	p = Wrap(constProc(out2), TamperPayload(model.KindChainValue, FlipByte(0)))
	if got := p.Step(1, nil); got[0].Payload[0] != 9 {
		t.Error("non-matching kind tampered")
	}
}

func TestFlipByteEmpty(t *testing.T) {
	if got := FlipByte(3)(nil); got != nil {
		t.Errorf("FlipByte(nil) = %v", got)
	}
}

func TestDuplicateTo(t *testing.T) {
	out := []model.Message{{To: 1, Payload: []byte("x")}}
	p := Wrap(constProc(out), DuplicateTo(4))
	got := p.Step(1, nil)
	if len(got) != 2 || got[1].To != 4 || !bytes.Equal(got[1].Payload, []byte("x")) {
		t.Errorf("DuplicateTo result: %v", got)
	}
}

func TestInjectAt(t *testing.T) {
	extra := model.Message{To: 2, Kind: model.KindFault}
	p := Wrap(constProc(nil), InjectAt(3, extra))
	if got := p.Step(2, nil); len(got) != 0 {
		t.Errorf("injected early: %v", got)
	}
	if got := p.Step(3, nil); len(got) != 1 || got[0].Kind != model.KindFault {
		t.Errorf("not injected at 3: %v", got)
	}
}

func TestFiltersCompose(t *testing.T) {
	out := []model.Message{{To: 1}, {To: 2}}
	p := Wrap(constProc(out),
		DropTo(model.NewNodeSet(1)),
		DuplicateTo(3),
	)
	got := p.Step(1, nil)
	// After DropTo: [{To:2}]; after DuplicateTo: [{To:2},{To:3}].
	if len(got) != 2 || got[0].To != 2 || got[1].To != 3 {
		t.Errorf("composition result: %v", got)
	}
}

func TestWrappedFinishedDelegation(t *testing.T) {
	w := Wrap(sim.Silent{})
	if !w.Finished() {
		t.Error("Silent-wrapped not finished")
	}
	w = Wrap(sim.ProcessFunc(func(int, []model.Message) []model.Message { return nil }))
	if !w.Finished() {
		t.Error("non-Finisher wrapped should default to finished")
	}
}

// TestWrappedUnfinishedWhileDelayerHolds pins the flush-on-finish
// contract: a finished inner process stays unfinished while its Delayer
// buffers messages, and finishes once the buffer drains.
func TestWrappedUnfinishedWhileDelayerHolds(t *testing.T) {
	d := DelayBy(2)
	w := WrapBehaviors(sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round == 1 {
			return []model.Message{{To: 1, Payload: []byte("late")}}
		}
		return nil
	}), d)
	if got := w.Step(1, nil); len(got) != 0 {
		t.Fatalf("round 1 leaked %v", got)
	}
	if w.Finished() {
		t.Fatal("wrapped process finished while the delayer holds a message")
	}
	if got := w.Step(2, nil); len(got) != 0 {
		t.Fatalf("round 2 released early: %v", got)
	}
	got := w.Step(3, nil)
	if len(got) != 1 || string(got[0].Payload) != "late" {
		t.Fatalf("round 3 = %v, want the held message", got)
	}
	if !w.Finished() {
		t.Fatal("wrapped process still unfinished after the buffer drained")
	}
}

// TestDelayedMessagesFlushThroughEngine runs a delayed sender under the
// real engine: the inner process finishes in round 1, but the engine
// keeps stepping the wrapper (Finished is false while holding) until the
// delayed message lands — it is delivered, not silently dropped.
func TestDelayedMessagesFlushThroughEngine(t *testing.T) {
	cfg := model.Config{N: 2, T: 0}
	var delivered []model.Message
	sender := sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
		if round == 1 {
			return []model.Message{{To: 1, Kind: model.KindPlainValue, Payload: []byte("v")}}
		}
		return nil
	})
	receiver := sim.ProcessFunc(func(round int, received []model.Message) []model.Message {
		delivered = append(delivered, received...)
		return nil
	})
	procs := []sim.Process{WrapBehaviors(sender, DelayBy(3)), receiver}
	res, err := sim.RunInstance(cfg, procs, 10)
	if err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	if len(delivered) != 1 || string(delivered[0].Payload) != "v" {
		t.Fatalf("delivered = %v, want the delayed message", delivered)
	}
	// Held in round 1, released in round 4, delivered in round 5.
	if delivered[0].Round != 4 {
		t.Errorf("delayed message stamped round %d, want 4", delivered[0].Round)
	}
	if res.Rounds >= 10 {
		t.Errorf("engine ran to the bound (%d rounds); it should stop after the flush", res.Rounds)
	}
	// Messages still held when the round bound expires are dropped — the
	// documented truncation at the protocol deadline.
	delivered = nil
	procs = []sim.Process{WrapBehaviors(sender, DelayBy(5)), receiver}
	if _, err := sim.RunInstance(cfg, procs, 3); err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	if len(delivered) != 0 {
		t.Fatalf("deadline-expired delay still delivered %v", delivered)
	}
}
