package adversary

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// constProc sends a fixed outbox each round.
func constProc(out []model.Message) sim.Process {
	return sim.ProcessFunc(func(int, []model.Message) []model.Message {
		cp := make([]model.Message, len(out))
		copy(cp, out)
		return cp
	})
}

func TestDropAll(t *testing.T) {
	p := Wrap(constProc([]model.Message{{To: 1}}), DropAll(2))
	if got := p.Step(1, nil); len(got) != 1 {
		t.Errorf("round 1 dropped: %v", got)
	}
	if got := p.Step(2, nil); len(got) != 0 {
		t.Errorf("round 2 not dropped: %v", got)
	}
	if got := p.Step(5, nil); len(got) != 0 {
		t.Errorf("round 5 not dropped: %v", got)
	}
}

func TestDropToAndOnlyTo(t *testing.T) {
	out := []model.Message{{To: 1}, {To: 2}, {To: 3}}
	p := Wrap(constProc(out), DropTo(model.NewNodeSet(2)))
	got := p.Step(1, nil)
	if len(got) != 2 || got[0].To != 1 || got[1].To != 3 {
		t.Errorf("DropTo result: %v", got)
	}
	p = Wrap(constProc(out), OnlyTo(model.NewNodeSet(2)))
	got = p.Step(1, nil)
	if len(got) != 1 || got[0].To != 2 {
		t.Errorf("OnlyTo result: %v", got)
	}
}

func TestTamperPayloadCopies(t *testing.T) {
	orig := []byte{0x10, 0x20}
	out := []model.Message{{To: 1, Kind: model.KindChainValue, Payload: orig}}
	p := Wrap(constProc(out), TamperPayload(model.KindChainValue, FlipByte(0)))
	got := p.Step(1, nil)
	if got[0].Payload[0] != 0x11 {
		t.Errorf("payload not flipped: %x", got[0].Payload)
	}
	if orig[0] != 0x10 {
		t.Error("original buffer mutated")
	}
	// Non-matching kinds untouched.
	out2 := []model.Message{{To: 1, Kind: model.KindEcho, Payload: []byte{9}}}
	p = Wrap(constProc(out2), TamperPayload(model.KindChainValue, FlipByte(0)))
	if got := p.Step(1, nil); got[0].Payload[0] != 9 {
		t.Error("non-matching kind tampered")
	}
}

func TestFlipByteEmpty(t *testing.T) {
	if got := FlipByte(3)(nil); got != nil {
		t.Errorf("FlipByte(nil) = %v", got)
	}
}

func TestDuplicateTo(t *testing.T) {
	out := []model.Message{{To: 1, Payload: []byte("x")}}
	p := Wrap(constProc(out), DuplicateTo(4))
	got := p.Step(1, nil)
	if len(got) != 2 || got[1].To != 4 || !bytes.Equal(got[1].Payload, []byte("x")) {
		t.Errorf("DuplicateTo result: %v", got)
	}
}

func TestInjectAt(t *testing.T) {
	extra := model.Message{To: 2, Kind: model.KindFault}
	p := Wrap(constProc(nil), InjectAt(3, extra))
	if got := p.Step(2, nil); len(got) != 0 {
		t.Errorf("injected early: %v", got)
	}
	if got := p.Step(3, nil); len(got) != 1 || got[0].Kind != model.KindFault {
		t.Errorf("not injected at 3: %v", got)
	}
}

func TestFiltersCompose(t *testing.T) {
	out := []model.Message{{To: 1}, {To: 2}}
	p := Wrap(constProc(out),
		DropTo(model.NewNodeSet(1)),
		DuplicateTo(3),
	)
	got := p.Step(1, nil)
	// After DropTo: [{To:2}]; after DuplicateTo: [{To:2},{To:3}].
	if len(got) != 2 || got[0].To != 2 || got[1].To != 3 {
		t.Errorf("composition result: %v", got)
	}
}

func TestWrappedFinishedDelegation(t *testing.T) {
	w := Wrap(sim.Silent{})
	if !w.Finished() {
		t.Error("Silent-wrapped not finished")
	}
	w = Wrap(sim.ProcessFunc(func(int, []model.Message) []model.Message { return nil }))
	if !w.Finished() {
		t.Error("non-Finisher wrapped should default to finished")
	}
}
