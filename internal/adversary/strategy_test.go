package adversary

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
		want  Strategy
		ok    bool
	}{
		{"sender crash", "sender:behavior=crash",
			Strategy{Nodes: []int{0}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, true},
		{"relay delay", "relay:behavior=delay,delay=2",
			Strategy{Nodes: []int{1}, Behaviors: []BehaviorSpec{{Name: BehaviorDelay, Delay: 2}}}, true},
		{"fixed nodes drop", "nodes=1+3:behavior=drop,victims=2+4",
			Strategy{Nodes: []int{1, 3}, Behaviors: []BehaviorSpec{{Name: BehaviorDrop, Victims: []int{2, 4}}}}, true},
		{"coalition equivocate", "coalition:size=2,behavior=equivocate,partition=even-odd",
			Strategy{Coalition: 2, Behaviors: []BehaviorSpec{{Name: BehaviorEquivocate, Partition: PartitionEvenOdd}}}, true},
		{"coalition defaults to size 1", "coalition:behavior=tamper",
			Strategy{Coalition: 1, Behaviors: []BehaviorSpec{{Name: BehaviorTamper}}}, true},
		{"composed behaviors", "coalition:size=2,behavior=delay,delay=1,behavior=drop,victims=3",
			Strategy{Coalition: 2, Behaviors: []BehaviorSpec{
				{Name: BehaviorDelay, Delay: 1},
				{Name: BehaviorDrop, Victims: []int{3}},
			}}, true},
		{"named", "sender:name=my-fault,behavior=crash,round=2",
			Strategy{Name: "my-fault", Nodes: []int{0}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash, Round: 2}}}, true},
		{"duplicate flood", "nodes=2:behavior=duplicate,victims=0+1",
			Strategy{Nodes: []int{2}, Behaviors: []BehaviorSpec{{Name: BehaviorDuplicate, Victims: []int{0, 1}}}}, true},

		{"unknown selector", "gremlin:behavior=crash", Strategy{}, false},
		{"unknown behavior", "sender:behavior=teleport", Strategy{}, false},
		{"no behaviors", "sender", Strategy{}, false},
		{"bad size", "coalition:size=zero,behavior=crash", Strategy{}, false},
		{"zero size", "coalition:size=0,behavior=crash", Strategy{}, false},
		{"negative round", "sender:behavior=crash,round=-1", Strategy{}, false},
		{"round out of range", "sender:behavior=crash,round=70000", Strategy{}, false},
		{"delay missing", "sender:behavior=delay", Strategy{}, false},
		{"delay out of range", "sender:behavior=delay,delay=500", Strategy{}, false},
		{"drop without victims", "sender:behavior=drop", Strategy{}, false},
		{"negative victim", "sender:behavior=drop,victims=-2", Strategy{}, false},
		{"stray delay on crash", "sender:behavior=crash,delay=2", Strategy{}, false},
		{"stray partition on drop", "sender:behavior=drop,victims=1,partition=halves", Strategy{}, false},
		{"unknown partition", "sender:behavior=equivocate,partition=thirds", Strategy{}, false},
		{"param before behavior", "sender:round=2,behavior=crash", Strategy{}, false},
		{"size outside coalition", "sender:size=2,behavior=crash", Strategy{}, false},
		{"malformed param", "sender:behavior", Strategy{}, false},
		{"empty value", "sender:behavior=", Strategy{}, false},
		{"bad node list", "nodes=1+x:behavior=crash", Strategy{}, false},
		{"duplicate node id", "nodes=1+1:behavior=crash", Strategy{}, false},
		{"unknown parameter", "sender:behavior=crash,color=red", Strategy{}, false},
	} {
		got, err := ParseStrategy(tc.input)
		if tc.ok && err != nil {
			t.Errorf("%s: ParseStrategy(%q) = %v, want ok", tc.name, tc.input, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: ParseStrategy(%q) accepted invalid input: %+v", tc.name, tc.input, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: ParseStrategy(%q) =\n%+v, want\n%+v", tc.name, tc.input, got, tc.want)
		}
	}
}

func TestStrategyValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Strategy
		ok   bool
	}{
		{"honest zero value", Strategy{}, true},
		{"honest named", Strategy{Name: "control"}, true},
		{"fixed crash", Strategy{Nodes: []int{1}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, true},
		{"nodes and coalition", Strategy{Nodes: []int{1}, Coalition: 2,
			Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, false},
		{"negative coalition", Strategy{Coalition: -1}, false},
		{"behaviors without corrupt set", Strategy{Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, false},
		{"corrupt set without behaviors", Strategy{Nodes: []int{1}}, false},
		{"negative node", Strategy{Nodes: []int{-1}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, false},
		{"empty behavior name", Strategy{Nodes: []int{1}, Behaviors: []BehaviorSpec{{}}}, false},
	} {
		err := tc.s.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: Validate = %v, want nil", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Validate accepted an invalid strategy", tc.name)
		}
	}
}

// TestCorruptSetDeterminism pins the coalition contract: same seed, same
// set; the sweep across seeds explores different placements; every set
// has exactly the declared size with valid members.
func TestCorruptSetDeterminism(t *testing.T) {
	s := Strategy{Coalition: 2, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}
	const n = 8
	for seed := int64(0); seed < 20; seed++ {
		a, b := s.CorruptSet(n, seed), s.CorruptSet(n, seed)
		if !reflect.DeepEqual(a.Sorted(), b.Sorted()) {
			t.Fatalf("seed %d: two resolutions differ: %v vs %v", seed, a, b)
		}
		if len(a) != 2 {
			t.Fatalf("seed %d: coalition size %d, want 2", seed, len(a))
		}
		for _, id := range a.Sorted() {
			if !id.Valid(n) {
				t.Fatalf("seed %d: invalid member %v", seed, id)
			}
		}
	}
	// Different seeds must explore different coalitions (not all equal).
	distinct := make(map[string]bool)
	for seed := int64(0); seed < 20; seed++ {
		distinct[s.CorruptSet(n, seed).String()] = true
	}
	if len(distinct) < 2 {
		t.Errorf("20 seeds produced %d distinct coalitions; selection is not seed-driven", len(distinct))
	}
	// Fixed sets resolve verbatim, independent of the seed.
	f := Strategy{Nodes: []int{3, 1}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}
	for seed := int64(0); seed < 5; seed++ {
		got := f.CorruptSet(n, seed).Sorted()
		if len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Fatalf("fixed set resolved to %v", got)
		}
	}
	// Oversized coalitions clamp to n.
	big := Strategy{Coalition: 99, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}
	if got := len(big.CorruptSet(4, 1)); got != 4 {
		t.Errorf("oversized coalition resolved to %d members, want 4", got)
	}
}

// TestPartitionsDisjointAndCovering checks both equivocation partitions:
// face one and its complement are disjoint and cover all n nodes, for a
// range of system sizes.
func TestPartitionsDisjointAndCovering(t *testing.T) {
	for _, partition := range []string{PartitionHalves, PartitionEvenOdd, ""} {
		for n := 2; n <= 9; n++ {
			faceOne, err := PartitionFaceOne(partition, n)
			if err != nil {
				t.Fatalf("PartitionFaceOne(%q, %d): %v", partition, n, err)
			}
			// Membership is binary, so the two faces are disjoint by
			// construction; coverage means every member is in range and
			// the complement over [0, n) accounts for the rest.
			faceTwo := 0
			for id := 0; id < n; id++ {
				if !faceOne.Contains(model.NodeID(id)) {
					faceTwo++
				}
			}
			for _, id := range faceOne.Sorted() {
				if !id.Valid(n) {
					t.Fatalf("partition %q n=%d: face one contains out-of-range node %v", partition, n, id)
				}
			}
			if len(faceOne)+faceTwo != n {
				t.Fatalf("partition %q n=%d: faces cover %d of %d nodes", partition, n, len(faceOne)+faceTwo, n)
			}
			if len(faceOne) == 0 || faceTwo == 0 {
				t.Errorf("partition %q n=%d: face one has %d of %d nodes; both faces must be non-empty",
					partition, n, len(faceOne), n)
			}
		}
	}
	if _, err := PartitionFaceOne("thirds", 6); err == nil {
		t.Error("unknown partition accepted")
	}
}

// TestBuildBehaviorsCompositionOrder pins that behaviors apply in spec
// order: delay-then-drop suppresses the released messages, while
// drop-then-delay releases the survivors.
func TestBuildBehaviorsCompositionOrder(t *testing.T) {
	send := func() sim.Process {
		return sim.ProcessFunc(func(round int, _ []model.Message) []model.Message {
			if round != 1 {
				return nil
			}
			return []model.Message{{To: 1, Payload: []byte("a")}, {To: 2, Payload: []byte("b")}}
		})
	}
	delaySpec := BehaviorSpec{Name: BehaviorDelay, Delay: 1}
	dropSpec := BehaviorSpec{Name: BehaviorDrop, Victims: []int{2}}

	// delay → drop: round 1 emits nothing, round 2 releases both messages
	// through the drop, which suppresses the one to node 2.
	bs, err := BuildBehaviors([]BehaviorSpec{delaySpec, dropSpec}, 4)
	if err != nil {
		t.Fatalf("BuildBehaviors: %v", err)
	}
	p := WrapBehaviors(send(), bs...)
	if got := p.Step(1, nil); len(got) != 0 {
		t.Fatalf("delay→drop round 1 = %v, want empty", got)
	}
	got := p.Step(2, nil)
	if len(got) != 1 || got[0].To != 1 {
		t.Fatalf("delay→drop round 2 = %v, want only To:1", got)
	}

	// drop → delay: identical end state, but the drop already happened in
	// round 1, so only one message was ever held.
	bs, err = BuildBehaviors([]BehaviorSpec{dropSpec, delaySpec}, 4)
	if err != nil {
		t.Fatalf("BuildBehaviors: %v", err)
	}
	p = WrapBehaviors(send(), bs...)
	if got := p.Step(1, nil); len(got) != 0 {
		t.Fatalf("drop→delay round 1 = %v, want empty", got)
	}
	got = p.Step(2, nil)
	if len(got) != 1 || got[0].To != 1 {
		t.Fatalf("drop→delay round 2 = %v, want only To:1", got)
	}
}

// TestDelayBoundRespected pins the Delayer timing: a message from round r
// is released in round r+delay, never earlier, never later, and Holding
// reflects the buffered state throughout.
func TestDelayBoundRespected(t *testing.T) {
	for delay := 1; delay <= 3; delay++ {
		d := DelayBy(delay)
		out := d.Apply(1, []model.Message{{To: 1, Payload: []byte("x")}})
		if len(out) != 0 {
			t.Fatalf("delay=%d: released in the send round", delay)
		}
		if !d.Holding() {
			t.Fatalf("delay=%d: not holding after buffering", delay)
		}
		for r := 2; r < 1+delay; r++ {
			if out := d.Apply(r, nil); len(out) != 0 {
				t.Fatalf("delay=%d: released early in round %d", delay, r)
			}
		}
		out = d.Apply(1+delay, nil)
		if len(out) != 1 || out[0].To != 1 {
			t.Fatalf("delay=%d: round %d released %v, want the held message", delay, 1+delay, out)
		}
		if d.Holding() {
			t.Fatalf("delay=%d: still holding after release", delay)
		}
	}
}

// TestDuplicateFloodOneCopyPerVictim pins the duplicate semantics: each
// victim receives exactly one copy of every ORIGINAL message — stacked
// victims never re-copy earlier victims' duplicates.
func TestDuplicateFloodOneCopyPerVictim(t *testing.T) {
	bs, err := BuildBehaviors([]BehaviorSpec{{Name: BehaviorDuplicate, Victims: []int{4, 5, 6}}}, 8)
	if err != nil {
		t.Fatalf("BuildBehaviors: %v", err)
	}
	out := []model.Message{{To: 1, Payload: []byte("a")}, {To: 2, Payload: []byte("b")}}
	for _, b := range bs {
		out = b.Apply(1, out)
	}
	// 2 originals + 3 victims × 2 copies.
	if len(out) != 8 {
		t.Fatalf("flood produced %d messages, want 8: %v", len(out), out)
	}
	perVictim := map[model.NodeID]int{}
	for _, m := range out[2:] {
		perVictim[m.To]++
	}
	for _, v := range []model.NodeID{4, 5, 6} {
		if perVictim[v] != 2 {
			t.Errorf("victim %v received %d copies, want 2", v, perVictim[v])
		}
	}
}

// TestBuildBehaviorsRejectsInvalid mirrors validation at build time.
func TestBuildBehaviorsRejectsInvalid(t *testing.T) {
	for _, specs := range [][]BehaviorSpec{
		{{Name: "teleport"}},
		{{Name: BehaviorDelay}},
		{{Name: BehaviorDrop}},
		{{Name: BehaviorEquivocate, Partition: "thirds"}},
		{{Name: BehaviorCrash, Round: -3}},
	} {
		if _, err := BuildBehaviors(specs, 4); err == nil {
			t.Errorf("BuildBehaviors(%+v) accepted invalid spec", specs)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	for _, tc := range []struct {
		s    Strategy
		want string
	}{
		{Strategy{}, "none"},
		{Strategy{Name: "custom", Nodes: []int{1}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, "custom"},
		{Strategy{Nodes: []int{2, 0}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash}}}, "nodes-0-2.crash"},
		{Strategy{Nodes: []int{0}, Behaviors: []BehaviorSpec{{Name: BehaviorCrash, Round: 3}}}, "nodes-0.crash-r3"},
		{Strategy{Coalition: 2, Behaviors: []BehaviorSpec{
			{Name: BehaviorEquivocate, Partition: PartitionEvenOdd}}}, "coalition-2.equivocate-even-odd"},
		{Strategy{Coalition: 1, Behaviors: []BehaviorSpec{
			{Name: BehaviorDelay, Delay: 2},
			{Name: BehaviorDrop, Victims: []int{3, 1}},
		}}, "coalition-1.delay-2.drop-v1-v3"},
		{Strategy{Nodes: []int{1}, Behaviors: []BehaviorSpec{{Name: BehaviorEquivocate}}}, "nodes-1.equivocate"},
	} {
		if got := tc.s.CanonicalName(); got != tc.want {
			t.Errorf("CanonicalName(%+v) = %q, want %q", tc.s, got, tc.want)
		}
		// Names must be CSV-safe: the campaign table renders them.
		if strings.ContainsAny(tc.s.CanonicalName(), ",;\n") {
			t.Errorf("CanonicalName(%+v) contains separator characters", tc.s)
		}
	}
}

// FuzzParseStrategy: malformed sizes, unknown behaviors, out-of-range
// rounds — everything must return an error, never panic, and accepted
// inputs must survive their own validation.
func FuzzParseStrategy(f *testing.F) {
	for _, seed := range []string{
		"sender:behavior=crash",
		"relay:behavior=delay,delay=2",
		"nodes=1+3:behavior=drop,victims=2+4",
		"coalition:size=2,behavior=equivocate,partition=even-odd",
		"coalition:size=2,behavior=delay,delay=1,behavior=drop,victims=3",
		"sender:name=x,behavior=tamper",
		"coalition:size=-1,behavior=crash",
		"sender:behavior=crash,round=999999",
		"sender:behavior=warp",
		"nodes=:behavior=crash",
		"nodes=1+1+1:behavior=crash",
		":::",
		"coalition:size=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseStrategy(input)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseStrategy(%q) accepted a strategy its own Validate rejects: %v", input, verr)
		}
		// Building behaviors and resolving corrupt sets on accepted
		// strategies must not panic either.
		if _, berr := BuildBehaviors(s.Behaviors, 8); berr != nil {
			t.Fatalf("ParseStrategy(%q) accepted behaviors BuildBehaviors rejects: %v", input, berr)
		}
		s.CorruptSet(8, 42)
		_ = s.CanonicalName()
	})
}
