// Package adversary implements Byzantine behaviours used to test the
// paper's theorems. The model places no restriction on faulty nodes
// beyond the network's ground rules: they cannot spoof their identity as
// immediate sender (N2, enforced by the simulator), they cannot block
// other nodes' messages (N1), and they cannot forge signatures they do
// not hold (S1–S3). Everything else — silence, lies, equivocation,
// collusion, key sharing, mixed key distribution — is fair game, and each
// has a constructor here.
//
// Two styles coexist:
//
//   - Filters wrap a CORRECT process and distort its outbox (drop,
//     redirect, tamper). They model faults that are deviations of an
//     otherwise protocol-following node and compose freely.
//   - Bespoke processes implement coordinated attacks that need their own
//     protocol logic (mixed predicate distribution, equivocating senders,
//     lying echoers).
package adversary

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Filter transforms the outbox of a wrapped process each round. A Filter
// is the stateless special case of Behavior: it never buffers messages
// across rounds.
type Filter func(round int, out []model.Message) []model.Message

// Apply implements Behavior.
func (f Filter) Apply(round int, out []model.Message) []model.Message { return f(round, out) }

// Holding implements Behavior; a plain Filter never buffers messages.
func (Filter) Holding() bool { return false }

// Behavior is a composable outbox transformer with observable buffering
// state: the strategy layer's unit of composition. Filter implements it
// for the stateless cases; stateful behaviors (Delayer) report through
// Holding whether they still hold messages that have not been released,
// which keeps the wrapping process alive (Finished() == false) until the
// buffered traffic has drained.
type Behavior interface {
	// Apply transforms one round's outbox, exactly like Filter.
	Apply(round int, out []model.Message) []model.Message
	// Holding reports whether the behavior buffers messages that later
	// Apply calls will still release.
	Holding() bool
}

// Wrapped runs an inner process and applies a chain of behaviors to every
// outbox. The inner process's inbox is untouched: a Byzantine node sees
// everything sent to it.
type Wrapped struct {
	inner     sim.Process
	behaviors []Behavior
}

var _ sim.Process = (*Wrapped)(nil)

// Wrap builds a filtered process. Filters apply in order.
func Wrap(inner sim.Process, filters ...Filter) *Wrapped {
	behaviors := make([]Behavior, len(filters))
	for i, f := range filters {
		behaviors[i] = f
	}
	return WrapBehaviors(inner, behaviors...)
}

// WrapBehaviors builds a process whose outbox passes through the given
// behavior stack in order. Use it over Wrap when the stack contains
// stateful behaviors (Delayer): their Holding state is what keeps the
// wrapped process unfinished until every buffered message is released.
func WrapBehaviors(inner sim.Process, behaviors ...Behavior) *Wrapped {
	return &Wrapped{inner: inner, behaviors: behaviors}
}

// Step implements sim.Process.
func (w *Wrapped) Step(round int, received []model.Message) []model.Message {
	out := w.inner.Step(round, received)
	for _, b := range w.behaviors {
		out = b.Apply(round, out)
	}
	return out
}

// Finished implements sim.Finisher: done only when the inner process is
// done AND no behavior still buffers undelivered messages. The engine
// therefore keeps stepping a finished inner process while a Delayer holds
// traffic, which is the flush path that stops delayed messages from being
// silently dropped when the inner protocol completes early.
func (w *Wrapped) Finished() bool {
	for _, b := range w.behaviors {
		if b.Holding() {
			return false
		}
	}
	if f, ok := w.inner.(sim.Finisher); ok {
		return f.Finished()
	}
	return true
}

// DropAll silences the node from the given round on (crash fault).
func DropAll(fromRound int) Filter {
	return func(round int, out []model.Message) []model.Message {
		if round >= fromRound {
			return nil
		}
		return out
	}
}

// DropTo suppresses messages to the given victims: the "split" primitive —
// e.g. a disseminator that withholds the chain from part of the tail.
func DropTo(victims model.NodeSet) Filter {
	return func(_ int, out []model.Message) []model.Message {
		kept := out[:0]
		for _, m := range out {
			if !victims.Contains(m.To) {
				kept = append(kept, m)
			}
		}
		return kept
	}
}

// OnlyTo suppresses messages to everyone except the chosen recipients.
func OnlyTo(recipients model.NodeSet) Filter {
	return func(_ int, out []model.Message) []model.Message {
		kept := out[:0]
		for _, m := range out {
			if recipients.Contains(m.To) {
				kept = append(kept, m)
			}
		}
		return kept
	}
}

// TamperPayload rewrites the payload of every message matching kind. The
// mutation receives a copy, so the original buffer is never shared.
func TamperPayload(kind model.MessageKind, mutate func([]byte) []byte) Filter {
	return func(_ int, out []model.Message) []model.Message {
		for i := range out {
			if out[i].Kind == kind {
				cp := append([]byte(nil), out[i].Payload...)
				out[i].Payload = mutate(cp)
			}
		}
		return out
	}
}

// FlipByte is a convenient TamperPayload mutation: it flips one bit of the
// byte at index i (modulo length), voiding any signature over the payload.
func FlipByte(i int) func([]byte) []byte {
	return func(p []byte) []byte {
		if len(p) == 0 {
			return p
		}
		p[i%len(p)] ^= 0x01
		return p
	}
}

// DuplicateTo appends a copy of each outgoing message redirected to extra,
// modelling a node that leaks protocol traffic to an accomplice or spams a
// victim with duplicates.
func DuplicateTo(extra model.NodeID) Filter {
	return func(_ int, out []model.Message) []model.Message {
		dup := make([]model.Message, 0, len(out))
		for _, m := range out {
			cp := m
			cp.To = extra
			dup = append(dup, cp)
		}
		return append(out, dup...)
	}
}

// Delayer holds every outgoing message back a fixed number of rounds
// before releasing it: in a synchronous protocol a late message is
// exactly as much of a deviation as a forged one, and receivers must
// treat it so.
//
// A Delayer is stateful: Holding reports buffered traffic, so a process
// wrapped via WrapBehaviors stays unfinished until the last held message
// is released — the engine keeps stepping it and the messages flush
// instead of being dropped when the inner protocol completes early.
// Messages still held when the engine's round bound expires ARE lost:
// delivery past the protocol deadline has no meaning in the synchronous
// model, and the silence is itself discoverable by receivers.
type Delayer struct {
	rounds int
	held   map[int][]model.Message
}

var _ Behavior = (*Delayer)(nil)

// DelayBy builds a Delayer that releases each round's outbox `rounds`
// rounds later.
func DelayBy(rounds int) *Delayer {
	return &Delayer{rounds: rounds, held: make(map[int][]model.Message)}
}

// Apply implements Behavior: it buffers this round's outbox and releases
// the messages that were due this round.
func (d *Delayer) Apply(round int, out []model.Message) []model.Message {
	if len(out) > 0 {
		d.held[round+d.rounds] = append(d.held[round+d.rounds], out...)
	}
	release := d.held[round]
	delete(d.held, round)
	return release
}

// Holding implements Behavior: true while any message awaits release.
func (d *Delayer) Holding() bool { return len(d.held) > 0 }

// InjectAt adds fabricated messages to the outbox of the given round.
func InjectAt(round int, msgs ...model.Message) Filter {
	return func(r int, out []model.Message) []model.Message {
		if r == round {
			return append(out, msgs...)
		}
		return out
	}
}

// FloodTo appends, for each victim in order, one copy of every message
// in the original outbox. Unlike stacking one DuplicateTo per victim —
// where each later filter re-copies the duplicates the earlier ones just
// appended, giving victim k 2^(k-1) copies — every victim receives
// exactly one copy of each original message.
func FloodTo(victims []model.NodeID) Filter {
	return func(_ int, out []model.Message) []model.Message {
		orig := len(out)
		for _, v := range victims {
			for i := 0; i < orig; i++ {
				cp := out[i]
				cp.To = v
				out = append(out, cp)
			}
		}
		return out
	}
}

// TamperAll rewrites the payload of every outgoing message regardless of
// kind. Each mutation receives its own copy, so the original buffers are
// never shared — important when a protocol broadcasts one payload slice
// to many recipients.
func TamperAll(mutate func([]byte) []byte) Filter {
	return func(_ int, out []model.Message) []model.Message {
		for i := range out {
			cp := append([]byte(nil), out[i].Payload...)
			out[i].Payload = mutate(cp)
		}
		return out
	}
}

// TwoFaced models a node that shows different faces to different peers:
// messages to faceOne pass untouched while messages to everyone else have
// their payload rewritten through mutate (on a private copy). It is the
// generic equivocation primitive for corrupt nodes without a bespoke
// equivocating process — a two-faced relay's second face is a payload no
// failure-free run produces, so receivers on that side can discover it.
func TwoFaced(faceOne model.NodeSet, mutate func([]byte) []byte) Filter {
	return func(_ int, out []model.Message) []model.Message {
		for i := range out {
			if faceOne.Contains(out[i].To) {
				continue
			}
			cp := append([]byte(nil), out[i].Payload...)
			out[i].Payload = mutate(cp)
		}
		return out
	}
}
