// Package adversary implements Byzantine behaviours used to test the
// paper's theorems. The model places no restriction on faulty nodes
// beyond the network's ground rules: they cannot spoof their identity as
// immediate sender (N2, enforced by the simulator), they cannot block
// other nodes' messages (N1), and they cannot forge signatures they do
// not hold (S1–S3). Everything else — silence, lies, equivocation,
// collusion, key sharing, mixed key distribution — is fair game, and each
// has a constructor here.
//
// Two styles coexist:
//
//   - Filters wrap a CORRECT process and distort its outbox (drop,
//     redirect, tamper). They model faults that are deviations of an
//     otherwise protocol-following node and compose freely.
//   - Bespoke processes implement coordinated attacks that need their own
//     protocol logic (mixed predicate distribution, equivocating senders,
//     lying echoers).
package adversary

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Filter transforms the outbox of a wrapped process each round.
type Filter func(round int, out []model.Message) []model.Message

// Wrapped runs an inner process and applies a chain of filters to every
// outbox. The inner process's inbox is untouched: a Byzantine node sees
// everything sent to it.
type Wrapped struct {
	inner   sim.Process
	filters []Filter
}

var _ sim.Process = (*Wrapped)(nil)

// Wrap builds a filtered process. Filters apply in order.
func Wrap(inner sim.Process, filters ...Filter) *Wrapped {
	return &Wrapped{inner: inner, filters: filters}
}

// Step implements sim.Process.
func (w *Wrapped) Step(round int, received []model.Message) []model.Message {
	out := w.inner.Step(round, received)
	for _, f := range w.filters {
		out = f(round, out)
	}
	return out
}

// Finished implements sim.Finisher by delegating to the inner process.
func (w *Wrapped) Finished() bool {
	if f, ok := w.inner.(sim.Finisher); ok {
		return f.Finished()
	}
	return true
}

// DropAll silences the node from the given round on (crash fault).
func DropAll(fromRound int) Filter {
	return func(round int, out []model.Message) []model.Message {
		if round >= fromRound {
			return nil
		}
		return out
	}
}

// DropTo suppresses messages to the given victims: the "split" primitive —
// e.g. a disseminator that withholds the chain from part of the tail.
func DropTo(victims model.NodeSet) Filter {
	return func(_ int, out []model.Message) []model.Message {
		kept := out[:0]
		for _, m := range out {
			if !victims.Contains(m.To) {
				kept = append(kept, m)
			}
		}
		return kept
	}
}

// OnlyTo suppresses messages to everyone except the chosen recipients.
func OnlyTo(recipients model.NodeSet) Filter {
	return func(_ int, out []model.Message) []model.Message {
		kept := out[:0]
		for _, m := range out {
			if recipients.Contains(m.To) {
				kept = append(kept, m)
			}
		}
		return kept
	}
}

// TamperPayload rewrites the payload of every message matching kind. The
// mutation receives a copy, so the original buffer is never shared.
func TamperPayload(kind model.MessageKind, mutate func([]byte) []byte) Filter {
	return func(_ int, out []model.Message) []model.Message {
		for i := range out {
			if out[i].Kind == kind {
				cp := append([]byte(nil), out[i].Payload...)
				out[i].Payload = mutate(cp)
			}
		}
		return out
	}
}

// FlipByte is a convenient TamperPayload mutation: it flips one bit of the
// byte at index i (modulo length), voiding any signature over the payload.
func FlipByte(i int) func([]byte) []byte {
	return func(p []byte) []byte {
		if len(p) == 0 {
			return p
		}
		p[i%len(p)] ^= 0x01
		return p
	}
}

// DuplicateTo appends a copy of each outgoing message redirected to extra,
// modelling a node that leaks protocol traffic to an accomplice or spams a
// victim with duplicates.
func DuplicateTo(extra model.NodeID) Filter {
	return func(_ int, out []model.Message) []model.Message {
		dup := make([]model.Message, 0, len(out))
		for _, m := range out {
			cp := m
			cp.To = extra
			dup = append(dup, cp)
		}
		return append(out, dup...)
	}
}

// DelayBy holds every outgoing message back `rounds` rounds before
// releasing it: in a synchronous protocol a late message is exactly as
// much of a deviation as a forged one, and receivers must treat it so.
func DelayBy(rounds int) Filter {
	held := make(map[int][]model.Message)
	return func(round int, out []model.Message) []model.Message {
		held[round+rounds] = append(held[round+rounds], out...)
		release := held[round]
		delete(held, round)
		return release
	}
}

// InjectAt adds fabricated messages to the outbox of the given round.
func InjectAt(round int, msgs ...model.Message) Filter {
	return func(r int, out []model.Message) []model.Message {
		if r == round {
			return append(out, msgs...)
		}
		return out
	}
}
