package adversary

import (
	"testing"

	"repro/internal/keydist"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sig"
	"repro/internal/sim"
)

// Tests for the key-distribution handshake (paper Fig. 1) under this
// package's adversaries: an honest run establishing the baseline, and
// adversarial interleavings probing the G1/G2 guarantees the handshake's
// challenge-response step exists to provide.

// buildKeydist returns n keydist processes, the honest node handles, and
// the scheme, with overrides applied (overridden slots have a nil Node).
func buildKeydist(t *testing.T, n int, seed int64, overrides map[model.NodeID]sim.Process) ([]sim.Process, []*keydist.Node, sig.Scheme) {
	t.Helper()
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("scheme: %v", err)
	}
	cfg := model.Config{N: n, T: 1}
	procs := make([]sim.Process, n)
	nodes := make([]*keydist.Node, n)
	for i := 0; i < n; i++ {
		id := model.NodeID(i)
		if p, ok := overrides[id]; ok {
			procs[i] = p
			continue
		}
		node, err := keydist.NewNode(cfg, id, scheme, sim.SeededReader(sim.NodeSeed(seed, i)))
		if err != nil {
			t.Fatalf("NewNode %v: %v", id, err)
		}
		nodes[i] = node
		procs[i] = node
	}
	return procs, nodes, scheme
}

func TestKeydistHonestHandshake(t *testing.T) {
	const n = 5
	procs, nodes, _ := buildKeydist(t, n, 11, nil)
	counters := metrics.NewCounters()
	cfg := model.Config{N: n, T: 1}
	if _, err := sim.RunInstance(cfg, procs, keydist.RoundsTotal, sim.WithCounters(counters)); err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	// Paper §3.1: 3n(n−1) messages in 3 communication rounds.
	if got, want := counters.Messages(), keydist.ExpectedMessages(n); got != want {
		t.Errorf("messages = %d, want 3n(n-1) = %d", got, want)
	}
	if got := counters.CommunicationRounds(); got != 3 {
		t.Errorf("communication rounds = %d, want 3", got)
	}
	for _, node := range nodes {
		if !node.Accepted() {
			t.Errorf("node %v did not accept all predicates", node.ID())
		}
		if d := node.Discoveries(); len(d) != 0 {
			t.Errorf("node %v discovered failures in an honest run: %v", node.ID(), d)
		}
	}
	// G2 in the honest case: every pair of correct nodes accepted the
	// same predicate for every node.
	for _, a := range nodes {
		for _, b := range nodes {
			for q := 0; q < n; q++ {
				if !a.Directory().AgreesWith(b.Directory(), model.NodeID(q)) {
					t.Errorf("directories of %v and %v disagree on %v", a.ID(), b.ID(), model.NodeID(q))
				}
			}
		}
	}
}

// checkG1G2 asserts the Theorem 2 guarantees after an adversarial run:
// no correct node accepted a correct node's predicate FOR the faulty
// identity (G1), and all correct nodes accepted each other's predicates,
// identically (G2).
func checkG1G2(t *testing.T, nodes []*keydist.Node, faulty model.NodeID) {
	t.Helper()
	for _, node := range nodes {
		if node == nil {
			continue
		}
		if p, ok := node.Directory().PredicateOf(faulty); ok {
			for _, victim := range nodes {
				if victim == nil {
					continue
				}
				if p.Fingerprint() == victim.Signer().Predicate().Fingerprint() {
					t.Errorf("G1 violated: %v accepted %v's predicate for faulty %v",
						node.ID(), victim.ID(), faulty)
				}
			}
		}
		for _, peer := range nodes {
			if peer == nil {
				continue
			}
			p, ok := node.Directory().PredicateOf(peer.ID())
			if !ok {
				t.Errorf("G2 violated: %v did not accept correct %v", node.ID(), peer.ID())
				continue
			}
			if p.Fingerprint() != peer.Signer().Predicate().Fingerprint() {
				t.Errorf("G2 violated: %v holds a wrong predicate for %v", node.ID(), peer.ID())
			}
		}
	}
}

func TestKeydistForeignClaimInterleaving(t *testing.T) {
	// Node 4 claims node 1's predicate as its own. It cannot answer the
	// challenge round (S3: no secret key), so no correct node may accept
	// the claim.
	const n, faulty = 5, model.NodeID(4)
	cfg := model.Config{N: n, T: 1}
	// Two-phase build: the adversary needs its victim's predicate, which
	// exists only after the honest nodes are built.
	procs, nodes, _ := buildKeydist(t, n, 23, map[model.NodeID]sim.Process{faulty: sim.Silent{}})
	procs[faulty] = NewForeignClaimNode(cfg, faulty, nodes[1].Signer().Predicate())
	if _, err := sim.RunInstance(cfg, procs, keydist.RoundsTotal); err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	checkG1G2(t, nodes, faulty)
	// Stronger than G1: the unanswered claim must not be accepted at all.
	for _, node := range nodes {
		if node == nil {
			continue
		}
		if _, ok := node.Directory().PredicateOf(faulty); ok {
			t.Errorf("%v accepted a predicate for %v, whose challenge went unanswered", node.ID(), faulty)
		}
	}
}

func TestKeydistChallengeRelayInterleaving(t *testing.T) {
	// The laundering interleaving: node 4 claims node 1's predicate and
	// relays the challenges it receives to node 1, replaying whatever
	// node 1 signs. The challenge's {challenger, challenged} name
	// binding must make every replay fail.
	const n, faulty = 5, model.NodeID(4)
	const victim = model.NodeID(1)
	cfg := model.Config{N: n, T: 1}
	procs, nodes, _ := buildKeydist(t, n, 37, map[model.NodeID]sim.Process{faulty: sim.Silent{}})
	procs[faulty] = NewChallengeRelayNode(cfg, faulty, victim, nodes[victim].Signer().Predicate())
	if _, err := sim.RunInstance(cfg, procs, keydist.RoundsTotal); err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	checkG1G2(t, nodes, faulty)
	for _, node := range nodes {
		if node == nil || node.ID() == victim {
			continue
		}
		if _, ok := node.Directory().PredicateOf(faulty); ok {
			t.Errorf("%v accepted the laundered claim for %v", node.ID(), faulty)
		}
	}
}

func TestKeydistSharedKeyGroupAcceptedConsistently(t *testing.T) {
	// The G3 gap the paper documents: key-sharing colluders run the
	// handshake honestly with one key and ARE accepted — with identical
	// predicates — while G1/G2 stay intact for the correct nodes.
	const n = 6
	cfg := model.Config{N: n, T: 2}
	scheme, err := sig.ByName(sig.SchemeEd25519)
	if err != nil {
		t.Fatalf("scheme: %v", err)
	}
	group, err := NewSharedKeyGroup(cfg, scheme, sim.SeededReader(101), 4, 5)
	if err != nil {
		t.Fatalf("NewSharedKeyGroup: %v", err)
	}
	procs, nodes, _ := buildKeydist(t, n, 53, map[model.NodeID]sim.Process{
		4: group[0],
		5: group[1],
	})
	if _, err := sim.RunInstance(cfg, procs, keydist.RoundsTotal); err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	for _, node := range nodes {
		if node == nil {
			continue
		}
		p4, ok4 := node.Directory().PredicateOf(4)
		p5, ok5 := node.Directory().PredicateOf(5)
		if !ok4 || !ok5 {
			t.Fatalf("%v rejected an honestly-run sharer (ok4=%v ok5=%v)", node.ID(), ok4, ok5)
		}
		if p4.Fingerprint() != p5.Fingerprint() {
			t.Errorf("%v holds different predicates for the sharers", node.ID())
		}
		if p4.Fingerprint() != group[0].Signer().Predicate().Fingerprint() {
			t.Errorf("%v holds a predicate that is not the shared key's", node.ID())
		}
	}
}
