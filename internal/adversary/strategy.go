package adversary

// The composable strategy layer: a declarative description of WHO is
// corrupt (a fixed node set or a seed-driven coalition of size f ≤ t) and
// WHAT the corrupt nodes do (an ordered stack of behaviors), compiled
// into Behavior stacks for the simulator. The campaign engine sweeps
// Strategy values the way it sweeps protocols and schemes — the paper's
// theorems are claims over *families* of fault mixes, and four hard-coded
// adversary names cannot express a family.
//
// Strategies are pure data: JSON-marshalable, comparable field by field,
// and resolvable to a corrupt set by (n, seed) alone, which is what keeps
// campaign expansion and reports deterministic.

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/sim"
)

// Behavior names accepted in BehaviorSpec.Name.
const (
	// BehaviorCrash silences the node from Round on (default round 1).
	BehaviorCrash = "crash"
	// BehaviorDrop suppresses messages to the Victims set.
	BehaviorDrop = "drop"
	// BehaviorDelay releases every outgoing message Delay rounds late.
	BehaviorDelay = "delay"
	// BehaviorDuplicate floods each Victims member with a copy of every
	// outgoing message.
	BehaviorDuplicate = "duplicate"
	// BehaviorTamper flips a payload bit of every outgoing message.
	BehaviorTamper = "tamper"
	// BehaviorEquivocate shows different faces to the two sides of
	// Partition: protocol wirings substitute a bespoke two-faced sender
	// where one exists (chain, nonauth); everywhere else the generic
	// payload-rewriting TwoFaced filter applies.
	BehaviorEquivocate = "equivocate"
)

// Partition names accepted in BehaviorSpec.Partition.
const (
	// PartitionHalves shows face one to nodes below n/2 (the default).
	PartitionHalves = "halves"
	// PartitionEvenOdd shows face one to even node IDs.
	PartitionEvenOdd = "even-odd"
)

// Parameter bounds. Validation rejects values outside them so a typo'd
// spec fails loudly instead of producing a sweep that silently does
// nothing (a crash round past every protocol's deadline) or buffers
// unboundedly (an absurd delay).
const (
	// MaxBehaviorRound bounds crash rounds.
	MaxBehaviorRound = 1 << 16
	// MaxDelayRounds bounds the delay behavior.
	MaxDelayRounds = 1 << 8
)

// BehaviorSpec declares one behavior of a corrupt node. Exactly the
// fields its Name uses may be set; Validate rejects stray parameters so
// specs stay unambiguous.
type BehaviorSpec struct {
	// Name is one of the Behavior* constants.
	Name string `json:"behavior"`
	// Round parameterizes crash: silent from this round on (0 means 1).
	Round int `json:"round,omitempty"`
	// Delay is the delay bound in rounds (delay only, ≥ 1).
	Delay int `json:"delay,omitempty"`
	// Victims are drop's suppressed recipients or duplicate's flood
	// targets.
	Victims []int `json:"victims,omitempty"`
	// Partition selects equivocate's two-faced split (default halves).
	Partition string `json:"partition,omitempty"`
}

// Strategy declares a composable adversary: the corrupt-set selection
// plus the behavior stack every corrupt node runs. The zero Strategy is
// the honest (no-fault) strategy.
type Strategy struct {
	// Name labels the strategy in reports and group keys; empty means the
	// canonical rendering of the fields (CanonicalName).
	Name string `json:"name,omitempty"`
	// Nodes fixes the corrupt set explicitly. Mutually exclusive with
	// Coalition.
	Nodes []int `json:"nodes,omitempty"`
	// Coalition, when > 0, selects a seed-driven corrupt coalition of this
	// size instead of fixed Nodes: each run seed draws its own coalition,
	// so a seed sweep explores fault placements instead of repeating one.
	Coalition int `json:"coalition,omitempty"`
	// Behaviors stack onto every corrupt node, applied in order.
	Behaviors []BehaviorSpec `json:"behaviors,omitempty"`
}

// IsHonest reports the no-fault strategy.
func (s Strategy) IsHonest() bool { return s.Coalition == 0 && len(s.Nodes) == 0 }

// CorruptSize returns how many nodes the strategy corrupts.
func (s Strategy) CorruptSize() int {
	if s.Coalition > 0 {
		return s.Coalition
	}
	return len(s.Nodes)
}

// HasBehavior reports whether the stack contains the named behavior.
func (s Strategy) HasBehavior(name string) bool {
	for _, b := range s.Behaviors {
		if b.Name == name {
			return true
		}
	}
	return false
}

// CorruptsNonSender reports whether the strategy can corrupt a node other
// than the distinguished sender P_0: true for every coalition (membership
// is seed-driven) and for fixed sets naming a non-zero node.
func (s Strategy) CorruptsNonSender() bool {
	if s.Coalition > 0 {
		return true
	}
	for _, id := range s.Nodes {
		if id != 0 {
			return true
		}
	}
	return false
}

// MaxFixedNode returns the largest fixed corrupt node ID (-1 when the
// strategy has none).
func (s Strategy) MaxFixedNode() int {
	maxID := -1
	for _, id := range s.Nodes {
		if id > maxID {
			maxID = id
		}
	}
	return maxID
}

// Validate checks the strategy's internal consistency. It does not check
// fit against a particular (n, t) — that is the sweep layer's skip rule,
// which needs the configuration.
func (s Strategy) Validate() error {
	if s.Coalition < 0 {
		return fmt.Errorf("adversary: coalition size %d is negative", s.Coalition)
	}
	if s.Coalition > 0 && len(s.Nodes) > 0 {
		return fmt.Errorf("adversary: fixed nodes and coalition are mutually exclusive")
	}
	seen := make(map[int]bool, len(s.Nodes))
	for _, id := range s.Nodes {
		if id < 0 {
			return fmt.Errorf("adversary: corrupt node id %d is negative", id)
		}
		if seen[id] {
			return fmt.Errorf("adversary: corrupt node id %d repeated", id)
		}
		seen[id] = true
	}
	if s.IsHonest() {
		if len(s.Behaviors) > 0 {
			return fmt.Errorf("adversary: behaviors declared without a corrupt set")
		}
		return nil
	}
	if len(s.Behaviors) == 0 {
		return fmt.Errorf("adversary: corrupt set declared without behaviors")
	}
	for i, b := range s.Behaviors {
		if err := b.validate(); err != nil {
			return fmt.Errorf("adversary: behavior %d: %w", i, err)
		}
	}
	return nil
}

// behaviorParams maps each behavior name to the parameters it accepts.
// Validation checks the four parameter fields against this table, so a
// stray parameter ("delay=2" on a crash) fails instead of silently
// meaning nothing, and a new behavior cannot forget a stray check.
var behaviorParams = map[string]struct{ round, delay, victims, partition bool }{
	BehaviorCrash:      {round: true},
	BehaviorDelay:      {delay: true},
	BehaviorDrop:       {victims: true},
	BehaviorDuplicate:  {victims: true},
	BehaviorTamper:     {},
	BehaviorEquivocate: {partition: true},
}

// validate checks one behavior's name and that exactly its parameters
// are set, within bounds.
func (b BehaviorSpec) validate() error {
	if b.Name == "" {
		return fmt.Errorf("behavior name missing")
	}
	allowed, ok := behaviorParams[b.Name]
	if !ok {
		return fmt.Errorf("unknown behavior %q", b.Name)
	}
	if !allowed.round && b.Round != 0 {
		return fmt.Errorf("%s does not take round", b.Name)
	}
	if !allowed.delay && b.Delay != 0 {
		return fmt.Errorf("%s does not take delay", b.Name)
	}
	if !allowed.victims && len(b.Victims) != 0 {
		return fmt.Errorf("%s does not take victims", b.Name)
	}
	if !allowed.partition && b.Partition != "" {
		return fmt.Errorf("%s does not take partition", b.Name)
	}
	if b.Round < 0 || b.Round > MaxBehaviorRound {
		return fmt.Errorf("round %d out of range [0, %d]", b.Round, MaxBehaviorRound)
	}
	if b.Delay < 0 || b.Delay > MaxDelayRounds {
		return fmt.Errorf("delay %d out of range [0, %d]", b.Delay, MaxDelayRounds)
	}
	for _, v := range b.Victims {
		if v < 0 {
			return fmt.Errorf("victim id %d is negative", v)
		}
	}
	// Required and enumerated parameters.
	switch b.Name {
	case BehaviorDelay:
		if b.Delay < 1 {
			return fmt.Errorf("delay needs delay ≥ 1")
		}
	case BehaviorDrop, BehaviorDuplicate:
		if len(b.Victims) == 0 {
			return fmt.Errorf("%s needs at least one victim", b.Name)
		}
	case BehaviorEquivocate:
		switch b.Partition {
		case "", PartitionHalves, PartitionEvenOdd:
		default:
			return fmt.Errorf("unknown partition %q", b.Partition)
		}
	}
	return nil
}

// CorruptSet resolves the corrupt set for a system of n nodes under the
// given run seed. Fixed Nodes return verbatim; a Coalition draws its
// members without replacement from the seed's coalition-domain stream
// (sim.CoalitionSeed), so repetitions of one configuration under
// different seeds sweep different fault placements while every single
// instance stays exactly reproducible.
func (s Strategy) CorruptSet(n int, seed int64) model.NodeSet {
	set := model.NewNodeSet()
	if s.Coalition > 0 {
		size := s.Coalition
		if size > n {
			size = n
		}
		rng := rand.New(rand.NewSource(sim.CoalitionSeed(seed)))
		for _, v := range rng.Perm(n)[:size] {
			set.Add(model.NodeID(v))
		}
		return set
	}
	for _, id := range s.Nodes {
		set.Add(model.NodeID(id))
	}
	return set
}

// PartitionFaceOne returns the recipients shown face one under the named
// partition in a system of n nodes; everyone else is shown face two. The
// two faces are disjoint by construction and cover all n nodes.
func PartitionFaceOne(partition string, n int) (model.NodeSet, error) {
	set := model.NewNodeSet()
	switch partition {
	case "", PartitionHalves:
		for id := 0; id < n/2; id++ {
			set.Add(model.NodeID(id))
		}
	case PartitionEvenOdd:
		for id := 0; id < n; id += 2 {
			set.Add(model.NodeID(id))
		}
	default:
		return nil, fmt.Errorf("adversary: unknown partition %q", partition)
	}
	return set, nil
}

// BuildBehaviors compiles a behavior-spec stack into runtime Behaviors
// for one corrupt node in a system of n nodes. Equivocate compiles to the
// generic TwoFaced payload rewrite; wirings with a bespoke equivocating
// process for the node substitute it upstream and pass the remaining
// specs here.
func BuildBehaviors(specs []BehaviorSpec, n int) ([]Behavior, error) {
	var out []Behavior
	for _, spec := range specs {
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("adversary: %w", err)
		}
		switch spec.Name {
		case BehaviorCrash:
			from := spec.Round
			if from < 1 {
				from = 1
			}
			out = append(out, DropAll(from))
		case BehaviorDrop:
			victims := model.NewNodeSet()
			for _, v := range spec.Victims {
				victims.Add(model.NodeID(v))
			}
			out = append(out, DropTo(victims))
		case BehaviorDelay:
			out = append(out, DelayBy(spec.Delay))
		case BehaviorDuplicate:
			victims := make([]model.NodeID, len(spec.Victims))
			for i, v := range spec.Victims {
				victims[i] = model.NodeID(v)
			}
			out = append(out, FloodTo(victims))
		case BehaviorTamper:
			out = append(out, TamperAll(FlipByte(0)))
		case BehaviorEquivocate:
			faceOne, err := PartitionFaceOne(spec.Partition, n)
			if err != nil {
				return nil, err
			}
			out = append(out, TwoFaced(faceOne, FlipByte(0)))
		}
	}
	return out, nil
}

// CanonicalName renders the strategy as a deterministic, comma-free label
// for group keys and tables: the explicit Name when set, otherwise
// selector and behavior tokens joined by dots, e.g.
// "coalition-2.equivocate-even-odd" or "nodes-1.delay-2.drop-v3".
func (s Strategy) CanonicalName() string {
	if s.Name != "" {
		return s.Name
	}
	if s.IsHonest() {
		return "none"
	}
	var parts []string
	if s.Coalition > 0 {
		parts = append(parts, fmt.Sprintf("coalition-%d", s.Coalition))
	} else {
		ids := append([]int(nil), s.Nodes...)
		sort.Ints(ids)
		sel := "nodes"
		for _, id := range ids {
			sel += fmt.Sprintf("-%d", id)
		}
		parts = append(parts, sel)
	}
	for _, b := range s.Behaviors {
		parts = append(parts, b.token())
	}
	return strings.Join(parts, ".")
}

// token renders one behavior for CanonicalName.
func (b BehaviorSpec) token() string {
	switch b.Name {
	case BehaviorCrash:
		if b.Round > 1 {
			return fmt.Sprintf("crash-r%d", b.Round)
		}
		return "crash"
	case BehaviorDelay:
		return fmt.Sprintf("delay-%d", b.Delay)
	case BehaviorDrop, BehaviorDuplicate:
		tok := b.Name
		ids := append([]int(nil), b.Victims...)
		sort.Ints(ids)
		for _, v := range ids {
			tok += fmt.Sprintf("-v%d", v)
		}
		return tok
	case BehaviorEquivocate:
		if b.Partition != "" && b.Partition != PartitionHalves {
			return "equivocate-" + b.Partition
		}
		return "equivocate"
	default:
		return b.Name
	}
}

// ParseStrategy parses the compact flag syntax:
//
//	selector[:param,param,...]
//
// Selectors: "sender" (corrupt {P_0}), "relay" ({P_1}),
// "nodes=<i>+<j>+..." (explicit set), "coalition" (seed-driven, size via
// size=<f>). Parameters: "behavior=<name>" opens a behavior (several
// compose in order); "round=", "delay=", "victims=<i>+<j>", "partition="
// attach to the behavior opened last; "size=<f>" sets the coalition size;
// "name=<label>" overrides the canonical name. Example:
//
//	coalition:size=2,behavior=equivocate,partition=even-odd
//
// The result is validated; malformed input returns an error, never a
// panic.
func ParseStrategy(input string) (Strategy, error) {
	var s Strategy
	selector, params, hasParams := strings.Cut(input, ":")
	switch {
	case selector == "sender":
		s.Nodes = []int{0}
	case selector == "relay":
		s.Nodes = []int{1}
	case selector == "coalition":
		// size arrives via size=; default 1.
		s.Coalition = 1
	case strings.HasPrefix(selector, "nodes="):
		ids, err := parseIntList(strings.TrimPrefix(selector, "nodes="))
		if err != nil {
			return Strategy{}, fmt.Errorf("adversary: parse %q: %w", input, err)
		}
		s.Nodes = ids
	default:
		return Strategy{}, fmt.Errorf("adversary: parse %q: unknown selector %q", input, selector)
	}
	if hasParams {
		var cur *BehaviorSpec
		for _, param := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(param, "=")
			if !ok || val == "" {
				return Strategy{}, fmt.Errorf("adversary: parse %q: malformed parameter %q", input, param)
			}
			switch key {
			case "name":
				s.Name = val
			case "size":
				if s.Coalition == 0 {
					return Strategy{}, fmt.Errorf("adversary: parse %q: size= outside a coalition selector", input)
				}
				size, err := strconv.Atoi(val)
				if err != nil || size < 1 {
					return Strategy{}, fmt.Errorf("adversary: parse %q: bad coalition size %q", input, val)
				}
				s.Coalition = size
			case "behavior":
				s.Behaviors = append(s.Behaviors, BehaviorSpec{Name: val})
				cur = &s.Behaviors[len(s.Behaviors)-1]
			case "round", "delay":
				if cur == nil {
					return Strategy{}, fmt.Errorf("adversary: parse %q: %s= before any behavior=", input, key)
				}
				v, err := strconv.Atoi(val)
				if err != nil {
					return Strategy{}, fmt.Errorf("adversary: parse %q: bad %s %q", input, key, val)
				}
				if key == "round" {
					cur.Round = v
				} else {
					cur.Delay = v
				}
			case "victims":
				if cur == nil {
					return Strategy{}, fmt.Errorf("adversary: parse %q: victims= before any behavior=", input)
				}
				ids, err := parseIntList(val)
				if err != nil {
					return Strategy{}, fmt.Errorf("adversary: parse %q: %w", input, err)
				}
				cur.Victims = ids
			case "partition":
				if cur == nil {
					return Strategy{}, fmt.Errorf("adversary: parse %q: partition= before any behavior=", input)
				}
				cur.Partition = val
			default:
				return Strategy{}, fmt.Errorf("adversary: parse %q: unknown parameter %q", input, key)
			}
		}
	}
	if err := s.Validate(); err != nil {
		return Strategy{}, fmt.Errorf("adversary: parse %q: %w", input, err)
	}
	return s, nil
}

// parseIntList parses a "+"-separated id list ("1+2+5").
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, "+") {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad id %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
