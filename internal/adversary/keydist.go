package adversary

import (
	"fmt"
	"io"

	"repro/internal/keydist"
	"repro/internal/model"
	"repro/internal/sig"
)

// Adversaries against the key-distribution protocol (paper Fig. 1). They
// probe exactly the properties Theorem 2 claims:
//
//	G1: a faulty node must not get a correct node's key accepted for
//	    itself (ForeignClaimNode, ChallengeRelayNode try);
//	G2: a correct node's key must be accepted by all correct nodes
//	    (nothing an adversary does below can prevent it, tested in E5);
//	G3 (absent): MixedPredicateNode and SharedKeyNode realize the two
//	    G3-violating behaviours the paper describes — distributing
//	    different predicates to different nodes, and giving one's secret
//	    key to an accomplice.

// ForeignClaimNode broadcasts a VICTIM's test predicate as its own. It
// cannot answer the resulting challenges (it does not hold the victim's
// secret key — property S3), so no correct node ever accepts the claim;
// this is the G1 guarantee in action.
type ForeignClaimNode struct {
	id     model.NodeID
	cfg    model.Config
	victim sig.TestPredicate
}

// NewForeignClaimNode builds the claiming node. victim is the predicate of
// the node whose identity it tries to steal.
func NewForeignClaimNode(cfg model.Config, id model.NodeID, victim sig.TestPredicate) *ForeignClaimNode {
	return &ForeignClaimNode{id: id, cfg: cfg, victim: victim}
}

// Step implements sim.Process.
func (a *ForeignClaimNode) Step(round int, received []model.Message) []model.Message {
	if round != keydist.RoundBroadcast {
		// It cannot sign responses, so it stays silent afterwards. (It
		// could relay the challenges to the victim — ChallengeRelayNode
		// tries exactly that.)
		return nil
	}
	out := make([]model.Message, 0, a.cfg.N-1)
	for _, to := range a.cfg.Nodes() {
		if to != a.id {
			out = append(out, model.Message{To: to, Kind: model.KindTestPredicate, Payload: a.victim.Bytes()})
		}
	}
	return out
}

// Finished implements sim.Finisher.
func (a *ForeignClaimNode) Finished() bool { return true }

// ChallengeRelayNode claims a victim's predicate and then tries to launder
// the challenges through the victim itself: when challenger C sends it
// {C, A, r}, it forwards the challenge to the victim V hoping V signs
// something usable. A correct victim signs only challenges of the form
// {sender, V, r} naming itself and the true immediate sender, so the
// harvested signature (if any) never matches what C expects — the reason
// the challenge carries BOTH names (paper §3.1).
type ChallengeRelayNode struct {
	id     model.NodeID
	cfg    model.Config
	victim model.NodeID
	pred   sig.TestPredicate
	// pendingByChallenger remembers who challenged us so harvested
	// signatures can be routed back.
	pending map[model.NodeID]keydist.Challenge
}

// NewChallengeRelayNode builds the relaying claimant.
func NewChallengeRelayNode(cfg model.Config, id, victim model.NodeID, victimPred sig.TestPredicate) *ChallengeRelayNode {
	return &ChallengeRelayNode{
		id:      id,
		cfg:     cfg,
		victim:  victim,
		pred:    victimPred,
		pending: make(map[model.NodeID]keydist.Challenge),
	}
}

// Step implements sim.Process.
func (a *ChallengeRelayNode) Step(round int, received []model.Message) []model.Message {
	var out []model.Message
	switch round {
	case keydist.RoundBroadcast:
		for _, to := range a.cfg.Nodes() {
			if to != a.id {
				out = append(out, model.Message{To: to, Kind: model.KindTestPredicate, Payload: a.pred.Bytes()})
			}
		}
	case keydist.RoundChallenge:
		// Preemptively probe the victim with misdirected challenges,
		// hoping to harvest a signature usable toward some challenger C:
		// one challenge names C as challenger (the victim must refuse: C
		// is not the immediate sender), one names ourselves (the victim
		// signs, but the signature binds OUR name and OUR nonce, so it can
		// never satisfy C's verification).
		for _, c := range a.cfg.Nodes() {
			if c == a.id || c == a.victim {
				continue
			}
			forged := keydist.Challenge{Challenger: c, Challenged: a.victim, Nonce: make([]byte, keydist.NonceSize)}
			out = append(out, model.Message{To: a.victim, Kind: model.KindChallenge, Payload: forged.Marshal()})
		}
		own := keydist.Challenge{Challenger: a.id, Challenged: a.victim, Nonce: make([]byte, keydist.NonceSize)}
		out = append(out, model.Message{To: a.victim, Kind: model.KindChallenge, Payload: own.Marshal()})
	case keydist.RoundResponse:
		// Real challenges addressed to us arrive now; forward them to the
		// victim verbatim (they will arrive a round late AND misnamed —
		// doubly refused). Also replay any harvested response to every
		// challenger; the nonce/name binding makes each replay fail.
		for _, m := range received {
			switch m.Kind {
			case model.KindChallenge:
				ch, err := keydist.UnmarshalChallenge(m.Payload)
				if err != nil {
					continue
				}
				a.pending[m.From] = ch
				out = append(out, model.Message{To: a.victim, Kind: model.KindChallenge, Payload: m.Payload})
			case model.KindChallengeResponse:
				if m.From != a.victim {
					continue
				}
				for challenger := range a.pending {
					out = append(out, model.Message{To: challenger, Kind: model.KindChallengeResponse, Payload: m.Payload})
				}
			}
		}
	}
	return out
}

// Finished implements sim.Finisher.
func (a *ChallengeRelayNode) Finished() bool { return true }

// MixedPredicateNode generates TWO key pairs and distributes one predicate
// to group A and the other to everyone else, answering each node's
// challenge with the matching secret key. Both groups accept "a"
// predicate for this node, but different ones: the canonical G3 violation
// the paper describes ("a faulty node distributes different test
// predicates to the correct nodes"). Key distribution alone cannot detect
// it; Theorem 4 shows the chain-signed failure-discovery protocol turns
// any later *use* of the split into a discovered failure.
type MixedPredicateNode struct {
	id      model.NodeID
	cfg     model.Config
	groupA  model.NodeSet
	signerA sig.Signer
	signerB sig.Signer
}

// NewMixedPredicateNode builds the node. groupA receives predicate A;
// everyone else receives predicate B.
func NewMixedPredicateNode(cfg model.Config, id model.NodeID, scheme sig.Scheme, rand io.Reader, groupA model.NodeSet) (*MixedPredicateNode, error) {
	sa, err := scheme.Generate(rand)
	if err != nil {
		return nil, fmt.Errorf("adversary: generate key A: %w", err)
	}
	sb, err := scheme.Generate(rand)
	if err != nil {
		return nil, fmt.Errorf("adversary: generate key B: %w", err)
	}
	return &MixedPredicateNode{id: id, cfg: cfg, groupA: groupA, signerA: sa, signerB: sb}, nil
}

// SignerFor returns the signer whose predicate the given node accepted,
// letting tests craft messages that verify for a chosen victim group.
func (a *MixedPredicateNode) SignerFor(node model.NodeID) sig.Signer {
	if a.groupA.Contains(node) {
		return a.signerA
	}
	return a.signerB
}

// Step implements sim.Process.
func (a *MixedPredicateNode) Step(round int, received []model.Message) []model.Message {
	var out []model.Message
	switch round {
	case keydist.RoundBroadcast:
		for _, to := range a.cfg.Nodes() {
			if to == a.id {
				continue
			}
			out = append(out, model.Message{
				To:      to,
				Kind:    model.KindTestPredicate,
				Payload: a.SignerFor(to).Predicate().Bytes(),
			})
		}
	case keydist.RoundResponse:
		// Answer each challenge with the key whose predicate the
		// challenger holds — a perfectly consistent-looking response.
		for _, m := range received {
			if m.Kind != model.KindChallenge {
				continue
			}
			ch, err := keydist.UnmarshalChallenge(m.Payload)
			if err != nil {
				continue
			}
			if !keydist.ShouldSign(ch, a.id, m.From) {
				continue
			}
			resp, err := keydist.Respond(ch, a.SignerFor(m.From))
			if err != nil {
				continue
			}
			out = append(out, model.Message{To: m.From, Kind: model.KindChallengeResponse, Payload: resp.Marshal()})
		}
	case keydist.RoundChallenge:
		// Challenge nobody: the adversary does not need to authenticate
		// its peers. (Correct nodes do not care whether IT accepted them.)
	}
	return out
}

// Finished implements sim.Finisher.
func (a *MixedPredicateNode) Finished() bool { return true }

// SharedKeyNode participates in key distribution with a key pair that is
// SHARED with one or more accomplices: the paper's other G3 scenario
// ("some faulty node gives its secret key to some other faulty node").
// Every sharer runs the protocol correctly with the same key, so each is
// accepted by every correct node — with identical predicates. Signed
// messages from any sharer then verify as ANY sharer, so a message's
// assignment is ambiguous among the coalition, yet (per the paper's
// remark after G3) all correct recipients still assign it consistently to
// whichever sharer sent it — that is what keeps G1/G2 intact.
type SharedKeyNode struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
}

// NewSharedKeyGroup generates one key pair and returns a SharedKeyNode for
// each of the given IDs, all holding the same secret key.
func NewSharedKeyGroup(cfg model.Config, scheme sig.Scheme, rand io.Reader, ids ...model.NodeID) ([]*SharedKeyNode, error) {
	signer, err := scheme.Generate(rand)
	if err != nil {
		return nil, fmt.Errorf("adversary: generate shared key: %w", err)
	}
	out := make([]*SharedKeyNode, len(ids))
	for i, id := range ids {
		out[i] = &SharedKeyNode{id: id, cfg: cfg, signer: signer}
	}
	return out, nil
}

// Signer exposes the shared signer for test assertions.
func (a *SharedKeyNode) Signer() sig.Signer { return a.signer }

// Step implements sim.Process: the node follows Fig. 1 faithfully except
// that its "own" key is the coalition's shared key and it skips
// challenging others.
func (a *SharedKeyNode) Step(round int, received []model.Message) []model.Message {
	var out []model.Message
	switch round {
	case keydist.RoundBroadcast:
		pred := a.signer.Predicate().Bytes()
		for _, to := range a.cfg.Nodes() {
			if to != a.id {
				out = append(out, model.Message{To: to, Kind: model.KindTestPredicate, Payload: pred})
			}
		}
	case keydist.RoundResponse:
		for _, m := range received {
			if m.Kind != model.KindChallenge {
				continue
			}
			ch, err := keydist.UnmarshalChallenge(m.Payload)
			if err != nil {
				continue
			}
			if !keydist.ShouldSign(ch, a.id, m.From) {
				continue
			}
			resp, err := keydist.Respond(ch, a.signer)
			if err != nil {
				continue
			}
			out = append(out, model.Message{To: m.From, Kind: model.KindChallengeResponse, Payload: resp.Marshal()})
		}
	}
	return out
}

// Finished implements sim.Finisher.
func (a *SharedKeyNode) Finished() bool { return true }
