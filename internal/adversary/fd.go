package adversary

import (
	"fmt"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sig"
)

// Adversaries against the failure-discovery protocols. They probe F1–F3
// (paper §4) and Theorem 4's discovery guarantee. Each either fails to
// affect correct nodes' agreement or provably causes some correct node to
// discover a failure — that dichotomy is what experiments E6/E7 measure.

// EquivocatingSender is a faulty P_0 for the chain protocol: it signs a
// second value and starts a second chain. In the chain protocol P_0 sends
// to a single successor, so equivocation necessarily surfaces as a
// duplicate message at P_1 — a deviation P_1 discovers. With t = 0 the
// sender disseminates directly and can split the tail between two values;
// that needs t ≥ 1 to be tolerated, which is exactly the fault bound's
// job.
type EquivocatingSender struct {
	cfg    model.Config
	signer sig.Signer
	v1, v2 []byte
	// faceOne holds the recipients shown v1 in the t=0 dissemination case;
	// everyone else is shown v2.
	faceOne model.NodeSet
}

// NewEquivocatingSender builds the faulty sender; for the t=0 split,
// nodes below splitAt receive v1 and the rest v2.
func NewEquivocatingSender(cfg model.Config, signer sig.Signer, v1, v2 []byte, splitAt model.NodeID) *EquivocatingSender {
	return NewEquivocatingSenderFaces(cfg, signer, v1, v2, splitBelow(cfg.N, splitAt))
}

// NewEquivocatingSenderFaces builds the faulty sender with an arbitrary
// two-faced partition: faceOne receives v1, its complement v2.
func NewEquivocatingSenderFaces(cfg model.Config, signer sig.Signer, v1, v2 []byte, faceOne model.NodeSet) *EquivocatingSender {
	return &EquivocatingSender{cfg: cfg, signer: signer, v1: v1, v2: v2, faceOne: faceOne}
}

// splitBelow is the legacy partition form: nodes below splitAt make up
// face one.
func splitBelow(n int, splitAt model.NodeID) model.NodeSet {
	faceOne := model.NewNodeSet()
	for id := model.NodeID(0); id < splitAt && int(id) < n; id++ {
		faceOne.Add(id)
	}
	return faceOne
}

// Step implements sim.Process.
func (a *EquivocatingSender) Step(round int, _ []model.Message) []model.Message {
	if round != 1 {
		return nil
	}
	c1, err := sig.NewChain(a.v1, a.signer)
	if err != nil {
		panic(fmt.Sprintf("adversary: sign v1: %v", err))
	}
	c2, err := sig.NewChain(a.v2, a.signer)
	if err != nil {
		panic(fmt.Sprintf("adversary: sign v2: %v", err))
	}
	if a.cfg.T == 0 {
		// Disseminate a split: some tail nodes get v1, others v2.
		out := make([]model.Message, 0, a.cfg.N-1)
		for _, to := range a.cfg.Nodes() {
			if to == fd.Sender {
				continue
			}
			payload := c1.Marshal()
			if !a.faceOne.Contains(to) {
				payload = c2.Marshal()
			}
			out = append(out, model.Message{To: to, Kind: model.KindChainValue, Payload: payload})
		}
		return out
	}
	// With relays, both chains must pass through P_1: the duplicate is the
	// deviation P_1 discovers.
	return []model.Message{
		{To: fd.Sender + 1, Kind: model.KindChainValue, Payload: c1.Marshal()},
		{To: fd.Sender + 1, Kind: model.KindChainValue, Payload: c2.Marshal()},
	}
}

// Finished implements sim.Finisher.
func (a *EquivocatingSender) Finished() bool { return true }

// ResignRelay is a faulty relay that discards the incoming chain and
// starts a fresh chain over its own value, signed only by itself. The
// replacement lacks the signatures of P_0 … P_{i-1}, so the next hop's
// sub-message check (Fig. 2's "check the signatures of the message and
// the submessages") rejects it.
type ResignRelay struct {
	id     model.NodeID
	cfg    model.Config
	signer sig.Signer
	value  []byte
}

// NewResignRelay builds the chain-replacing relay.
func NewResignRelay(cfg model.Config, id model.NodeID, signer sig.Signer, value []byte) *ResignRelay {
	return &ResignRelay{id: id, cfg: cfg, signer: signer, value: value}
}

// Step implements sim.Process.
func (a *ResignRelay) Step(round int, received []model.Message) []model.Message {
	if round != int(a.id)+1 {
		return nil
	}
	chain, err := sig.NewChain(a.value, a.signer)
	if err != nil {
		panic(fmt.Sprintf("adversary: resign: %v", err))
	}
	// Pad the chain with self-extensions so the LENGTH matches what the
	// next hop expects; only the signer identities are wrong, isolating
	// the sub-message check as the detecting mechanism.
	for len(chainSigners(chain, a.id)) < int(a.id)+1 {
		chain, err = chain.Extend(a.id, a.signer)
		if err != nil {
			panic(fmt.Sprintf("adversary: pad chain: %v", err))
		}
	}
	next := a.id + 1
	if int(a.id) == a.cfg.T {
		var out []model.Message
		for j := a.cfg.T + 1; j < a.cfg.N; j++ {
			out = append(out, model.Message{To: model.NodeID(j), Kind: model.KindChainValue, Payload: chain.Marshal()})
		}
		return out
	}
	return []model.Message{{To: next, Kind: model.KindChainValue, Payload: chain.Marshal()}}
}

// Finished implements sim.Finisher.
func (a *ResignRelay) Finished() bool { return true }

func chainSigners(c *sig.Chain, sender model.NodeID) []model.NodeID {
	return c.Signers(sender)
}

// LyingEchoer is a faulty echoer for the NON-authenticated baseline: it
// echoes the true value to some nodes and a forged value to the victims.
// Without signatures nothing stops the lie itself; the victims discover
// the mismatch against the sender's value, which is why the baseline
// needs t echoers and O(n·t) messages to begin with.
type LyingEchoer struct {
	id      model.NodeID
	cfg     model.Config
	forged  []byte
	victims model.NodeSet
	got     []byte
}

// NewLyingEchoer builds the echoer; victims receive forged instead of the
// received value.
func NewLyingEchoer(cfg model.Config, id model.NodeID, forged []byte, victims model.NodeSet) *LyingEchoer {
	return &LyingEchoer{id: id, cfg: cfg, forged: forged, victims: victims}
}

// Step implements sim.Process.
func (a *LyingEchoer) Step(round int, received []model.Message) []model.Message {
	for _, m := range received {
		if m.Kind == model.KindPlainValue && m.From == fd.Sender {
			a.got = append([]byte(nil), m.Payload...)
		}
	}
	if round != 2 {
		return nil
	}
	truth := a.got
	if truth == nil {
		truth = a.forged
	}
	out := make([]model.Message, 0, a.cfg.N-1)
	for _, to := range a.cfg.Nodes() {
		if to == a.id {
			continue
		}
		payload := truth
		if a.victims.Contains(to) {
			payload = a.forged
		}
		out = append(out, model.Message{To: to, Kind: model.KindEcho, Payload: payload})
	}
	return out
}

// Finished implements sim.Finisher.
func (a *LyingEchoer) Finished() bool { return true }

// EquivocatingPlainSender is a faulty sender for the non-authenticated
// baseline: it broadcasts v1 to some nodes and v2 to the rest. Any
// correct echoer rebroadcasts what it got, so some correct node sees a
// mismatch and discovers — unless every echoer is faulty, in which case
// the sender plus echoers exceed the fault bound.
type EquivocatingPlainSender struct {
	cfg     model.Config
	v1, v2  []byte
	faceOne model.NodeSet
}

// NewEquivocatingPlainSender builds the faulty sender; nodes below splitAt
// receive v1, the rest v2.
func NewEquivocatingPlainSender(cfg model.Config, v1, v2 []byte, splitAt model.NodeID) *EquivocatingPlainSender {
	return NewEquivocatingPlainSenderFaces(cfg, v1, v2, splitBelow(cfg.N, splitAt))
}

// NewEquivocatingPlainSenderFaces builds the faulty sender with an
// arbitrary two-faced partition: faceOne receives v1, its complement v2.
func NewEquivocatingPlainSenderFaces(cfg model.Config, v1, v2 []byte, faceOne model.NodeSet) *EquivocatingPlainSender {
	return &EquivocatingPlainSender{cfg: cfg, v1: v1, v2: v2, faceOne: faceOne}
}

// Step implements sim.Process.
func (a *EquivocatingPlainSender) Step(round int, _ []model.Message) []model.Message {
	if round != 1 {
		return nil
	}
	out := make([]model.Message, 0, a.cfg.N-1)
	for _, to := range a.cfg.Nodes() {
		if to == fd.Sender {
			continue
		}
		payload := a.v1
		if !a.faceOne.Contains(to) {
			payload = a.v2
		}
		out = append(out, model.Message{To: to, Kind: model.KindPlainValue, Payload: payload})
	}
	return out
}

// Finished implements sim.Finisher.
func (a *EquivocatingPlainSender) Finished() bool { return true }

// WrongNameRelay extends the chain correctly except that it embeds a
// WRONG assignee name for its predecessor — the exact misbehaviour the
// "signed together with the name of the node it is assigned to" rule
// exists to expose (Theorem 4's sub-message assignment check).
type WrongNameRelay struct {
	id        model.NodeID
	cfg       model.Config
	signer    sig.Signer
	wrongName model.NodeID
}

// NewWrongNameRelay builds the relay; it attributes the received chain to
// wrongName instead of its true predecessor.
func NewWrongNameRelay(cfg model.Config, id model.NodeID, signer sig.Signer, wrongName model.NodeID) *WrongNameRelay {
	return &WrongNameRelay{id: id, cfg: cfg, signer: signer, wrongName: wrongName}
}

// Step implements sim.Process.
func (a *WrongNameRelay) Step(round int, received []model.Message) []model.Message {
	if round != int(a.id)+1 {
		return nil
	}
	for _, m := range received {
		if m.Kind != model.KindChainValue {
			continue
		}
		chain, err := sig.UnmarshalChain(m.Payload)
		if err != nil {
			continue
		}
		ext, err := chain.Extend(a.wrongName, a.signer)
		if err != nil {
			continue
		}
		if int(a.id) == a.cfg.T {
			var out []model.Message
			for j := a.cfg.T + 1; j < a.cfg.N; j++ {
				out = append(out, model.Message{To: model.NodeID(j), Kind: model.KindChainValue, Payload: ext.Marshal()})
			}
			return out
		}
		return []model.Message{{To: a.id + 1, Kind: model.KindChainValue, Payload: ext.Marshal()}}
	}
	return nil
}

// Finished implements sim.Finisher.
func (a *WrongNameRelay) Finished() bool { return true }

// EquivocatingSignedSender is a faulty P_0 for the signed-messages
// agreement protocol SM(t): in round 1 it signs two values and broadcasts
// one face to faceOne and the other to everyone else. Correct receivers
// relay whichever chain they saw, so every correct node's extracted set V
// ends up holding both values and choice(V) falls through to the default
// — SM's documented answer to sender equivocation. The sender then plays
// no further part (a faulty node owes the protocol nothing).
type EquivocatingSignedSender struct {
	cfg     model.Config
	signer  sig.Signer
	v1, v2  []byte
	faceOne model.NodeSet
}

// NewEquivocatingSignedSenderFaces builds the two-faced SM(t) sender:
// faceOne receives v1, its complement v2.
func NewEquivocatingSignedSenderFaces(cfg model.Config, signer sig.Signer, v1, v2 []byte, faceOne model.NodeSet) *EquivocatingSignedSender {
	return &EquivocatingSignedSender{cfg: cfg, signer: signer, v1: v1, v2: v2, faceOne: faceOne}
}

// Step implements sim.Process.
func (a *EquivocatingSignedSender) Step(round int, _ []model.Message) []model.Message {
	if round != 1 {
		return nil
	}
	c1, err := sig.NewChain(a.v1, a.signer)
	if err != nil {
		panic(fmt.Sprintf("adversary: sign v1: %v", err))
	}
	c2, err := sig.NewChain(a.v2, a.signer)
	if err != nil {
		panic(fmt.Sprintf("adversary: sign v2: %v", err))
	}
	p1, p2 := c1.Marshal(), c2.Marshal()
	out := make([]model.Message, 0, a.cfg.N-1)
	for _, to := range a.cfg.Nodes() {
		if to == fd.Sender {
			continue
		}
		payload := p1
		if !a.faceOne.Contains(to) {
			payload = p2
		}
		out = append(out, model.Message{To: to, Kind: model.KindSigned, Payload: payload})
	}
	return out
}

// Finished implements sim.Finisher.
func (a *EquivocatingSignedSender) Finished() bool { return true }
