package metrics

import (
	"reflect"
	"testing"
)

func TestDistSmallSets(t *testing.T) {
	var s Series
	for _, v := range []int{4, 1, 3, 2} {
		s.AddInt(v)
	}
	d := s.Dist()
	want := Dist{Count: 4, Min: 1, Max: 4, Mean: 2.5, P50: 2, P99: 4}
	if d != want {
		t.Errorf("Dist = %+v, want %+v", d, want)
	}
}

// TestDistStringIncludesEveryField pins the table-cell rendering: every
// summary field the Dist carries must appear, notably Max, which an
// earlier rendering silently dropped — a sweep's worst case is exactly
// the number a tail-latency table exists to show.
func TestDistStringIncludesEveryField(t *testing.T) {
	d := Dist{Count: 4, Min: 1, Max: 4, Mean: 2.5, P50: 2, P99: 4}
	got := d.String()
	want := "min=1 max=4 mean=2.50 p50=2 p99=4"
	if got != want {
		t.Errorf("Dist.String = %q, want %q", got, want)
	}
	if (Dist{}).String() != "n/a" {
		t.Errorf("empty Dist.String = %q, want n/a", (Dist{}).String())
	}
}

func TestDistSingleAndEmpty(t *testing.T) {
	var s Series
	if d := s.Dist(); d.Count != 0 {
		t.Errorf("empty Dist = %+v", d)
	}
	s.Add(7)
	d := s.Dist()
	if d.Count != 1 || d.Min != 7 || d.Max != 7 || d.Mean != 7 || d.P50 != 7 || d.P99 != 7 {
		t.Errorf("singleton Dist = %+v", d)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 100 samples 1..100: p50 is the 50th, p99 the 99th.
	var s Series
	for i := 1; i <= 100; i++ {
		s.AddInt(i)
	}
	d := s.Dist()
	if d.P50 != 50 || d.P99 != 99 {
		t.Errorf("p50=%v p99=%v, want 50/99", d.P50, d.P99)
	}
}

func TestDistAllEqualValues(t *testing.T) {
	// A degenerate sample set (every value identical) must collapse every
	// summary field to that value — the regression differ relies on equal
	// inputs producing exactly equal Dists, no float residue.
	var s Series
	for i := 0; i < 7; i++ {
		s.Add(42)
	}
	d := s.Dist()
	want := Dist{Count: 7, Min: 42, Max: 42, Mean: 42, P50: 42, P99: 42}
	if d != want {
		t.Errorf("all-equal Dist = %+v, want %+v", d, want)
	}
}

func TestDistEvenCountPercentileEdges(t *testing.T) {
	// Nearest-rank on an even count: p50 of [1,2,3,4] is the 2nd sample
	// (ceil(0.5*4) = 2), NOT the 2.5 interpolation; p99 is the last.
	// Two samples pin the smallest even case.
	var s Series
	s.AddInt(10)
	s.AddInt(20)
	d := s.Dist()
	if d.P50 != 10 || d.P99 != 20 {
		t.Errorf("two-sample p50=%v p99=%v, want 10/20", d.P50, d.P99)
	}
	// p1 through p25 of 4 samples all land on the first sample
	// (ceil(p/100*4) = 1 for p <= 25); p26 crosses to the second.
	sorted := []float64{1, 2, 3, 4}
	if got := percentile(sorted, 25); got != 1 {
		t.Errorf("p25 of 4 = %v, want 1", got)
	}
	if got := percentile(sorted, 26); got != 2 {
		t.Errorf("p26 of 4 = %v, want 2", got)
	}
	if got := percentile(sorted, 100); got != 4 {
		t.Errorf("p100 of 4 = %v, want 4", got)
	}
}

func TestDistDoesNotDisturbSeries(t *testing.T) {
	var s Series
	s.Add(3)
	s.Add(1)
	_ = s.Dist()
	s.Add(2)
	if got := s.Dist(); got.Count != 3 || got.P50 != 2 {
		t.Errorf("interleaved Add/Dist broke the series: %+v", got)
	}
}

func TestSweepOrdering(t *testing.T) {
	sw := NewSweep()
	sw.Observe("b", "msgs", 10)
	sw.Observe("a", "msgs", 20)
	sw.Observe("b", "bytes", 5)
	sw.Observe("b", "msgs", 30)

	if got := sw.Groups(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Errorf("Groups = %v, want first-appearance order [b a]", got)
	}
	if got := sw.Metrics("b"); !reflect.DeepEqual(got, []string{"msgs", "bytes"}) {
		t.Errorf("Metrics(b) = %v", got)
	}
	d := sw.Dist("b", "msgs")
	if d.Count != 2 || d.Mean != 20 {
		t.Errorf("Dist(b,msgs) = %+v", d)
	}
	if d := sw.Dist("missing", "msgs"); d.Count != 0 {
		t.Errorf("unknown group Dist = %+v", d)
	}
}
