package metrics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

func TestCountersRecord(t *testing.T) {
	c := NewCounters()
	c.Record(model.Message{From: 0, To: 1, Round: 1, Kind: model.KindChallenge, Payload: []byte("abc")})
	c.Record(model.Message{From: 0, To: 2, Round: 1, Kind: model.KindChallenge, Payload: []byte("de")})
	c.Record(model.Message{From: 1, To: 0, Round: 3, Kind: model.KindEcho})

	if got := c.Messages(); got != 3 {
		t.Errorf("Messages = %d", got)
	}
	if got := c.Bytes(); got != 5 {
		t.Errorf("Bytes = %d", got)
	}
	if got := c.MessagesOfKind(model.KindChallenge); got != 2 {
		t.Errorf("MessagesOfKind = %d", got)
	}
	if got := c.MessagesFrom(0); got != 2 {
		t.Errorf("MessagesFrom = %d", got)
	}
	if got := c.CommunicationRounds(); got != 2 {
		t.Errorf("CommunicationRounds = %d", got)
	}
	if got := c.LastRound(); got != 3 {
		t.Errorf("LastRound = %d", got)
	}
}

func TestCountersSnapshotIndependent(t *testing.T) {
	c := NewCounters()
	c.Record(model.Message{From: 0, To: 1, Round: 1, Kind: model.KindEcho})
	s := c.Snapshot()
	c.Record(model.Message{From: 0, To: 1, Round: 2, Kind: model.KindEcho})
	if s.Messages != 1 {
		t.Errorf("snapshot mutated: %d", s.Messages)
	}
	if !strings.Contains(s.String(), "msgs=1") {
		t.Errorf("Snapshot.String = %q", s.String())
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Record(model.Message{From: model.NodeID(i), To: 0, Round: j, Kind: model.KindEcho})
			}
		}(i)
	}
	wg.Wait()
	if got := c.Messages(); got != 800 {
		t.Errorf("Messages = %d, want 800", got)
	}
}

// TestCountersConcurrentReadersAndWriters interleaves Record with
// Snapshot and the scalar accessors from concurrent goroutines: the
// transport runners share one Counters across nodes while fdnet reads
// progress, so the mixed read/write path must be race-clean (this test
// is the -race probe for it).
func TestCountersConcurrentReadersAndWriters(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Record(model.Message{From: model.NodeID(i), To: 0, Round: j, Kind: model.KindEcho, Payload: []byte{1, 2}})
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := c.Snapshot()
				if s.Messages < 0 || s.Bytes < 0 {
					t.Error("snapshot went negative")
					return
				}
				_ = c.Messages()
				_ = c.LastRound()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Messages != 800 || s.Bytes != 1600 {
		t.Errorf("final snapshot msgs=%d bytes=%d, want 800/1600", s.Messages, s.Bytes)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo title", "name", "count")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("longer-name", 20)
	tbl.AddRow("pi", 3.14159)
	tbl.AddRow("whole", 2.0)
	out := tbl.String()
	if !strings.Contains(out, "demo title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "longer-name  20") {
		t.Errorf("alignment broken:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not rendered")
	}
	if strings.Contains(out, "2.00") {
		t.Error("whole float not trimmed")
	}
	if tbl.NumRows() != 4 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("plain", "with,comma")
	tbl.AddRow(`with"quote`, "x")
	var b strings.Builder
	tbl.RenderCSV(&b)
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header missing:\n%s", out)
	}
}
