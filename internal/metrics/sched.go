package metrics

import "fmt"

// SchedCounters tallies the fault-tolerant campaign scheduler's control
// plane: lease traffic, retries, and dead-lettering (internal/sched).
// They ride in the scheduler's outcome envelope NEXT TO the campaign
// report, never inside it — the fdcampaign/v1 report is byte-identical
// regardless of worker count, placement, or retry history, and these
// counters are precisely the record of that history.
type SchedCounters struct {
	// WorkersJoined and WorkersLost count worker arrivals and departures
	// (disconnects and crashes) over the campaign.
	WorkersJoined int `json:"workers_joined"`
	WorkersLost   int `json:"workers_lost"`
	// LeasesIssued counts batch leases handed to workers, first attempts
	// and retries alike; LeasesExpired counts leases revoked because the
	// worker blew its deadline without a heartbeat.
	LeasesIssued  int `json:"leases_issued"`
	LeasesExpired int `json:"leases_expired"`
	// Heartbeats counts deadline extensions granted to live leases.
	Heartbeats int `json:"heartbeats"`
	// Nacks counts leases the worker itself rejected.
	Nacks int `json:"nacks"`
	// CorruptResults counts result frames that failed checksum or shape
	// validation; StaleResults counts results for already-revoked leases
	// (a stalled worker finishing after its lease was reassigned).
	CorruptResults int `json:"corrupt_results"`
	StaleResults   int `json:"stale_results"`
	// Requeues counts batches put back on the queue with backoff after a
	// failed attempt; ExclusionsRelaxed counts assignments that had to
	// reuse an excluded worker because no other worker existed.
	Requeues          int `json:"requeues"`
	ExclusionsRelaxed int `json:"exclusions_relaxed"`
	// BatchesCompleted counts successfully collected batches;
	// DeadLettered counts INSTANCES parked in the dead-letter queue.
	BatchesCompleted int `json:"batches_completed"`
	DeadLettered     int `json:"dead_lettered"`
}

// String renders the counters as a compact one-line summary.
func (c SchedCounters) String() string {
	return fmt.Sprintf(
		"workers=%d(-%d) leases=%d expired=%d heartbeats=%d nacks=%d corrupt=%d stale=%d requeues=%d relaxed=%d completed=%d dead-lettered=%d",
		c.WorkersJoined, c.WorkersLost, c.LeasesIssued, c.LeasesExpired, c.Heartbeats,
		c.Nacks, c.CorruptResults, c.StaleResults, c.Requeues, c.ExclusionsRelaxed,
		c.BatchesCompleted, c.DeadLettered)
}
