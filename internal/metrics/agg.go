package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Aggregation layer for scenario sweeps: many independent instances of
// the same configuration produce per-run samples (message counts, bytes,
// rounds, ...) that campaigns summarize as distributions. Everything
// here is deterministic — given the same samples in the same order, the
// output is byte-identical — because the campaign engine's contract is
// that aggregate output does not depend on how many workers produced it.

// Dist summarizes one sample set. Percentiles use the nearest-rank
// method on the sorted samples (p50 of [1,2,3,4] is 2, not 2.5), which
// keeps every field an exact function of the inputs — no interpolation,
// no float drift between platforms beyond IEEE-754 arithmetic itself.
type Dist struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// String renders the distribution compactly for table cells.
func (d Dist) String() string {
	if d.Count == 0 {
		return "n/a"
	}
	return fmt.Sprintf("min=%s max=%s mean=%s p50=%s p99=%s",
		trimFloat(d.Min), trimFloat(d.Max), trimFloat(d.Mean), trimFloat(d.P50), trimFloat(d.P99))
}

// Series accumulates float64 samples for one metric.
type Series struct {
	vals []float64
}

// Add appends one sample.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// AddInt appends one integer sample.
func (s *Series) AddInt(v int) { s.vals = append(s.vals, float64(v)) }

// Count returns the number of samples.
func (s *Series) Count() int { return len(s.vals) }

// Dist computes the summary. The receiver's sample order is preserved
// (Dist sorts a copy), so interleaving Dist calls with Add is safe.
func (s *Series) Dist() Dist {
	n := len(s.vals)
	if n == 0 {
		return Dist{}
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Dist{
		Count: n,
		Min:   sorted[0],
		Max:   sorted[n-1],
		Mean:  sum / float64(n),
		P50:   percentile(sorted, 50),
		P99:   percentile(sorted, 99),
	}
}

// percentile returns the nearest-rank p-th percentile of sorted samples.
func percentile(sorted []float64, p int) float64 {
	rank := int(math.Ceil(float64(p) / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// Sweep groups named sample series under string keys, remembering first-
// appearance order of both groups and metrics so reports render (and
// marshal) identically run after run. It is not safe for concurrent use:
// the campaign runner feeds it sequentially, in instance order, exactly
// so that worker scheduling cannot perturb the aggregate.
type Sweep struct {
	groupOrder []string
	groups     map[string]*sweepGroup
}

type sweepGroup struct {
	metricOrder []string
	metrics     map[string]*Series
}

// NewSweep returns an empty sweep aggregator.
func NewSweep() *Sweep {
	return &Sweep{groups: make(map[string]*sweepGroup)}
}

// Observe adds one sample for metric under group.
func (s *Sweep) Observe(group, metric string, v float64) {
	g, ok := s.groups[group]
	if !ok {
		g = &sweepGroup{metrics: make(map[string]*Series)}
		s.groups[group] = g
		s.groupOrder = append(s.groupOrder, group)
	}
	ser, ok := g.metrics[metric]
	if !ok {
		ser = &Series{}
		g.metrics[metric] = ser
		g.metricOrder = append(g.metricOrder, metric)
	}
	ser.Add(v)
}

// Groups returns the group keys in first-appearance order.
func (s *Sweep) Groups() []string {
	return append([]string(nil), s.groupOrder...)
}

// Metrics returns group's metric names in first-appearance order.
func (s *Sweep) Metrics(group string) []string {
	g, ok := s.groups[group]
	if !ok {
		return nil
	}
	return append([]string(nil), g.metricOrder...)
}

// Dist summarizes one metric of one group. Unknown keys yield a zero
// Dist, distinguishable by Count == 0.
func (s *Sweep) Dist(group, metric string) Dist {
	g, ok := s.groups[group]
	if !ok {
		return Dist{}
	}
	ser, ok := g.metrics[metric]
	if !ok {
		return Dist{}
	}
	return ser.Dist()
}
