package metrics

// Window is a bounded sliding sample window: it keeps the most recent
// capacity samples in a ring and summarizes them with the same
// nearest-rank Dist the campaign aggregates use. Series grows without
// bound — fine for a sweep that ends, wrong for a long-lived daemon —
// so the agreement service records its end-to-end latencies and queue
// waits here: memory stays O(capacity) over any request volume, and the
// Dist reflects recent behavior rather than averaging the warmup tail
// forever. Like Series, a Window is not safe for concurrent use; owners
// guard it with their own lock.
type Window struct {
	vals  []float64
	next  int
	full  bool
	total int64
}

// NewWindow returns an empty window bounded to capacity samples
// (minimum 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{vals: make([]float64, 0, capacity)}
}

// Add appends one sample, evicting the oldest when the window is full.
func (w *Window) Add(v float64) {
	w.total++
	if !w.full {
		w.vals = append(w.vals, v)
		if len(w.vals) == cap(w.vals) {
			w.full = true
		}
		return
	}
	w.vals[w.next] = v
	w.next = (w.next + 1) % len(w.vals)
}

// Count returns the number of samples currently held (≤ capacity).
func (w *Window) Count() int { return len(w.vals) }

// Total returns the lifetime number of samples added, including evicted
// ones.
func (w *Window) Total() int64 { return w.total }

// Dist summarizes the window's current contents (a zero Dist when
// empty). The ring order is irrelevant: Dist sorts a copy.
func (w *Window) Dist() Dist {
	s := Series{vals: w.vals}
	return s.Dist()
}
