// Package metrics collects message, byte, and round counts from protocol
// runs and renders the tables the experiment harness reports.
//
// The paper's evaluation is analytic: message complexity per protocol
// (3n(n−1) for key distribution, n−1 for authenticated failure discovery,
// O(n·t) without authentication) and round counts. The counters here make
// those quantities directly observable from real executions so every claim
// in EXPERIMENTS.md is measured, not assumed.
package metrics

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// Counters accumulates traffic statistics for one protocol run. It is safe
// for concurrent use, so the same type serves the lockstep simulator and
// the TCP transport.
type Counters struct {
	mu sync.Mutex

	messages     int
	bytes        int
	byKind       map[model.MessageKind]int
	bySender     map[model.NodeID]int
	trafficRound map[int]bool
	maxRound     int
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{
		byKind:       make(map[model.MessageKind]int),
		bySender:     make(map[model.NodeID]int),
		trafficRound: make(map[int]bool),
	}
}

// Record accounts for one delivered message.
func (c *Counters) Record(m model.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.messages++
	c.bytes += len(m.Payload)
	c.byKind[m.Kind]++
	c.bySender[m.From]++
	c.trafficRound[m.Round] = true
	if m.Round > c.maxRound {
		c.maxRound = m.Round
	}
}

// Messages returns the total number of messages recorded.
func (c *Counters) Messages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.messages
}

// Bytes returns the total payload bytes recorded.
func (c *Counters) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// MessagesOfKind returns the count of messages with the given kind.
func (c *Counters) MessagesOfKind(k model.MessageKind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKind[k]
}

// MessagesFrom returns the count of messages sent by the given node.
func (c *Counters) MessagesFrom(id model.NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bySender[id]
}

// CommunicationRounds returns the number of distinct rounds in which at
// least one message was delivered. This matches the paper's counting: the
// key-distribution protocol "takes 3 rounds of communication" even though
// acceptance happens in a fourth, message-free step.
func (c *Counters) CommunicationRounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.trafficRound)
}

// LastRound returns the highest round that carried traffic.
func (c *Counters) LastRound() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxRound
}

// Snapshot returns an immutable copy of the counters for reporting.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Messages:            c.messages,
		Bytes:               c.bytes,
		CommunicationRounds: len(c.trafficRound),
		LastRound:           c.maxRound,
		ByKind:              make(map[model.MessageKind]int, len(c.byKind)),
	}
	for k, v := range c.byKind {
		s.ByKind[k] = v
	}
	return s
}

// Snapshot is a point-in-time copy of a Counters.
type Snapshot struct {
	Messages            int
	Bytes               int
	CommunicationRounds int
	LastRound           int
	ByKind              map[model.MessageKind]int
}

// String summarizes the snapshot on one line.
func (s Snapshot) String() string {
	kinds := make([]model.MessageKind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := fmt.Sprintf("msgs=%d bytes=%d rounds=%d", s.Messages, s.Bytes, s.CommunicationRounds)
	for _, k := range kinds {
		out += fmt.Sprintf(" %v=%d", k, s.ByKind[k])
	}
	return out
}
