package metrics

import "testing"

func TestWindowUnfilled(t *testing.T) {
	w := NewWindow(8)
	if d := w.Dist(); d.Count != 0 {
		t.Fatalf("empty window dist = %+v", d)
	}
	for _, v := range []float64{3, 1, 2} {
		w.Add(v)
	}
	if w.Count() != 3 || w.Total() != 3 {
		t.Fatalf("count = %d total = %d, want 3/3", w.Count(), w.Total())
	}
	d := w.Dist()
	if d.Count != 3 || d.Min != 1 || d.Max != 3 || d.Mean != 2 || d.P50 != 2 {
		t.Fatalf("dist = %+v", d)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for v := 1; v <= 10; v++ {
		w.Add(float64(v))
	}
	if w.Count() != 4 || w.Total() != 10 {
		t.Fatalf("count = %d total = %d, want 4/10", w.Count(), w.Total())
	}
	// Only the most recent capacity samples remain: 7..10.
	d := w.Dist()
	if d.Min != 7 || d.Max != 10 || d.Count != 4 {
		t.Fatalf("dist after eviction = %+v, want min=7 max=10", d)
	}
}

func TestWindowMinimumCapacity(t *testing.T) {
	w := NewWindow(0)
	w.Add(1)
	w.Add(2)
	if w.Count() != 1 {
		t.Fatalf("count = %d, want 1", w.Count())
	}
	if d := w.Dist(); d.Min != 2 || d.Max != 2 {
		t.Fatalf("dist = %+v, want only the latest sample", d)
	}
}
