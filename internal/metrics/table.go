package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as aligned text (for terminals and
// EXPERIMENTS.md) or CSV (for downstream plotting). It deliberately has no
// dependencies beyond fmt so every cmd/ binary can use it.
type Table struct {
	// Title is printed above the table.
	Title string
	// Headers are the column names.
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// trimFloat renders floats with two decimals, dropping a trailing ".00".
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	return strings.TrimSuffix(s, ".00")
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// RenderCSV writes the table as CSV with a header row. Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if strings.ContainsAny(cell, ",\"\n") {
				parts[i] = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "%s\n", strings.Join(parts, ","))
	}
	writeRow(t.Headers)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
