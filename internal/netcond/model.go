package netcond

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// defaultLognormalCap truncates lognormal draws when Cap is unset.
const defaultLognormalCap = 8

// Model compiles a Spec into a sim.Network: a deterministic
// per-message fate function. One Model serves one run instance and is
// NOT safe for concurrent use — the lockstep engine calls Fate from one
// goroutine, and the transport layer builds one Model per runner so
// each sender only ever touches its own outgoing links' streams (the
// property that makes socket runs match simulator runs byte for byte).
type Model struct {
	spec Spec
	n    int
	seed int64
	// links holds lazily created per-directed-link state; the map is
	// small (at most n·(n-1) entries) and touched only by the owner.
	links map[linkKey]*linkState
	emit  Emitter
	// partition bookkeeping for one-shot begin/heal events.
	began  []bool
	healed []bool
}

type linkKey struct{ from, to int }

// linkState is one directed link's fate stream and bandwidth window.
type linkState struct {
	rng *rand.Rand
	// wndRound/wndUsed implement the per-round bandwidth cap: wndUsed
	// counts messages that entered the link in send round wndRound.
	wndRound int
	wndUsed  int
}

// NewModel compiles spec for an n-node system under the given run
// seed. Callers should Validate the spec first; NewModel trusts it.
func NewModel(spec Spec, n int, seed int64) *Model {
	return &Model{
		spec:   spec,
		n:      n,
		seed:   seed,
		links:  make(map[linkKey]*linkState),
		began:  make([]bool, len(spec.Partitions)),
		healed: make([]bool, len(spec.Partitions)),
	}
}

// SetEmitter attaches an observability sink for partition/heal/drop/
// delay points. Emission never changes a fate.
func (m *Model) SetEmitter(e Emitter) { m.emit = e }

// Spec returns the compiled spec.
func (m *Model) Spec() Spec { return m.spec }

// link returns (creating on first use) the state for from→to.
func (m *Model) link(from, to int) *linkState {
	k := linkKey{from, to}
	ls := m.links[k]
	if ls == nil {
		ls = &linkState{rng: rand.New(rand.NewSource(sim.NetLinkSeed(m.seed, from, to)))}
		m.links[k] = ls
	}
	return ls
}

// Fate implements sim.Network. The draw order per message is fixed —
// partition (no randomness), loss, latency, reorder, bandwidth (no
// randomness) — so a link's RNG stream position depends only on the
// sequence of messages its sender pushed through it, never on other
// links or on which features other messages triggered.
func (m *Model) Fate(msg model.Message, round int) int {
	m.noteRound(round)
	from, to := int(msg.From), int(msg.To)
	// Scripted partitions first: messages crossing an active cut are
	// held until the heal round (or dropped if the cut never heals),
	// and consume no randomness, so healing a partition replays the
	// same post-heal fates as a run that never had one.
	for _, p := range m.spec.Partitions {
		if round < p.From || (p.Heal != 0 && round >= p.Heal) {
			continue
		}
		if sameSide(p.Split, m.n, from, to) {
			continue
		}
		if p.Heal == 0 {
			m.point("net.drop", round, from, "reason=partition", msg)
			return sim.Drop
		}
		// Held until healing: delivered in round p.Heal, i.e. as if
		// sent in round p.Heal-1.
		d := p.Heal - 1 - round
		if d < 0 {
			d = 0
		}
		if d > 0 {
			m.point("net.delay", round, from, fmt.Sprintf("reason=partition d=%d", d), msg)
		}
		return d
	}
	var ls *linkState
	if m.spec.Loss > 0 || m.spec.Latency != nil || m.spec.Reorder > 0 || m.spec.Bandwidth > 0 {
		ls = m.link(from, to)
	} else {
		return 0
	}
	if m.spec.Loss > 0 && ls.rng.Float64() < m.spec.Loss {
		m.point("net.drop", round, from, "reason=loss", msg)
		return sim.Drop
	}
	d := 0
	if l := m.spec.Latency; l != nil {
		switch l.Dist {
		case DistFixed:
			d = l.Rounds
		case DistUniform:
			d = l.Min + ls.rng.Intn(l.Max-l.Min+1)
		case DistLognormal:
			cap := l.Cap
			if cap == 0 {
				cap = defaultLognormalCap
			}
			draw := math.Exp(l.Mu + l.Sigma*ls.rng.NormFloat64())
			if x := int(draw); x < cap {
				d = x
			} else {
				d = cap
			}
		}
	}
	if m.spec.Reorder > 0 && ls.rng.Float64() < m.spec.Reorder {
		d++
	}
	if bw := m.spec.Bandwidth; bw > 0 {
		if ls.wndRound != round {
			ls.wndRound = round
			ls.wndUsed = 0
		}
		ls.wndUsed++
		// Message k (1-based) on a cap-bw link waits (k-1)/bw extra
		// rounds: the first bw go out on time, the next bw one round
		// later, and so on.
		d += (ls.wndUsed - 1) / bw
	}
	if d > 0 {
		m.point("net.delay", round, from, fmt.Sprintf("d=%d", d), msg)
	}
	return d
}

// noteRound emits one-shot partition begin/heal events the first time a
// fate is computed at or past each scripted boundary.
func (m *Model) noteRound(round int) {
	if m.emit == nil {
		return
	}
	for i, p := range m.spec.Partitions {
		if !m.began[i] && round >= p.From {
			m.began[i] = true
			m.emit("net.partition", round, -1, fmt.Sprintf("split=%s from=%d heal=%d", p.Split, p.From, p.Heal))
		}
		if p.Heal != 0 && !m.healed[i] && round >= p.Heal {
			m.healed[i] = true
			m.emit("net.heal", round, -1, fmt.Sprintf("split=%s", p.Split))
		}
	}
}

// point emits one message-scoped event.
func (m *Model) point(scope string, round, node int, attrs string, msg model.Message) {
	if m.emit == nil {
		return
	}
	m.emit(scope, round, node, fmt.Sprintf("%s to=%d kind=%v", attrs, msg.To, msg.Kind))
}
