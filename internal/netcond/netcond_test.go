package netcond

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestParseRoundTrips(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"ideal", Spec{}},
		{"  ideal  ", Spec{}},
		{"latency=fixed-2", Spec{Latency: &LatencySpec{Dist: DistFixed, Rounds: 2}}},
		{"latency=uniform-0-3", Spec{Latency: &LatencySpec{Dist: DistUniform, Min: 0, Max: 3}}},
		{"latency=lognormal-0.5-0.3", Spec{Latency: &LatencySpec{Dist: DistLognormal, Mu: 0.5, Sigma: 0.3}}},
		{"latency=lognormal-0.5-0.3-6", Spec{Latency: &LatencySpec{Dist: DistLognormal, Mu: 0.5, Sigma: 0.3, Cap: 6}}},
		{"loss=0.05", Spec{Loss: 0.05}},
		{"reorder=0.1,bandwidth=4", Spec{Reorder: 0.1, Bandwidth: 4}},
		{"partition=even-odd@1-3", Spec{Partitions: []PartitionSpec{{Split: SplitEvenOdd, From: 1, Heal: 3}}}},
		{"partition=halves@2", Spec{Partitions: []PartitionSpec{{Split: SplitHalves, From: 2}}}},
		{"partition=halves@2,partition=even-odd@4-6", Spec{Partitions: []PartitionSpec{
			{Split: SplitHalves, From: 2}, {Split: SplitEvenOdd, From: 4, Heal: 6}}}},
		{"churn=2@2-4", Spec{Churn: []ChurnSpec{{Node: 2, Crash: 2, Restart: 4}}}},
		{"churn=1@3", Spec{Churn: []ChurnSpec{{Node: 1, Crash: 3}}}},
		{"name=lab,loss=0.2", Spec{Name: "lab", Loss: 0.2}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got.Name != c.want.Name || got.Loss != c.want.Loss || got.Reorder != c.want.Reorder ||
			got.Bandwidth != c.want.Bandwidth {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if (got.Latency == nil) != (c.want.Latency == nil) ||
			(got.Latency != nil && *got.Latency != *c.want.Latency) {
			t.Errorf("Parse(%q) latency = %+v, want %+v", c.in, got.Latency, c.want.Latency)
		}
		if len(got.Partitions) != len(c.want.Partitions) {
			t.Errorf("Parse(%q) partitions = %+v", c.in, got.Partitions)
		} else {
			for i := range got.Partitions {
				if got.Partitions[i] != c.want.Partitions[i] {
					t.Errorf("Parse(%q) partition %d = %+v, want %+v", c.in, i, got.Partitions[i], c.want.Partitions[i])
				}
			}
		}
		if len(got.Churn) != len(c.want.Churn) {
			t.Errorf("Parse(%q) churn = %+v", c.in, got.Churn)
		} else {
			for i := range got.Churn {
				if got.Churn[i] != c.want.Churn[i] {
					t.Errorf("Parse(%q) churn %d = %+v, want %+v", c.in, i, got.Churn[i], c.want.Churn[i])
				}
			}
		}
	}
}

func TestParseRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"latency", "malformed field"},
		{"latency=", "malformed field"},
		{"loss=0.1,loss=0.2", "duplicate key"},
		{"speed=9", "unknown key"},
		{"latency=gaussian-1", "unknown distribution"},
		{"latency=fixed-", "bad latency value"},
		{"latency=fixed-1-2", "want fixed-<rounds>"},
		{"latency=uniform-3", "want uniform-<min>-<max>"},
		{"loss=NaN", "out of range [0, 1]"},
		{"loss=1.5", "out of range [0, 1]"},
		{"reorder=-0.1", "out of range [0, 1]"},
		{"bandwidth=x", "bad bandwidth value"},
		{"partition=even-odd", "want <split>@<from>"},
		{"partition=ring@1", "unknown partition split"},
		{"partition=halves@3-2", "heal-round"},
		{"churn=2", "want <node>@<crash>"},
		{"churn=2@0", "crash-round"},
		{"churn=2@2-1", "restart-round"},
		{"churn=2@2,churn=2@5", "duplicate churn entry"},
		{"name=has space", "separator characters"},
		{"name=" + strings.Repeat("x", 65), "longer than 64 bytes"},
	}
	for _, c := range cases {
		if _, err := Parse(c.in); err == nil {
			t.Errorf("Parse(%q) accepted, want error containing %q", c.in, c.wantSub)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.in, err, c.wantSub)
		}
	}
}

func TestValidateBounds(t *testing.T) {
	bad := []Spec{
		{Loss: math.NaN()},
		{Loss: math.Inf(1)},
		{Reorder: 2},
		{Bandwidth: -1},
		{Bandwidth: MaxBandwidth + 1},
		{Latency: &LatencySpec{Dist: DistFixed, Rounds: 0}},
		{Latency: &LatencySpec{Dist: DistFixed, Rounds: MaxLatencyRounds + 1}},
		{Latency: &LatencySpec{Dist: DistUniform, Min: 2, Max: 1}},
		{Latency: &LatencySpec{Dist: DistUniform, Min: -1, Max: 1}},
		{Latency: &LatencySpec{Dist: DistLognormal, Mu: math.NaN()}},
		{Latency: &LatencySpec{Dist: DistLognormal, Sigma: -1}},
		{Latency: &LatencySpec{Dist: DistLognormal, Cap: -1}},
		{Latency: &LatencySpec{Dist: "weird"}},
		{Partitions: []PartitionSpec{{Split: "diag", From: 1}}},
		{Partitions: []PartitionSpec{{Split: SplitHalves, From: 0}}},
		{Partitions: []PartitionSpec{{Split: SplitHalves, From: 1, Heal: 1}}},
		{Partitions: []PartitionSpec{{Split: SplitHalves, From: 1, Heal: MaxScriptRound + 1}}},
		{Churn: []ChurnSpec{{Node: -1, Crash: 1}}},
		{Churn: []ChurnSpec{{Node: 0, Crash: 0}}},
		{Churn: []ChurnSpec{{Node: 0, Crash: 5, Restart: 3}}},
		{Name: "a,b"},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted, want error", s)
		}
	}
	good := []Spec{
		{},
		{Loss: 1, Reorder: 1, Bandwidth: MaxBandwidth},
		{Latency: &LatencySpec{Dist: DistFixed, Rounds: MaxLatencyRounds}},
		{Latency: &LatencySpec{Dist: DistUniform, Min: 0, Max: 0}},
		{Latency: &LatencySpec{Dist: DistLognormal, Mu: -16, Sigma: 16, Cap: MaxLatencyRounds}},
		{Partitions: []PartitionSpec{{Split: SplitEvenOdd, From: 1}}},
		{Churn: []ChurnSpec{{Node: 0, Crash: 1}, {Node: 1, Crash: 1, Restart: 2}}},
		{Name: "lab-A_1"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v, want ok", s, err)
		}
	}
}

func TestCanonicalName(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{}, "ideal"},
		{Spec{Name: "lab"}, "lab"},
		{Spec{Latency: &LatencySpec{Dist: DistFixed, Rounds: 1}}, "lat-fixed-1"},
		{Spec{Latency: &LatencySpec{Dist: DistUniform, Min: 0, Max: 2}}, "lat-uniform-0-2"},
		{Spec{Latency: &LatencySpec{Dist: DistLognormal, Mu: 0.5, Sigma: 0.3}}, "lat-lognormal-0.5-0.3"},
		{Spec{Loss: 0.05}, "loss-0.05"},
		{Spec{Reorder: 0.1, Bandwidth: 4}, "reorder-0.1.bw-4"},
		{Spec{Partitions: []PartitionSpec{{Split: SplitEvenOdd, From: 1, Heal: 3}}}, "part-even-odd-r1-h3"},
		{Spec{Partitions: []PartitionSpec{{Split: SplitHalves, From: 2}}}, "part-halves-r2"},
		{Spec{Churn: []ChurnSpec{{Node: 2, Crash: 2, Restart: 4}}}, "churn-2-r2-r4"},
		{Spec{Churn: []ChurnSpec{{Node: 1, Crash: 3}}}, "churn-1-r3"},
		{Spec{Latency: &LatencySpec{Dist: DistFixed, Rounds: 1}, Loss: 0.1,
			Churn: []ChurnSpec{{Node: 2, Crash: 2, Restart: 4}}}, "lat-fixed-1.loss-0.1.churn-2-r2-r4"},
	}
	for _, c := range cases {
		if got := c.spec.CanonicalName(); got != c.want {
			t.Errorf("CanonicalName(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestSpecPredicates(t *testing.T) {
	if !(Spec{}).IsIdeal() || (Spec{}).DegradesLinks() {
		t.Error("zero spec must be ideal and non-degrading")
	}
	if !(Spec{Name: "lab"}).IsIdeal() {
		t.Error("a name alone must not break ideality")
	}
	churnOnly := Spec{Churn: []ChurnSpec{{Node: 3, Crash: 2}, {Node: 1, Crash: 1}, {Node: 3, Crash: 2}}}
	if churnOnly.IsIdeal() {
		t.Error("churn spec reported ideal")
	}
	if churnOnly.DegradesLinks() {
		t.Error("churn alone must not count as link degradation (conformance scores it in full)")
	}
	nodes := churnOnly.ChurnNodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Errorf("ChurnNodes = %v, want sorted deduped [1 3]", nodes)
	}
	degrading := []Spec{
		{Latency: &LatencySpec{Dist: DistFixed, Rounds: 1}},
		{Loss: 0.1},
		{Reorder: 0.1},
		{Bandwidth: 1},
		{Partitions: []PartitionSpec{{Split: SplitHalves, From: 1}}},
	}
	for _, s := range degrading {
		if !s.DegradesLinks() || s.IsIdeal() {
			t.Errorf("spec %+v must degrade links and not be ideal", s)
		}
	}
}

// msgSeq generates a deterministic all-pairs message sequence for fate
// comparisons.
func msgSeq(n, rounds int) []struct {
	m model.Message
	r int
} {
	var out []struct {
		m model.Message
		r int
	}
	for r := 1; r <= rounds; r++ {
		for from := 0; from < n; from++ {
			for to := 0; to < n; to++ {
				if from == to {
					continue
				}
				out = append(out, struct {
					m model.Message
					r int
				}{model.Message{From: model.NodeID(from), To: model.NodeID(to), Kind: model.KindPlainValue}, r})
			}
		}
	}
	return out
}

func TestModelFatesAreDeterministic(t *testing.T) {
	spec := Spec{
		Latency: &LatencySpec{Dist: DistUniform, Min: 0, Max: 3},
		Loss:    0.2,
		Reorder: 0.2,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a := NewModel(spec, 4, 7)
	b := NewModel(spec, 4, 7)
	seq := msgSeq(4, 6)
	diverse := map[int]bool{}
	for i, s := range seq {
		fa, fb := a.Fate(s.m, s.r), b.Fate(s.m, s.r)
		if fa != fb {
			t.Fatalf("fate %d diverged: %d vs %d (same spec, same seed)", i, fa, fb)
		}
		diverse[fa] = true
	}
	if len(diverse) < 2 {
		t.Errorf("fates never varied (%v) — RNG plumbing suspect", diverse)
	}
	// A different run seed must yield a different fate sequence.
	c := NewModel(spec, 4, 8)
	same := true
	for _, s := range seq {
		if c.Fate(s.m, s.r) != b.Fate(s.m, s.r) {
			same = false
			break
		}
	}
	if same {
		t.Error("fate sequence identical across different seeds")
	}
}

// TestModelSenderLocalStreams checks the property the transport mirror
// relies on: a model that only ever serves one sender's messages
// computes the same fates for them as a model serving everyone's,
// because fates draw only from the sender's own directed link streams.
func TestModelSenderLocalStreams(t *testing.T) {
	spec := Spec{Latency: &LatencySpec{Dist: DistUniform, Min: 0, Max: 2}, Loss: 0.3}
	global := NewModel(spec, 4, 11)
	private := NewModel(spec, 4, 11)
	seq := msgSeq(4, 4)
	for _, s := range seq {
		f := global.Fate(s.m, s.r)
		if s.m.From == 2 {
			if pf := private.Fate(s.m, s.r); pf != f {
				t.Fatalf("sender-2 fate diverged between global and private model: %d vs %d", pf, f)
			}
		}
	}
}

func TestModelPartitionHoldAndHeal(t *testing.T) {
	spec := Spec{Partitions: []PartitionSpec{{Split: SplitEvenOdd, From: 1, Heal: 3}}}
	m := NewModel(spec, 4, 1)
	cross := model.Message{From: 0, To: 1, Kind: model.KindPlainValue}
	sameSideMsg := model.Message{From: 0, To: 2, Kind: model.KindPlainValue}
	// Round 1: crossing messages held until delivery in the heal round.
	if d := m.Fate(cross, 1); d != 1 {
		t.Errorf("round-1 crossing fate = %d, want 1 (delivered at heal round 3)", d)
	}
	if d := m.Fate(sameSideMsg, 1); d != 0 {
		t.Errorf("same-side fate = %d, want 0", d)
	}
	// Round 2: one less round to hold.
	if d := m.Fate(cross, 2); d != 0 {
		t.Errorf("round-2 crossing fate = %d, want 0 (heal-1 == send round)", d)
	}
	// Round 3 onward: healed, ideal again.
	if d := m.Fate(cross, 3); d != 0 {
		t.Errorf("post-heal fate = %d, want 0", d)
	}
}

func TestModelPartitionNeverHealsDrops(t *testing.T) {
	spec := Spec{Partitions: []PartitionSpec{{Split: SplitHalves, From: 2}}}
	m := NewModel(spec, 4, 1)
	cross := model.Message{From: 0, To: 3, Kind: model.KindPlainValue}
	if d := m.Fate(cross, 1); d != 0 {
		t.Errorf("pre-partition fate = %d, want 0", d)
	}
	if d := m.Fate(cross, 2); d != sim.Drop {
		t.Errorf("partitioned fate = %d, want Drop", d)
	}
	if d := m.Fate(cross, 100); d != sim.Drop {
		t.Errorf("a heal-less partition must stay cut forever, fate = %d", d)
	}
}

func TestModelBandwidthWindow(t *testing.T) {
	spec := Spec{Bandwidth: 2}
	m := NewModel(spec, 4, 1)
	msg := model.Message{From: 0, To: 1, Kind: model.KindPlainValue}
	want := []int{0, 0, 1, 1, 2}
	for i, w := range want {
		if d := m.Fate(msg, 1); d != w {
			t.Errorf("message %d on a cap-2 link: fate %d, want %d", i+1, d, w)
		}
	}
	// New round, fresh window.
	if d := m.Fate(msg, 2); d != 0 {
		t.Errorf("fresh-round fate = %d, want 0", d)
	}
	// Other links have their own windows.
	if d := m.Fate(model.Message{From: 0, To: 2}, 2); d != 0 {
		t.Errorf("independent link inherited a used window: fate %d", d)
	}
}

func TestModelEmitsOneShotPartitionEvents(t *testing.T) {
	spec := Spec{Partitions: []PartitionSpec{{Split: SplitEvenOdd, From: 2, Heal: 4}}}
	m := NewModel(spec, 4, 1)
	var events []string
	m.SetEmitter(func(scope string, round, node int, attrs string) {
		events = append(events, scope)
	})
	cross := model.Message{From: 0, To: 1, Kind: model.KindPlainValue}
	for r := 1; r <= 5; r++ {
		m.Fate(cross, r)
		m.Fate(cross, r)
	}
	var partitions, heals int
	for _, e := range events {
		switch e {
		case "net.partition":
			partitions++
		case "net.heal":
			heals++
		}
	}
	if partitions != 1 || heals != 1 {
		t.Errorf("partition/heal events = %d/%d, want one of each (got %v)", partitions, heals, events)
	}
}

// scriptProc is a minimal process for Churner tests: it records the
// rounds it was stepped in and echoes a single message per step.
type scriptProc struct {
	stepped  []int
	finished bool
}

func (p *scriptProc) Step(round int, _ []model.Message) []model.Message {
	p.stepped = append(p.stepped, round)
	return []model.Message{{To: 0, Kind: model.KindPlainValue}}
}

func (p *scriptProc) Finished() bool { return p.finished }

func TestChurnerCrashAndRestart(t *testing.T) {
	orig := &scriptProc{finished: true}
	rebuilt := &scriptProc{finished: true}
	var rebuilds int
	ch := NewChurner(orig, ChurnSpec{Node: 2, Crash: 2, Restart: 4}, func() (sim.Process, error) {
		rebuilds++
		return rebuilt, nil
	}, nil)

	if out := ch.Step(1, nil); len(out) != 1 {
		t.Errorf("round 1 (up): sent %d messages, want 1", len(out))
	}
	if ch.Finished() {
		t.Error("Finished before the scheduled restart — engine would exit early")
	}
	for r := 2; r <= 3; r++ {
		if out := ch.Step(r, []model.Message{{From: 1}}); out != nil {
			t.Errorf("round %d (down): sent %v, want nothing", r, out)
		}
	}
	if out := ch.Step(4, nil); len(out) != 1 {
		t.Errorf("round 4 (restarted): sent %d messages, want 1", len(out))
	}
	if rebuilds != 1 {
		t.Errorf("rebuild ran %d times, want exactly once", rebuilds)
	}
	if len(orig.stepped) != 1 || orig.stepped[0] != 1 {
		t.Errorf("original process stepped in rounds %v, want [1]", orig.stepped)
	}
	if len(rebuilt.stepped) != 1 || rebuilt.stepped[0] != 4 {
		t.Errorf("rebuilt process stepped in rounds %v, want [4]", rebuilt.stepped)
	}
	if !ch.Finished() {
		t.Error("restarted churner must delegate Finished to the rebuilt process")
	}
	// Further steps keep using the rebuilt process; rebuild stays one-shot.
	ch.Step(5, nil)
	if rebuilds != 1 {
		t.Errorf("rebuild re-ran: %d times", rebuilds)
	}
}

func TestChurnerPermanentCrash(t *testing.T) {
	orig := &scriptProc{finished: true}
	ch := NewChurner(orig, ChurnSpec{Node: 1, Crash: 2}, nil, nil)
	if out := ch.Step(1, nil); len(out) != 1 {
		t.Error("pre-crash step suppressed")
	}
	for r := 2; r <= 6; r++ {
		if out := ch.Step(r, nil); out != nil {
			t.Errorf("round %d after permanent crash: sent %v", r, out)
		}
	}
	if !ch.Finished() {
		t.Error("a permanent crash with a finished inner process must report finished")
	}
}

func TestChurnerRebuildFailureStaysDown(t *testing.T) {
	orig := &scriptProc{}
	ch := NewChurner(orig, ChurnSpec{Node: 0, Crash: 1, Restart: 2}, func() (sim.Process, error) {
		return nil, errors.New("durable state corrupted")
	}, nil)
	if out := ch.Step(1, nil); out != nil {
		t.Errorf("crash round sent %v", out)
	}
	if out := ch.Step(2, nil); out != nil {
		t.Errorf("failed restart sent %v", out)
	}
	if !ch.Finished() {
		t.Error("a dead node must report finished so the run can end")
	}
}

func TestChurnerEmitsCrashAndRestart(t *testing.T) {
	var scopes []string
	ch := NewChurner(&scriptProc{finished: true}, ChurnSpec{Node: 3, Crash: 2, Restart: 3},
		func() (sim.Process, error) { return &scriptProc{finished: true}, nil },
		func(scope string, round, node int, attrs string) {
			if node != 3 {
				scopes = append(scopes, "WRONG-NODE")
				return
			}
			scopes = append(scopes, scope)
		})
	ch.Step(1, nil)
	ch.Step(2, nil)
	ch.Step(3, nil)
	want := []string{"net.churn.crash", "net.churn.restart"}
	if len(scopes) != 2 || scopes[0] != want[0] || scopes[1] != want[1] {
		t.Errorf("emitted %v, want %v", scopes, want)
	}
}

func TestSameSide(t *testing.T) {
	if !sameSide(SplitEvenOdd, 4, 0, 2) || sameSide(SplitEvenOdd, 4, 0, 1) {
		t.Error("even-odd split misclassifies")
	}
	if !sameSide(SplitHalves, 4, 0, 1) || sameSide(SplitHalves, 4, 1, 2) {
		t.Error("halves split misclassifies")
	}
	if !sameSide("unknown", 4, 0, 1) {
		t.Error("unknown split must behave as no cut")
	}
}
