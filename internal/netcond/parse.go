package netcond

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the compact flag syntax for one network condition:
//
//	key=value[,key=value,...]
//
// Keys:
//
//	latency=fixed-<d> | uniform-<min>-<max> | lognormal-<mu>-<sigma>[-<cap>]
//	loss=<p>          per-message drop probability
//	reorder=<p>       one-round slip probability
//	bandwidth=<k>     per-link messages per round
//	partition=<split>@<from>[-<heal>]   split: halves | even-odd
//	churn=<node>@<crash>[-<restart>]    (repeatable)
//	name=<label>      overrides the canonical name
//
// The bare word "ideal" (or the empty string) is the zero spec. Several
// partition= and churn= keys compose; everything else may appear once.
// The result is validated; malformed input returns an error, never a
// panic.
func Parse(input string) (Spec, error) {
	var s Spec
	input = strings.TrimSpace(input)
	if input == "" || input == "ideal" {
		return s, nil
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(input, ",") {
		key, val, ok := strings.Cut(field, "=")
		if !ok || val == "" {
			return s, fmt.Errorf("netcond: malformed field %q (want key=value)", field)
		}
		if key != "partition" && key != "churn" {
			if seen[key] {
				return s, fmt.Errorf("netcond: duplicate key %q", key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "latency":
			s.Latency, err = parseLatency(val)
		case "loss":
			s.Loss, err = parseProb(val)
		case "reorder":
			s.Reorder, err = parseProb(val)
		case "bandwidth":
			s.Bandwidth, err = strconv.Atoi(val)
		case "partition":
			var p PartitionSpec
			if p, err = parsePartition(val); err == nil {
				s.Partitions = append(s.Partitions, p)
			}
		case "churn":
			var c ChurnSpec
			if c, err = parseChurn(val); err == nil {
				s.Churn = append(s.Churn, c)
			}
		case "name":
			s.Name = val
		default:
			return s, fmt.Errorf("netcond: unknown key %q", key)
		}
		if err != nil {
			return s, fmt.Errorf("netcond: bad %s value %q: %w", key, val, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// parseLatency reads "fixed-2", "uniform-0-3", or
// "lognormal-0.5-0.3[-6]".
func parseLatency(val string) (*LatencySpec, error) {
	dist, rest, _ := strings.Cut(val, "-")
	args := strings.Split(rest, "-")
	l := &LatencySpec{Dist: dist}
	switch dist {
	case DistFixed:
		if len(args) != 1 {
			return nil, fmt.Errorf("want fixed-<rounds>")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil {
			return nil, err
		}
		l.Rounds = n
	case DistUniform:
		if len(args) != 2 {
			return nil, fmt.Errorf("want uniform-<min>-<max>")
		}
		var err1, err2 error
		l.Min, err1 = strconv.Atoi(args[0])
		l.Max, err2 = strconv.Atoi(args[1])
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
	case DistLognormal:
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("want lognormal-<mu>-<sigma>[-<cap>]")
		}
		var err error
		if l.Mu, err = strconv.ParseFloat(args[0], 64); err != nil {
			return nil, err
		}
		if l.Sigma, err = strconv.ParseFloat(args[1], 64); err != nil {
			return nil, err
		}
		if len(args) == 3 {
			if l.Cap, err = strconv.Atoi(args[2]); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("unknown distribution %q", dist)
	}
	return l, nil
}

// parseProb reads a probability literal. Validation (range, NaN) runs
// later in Spec.Validate; here only the syntax is checked.
func parseProb(val string) (float64, error) {
	return strconv.ParseFloat(val, 64)
}

// parsePartition reads "<split>@<from>[-<heal>]".
func parsePartition(val string) (PartitionSpec, error) {
	var p PartitionSpec
	split, script, ok := strings.Cut(val, "@")
	if !ok {
		return p, fmt.Errorf("want <split>@<from>[-<heal>]")
	}
	p.Split = split
	from, heal, healed := strings.Cut(script, "-")
	n, err := strconv.Atoi(from)
	if err != nil {
		return p, err
	}
	p.From = n
	if healed {
		if p.Heal, err = strconv.Atoi(heal); err != nil {
			return p, err
		}
	}
	return p, nil
}

// parseChurn reads "<node>@<crash>[-<restart>]".
func parseChurn(val string) (ChurnSpec, error) {
	var c ChurnSpec
	node, script, ok := strings.Cut(val, "@")
	if !ok {
		return c, fmt.Errorf("want <node>@<crash>[-<restart>]")
	}
	n, err := strconv.Atoi(node)
	if err != nil {
		return c, err
	}
	c.Node = n
	crash, restart, restarted := strings.Cut(script, "-")
	if c.Crash, err = strconv.Atoi(crash); err != nil {
		return c, err
	}
	if restarted {
		if c.Restart, err = strconv.Atoi(restart); err != nil {
			return c, err
		}
	}
	return c, nil
}
