package netcond

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// RebuildFunc reconstructs a node's process from its durable state —
// the signer, directory, and key material that survive a crash — with
// all volatile protocol state (chains under construction, echo
// tallies) lost. core.Cluster supplies one per node by re-running its
// node construction against the cached authentication setup, which is
// exactly the restart-with-recovery the paper's authentication layer
// permits: keys persist, protocol progress does not.
type RebuildFunc func() (sim.Process, error)

// Churner wraps a process with a scripted crash-and-restart: from
// round Crash the node is down — its inbox is discarded and it sends
// nothing — and at round Restart it resumes as a freshly rebuilt
// process with recovered durable state. A Churner with Restart 0 is a
// permanent crash (equivalent to the crash adversary behavior, but
// scripted by the network condition rather than the adversary).
type Churner struct {
	proc    sim.Process
	crash   int
	restart int
	rebuild RebuildFunc
	emit    Emitter
	node    int
	// rebuilt latches the one-shot restart; dead latches a failed
	// rebuild (the node stays down).
	rebuilt bool
	dead    bool
}

// NewChurner wraps proc according to spec. rebuild may be nil, in
// which case a scheduled restart leaves the node down permanently.
func NewChurner(proc sim.Process, spec ChurnSpec, rebuild RebuildFunc, emit Emitter) *Churner {
	return &Churner{
		proc:    proc,
		crash:   spec.Crash,
		restart: spec.Restart,
		rebuild: rebuild,
		emit:    emit,
		node:    spec.Node,
	}
}

// down reports whether the node is crashed in the given round.
func (c *Churner) down(round int) bool {
	return round >= c.crash && (c.restart == 0 || round < c.restart)
}

// Step implements sim.Process.
func (c *Churner) Step(round int, received []model.Message) []model.Message {
	if c.down(round) {
		if round == c.crash && c.emit != nil {
			c.emit("net.churn.crash", round, c.node, "")
		}
		// Down: messages delivered to a crashed node are lost with it.
		return nil
	}
	if c.restart != 0 && round >= c.restart && !c.rebuilt {
		c.rebuilt = true
		if c.rebuild == nil {
			c.dead = true
		} else if p, err := c.rebuild(); err != nil {
			c.dead = true
		} else {
			c.proc = p
			if c.emit != nil {
				c.emit("net.churn.restart", round, c.node, "")
			}
		}
	}
	if c.dead {
		return nil
	}
	return c.proc.Step(round, received)
}

// Finished implements sim.Finisher. Until a scheduled restart has
// happened the node reports unfinished, so the engine keeps the run
// alive long enough for the recovery (and whatever the recovered node
// then discovers) to play out; afterwards — and for permanent crashes —
// it delegates to the wrapped process.
func (c *Churner) Finished() bool {
	if c.dead {
		return true
	}
	if c.restart != 0 && !c.rebuilt {
		return false
	}
	if f, ok := c.proc.(sim.Finisher); ok {
		return f.Finished()
	}
	return true
}
