// Package netcond is the network-realism layer: a declarative model of
// imperfect channels — seeded latency/jitter distributions, per-link
// loss and reorder probabilities, bandwidth caps, scripted partitions
// with healing, and honest-node churn with restart-with-recovery —
// compiled into a deterministic delivery schedule.
//
// The paper's model (§2) assumes an ideal synchronous network: reliable
// bounded-time delivery (N1) and trustworthy sender identification
// (N2). A netcond Spec relaxes N1 selectively while leaving N2 intact
// (conditions never forge or alter messages, only delay or drop them),
// so campaigns can ask how each protocol's F1–F3 guarantees degrade
// when the network itself misbehaves rather than the processes.
//
// Determinism contract: a Spec compiled by NewModel draws every
// probabilistic fate from per-directed-link RNG streams derived via
// sim.NetLinkSeed, and only the sender of a link ever draws from its
// stream — so the lockstep simulator and the concurrent transport
// runners compute identical fates, and a (seed, spec) pair yields a
// byte-identical run at any worker count.
package netcond

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Latency distribution names.
const (
	// DistFixed adds a constant delay of Rounds extra rounds.
	DistFixed = "fixed"
	// DistUniform draws an integer delay uniformly from [Min, Max].
	DistUniform = "uniform"
	// DistLognormal draws exp(Mu + Sigma·Z) rounds (Z standard normal),
	// truncated to an integer and capped at Cap — the classic heavy-tailed
	// queueing-delay shape.
	DistLognormal = "lognormal"
)

// Partition split names; the vocabulary matches the adversary layer's
// equivocation partitions so sweeps read uniformly.
const (
	// SplitHalves separates nodes below n/2 from the rest.
	SplitHalves = "halves"
	// SplitEvenOdd separates even node IDs from odd ones.
	SplitEvenOdd = "even-odd"
)

// Parameter bounds. Validation rejects values outside them so a typo'd
// condition fails loudly instead of silently buffering unboundedly or
// scheduling a partition that never matters.
const (
	// MaxLatencyRounds bounds every delay a condition can add.
	MaxLatencyRounds = 1 << 8
	// MaxScriptRound bounds partition and churn round numbers.
	MaxScriptRound = 1 << 16
	// MaxBandwidth bounds the per-link messages-per-round cap.
	MaxBandwidth = 1 << 16
)

// LatencySpec declares the per-message extra-delay distribution. A
// delay of d means the message is delivered d rounds later than the
// ideal next-round delivery.
type LatencySpec struct {
	// Dist is DistFixed, DistUniform, or DistLognormal.
	Dist string `json:"dist"`
	// Rounds is the constant delay for DistFixed.
	Rounds int `json:"rounds,omitempty"`
	// Min and Max bound the DistUniform draw (inclusive).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
	// Mu and Sigma parameterize DistLognormal.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Cap truncates DistLognormal draws (default 8 when zero).
	Cap int `json:"cap,omitempty"`
}

// PartitionSpec scripts one network partition: from round From the two
// sides of Split cannot exchange messages; from round Heal onward the
// cut is healed and messages held during the partition are delivered.
type PartitionSpec struct {
	// Split is SplitHalves or SplitEvenOdd.
	Split string `json:"split"`
	// From is the first partitioned round (≥ 1).
	From int `json:"from"`
	// Heal is the first healed round; 0 means the partition never heals
	// (crossing messages are dropped instead of held).
	Heal int `json:"heal,omitempty"`
}

// ChurnSpec scripts one honest node's crash-and-restart: the node is
// down (delivers nothing, sends nothing) from round Crash, and restarts
// at round Restart with its durable state — keys and directory, the
// "ledger" authentication rests on — recovered, but all volatile
// protocol state lost. Churned nodes count against the fault budget t:
// the paper's model has no notion of a node that is honest yet silent.
type ChurnSpec struct {
	// Node is the churned node's ID.
	Node int `json:"node"`
	// Crash is the first down round (≥ 1).
	Crash int `json:"crash"`
	// Restart is the recovery round; 0 means the node never comes back.
	Restart int `json:"restart,omitempty"`
}

// Spec is one declarative network condition. The zero Spec is the ideal
// network. Specs are plain data: they marshal into campaign specs and
// reports, and Parse reads the compact flag syntax.
type Spec struct {
	// Name overrides the canonical name in group keys and tables.
	Name string `json:"name,omitempty"`
	// Latency, when set, delays every delivered message by a draw from
	// the distribution.
	Latency *LatencySpec `json:"latency,omitempty"`
	// Loss is the per-message drop probability in [0, 1].
	Loss float64 `json:"loss,omitempty"`
	// Reorder is the probability in [0, 1] that a message slips one
	// extra round behind its peers (late arrivals are re-sorted into the
	// destination inbox, so slipping a round is what reordering means in
	// a round-synchronous model).
	Reorder float64 `json:"reorder,omitempty"`
	// Bandwidth caps each directed link at this many messages per round;
	// excess messages queue into later rounds. 0 means unlimited.
	Bandwidth int `json:"bandwidth,omitempty"`
	// Partitions scripts network cuts with optional healing.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
	// Churn scripts honest-node crash/restart cycles.
	Churn []ChurnSpec `json:"churn,omitempty"`
}

// IsIdeal reports whether the spec degrades nothing (the zero Spec,
// possibly named).
func (s Spec) IsIdeal() bool {
	return s.Latency == nil && s.Loss == 0 && s.Reorder == 0 &&
		s.Bandwidth == 0 && len(s.Partitions) == 0 && len(s.Churn) == 0
}

// DegradesLinks reports whether the spec violates the network
// assumption N1 (bounded reliable delivery) on at least one link:
// latency, loss, reorder, bandwidth, or partitions. Churn alone does
// not — a churned node is a faulty process over an ideal network, a
// case the paper's guarantees still cover (which is why conformance
// excuses link degradation but scores churn-only conditions in full).
func (s Spec) DegradesLinks() bool {
	return s.Latency != nil || s.Loss != 0 || s.Reorder != 0 ||
		s.Bandwidth != 0 || len(s.Partitions) > 0
}

// ChurnNodes returns the churned node IDs, sorted and deduplicated.
func (s Spec) ChurnNodes() []int {
	if len(s.Churn) == 0 {
		return nil
	}
	out := make([]int, 0, len(s.Churn))
	for _, c := range s.Churn {
		out = append(out, c.Node)
	}
	sort.Ints(out)
	j := 0
	for i, v := range out {
		if i == 0 || v != out[j-1] {
			out[j] = v
			j++
		}
	}
	return out[:j]
}

// Validate checks every parameter against its bounds. Probabilities
// must be finite and in [0, 1]; NaN is rejected explicitly (NaN fails
// every comparison, so without the check it would slip through).
func (s Spec) Validate() error {
	if err := validProb("loss", s.Loss); err != nil {
		return err
	}
	if err := validProb("reorder", s.Reorder); err != nil {
		return err
	}
	if s.Bandwidth < 0 || s.Bandwidth > MaxBandwidth {
		return fmt.Errorf("netcond: bandwidth %d out of range [0, %d]", s.Bandwidth, MaxBandwidth)
	}
	if l := s.Latency; l != nil {
		switch l.Dist {
		case DistFixed:
			if l.Rounds < 1 || l.Rounds > MaxLatencyRounds {
				return fmt.Errorf("netcond: fixed latency %d out of range [1, %d]", l.Rounds, MaxLatencyRounds)
			}
		case DistUniform:
			if l.Min < 0 || l.Max < l.Min || l.Max > MaxLatencyRounds {
				return fmt.Errorf("netcond: uniform latency bounds [%d, %d] invalid (need 0 ≤ min ≤ max ≤ %d)", l.Min, l.Max, MaxLatencyRounds)
			}
		case DistLognormal:
			if math.IsNaN(l.Mu) || math.IsInf(l.Mu, 0) || math.Abs(l.Mu) > 16 {
				return fmt.Errorf("netcond: lognormal mu %v out of range [-16, 16]", l.Mu)
			}
			if math.IsNaN(l.Sigma) || math.IsInf(l.Sigma, 0) || l.Sigma < 0 || l.Sigma > 16 {
				return fmt.Errorf("netcond: lognormal sigma %v out of range [0, 16]", l.Sigma)
			}
			if l.Cap < 0 || l.Cap > MaxLatencyRounds {
				return fmt.Errorf("netcond: lognormal cap %d out of range [0, %d]", l.Cap, MaxLatencyRounds)
			}
		default:
			return fmt.Errorf("netcond: unknown latency distribution %q", l.Dist)
		}
	}
	for _, p := range s.Partitions {
		if p.Split != SplitHalves && p.Split != SplitEvenOdd {
			return fmt.Errorf("netcond: unknown partition split %q", p.Split)
		}
		if p.From < 1 || p.From > MaxScriptRound {
			return fmt.Errorf("netcond: partition from-round %d out of range [1, %d]", p.From, MaxScriptRound)
		}
		if p.Heal != 0 && (p.Heal <= p.From || p.Heal > MaxScriptRound) {
			return fmt.Errorf("netcond: partition heal-round %d must be 0 or in (%d, %d]", p.Heal, p.From, MaxScriptRound)
		}
	}
	seen := map[int]bool{}
	for _, c := range s.Churn {
		if c.Node < 0 || c.Node > MaxScriptRound {
			return fmt.Errorf("netcond: churn node %d out of range", c.Node)
		}
		if seen[c.Node] {
			return fmt.Errorf("netcond: duplicate churn entry for node %d", c.Node)
		}
		seen[c.Node] = true
		if c.Crash < 1 || c.Crash > MaxScriptRound {
			return fmt.Errorf("netcond: churn crash-round %d out of range [1, %d]", c.Crash, MaxScriptRound)
		}
		if c.Restart != 0 && (c.Restart <= c.Crash || c.Restart > MaxScriptRound) {
			return fmt.Errorf("netcond: churn restart-round %d must be 0 or in (%d, %d]", c.Restart, c.Crash, MaxScriptRound)
		}
	}
	if s.Name != "" {
		if len(s.Name) > 64 {
			return fmt.Errorf("netcond: name longer than 64 bytes")
		}
		if strings.ContainsAny(s.Name, ",;/=@\n\r\t ") {
			return fmt.Errorf("netcond: name %q contains separator characters", s.Name)
		}
	}
	return nil
}

// validProb rejects probabilities outside [0, 1], NaN, and infinities.
func validProb(what string, p float64) error {
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
		return fmt.Errorf("netcond: %s probability %v out of range [0, 1]", what, p)
	}
	return nil
}

// CanonicalName renders the spec as a deterministic, comma- and
// slash-free label for group keys and tables: the explicit Name when
// set, "ideal" for the zero spec, otherwise condition tokens joined by
// dots, e.g. "lat-uniform-0-2.loss-0.05" or "part-even-odd-r1-h3" or
// "churn-2-r2-r4".
func (s Spec) CanonicalName() string {
	if s.Name != "" {
		return s.Name
	}
	if s.IsIdeal() {
		return "ideal"
	}
	var parts []string
	if l := s.Latency; l != nil {
		switch l.Dist {
		case DistFixed:
			parts = append(parts, fmt.Sprintf("lat-fixed-%d", l.Rounds))
		case DistUniform:
			parts = append(parts, fmt.Sprintf("lat-uniform-%d-%d", l.Min, l.Max))
		case DistLognormal:
			parts = append(parts, fmt.Sprintf("lat-lognormal-%s-%s", trimFloat(l.Mu), trimFloat(l.Sigma)))
		}
	}
	if s.Loss != 0 {
		parts = append(parts, "loss-"+trimFloat(s.Loss))
	}
	if s.Reorder != 0 {
		parts = append(parts, "reorder-"+trimFloat(s.Reorder))
	}
	if s.Bandwidth != 0 {
		parts = append(parts, fmt.Sprintf("bw-%d", s.Bandwidth))
	}
	for _, p := range s.Partitions {
		tok := fmt.Sprintf("part-%s-r%d", p.Split, p.From)
		if p.Heal != 0 {
			tok += fmt.Sprintf("-h%d", p.Heal)
		}
		parts = append(parts, tok)
	}
	for _, c := range s.Churn {
		tok := fmt.Sprintf("churn-%d-r%d", c.Node, c.Crash)
		if c.Restart != 0 {
			tok += fmt.Sprintf("-r%d", c.Restart)
		}
		parts = append(parts, tok)
	}
	return strings.Join(parts, ".")
}

// trimFloat renders a float without trailing zeros ("0.05", not
// "0.050000").
func trimFloat(f float64) string {
	out := fmt.Sprintf("%g", f)
	return out
}

// sameSide reports whether nodes a and b are on the same side of the
// named split in a system of n nodes. Unknown splits (impossible after
// Validate) count everything as one side, i.e. no cut.
func sameSide(split string, n, a, b int) bool {
	switch split {
	case SplitHalves:
		return (a < n/2) == (b < n/2)
	case SplitEvenOdd:
		return a%2 == b%2
	default:
		return true
	}
}

// Emitter receives netcond observability points (partition, heal,
// churn, delivery-delay events). A nil Emitter disables emission; all
// emission is observation only and never changes a fate.
type Emitter func(scope string, round, node int, attrs string)
