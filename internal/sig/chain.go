package sig

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Chain signatures (paper §4).
//
// A message with a chain signature has been signed by a sequence of nodes,
// each one signing the signed message of its predecessor. The paper
// additionally requires that "a message which has been signed before is
// always signed together with the name of the node it is assigned to", so
// the full structure is
//
//	{P_{K-1}, { … {P_0, {m}_{S_0}}_{S_1} … }}_{S_K}
//
// The innermost signature carries no name: its assignee is learned either
// from the enclosing layer's embedded name or — for the outermost layer —
// from the identity of the immediate sender (network property N2). This is
// exactly what lets Theorem 4 go through: every sub-message is pinned to a
// named node, so two correct nodes either make identical assignments for
// every layer or one of them discovers a failure.
//
// On the wire a chain is encoded flat (value, names, signatures); the
// nested encodings exist only as signature payloads and are recomputed
// deterministically during signing and verification.

// Domain-separation tags for chain signature payloads. Distinct tags keep
// a signature obtained in one context (e.g. a key-distribution challenge
// response) from being replayed as another kind of statement.
const (
	tagChainValue = "fd/chain-value/v1"
	tagChainLink  = "fd/chain-link/v1"
)

// Chain verification errors.
var (
	// ErrChainEmpty reports a chain with no signatures.
	ErrChainEmpty = errors.New("sig: empty signature chain")
	// ErrChainEncoding reports a malformed wire encoding.
	ErrChainEncoding = errors.New("sig: malformed chain encoding")
	// ErrChainUnknownSigner reports a layer assigned to a node for which
	// the verifier accepted no test predicate.
	ErrChainUnknownSigner = errors.New("sig: chain layer assigned to node with no accepted predicate")
	// ErrChainBadSignature reports a layer whose signature fails its
	// assigned node's test predicate.
	ErrChainBadSignature = errors.New("sig: chain signature failed test predicate")
)

// Directory resolves the test predicate a verifying node has accepted for
// each peer. Under local authentication each node holds its own directory,
// built by the key-distribution protocol; directories of different correct
// nodes agree on correct nodes' predicates (G2) but may differ on faulty
// nodes' (the G3 gap).
type Directory interface {
	// PredicateOf returns the accepted predicate for node, if any.
	PredicateOf(node model.NodeID) (TestPredicate, bool)
}

// Chain is a parsed chain-signed message. The zero value is not useful;
// build chains with NewChain and Chain.Extend.
type Chain struct {
	// Value is the innermost payload m.
	value []byte
	// names[k] is the embedded assignee name for signature layer k,
	// k = 0..len(sigs)-2. The outermost layer has no embedded name; its
	// assignee is the immediate sender.
	names []model.NodeID
	// sigs[k] is the signature of layer k, innermost first.
	sigs [][]byte
}

// NewChain creates the innermost chain message {value}_{signer}: the
// originator's statement. The originator's name is NOT part of the wire
// encoding; the first receiver attributes the signature to the immediate
// sender, and any later signer pins that name into the next layer.
func NewChain(value []byte, signer Signer) (*Chain, error) {
	sig, err := signer.Sign(valuePayload(value))
	if err != nil {
		return nil, fmt.Errorf("sig: sign chain value: %w", err)
	}
	v := make([]byte, len(value))
	copy(v, value)
	return &Chain{value: v, sigs: [][]byte{sig}}, nil
}

// Extend returns a new chain with one more signature layer: the caller
// signs the existing chain together with outerAssignee, the name of the
// node the caller assigns the current outermost signature to (in the
// protocols of this repository, the node it received the chain from).
// The receiver chain is not modified.
func (c *Chain) Extend(outerAssignee model.NodeID, signer Signer) (*Chain, error) {
	if len(c.sigs) == 0 {
		return nil, ErrChainEmpty
	}
	payload := linkPayload(outerAssignee, c.encodeNested())
	sig, err := signer.Sign(payload)
	if err != nil {
		return nil, fmt.Errorf("sig: sign chain link: %w", err)
	}
	next := c.clone()
	next.names = append(next.names, outerAssignee)
	next.sigs = append(next.sigs, sig)
	return next, nil
}

// clone deep-copies the chain.
func (c *Chain) clone() *Chain {
	out := &Chain{
		value: append([]byte(nil), c.value...),
		names: append([]model.NodeID(nil), c.names...),
		sigs:  make([][]byte, len(c.sigs)),
	}
	for i, s := range c.sigs {
		out.sigs[i] = append([]byte(nil), s...)
	}
	return out
}

// Value returns the innermost payload m.
func (c *Chain) Value() []byte { return c.value }

// Len returns the number of signature layers.
func (c *Chain) Len() int { return len(c.sigs) }

// Names returns the embedded assignee names, innermost first. Its length
// is Len()-1: the outermost layer's assignee comes from the transport.
func (c *Chain) Names() []model.NodeID {
	return append([]model.NodeID(nil), c.names...)
}

// Signers returns the full claimed signer sequence given the immediate
// sender: embedded names followed by the sender, innermost first. This is
// the "P_0 said m, P_1 said that P_0 said m, …" reading from the paper.
func (c *Chain) Signers(sender model.NodeID) []model.NodeID {
	out := make([]model.NodeID, 0, len(c.sigs))
	out = append(out, c.names...)
	out = append(out, sender)
	return out
}

// valuePayload is the byte string the originator signs.
func valuePayload(value []byte) []byte {
	return NewEncoder().String(tagChainValue).Bytes(value).Encoding()
}

// linkPayload is the byte string a chain extender signs: the assignee name
// of the enclosed message plus the enclosed message's nested encoding.
func linkPayload(assignee model.NodeID, nested []byte) []byte {
	return NewEncoder().String(tagChainLink).Int(int(assignee)).Bytes(nested).Encoding()
}

// encodeNested computes the nested encoding of the whole chain: the byte
// string that the NEXT signer would sign (together with an assignee name).
// Layer k's nested encoding is (name_{k-1}, enc_{k-1}, sig_k) and the
// innermost is (value, sig_0).
func (c *Chain) encodeNested() []byte {
	enc := NewEncoder().Bytes(c.value).Bytes(c.sigs[0]).Encoding()
	for k := 1; k < len(c.sigs); k++ {
		enc = NewEncoder().
			Int(int(c.names[k-1])).
			Bytes(enc).
			Bytes(c.sigs[k]).
			Encoding()
	}
	return enc
}

// Marshal produces the flat wire encoding of the chain.
func (c *Chain) Marshal() []byte {
	e := NewEncoder().Bytes(c.value).Int(len(c.sigs))
	for _, n := range c.names {
		e.Int(int(n))
	}
	for _, s := range c.sigs {
		e.Bytes(s)
	}
	return e.Encoding()
}

// UnmarshalChain parses a flat wire encoding. It validates structure only;
// signature checking is Verify's job.
func UnmarshalChain(data []byte) (*Chain, error) {
	d := NewDecoder(data)
	value := d.Bytes()
	nsigs := d.Int()
	if d.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrChainEncoding, d.Err())
	}
	// A chain never exceeds one signature per node plus slack; reject
	// absurd counts before allocating.
	if nsigs < 1 || nsigs > 1<<16 {
		return nil, fmt.Errorf("%w: implausible signature count %d", ErrChainEncoding, nsigs)
	}
	c := &Chain{
		value: append([]byte(nil), value...),
		names: make([]model.NodeID, 0, nsigs-1),
		sigs:  make([][]byte, 0, nsigs),
	}
	for k := 0; k < nsigs-1; k++ {
		c.names = append(c.names, model.NodeID(d.Int()))
	}
	for k := 0; k < nsigs; k++ {
		c.sigs = append(c.sigs, append([]byte(nil), d.Bytes()...))
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrChainEncoding, err)
	}
	return c, nil
}

// Verify checks every signature layer of the chain against the verifier's
// directory, attributing the outermost layer to sender (per N2) and each
// inner layer to its embedded name. On success it returns the full signer
// sequence, innermost first.
//
// A correct node that accepts a chain via Verify has, in the paper's
// terms, assigned the complete message to the sender and every sub-message
// to its stated node; Theorem 4 then guarantees all correct nodes make the
// same assignments or some correct node discovers a failure.
func (c *Chain) Verify(sender model.NodeID, dir Directory) ([]model.NodeID, error) {
	if len(c.sigs) == 0 {
		return nil, ErrChainEmpty
	}
	if len(c.names) != len(c.sigs)-1 {
		return nil, fmt.Errorf("%w: %d names for %d signatures",
			ErrChainEncoding, len(c.names), len(c.sigs))
	}
	signers := c.Signers(sender)
	// Recompute nested encodings innermost-out, verifying as we go.
	payload := valuePayload(c.value)
	enc := NewEncoder().Bytes(c.value).Bytes(c.sigs[0]).Encoding()
	for k := 0; k < len(c.sigs); k++ {
		who := signers[k]
		pred, ok := dir.PredicateOf(who)
		if !ok {
			return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainUnknownSigner, k, who)
		}
		if !pred.Test(payload, c.sigs[k]) {
			return nil, fmt.Errorf("%w: layer %d assigned to %v", ErrChainBadSignature, k, who)
		}
		if k+1 < len(c.sigs) {
			payload = linkPayload(c.names[k], enc)
			enc = NewEncoder().Int(int(c.names[k])).Bytes(enc).Bytes(c.sigs[k+1]).Encoding()
		}
	}
	return signers, nil
}

// OuterVerify checks only the outermost signature layer against pred,
// ignoring every sub-message. It exists solely for the E6 ablation, which
// demonstrates that skipping sub-message verification (contrary to Fig. 2)
// lets interior tampering through. Sound code uses Verify.
func (c *Chain) OuterVerify(pred TestPredicate) bool {
	k := len(c.sigs) - 1
	if k < 0 {
		return false
	}
	var payload []byte
	if k == 0 {
		payload = valuePayload(c.value)
	} else {
		// Reconstruct the nested encoding of everything under the
		// outermost layer.
		inner := &Chain{value: c.value, names: c.names[:k-1], sigs: c.sigs[:k]}
		payload = linkPayload(c.names[k-1], inner.encodeNested())
	}
	return pred.Test(payload, c.sigs[k])
}

// MapDirectory is a Directory backed by a plain map, convenient for tests
// and for global-authentication setups where all nodes share one view.
type MapDirectory map[model.NodeID]TestPredicate

var _ Directory = MapDirectory(nil)

// PredicateOf implements Directory.
func (m MapDirectory) PredicateOf(node model.NodeID) (TestPredicate, bool) {
	p, ok := m[node]
	return p, ok
}
